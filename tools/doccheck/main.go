// Command doccheck fails the build when an exported symbol of a package
// lacks a doc comment. The public SDK is documentation-first: every
// exported type, function, method, exported struct field, interface
// method, and exported var/const must carry a comment, so godoc (and the
// README's pointers into it) never dead-ends on a bare name.
//
// The check is syntactic, like apicheck: for every non-test file it walks
// exported declarations and reports the ones whose Doc is empty. Grouped
// var/const specs inherit the group comment; a field list with one comment
// per line passes via line comments.
//
// Usage: go run ./tools/doccheck [package dirs...]  (default: lsample)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"lsample"}
	}
	bad := 0
	for _, dir := range dirs {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "doccheck: %s\n", m)
		}
		bad += len(missing)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported symbol(s) without doc comments\n", bad)
		os.Exit(1)
	}
	fmt.Println("doccheck: every exported symbol is documented")
}

func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var missing []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		missing = append(missing, checkFile(fset, f)...)
	}
	return missing, nil
}

func checkFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s: %s has no doc comment", p, what))
	}

	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !funcIsPublic(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "exported func "+d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if !sp.Name.IsExported() {
						continue
					}
					if d.Doc == nil && sp.Doc == nil {
						report(sp.Pos(), "exported type "+sp.Name.Name)
					}
					checkTypeSpec(sp, report)
				case *ast.ValueSpec:
					for _, n := range sp.Names {
						if n.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							report(n.Pos(), "exported value "+n.Name)
							break
						}
					}
				}
			}
		}
	}
	return out
}

// checkTypeSpec reports undocumented exported members visible through an
// exported type: struct fields and interface methods. A same-line trailing
// comment counts — the compact style several small fields use.
func checkTypeSpec(sp *ast.TypeSpec, report func(token.Pos, string)) {
	switch t := sp.Type.(type) {
	case *ast.StructType:
		for _, field := range t.Fields.List {
			exported := len(field.Names) == 0 // embedded fields are surface
			for _, n := range field.Names {
				if n.IsExported() {
					exported = true
				}
			}
			if exported && field.Doc == nil && field.Comment == nil {
				name := sp.Name.Name + " embedded field"
				if len(field.Names) > 0 {
					name = sp.Name.Name + "." + field.Names[0].Name
				}
				report(field.Pos(), "exported field "+name)
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if m.Doc == nil && m.Comment == nil {
				name := sp.Name.Name + " embed"
				if len(m.Names) > 0 {
					name = sp.Name.Name + "." + m.Names[0].Name
				}
				report(m.Pos(), "interface method "+name)
			}
		}
	}
}

// funcIsPublic reports whether a function or method is part of the public
// surface: an exported name, and for methods an exported receiver base.
func funcIsPublic(d *ast.FuncDecl) bool {
	if !d.Name.IsExported() {
		return false
	}
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	base := d.Recv.List[0].Type
	for {
		switch t := base.(type) {
		case *ast.StarExpr:
			base = t.X
		case *ast.IndexExpr:
			base = t.X
		case *ast.Ident:
			return t.IsExported()
		default:
			return true
		}
	}
}
