// Command apicheck fails the build when a public (non-internal) package
// leaks internal/ types into its exported API surface. The public SDK must
// stay consumable without importing internal packages; a *dataset.Table in
// an exported signature would force callers through internal paths and
// freeze internals into the compatibility surface.
//
// The check is purely syntactic: for every non-test file of each public
// package it collects the local names of repro/internal/... imports, then
// walks exported declarations — function and method signatures, exported
// struct fields, interface embeds and methods, type definitions, and
// exported var/const types — reporting any selector that resolves to an
// internal import. Unexported fields and function bodies may use internal
// packages freely; that is the point of the wrapper types.
//
// Usage: go run ./tools/apicheck [packages...]  (default: lsample)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

func main() {
	pkgs := os.Args[1:]
	if len(pkgs) == 0 {
		pkgs = []string{"lsample"}
	}
	bad := 0
	for _, dir := range pkgs {
		violations, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apicheck: %v\n", err)
			os.Exit(2)
		}
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "apicheck: %s\n", v)
		}
		bad += len(violations)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "apicheck: %d internal leak(s) in public API signatures\n", bad)
		os.Exit(1)
	}
	fmt.Println("apicheck: public API signatures are free of internal/ types")
}

func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var violations []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		violations = append(violations, checkFile(fset, f)...)
	}
	return violations, nil
}

// checkFile reports exported declarations in f whose signatures reference
// an internal import.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	internals := make(map[string]string) // local name -> import path
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !strings.Contains(path, "/internal/") && !strings.HasPrefix(path, "internal/") {
			continue
		}
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
		} else {
			local = path[strings.LastIndex(path, "/")+1:]
		}
		internals[local] = path
	}
	if len(internals) == 0 {
		return nil
	}

	var out []string
	report := func(pos token.Pos, what string, pkg string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s: %s references internal package %q", p, what, internals[pkg]))
	}
	// flag walks a type expression and reports selectors rooted at an
	// internal import.
	var flag func(expr ast.Expr, what string)
	flag = func(expr ast.Expr, what string) {
		ast.Inspect(expr, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				if _, isInternal := internals[id.Name]; isInternal {
					report(id.Pos(), what, id.Name)
				}
			}
			return true
		})
	}

	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			// Methods count when the receiver's base type is exported;
			// plain functions when their own name is.
			if !funcIsPublic(d) {
				continue
			}
			what := "exported func " + d.Name.Name
			if d.Type.Params != nil {
				for _, p := range d.Type.Params.List {
					flag(p.Type, what)
				}
			}
			if d.Type.Results != nil {
				for _, r := range d.Type.Results.List {
					flag(r.Type, what)
				}
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if !sp.Name.IsExported() {
						continue
					}
					checkTypeSpec(sp, flag)
				case *ast.ValueSpec:
					exported := false
					for _, n := range sp.Names {
						if n.IsExported() {
							exported = true
						}
					}
					if exported && sp.Type != nil {
						flag(sp.Type, "exported value "+sp.Names[0].Name)
					}
				}
			}
		}
	}
	return out
}

// checkTypeSpec flags internal references visible through an exported type:
// exported struct fields, interface methods and embeds, and any other
// definition's underlying type expression.
func checkTypeSpec(sp *ast.TypeSpec, flag func(ast.Expr, string)) {
	what := "exported type " + sp.Name.Name
	switch t := sp.Type.(type) {
	case *ast.StructType:
		for _, field := range t.Fields.List {
			if len(field.Names) == 0 {
				// Embedded field: part of the exposed surface.
				flag(field.Type, what+" (embedded field)")
				continue
			}
			for _, n := range field.Names {
				if n.IsExported() {
					flag(field.Type, what+" field "+n.Name)
					break
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			flag(m.Type, what+" (interface)")
		}
	default:
		// Aliases, named types over maps/slices/funcs: the whole
		// definition is the surface.
		flag(sp.Type, what)
	}
}

// funcIsPublic reports whether a function or method is part of the public
// surface: an exported name, and for methods an exported receiver base.
func funcIsPublic(d *ast.FuncDecl) bool {
	if !d.Name.IsExported() {
		return false
	}
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	base := d.Recv.List[0].Type
	for {
		switch t := base.(type) {
		case *ast.StarExpr:
			base = t.X
		case *ast.IndexExpr:
			base = t.X
		case *ast.Ident:
			return t.IsExported()
		default:
			return true
		}
	}
}
