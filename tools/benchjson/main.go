// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one object per benchmark result:
//
//	{"pkg": "repro", "name": "BenchmarkFig2", "runs": 1,
//	 "metrics": {"ns/op": 1.38e8, "evals/op": 61320}}
//
// It powers `make bench-smoke`, which appends machine-readable benchmark
// snapshots (BENCH_*.json) to the repository's perf trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Pkg     string             `json:"pkg"`
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
	GOOS    string             `json:"goos,omitempty"`
	GOARCH  string             `json:"goarch,omitempty"`
	CPU     string             `json:"cpu,omitempty"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	results := []result{}
	pkg, goos, goarch, cpu := "", "", "", ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		// Environment headers: recorded per result so snapshots from
		// different machines stay comparable.
		if rest, ok := strings.CutPrefix(line, "goos: "); ok {
			goos = strings.TrimSpace(rest)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "goarch: "); ok {
			goarch = strings.TrimSpace(rest)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, run count, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix go test appends.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metrics := make(map[string]float64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		results = append(results, result{Pkg: pkg, Name: name, Runs: runs, Metrics: metrics,
			GOOS: goos, GOARCH: goarch, CPU: cpu})
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed (pattern matched nothing?)")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
