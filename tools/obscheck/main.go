// Command obscheck lints the repository's observability conventions. It
// parses every non-test Go file under the given roots (default ".") and
// fails the build when it finds:
//
//   - a metric registered without a help string: any call to NewCounter,
//     NewGauge, NewHistogram, CounterFunc, GaugeFunc, or HistogramFunc
//     whose help argument is the empty string literal "" (the registry
//     panics on this at runtime; the lint catches it at CI time);
//
//   - a span opened but never ended: an assignment from StartSpan,
//     StartRequest, EnsureSpan, or ChildSpan whose span result either is
//     discarded into the blank identifier or has no End() call anywhere
//     in the enclosing function (including deferred calls and nested
//     function literals). A span that never ends never reaches the trace
//     ring and never updates the slow-query log, so this is always a bug.
//
// The End check is intentionally syntactic: one End() call anywhere in
// the function satisfies it, so a span ended on only some return paths
// can still slip through — prefer `defer span.End()` or the explicit
// End-before-every-return idiom the codebase uses.
//
// Usage: obscheck [dir ...]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// metricFuncs are registration calls whose second argument is the
// mandatory help string.
var metricFuncs = map[string]bool{
	"NewCounter":    true,
	"NewGauge":      true,
	"NewHistogram":  true,
	"CounterFunc":   true,
	"GaugeFunc":     true,
	"HistogramFunc": true,
}

// spanFuncs open a span as the second result: (ctx, span) or
// (parent, child).
var spanFuncs = map[string]bool{
	"StartSpan":    true,
	"StartRequest": true,
	"EnsureSpan":   true,
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	fset := token.NewFileSet()
	var problems []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name != "." && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			// Test files are exempt: the obs package's own tests open
			// spans without ending them and register empty-help metrics
			// on purpose, to assert the runtime behavior of exactly the
			// mistakes this lint exists to catch.
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return fmt.Errorf("parse %s: %w", path, err)
			}
			problems = append(problems, lintFile(fset, file)...)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
			os.Exit(2)
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "obscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

func lintFile(fset *token.FileSet, file *ast.File) []string {
	var problems []string

	// Rule 1: metric registrations must carry a help string. The lint is
	// conservative: it only flags a literal "", since non-literal help
	// arguments are checked by the registry's runtime panic.
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !metricFuncs[name] || len(call.Args) < 2 {
			return true
		}
		if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Kind == token.STRING && lit.Value == `""` {
			problems = append(problems,
				fmt.Sprintf("%s: %s registered with an empty help string", fset.Position(call.Pos()), name))
		}
		return true
	})

	// Rule 2: every opened span must End. Walk each function (declaration
	// or literal) and match span-producing assignments against End calls
	// in the same body.
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		problems = append(problems, lintSpans(fset, body)...)
		return true
	})
	return problems
}

// lintSpans checks one function body: span variables assigned from a
// span-opening call in THIS body (not in nested literals — those are
// visited as their own functions) must have End called somewhere in the
// body's whole subtree, nested literals included.
func lintSpans(fset *token.FileSet, body *ast.BlockStmt) []string {
	type opened struct {
		name string
		pos  token.Pos
		fn   string
	}
	var spans []opened
	var problems []string

	// Collect span-opening assignments belonging to this body only.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false // nested function: linted separately
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeName(call)
		spanIdx := -1
		if spanFuncs[fn] && len(assign.Lhs) == 2 {
			spanIdx = 1 // (ctx, span) := StartSpan(...)
		} else if fn == "ChildSpan" && len(assign.Lhs) == 1 {
			spanIdx = 0 // child := span.ChildSpan(...)
		}
		if spanIdx < 0 {
			return true
		}
		id, ok := assign.Lhs[spanIdx].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			problems = append(problems,
				fmt.Sprintf("%s: span from %s discarded without End", fset.Position(assign.Pos()), fn))
			return true
		}
		spans = append(spans, opened{name: id.Name, pos: assign.Pos(), fn: fn})
		return true
	})
	if len(spans) == 0 {
		return problems
	}

	// Find End calls anywhere below this body, nested literals included —
	// a goroutine closing over the span counts.
	ended := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		if recv, ok := sel.X.(*ast.Ident); ok {
			ended[recv.Name] = true
		}
		return true
	})
	for _, s := range spans {
		if !ended[s.name] {
			problems = append(problems,
				fmt.Sprintf("%s: span %q from %s is never ended in this function", fset.Position(s.pos), s.name, s.fn))
		}
	}
	return problems
}

// calleeName returns the bare called name: Foo for Foo(...) and for
// x.y.Foo(...).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
