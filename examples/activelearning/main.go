// Activelearning: reproduce the paper's Figure 1 — a kNN classifier on the
// neighbors workload, sharpened by two uncertainty-sampling augmentation
// steps of 100 objects each. Prints classifier quality per step, writes the
// score heat-map grids (the figure's panels) as CSV files, and finishes
// with a count estimate through the public repro/lsample SDK using the same
// kNN classifier.
//
// Run: go run ./examples/activelearning [outdir]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/active"
	"repro/internal/learn"
	"repro/internal/sample"
	"repro/internal/workload"
	"repro/internal/xrand"
	"repro/lsample"
)

func main() {
	outdir := "."
	if len(os.Args) > 1 {
		outdir = os.Args[1]
	}
	suite, err := workload.BuildNeighbors(20000, 11)
	if err != nil {
		log.Fatal(err)
	}
	in := suite.Instances[workload.S]
	features := in.Features()
	pred := in.LabelFunc()
	r := xrand.New(31)

	// Initial training set: 5% of O, as in Figure 1.
	initial := in.N() / 20
	const step = 100
	factory := func() learn.Classifier { return learn.NewKNN(5) }

	idx := sample.SRS(r, in.N(), initial)
	labels := make([]bool, len(idx))
	labeled := make(map[int]bool, len(idx))
	for j, i := range idx {
		labels[j] = pred(i)
		labeled[i] = true
	}
	fit := func() learn.Classifier {
		X := make([][]float64, len(idx))
		for j, i := range idx {
			X[j] = features[i]
		}
		c := factory()
		if err := c.Fit(X, labels); err != nil {
			log.Fatal(err)
		}
		return c
	}

	clf := fit()
	fmt.Printf("%-5s %-11s %-9s %-7s\n", "step", "train size", "accuracy", "auc")
	report := func(stepNo int) {
		scores := make([]float64, in.N())
		for i := range scores {
			scores[i] = clf.Score(features[i])
		}
		m := learn.EvaluateScores(scores, in.Labels)
		fmt.Printf("%-5d %-11d %-9.4f %-7.4f\n", stepNo, len(idx), m.Accuracy, m.AUC)
		path := filepath.Join(outdir, fmt.Sprintf("heatmap_step%d.csv", stepNo))
		if err := writeHeatmap(path, clf, features); err != nil {
			log.Fatal(err)
		}
	}
	report(0)

	for stepNo := 1; stepNo <= 2; stepNo++ {
		sel := active.SelectUncertain(clf, features, labeled, step, 0, r)
		for _, i := range sel {
			labeled[i] = true
			idx = append(idx, i)
			labels = append(labels, pred(i))
		}
		clf = fit()
		report(stepNo)
	}
	fmt.Printf("\nheat-map grids written to %s/heatmap_step{0,1,2}.csv\n", outdir)
	fmt.Println("(cells are classifier scores over a 60x60 grid of the feature plane;")
	fmt.Println(" red≈0, blue≈1, yellow≈0.5 in the paper's rendering)")

	// The same classifier family drives a learned count estimate through
	// the SDK: LSS with kNN, 2% budget.
	est, err := lsample.NewEstimator(
		lsample.WithMethod("lss"),
		lsample.WithClassifier("knn"),
		lsample.WithBudget(0.02),
		lsample.WithSeed(31),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := est.Estimate(context.Background(), features, pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLSS+kNN count estimate: %.0f [%.0f, %.0f], true %d (%d evaluations)\n",
		res.Count, res.CI.Lo, res.CI.Hi, in.TrueCount, res.SamplesUsed)
}

// writeHeatmap evaluates the scoring function over a 60×60 grid spanning
// the feature plane and writes it as CSV.
func writeHeatmap(path string, clf learn.Classifier, features [][]float64) error {
	minX, maxX := features[0][0], features[0][0]
	minY, maxY := features[0][1], features[0][1]
	for _, f := range features {
		if f[0] < minX {
			minX = f[0]
		}
		if f[0] > maxX {
			maxX = f[0]
		}
		if f[1] < minY {
			minY = f[1]
		}
		if f[1] > maxY {
			maxY = f[1]
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	const grid = 60
	for gy := 0; gy < grid; gy++ {
		for gx := 0; gx < grid; gx++ {
			x := minX + (maxX-minX)*float64(gx)/(grid-1)
			y := minY + (maxY-minY)*float64(gy)/(grid-1)
			if gx > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprintf(f, "%.3f", clf.Score([]float64{x, y}))
		}
		fmt.Fprintln(f)
	}
	return nil
}
