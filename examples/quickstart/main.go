// Quickstart: estimate the count of objects satisfying an expensive
// predicate using Learned Stratified Sampling, against plain random
// sampling, on a synthetic population.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/xrand"
)

func main() {
	// A population of 20,000 objects with two features. The "expensive"
	// predicate accepts objects inside an ellipse — imagine a correlated
	// subquery or UDF costing milliseconds per call.
	const n = 20000
	r := xrand.New(7)
	features := make([][]float64, n)
	for i := range features {
		features[i] = []float64{r.Float64()*4 - 2, r.Float64()*4 - 2}
	}
	q := predicate.NewFunc(func(i int) bool {
		x, y := features[i][0], features[i][1]
		return x*x/2.2+y*y/0.7 <= 1
	})
	obj, err := core.NewObjectSet(features, q)
	if err != nil {
		log.Fatal(err)
	}

	truth := 0
	for i := 0; i < n; i++ {
		if q.Eval(i) {
			truth++
		}
	}
	q.ResetCount()
	fmt.Printf("population N = %d, true count = %d (%.1f%%)\n\n", n, truth, 100*float64(truth)/n)

	// Budget: label only 2% of the population.
	budget := n / 50
	methods := []core.Method{
		&core.SRS{},
		&core.LWS{NewClassifier: func(s uint64) learn.Classifier { return learn.NewRandomForest(50, s) }},
		&core.LSS{NewClassifier: func(s uint64) learn.Classifier { return learn.NewRandomForest(50, s) }},
	}
	fmt.Printf("%-6s  %10s  %22s  %8s\n", "method", "estimate", "95% CI", "error")
	for _, m := range methods {
		res, err := m.Estimate(obj, budget, xrand.New(42))
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * abs(res.Estimate-float64(truth)) / float64(truth)
		fmt.Printf("%-6s  %10.1f  [%8.1f, %8.1f]  %7.2f%%\n",
			res.Method, res.Estimate, res.CI.Lo, res.CI.Hi, errPct)
	}
	fmt.Printf("\neach method spent exactly %d predicate evaluations (%.1f%% of N)\n",
		budget, 100*float64(budget)/n)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
