// Quickstart: estimate the count of objects satisfying an expensive
// predicate with the public repro/lsample SDK — Learned Weighted and
// Learned Stratified Sampling against plain random sampling, on a synthetic
// population. Everything here goes through lsample; no internal packages.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/lsample"
)

func main() {
	// A population of 20,000 objects with two features. The "expensive"
	// predicate accepts objects inside an ellipse — imagine a correlated
	// subquery or UDF costing milliseconds per call.
	const n = 20000
	r := rand.New(rand.NewSource(7))
	features := make([][]float64, n)
	for i := range features {
		features[i] = []float64{r.Float64()*4 - 2, r.Float64()*4 - 2}
	}
	pred := func(i int) bool {
		x, y := features[i][0], features[i][1]
		return x*x/2.2+y*y/0.7 <= 1
	}

	truth := 0
	for i := 0; i < n; i++ {
		if pred(i) {
			truth++
		}
	}
	fmt.Printf("population N = %d, true count = %d (%.1f%%)\n\n", n, truth, 100*float64(truth)/n)

	// Budget: label only 2% of the population. The same seed makes every
	// run byte-identical.
	fmt.Printf("%-6s  %10s  %22s  %8s\n", "method", "estimate", "95% CI", "error")
	for _, method := range []string{"srs", "lws", "lss"} {
		est, err := lsample.NewEstimator(
			lsample.WithMethod(method),
			lsample.WithBudget(0.02),
			lsample.WithSeed(42),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := est.Estimate(context.Background(), features, pred)
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * abs(res.Count-float64(truth)) / float64(truth)
		fmt.Printf("%-6s  %10.1f  [%8.1f, %8.1f]  %7.2f%%\n",
			res.Method, res.Count, res.CI.Lo, res.CI.Hi, errPct)
	}
	fmt.Printf("\neach method spent the same labeling budget: %d predicate evaluations (2%% of N)\n", n/50)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
