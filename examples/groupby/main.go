// Groupby: GROUP BY counting through the public repro/lsample SDK — one
// shared sampling/learning plan answers every group of
//
//	SELECT region, COUNT(*) FROM (
//	    SELECT o1.id, o1.region FROM D o1, D o2
//	    WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
//	    GROUP BY o1.id, o1.region HAVING COUNT(*) < k
//	) GROUP BY region
//
// The inner query is Example 2's k-skyband counting query with the
// object's region carried along; the outer GROUP BY asks for one count per
// region. ExecuteGroups draws one stream of samples, labels each sampled
// object once with the expensive predicate, and reads every region's
// count, CI, and proportion out of the shared draw — so the labeling cost
// is that of a single estimation, not one per region. The demo contrasts
// that with the naive alternative: one full estimate per region, which
// re-learns and re-labels for every group.
//
// Run: go run ./examples/groupby
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/lsample"
)

const groupedQuery = `
	SELECT region, COUNT(*) FROM (
		SELECT o1.id, o1.region FROM D o1, D o2
		WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
		GROUP BY o1.id, o1.region HAVING COUNT(*) < k
	) GROUP BY region`

// naiveQuery estimates one region at a time: the same counting query with
// the region pinned by a parameter. Looping it over regions is what the
// shared-sample grouped path replaces.
const naiveQuery = `
	SELECT o1.id FROM D o1, D o2
	WHERE o1.region = r AND o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
	GROUP BY o1.id HAVING COUNT(*) < k`

func main() {
	// D(id, x, y, region): four regions of uneven size, including a rare
	// one that exercises the per-group fallback.
	const n = 400
	const k = 25
	regions := []string{"east", "east", "north", "east", "west", "north", "east", "south"}
	r := rand.New(rand.NewSource(21))
	tb, err := lsample.NewTable("D", "id:int,x:float,y:float,region:string")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tb.AppendRow(int64(i), r.Float64()*100, r.Float64()*100, regions[i%len(regions)]); err != nil {
			log.Fatal(err)
		}
	}

	sess, err := lsample.NewSession(lsample.NewMemorySource(tb),
		lsample.WithMethod("lss"),
		lsample.WithStrata(3),
		lsample.WithBudget(0.1),
		lsample.WithSeed(11),
		// Rare regions get a dedicated fallback SRS; Wilson intervals keep
		// their CIs informative even when that small sample is all-negative.
		lsample.WithInterval(lsample.Wilson),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Shared plan: prepare once, estimate every region from one sample.
	q, err := sess.Prepare(groupedQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("grouped counting query:")
	fmt.Println(" ", strings.Join(strings.Fields(q.SQL()), " "))
	fmt.Printf("\ngroup columns: %v\n", q.GroupColumns())

	res, err := q.ExecuteGroups(context.Background(), map[string]any{"k": k}, lsample.WithExact(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-8s %8s %10s %18s %9s %6s\n", "region", "objects", "estimate", "95% CI", "sampled", "true")
	for _, g := range res.Groups {
		fmt.Printf("%-8s %8d %10.1f [%7.1f,%7.1f] %9d %6d\n",
			g.Key[0], g.Objects, g.Count, g.CI.Lo, g.CI.Hi, g.Sampled, *g.TrueCount)
	}
	// SamplesUsed includes the WithExact verification pass (N additional
	// evaluations); the estimation itself spent the shared budget plus a
	// small top-up for rare regions.
	sharedEvals := res.SamplesUsed - int64(res.Objects)
	fmt.Printf("\nshared plan: %d q-evaluations for all %d regions (budget %d + rare-group top-up)\n",
		sharedEvals, len(res.Groups), res.Budget)

	// Naive alternative: one estimation per region — every loop iteration
	// re-learns a classifier and re-labels its own sample.
	nq, err := sess.Prepare(naiveQuery)
	if err != nil {
		log.Fatal(err)
	}
	var naiveEvals int64
	for _, g := range res.Groups {
		est, err := nq.Execute(context.Background(), map[string]any{"k": k, "r": g.Key[0]})
		if err != nil {
			log.Fatal(err)
		}
		naiveEvals += est.SamplesUsed
	}
	fmt.Printf("naive loop:  %d q-evaluations for the same %d regions (one estimate each)\n",
		naiveEvals, len(res.Groups))
	fmt.Printf("sharing saves %.0f%% of the expensive-predicate work\n",
		100*(1-float64(sharedEvals)/float64(naiveEvals)))
}
