// Skyband: the paper's Example 2 on the sports workload — estimate the
// size of the k-skyband (players dominated by fewer than k others on
// strikeouts and wins) without evaluating the aggregate subquery for every
// player, through the public repro/lsample SDK.
//
// Run: go run ./examples/skyband
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/workload"
	"repro/lsample"
)

func main() {
	fmt.Println("Example 2 (k-skyband size), SQL form:")
	fmt.Println(`
  SELECT COUNT(*) FROM
    (SELECT o1.id FROM D o1, D o2
     WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
     GROUP BY o1.id HAVING COUNT(*) < k);
	`)

	suite, err := workload.BuildSports(12000, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-8s %-8s %-12s %-10s %-24s %s\n",
		"regime", "k", "truth", "method", "estimate", "95% CI", "rel.err")
	for _, sz := range []workload.Size{workload.XS, workload.S, workload.L, workload.XXL} {
		in := suite.Instances[sz]
		for _, method := range []string{"srs", "lss"} {
			est, err := lsample.NewEstimator(
				lsample.WithMethod(method),
				lsample.WithBudget(0.02),
				lsample.WithSeed(uint64(sz)+99),
			)
			if err != nil {
				log.Fatal(err)
			}
			// The expensive predicate: a full O(N) dominance scan per player.
			res, err := est.Estimate(context.Background(), in.Features(), in.ExpensiveFunc())
			if err != nil {
				log.Fatal(err)
			}
			rel := 100 * abs(res.Count-float64(in.TrueCount)) / float64(in.TrueCount)
			fmt.Printf("%-6s %-8d %-8d %-12s %-10.0f [%9.1f, %9.1f]  %6.2f%%\n",
				sz, in.K, in.TrueCount, res.Method, res.Count, res.CI.Lo, res.CI.Hi, rel)
		}
	}
	fmt.Println("\nLSS trains a random forest on 25% of the budget, orders players by")
	fmt.Println("classifier score, optimizes the stratification from a pilot sample,")
	fmt.Println("and spends the rest of the budget on a Neyman-allocated second stage.")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
