// Sqlcount: the full SQL pipeline of §2 through the public repro/lsample
// SDK — prepare a counting query (parse, decompose into an
// object-enumeration query Q2 and a per-object predicate Q3, auto-select
// classifier features), then estimate the count with the predicate
// evaluated through the query engine. Compares against exact (slow)
// evaluation via WithExact.
//
// The demo follows the paper's Example 2 exactly: the self-join/GROUP
// BY/HAVING form is decomposed mechanically, and the per-object test is
// then evaluated as the equivalent correlated aggregate subquery
//
//	(SELECT COUNT(*) FROM D WHERE x >= o.x AND y >= o.y
//	                          AND (x > o.x OR y > o.y)) < k
//
// which costs one full scan of D per object — expensive, but far cheaper
// than the nested-loop join the engine would otherwise run.
//
// Run: go run ./examples/sqlcount
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/lsample"
)

const joinQuery = `
	SELECT o1.id FROM D o1, D o2
	WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
	GROUP BY o1.id HAVING COUNT(*) < k`

func main() {
	// Build the table D(id, x, y). The predicate runs through the naive
	// interpreted engine (a full join rescan per evaluation), so the demo
	// stays small; the SDK's cost model is identical at any scale.
	const n = 300
	const k = 25
	r := rand.New(rand.NewSource(17))
	tb, err := lsample.NewTable("D", "id:int,x:float,y:float")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tb.AppendRow(int64(i), r.Float64()*100, r.Float64()*100); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Prepare: parse the self-join counting query and decompose it per
	// §2. Feature selection is automatic: the columns the predicate reads
	// through the object's alias (here x and y), per the paper's heuristic.
	sess, err := lsample.NewSession(lsample.NewMemorySource(tb))
	if err != nil {
		log.Fatal(err)
	}
	q, err := sess.Prepare(joinQuery,
		lsample.WithMethod("lss"),
		lsample.WithStrata(3),
		lsample.WithBudget(0.1),
		lsample.WithSeed(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("counting query (Example 2, self-join form):")
	fmt.Println(" ", q.SQL())
	fmt.Println("\ndecomposition (§2):")
	fmt.Println("  Q2 (objects):  ", q.ObjectsSQL())
	fmt.Println("  Q3 (predicate):", q.PredicateSQL())

	// 2. Estimate with a 10% budget of engine-evaluated q, and — for the
	// comparison this demo is about — also compute the exact count, which
	// evaluates q for every object.
	t0 := time.Now()
	res, err := q.Execute(context.Background(), map[string]any{"k": k}, lsample.WithExact(true))
	if err != nil {
		log.Fatal(err)
	}
	total := time.Since(t0)

	fmt.Printf("\n|O| = %d objects enumerated by Q2\n", res.Objects)
	fmt.Printf("features: %v (auto-selected from the predicate)\n", res.FeatureColumns)
	fmt.Printf("\nexact count      %d     (full evaluation of q for every object)\n", *res.TrueCount)
	fmt.Printf("LSS estimate     %.1f  [%.1f, %.1f]\n", res.Count, res.CI.Lo, res.CI.Hi)
	fmt.Printf("                 %d q-evaluations total (estimate + exact pass), %v\n",
		res.SamplesUsed, total.Round(time.Millisecond))
	fmt.Printf("estimation spent %d evaluations (10%% of |O|) vs %d for the exact pass\n",
		res.Budget, res.Objects)
}
