// Sqlcount: the full SQL pipeline of §2 — parse a counting query, decompose
// it into an object-enumeration query (Q2) and a per-object predicate (Q3),
// and estimate the count by Learned Stratified Sampling with the predicate
// evaluated through the query engine. Compares against exact (slow)
// evaluation.
//
// The demo follows the paper's Example 2 exactly: the self-join/GROUP
// BY/HAVING form is decomposed mechanically, and the per-object test is
// then evaluated as the equivalent correlated aggregate subquery
//
//	(SELECT COUNT(*) FROM D WHERE x >= o.x AND y >= o.y
//	                          AND (x > o.x OR y > o.y)) < k
//
// which costs one full scan of D per object — expensive, but far cheaper
// than the nested-loop join the engine would otherwise run.
//
// Run: go run ./examples/sqlcount
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/sql"
	"repro/internal/xrand"
)

const joinQuery = `
	SELECT o1.id FROM D o1, D o2
	WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
	GROUP BY o1.id HAVING COUNT(*) < k`

const predicateQuery = `
	SELECT COUNT(*) FROM D o WHERE
	  (SELECT COUNT(*) FROM D WHERE x >= o.x AND y >= o.y AND (x > o.x OR y > o.y)) < k`

const objectPredicate = `
	(SELECT COUNT(*) FROM D WHERE x >= _o.x AND y >= _o.y AND (x > _o.x OR y > _o.y)) < k`

func main() {
	// Build the table D(id, x, y).
	const n = 2000
	const k = 25
	r := xrand.New(17)
	tb := dataset.New("D", dataset.Schema{
		{Name: "id", Kind: dataset.Int},
		{Name: "x", Kind: dataset.Float},
		{Name: "y", Kind: dataset.Float},
	})
	for i := 0; i < n; i++ {
		tb.MustAppendRow(int64(i), r.Float64()*100, r.Float64()*100)
	}

	// 1. Parse the self-join counting query and decompose it per §2.
	stmt, err := sql.Parse(joinQuery)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := engine.Decompose(stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("counting query (Example 2, self-join form):")
	fmt.Println(" ", stmt.String())
	fmt.Println("\ndecomposition (§2):")
	fmt.Println("  Q2 (objects):  ", dec.Objects.String())
	fmt.Println("  Q3 (predicate):", dec.Predicate.String())

	ev := engine.NewEvaluator(engine.Catalog{"D": tb})
	ev.SetParam("k", engine.IntVal(k))

	// 2. Enumerate O cheaply via Q2.
	objects, err := ev.Run(dec.Objects, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n|O| = %d objects enumerated by Q2\n", objects.NumRows())

	// 3. The per-object predicate: Example 2's correlated aggregate
	// subquery (one scan of D per evaluation — this is the expensive q).
	predExpr, err := sql.ParseExpr(objectPredicate)
	if err != nil {
		log.Fatal(err)
	}
	// Q2 exposes only the group key (id); bind the object alias to the
	// matching base-table row so the predicate can read o.x and o.y.
	dRel := engine.NewTableRelation(tb)
	q := predicate.NewFunc(func(i int) bool {
		id := int(objects.Value(i, 0).I)
		sc := engine.NewScope(nil)
		sc.BindRow(engine.ObjectAlias, dRel, id)
		v, err := ev.Eval(predExpr, sc)
		if err != nil {
			log.Fatal(err)
		}
		b, err := v.AsBool()
		if err != nil {
			log.Fatal(err)
		}
		return b
	})
	// Feature selection is automatic: the columns the predicate reads
	// through the object's alias (here x and y), per the paper's heuristic.
	featCols, err := engine.NumericFeatureColumns(tb, dec.FeatureCols, map[string]bool{"k": true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfeatures: %v (auto-selected from the predicate)\n", featCols)
	allFeat, err := tb.Features(featCols...)
	if err != nil {
		log.Fatal(err)
	}
	features := make([][]float64, objects.NumRows())
	for i := range features {
		id := int(objects.Value(i, 0).I)
		features[i] = allFeat[id]
	}
	obj, err := core.NewObjectSet(features, q)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Exact answer via the engine's predicate-form query (still O(N²)).
	exactStmt, err := sql.Parse(predicateQuery)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	exactRes, err := ev.Run(exactStmt, nil)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := exactRes.ScalarInt()
	if err != nil {
		log.Fatal(err)
	}
	exactDur := time.Since(t0)

	// 5. Estimated answer: LSS with a 10% budget of engine-evaluated q.
	budget := objects.NumRows() / 10
	m := &core.LSS{
		NewClassifier: func(s uint64) learn.Classifier { return learn.NewRandomForest(30, s) },
		Strata:        3,
	}
	t1 := time.Now()
	res, err := m.Estimate(obj, budget, xrand.New(4))
	if err != nil {
		log.Fatal(err)
	}
	estDur := time.Since(t1)

	fmt.Printf("\nexact count      %d     (full evaluation of q for every object, %v)\n",
		exact, exactDur.Round(time.Millisecond))
	fmt.Printf("LSS estimate     %.1f  [%.1f, %.1f]\n", res.Estimate, res.CI.Lo, res.CI.Hi)
	fmt.Printf("                 %d q-evaluations (10%% of |O|), %v total\n",
		res.Evals, estDur.Round(time.Millisecond))
	speedup := float64(exactDur) / float64(estDur)
	fmt.Printf("speedup          %.1fx\n", speedup)
}
