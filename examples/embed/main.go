// Embed: the SDK workflow an application embeds — build a table from your
// own data, open a Session over a DataSource, Prepare a counting query
// once, and Execute it repeatedly with different bound parameters. The
// expensive analysis (parsing, §2 decomposition, automatic feature
// selection, the O(N) key index) happens a single time; each Execute only
// enumerates objects and runs the learned estimator.
//
// Run: go run ./examples/embed
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"

	"repro/lsample"
)

func main() {
	// Your application's data: a table D(id, x, y) of 300 points. (The
	// predicate is evaluated through the naive interpreted engine, which
	// rescans the join per evaluation — keep demo tables small.)
	const n = 300
	tb, err := lsample.NewTable("D", "id:int,x:float,y:float")
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	for i := 0; i < n; i++ {
		if err := tb.AppendRow(int64(i), r.Float64()*100, r.Float64()*100); err != nil {
			log.Fatal(err)
		}
	}

	// A session binds a DataSource to default options. MemorySource serves
	// in-memory tables; CSVSource and WorkloadSource are the other shipped
	// sources.
	sess, err := lsample.NewSession(
		lsample.NewMemorySource(tb),
		lsample.WithMethod("lss"),
		lsample.WithBudget(0.05),
		lsample.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Example 2's k-skyband query: players dominated by fewer than k
	// others. k is a free identifier, bound per Execute.
	q, err := sess.Prepare(`SELECT o1.id FROM D o1, D o2
		WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
		GROUP BY o1.id HAVING COUNT(*) < k`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("prepared once; decomposition (§2):")
	fmt.Println("  objects (Q2):  ", q.ObjectsSQL())
	fmt.Println("  predicate (Q3):", q.PredicateSQL())

	fmt.Printf("\n%-6s %10s %22s %10s\n", "k", "estimate", "95% CI", "evals")
	for _, k := range []int{10, 25, 50} {
		res, err := q.Execute(context.Background(), map[string]any{"k": k})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %10.1f [%9.1f, %9.1f] %10d\n",
			k, res.Count, res.CI.Lo, res.CI.Hi, res.SamplesUsed)
	}

	// Estimations are context-aware: a canceled context aborts mid-run
	// before the next predicate evaluation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.Execute(ctx, map[string]any{"k": 25}); errors.Is(err, context.Canceled) {
		fmt.Println("\ncanceled context aborted the estimation:", err)
	}
}
