// Streaming: live datasets with delta-priced re-estimation. An items table
// and an append-only events table keep receiving batches while one
// LiveQuery maintains the count of items with more than 4 events. Every
// refresh pins the newest MVCC snapshots and relabels only what the delta
// could have changed: new items, and existing items the new events point at
// (the e.item = i.id join is key-correlated, so a delta row names exactly
// the object it can affect). The demo prints the paper's cost unit —
// predicate evaluations — per refresh next to what a naive re-register
// (throw away the session, estimate from scratch) pays for the same answer.
//
// Run: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/lsample"
)

const query = `SELECT i.id FROM items i, events e WHERE e.item = i.id GROUP BY i.id HAVING COUNT(*) > 4`

func main() {
	rng := rand.New(rand.NewSource(29))
	items, err := lsample.NewLiveTable("items", "id:int,f1:float,f2:float", "id")
	if err != nil {
		log.Fatal(err)
	}
	events, err := lsample.NewLiveTable("events", "item:int,v:float", "")
	if err != nil {
		log.Fatal(err)
	}
	nextID := int64(0)
	appendItems := func(n int) int {
		var ib, eb lsample.DeltaBatch
		for i := 0; i < n; i++ {
			id := nextID
			nextID++
			f1 := rng.Float64() * 100
			ib.Append(id, f1, rng.Float64()*100)
			// Items with larger f1 get more events — which is what makes
			// the predicate learnable from the item's own columns.
			for e := 0; e < int(f1/12); e++ {
				eb.Append(id, rng.Float64()*10)
			}
		}
		if _, err := items.Apply(&ib); err != nil {
			log.Fatal(err)
		}
		if _, err := events.Apply(&eb); err != nil {
			log.Fatal(err)
		}
		return ib.Len() + eb.Len()
	}
	appendItems(1500)

	src := lsample.NewLiveSource()
	src.AddLive(items)
	src.AddLive(events)
	sess, err := lsample.NewSession(src,
		lsample.WithMethod("lss"), lsample.WithBudget(0.1), lsample.WithSeed(41))
	if err != nil {
		log.Fatal(err)
	}
	lq, err := sess.PrepareLive(query)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("maintained estimate: COUNT(items with >4 events), budget 10%")
	fmt.Printf("%5s %8s %10s %7s %7s  %s\n", "step", "objects", "estimate", "fresh", "reused", "note")
	var totalFresh int64
	refresh := func(step int, note string) *lsample.RefreshEstimate {
		r, err := lq.Refresh(ctx, nil)
		if err != nil {
			log.Fatal(err)
		}
		totalFresh += r.FreshLabels
		if r.Retrained {
			note += " retrained"
		}
		fmt.Printf("%5d %8d %10.1f %7d %7d  %s\n", step, r.Objects, r.Count, r.FreshLabels, r.ReusedLabels, note)
		return r
	}
	refresh(0, "cold start")
	steps := 6
	for s := 1; s <= steps; s++ {
		appendItems(15) // a 1% append delta per step
		refresh(s, "")
	}

	// The cold baseline over the same final state: identical estimate,
	// full labeling bill — what a naive re-register pays per step.
	cold, err := lq.Refresh(ctx, nil, lsample.WithRelabel(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("refresh bill   %d fresh evaluations across %d refreshes\n", totalFresh, steps+1)
	fmt.Printf("naive bill     %d evaluations per re-register × %d steps = %d\n",
		cold.FreshLabels, steps, cold.FreshLabels*int64(steps))
	fmt.Printf("identical?     refresh %.1f vs relabeled-cold %.1f (byte-identical: %v)\n",
		refreshCount(lq, ctx), cold.Count, refreshCount(lq, ctx) == cold.Count)
}

// refreshCount re-reads the maintained estimate (fully memoized: zero
// fresh evaluations) to show reads are free once the memo is warm.
func refreshCount(lq *lsample.LiveQuery, ctx context.Context) float64 {
	r, err := lq.Refresh(ctx, nil)
	if err != nil {
		log.Fatal(err)
	}
	return r.Count
}
