// Neighbors: the paper's Example 1 on the KDD-style workload — count
// network-connection records with at most k other records within distance d
// (outlier counting), comparing every estimator in the paper at one budget
// through the public repro/lsample SDK.
//
// Run: go run ./examples/neighbors
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/workload"
	"repro/lsample"
)

func main() {
	fmt.Println("Example 1 (few neighbors), SQL form:")
	fmt.Println(`
  SELECT COUNT(*) FROM
    (SELECT o1.id FROM D o1, D o2
     WHERE SQRT(POWER(o1.x-o2.x,2) + POWER(o1.y-o2.y,2)) <= d
     GROUP BY o1.id HAVING COUNT(*) <= k);
	`)

	suite, err := workload.BuildNeighbors(10000, 5)
	if err != nil {
		log.Fatal(err)
	}
	in := suite.Instances[workload.S]
	fmt.Printf("dataset: %d connection records, d=%.3f, k=%d\n", in.N(), in.D, in.K)
	fmt.Printf("true count: %d (%.1f%%)\n\n", in.TrueCount, in.Selectivity*100)

	fmt.Printf("%-6s  %9s  %24s  %8s\n", "method", "estimate", "95% CI", "rel.err")
	for _, method := range []string{"srs", "ssp", "ssn", "qlcc", "qlac", "lws", "lss"} {
		est, err := lsample.NewEstimator(
			lsample.WithMethod(method),
			lsample.WithBudget(0.02),
			lsample.WithSeed(2024),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := est.Estimate(context.Background(), in.Features(), in.LabelFunc())
		if err != nil {
			log.Fatal(err)
		}
		ci := "          (no interval)"
		if res.CI != nil {
			ci = fmt.Sprintf("[%9.1f, %9.1f]", res.CI.Lo, res.CI.Hi)
		}
		rel := 100 * abs(res.Count-float64(in.TrueCount)) / float64(in.TrueCount)
		fmt.Printf("%-6s  %9.1f  %24s  %7.2f%%\n", res.Method, res.Count, ci, rel)
	}
	fmt.Printf("\nall methods spent the same labeling budget: %d evaluations (2%% of N)\n", in.N()/50)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
