// Neighbors: the paper's Example 1 on the KDD-style workload — count
// network-connection records with at most k other records within distance d
// (outlier counting), comparing every estimator in the paper at one budget.
//
// Run: go run ./examples/neighbors
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	fmt.Println("Example 1 (few neighbors), SQL form:")
	fmt.Println(`
  SELECT COUNT(*) FROM
    (SELECT o1.id FROM D o1, D o2
     WHERE SQRT(POWER(o1.x-o2.x,2) + POWER(o1.y-o2.y,2)) <= d
     GROUP BY o1.id HAVING COUNT(*) <= k);
	`)

	suite, err := workload.BuildNeighbors(10000, 5)
	if err != nil {
		log.Fatal(err)
	}
	in := suite.Instances[workload.S]
	fmt.Printf("dataset: %d connection records, d=%.3f, k=%d\n", in.N(), in.D, in.K)
	fmt.Printf("true count: %d (%.1f%%)\n\n", in.TrueCount, in.Selectivity*100)

	budget := in.N() / 50 // 2%
	methods := []core.Method{
		&core.SRS{},
		&core.SSP{Strata: 4},
		&core.SSN{Strata: 4},
		&core.QLCC{},
		&core.QLAC{},
		&core.LWS{},
		&core.LSS{},
	}
	fmt.Printf("%-6s  %9s  %24s  %8s\n", "method", "estimate", "95% CI", "rel.err")
	for _, m := range methods {
		obj := in.Objects()
		res, err := m.Estimate(obj, budget, xrand.New(2024))
		if err != nil {
			log.Fatal(err)
		}
		ci := "          (no interval)"
		if res.HasCI {
			ci = fmt.Sprintf("[%9.1f, %9.1f]", res.CI.Lo, res.CI.Hi)
		}
		rel := 100 * abs(res.Estimate-float64(in.TrueCount)) / float64(in.TrueCount)
		fmt.Printf("%-6s  %9.1f  %24s  %7.2f%%\n", res.Method, res.Estimate, ci, rel)
	}
	fmt.Printf("\nall methods spent the same labeling budget: %d evaluations (2%% of N)\n", budget)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
