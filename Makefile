# Repository verification and benchmarking entry points.
#
#   make check         build + vet + api/docs gates + race-enabled tests
#                      (tier-1 gate and more)
#   make test          plain test run
#   make docs-check    README/ARCHITECTURE exist, examples vet, every
#                      exported lsample symbol documented
#   make bench-smoke   1-iteration pass over the figure benchmark and the
#                      perf micro-benchmarks, emitted as BENCH_smoke.json
#   make bench-groupby shared-sample GROUP BY vs naive per-group loop,
#                      emitted as BENCH_groupby.json
#   make bench-predicate
#                      interpreted vs compiled vs compiled+parallel Q3
#                      labeling on the skyband and SQL-EXISTS workloads,
#                      emitted as BENCH_PR4.json
#   make bench-ingest  refresh-vs-reregister after 1% append deltas
#                      (evals/op and wall time), emitted as BENCH_PR5.json
#   make bench-wal     durable-vs-memory ingest overhead and WAL recovery
#                      time, emitted as BENCH_PR6.json
#   make bench-catalog cross-query reuse catalog: cold vs direct-reuse vs
#                      budget-extension estimation cost (evals/op),
#                      emitted as BENCH_PR7.json
#   make bench-shard   sharded scatter/gather at 1/2/4/8 shards (evals/op
#                      and wall) plus a one-shard-killed degraded run,
#                      emitted as BENCH_PR8.json
#   make bench-obs     observability overhead: labeling ns/eval and full
#                      Execute ns/op with the tracer disabled, unsampled,
#                      and sampling every run, emitted as BENCH_PR10.json
#   make obs-check     observability lint: metrics without help strings,
#                      spans opened but never ended (tools/obscheck)
#   make fuzz-smoke    brief run of every native fuzzer (parser round-trip,
#                      lexer, live delta parser, WAL reader, shard routing)
#                      — the CI crash gate
#   make bench-full    3-second benchmark pass (slow; for recorded numbers)

GO ?= go

# Benchmarks are piped into benchjson; without pipefail a failed bench run
# would exit 0 and silently overwrite the snapshot with a partial one.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: check build vet test race api-check docs-check obs-check bench-smoke bench-full serve-smoke bench-groupby bench-predicate bench-ingest bench-wal bench-catalog bench-shard bench-vector bench-obs fuzz-smoke

check: build vet api-check docs-check obs-check race

# Fail if internal/ packages leak into the public SDK's exported
# signatures (repro/lsample is the compatibility surface).
api-check:
	$(GO) run ./tools/apicheck lsample

# Documentation gate: the user-facing docs must exist, the runnable
# examples must vet clean, and every exported symbol of the public SDK
# must carry a doc comment (tools/doccheck).
docs-check:
	@test -f README.md || { echo "docs-check: README.md is missing"; exit 1; }
	@test -f ARCHITECTURE.md || { echo "docs-check: ARCHITECTURE.md is missing"; exit 1; }
	$(GO) vet ./examples/...
	$(GO) run ./tools/doccheck ./lsample

# Observability gate: every registered metric carries a help string and
# every opened span is ended (tools/obscheck).
obs-check:
	$(GO) run ./tools/obscheck .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The figure benchmark plus the parallel-engine micro-benchmarks
# (forest fit, batched scoring, scoreRest, RunDist).
BENCH_PATTERN = ^(BenchmarkFig2|BenchmarkForestFit(Seq|Par)|BenchmarkForestScore.*|BenchmarkScoreRest|BenchmarkOrderByScore|BenchmarkRunDist(Seq|Par))$$

bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x ./... \
		| $(GO) run ./tools/benchjson > BENCH_smoke.json
	@cat BENCH_smoke.json

bench-full:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 2s ./... \
		| $(GO) run ./tools/benchjson > BENCH_full.json
	@cat BENCH_full.json

# One pass over the GROUP BY benchmarks: shared-sample grouped estimation
# vs the naive per-group estimate loop, emitted as BENCH_groupby.json.
# (BENCH_PR3.json records a 2-iteration run of the same benchmarks.)
bench-groupby:
	$(GO) test -run '^$$' -bench '^BenchmarkGroupBy(Shared|Naive)$$' -benchtime 1x ./lsample/ \
		| $(GO) run ./tools/benchjson > BENCH_groupby.json
	@cat BENCH_groupby.json

# Predicate-compilation benchmarks: ns/eval and labeling wall time for
# interpreted vs compiled vs compiled+parallel Q3 evaluation on the skyband
# and hash-indexable SQL-EXISTS workloads.
bench-predicate:
	$(GO) test -run '^$$' -bench '^BenchmarkPredicateLabeling$$' -benchtime 2x ./lsample/ \
		| $(GO) run ./tools/benchjson > BENCH_PR4.json
	@cat BENCH_PR4.json

# Streaming-ingestion benchmarks: predicate evaluations and wall time per
# 1% append delta, maintained refresh vs naive re-register + re-estimate.
bench-ingest:
	$(GO) test -run '^$$' -bench '^Benchmark(Refresh|Reregister)Delta$$' -benchtime 3x ./lsample/ \
		| $(GO) run ./tools/benchjson > BENCH_PR5.json
	@cat BENCH_PR5.json

# Write-ahead-log benchmarks: ingest overhead of durable (fsync-batched)
# vs memory-only apply, and cold-start recovery time replaying a 100k-row
# log with no checkpoint.
bench-wal:
	$(GO) test -run '^$$' -bench '^BenchmarkIngest(Memory|Durable|DurableDisk)$$|^BenchmarkWALRecovery$$' -benchtime 3x ./internal/live/ \
		| $(GO) run ./tools/benchjson > BENCH_PR6.json
	@cat BENCH_PR6.json

# Reuse-catalog benchmarks: predicate evaluations and wall time for a
# from-scratch estimate (base and double budget) vs a direct-reuse rerun
# vs a budget extension over materialized artifacts.
bench-catalog:
	$(GO) test -run '^$$' -bench '^BenchmarkCatalog(Cold|Cold2x|Direct|Extension)$$' -benchtime 3x ./lsample/ \
		| $(GO) run ./tools/benchjson > BENCH_PR7.json
	@cat BENCH_PR7.json

# Vectorized-labeling benchmarks: ns/eval and allocs/op for the scalar
# closure path vs the vectorized kernels on the fused (exists) and
# fallback (skyband) workloads; full-population passes at parallelism 1,
# so ns/eval compares per-evaluation cost directly. The zero-allocation
# steady state is enforced separately by TestVecEvalZeroAlloc under
# `make check` — a vector-path allocation regression fails CI even if
# this benchmark is not run.
bench-vector:
	$(GO) test -run '^$$' -bench '^BenchmarkVectorLabeling$$' -benchtime 3x ./lsample/ \
		| $(GO) run ./tools/benchjson > BENCH_PR9.json

# Observability-overhead benchmarks: the BENCH_PR9-shaped vectorized
# labeling pass and the full Execute pipeline on the exists workload,
# each with the tracer disabled / attached-but-unsampled / sampling every
# execution. The disabled and unsampled labeling numbers must sit within
# noise of BENCH_PR9.json (spans wrap phases, never evaluations) and all
# labeling modes must report 0 allocs/op.
bench-obs:
	$(GO) test -run '^$$' -bench '^BenchmarkObsOverhead$$' -benchtime 3x ./lsample/ \
		| $(GO) run ./tools/benchjson > BENCH_PR10.json
	@cat BENCH_PR10.json

# Sharded scatter/gather benchmarks: evals/op and wall time for the lss
# drive at 1/2/4/8 shards (per-worker labeling service time modeled, so
# the scatter overlap is visible on a single-core runner), plus the
# degraded chaos run with one shard killed mid-query under a deadline.
bench-shard:
	$(GO) test -run '^$$' -bench '^BenchmarkShardDrive(1|2|4|8|Degraded)$$' -benchtime 3x ./internal/shard/ \
		| $(GO) run ./tools/benchjson > BENCH_PR8.json
	@cat BENCH_PR8.json

# Brief run of each native fuzzer: the parser/renderer round-trip property,
# lexer crash-safety, the live delta-batch parser (CSV + NDJSON) against a
# real keyed table, the WAL reader against arbitrary segment bytes, and the
# consistent-hash shard routing invariants (no key lost or double-assigned,
# minimal movement on join/leave).
# Failures persist a reproducer under the package's testdata/fuzz/.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParseRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/sql/
	$(GO) test -run '^$$' -fuzz '^FuzzLex$$' -fuzztime $(FUZZTIME) ./internal/sql/
	$(GO) test -run '^$$' -fuzz '^FuzzParseDelta$$' -fuzztime $(FUZZTIME) ./internal/live/
	$(GO) test -run '^$$' -fuzz '^FuzzWALReader$$' -fuzztime $(FUZZTIME) ./internal/wal/
	$(GO) test -run '^$$' -fuzz '^FuzzShardRouting$$' -fuzztime $(FUZZTIME) ./internal/shard/

# One pass over the counting-service benchmark (cold vs warm cache),
# emitted as BENCH_serve.json.
serve-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkServeCount$$' -benchtime 1x ./internal/service/ \
		| $(GO) run ./tools/benchjson > BENCH_serve.json
	@cat BENCH_serve.json
