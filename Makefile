# Repository verification and benchmarking entry points.
#
#   make check        build + vet + race-enabled tests (tier-1 gate and more)
#   make test         plain test run
#   make bench-smoke  1-iteration pass over the figure benchmark and the
#                     perf micro-benchmarks, emitted as BENCH_smoke.json
#   make bench-full   3-second benchmark pass (slow; for recorded numbers)

GO ?= go

# Benchmarks are piped into benchjson; without pipefail a failed bench run
# would exit 0 and silently overwrite the snapshot with a partial one.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: check build vet test race api-check bench-smoke bench-full serve-smoke

check: build vet api-check race

# Fail if internal/ packages leak into the public SDK's exported
# signatures (repro/lsample is the compatibility surface).
api-check:
	$(GO) run ./tools/apicheck lsample

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The figure benchmark plus the parallel-engine micro-benchmarks
# (forest fit, batched scoring, scoreRest, RunDist).
BENCH_PATTERN = ^(BenchmarkFig2|BenchmarkForestFit(Seq|Par)|BenchmarkForestScore.*|BenchmarkScoreRest|BenchmarkOrderByScore|BenchmarkRunDist(Seq|Par))$$

bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x ./... \
		| $(GO) run ./tools/benchjson > BENCH_smoke.json
	@cat BENCH_smoke.json

bench-full:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 2s ./... \
		| $(GO) run ./tools/benchjson > BENCH_full.json
	@cat BENCH_full.json

# One pass over the counting-service benchmark (cold vs warm cache),
# emitted as BENCH_serve.json.
serve-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkServeCount$$' -benchtime 1x ./internal/service/ \
		| $(GO) run ./tools/benchjson > BENCH_serve.json
	@cat BENCH_serve.json
