package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/lsample"
)

// auxFlags collects repeated -aux name=schema=path flags: additional
// static tables for multi-table queries in delta replay mode.
type auxFlags []auxTable

type auxTable struct {
	name, schema, path string
}

func (a *auxFlags) String() string {
	parts := make([]string, len(*a))
	for i, t := range *a {
		parts[i] = t.name
	}
	return strings.Join(parts, ",")
}

func (a *auxFlags) Set(s string) error {
	parts := strings.SplitN(s, "=", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return fmt.Errorf("want name=schema=path, got %q", s)
	}
	*a = append(*a, auxTable{name: parts[0], schema: parts[1], path: parts[2]})
	return nil
}

// defaultKeyColumn picks the first int column of a compact schema spec, the
// conventional id column of the paper's workloads.
func defaultKeyColumn(schemaStr string) string {
	for _, part := range strings.Split(schemaStr, ",") {
		name, kind, ok := strings.Cut(strings.TrimSpace(part), ":")
		if ok && kind == "int" {
			return name
		}
	}
	return ""
}

// runDeltaReplay loads the base CSV into a live table, replays the delta
// stream against it in batches, and refreshes the estimate after every
// batch — printing, per step, the paper's cost unit: fresh predicate
// evaluations versus labels answered from the memo. The final lines
// compare the cumulative refresh bill against the relabel-all price a
// naive re-register loop pays per step.
func runDeltaReplay(ctx context.Context, query, csvPath, schemaStr, keyCol,
	deltaPath, deltaFormat string, batch int, aux auxFlags, params map[string]any, opts []lsample.Option) {

	if csvPath == "" || schemaStr == "" {
		fatalf("-delta requires -csv and -schema")
	}
	_, tables, err := lsample.QueryShape(query)
	if err != nil {
		fatalf("%v", err)
	}
	if keyCol == "" {
		keyCol = defaultKeyColumn(schemaStr)
		if keyCol == "" {
			fatalf("-delta requires an int key column (set -key or add one to -schema)")
		}
	}
	lt, err := lsample.NewLiveTable(tables[0], schemaStr, keyCol)
	if err != nil {
		fatalf("%v", err)
	}
	base, err := os.Open(csvPath)
	if err != nil {
		fatalf("opening %s: %v", csvPath, err)
	}
	if _, err := lt.ApplyDelta("csv", base, 0); err != nil {
		base.Close()
		fatalf("loading %s: %v", csvPath, err)
	}
	base.Close()

	src := lsample.NewLiveSource()
	src.AddLive(lt)
	for _, t := range aux {
		tb, err := lsample.OpenCSV(t.name, t.schema, t.path)
		if err != nil {
			fatalf("-aux %s: %v", t.name, err)
		}
		src.Add(tb)
	}
	sess, err := lsample.NewSession(src, opts...)
	if err != nil {
		fatalf("%v", err)
	}
	lq, err := sess.PrepareLive(query)
	if err != nil {
		fatalf("%v", err)
	}

	if deltaFormat == "" {
		deltaFormat = "csv"
		if strings.HasSuffix(deltaPath, ".ndjson") || strings.HasSuffix(deltaPath, ".jsonl") {
			deltaFormat = "ndjson"
		}
	}

	fmt.Printf("dataset     %s (%d rows from %s, key %s)\n", lt.Name(), lt.NumRows(), csvPath, keyCol)
	fmt.Printf("query       %s\n", query)
	fmt.Printf("delta       %s (%s, %d rows/batch)\n\n", deltaPath, deltaFormat, batch)
	fmt.Printf("%4s %7s %6s %8s %10s %24s %6s %7s  %s\n",
		"step", "version", "Δrows", "objects", "estimate", "95% CI", "fresh", "reused", "note")

	var totalFresh int64
	steps := 0
	printStep := func(step int, deltaRows int, r *lsample.RefreshEstimate) {
		ci := "-"
		if r.CI != nil {
			ci = fmt.Sprintf("[%.1f, %.1f]", r.CI.Lo, r.CI.Hi)
		}
		var notes []string
		if r.Retrained {
			notes = append(notes, "retrained")
		}
		if r.InvalidatedAll {
			notes = append(notes, "memo invalidated")
		}
		fmt.Printf("%4d %7d %6d %8d %10.1f %24s %6d %7d  %s\n",
			step, r.Versions[lt.Name()], deltaRows, r.Objects, r.Count, ci,
			r.FreshLabels, r.ReusedLabels, strings.Join(notes, ", "))
	}

	t0 := time.Now()
	r0, err := lq.Refresh(ctx, params)
	if err != nil {
		fatalf("%v", err)
	}
	printStep(0, 0, r0)

	f, err := os.Open(deltaPath)
	if err != nil {
		fatalf("opening %s: %v", deltaPath, err)
	}
	defer f.Close()
	_, err = lt.ApplyDeltaStep(deltaFormat, f, batch, func(s lsample.DeltaSummary) error {
		r, err := lq.Refresh(ctx, params)
		if err != nil {
			return err
		}
		steps++
		totalFresh += r.FreshLabels
		printStep(steps, s.Rows(), r)
		return nil
	})
	if err != nil {
		fatalf("replaying delta: %v", err)
	}
	wall := time.Since(t0)

	// The cold baseline: the same estimate over the same final state with
	// the memo bypassed — what a naive re-register pays on every step.
	cold, err := lq.Refresh(ctx, params, lsample.WithRelabel(true))
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println()
	fmt.Printf("refresh evals   %d fresh across %d refreshes (+%d cold start)\n", totalFresh, steps, r0.FreshLabels)
	fmt.Printf("naive evals     %d per re-register × %d steps = %d\n", cold.FreshLabels, steps, cold.FreshLabels*int64(steps))
	if totalFresh > 0 && steps > 0 {
		fmt.Printf("savings         %.1fx fewer predicate evaluations\n",
			float64(cold.FreshLabels*int64(steps))/float64(totalFresh))
	}
	fmt.Printf("wall time       %.1fms total\n", float64(wall)/1e6)
}
