// Command lscount runs one count estimation on a calibrated workload and
// prints the estimate, confidence interval, true count, and cost breakdown.
//
// Usage:
//
//	lscount -dataset neighbors -size S -method lss -budget 0.02
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	var (
		ds        = flag.String("dataset", "neighbors", "dataset: sports or neighbors")
		rows      = flag.Int("rows", 8000, "dataset rows (0 = paper scale)")
		sizeStr   = flag.String("size", "S", "result-size regime: XS S M L XL XXL")
		method    = flag.String("method", "lss", "estimator: srs ssp ssn lws lss qlcc qlac oracle")
		budget    = flag.Float64("budget", 0.02, "labeling budget as a fraction of N")
		seed      = flag.Uint64("seed", 1, "random seed")
		clfName   = flag.String("classifier", "rf", "classifier for learned methods: rf knn nn random")
		strata    = flag.Int("strata", 4, "strata for stratified methods")
		expensive = flag.Bool("expensive", false, "use the real O(N)-per-eval predicate instead of cached labels")
		para      = flag.Int("p", 0, "parallelism for forest training and batch scoring (0 = all cores, 1 = sequential); the estimate is identical at any value")
	)
	flag.Parse()

	sz, err := workload.ParseSize(*sizeStr)
	if err != nil {
		fatalf("%v", err)
	}
	suite, err := workload.Build(*ds, *rows, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	in := suite.Instances[sz]

	var newClf core.NewClassifierFunc
	switch *clfName {
	case "rf":
		newClf = core.ForestClassifier(*para)
	case "knn":
		newClf = func(uint64) learn.Classifier { return learn.NewKNN(5) }
	case "nn":
		newClf = func(s uint64) learn.Classifier { return learn.NewMLP(s) }
	case "random":
		newClf = func(s uint64) learn.Classifier { return learn.NewDummy(s) }
	default:
		fatalf("unknown classifier %q", *clfName)
	}

	var m core.Method
	switch *method {
	case "srs":
		m = &core.SRS{}
	case "ssp":
		m = &core.SSP{Strata: *strata}
	case "ssn":
		m = &core.SSN{Strata: *strata}
	case "lws":
		m = &core.LWS{NewClassifier: newClf}
	case "lss":
		m = &core.LSS{NewClassifier: newClf, Strata: *strata}
	case "qlcc":
		m = &core.QLCC{NewClassifier: newClf}
	case "qlac":
		m = &core.QLAC{NewClassifier: newClf}
	case "oracle":
		m = core.Oracle{}
	default:
		fatalf("unknown method %q", *method)
	}

	obj := in.Objects()
	if *expensive {
		obj = in.ExpensiveObjects()
	}
	b := int(math.Round(*budget * float64(in.N())))
	if b < 10 {
		b = 10
	}
	res, err := m.Estimate(obj, b, xrand.New(*seed))
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("dataset     %s (N=%d)\n", *ds, in.N())
	fmt.Printf("query       %s\n", describe(in))
	fmt.Printf("regime      %s (target %.0f%%, actual %.1f%%)\n", sz, in.Target*100, in.Selectivity*100)
	fmt.Printf("method      %s\n", res.Method)
	fmt.Printf("budget      %d q-evaluations (%.2f%% of N)\n", b, 100*float64(b)/float64(in.N()))
	fmt.Printf("estimate    %.1f\n", res.Estimate)
	if res.HasCI {
		fmt.Printf("95%% CI      [%.1f, %.1f]\n", res.CI.Lo, res.CI.Hi)
	} else {
		fmt.Printf("95%% CI      (none: quantification learning gives no interval)\n")
	}
	fmt.Printf("true count  %d\n", in.TrueCount)
	rel := math.Abs(res.Estimate-float64(in.TrueCount)) / math.Max(1, float64(in.TrueCount))
	fmt.Printf("rel. error  %.2f%%\n", rel*100)
	fmt.Printf("evals used  %d\n", res.Evals)
	tm := res.Timing
	fmt.Printf("timing      learn=%v design=%v sample=%v predicate=%v overhead=%v\n",
		tm.Learn.Round(time.Microsecond), tm.Design.Round(time.Microsecond),
		tm.Sample.Round(time.Microsecond), tm.Predicate.Round(time.Microsecond),
		tm.Overhead().Round(time.Microsecond))
}

func describe(in *workload.Instance) string {
	if in.Dataset == "sports" {
		return fmt.Sprintf("k-skyband membership over (strikeouts, wins), k=%d (Example 2)", in.K)
	}
	return fmt.Sprintf("≤%d neighbors within d=%.3f over (f0, f1) (Example 1)", in.K, in.D)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lscount: "+format+"\n", args...)
	os.Exit(1)
}
