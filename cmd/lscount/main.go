// Command lscount runs one count estimation through the public repro/lsample
// SDK and prints the estimate, confidence interval, true count, and cost
// breakdown. Ctrl-C cancels an in-flight estimation mid-run.
//
// Calibrated-workload mode (the paper's benchmarks):
//
//	lscount -dataset neighbors -size S -method lss -budget 0.02
//
// Ad-hoc SQL mode (your own data): give a counting query and a CSV file;
// the query is decomposed per §2, features are selected automatically from
// the columns the predicate reads, and the count is estimated within the
// budget. The CSV is registered under the first table name in FROM.
//
//	lscount -sql 'SELECT o1.id FROM D o1, D o2 WHERE ... GROUP BY o1.id HAVING COUNT(*) < k' \
//	        -csv points.csv -schema id:int,x:float,y:float -param k=25 -method lss -budget 0.05
//
// GROUP BY counting: when -sql is the grouped form
// SELECT g, COUNT(*) FROM (...) GROUP BY g, every group is estimated from
// one shared sample and the result is printed as a per-group table
// (methods srs, lss, oracle).
//
// Delta replay mode: add -delta to the ad-hoc form to load the CSV into a
// live table and replay a change stream against it, refreshing the
// estimate after every applied batch. Each step prints the pinned version,
// the delta size, and — the paper's cost unit — how many fresh predicate
// evaluations the refresh spent versus how many it answered from the label
// memo; the final line compares the total against the cold (relabel-all)
// price a naive re-register loop would have paid per step.
//
//	lscount -sql '...' -csv base.csv -schema id:int,f1:float -key id \
//	        -delta changes.ndjson -delta-batch 500 -method lss -budget 0.1
//
// The delta file is CSV (header row, append-only) or NDJSON (one
// {"op":"append|update|delete","key":...,"row":{...}} per line), chosen by
// -delta-format or the file extension. -aux name=schema=path (repeatable)
// loads additional static side tables for multi-table queries.
//
// Flags (common): -method srs|ssp|ssn|lws|lss|qlcc|qlac|oracle,
// -budget frac, -seed n, -classifier rf|knn|nn|random, -strata h,
// -interval wald|wilson (Wilson score intervals for the srs proportion
// estimator, per WithInterval), -p parallelism, -shards n (sharded
// execution: hash-partition the population, estimate per shard, merge
// byte-identically; srs, lss, and oracle only). Calibrated mode adds
// -dataset, -rows, -size, -expensive; ad-hoc mode adds -sql, -csv,
// -schema, -param (repeatable), -exact, -aux, and -repeat N (run the query
// N times through a shared reuse catalog, printing each run's reuse path —
// direct, extension, or none — and the cumulative predicate evaluations
// saved); delta replay adds -delta, -delta-format, -delta-batch, -key.
// Run lscount -h for details.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/workload"
	"repro/lsample"
)

func main() {
	var (
		ds        = flag.String("dataset", "neighbors", "dataset: sports or neighbors")
		rows      = flag.Int("rows", 8000, "dataset rows (0 = paper scale)")
		sizeStr   = flag.String("size", "S", "result-size regime: XS S M L XL XXL")
		method    = flag.String("method", "lss", "estimator: srs ssp ssn lws lss qlcc qlac oracle")
		budget    = flag.Float64("budget", 0.02, "labeling budget as a fraction of N")
		seed      = flag.Uint64("seed", 1, "random seed")
		clfName   = flag.String("classifier", "rf", "classifier for learned methods: rf knn nn random")
		strata    = flag.Int("strata", 4, "strata for stratified methods")
		interval  = flag.String("interval", "wald", "confidence interval: wald or wilson (srs)")
		expensive = flag.Bool("expensive", false, "use the real O(N)-per-eval predicate instead of cached labels")
		shards    = flag.Int("shards", 0, "run sharded: partition the population into N hash-aligned shards, estimate per shard, and merge (srs/lss/oracle; the answer is byte-identical at any shard count)")
		para      = flag.Int("p", 0, "parallelism for forest training and batch scoring (0 = all cores, 1 = sequential); the estimate is identical at any value")

		sqlQuery  = flag.String("sql", "", "ad-hoc mode: counting query to estimate (requires -csv and -schema)")
		csvPath   = flag.String("csv", "", "ad-hoc mode: CSV file with a header row")
		schemaStr = flag.String("schema", "", "ad-hoc mode: CSV schema, e.g. id:int,x:float,y:float")
		exact     = flag.Bool("exact", false, "ad-hoc mode: also compute the true count (evaluates q on every object)")
		repeat    = flag.Int("repeat", 1, "ad-hoc mode: execute the query N times through a shared reuse catalog, printing each run's reuse path and the cumulative predicate evaluations saved")

		explain = flag.Bool("explain", false, "trace the run and print its span tree (phases, attributes, durations) after the result")

		deltaPath   = flag.String("delta", "", "delta replay mode: change stream to replay against the -csv table (CSV or NDJSON)")
		deltaFormat = flag.String("delta-format", "", "delta format: csv or ndjson (default: by -delta file extension)")
		deltaBatch  = flag.Int("delta-batch", 500, "delta rows applied per refresh step")
		keyCol      = flag.String("key", "", "delta replay mode: unique int key column of the -csv table (default: its first int column)")
	)
	var params paramFlags
	flag.Var(&params, "param", "ad-hoc mode: query parameter as name=value; numeric values bind as numbers, 'quoted' values as strings (repeatable)")
	var aux auxFlags
	flag.Var(&aux, "aux", "ad-hoc mode: additional static table as name=schema=path (repeatable)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	iv, err := lsample.ParseInterval(*interval)
	if err != nil {
		fatalf("%v", err)
	}
	opts := []lsample.Option{
		lsample.WithMethod(*method),
		lsample.WithClassifier(*clfName),
		lsample.WithStrata(*strata),
		lsample.WithBudget(*budget),
		lsample.WithSeed(*seed),
		lsample.WithParallelism(*para),
		lsample.WithInterval(iv),
	}
	if *shards > 0 {
		opts = append(opts, lsample.WithShards(*shards))
	}
	var tracer *lsample.Tracer
	if *explain {
		tracer = lsample.NewTracer(lsample.TracerOptions{SampleRate: 1})
		opts = append(opts, lsample.WithTracer(tracer))
	}

	if *sqlQuery != "" {
		if *deltaPath != "" {
			runDeltaReplay(ctx, *sqlQuery, *csvPath, *schemaStr, *keyCol,
				*deltaPath, *deltaFormat, *deltaBatch, aux, params, opts)
			printTrace(tracer)
			return
		}
		runSQL(ctx, *sqlQuery, *csvPath, *schemaStr, params, *exact, *repeat, opts)
		printTrace(tracer)
		return
	}

	sz, err := workload.ParseSize(*sizeStr)
	if err != nil {
		fatalf("%v", err)
	}
	suite, err := workload.Build(*ds, *rows, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	in := suite.Instances[sz]

	est, err := lsample.NewEstimator(opts...)
	if err != nil {
		fatalf("%v", err)
	}
	pred := in.LabelFunc()
	if *expensive {
		pred = in.ExpensiveFunc()
	}
	res, err := est.Estimate(ctx, in.Features(), pred)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("dataset     %s (N=%d)\n", *ds, in.N())
	fmt.Printf("query       %s\n", describe(in))
	fmt.Printf("regime      %s (target %.0f%%, actual %.1f%%)\n", sz, in.Target*100, in.Selectivity*100)
	fmt.Printf("method      %s\n", res.Method)
	fmt.Printf("budget      %d q-evaluations (%.2f%% of N)\n", res.Budget, 100*float64(res.Budget)/float64(in.N()))
	fmt.Printf("estimate    %.1f\n", res.Count)
	printCI(res)
	fmt.Printf("true count  %d\n", in.TrueCount)
	rel := math.Abs(res.Count-float64(in.TrueCount)) / math.Max(1, float64(in.TrueCount))
	fmt.Printf("rel. error  %.2f%%\n", rel*100)
	fmt.Printf("evals used  %d\n", res.SamplesUsed)
	tm := res.Timings
	fmt.Printf("timing      learn=%v design=%v sample=%v predicate=%v overhead=%v\n",
		tm.Learn.Round(time.Microsecond), tm.Design.Round(time.Microsecond),
		tm.Sample.Round(time.Microsecond), tm.Predicate.Round(time.Microsecond),
		tm.Overhead().Round(time.Microsecond))
	printTrace(tracer)
}

// printTrace pretty-prints the newest recorded trace as an indented span
// tree, one line per span with its duration and attributes.
func printTrace(tr *lsample.Tracer) {
	if tr == nil {
		return
	}
	traces := tr.Traces(1)
	if len(traces) == 0 {
		return
	}
	fmt.Printf("\ntrace       %s\n", traces[0].TraceID)
	printSpan(traces[0], 0)
}

func printSpan(sp *lsample.TraceSpan, depth int) {
	keys := make([]string, 0, len(sp.Attrs))
	for k := range sp.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var attrs strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&attrs, " %s=%v", k, sp.Attrs[k])
	}
	fmt.Printf("  %s%s  %.2fms%s\n",
		strings.Repeat("  ", depth), sp.Name,
		float64(sp.Duration)/1e6, attrs.String())
	for _, c := range sp.Children {
		printSpan(c, depth+1)
	}
}

func printCI(res *lsample.Estimate) {
	if res.CI != nil {
		fmt.Printf("%.0f%% CI      [%.1f, %.1f]\n", res.CI.Level*100, res.CI.Lo, res.CI.Hi)
	} else {
		fmt.Printf("95%% CI      (none: quantification learning gives no interval)\n")
	}
}

// paramFlags collects repeated -param name=value flags.
type paramFlags map[string]any

func (p *paramFlags) String() string { return fmt.Sprint(map[string]any(*p)) }

func (p *paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	if *p == nil {
		*p = make(map[string]any)
	}
	switch {
	case len(val) >= 2 && val[0] == '\'' && val[len(val)-1] == '\'':
		// 'quoted' forces a string even when the content looks numeric
		// (e.g. -param "tag='123'" for a string column comparison).
		(*p)[name] = val[1 : len(val)-1]
	default:
		if f, err := strconv.ParseFloat(val, 64); err == nil {
			(*p)[name] = f
		} else {
			(*p)[name] = val
		}
	}
	return nil
}

// runSQL is the ad-hoc mode: estimate a counting query over a CSV file
// entirely through the SDK — load the CSV as the query's first table,
// prepare once, execute once. The -expensive flag has no meaning here: the
// ad-hoc predicate always runs through the engine. With -repeat N > 1 the
// session gets a reuse catalog and the query runs N times, demonstrating
// the catalog's warm-start economics run over run.
func runSQL(ctx context.Context, query, csvPath, schemaStr string, params map[string]any, exact bool, repeat int, opts []lsample.Option) {
	if csvPath == "" || schemaStr == "" {
		fatalf("-sql requires -csv and -schema")
	}
	_, tables, err := lsample.QueryShape(query)
	if err != nil {
		fatalf("%v", err)
	}
	tb, err := lsample.OpenCSV(tables[0], schemaStr, csvPath)
	if err != nil {
		fatalf("%v", err)
	}
	if repeat > 1 {
		opts = append(append([]lsample.Option(nil), opts...), lsample.WithCatalogBudget(0))
	}
	sess, err := lsample.NewSession(lsample.NewMemorySource(tb), opts...)
	if err != nil {
		fatalf("%v", err)
	}
	q, err := sess.Prepare(query)
	if err != nil {
		fatalf("%v", err)
	}
	if q.IsGrouped() {
		if repeat > 1 {
			fatalf("-repeat needs a plain counting query (the reuse catalog does not serve GROUP BY estimates)")
		}
		runGroupedSQL(ctx, q, tb, csvPath, params, exact)
		return
	}
	if repeat > 1 {
		runRepeatSQL(ctx, q, tb, csvPath, params, exact, repeat)
		return
	}
	t0 := time.Now()
	res, err := q.Execute(ctx, params, lsample.WithExact(exact))
	if err != nil {
		fatalf("%v", err)
	}
	dur := time.Since(t0)

	fmt.Printf("dataset     %s (%d rows from %s)\n", tb.Name(), tb.NumRows(), csvPath)
	fmt.Printf("query       %s\n", q.SQL())
	fmt.Printf("fingerprint %s\n", res.Fingerprint)
	fmt.Printf("objects     %d\n", res.Objects)
	fmt.Printf("features    %s (auto-selected from the predicate)\n", strings.Join(res.FeatureColumns, ", "))
	fmt.Printf("method      %s\n", res.Method)
	fmt.Printf("budget      %d q-evaluations\n", res.Budget)
	fmt.Printf("estimate    %.1f\n", res.Count)
	printCI(res)
	if res.TrueCount != nil {
		tc := *res.TrueCount
		rel := math.Abs(res.Count-float64(tc)) / math.Max(1, float64(tc))
		fmt.Printf("true count  %d\n", tc)
		fmt.Printf("rel. error  %.2f%%\n", rel*100)
	}
	fmt.Printf("evals used  %d\n", res.SamplesUsed)
	printLabeling(res.Labeling, res.Timings)
	fmt.Printf("duration    %.1fms\n", float64(dur)/1e6)
}

// runRepeatSQL executes the prepared query repeat times against a session
// with a reuse catalog attached. The first run pays the cold price and
// materializes its sample, labels, and classifier; later identical runs are
// served by direct reuse and should spend (close to) zero fresh predicate
// evaluations. Each line reports the run's reuse path and cost; the final
// line totals the evaluations saved against the cold-every-time bill.
func runRepeatSQL(ctx context.Context, q *lsample.PreparedQuery, tb *lsample.Table, csvPath string, params map[string]any, exact bool, repeat int) {
	fmt.Printf("dataset     %s (%d rows from %s)\n", tb.Name(), tb.NumRows(), csvPath)
	fmt.Printf("query       %s\n", q.SQL())
	fmt.Printf("runs        %d through a shared reuse catalog\n\n", repeat)

	fmt.Printf("%4s  %-10s %12s %8s %10s %12s %10s\n",
		"run", "reuse", "estimate", "evals", "memoized", "cum. saved", "ms")
	var cold, total, saved int64
	t0 := time.Now()
	for i := 1; i <= repeat; i++ {
		tr := time.Now()
		res, err := q.Execute(ctx, params, lsample.WithExact(exact))
		if err != nil {
			fatalf("run %d: %v", i, err)
		}
		evals := int64(res.SamplesUsed)
		if i == 1 {
			cold = evals
		}
		total += evals
		saved += cold - evals
		reuse := res.Reuse
		if reuse == "" {
			reuse = lsample.ReuseNone
		}
		fmt.Printf("%4d  %-10s %12.1f %8d %10d %12d %10.1f\n",
			i, reuse, res.Count, evals, res.ReusedLabels, saved,
			float64(time.Since(tr))/1e6)
	}
	fmt.Println()
	coldBill := cold * int64(repeat)
	pct := 0.0
	if coldBill > 0 {
		pct = 100 * float64(coldBill-total) / float64(coldBill)
	}
	fmt.Printf("evals       %d total vs %d cold-every-time (%.1f%% saved)\n", total, coldBill, pct)
	fmt.Printf("duration    %.1fms\n", float64(time.Since(t0))/1e6)
}

// printLabeling reports the labeling wall-time breakdown: which predicate
// engine ran (compiled vs interpreted fallback, with the reason), how many
// labeling workers were configured, and how the run's wall time splits
// between the expensive predicate and estimation overhead.
func printLabeling(lab lsample.Labeling, tm lsample.PhaseTimings) {
	fmt.Printf("labeling    %s\n", lab)
	fmt.Printf("            predicate=%v overhead=%v\n",
		tm.Predicate.Round(time.Microsecond), tm.Overhead().Round(time.Microsecond))
}

// runGroupedSQL estimates a GROUP BY counting query and prints one row per
// group: all groups share a single sampling/learning plan, so the total
// evaluation cost is that of one estimation, not one per group.
func runGroupedSQL(ctx context.Context, q *lsample.PreparedQuery, tb *lsample.Table, csvPath string, params map[string]any, exact bool) {
	t0 := time.Now()
	res, err := q.ExecuteGroups(ctx, params, lsample.WithExact(exact))
	if err != nil {
		fatalf("%v", err)
	}
	dur := time.Since(t0)

	fmt.Printf("dataset     %s (%d rows from %s)\n", tb.Name(), tb.NumRows(), csvPath)
	fmt.Printf("query       %s\n", q.SQL())
	fmt.Printf("fingerprint %s\n", res.Fingerprint)
	fmt.Printf("objects     %d in %d groups\n", res.Objects, len(res.Groups))
	if len(res.FeatureColumns) > 0 {
		fmt.Printf("features    %s (auto-selected from the predicate)\n", strings.Join(res.FeatureColumns, ", "))
	}
	fmt.Printf("method      %s (shared sample across groups)\n", res.Method)
	fmt.Printf("budget      %d q-evaluations\n", res.Budget)
	fmt.Println()

	header := strings.Join(q.GroupColumns(), ",")
	fmt.Printf("%-20s %8s %10s %22s %8s", header, "objects", "estimate", "CI", "sampled")
	if exact {
		fmt.Printf(" %8s %8s", "true", "err")
	}
	fmt.Println()
	for _, g := range res.Groups {
		ci := "-"
		if g.CI != nil {
			ci = fmt.Sprintf("[%.1f, %.1f]", g.CI.Lo, g.CI.Hi)
		}
		fmt.Printf("%-20s %8d %10.1f %22s %8d", strings.Join(g.Key, ","), g.Objects, g.Count, ci, g.Sampled)
		if g.TrueCount != nil {
			tc := *g.TrueCount
			rel := math.Abs(g.Count-float64(tc)) / math.Max(1, float64(tc))
			fmt.Printf(" %8d %7.1f%%", tc, rel*100)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("total       %.1f estimated positives\n", res.Total)
	fmt.Printf("evals used  %d (shared across all %d groups)\n", res.SamplesUsed, len(res.Groups))
	printLabeling(res.Labeling, res.Timings)
	fmt.Printf("duration    %.1fms\n", float64(dur)/1e6)
}

func describe(in *workload.Instance) string {
	if in.Dataset == "sports" {
		return fmt.Sprintf("k-skyband membership over (strikeouts, wins), k=%d (Example 2)", in.K)
	}
	return fmt.Sprintf("≤%d neighbors within d=%.3f over (f0, f1) (Example 1)", in.K, in.D)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lscount: "+format+"\n", args...)
	os.Exit(1)
}
