// Command lscount runs one count estimation and prints the estimate,
// confidence interval, true count, and cost breakdown.
//
// Calibrated-workload mode (the paper's benchmarks):
//
//	lscount -dataset neighbors -size S -method lss -budget 0.02
//
// Ad-hoc SQL mode (your own data): give a counting query and a CSV file;
// the query is decomposed per §2, features are selected automatically from
// the columns the predicate reads, and the count is estimated within the
// budget. The CSV is registered under the first table name in FROM.
//
//	lscount -sql 'SELECT o1.id FROM D o1, D o2 WHERE ... GROUP BY o1.id HAVING COUNT(*) < k' \
//	        -csv points.csv -schema id:int,x:float,y:float -param k=25 -method lss -budget 0.05
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/service"
	"repro/internal/sql"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	var (
		ds        = flag.String("dataset", "neighbors", "dataset: sports or neighbors")
		rows      = flag.Int("rows", 8000, "dataset rows (0 = paper scale)")
		sizeStr   = flag.String("size", "S", "result-size regime: XS S M L XL XXL")
		method    = flag.String("method", "lss", "estimator: srs ssp ssn lws lss qlcc qlac oracle")
		budget    = flag.Float64("budget", 0.02, "labeling budget as a fraction of N")
		seed      = flag.Uint64("seed", 1, "random seed")
		clfName   = flag.String("classifier", "rf", "classifier for learned methods: rf knn nn random")
		strata    = flag.Int("strata", 4, "strata for stratified methods")
		expensive = flag.Bool("expensive", false, "use the real O(N)-per-eval predicate instead of cached labels")
		para      = flag.Int("p", 0, "parallelism for forest training and batch scoring (0 = all cores, 1 = sequential); the estimate is identical at any value")

		sqlQuery  = flag.String("sql", "", "ad-hoc mode: counting query to estimate (requires -csv and -schema)")
		csvPath   = flag.String("csv", "", "ad-hoc mode: CSV file with a header row")
		schemaStr = flag.String("schema", "", "ad-hoc mode: CSV schema, e.g. id:int,x:float,y:float")
		exact     = flag.Bool("exact", false, "ad-hoc mode: also compute the true count (evaluates q on every object)")
	)
	var params paramFlags
	flag.Var(&params, "param", "ad-hoc mode: query parameter as name=value; numeric values bind as numbers, 'quoted' values as strings (repeatable)")
	flag.Parse()

	if *sqlQuery != "" {
		runSQL(*sqlQuery, *csvPath, *schemaStr, params, *method, *clfName, *strata, *budget, *seed, *para, *exact)
		return
	}

	sz, err := workload.ParseSize(*sizeStr)
	if err != nil {
		fatalf("%v", err)
	}
	suite, err := workload.Build(*ds, *rows, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	in := suite.Instances[sz]

	newClf, err := service.BuildClassifier(*clfName, *para)
	if err != nil {
		fatalf("unknown classifier %q", *clfName)
	}

	m, err := service.BuildMethod(*method, newClf, *strata)
	if err != nil {
		fatalf("unknown method %q", *method)
	}

	obj := in.Objects()
	if *expensive {
		obj = in.ExpensiveObjects()
	}
	b := int(math.Round(*budget * float64(in.N())))
	if b < 10 {
		b = 10
	}
	res, err := m.Estimate(obj, b, xrand.New(*seed))
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("dataset     %s (N=%d)\n", *ds, in.N())
	fmt.Printf("query       %s\n", describe(in))
	fmt.Printf("regime      %s (target %.0f%%, actual %.1f%%)\n", sz, in.Target*100, in.Selectivity*100)
	fmt.Printf("method      %s\n", res.Method)
	fmt.Printf("budget      %d q-evaluations (%.2f%% of N)\n", b, 100*float64(b)/float64(in.N()))
	fmt.Printf("estimate    %.1f\n", res.Estimate)
	if res.HasCI {
		fmt.Printf("95%% CI      [%.1f, %.1f]\n", res.CI.Lo, res.CI.Hi)
	} else {
		fmt.Printf("95%% CI      (none: quantification learning gives no interval)\n")
	}
	fmt.Printf("true count  %d\n", in.TrueCount)
	rel := math.Abs(res.Estimate-float64(in.TrueCount)) / math.Max(1, float64(in.TrueCount))
	fmt.Printf("rel. error  %.2f%%\n", rel*100)
	fmt.Printf("evals used  %d\n", res.Evals)
	tm := res.Timing
	fmt.Printf("timing      learn=%v design=%v sample=%v predicate=%v overhead=%v\n",
		tm.Learn.Round(time.Microsecond), tm.Design.Round(time.Microsecond),
		tm.Sample.Round(time.Microsecond), tm.Predicate.Round(time.Microsecond),
		tm.Overhead().Round(time.Microsecond))
}

// paramFlags collects repeated -param name=value flags.
type paramFlags map[string]any

func (p *paramFlags) String() string { return fmt.Sprint(map[string]any(*p)) }

func (p *paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	if *p == nil {
		*p = make(map[string]any)
	}
	switch {
	case len(val) >= 2 && val[0] == '\'' && val[len(val)-1] == '\'':
		// 'quoted' forces a string even when the content looks numeric
		// (e.g. -param "tag='123'" for a string column comparison).
		(*p)[name] = val[1 : len(val)-1]
	default:
		if f, err := strconv.ParseFloat(val, 64); err == nil {
			(*p)[name] = f
		} else {
			(*p)[name] = val
		}
	}
	return nil
}

// runSQL is the ad-hoc mode: estimate a counting query over a CSV file
// through the service pipeline (no HTTP involved). The -expensive flag has
// no meaning here: the ad-hoc predicate always runs through the engine.
func runSQL(query, csvPath, schemaStr string, params map[string]any, method, clfName string, strata int, budget float64, seed uint64, para int, exact bool) {
	if csvPath == "" || schemaStr == "" {
		fatalf("-sql requires -csv and -schema")
	}
	schema, err := service.ParseSchema(schemaStr)
	if err != nil {
		fatalf("%v", err)
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		fatalf("parse: %v", err)
	}
	// The COUNT(*)-wrapped form puts the real query in a FROM subquery;
	// register the CSV under the table the inner query reads.
	inner := engine.ExtractInner(stmt)
	if len(inner.From) == 0 {
		fatalf("query has no FROM clause")
	}
	if inner.From[0].Subquery != nil {
		fatalf("FROM subqueries are not supported in ad-hoc mode")
	}
	tableName := inner.From[0].Name
	if para == 0 {
		para = -1 // service semantics: 0 = default (1); the flag promises all cores
	}

	f, err := os.Open(csvPath)
	if err != nil {
		fatalf("%v", err)
	}
	tb, err := dataset.ReadCSV(tableName, schema, f)
	f.Close()
	if err != nil {
		fatalf("reading %s: %v", csvPath, err)
	}

	reg := service.NewRegistry()
	reg.Register(tb)
	svc := service.New(reg, service.Options{
		DefaultMethod: method,
		Parallelism:   para,
	})
	res, err := svc.Count(&service.CountRequest{
		SQL:        query,
		Params:     params,
		Method:     method,
		Budget:     budget,
		Classifier: clfName,
		Strata:     strata,
		Seed:       seed,
		Exact:      exact,
	})
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("dataset     %s (%d rows from %s)\n", tableName, tb.NumRows(), csvPath)
	fmt.Printf("query       %s\n", stmt.String())
	fmt.Printf("fingerprint %s\n", res.Fingerprint)
	fmt.Printf("objects     %d\n", res.Objects)
	fmt.Printf("features    %s (auto-selected from the predicate)\n", strings.Join(res.FeatureCols, ", "))
	fmt.Printf("method      %s\n", res.Method)
	fmt.Printf("budget      %d q-evaluations\n", res.Budget)
	fmt.Printf("estimate    %.1f\n", res.Estimate)
	if res.HasCI {
		fmt.Printf("95%% CI      [%.1f, %.1f]\n", res.CILo, res.CIHi)
	} else {
		fmt.Printf("95%% CI      (none: quantification learning gives no interval)\n")
	}
	if res.TrueCount != nil {
		tc := *res.TrueCount
		rel := math.Abs(res.Estimate-float64(tc)) / math.Max(1, float64(tc))
		fmt.Printf("true count  %d\n", tc)
		fmt.Printf("rel. error  %.2f%%\n", rel*100)
	}
	fmt.Printf("evals used  %d\n", res.Evals)
	fmt.Printf("duration    %.1fms\n", res.DurationMS)
}

func describe(in *workload.Instance) string {
	if in.Dataset == "sports" {
		return fmt.Sprintf("k-skyband membership over (strikeouts, wins), k=%d (Example 2)", in.K)
	}
	return fmt.Sprintf("≤%d neighbors within d=%.3f over (f0, f1) (Example 1)", in.K, in.D)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lscount: "+format+"\n", args...)
	os.Exit(1)
}
