// Command lsbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	lsbench [flags] <experiment>...
//	lsbench [flags] all
//
// Experiments: table1, fig1, fig2, fig3, fig4a, fig4b, fig5, fig6, fig7,
// fig8. By default runs at reduced scale (8k rows, 30 trials); -full runs
// at the paper's dataset sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiment"
)

func main() {
	var (
		rows    = flag.Int("rows", 0, "dataset rows (0 = harness default 8000)")
		trials  = flag.Int("trials", 0, "trials per distribution (0 = default 30)")
		seed    = flag.Uint64("seed", 1, "root random seed")
		dataset = flag.String("dataset", "", "restrict to one dataset (sports|neighbors)")
		fracs   = flag.String("fracs", "", "comma-separated sample fractions (default 0.01,0.02)")
		csvOut  = flag.String("csv", "", "also write results as CSV to this file (one block per experiment)")
		full    = flag.Bool("full", false, "paper scale: full dataset sizes and 100 trials")
		para    = flag.Int("p", 0, "concurrent trials per distribution (0 = all cores, 1 = sequential); results are identical at any value")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lsbench [flags] <experiment>...|all\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(experiment.IDs(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	opts := experiment.Options{
		Rows:        *rows,
		Trials:      *trials,
		Seed:        *seed,
		Dataset:     *dataset,
		Parallelism: *para,
	}
	if *full {
		opts.Rows = paperRows(*dataset)
		if opts.Trials == 0 {
			opts.Trials = 100
		}
	}
	if *fracs != "" {
		for _, tok := range strings.Split(*fracs, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil || f <= 0 || f > 1 {
				fatalf("bad -fracs entry %q", tok)
			}
			opts.SampleFracs = append(opts.SampleFracs, f)
		}
	}

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiment.IDs()
	}

	var csvFile *os.File
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatalf("creating %s: %v", *csvOut, err)
		}
		defer f.Close()
		csvFile = f
	}

	for _, id := range ids {
		t0 := time.Now()
		rep, err := experiment.Run(id, opts)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf("elapsed %v", time.Since(t0).Round(time.Millisecond)))
		if err := rep.WriteText(os.Stdout); err != nil {
			fatalf("writing %s: %v", id, err)
		}
		if csvFile != nil {
			fmt.Fprintf(csvFile, "# %s: %s\n", rep.ID, rep.Title)
			if err := rep.WriteCSV(csvFile); err != nil {
				fatalf("writing CSV for %s: %v", id, err)
			}
			fmt.Fprintln(csvFile)
		}
	}
}

// paperRows returns the paper's dataset size; with both datasets in play the
// harness builds each at its own paper scale, so 0 suffices there.
func paperRows(dataset string) int {
	switch dataset {
	case "sports":
		return 47000
	case "neighbors":
		return 73000
	default:
		return 47000 // mixed runs: a single size keeps runtime bounded
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lsbench: "+format+"\n", args...)
	os.Exit(1)
}
