// Command lsserve runs the counting service: an HTTP server that estimates
// counts for SQL queries over registered datasets using the paper's learned
// sampling methods.
//
// Usage:
//
//	lsserve -addr :8080 -preload sports:8000,neighbors:8000
//
// Endpoints (see internal/service):
//
//	POST /v1/count     {"sql": "...", "params": {"k": 25}, "method": "lss", "interval": "wilson"}
//	GET  /v1/datasets  list registered datasets (live datasets are flagged)
//	POST /v1/datasets  upload CSV (?name=D&schema=id:int,x:float); add
//	                   &live=1&key=id to register a live dataset that
//	                   accepts streaming deltas
//	POST /v1/ingest    stream a delta into a live dataset (?name=D; body
//	                   text/csv for appends or application/x-ndjson for
//	                   append/update/delete ops); each ingest publishes a
//	                   new dataset version, so cached results over the old
//	                   data are never served
//	GET  /v1/stats     metrics: cache hits, admissions, predicate evals,
//	                   a request-latency histogram (p50/p90/p99/p999/max
//	                   plus cumulative bucket counts), shared-scan and
//	                   degraded-answer counters, ingest counters (requests,
//	                   rows, batches, errors), and the reuse-catalog block
//	                   (entries, bytes, hits, extensions, misses, evictions)
//	GET  /metrics      Prometheus text-format exposition of the same
//	                   counters plus the latency histogram (disable with
//	                   -metrics=false)
//	GET  /v1/traces    completed request traces, newest first (?limit=N)
//	GET  /healthz      liveness
//	POST /v1/shard     one shard's estimation primitives (worker side of
//	                   sharded scale-out; see -role)
//
// Observability: -trace-sample records that fraction of requests as span
// trees readable from /v1/traces (a request with "explain": true is
// always recorded and gets its trace inline in the response);
// -slow-query-ms logs the full span tree of any slower request. All
// server logs are structured JSON, one object per line on stdout, tagged
// with the trace and span ids of the request they belong to. A
// coordinator injects W3C traceparent headers into worker calls, so one
// sharded query yields one stitched trace across processes.
//
// Sharded scale-out: start worker servers (-role=worker, each with the
// same datasets) and one coordinator:
//
//	lsserve -role=worker -addr :8081 -preload neighbors:8000
//	lsserve -role=worker -addr :8082 -preload neighbors:8000
//	lsserve -role=coordinator -addr :8080 \
//	        -workers w1=http://localhost:8081,w2=http://localhost:8082 \
//	        -shards 4 -hedge-after 500ms -allow-degraded
//
// The coordinator serves POST /v1/count by scattering per-shard sampling
// over the workers (consistent-hash routing, per-op deadlines, hedged
// retries on stragglers) and merging the partials; the answer is
// byte-identical to a single-process run at any worker or shard count. A
// /v1/count request may also pass "shards": N to any standalone server
// for in-process sharded execution.
//
// A GROUP BY request — "sql" of the form SELECT g, COUNT(*) FROM (...)
// GROUP BY g — answers with one groups[] row per group (key, objects,
// estimate, CI, sampled), estimated from one shared sample and cached like
// any other request. Request knobs: method, budget, classifier, strata,
// interval (wald|wilson), seed, exact, no_cache, degrade (answer with a
// small-budget wider-interval estimate instead of 503 under overload).
//
// Admission control queues per dataset: -max-inflight bounds global
// concurrency, one hot dataset cannot starve the rest, and hopelessly
// deep per-dataset queues shed immediately. Concurrent exact requests on
// the same snapshot coalesce their labeling into one shared scan. The
// -pprof flag serves Go profiling endpoints under /debug/pprof/ (off by
// default).
//
// The server keeps a cross-query reuse catalog (see lsample.Catalog) that
// materializes learn samples, labels, and trained classifiers so repeated
// or budget-extended queries skip most predicate evaluations; /v1/count
// responses report the path taken in "reuse" (direct, extension, or none).
// Size it with -catalog-mb (0 = 64 MiB default, negative disables).
// Ingests and re-registrations evict the affected entries automatically.
//
// With -data-dir set, live datasets are durable: uploads and ingests are
// write-ahead logged and fsynced before they are acknowledged, startup
// recovers every dataset found under the directory (replaying the newest
// checkpoint plus the log tail, truncating any torn tail from a crash),
// and graceful shutdown drains in-flight estimations then flushes and
// checkpoints each dataset. When the log cannot acknowledge a write the
// server answers 503 with error code unavailable_durability and a
// Retry-After hint; nothing is half-applied.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/lsample"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		preload   = flag.String("preload", "", "builtin datasets to register, e.g. sports:8000,neighbors:8000")
		seed      = flag.Uint64("seed", 1, "seed for preloaded synthetic datasets")
		inflight  = flag.Int("max-inflight", 4, "concurrent estimations admitted")
		queueWait = flag.Duration("queue-timeout", 2*time.Second, "max wait for admission before 503")
		cacheSize = flag.Int("cache-size", 256, "result cache entries (-1 disables)")
		cacheTTL  = flag.Duration("cache-ttl", 10*time.Minute, "result cache max age (-1ns disables expiry)")
		para      = flag.Int("p", 1, "classifier parallelism per request (requests already run concurrently)")
		budget    = flag.Float64("budget", 0.02, "default labeling budget fraction")
		method    = flag.String("method", "lss", "default estimation method")
		dataDir   = flag.String("data-dir", "", "directory for durable live datasets: uploads and ingests are write-ahead logged, and restart recovers them (empty = memory-only)")
		catalogMB = flag.Int64("catalog-mb", 0, "reuse-catalog budget in MiB for cross-query sample/classifier materialization (0 = default 64 MiB, negative disables)")
		pprofOn   = flag.Bool("pprof", false, "serve Go profiling endpoints under /debug/pprof/ (off by default; enable only on trusted networks)")

		metricsOn   = flag.Bool("metrics", true, "serve Prometheus text-format metrics at GET /metrics")
		traceSample = flag.Float64("trace-sample", 0, "fraction of requests to trace [0,1]; explain requests are always traced")
		slowQueryMS = flag.Int64("slow-query-ms", 0, "log the full span tree of requests slower than this many milliseconds (0 disables)")

		role           = flag.String("role", "", "serving role: empty (standalone: full API incl. /v1/shard), worker (same, intended behind a coordinator), or coordinator (scatter/gather /v1/count over -workers)")
		workerSpec     = flag.String("workers", "", "coordinator role: worker roster as name=http://host:port,name=url")
		shards         = flag.Int("shards", 0, "coordinator role: shards per query (0 = one per worker)")
		workerDeadline = flag.Duration("worker-deadline", 15*time.Second, "coordinator role: per-shard-op deadline on one worker")
		hedgeAfter     = flag.Duration("hedge-after", 500*time.Millisecond, "coordinator role: start a backup request to the next worker after this quiet time")
		allowDegraded  = flag.Bool("allow-degraded", false, "coordinator role: answer with a scaled, widened-interval estimate when a shard's every candidate fails, instead of failing the query")
	)
	flag.Parse()

	// All operational logs are structured JSON, one object per line on
	// stdout; request-scoped lines carry the trace and span ids.
	logger := obs.NewLogger(os.Stdout)

	if *role == "coordinator" {
		if err := runCoordinator(*addr, *workerSpec, logger, service.CoordinatorOptions{
			Shards:         *shards,
			WorkerDeadline: *workerDeadline,
			HedgeAfter:     *hedgeAfter,
			AllowDegraded:  *allowDegraded,
			TraceSample:    *traceSample,
			SlowQuery:      time.Duration(*slowQueryMS) * time.Millisecond,
			Logger:         logger,
		}); err != nil {
			logger.Error(context.Background(), "coordinator failed", "error", err)
			os.Exit(1)
		}
		return
	}
	if *role != "" && *role != "worker" {
		fmt.Fprintf(os.Stderr, "lsserve: unknown -role %q (want worker or coordinator)\n", *role)
		os.Exit(2)
	}

	reg := service.NewRegistry()
	if err := preloadDatasets(reg, *preload, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "lsserve: %v\n", err)
		os.Exit(2)
	}
	svc := service.New(reg, service.Options{
		MaxInFlight:    *inflight,
		QueueTimeout:   *queueWait,
		CacheSize:      *cacheSize,
		CacheTTL:       *cacheTTL,
		DefaultMethod:  *method,
		DefaultBudget:  *budget,
		Parallelism:    *para,
		DataDir:        *dataDir,
		CatalogBytes:   catalogBytes(*catalogMB),
		TraceSample:    *traceSample,
		SlowQuery:      time.Duration(*slowQueryMS) * time.Millisecond,
		Logger:         logger,
		DisableMetrics: !*metricsOn,
	})
	recovered, err := svc.RecoverDatasets()
	if err != nil {
		logger.Error(context.Background(), "recovery failed", "data_dir", *dataDir, "error", err)
		os.Exit(2)
	}
	for _, d := range recovered {
		logger.Info(context.Background(), "recovered live dataset",
			"name", d.Name, "rows", d.Rows, "version", d.Version)
	}

	handler := svc.Handler()
	if *pprofOn {
		// Explicit routes on our own mux: importing net/http/pprof for its
		// DefaultServeMux side effect would expose the endpoints even when
		// the flag is off.
		root := http.NewServeMux()
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		root.Handle("/", handler)
		handler = root
		logger.Info(context.Background(), "profiling enabled", "path", "/debug/pprof/")
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Bound header reads and idle keep-alives so stalled clients
		// cannot pin connections forever; body reads stay unbounded
		// because CSV uploads may legitimately be slow (the service
		// caps their size instead).
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info(context.Background(), "listening",
		"addr", *addr, "datasets", len(reg.List()), "role", roleName(*role),
		"metrics", *metricsOn, "trace_sample", *traceSample)

	select {
	case err := <-errc:
		logger.Error(context.Background(), "server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info(context.Background(), "shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error(context.Background(), "http shutdown failed", "error", err)
		os.Exit(1)
	}
	// Drain in-flight estimations, then flush and checkpoint every durable
	// live dataset so the next start replays a checkpoint instead of the
	// whole log. A drain timeout is reported but does not skip persistence.
	// The service logs the summary line (datasets persisted, drained,
	// uptime) through the shared structured logger.
	if _, err := svc.Shutdown(shutCtx); err != nil {
		logger.Error(context.Background(), "shutdown incomplete", "error", err)
		os.Exit(1)
	}
}

// roleName normalizes the -role flag for the boot log line.
func roleName(role string) string {
	if role == "" {
		return "standalone"
	}
	return role
}

// runCoordinator serves the scatter/gather role: /v1/count requests are
// split into hash-aligned shards, routed over the worker roster with
// per-op deadlines and hedged retries, and merged byte-identically to a
// single-process run.
func runCoordinator(addr, roster string, logger *obs.Logger, opts service.CoordinatorOptions) error {
	var workers []service.WorkerInfo
	for _, part := range strings.Split(roster, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, base, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("-workers entry %q is not name=url", part)
		}
		workers = append(workers, service.WorkerInfo{Name: name, BaseURL: strings.TrimSuffix(base, "/")})
	}
	coord, err := service.NewCoordinator(workers, opts)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info(context.Background(), "listening",
		"addr", addr, "workers", len(workers), "role", "coordinator")
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info(context.Background(), "shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}

// catalogBytes maps the -catalog-mb flag onto Options.CatalogBytes:
// MiB to bytes, with any negative value normalized to -1 (disabled) and
// 0 passed through to mean the service default.
func catalogBytes(mb int64) int64 {
	if mb < 0 {
		return -1
	}
	return mb << 20
}

// preloadDatasets registers builtin synthetic datasets from a
// "name:rows,name:rows" spec.
func preloadDatasets(reg *service.Registry, spec string, seed uint64) error {
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, rowsStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return fmt.Errorf("preload entry %q is not name:rows", part)
		}
		rows, err := strconv.Atoi(rowsStr)
		if err != nil || rows <= 0 {
			return fmt.Errorf("preload entry %q: bad row count", part)
		}
		t, err := lsample.SyntheticTable(name, rows, seed)
		if err != nil {
			return err
		}
		reg.Register(t)
	}
	return nil
}
