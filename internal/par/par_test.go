package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const n = 1000
		hits := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
	calls := 0
	ForEach(4, 1, func(i int) { calls++ })
	if calls != 1 {
		t.Fatalf("n=1 calls = %d", calls)
	}
}

func TestForEachChunkBounds(t *testing.T) {
	const n = 103
	hits := make([]int32, n)
	ForEachChunk(3, n, 10, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi || hi-lo > 10 {
			t.Errorf("bad chunk [%d, %d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForEachNestedPoolsComplete(t *testing.T) {
	// A pool inside a pool must degrade to inline execution (activePools
	// guard) and still cover every (outer, inner) pair exactly once.
	const outer, inner = 4, 50
	hits := make([][]int32, outer)
	for i := range hits {
		hits[i] = make([]int32, inner)
	}
	ForEach(4, outer, func(i int) {
		ForEach(4, inner, func(j int) {
			atomic.AddInt32(&hits[i][j], 1)
		})
	})
	for i := range hits {
		for j, h := range hits[i] {
			if h != 1 {
				t.Fatalf("pair (%d, %d) hit %d times", i, j, h)
			}
		}
	}
	// The guard must release: a later pool still covers everything.
	var total atomic.Int32
	ForEach(4, 100, func(int) { total.Add(1) })
	if total.Load() != 100 {
		t.Fatalf("post-nesting pool covered %d of 100", total.Load())
	}
}

func TestForEachChunkZeroChunk(t *testing.T) {
	var total atomic.Int32
	ForEachChunk(2, 5, 0, func(lo, hi int) {
		total.Add(int32(hi - lo))
	})
	if total.Load() != 5 {
		t.Fatalf("covered %d of 5", total.Load())
	}
}
