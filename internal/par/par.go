// Package par provides the bounded worker pools behind every concurrent
// code path in this repository.
//
// Determinism contract: callers pre-commit all randomness (one xrand
// sub-stream per work item, split from the parent stream before dispatch)
// and every work item writes only to its own output slot. Under that
// discipline results are bit-identical for any worker count and any
// scheduling order, so parallelism is a pure throughput knob — the same
// seed yields the same estimates at -p 1, -p 4, or GOMAXPROCS.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism degree: values <= 0 mean "use
// every available core" (GOMAXPROCS); positive values are taken as given.
func Workers(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// activePools guards against nested or concurrent pools oversubscribing
// the machine: while one multi-worker pool is running, any further pool
// degrades to inline execution. Results are unaffected (the determinism
// contract makes worker count a pure throughput knob); this only stops a
// parallel trial pool whose trials each train a parallel forest from
// spawning trials × cores CPU-bound goroutines.
var activePools atomic.Int32

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// and waits for all of them. Work items are handed out through an atomic
// counter, so completion order is nondeterministic — fn must write only to
// per-item state (its own output slot). workers <= 1, or n <= 1, runs
// inline on the calling goroutine with zero synchronization overhead; so
// does any pool requested while another pool is already running (see
// activePools).
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers > 1 {
		if activePools.CompareAndSwap(0, 1) {
			defer activePools.Store(0)
		} else {
			workers = 1
		}
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachChunk splits [0, n) into contiguous chunks of at most chunk items
// and runs fn(lo, hi) for each half-open chunk on at most workers
// goroutines. Chunking amortizes dispatch overhead and keeps each worker on
// a contiguous, cache-friendly index range.
func ForEachChunk(workers, n, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	chunks := (n + chunk - 1) / chunk
	ForEach(workers, chunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}
