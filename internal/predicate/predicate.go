// Package predicate defines the expensive Boolean filter q of the paper's
// problem statement (§2) and its concrete instances: the k-skyband
// membership test (Example 2), the few-neighbors test (Example 1), an
// engine-backed EXISTS predicate for arbitrary decomposed SQL, and
// test doubles. Every predicate counts its evaluations, since "number of
// q evaluations" is the cost unit all of the paper's methods budget.
package predicate

import (
	"fmt"

	"repro/internal/engine"
)

// Predicate is the expensive filter q: object index → bool. Implementations
// count Eval calls; Evals is the labeling cost spent so far.
type Predicate interface {
	Eval(i int) bool
	Evals() int64
	ResetCount()
}

// counter implements the counting half of Predicate for embedding.
type counter struct{ n int64 }

func (c *counter) Evals() int64 { return c.n }
func (c *counter) ResetCount()  { c.n = 0 }

// Func adapts a plain function to a counting Predicate.
type Func struct {
	counter
	f func(int) bool
}

// NewFunc wraps f as a Predicate.
func NewFunc(f func(int) bool) *Func { return &Func{f: f} }

// Eval applies the wrapped function.
func (p *Func) Eval(i int) bool {
	p.n++
	return p.f(i)
}

// Labels is a zero-cost predicate over precomputed labels, used as ground
// truth in tests and for oracle baselines.
type Labels struct {
	counter
	labels []bool
}

// NewLabels wraps a label vector.
func NewLabels(labels []bool) *Labels { return &Labels{labels: labels} }

// Eval returns the stored label.
func (p *Labels) Eval(i int) bool {
	p.n++
	return p.labels[i]
}

// Len returns the number of labeled objects.
func (p *Labels) Len() int { return len(p.labels) }

// Skyband is Example 2's predicate: object i is positive iff fewer than k
// points dominate it. Each evaluation is a deliberate O(N) scan — the
// aggregate subquery a generic engine would run per object.
type Skyband struct {
	counter
	xs, ys []float64
	k      int
}

// NewSkyband builds the k-skyband membership predicate over points
// (xs[i], ys[i]).
func NewSkyband(xs, ys []float64, k int) *Skyband {
	if len(xs) != len(ys) {
		panic("predicate: skyband coordinate lengths differ")
	}
	return &Skyband{xs: xs, ys: ys, k: k}
}

// Eval scans all points and counts dominators of point i.
func (p *Skyband) Eval(i int) bool {
	p.n++
	x, y := p.xs[i], p.ys[i]
	dom := 0
	for j := range p.xs {
		if p.xs[j] >= x && p.ys[j] >= y && (p.xs[j] > x || p.ys[j] > y) {
			dom++
			if dom >= p.k {
				return false
			}
		}
	}
	return dom < p.k
}

// K returns the skyband depth parameter.
func (p *Skyband) K() int { return p.k }

// Neighbors is Example 1's predicate: object i is positive iff at most k
// other points lie within Euclidean distance d. Each evaluation is a
// deliberate O(N) scan, standing in for the correlated aggregate subquery.
type Neighbors struct {
	counter
	xs, ys []float64
	d2     float64
	k      int
}

// NewNeighbors builds the few-neighbors predicate with distance threshold d
// and neighbor bound k over points (xs[i], ys[i]).
func NewNeighbors(xs, ys []float64, d float64, k int) *Neighbors {
	if len(xs) != len(ys) {
		panic("predicate: neighbors coordinate lengths differ")
	}
	return &Neighbors{xs: xs, ys: ys, d2: d * d, k: k}
}

// Eval counts points within distance d of point i (excluding i itself).
func (p *Neighbors) Eval(i int) bool {
	p.n++
	x, y := p.xs[i], p.ys[i]
	cnt := 0
	for j := range p.xs {
		if j == i {
			continue
		}
		dx, dy := p.xs[j]-x, p.ys[j]-y
		if dx*dx+dy*dy <= p.d2 {
			cnt++
			if cnt > p.k {
				return false
			}
		}
	}
	return cnt <= p.k
}

// Memo caches the result of an underlying predicate per object, so that
// ground truth can be computed once and re-read freely. Evals counts only
// underlying (uncached) evaluations.
type Memo struct {
	p      Predicate
	known  []bool
	result []bool
}

// NewMemo wraps p with an n-object cache.
func NewMemo(p Predicate, n int) *Memo {
	return &Memo{p: p, known: make([]bool, n), result: make([]bool, n)}
}

// Eval returns the cached result, evaluating the underlying predicate at
// most once per object.
func (m *Memo) Eval(i int) bool {
	if !m.known[i] {
		m.result[i] = m.p.Eval(i)
		m.known[i] = true
	}
	return m.result[i]
}

// Evals reports underlying evaluations.
func (m *Memo) Evals() int64 { return m.p.Evals() }

// ResetCount resets the underlying counter (the cache is retained).
func (m *Memo) ResetCount() { m.p.ResetCount() }

// EngineExists evaluates a decomposed SQL predicate (Q3) through the query
// engine. Construction validates the predicate on the first object so that
// later evaluations cannot fail for structural reasons; a failure after
// that indicates a programming error and panics.
type EngineExists struct {
	counter
	eval    func(i int) (bool, error)
	objects *engine.ResultSet
}

// NewEngineExists builds an engine-backed predicate for the decomposed
// query over the materialized object set.
func NewEngineExists(ev *engine.Evaluator, dec *engine.Decomposed, objects *engine.ResultSet) (*EngineExists, error) {
	p := &EngineExists{eval: ev.ObjectPredicate(dec, objects), objects: objects}
	if objects.NumRows() > 0 {
		if _, err := p.eval(0); err != nil {
			return nil, fmt.Errorf("predicate: validating decomposed predicate: %w", err)
		}
	}
	return p, nil
}

// Eval runs the EXISTS subquery for object i.
func (p *EngineExists) Eval(i int) bool {
	p.n++
	ok, err := p.eval(i)
	if err != nil {
		panic(fmt.Sprintf("predicate: engine predicate failed on object %d: %v", i, err))
	}
	return ok
}

// Count evaluates q over every object (the exact, expensive path) and
// returns the positive count.
func Count(p Predicate, n int) int {
	c := 0
	for i := 0; i < n; i++ {
		if p.Eval(i) {
			c++
		}
	}
	return c
}

// TrueLabels evaluates q over every object and returns the label vector.
func TrueLabels(p Predicate, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = p.Eval(i)
	}
	return out
}
