// Package predicate defines the expensive Boolean filter q of the paper's
// problem statement (§2) and its concrete instances: the k-skyband
// membership test (Example 2), the few-neighbors test (Example 1), an
// engine-backed EXISTS predicate for arbitrary decomposed SQL, its compiled
// counterpart, and test doubles. Every predicate counts its evaluations,
// since "number of q evaluations" is the cost unit all of the paper's
// methods budget.
//
// Evaluation counters use sync/atomic throughout, so any predicate whose
// Eval is itself thread-safe (a pure function of the object index) may be
// shared across goroutines. Predicates that additionally implement
// BatchPredicate label a pre-chosen sample set in one call — the batch may
// run on a worker pool internally — and AsBatch discovers that capability
// through wrapper chains (Memo here, the timing wrapper in internal/core).
package predicate

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/par"
)

// Predicate is the expensive filter q: object index → bool. Implementations
// count Eval calls; Evals is the labeling cost spent so far.
type Predicate interface {
	Eval(i int) bool
	Evals() int64
	ResetCount()
}

// BatchPredicate is a Predicate that can label a pre-chosen set of objects
// in one call. EvalBatch evaluates q on idxs[j] and stores the label in
// out[j]; len(out) must be at least len(idxs). Each element counts as one
// evaluation. Implementations may evaluate elements concurrently — labels
// are pure functions of the object index, so the result is identical to a
// sequential loop at any parallelism.
type BatchPredicate interface {
	Predicate
	EvalBatch(idxs []int, out []bool)
}

// batchSource is the hook wrappers implement so AsBatch can see through
// them: the wrapper returns a batch view that preserves its own semantics
// (memoization, timing) while delegating bulk evaluation inward.
type batchSource interface {
	AsBatch() (BatchPredicate, bool)
}

// AsBatch returns a batch view of p when its evaluation chain supports
// native batched evaluation, unwrapping wrappers along the way. Predicates
// that merely loop over Eval internally do not count: callers that get
// ok=false should run their own sequential loop (keeping per-evaluation
// cancellation checks).
func AsBatch(p Predicate) (BatchPredicate, bool) {
	if w, ok := p.(batchSource); ok {
		return w.AsBatch()
	}
	if bp, ok := p.(BatchPredicate); ok {
		return bp, true
	}
	return nil, false
}

// counter implements the counting half of Predicate for embedding. The
// count is atomic, so predicates with thread-safe Eval may be hammered from
// any number of goroutines without losing evaluations.
type counter struct{ n atomic.Int64 }

func (c *counter) Evals() int64 { return c.n.Load() }
func (c *counter) ResetCount()  { c.n.Store(0) }

// Func adapts a plain function to a counting Predicate. The function may be
// called from one goroutine at a time (the SDK makes no thread-safety
// demands on user callbacks), so Func does not implement BatchPredicate.
type Func struct {
	counter
	f func(int) bool
}

// NewFunc wraps f as a Predicate.
func NewFunc(f func(int) bool) *Func { return &Func{f: f} }

// Eval applies the wrapped function.
func (p *Func) Eval(i int) bool {
	p.n.Add(1)
	return p.f(i)
}

// Labels is a zero-cost predicate over precomputed labels, used as ground
// truth in tests and for oracle baselines.
type Labels struct {
	counter
	labels []bool
}

// NewLabels wraps a label vector.
func NewLabels(labels []bool) *Labels { return &Labels{labels: labels} }

// Eval returns the stored label.
func (p *Labels) Eval(i int) bool {
	p.n.Add(1)
	return p.labels[i]
}

// Len returns the number of labeled objects.
func (p *Labels) Len() int { return len(p.labels) }

// Skyband is Example 2's predicate: object i is positive iff fewer than k
// points dominate it. Each evaluation is a deliberate O(N) scan — the
// aggregate subquery a generic engine would run per object. Eval is a pure
// read and safe for concurrent use.
type Skyband struct {
	counter
	xs, ys []float64
	k      int
}

// NewSkyband builds the k-skyband membership predicate over points
// (xs[i], ys[i]).
func NewSkyband(xs, ys []float64, k int) *Skyband {
	if len(xs) != len(ys) {
		panic("predicate: skyband coordinate lengths differ")
	}
	return &Skyband{xs: xs, ys: ys, k: k}
}

// Eval scans all points and counts dominators of point i.
func (p *Skyband) Eval(i int) bool {
	p.n.Add(1)
	x, y := p.xs[i], p.ys[i]
	dom := 0
	for j := range p.xs {
		if p.xs[j] >= x && p.ys[j] >= y && (p.xs[j] > x || p.ys[j] > y) {
			dom++
			if dom >= p.k {
				return false
			}
		}
	}
	return dom < p.k
}

// K returns the skyband depth parameter.
func (p *Skyband) K() int { return p.k }

// Neighbors is Example 1's predicate: object i is positive iff at most k
// other points lie within Euclidean distance d. Each evaluation is a
// deliberate O(N) scan, standing in for the correlated aggregate subquery.
// Eval is a pure read and safe for concurrent use.
type Neighbors struct {
	counter
	xs, ys []float64
	d2     float64
	k      int
}

// NewNeighbors builds the few-neighbors predicate with distance threshold d
// and neighbor bound k over points (xs[i], ys[i]).
func NewNeighbors(xs, ys []float64, d float64, k int) *Neighbors {
	if len(xs) != len(ys) {
		panic("predicate: neighbors coordinate lengths differ")
	}
	return &Neighbors{xs: xs, ys: ys, d2: d * d, k: k}
}

// Eval counts points within distance d of point i (excluding i itself).
func (p *Neighbors) Eval(i int) bool {
	p.n.Add(1)
	x, y := p.xs[i], p.ys[i]
	cnt := 0
	for j := range p.xs {
		if j == i {
			continue
		}
		dx, dy := p.xs[j]-x, p.ys[j]-y
		if dx*dx+dy*dy <= p.d2 {
			cnt++
			if cnt > p.k {
				return false
			}
		}
	}
	return cnt <= p.k
}

// Memo caches the result of an underlying predicate per object, so that
// ground truth can be computed once and re-read freely. Evals counts only
// underlying (uncached) evaluations. Memo itself is not safe for concurrent
// use — the estimation methods own one per run — but its batch view labels
// the not-yet-known subset of a batch through the underlying predicate's
// (possibly parallel) batch path.
type Memo struct {
	p      Predicate
	known  []bool
	result []bool
}

// NewMemo wraps p with an n-object cache.
func NewMemo(p Predicate, n int) *Memo {
	return &Memo{p: p, known: make([]bool, n), result: make([]bool, n)}
}

// Eval returns the cached result, evaluating the underlying predicate at
// most once per object.
func (m *Memo) Eval(i int) bool {
	if !m.known[i] {
		m.result[i] = m.p.Eval(i)
		m.known[i] = true
	}
	return m.result[i]
}

// Evals reports underlying evaluations.
func (m *Memo) Evals() int64 { return m.p.Evals() }

// ResetCount resets the underlying counter (the cache is retained).
func (m *Memo) ResetCount() { m.p.ResetCount() }

// AsBatch exposes the memo's batch view when the underlying predicate
// supports batched evaluation.
func (m *Memo) AsBatch() (BatchPredicate, bool) {
	bp, ok := AsBatch(m.p)
	if !ok {
		return nil, false
	}
	return &memoBatch{m: m, bp: bp}, true
}

// memoBatch is Memo's batch view: unknown batch members are deduplicated,
// labeled through the underlying batch predicate in one call, and cached;
// known members cost nothing.
type memoBatch struct {
	m  *Memo
	bp BatchPredicate
}

func (b *memoBatch) Eval(i int) bool { return b.m.Eval(i) }
func (b *memoBatch) Evals() int64    { return b.m.Evals() }
func (b *memoBatch) ResetCount()     { b.m.ResetCount() }

func (b *memoBatch) EvalBatch(idxs []int, out []bool) {
	m := b.m
	var unknown []int
	queued := make(map[int]bool)
	for _, i := range idxs {
		if !m.known[i] && !queued[i] {
			unknown = append(unknown, i)
			queued[i] = true
		}
	}
	if len(unknown) > 0 {
		fresh := make([]bool, len(unknown))
		b.bp.EvalBatch(unknown, fresh)
		for j, i := range unknown {
			m.result[i] = fresh[j]
			m.known[i] = true
		}
	}
	for j, i := range idxs {
		out[j] = m.result[i]
	}
}

// EngineExists evaluates a decomposed SQL predicate (Q3) through the query
// engine. Construction validates the predicate on the first object so that
// later evaluations cannot fail for structural reasons; a failure after
// that indicates a programming error and panics. The interpreted evaluator
// shares mutable state (work counters, cursors), so EngineExists is the one
// expensive predicate that must stay on a single goroutine — the compiled
// path (Compiled) is the parallel alternative.
type EngineExists struct {
	counter
	eval    func(i int) (bool, error)
	objects *engine.ResultSet
	first   bool // validation result for object 0
	has0    bool
}

// NewEngineExists builds an engine-backed predicate for the decomposed
// query over the materialized object set.
func NewEngineExists(ev *engine.Evaluator, dec *engine.Decomposed, objects *engine.ResultSet) (*EngineExists, error) {
	p := &EngineExists{eval: ev.ObjectPredicate(dec, objects), objects: objects}
	if objects.NumRows() > 0 {
		v, err := p.eval(0)
		if err != nil {
			return nil, fmt.Errorf("predicate: validating decomposed predicate: %w", err)
		}
		p.first, p.has0 = v, true
	}
	return p, nil
}

// First returns the construction-time validation result for object 0, so
// cross-checks against it need not repeat a full interpreted evaluation
// (one Q3 interpretation scans the whole join — the very cost compilation
// exists to avoid).
func (p *EngineExists) First() (v, ok bool) { return p.first, p.has0 }

// Eval runs the EXISTS subquery for object i.
func (p *EngineExists) Eval(i int) bool {
	p.n.Add(1)
	ok, err := p.eval(i)
	if err != nil {
		panic(fmt.Sprintf("predicate: engine predicate failed on object %d: %v", i, err))
	}
	return ok
}

// Compiled is the batch-capable predicate over a compiled Q3 evaluator
// (internal/qcompile). The factory hands out evaluation closures with
// private scratch, so EvalBatch can fan a batch out over a worker pool:
// each worker owns one closure, each batch element writes only its own
// output slot, and labels are pure functions of the object index — the
// result is byte-identical to a sequential loop at any parallelism.
type Compiled struct {
	counter
	f       func(int) bool
	newFn   func() func(int) bool
	vec     BatchEvaler        // cached vector evaluator for sequential batches
	newVec  func() BatchEvaler // nil when the program has no vector path
	pool    sync.Pool          // vector evaluators for parallel chunk workers
	workers int
}

// BatchEvaler is the vectorized evaluation contract the compiler's batch
// arena satisfies (qcompile.VecEval): label idxs into out with preallocated
// scratch, zero allocations in steady state. A BatchEvaler is not safe for
// concurrent use with itself; Compiled keeps one per worker.
type BatchEvaler interface {
	EvalBatch(idxs []int, out []bool)
}

// batchChunk is the per-dispatch work unit for parallel batches: large
// enough to amortize dispatch, small enough to balance uneven per-object
// cost (short-circuiting makes negatives much cheaper than positives).
const batchChunk = 64

// NewCompiled wraps an evaluation-closure factory as a Compiled predicate.
// workers bounds batch parallelism: 0 means all cores, 1 sequential.
func NewCompiled(newFn func() func(int) bool, workers int) *Compiled {
	return &Compiled{f: newFn(), newFn: newFn, workers: workers}
}

// NewCompiledVec is NewCompiled plus a vectorized batch path: batches go
// through arenas from newVec (one cached for sequential use, a pool for
// parallel workers) while single Eval calls keep the scalar closure. Labels
// and evaluation counts are identical on both paths — the vector path is
// purely a throughput knob.
func NewCompiledVec(newFn func() func(int) bool, newVec func() BatchEvaler, workers int) *Compiled {
	p := &Compiled{f: newFn(), newFn: newFn, newVec: newVec, workers: workers}
	if newVec != nil {
		p.vec = newVec()
		p.pool.New = func() any { return newVec() }
	}
	return p
}

// Workers reports the resolved batch parallelism.
func (p *Compiled) Workers() int { return par.Workers(p.workers) }

// Vectorized reports whether batches run through the vector arena path.
func (p *Compiled) Vectorized() bool { return p.vec != nil }

// Eval evaluates q on object i.
func (p *Compiled) Eval(i int) bool {
	p.n.Add(1)
	return p.f(i)
}

// EvalBatch labels a pre-chosen sample set, in parallel when the predicate
// was built with more than one worker. Every batch element counts as one
// evaluation on either path, so Evals stays comparable whether a batch ran
// through scalar closures or the vector arena.
func (p *Compiled) EvalBatch(idxs []int, out []bool) {
	p.n.Add(int64(len(idxs)))
	w := par.Workers(p.workers)
	if w <= 1 || len(idxs) <= batchChunk {
		if p.vec != nil {
			p.vec.EvalBatch(idxs, out)
			return
		}
		for j, i := range idxs {
			out[j] = p.f(i)
		}
		return
	}
	par.ForEachChunk(w, len(idxs), batchChunk, func(lo, hi int) {
		if p.newVec != nil {
			ve := p.pool.Get().(BatchEvaler)
			ve.EvalBatch(idxs[lo:hi], out[lo:hi])
			p.pool.Put(ve)
			return
		}
		f := p.newFn()
		for j := lo; j < hi; j++ {
			out[j] = f(idxs[j])
		}
	})
}

// AllIndices returns the identity index slice [0, n) — the sample set of
// an evaluate-everything pass (the oracle, exact counts, ground truth).
func AllIndices(n int) []int {
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	return idxs
}

// chunkedBatchSize bounds one EvalBatch call inside EvalBatchChunked: large
// enough to amortize parallel fan-out, small enough that a cancellation
// check between chunks keeps even evaluate-everything passes responsive.
const chunkedBatchSize = 4096

// EvalBatchChunked labels idxs through bp in bounded chunks, calling stop
// (which may be nil) between chunks. It is how callers keep cooperative
// cancellation on batches whose total size is unbounded: labels are pure
// per-index functions, so chunking changes nothing about the result, and a
// non-nil stop error aborts the remaining chunks and is returned.
func EvalBatchChunked(bp BatchPredicate, idxs []int, out []bool, stop func() error) error {
	for lo := 0; lo < len(idxs); lo += chunkedBatchSize {
		if stop != nil {
			if err := stop(); err != nil {
				return err
			}
		}
		hi := lo + chunkedBatchSize
		if hi > len(idxs) {
			hi = len(idxs)
		}
		bp.EvalBatch(idxs[lo:hi], out[lo:hi])
	}
	return nil
}

// Count evaluates q over every object (the exact, expensive path) and
// returns the positive count.
func Count(p Predicate, n int) int {
	c := 0
	for _, v := range TrueLabels(p, n) {
		if v {
			c++
		}
	}
	return c
}

// TrueLabels evaluates q over every object and returns the label vector,
// through the batch path when the predicate has one.
func TrueLabels(p Predicate, n int) []bool {
	out := make([]bool, n)
	if bp, ok := AsBatch(p); ok {
		bp.EvalBatch(AllIndices(n), out)
		return out
	}
	for i := 0; i < n; i++ {
		out[i] = p.Eval(i)
	}
	return out
}
