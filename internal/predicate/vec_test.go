package predicate

import (
	"runtime"
	"testing"
)

// fakeVec is a BatchEvaler over a fixed label vector, counting how many
// batch elements it was asked to label.
type fakeVec struct {
	labels []bool
	seen   int
}

func (f *fakeVec) EvalBatch(idxs []int, out []bool) {
	f.seen += len(idxs)
	for j, i := range idxs {
		out[j] = f.labels[i]
	}
}

func vecFixture(n int) ([]bool, func() func(int) bool, func() BatchEvaler) {
	labels := make([]bool, n)
	for i := range labels {
		labels[i] = i%3 == 0
	}
	newFn := func() func(int) bool { return func(i int) bool { return labels[i] } }
	newVec := func() BatchEvaler { return &fakeVec{labels: labels} }
	return labels, newFn, newVec
}

// TestCompiledVecCounterParity pins the satellite fix: a vector batch
// counts exactly one evaluation per element, identical to the scalar batch
// path and to single Eval calls, at any parallelism.
func TestCompiledVecCounterParity(t *testing.T) {
	const n = 500
	labels, newFn, newVec := vecFixture(n)
	idxs := AllIndices(n)
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		scalar := NewCompiled(newFn, workers)
		vec := NewCompiledVec(newFn, newVec, workers)
		if !vec.Vectorized() || scalar.Vectorized() {
			t.Fatal("Vectorized() should report the batch path in use")
		}
		so, vo := make([]bool, n), make([]bool, n)
		scalar.EvalBatch(idxs, so)
		vec.EvalBatch(idxs, vo)
		for i := range labels {
			if so[i] != labels[i] || vo[i] != labels[i] {
				t.Fatalf("workers=%d object %d: scalar=%v vector=%v want=%v", workers, i, so[i], vo[i], labels[i])
			}
		}
		if s, v := scalar.Evals(), vec.Evals(); s != v || v != int64(n) {
			t.Fatalf("workers=%d: scalar counted %d, vector counted %d, want %d", workers, s, v, n)
		}
		// Single evaluations add one each on both.
		scalar.Eval(0)
		vec.Eval(0)
		if s, v := scalar.Evals(), vec.Evals(); s != v || v != int64(n)+1 {
			t.Fatalf("workers=%d after Eval: scalar=%d vector=%d", workers, s, v)
		}
	}
}

// TestCompiledVecNilFactory checks NewCompiledVec with a nil vector factory
// degrades to the plain scalar batch path.
func TestCompiledVecNilFactory(t *testing.T) {
	const n = 100
	labels, newFn, _ := vecFixture(n)
	p := NewCompiledVec(newFn, nil, 1)
	if p.Vectorized() {
		t.Fatal("nil factory must not report vectorized")
	}
	out := make([]bool, n)
	p.EvalBatch(AllIndices(n), out)
	for i := range labels {
		if out[i] != labels[i] {
			t.Fatalf("object %d: got %v want %v", i, out[i], labels[i])
		}
	}
	if p.Evals() != int64(n) {
		t.Fatalf("counted %d evals, want %d", p.Evals(), n)
	}
}
