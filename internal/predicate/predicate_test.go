package predicate

import (
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/sql"
	"repro/internal/xrand"
)

func TestFuncCounting(t *testing.T) {
	p := NewFunc(func(i int) bool { return i%2 == 0 })
	if !p.Eval(0) || p.Eval(1) {
		t.Fatal("wrong results")
	}
	if p.Evals() != 2 {
		t.Fatalf("Evals = %d", p.Evals())
	}
	p.ResetCount()
	if p.Evals() != 0 {
		t.Fatal("ResetCount failed")
	}
}

func TestLabels(t *testing.T) {
	p := NewLabels([]bool{true, false, true})
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if !p.Eval(0) || p.Eval(1) || !p.Eval(2) {
		t.Fatal("wrong labels")
	}
	if p.Evals() != 3 {
		t.Fatalf("Evals = %d", p.Evals())
	}
}

func TestSkybandAgainstGeom(t *testing.T) {
	r := xrand.New(1)
	n := 150
	xs := make([]float64, n)
	ys := make([]float64, n)
	pts := make([]geom.Point2, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(r.IntN(15))
		ys[i] = float64(r.IntN(15))
		pts[i] = geom.Point2{X: xs[i], Y: ys[i]}
	}
	counts := geom.DominanceCounts(pts)
	for _, k := range []int{1, 3, 10} {
		p := NewSkyband(xs, ys, k)
		if p.K() != k {
			t.Fatalf("K() = %d", p.K())
		}
		for i := 0; i < n; i++ {
			want := counts[i] < k
			if got := p.Eval(i); got != want {
				t.Fatalf("k=%d object %d: got %v, want %v (dom=%d)", k, i, got, want, counts[i])
			}
		}
		if int(p.Evals()) != n {
			t.Fatalf("Evals = %d", p.Evals())
		}
	}
}

func TestNeighborsAgainstKDTree(t *testing.T) {
	r := xrand.New(2)
	n := 120
	xs := make([]float64, n)
	ys := make([]float64, n)
	coords := make([][]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64() * 10
		ys[i] = r.Float64() * 10
		coords[i] = []float64{xs[i], ys[i]}
	}
	tree := geom.NewKDTree(coords)
	for _, tc := range []struct {
		d float64
		k int
	}{{1, 2}, {3, 10}, {0.5, 0}} {
		p := NewNeighbors(xs, ys, tc.d, tc.k)
		for i := 0; i < n; i++ {
			// kd-tree count includes the point itself.
			want := tree.CountWithin(coords[i], tc.d)-1 <= tc.k
			if got := p.Eval(i); got != want {
				t.Fatalf("d=%v k=%d object %d: got %v, want %v", tc.d, tc.k, i, got, want)
			}
		}
	}
}

func TestMemo(t *testing.T) {
	calls := 0
	inner := NewFunc(func(i int) bool { calls++; return i > 2 })
	m := NewMemo(inner, 5)
	for round := 0; round < 3; round++ {
		for i := 0; i < 5; i++ {
			if got := m.Eval(i); got != (i > 2) {
				t.Fatalf("Eval(%d) = %v", i, got)
			}
		}
	}
	if calls != 5 {
		t.Fatalf("underlying calls = %d, want 5", calls)
	}
	if m.Evals() != 5 {
		t.Fatalf("Evals = %d", m.Evals())
	}
	m.ResetCount()
	if m.Evals() != 0 {
		t.Fatal("ResetCount")
	}
}

func TestCountAndTrueLabels(t *testing.T) {
	p := NewLabels([]bool{true, false, true, true})
	if got := Count(p, 4); got != 3 {
		t.Fatalf("Count = %d", got)
	}
	labels := TrueLabels(NewLabels([]bool{true, false}), 2)
	if !labels[0] || labels[1] {
		t.Fatalf("TrueLabels = %v", labels)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths should panic")
		}
	}()
	NewSkyband([]float64{1}, []float64{1, 2}, 1)
}

func TestEngineExists(t *testing.T) {
	// Wire the full path: SQL → decompose → engine-backed predicate, and
	// check it against the native skyband predicate.
	r := xrand.New(3)
	n := 40
	tb := dataset.New("D", dataset.Schema{
		{Name: "id", Kind: dataset.Int},
		{Name: "x", Kind: dataset.Float},
		{Name: "y", Kind: dataset.Float},
	})
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(r.IntN(8))
		ys[i] = float64(r.IntN(8))
		tb.MustAppendRow(int64(i), xs[i], ys[i])
	}
	stmt, err := sql.Parse(`
		SELECT o1.id FROM D o1, D o2
		WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
		GROUP BY o1.id HAVING COUNT(*) < 3`)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := engine.Decompose(stmt)
	if err != nil {
		t.Fatal(err)
	}
	ev := engine.NewEvaluator(engine.Catalog{"D": tb})
	objects, err := ev.Run(dec.Objects, nil)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := NewEngineExists(ev, dec, objects)
	if err != nil {
		t.Fatal(err)
	}
	// The EXISTS form counts only objects with >=1 dominator (groups with
	// zero join partners vanish); compare per-object against dominator
	// counts in [1, 3).
	native := NewSkyband(xs, ys, 3)
	pts := make([]geom.Point2, n)
	for i := range pts {
		pts[i] = geom.Point2{X: xs[i], Y: ys[i]}
	}
	dom := geom.DominanceCounts(pts)
	for i := 0; i < objects.NumRows(); i++ {
		id := objects.Value(i, 0).I
		want := dom[id] >= 1 && dom[id] < 3
		if got := ep.Eval(i); got != want {
			t.Fatalf("object id=%d: engine=%v, want %v (dom=%d, native=%v)",
				id, got, want, dom[id], native.Eval(int(id)))
		}
	}
	if ep.Evals() != int64(objects.NumRows()) {
		t.Fatalf("Evals = %d", ep.Evals())
	}
}

func BenchmarkSkybandEval(b *testing.B) {
	r := xrand.New(4)
	n := 10000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64() * 1000
		ys[i] = r.Float64() * 1000
	}
	p := NewSkyband(xs, ys, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Eval(i % n)
	}
}

func BenchmarkNeighborsEval(b *testing.B) {
	r := xrand.New(5)
	n := 10000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64() * 100
		ys[i] = r.Float64() * 100
	}
	p := NewNeighbors(xs, ys, 5, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Eval(i % n)
	}
}

// TestConcurrentEvalCounting hammers one predicate from many goroutines and
// checks that no evaluation is lost: the counter is atomic, so a predicate
// with thread-safe Eval is safe to share across a labeling worker pool.
// Run with -race (the repository's `make race` / CI gate does) to pin the
// absence of the old unsynchronized n++ data race.
func TestConcurrentEvalCounting(t *testing.T) {
	r := xrand.New(9)
	n := 512
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	p := NewSkyband(xs, ys, 8)
	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				p.Eval((w*perWorker + j) % n)
			}
		}(w)
	}
	wg.Wait()
	if got := p.Evals(); got != workers*perWorker {
		t.Fatalf("Evals = %d, want %d (lost updates)", got, workers*perWorker)
	}
	p.ResetCount()
	if p.Evals() != 0 {
		t.Fatalf("ResetCount left %d", p.Evals())
	}
}

// TestCompiledEvalBatch checks the parallel batch path against sequential
// Eval for every worker count, including the eval counter.
func TestCompiledEvalBatch(t *testing.T) {
	n := 500
	newFn := func() func(int) bool {
		return func(i int) bool { return i%3 == 0 || i%7 == 0 }
	}
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = (i * 13) % n
	}
	want := make([]bool, n)
	for j, i := range idxs {
		want[j] = newFn()(i)
	}
	for _, workers := range []int{1, 2, 4, 0} {
		p := NewCompiled(newFn, workers)
		out := make([]bool, n)
		p.EvalBatch(idxs, out)
		for j := range want {
			if out[j] != want[j] {
				t.Fatalf("workers=%d: out[%d]=%v, want %v", workers, j, out[j], want[j])
			}
		}
		if p.Evals() != int64(n) {
			t.Fatalf("workers=%d: Evals=%d, want %d", workers, p.Evals(), n)
		}
	}
}

// TestMemoBatch checks that the memo's batch view evaluates each unknown
// object exactly once and serves repeats from the cache.
func TestMemoBatch(t *testing.T) {
	n := 100
	base := NewCompiled(func() func(int) bool {
		return func(i int) bool { return i%2 == 0 }
	}, 1)
	m := NewMemo(base, n)
	bp, ok := AsBatch(m)
	if !ok {
		t.Fatal("memo over a batch predicate should expose a batch view")
	}
	idxs := []int{3, 4, 4, 7, 3, 10}
	out := make([]bool, len(idxs))
	bp.EvalBatch(idxs, out)
	for j, i := range idxs {
		if out[j] != (i%2 == 0) {
			t.Fatalf("out[%d] wrong", j)
		}
	}
	if base.Evals() != 4 { // 3, 4, 7, 10 — duplicates deduplicated
		t.Fatalf("underlying evals = %d, want 4", base.Evals())
	}
	bp.EvalBatch([]int{3, 4, 99}, make([]bool, 3))
	if base.Evals() != 5 { // only 99 is new
		t.Fatalf("underlying evals = %d, want 5", base.Evals())
	}
}

// TestAsBatchSequentialOnly checks that predicates without a native batch
// path (user callbacks, the interpreted engine predicate) are not reported
// as batchable.
func TestAsBatchSequentialOnly(t *testing.T) {
	if _, ok := AsBatch(NewFunc(func(int) bool { return true })); ok {
		t.Fatal("Func must not be batchable")
	}
	if _, ok := AsBatch(NewMemo(NewFunc(func(int) bool { return true }), 4)); ok {
		t.Fatal("Memo over a sequential predicate must not be batchable")
	}
}
