package obs

import "encoding/hex"

// TraceparentHeader is the W3C trace-context header name used to stitch
// traces across the coordinator → worker hop.
const TraceparentHeader = "traceparent"

// Traceparent is a parsed W3C traceparent header: version 00, a
// 32-hex-digit trace id, a 16-hex-digit parent span id, and the sampled
// flag. It is the whole cross-process contract — a worker that adopts a
// sampled traceparent records its subtree under the caller's trace.
type Traceparent struct {
	TraceID string // 32 lowercase hex digits, not all-zero
	SpanID  string // 16 lowercase hex digits, not all-zero
	Sampled bool
}

// String renders the header value: 00-<trace-id>-<span-id>-<flags>.
func (tp Traceparent) String() string {
	flags := "00"
	if tp.Sampled {
		flags = "01"
	}
	return "00-" + tp.TraceID + "-" + tp.SpanID + "-" + flags
}

// ParseTraceparent parses a traceparent header value. It accepts version
// 00 exactly; anything malformed returns ok=false and the caller treats
// the request as the start of a new trace.
func ParseTraceparent(v string) (Traceparent, bool) {
	if len(v) != 55 || v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return Traceparent{}, false
	}
	traceID, spanID, flags := v[3:35], v[36:52], v[53:55]
	if !allHex(traceID) || !allHex(spanID) || !allHex(flags) {
		return Traceparent{}, false
	}
	if allZero(traceID) || allZero(spanID) {
		return Traceparent{}, false
	}
	return Traceparent{TraceID: traceID, SpanID: spanID, Sampled: flags[1]&1 == 1}, true
}

// traceID returns the decoded 16-byte trace id (zero on malformed input,
// which ParseTraceparent already rejects).
func (tp Traceparent) traceID() []byte {
	b, _ := hex.DecodeString(tp.TraceID)
	if len(b) != 16 {
		return make([]byte, 16)
	}
	return b
}

// spanID returns the decoded 8-byte span id.
func (tp Traceparent) spanID() []byte {
	b, _ := hex.DecodeString(tp.SpanID)
	if len(b) != 8 {
		return make([]byte, 8)
	}
	return b
}

func allHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
