package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Level is a log severity.
type Level int

// Severities, lowest to highest.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// Logger writes one JSON object per line: ts, level, msg, the trace and
// span ids of the span carried by ctx (when any), then the caller's
// key/value fields in call order. A nil *Logger discards everything, so
// call sites never guard.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
}

// NewLogger returns a Logger writing to w at LevelInfo and above.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w, min: LevelInfo}
}

// SetLevel sets the minimum severity emitted.
func (l *Logger) SetLevel(min Level) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.min = min
	l.mu.Unlock()
}

// Info logs at LevelInfo.
func (l *Logger) Info(ctx context.Context, msg string, kv ...any) { l.log(LevelInfo, ctx, msg, kv...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(ctx context.Context, msg string, kv ...any) { l.log(LevelWarn, ctx, msg, kv...) }

// Error logs at LevelError.
func (l *Logger) Error(ctx context.Context, msg string, kv ...any) {
	l.log(LevelError, ctx, msg, kv...)
}

func (l *Logger) log(level Level, ctx context.Context, msg string, kv ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	min := l.min
	l.mu.Unlock()
	if level < min {
		return
	}

	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":`...)
	buf = appendJSON(buf, time.Now().UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"level":`...)
	buf = appendJSON(buf, level.String())
	buf = append(buf, `,"msg":`...)
	buf = appendJSON(buf, msg)
	if sp := FromContext(ctx); sp != nil {
		buf = append(buf, `,"trace_id":`...)
		buf = appendJSON(buf, sp.TraceID())
		buf = append(buf, `,"span_id":`...)
		buf = appendJSON(buf, sp.SpanID())
	}
	for i := 0; i < len(kv); i += 2 {
		key, ok := "", false
		if i+1 < len(kv) {
			key, ok = kv[i].(string)
		}
		if !ok {
			buf = append(buf, `,"!badkey":`...)
			buf = appendJSON(buf, fmt.Sprint(kv[i:]))
			break
		}
		buf = append(buf, ',')
		buf = appendJSON(buf, key)
		buf = append(buf, ':')
		buf = appendJSON(buf, kv[i+1])
	}
	buf = append(buf, '}', '\n')

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w != nil {
		l.w.Write(buf)
	}
}

// appendJSON appends v marshaled as JSON, falling back to the quoted
// fmt rendering for values encoding/json rejects.
func appendJSON(buf []byte, v any) []byte {
	if err, ok := v.(error); ok {
		v = err.Error()
	}
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return append(buf, b...)
}
