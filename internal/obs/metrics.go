package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics and renders them in the Prometheus text
// exposition format (version 0.0.4). It is zero-dependency by design:
// counters and gauges are atomics, histograms are fixed-bucket arrays,
// and the *Func variants re-export state owned elsewhere (the service's
// existing atomic counters and its HDR latency histogram) without copying
// it into a second source of truth.
//
// Every registration requires a non-empty help string — Register panics
// without one, and tools/obscheck enforces the same rule statically so
// the panic never ships.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metricEntry
	ordered []*metricEntry
}

type metricEntry struct {
	name, help, typ string
	collect         func(w *bufio.Writer, name string)
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metricEntry)}
}

// register validates and stores one metric family.
func (r *Registry) register(name, help, typ string, collect func(w *bufio.Writer, name string)) {
	if name == "" || !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if help == "" {
		panic(fmt.Sprintf("obs: metric %q registered without a help string", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	e := &metricEntry{name: name, help: help, typ: typ, collect: collect}
	r.byName[name] = e
	r.ordered = append(r.ordered, e)
	sort.Slice(r.ordered, func(i, j int) bool { return r.ordered[i].name < r.ordered[j].name })
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return len(name) > 0
}

// Expose renders every registered family, sorted by name, in the text
// exposition format. It is safe to call concurrently with metric updates;
// each sample is an atomic read.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*metricEntry(nil), r.ordered...)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		fmt.Fprintf(bw, "# HELP %s %s\n", e.name, escapeHelp(e.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.typ)
		e.collect(bw, e.name)
	}
	return bw.Flush()
}

func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

func writeFloat(w *bufio.Writer, v float64) {
	switch {
	case math.IsInf(v, 1):
		w.WriteString("+Inf")
	case math.IsInf(v, -1):
		w.WriteString("-Inf")
	default:
		w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters never go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// NewCounter registers and returns an owned counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w *bufio.Writer, name string) {
		fmt.Fprintf(w, "%s %d\n", name, c.v.Load())
	})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the re-export path for counters owned elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, help, "counter", func(w *bufio.Writer, name string) {
		fmt.Fprintf(w, "%s %d\n", name, fn())
	})
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewGauge registers and returns an owned gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(w *bufio.Writer, name string) {
		fmt.Fprintf(w, "%s %d\n", name, g.v.Load())
	})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(w *bufio.Writer, name string) {
		w.WriteString(name)
		w.WriteByte(' ')
		writeFloat(w, fn())
		w.WriteByte('\n')
	})
}

// Histogram is an owned fixed-bucket histogram; observations are counted
// into the first bucket whose upper bound is >= the value.
type Histogram struct {
	uppers []float64 // ascending; +Inf implied
	counts []atomic.Int64
	sum    atomicFloat
	count  atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.sum.add(v)
	h.count.Add(1)
}

// NewHistogram registers and returns an owned histogram with the given
// ascending bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, uppers []float64) *Histogram {
	bounds := append([]float64(nil), uppers...)
	sort.Float64s(bounds)
	h := &Histogram{uppers: bounds, counts: make([]atomic.Int64, len(bounds))}
	r.register(name, help, "histogram", func(w *bufio.Writer, name string) {
		cum := int64(0)
		for i, ub := range h.uppers {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatLE(ub), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count.Load())
		w.WriteString(name + "_sum ")
		writeFloat(w, h.sum.load())
		w.WriteByte('\n')
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	})
	return h
}

// HistSnapshot is one consistent view of an externally owned histogram,
// as cumulative Prometheus buckets.
type HistSnapshot struct {
	Uppers []float64 // ascending upper bounds (no +Inf entry)
	Cum    []int64   // cumulative counts aligned with Uppers
	Count  int64     // total observations (the +Inf bucket)
	Sum    float64   // sum of observations
}

// HistogramFunc registers a histogram whose buckets are produced by fn at
// scrape time — the re-export path for the service's HDR latency
// histogram.
func (r *Registry) HistogramFunc(name, help string, fn func() HistSnapshot) {
	r.register(name, help, "histogram", func(w *bufio.Writer, name string) {
		s := fn()
		for i, ub := range s.Uppers {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatLE(ub), s.Cum[i])
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
		w.WriteString(name + "_sum ")
		writeFloat(w, s.Sum)
		w.WriteByte('\n')
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	})
}

func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// atomicFloat is a float64 stored as bits in a uint64 with CAS addition.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }
