package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRequest(context.Background(), "x", false)
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("nil tracer polluted the context")
	}
	ctx2, child := StartSpan(ctx, "child")
	if child != nil || ctx2 != ctx {
		t.Fatal("StartSpan on untraced ctx must be a no-op")
	}
	// Every span method must be a no-op on nil.
	child.Set("k", 1)
	child.End()
	child.Graft(&SpanData{Name: "g"})
	child.ChildSpan("c", time.Now(), time.Millisecond)
	if child.Recording() || child.TraceID() != "" || child.Traceparent() != "" || child.Data() != nil {
		t.Fatal("nil span must report empty state")
	}
	var lg *Logger
	lg.Info(ctx, "dropped") // must not panic
	if tr.Traces(10) != nil || tr.Sampled() != 0 {
		t.Fatal("nil tracer must report empty state")
	}
}

func TestSpanTreeAndRing(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, RingSize: 4})
	ctx, root := tr.StartRequest(context.Background(), "count", false)
	if root == nil {
		t.Fatal("sample=1 must record")
	}
	root.Set("method", "lss")
	ctx2, child := StartSpan(ctx, "estimate")
	child.Set("evals", 42)
	if FromContext(ctx2) != child {
		t.Fatal("child must be carried by the derived ctx")
	}
	child.ChildSpan("learn", child.start, 5*time.Millisecond, "trees", 20)
	child.End()
	root.Graft(&SpanData{Name: "shard.label", TraceID: root.TraceID()})
	root.End()

	traces := tr.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("ring has %d traces, want 1", len(traces))
	}
	d := traces[0]
	if d.Name != "count" || d.Attrs["method"] != "lss" {
		t.Fatalf("bad root export: %+v", d)
	}
	if len(d.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (estimate + graft)", len(d.Children))
	}
	est := d.Children[0]
	if est.Name != "estimate" || est.ParentID != d.SpanID || est.TraceID != d.TraceID {
		t.Fatalf("bad child linkage: %+v", est)
	}
	if len(est.Children) != 1 || est.Children[0].Name != "learn" {
		t.Fatalf("synthesized child missing: %+v", est.Children)
	}
	if d.Children[1].Name != "shard.label" {
		t.Fatalf("graft missing: %+v", d.Children[1])
	}
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("span data must marshal: %v", err)
	}
}

func TestRingOverwriteNewestFirst(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, RingSize: 3})
	for i := 0; i < 5; i++ {
		_, sp := tr.StartRequest(context.Background(), "q"+string(rune('0'+i)), false)
		sp.End()
	}
	got := tr.Traces(0)
	if len(got) != 3 {
		t.Fatalf("ring size 3, got %d", len(got))
	}
	if got[0].Name != "q4" || got[1].Name != "q3" || got[2].Name != "q2" {
		t.Fatalf("wrong order: %s %s %s", got[0].Name, got[1].Name, got[2].Name)
	}
	if lim := tr.Traces(1); len(lim) != 1 || lim[0].Name != "q4" {
		t.Fatalf("limit=1 must return the newest, got %+v", lim)
	}
}

func TestSamplingZeroNeverRecords(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 0})
	for i := 0; i < 100; i++ {
		_, sp := tr.StartRequest(context.Background(), "q", false)
		if sp != nil {
			t.Fatal("sample=0 without force must not record")
		}
	}
	// force overrides the coin.
	_, sp := tr.StartRequest(context.Background(), "q", true)
	if sp == nil {
		t.Fatal("forced request must record")
	}
	sp.End()
	if tr.Sampled() != 1 || tr.Started() != 101 {
		t.Fatalf("counters: sampled=%d started=%d", tr.Sampled(), tr.Started())
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1})
	_, sp := tr.StartRequest(context.Background(), "client", false)
	hdr := sp.Traceparent()
	tp, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("own header must parse: %q", hdr)
	}
	if tp.TraceID != sp.TraceID() || tp.SpanID != sp.SpanID() || !tp.Sampled {
		t.Fatalf("round trip mismatch: %+v vs %s/%s", tp, sp.TraceID(), sp.SpanID())
	}

	// A remote server adopting the header joins the same trace even with
	// sampling off, because the inbound decision was "sampled".
	server := NewTracer(TracerConfig{Sample: 0})
	ctx := WithRemoteParent(context.Background(), tp)
	_, remote := server.StartRequest(ctx, "server", false)
	if remote == nil {
		t.Fatal("sampled traceparent must force recording")
	}
	if remote.TraceID() != sp.TraceID() {
		t.Fatalf("trace id not adopted: %s vs %s", remote.TraceID(), sp.TraceID())
	}
	if remote.Data().ParentID != sp.SpanID() {
		t.Fatalf("parent id not adopted: %s vs %s", remote.Data().ParentID, sp.SpanID())
	}

	for _, bad := range []string{
		"", "00", "zz-00000000000000000000000000000001-0000000000000001-01",
		"00-00000000000000000000000000000000-0000000000000001-01", // all-zero trace
		"00-00000000000000000000000000000001-0000000000000000-01", // all-zero span
		"00-0000000000000000000000000000000G-0000000000000001-01", // non-hex
		"00-00000000000000000000000000000001-0000000000000001-0",  // short flags
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("malformed header parsed: %q", bad)
		}
	}
	if tp, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00"); !ok || tp.Sampled {
		t.Fatalf("unsampled header: ok=%v tp=%+v", ok, tp)
	}
}

func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf)
	tr := NewTracer(TracerConfig{SlowQuery: time.Nanosecond, Logger: lg})
	_, sp := tr.StartRequest(context.Background(), "count", false)
	if sp == nil {
		t.Fatal("a slow-query threshold must force recording")
	}
	_, child := StartSpan(ContextWithSpan(context.Background(), sp), "estimate")
	child.End()
	time.Sleep(time.Millisecond)
	sp.End()

	line := buf.String()
	if line == "" {
		t.Fatal("no slow-query line emitted")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(line)), &rec); err != nil {
		t.Fatalf("slow-query line is not JSON: %v\n%s", err, line)
	}
	if rec["msg"] != "slow query" || rec["level"] != "warn" {
		t.Fatalf("bad record: %v", rec)
	}
	tree, ok := rec["trace"].(map[string]any)
	if !ok || tree["name"] != "count" {
		t.Fatalf("slow-query record must embed the span tree: %v", rec["trace"])
	}
	if kids, ok := tree["children"].([]any); !ok || len(kids) != 1 {
		t.Fatalf("span tree lost its children: %v", tree)
	}

	// Under the threshold: recorded (forced) but not logged.
	buf.Reset()
	tr2 := NewTracer(TracerConfig{SlowQuery: time.Hour, Logger: lg})
	_, fast := tr2.StartRequest(context.Background(), "count", false)
	fast.End()
	if buf.Len() != 0 {
		t.Fatalf("fast query logged as slow: %s", buf.String())
	}
}

func TestLoggerJSONShape(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf)
	tr := NewTracer(TracerConfig{Sample: 1})
	ctx, sp := tr.StartRequest(context.Background(), "q", false)
	lg.Info(ctx, "serving", "dataset", "orders", "rows", 128, "err", context.Canceled)
	lg.Error(context.Background(), "boom", "odd")
	sp.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if first["msg"] != "serving" || first["dataset"] != "orders" || first["rows"] != float64(128) {
		t.Fatalf("bad fields: %v", first)
	}
	if first["trace_id"] != sp.TraceID() || first["span_id"] != sp.SpanID() {
		t.Fatalf("trace ids missing: %v", first)
	}
	if first["err"] != context.Canceled.Error() {
		t.Fatalf("error value not rendered: %v", first["err"])
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 not JSON: %v", err)
	}
	if _, ok := second["!badkey"]; !ok {
		t.Fatalf("odd kv list must be flagged: %v", second)
	}
	// Leveling: debug is dropped by default, admitted after SetLevel.
	buf.Reset()
	lg.log(LevelDebug, nil, "hidden")
	if buf.Len() != 0 {
		t.Fatal("debug emitted at info level")
	}
	lg.SetLevel(LevelDebug)
	lg.log(LevelDebug, nil, "shown")
	if buf.Len() == 0 {
		t.Fatal("debug dropped after SetLevel(debug)")
	}
}

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("lsample_requests_total", "Total count requests.")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored
	g := reg.NewGauge("lsample_datasets", "Registered datasets.")
	g.Set(7)
	reg.GaugeFunc("lsample_uptime_seconds", "Process uptime.", func() float64 { return 1.5 })
	reg.CounterFunc("lsample_cache_hits_total", "Cache hits.", func() int64 { return 9 })
	h := reg.NewHistogram("lsample_batch_rows", "Rows per ingest batch.", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000)
	reg.HistogramFunc("lsample_request_duration_seconds", "Request latency.", func() HistSnapshot {
		return HistSnapshot{Uppers: []float64{0.001, 0.1}, Cum: []int64{2, 4}, Count: 5, Sum: 1.25}
	})

	var buf bytes.Buffer
	if err := reg.Expose(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP lsample_requests_total Total count requests.",
		"# TYPE lsample_requests_total counter",
		"lsample_requests_total 4",
		"lsample_datasets 7",
		"lsample_uptime_seconds 1.5",
		"lsample_cache_hits_total 9",
		"# TYPE lsample_batch_rows histogram",
		`lsample_batch_rows_bucket{le="1"} 1`,
		`lsample_batch_rows_bucket{le="10"} 2`,
		`lsample_batch_rows_bucket{le="100"} 2`,
		`lsample_batch_rows_bucket{le="+Inf"} 3`,
		"lsample_batch_rows_sum 5005.5",
		"lsample_batch_rows_count 3",
		`lsample_request_duration_seconds_bucket{le="0.001"} 2`,
		`lsample_request_duration_seconds_bucket{le="+Inf"} 5`,
		"lsample_request_duration_seconds_sum 1.25",
		"lsample_request_duration_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must come out sorted by name.
	if strings.Index(out, "lsample_batch_rows") > strings.Index(out, "lsample_requests_total") {
		t.Fatal("families not sorted")
	}
}

func TestRegistryGuards(t *testing.T) {
	reg := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s must panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty help", func() { reg.NewCounter("x_total", "") })
	mustPanic("bad name", func() { reg.NewCounter("9bad", "help") })
	reg.NewCounter("dup_total", "help")
	mustPanic("duplicate", func() { reg.NewCounter("dup_total", "help") })
}

func TestConcurrentTracerAndRegistry(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 1, RingSize: 8})
	reg := NewRegistry()
	c := reg.NewCounter("ops_total", "ops")
	h := reg.NewHistogram("lat", "lat", []float64{0.01, math.Inf(1)})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				ctx, sp := tr.StartRequest(context.Background(), "q", false)
				_, child := StartSpan(ctx, "phase")
				child.Set("j", j)
				child.End()
				sp.End()
				c.Inc()
				h.Observe(float64(j) / 1000)
				tr.Traces(4)
				var buf bytes.Buffer
				if err := reg.Expose(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 1600 {
		t.Fatalf("counter = %d, want 1600", c.Value())
	}
}
