// Package obs is the zero-dependency observability layer: a
// context-propagated span tracer with head-based sampling and a lock-free
// completed-trace ring, a Prometheus text-format metrics registry, and a
// structured JSON logger with a slow-query log.
//
// The tracer is built around a nil-is-disabled contract: every method on
// *Tracer, *Span, and *Logger is safe on a nil receiver and does nothing,
// and StartSpan returns the original context untouched when the parent is
// not recording. Code therefore instruments unconditionally — the cost of
// a disabled span is one nil check, no allocation — which is what keeps
// the labeling hot path at zero allocations when tracing is off or the
// request was not sampled. Spans wrap phases (a labeling pass, a learn
// step, an admission wait), never per-evaluation work.
package obs

import (
	"context"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// Sample is the head-based sampling probability in [0, 1]: each root
	// span flips a coin once and the whole tree inherits the decision.
	// 0 disables sampling (explicit forces and adopted remote decisions
	// still trace).
	Sample float64
	// RingSize is the completed-trace ring capacity (default 256).
	RingSize int
	// SlowQuery, when > 0, logs the full span tree of any root span whose
	// duration reaches the threshold. A slow-query threshold also forces
	// span recording so the offending tree exists to be logged.
	SlowQuery time.Duration
	// Logger receives slow-query records; nil disables the slow-query log
	// even when SlowQuery is set.
	Logger *Logger
}

// Tracer makes sampling decisions, owns the completed-trace ring, and
// emits the slow-query log. A nil *Tracer is valid and never records.
type Tracer struct {
	sample float64
	slow   time.Duration
	logger *Logger
	ring   *traceRing

	rng     atomic.Uint64
	sampled atomic.Int64 // root spans recorded (ring inserts + forced)
	started atomic.Int64 // root spans considered (sampled or not)
}

// NewTracer builds a Tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	size := cfg.RingSize
	if size <= 0 {
		size = 256
	}
	t := &Tracer{
		sample: cfg.Sample,
		slow:   cfg.SlowQuery,
		logger: cfg.Logger,
		ring:   newTraceRing(size),
	}
	t.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// Started returns the number of root spans considered by this tracer.
func (t *Tracer) Started() int64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// Sampled returns the number of root spans recorded by this tracer.
func (t *Tracer) Sampled() int64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// next is a splitmix64 step over the tracer's atomic state: cheap,
// lock-free, and unrelated to any deterministic estimation stream.
func (t *Tracer) next() uint64 {
	x := t.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// StartRequest opens a root span. The sampling decision is made here:
// forced requests (explain), adopted remote decisions (a sampled
// traceparent placed in ctx by WithRemoteParent), a configured slow-query
// threshold, and the head-sampling coin all turn recording on. When the
// decision is "not recording" the returned span is nil and ctx is
// returned untouched — the whole request then costs nothing.
func (t *Tracer) StartRequest(ctx context.Context, name string, force bool) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	t.started.Add(1)
	remote, hasRemote := remoteParent(ctx)
	record := force ||
		(hasRemote && remote.Sampled) ||
		(t.slow > 0 && t.logger != nil) ||
		(t.sample > 0 && float64(t.next()>>11)/(1<<53) < t.sample)
	if !record {
		return ctx, nil
	}
	t.sampled.Add(1)
	sp := &Span{tracer: t, name: name, start: time.Now()}
	sp.root = sp
	if hasRemote {
		copy(sp.traceID[:], remote.traceID())
		copy(sp.parent[:], remote.spanID())
	} else {
		id := t.next()
		id2 := t.next()
		putU64(sp.traceID[0:8], id)
		putU64(sp.traceID[8:16], id2)
	}
	putU64(sp.id[:], t.next())
	return ContextWithSpan(ctx, sp), sp
}

// EnsureSpan opens a child of the span already carried by ctx, or — when
// ctx is untraced — a new root from t (which may be nil). It is the entry
// point for layers that serve both instrumented callers (the service,
// which owns the request root) and direct SDK users (whose tracer makes
// its own sampling decision).
func EnsureSpan(ctx context.Context, t *Tracer, name string) (context.Context, *Span) {
	if sp := FromContext(ctx); sp != nil {
		c := sp.Child(name)
		return ContextWithSpan(ctx, c), c
	}
	return t.StartRequest(ctx, name, false)
}

// StartSpan opens a child of the span carried by ctx. When ctx carries no
// recording span the original ctx and a nil span are returned — the call
// allocates nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.Child(name)
	return ContextWithSpan(ctx, sp), sp
}

type spanKey struct{}
type remoteKey struct{}

// ContextWithSpan returns ctx carrying sp. A nil sp returns ctx as-is.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// WithRemoteParent returns ctx carrying an inbound traceparent for the
// next StartRequest to adopt: the root joins the remote trace instead of
// opening a new one, and a sampled remote decision forces recording.
func WithRemoteParent(ctx context.Context, tp Traceparent) context.Context {
	return context.WithValue(ctx, remoteKey{}, tp)
}

func remoteParent(ctx context.Context) (Traceparent, bool) {
	if ctx == nil {
		return Traceparent{}, false
	}
	tp, ok := ctx.Value(remoteKey{}).(Traceparent)
	return tp, ok
}

// attr is one typed span attribute; values are kept as-is and marshaled
// by the JSON encoder on export.
type attr struct {
	key string
	val any
}

// Span is one timed phase of a request. Spans are recording by
// construction — a phase that was not sampled is represented by a nil
// *Span, on which every method is a no-op. Attribute and child mutation
// is mutex-guarded: shard fan-out legitimately appends children from
// several goroutines.
type Span struct {
	tracer  *Tracer
	root    *Span
	traceID [16]byte
	id      [8]byte
	parent  [8]byte
	name    string
	start   time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []attr
	children []*Span
	grafts   []*SpanData
}

// Recording reports whether the span records (false for nil).
func (s *Span) Recording() bool { return s != nil }

// TraceID returns the 32-hex-digit trace id, or "" for a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return hex.EncodeToString(s.traceID[:])
}

// SpanID returns the 16-hex-digit span id, or "" for a nil span.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return hex.EncodeToString(s.id[:])
}

// Set records a key/value attribute on the span.
func (s *Span) Set(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key, val})
	s.mu.Unlock()
}

// Child opens a sub-span starting now. The child shares the trace id and
// the root's ring/slow-query plumbing.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, root: s.root, traceID: s.traceID, parent: s.id, name: name, start: time.Now()}
	putU64(c.id[:], s.tracer.next())
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildSpan records an already-completed child covering [start,
// start+dur) — used to synthesize phase spans from timings measured by
// code that is not tracer-aware (the core estimator's learn/design/
// sample breakdown).
func (s *Span) ChildSpan(name string, start time.Time, dur time.Duration, kv ...any) {
	if s == nil {
		return
	}
	c := s.Child(name)
	c.start = start
	for i := 0; i+1 < len(kv); i += 2 {
		if k, ok := kv[i].(string); ok {
			c.attrs = append(c.attrs, attr{k, kv[i+1]})
		}
	}
	c.end = start.Add(dur)
}

// Graft attaches a completed remote subtree (a worker's span tree carried
// back in a shard response) as a child of this span. The subtree keeps
// its own ids; stitching is by position in the tree.
func (s *Span) Graft(sub *SpanData) {
	if s == nil || sub == nil {
		return
	}
	s.mu.Lock()
	s.grafts = append(s.grafts, sub)
	s.mu.Unlock()
}

// End closes the span. Ending the root publishes the trace to the ring
// and, when it crossed the tracer's slow-query threshold, logs the full
// tree.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.mu.Unlock()
	if s != s.root {
		return
	}
	t := s.tracer
	data := s.Data()
	t.ring.put(data)
	if t.slow > 0 && t.logger != nil && now.Sub(s.start) >= t.slow {
		t.logger.log(LevelWarn, nil, "slow query",
			"trace_id", data.TraceID,
			"duration_ms", data.DurationMS,
			"threshold_ms", float64(t.slow)/float64(time.Millisecond),
			"trace", data)
	}
}

// Traceparent renders the span as a W3C traceparent header value for
// injection on outbound hops, or "" for a nil span.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return Traceparent{TraceID: s.TraceID(), SpanID: s.SpanID(), Sampled: true}.String()
}

// SpanData is the exported, JSON-ready form of a completed span tree.
type SpanData struct {
	TraceID    string         `json:"trace_id,omitempty"`
	SpanID     string         `json:"span_id,omitempty"`
	ParentID   string         `json:"parent_id,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanData    `json:"children,omitempty"`
}

// Data exports the span and its subtree. Unfinished descendants are
// exported as ending now.
func (s *Span) Data() *SpanData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = time.Now()
	}
	d := &SpanData{
		TraceID:    hex.EncodeToString(s.traceID[:]),
		SpanID:     hex.EncodeToString(s.id[:]),
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(end.Sub(s.start)) / float64(time.Millisecond),
	}
	if s.parent != ([8]byte{}) {
		d.ParentID = hex.EncodeToString(s.parent[:])
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.key] = a.val
		}
	}
	children := append([]*Span(nil), s.children...)
	grafts := append([]*SpanData(nil), s.grafts...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.Data())
	}
	d.Children = append(d.Children, grafts...)
	return d
}

// Traces returns up to limit completed traces, newest first. limit <= 0
// returns everything in the ring.
func (t *Tracer) Traces(limit int) []*SpanData {
	if t == nil {
		return nil
	}
	return t.ring.snapshot(limit)
}

// traceRing is a lock-free fixed-size ring of completed traces: writers
// claim a slot with one atomic add and publish with one atomic pointer
// store; readers snapshot without blocking writers.
type traceRing struct {
	slots []atomic.Pointer[SpanData]
	pos   atomic.Uint64
}

func newTraceRing(size int) *traceRing {
	return &traceRing{slots: make([]atomic.Pointer[SpanData], size)}
}

func (r *traceRing) put(d *SpanData) {
	if d == nil {
		return
	}
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(d)
}

func (r *traceRing) snapshot(limit int) []*SpanData {
	n := len(r.slots)
	if limit <= 0 || limit > n {
		limit = n
	}
	pos := r.pos.Load()
	out := make([]*SpanData, 0, limit)
	for k := uint64(1); k <= uint64(n) && len(out) < limit; k++ {
		if pos < k {
			break
		}
		d := r.slots[(pos-k)%uint64(n)].Load()
		if d != nil {
			out = append(out, d)
		}
	}
	return out
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}
