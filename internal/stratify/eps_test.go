package stratify

import (
	"testing"

	"repro/internal/xrand"
)

func TestCandidateBoundariesEpsDensity(t *testing.T) {
	p, err := NewPilot(10000, []int{999, 4999, 8999}, []bool{false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	b1 := candidateBoundariesEps(p, 1)
	b05 := candidateBoundariesEps(p, 0.5)
	if len(b05) <= len(b1) {
		t.Fatalf("ε=0.5 should produce more candidates: %d vs %d", len(b05), len(b1))
	}
	// Every power-of-two candidate survives in the denser set's span.
	has := make(map[int]bool, len(b05))
	for _, v := range b05 {
		has[v] = true
	}
	// Rank positions always present in both.
	for _, v := range []int{1000, 5000, 9000, 10000} {
		if !has[v] {
			t.Fatalf("ε=0.5 set missing anchor %d", v)
		}
	}
	// Invalid ε falls back to powers of two.
	bBad := candidateBoundariesEps(p, -3)
	if len(bBad) != len(b1) {
		t.Fatalf("invalid ε should behave like ε=1: %d vs %d", len(bBad), len(b1))
	}
}

func TestDynPgmEpsAtLeastAsGood(t *testing.T) {
	r := xrand.New(1)
	N := 400
	labels := boundaryLabels(N, 0.45, 0.15, r)
	p := makePilot(t, labels, 60, 2)
	c := Constraints{MinStratumSize: 40, MinPilotPerStratum: 4}
	base, err := DynPgm(p, 4, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := DynPgmEps(p, 4, 10, c, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// The ε-refined candidate set is a superset, so the optimum over it can
	// only improve (tiny slack for thinning).
	if refined.V > base.V*1.0001+1e-9 {
		t.Fatalf("refined V=%v worse than base V=%v", refined.V, base.V)
	}
}

func TestDynPgmPEpsWithinFactor(t *testing.T) {
	r := xrand.New(3)
	N := 120
	labels := boundaryLabels(N, 0.5, 0.15, r)
	p := makePilot(t, labels, 30, 4)
	c := Constraints{MinStratumSize: 15, MinPilotPerStratum: 3}
	refined, err := DynPgmPEps(p, 3, 10, c, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := BruteForce(p, 3, 10, c, false)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 4 refined ratio: (1+ε).
	if refined.V > 1.25*bf.V+1e-9 {
		t.Fatalf("refined DynPgmP V=%v exceeds (1+ε)×optimal %v", refined.V, bf.V)
	}
}

func TestSmoothedStdDev(t *testing.T) {
	// Pure pilot samples still yield nonzero deviation.
	if s := SmoothedStdDev(10, 10); s <= 0 {
		t.Fatalf("pure-positive smoothed s = %v", s)
	}
	if s := SmoothedStdDev(10, 0); s <= 0 {
		t.Fatalf("pure-negative smoothed s = %v", s)
	}
	// Balanced samples are near the binomial maximum 0.5.
	if s := SmoothedStdDev(100, 50); s < 0.45 || s > 0.55 {
		t.Fatalf("balanced smoothed s = %v", s)
	}
	// More pilot evidence shrinks the smoothing effect.
	if SmoothedStdDev(1000, 1000) >= SmoothedStdDev(5, 5) {
		t.Fatal("more evidence should shrink the pure-sample deviation")
	}
	// Empty stratum: maximal uncertainty (p̃ = 0.5).
	if s := SmoothedStdDev(0, 0); s != 0.5 {
		t.Fatalf("empty-stratum smoothed s = %v, want 0.5", s)
	}
}
