package stratify

import (
	"math"
	"sort"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// makePilot draws a deterministic pilot of size m from a label vector over
// n ordered objects.
func makePilot(t *testing.T, labels []bool, m int, seed uint64) *Pilot {
	t.Helper()
	r := xrand.New(seed)
	n := len(labels)
	perm := r.Perm(n)[:m]
	sort.Ints(perm)
	q := make([]bool, m)
	for i, p := range perm {
		q[i] = labels[p]
	}
	pilot, err := NewPilot(n, perm, q)
	if err != nil {
		t.Fatal(err)
	}
	return pilot
}

// boundaryLabels has a clean negative→positive transition at frac.
func boundaryLabels(n int, frac float64, noise float64, r *xrand.Rand) []bool {
	labels := make([]bool, n)
	cut := int(frac * float64(n))
	for i := range labels {
		labels[i] = i >= cut
		if noise > 0 && r.Bool(noise) {
			labels[i] = !labels[i]
		}
	}
	return labels
}

func TestNewPilotValidation(t *testing.T) {
	if _, err := NewPilot(10, []int{1, 2}, []bool{true}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := NewPilot(10, []int{1, 11}, []bool{true, false}); err == nil {
		t.Fatal("out-of-range position should error")
	}
	if _, err := NewPilot(10, []int{5, 5}, []bool{true, false}); err == nil {
		t.Fatal("non-increasing positions should error")
	}
	if _, err := NewPilot(10, []int{3, 5}, []bool{true, false}); err != nil {
		t.Fatal(err)
	}
}

func TestPilotGammaAndStats(t *testing.T) {
	p, err := NewPilot(100, []int{5, 20, 40, 60, 80}, []bool{true, false, true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if p.M() != 5 {
		t.Fatalf("M = %d", p.M())
	}
	if got := p.CountUpTo(21); got != 2 {
		t.Fatalf("CountUpTo(21) = %d", got)
	}
	if got := p.CountUpTo(0); got != 0 {
		t.Fatalf("CountUpTo(0) = %d", got)
	}
	// Samples 1..3 (positions 5,20,40): 2 positives of 3.
	m, s2 := p.SampleStats(0, 3)
	if m != 3 {
		t.Fatalf("m = %d", m)
	}
	if want := stats.BinaryVariance(2, 3); math.Abs(s2-want) > 1e-12 {
		t.Fatalf("s2 = %v, want %v", s2, want)
	}
	// Stratum [0, 50) holds samples at 5, 20, 40.
	m, s2 = p.StratumStats(0, 50)
	if m != 3 || math.Abs(s2-stats.BinaryVariance(2, 3)) > 1e-12 {
		t.Fatalf("StratumStats = %d, %v", m, s2)
	}
	// Degenerate single-sample stratum → zero variance.
	if m, s2 = p.StratumStats(0, 6); m != 1 || s2 != 0 {
		t.Fatalf("single sample stats = %d, %v", m, s2)
	}
}

func TestDesignHelpers(t *testing.T) {
	d := &Design{Cuts: []int{0, 30, 70, 100}}
	if d.H() != 3 {
		t.Fatalf("H = %d", d.H())
	}
	sizes := d.Sizes()
	if sizes[0] != 30 || sizes[1] != 40 || sizes[2] != 30 {
		t.Fatalf("Sizes = %v", sizes)
	}
}

func TestEqualCount(t *testing.T) {
	cuts := EqualCount(100, 4)
	want := []int{0, 25, 50, 75, 100}
	if len(cuts) != len(want) {
		t.Fatalf("cuts = %v", cuts)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
	// More strata than objects degrades gracefully.
	cuts = EqualCount(3, 10)
	if cuts[0] != 0 || cuts[len(cuts)-1] != 3 {
		t.Fatalf("degenerate cuts = %v", cuts)
	}
}

func TestFixedWidth(t *testing.T) {
	scores := []float64{0, 0.1, 0.2, 0.6, 0.7, 0.8, 0.9, 1.0}
	cuts := FixedWidth(scores, 4)
	// Thresholds 0.25, 0.5, 0.75: cuts where scores cross.
	if cuts[0] != 0 || cuts[len(cuts)-1] != len(scores) {
		t.Fatalf("cuts = %v", cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not increasing: %v", cuts)
		}
	}
	// Constant scores collapse to a single stratum.
	cuts = FixedWidth([]float64{0.5, 0.5, 0.5}, 4)
	if len(cuts) != 2 {
		t.Fatalf("constant-score cuts = %v", cuts)
	}
	if got := FixedWidth(nil, 3); got[len(got)-1] != 0 {
		t.Fatalf("empty cuts = %v", got)
	}
}

func TestGridCutsAssign(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	bounds := GridCuts(vals, 4)
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	cells := make(map[int]int)
	for _, v := range vals {
		cells[GridAssign(v, bounds)]++
	}
	if len(cells) != 4 {
		t.Fatalf("expected 4 cells, got %v", cells)
	}
}

func TestObjectivesHomogeneous(t *testing.T) {
	// Perfectly separable pilot: strata aligned with the boundary have zero
	// within-stratum variance, hence zero objective.
	r := xrand.New(1)
	labels := boundaryLabels(1000, 0.5, 0, r)
	p := makePilot(t, labels, 100, 2)
	cuts := []int{0, 500, 1000}
	vN := NeymanObjective(p, cuts, 50)
	vP := PropObjective(p, cuts, 50)
	if vN > 1e-9 || vP > 1e-9 {
		t.Fatalf("separable design should have ~0 variance: neyman=%v prop=%v", vN, vP)
	}
	// A deliberately bad single straddling boundary must be worse.
	bad := NeymanObjective(p, []int{0, 250, 1000}, 50)
	if bad <= vN {
		t.Fatalf("bad design %v should exceed good %v", bad, vN)
	}
}

func TestDirSolMatchesBruteForce(t *testing.T) {
	r := xrand.New(3)
	for trial := 0; trial < 5; trial++ {
		N := 120
		labels := boundaryLabels(N, 0.3+0.4*r.Float64(), 0.1, r)
		p := makePilot(t, labels, 30, uint64(trial+10))
		c := Constraints{MinStratumSize: 20, MinPilotPerStratum: 3}
		n := 10 // Theorem 1 needs N_⊔ > n
		ds, err := DirSol(p, n, c)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForce(p, 3, n, c, true)
		if err != nil {
			t.Fatal(err)
		}
		Nq := float64(c.MinStratumSize)
		nf := float64(n)
		ratio := 1 + 2/Nq + 2/(Nq-nf) + 4/(Nq*(Nq-nf))
		if ds.V > ratio*bf.V+1e-9 {
			t.Fatalf("trial %d: DirSol V=%v exceeds %v × brute V=%v (cuts %v vs %v)",
				trial, ds.V, ratio, bf.V, ds.Cuts, bf.Cuts)
		}
	}
}

func TestDirSolFindsSeparatingDesign(t *testing.T) {
	// With a sharp boundary and plenty of pilot samples, DirSol should place
	// the middle stratum around the transition and achieve variance far
	// below fixed-width.
	r := xrand.New(4)
	N := 2000
	labels := boundaryLabels(N, 0.6, 0.02, r)
	p := makePilot(t, labels, 200, 5)
	c := Constraints{MinStratumSize: 50, MinPilotPerStratum: 5}
	ds, err := DirSol(p, 40, c)
	if err != nil {
		t.Fatal(err)
	}
	fixed := NeymanObjective(p, []int{0, N / 3, 2 * N / 3, N}, 40)
	if ds.V > fixed/2 {
		t.Fatalf("DirSol V=%v not clearly better than fixed-width V=%v (cuts %v)", ds.V, fixed, ds.Cuts)
	}
	// The transition at 1200 should fall inside the middle stratum.
	if !(ds.Cuts[1] <= 1260 && ds.Cuts[2] >= 1140) {
		t.Fatalf("middle stratum %v does not cover the boundary 1200", ds.Cuts)
	}
}

func TestDirSolValidation(t *testing.T) {
	p := makePilot(t, boundaryLabels(100, 0.5, 0, xrand.New(6)), 20, 7)
	if _, err := DirSol(p, 0, Constraints{}); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := DirSol(p, 5, Constraints{MinStratumSize: 50}); err == nil {
		t.Fatal("infeasible stratum size should error")
	}
	if _, err := DirSol(p, 5, Constraints{MinPilotPerStratum: 10}); err == nil {
		t.Fatal("infeasible pilot minimum should error")
	}
}

func TestLogBdrWithinTheorem2Ratio(t *testing.T) {
	r := xrand.New(8)
	for trial := 0; trial < 4; trial++ {
		N := 100
		labels := boundaryLabels(N, 0.5, 0.15, r)
		p := makePilot(t, labels, 24, uint64(trial+20))
		c := Constraints{MinStratumSize: 15, MinPilotPerStratum: 3}
		n := 7
		lb, err := LogBdr(p, 3, n, c)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForce(p, 3, n, c, true)
		if err != nil {
			t.Fatal(err)
		}
		// Theorem 2 ratio with N*_h ≥ N_⊔: max{4, 2 + 2·N_⊔/(N_⊔−n)}.
		Nq, nf := float64(c.MinStratumSize), float64(n)
		ratio := math.Max(4, 2+2*Nq/(Nq-nf))
		if lb.V > ratio*bf.V+1e-9 {
			t.Fatalf("trial %d: LogBdr V=%v exceeds %v × optimal %v", trial, lb.V, ratio, bf.V)
		}
	}
}

func TestLogBdrFourStrata(t *testing.T) {
	r := xrand.New(9)
	N := 200
	labels := boundaryLabels(N, 0.5, 0.1, r)
	p := makePilot(t, labels, 24, 10)
	c := Constraints{MinStratumSize: 10, MinPilotPerStratum: 3}
	d, err := LogBdr(p, 4, 8, c)
	if err != nil {
		t.Fatal(err)
	}
	if d.H() != 4 {
		t.Fatalf("H = %d", d.H())
	}
	if !c.feasible(p, d.Cuts) {
		t.Fatalf("infeasible design %v", d.Cuts)
	}
}

func TestDynPgmWithinRatio(t *testing.T) {
	r := xrand.New(11)
	for trial := 0; trial < 4; trial++ {
		N := 120
		labels := boundaryLabels(N, 0.4, 0.15, r)
		p := makePilot(t, labels, 30, uint64(trial+30))
		c := Constraints{MinStratumSize: 16, MinPilotPerStratum: 3}
		n := 4 // Theorem 3 wants N_⊔ ≥ 4n
		dp, err := DynPgm(p, 3, n, c)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForce(p, 3, n, c, true)
		if err != nil {
			t.Fatal(err)
		}
		ratio := 14.0 / 3.0 * (10*3 - 9)
		if dp.V > ratio*bf.V+1e-9 {
			t.Fatalf("trial %d: DynPgm V=%v exceeds %v × optimal %v", trial, dp.V, ratio, bf.V)
		}
		if !c.feasible(p, dp.Cuts) {
			t.Fatalf("infeasible design %v", dp.Cuts)
		}
	}
}

func TestDynPgmManyStrata(t *testing.T) {
	r := xrand.New(12)
	N := 3000
	labels := boundaryLabels(N, 0.5, 0.05, r)
	p := makePilot(t, labels, 150, 13)
	c := Constraints{MinStratumSize: 100, MinPilotPerStratum: 4}
	d, err := DynPgm(p, 6, 50, c)
	if err != nil {
		t.Fatal(err)
	}
	if d.H() != 6 || !c.feasible(p, d.Cuts) {
		t.Fatalf("bad design %v", d.Cuts)
	}
}

func TestDynPgmPWithinFactor2(t *testing.T) {
	r := xrand.New(14)
	for trial := 0; trial < 4; trial++ {
		N := 120
		labels := boundaryLabels(N, 0.55, 0.15, r)
		p := makePilot(t, labels, 30, uint64(trial+40))
		c := Constraints{MinStratumSize: 15, MinPilotPerStratum: 3}
		n := 10
		dp, err := DynPgmP(p, 3, n, c)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForce(p, 3, n, c, false)
		if err != nil {
			t.Fatal(err)
		}
		if dp.V > 2*bf.V+1e-9 {
			t.Fatalf("trial %d: DynPgmP V=%v exceeds 2 × optimal %v", trial, dp.V, bf.V)
		}
	}
}

func TestDesignersProduceValidCuts(t *testing.T) {
	r := xrand.New(15)
	N := 400
	labels := boundaryLabels(N, 0.5, 0.2, r)
	p := makePilot(t, labels, 60, 16)
	c := Constraints{MinStratumSize: 40, MinPilotPerStratum: 4}
	check := func(name string, d *Design, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Cuts[0] != 0 || d.Cuts[len(d.Cuts)-1] != N {
			t.Fatalf("%s: cuts %v do not span [0,%d]", name, d.Cuts, N)
		}
		for i := 1; i < len(d.Cuts); i++ {
			if d.Cuts[i] <= d.Cuts[i-1] {
				t.Fatalf("%s: cuts not increasing %v", name, d.Cuts)
			}
		}
		if math.IsNaN(d.V) || math.IsInf(d.V, 0) {
			t.Fatalf("%s: V = %v", name, d.V)
		}
	}
	d, err := DirSol(p, 20, c)
	check("DirSol", d, err)
	d, err = LogBdr(p, 3, 20, c)
	check("LogBdr", d, err)
	d, err = DynPgm(p, 4, 20, c)
	check("DynPgm", d, err)
	d, err = DynPgmP(p, 4, 20, c)
	check("DynPgmP", d, err)
}

func TestAllNegativePilot(t *testing.T) {
	// Zero-variance population: every design is optimal, nothing crashes.
	labels := make([]bool, 200)
	p := makePilot(t, labels, 40, 17)
	c := Constraints{MinStratumSize: 20, MinPilotPerStratum: 4}
	d, err := DirSol(p, 10, c)
	if err != nil {
		t.Fatal(err)
	}
	if d.V > 1e-12 {
		t.Fatalf("uniform population should give V=0, got %v", d.V)
	}
}

func TestCandidateBoundaries(t *testing.T) {
	p, err := NewPilot(1000, []int{99, 499, 899}, []bool{false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	B := candidateBoundaries(p)
	if B[len(B)-1] != 1000 {
		t.Fatalf("B must end at N: %v", B[len(B)-1])
	}
	has := func(v int) bool {
		for _, b := range B {
			if b == v {
				return true
			}
		}
		return false
	}
	// Rank positions themselves (1-based).
	for _, v := range []int{100, 500, 900} {
		if !has(v) {
			t.Fatalf("B missing rank %d: %v", v, B)
		}
	}
	// Power-of-two offsets from rank 100: 101, 102, 104, ...
	for _, v := range []int{101, 102, 104, 108} {
		if !has(v) {
			t.Fatalf("B missing forward offset %d", v)
		}
	}
	// Backward offsets from 500: 499, 498, 496, ...
	for _, v := range []int{499, 498, 496} {
		if !has(v) {
			t.Fatalf("B missing backward offset %d", v)
		}
	}
	for i := 1; i < len(B); i++ {
		if B[i] <= B[i-1] {
			t.Fatalf("B not strictly increasing: %v", B)
		}
	}
}

func TestBruteForceInfeasible(t *testing.T) {
	p := makePilot(t, boundaryLabels(50, 0.5, 0, xrand.New(18)), 10, 19)
	if _, err := BruteForce(p, 3, 5, Constraints{MinStratumSize: 30, MinPilotPerStratum: 2}, true); err == nil {
		t.Fatal("infeasible brute force should error")
	}
}

func TestDefaultConstraints(t *testing.T) {
	c := DefaultConstraints(100000)
	if c.MinStratumSize != 20 || c.MinPilotPerStratum != 5 {
		t.Fatalf("large-N defaults = %+v", c)
	}
	c = DefaultConstraints(100)
	if c.MinStratumSize > 5 {
		t.Fatalf("small-N defaults should loosen: %+v", c)
	}
}

func BenchmarkDirSol(b *testing.B) {
	r := xrand.New(20)
	N := 50000
	labels := boundaryLabels(N, 0.5, 0.05, r)
	perm := r.Perm(N)[:300]
	sort.Ints(perm)
	q := make([]bool, len(perm))
	for i, p := range perm {
		q[i] = labels[p]
	}
	pilot, err := NewPilot(N, perm, q)
	if err != nil {
		b.Fatal(err)
	}
	c := Constraints{MinStratumSize: 2500, MinPilotPerStratum: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DirSol(pilot, 1000, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynPgm(b *testing.B) {
	r := xrand.New(21)
	N := 50000
	labels := boundaryLabels(N, 0.5, 0.05, r)
	perm := r.Perm(N)[:200]
	sort.Ints(perm)
	q := make([]bool, len(perm))
	for i, p := range perm {
		q[i] = labels[p]
	}
	pilot, err := NewPilot(N, perm, q)
	if err != nil {
		b.Fatal(err)
	}
	c := Constraints{MinStratumSize: 2500, MinPilotPerStratum: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DynPgm(pilot, 4, 500, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynPgmP(b *testing.B) {
	r := xrand.New(22)
	N := 50000
	labels := boundaryLabels(N, 0.5, 0.05, r)
	perm := r.Perm(N)[:200]
	sort.Ints(perm)
	q := make([]bool, len(perm))
	for i, p := range perm {
		q[i] = labels[p]
	}
	pilot, err := NewPilot(N, perm, q)
	if err != nil {
		b.Fatal(err)
	}
	c := Constraints{MinStratumSize: 500, MinPilotPerStratum: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DynPgmP(pilot, 9, 500, c); err != nil {
			b.Fatal(err)
		}
	}
}
