package stratify

import (
	"fmt"
	"math"
)

// BruteForce exhaustively enumerates every feasible stratification (all cut
// combinations) and returns the one minimizing the chosen objective. It is
// the reference optimum used by tests to validate the approximation ratios
// of Theorems 1–4; its cost is O(N^(H−1)), so it is only usable on tiny
// inputs.
func BruteForce(p *Pilot, H, n int, c Constraints, neyman bool) (*Design, error) {
	c = c.normalized()
	if err := validateDesignInput(p, H, n, c); err != nil {
		return nil, err
	}
	best := &Design{V: math.Inf(1)}
	cuts := make([]int, H+1)
	cuts[0], cuts[H] = 0, p.N

	var rec func(h int)
	rec = func(h int) {
		if h == H {
			if !c.feasible(p, cuts) {
				return
			}
			var v float64
			if neyman {
				v = NeymanObjective(p, cuts, n)
			} else {
				v = PropObjective(p, cuts, n)
			}
			if v < best.V {
				best.V = v
				best.Cuts = append([]int(nil), cuts...)
			}
			return
		}
		// Cut h must leave room for the remaining strata.
		for b := cuts[h-1] + c.MinStratumSize; b <= p.N-(H-h)*c.MinStratumSize; b++ {
			cuts[h] = b
			rec(h + 1)
		}
	}
	rec(1)

	if best.Cuts == nil {
		return nil, fmt.Errorf("stratify: no feasible %d-stratification exists", H)
	}
	return best, nil
}
