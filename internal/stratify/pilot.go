// Package stratify implements the sampling-design half of Learned
// Stratified Sampling (§4.2): given N objects ordered by classifier score
// and a labeled pilot sample, find the stratification (and, implicitly, the
// allocation) minimizing the estimated variance of the stratified count
// estimator.
//
// It provides the paper's four design algorithms —
//
//   - DirSol (§4.2.1): (almost) exact closed-form optimization for H = 3,
//   - LogBdr (§4.2.1): candidate boundaries at power-of-two offsets, any H,
//   - DynPgm (§4.2.1): auxiliary-sum-bounded dynamic program, any H,
//   - DynPgmP (§4.2.2): separable dynamic program for proportional
//     allocation (ratio 2),
//
// plus the fixed-width and equal-count layout baselines of §5.4.1 and a
// brute-force reference optimizer used by tests to validate the
// approximation guarantees of Theorems 1–4.
package stratify

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Pilot is the first-stage sample SI over an ordered object set: the sorted
// positions (0-based ranks in score order) of the m labeled objects and
// their labels. Γ — the prefix-positive index of §4.2.1 — is precomputed so
// every stratum variance is O(1).
type Pilot struct {
	N     int    // number of objects in the ordered set O
	Pos   []int  // strictly increasing 0-based positions of pilot samples
	Q     []bool // labels, aligned with Pos
	gamma []int  // gamma[k] = positives among the first k pilot samples
}

// NewPilot validates and indexes a pilot sample.
func NewPilot(n int, pos []int, q []bool) (*Pilot, error) {
	if len(pos) != len(q) {
		return nil, fmt.Errorf("stratify: %d positions but %d labels", len(pos), len(q))
	}
	for i, p := range pos {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("stratify: position %d out of [0,%d)", p, n)
		}
		if i > 0 && pos[i-1] >= p {
			return nil, fmt.Errorf("stratify: positions not strictly increasing at %d", i)
		}
	}
	gamma := make([]int, len(pos)+1)
	for i, b := range q {
		gamma[i+1] = gamma[i]
		if b {
			gamma[i+1]++
		}
	}
	return &Pilot{N: n, Pos: pos, Q: q, gamma: gamma}, nil
}

// M returns the pilot sample size m.
func (p *Pilot) M() int { return len(p.Pos) }

// CountUpTo returns ℓ(b): the number of pilot samples at positions < b.
func (p *Pilot) CountUpTo(b int) int {
	return sort.SearchInts(p.Pos, b)
}

// SampleStats returns the count and binary sample variance of pilot samples
// with (1-based) sample indices in (lo, hi]; that is, samples lo+1..hi.
func (p *Pilot) SampleStats(lo, hi int) (m int, s2 float64) {
	m = hi - lo
	if m < 2 {
		return m, 0
	}
	pos := p.gamma[hi] - p.gamma[lo]
	return m, stats.BinaryVariance(pos, m)
}

// StratumStats returns the pilot count and binary sample variance for the
// stratum of objects with positions in [lo, hi).
func (p *Pilot) StratumStats(lo, hi int) (m int, s2 float64) {
	return p.SampleStats(p.CountUpTo(lo), p.CountUpTo(hi))
}

// StratumCounts returns the pilot sample count and positive count for the
// stratum of objects with positions in [lo, hi).
func (p *Pilot) StratumCounts(lo, hi int) (m, pos int) {
	l, h := p.CountUpTo(lo), p.CountUpTo(hi)
	return h - l, p.gamma[h] - p.gamma[l]
}

// SmoothedStdDev returns a Laplace-smoothed standard-deviation estimate for
// allocation purposes: p̃ = (pos+1)/(m+2), s̃ = √(p̃(1−p̃)). Unlike the raw
// sample deviation, it never reports zero for a stratum whose pilot sample
// merely happened to be pure — the paper's footnote 1 caveat that no
// stratum should be starved "even if its estimated standard deviation is
// close to 0".
func SmoothedStdDev(m, pos int) float64 {
	pt := (float64(pos) + 1) / (float64(m) + 2)
	return math.Sqrt(pt * (1 - pt))
}

// Design is a stratification: H+1 cut positions 0 = Cuts[0] < Cuts[1] < …
// < Cuts[H] = N, where stratum h covers object positions
// [Cuts[h-1], Cuts[h]). V is the design objective achieved (eq. 5 for
// Neyman-allocation designers, eq. 6 for proportional).
type Design struct {
	Cuts []int
	V    float64
}

// H returns the number of strata.
func (d *Design) H() int { return len(d.Cuts) - 1 }

// Sizes returns the stratum sizes N_h.
func (d *Design) Sizes() []int {
	out := make([]int, d.H())
	for h := 1; h < len(d.Cuts); h++ {
		out[h-1] = d.Cuts[h] - d.Cuts[h-1]
	}
	return out
}

// Constraints are the feasibility requirements of §4.2: every stratum must
// hold at least MinStratumSize objects (N_⊔) and contain at least
// MinPilotPerStratum pilot samples (m_⊔, so s_h is a meaningful estimate).
type Constraints struct {
	MinStratumSize     int
	MinPilotPerStratum int
}

// DefaultConstraints mirrors the paper's practice: m_⊔ ≈ 5 and N_⊔ larger.
func DefaultConstraints(n int) Constraints {
	c := Constraints{MinStratumSize: 20, MinPilotPerStratum: 5}
	if n < 20*c.MinStratumSize { // small populations: loosen
		c.MinStratumSize = n / 20
		if c.MinStratumSize < 2 {
			c.MinStratumSize = 2
		}
	}
	return c
}

func (c Constraints) normalized() Constraints {
	if c.MinPilotPerStratum < 2 {
		c.MinPilotPerStratum = 2
	}
	if c.MinStratumSize < 1 {
		c.MinStratumSize = 1
	}
	return c
}

// feasible reports whether the cuts satisfy the constraints.
func (c Constraints) feasible(p *Pilot, cuts []int) bool {
	for h := 1; h < len(cuts); h++ {
		if cuts[h]-cuts[h-1] < c.MinStratumSize {
			return false
		}
		if m, _ := p.StratumStats(cuts[h-1], cuts[h]); m < c.MinPilotPerStratum {
			return false
		}
	}
	return true
}

// NeymanObjective evaluates eq. (5): V = (1/n)(Σ N_h s_h)² − Σ N_h s_h²,
// the estimated variance (scaled by N²) achieved by a Neyman allocation of
// n second-stage samples on the given stratification.
func NeymanObjective(p *Pilot, cuts []int, n int) float64 {
	sum := 0.0
	sub := 0.0
	for h := 1; h < len(cuts); h++ {
		nh := float64(cuts[h] - cuts[h-1])
		_, s2 := p.StratumStats(cuts[h-1], cuts[h])
		sum += nh * math.Sqrt(s2)
		sub += nh * s2
	}
	return sum*sum/float64(n) - sub
}

// PropObjective evaluates eq. (6): V = (N−n)/n · Σ N_h s_h², the estimated
// variance under proportional allocation.
func PropObjective(p *Pilot, cuts []int, n int) float64 {
	sub := 0.0
	for h := 1; h < len(cuts); h++ {
		nh := float64(cuts[h] - cuts[h-1])
		_, s2 := p.StratumStats(cuts[h-1], cuts[h])
		sub += nh * s2
	}
	return float64(p.N-n) / float64(n) * sub
}

// validateDesignInput checks shared preconditions of the designers.
func validateDesignInput(p *Pilot, H, n int, c Constraints) error {
	if H < 2 {
		return fmt.Errorf("stratify: need H ≥ 2 strata, got %d", H)
	}
	if n < 1 {
		return fmt.Errorf("stratify: need n ≥ 1 second-stage samples")
	}
	if H*c.MinStratumSize > p.N {
		return fmt.Errorf("stratify: %d strata of ≥%d objects exceed N=%d", H, c.MinStratumSize, p.N)
	}
	if H*c.MinPilotPerStratum > p.M() {
		return fmt.Errorf("stratify: %d strata of ≥%d pilot samples exceed m=%d", H, c.MinPilotPerStratum, p.M())
	}
	return nil
}
