package stratify

import "sort"

// EqualCount returns the "fixed height" layout of §5.4.1: H strata with
// (nearly) identical object counts. Cut positions are in rank space.
func EqualCount(n, h int) []int {
	if h < 1 {
		h = 1
	}
	if h > n {
		h = n
	}
	cuts := make([]int, h+1)
	for i := 0; i <= h; i++ {
		cuts[i] = i * n / h
	}
	return dedupCuts(cuts, n)
}

// FixedWidth returns the "fixed width" layout of §5.4.1: the score axis is
// divided into H even increments, and each stratum holds the objects whose
// scores fall into one increment. scoresSorted must be ascending. Empty
// strata are merged away, so the result may have fewer than H strata.
func FixedWidth(scoresSorted []float64, h int) []int {
	n := len(scoresSorted)
	if n == 0 {
		return []int{0, 0}
	}
	if h < 1 {
		h = 1
	}
	lo, hi := scoresSorted[0], scoresSorted[n-1]
	if hi == lo {
		return []int{0, n}
	}
	cuts := make([]int, 0, h+1)
	cuts = append(cuts, 0)
	for i := 1; i < h; i++ {
		threshold := lo + (hi-lo)*float64(i)/float64(h)
		// First index with score > threshold.
		cut := sort.Search(n, func(j int) bool { return scoresSorted[j] > threshold })
		cuts = append(cuts, cut)
	}
	cuts = append(cuts, n)
	return dedupCuts(cuts, n)
}

// dedupCuts sorts, clamps, and removes zero-width strata.
func dedupCuts(cuts []int, n int) []int {
	sort.Ints(cuts)
	out := cuts[:0]
	for i, c := range cuts {
		if c < 0 {
			c = 0
		}
		if c > n {
			c = n
		}
		if i == 0 || c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	if len(out) == 1 {
		out = append(out, n)
	}
	// Ensure the frame covers [0, n].
	if out[0] != 0 {
		out = append([]int{0}, out...)
	}
	if out[len(out)-1] != n {
		out = append(out, n)
	}
	return out
}

// GridCuts stratifies by attribute values for the SSP baseline (§3.1): it
// produces per-dimension quantile boundaries splitting a surrogate
// attribute into k parts. Combined across two attributes this yields the
// paper's "2-dimensional strata".
func GridCuts(values []float64, k int) []float64 {
	if k < 1 {
		k = 1
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	bounds := make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		idx := i * len(s) / k
		if idx >= len(s) {
			idx = len(s) - 1
		}
		bounds = append(bounds, s[idx])
	}
	return bounds
}

// GridAssign maps a value to its grid cell given ascending bounds.
func GridAssign(v float64, bounds []float64) int {
	return sort.SearchFloat64s(bounds, v)
}
