package stratify

import (
	"fmt"
	"math"
)

// LogBdr is the any-H designer of §4.2.1 and Appendix B: it enumerates all
// contiguous partitions of the pilot samples into H groups, and for each of
// the H−1 inter-group gaps considers candidate boundary positions at
// power-of-two offsets from the left sample's rank (plus the rightmost
// position), evaluating eq. (5) for every combination.
//
// Theorem 2: assuming N_⊔ > n, the result is within a
// max{4, 2 + 2·max_h N*_h/(N*_h − n)} factor of the optimum, in
// O(N log m + H m^{H−1} log^{H−1} N) time. The m^{H−1} term makes this
// designer practical only for small m or H; DynPgm is the scalable
// alternative.
func LogBdr(p *Pilot, H, n int, c Constraints) (*Design, error) {
	c = c.normalized()
	if err := validateDesignInput(p, H, n, c); err != nil {
		return nil, err
	}
	m := p.M()
	N := p.N
	mq := c.MinPilotPerStratum
	rank := func(k int) int { return p.Pos[k-1] + 1 } // 1-based

	best := &Design{V: math.Inf(1)}
	// ends[k] = 1-based index of the last pilot sample in group k+1.
	ends := make([]int, H-1)
	cuts := make([]int, H+1)
	cuts[0], cuts[H] = 0, N

	// candidates returns boundary positions for the gap after sample e:
	// {ı_e + 2^t} ∩ [ı_e, ı_{e+1}) plus ı_{e+1} − 1.
	candidates := func(e int) []int {
		left := rank(e)
		right := rank(e + 1)
		out := []int{left}
		for step := 1; left+step < right; step <<= 1 {
			out = append(out, left+step)
		}
		if last := right - 1; last != out[len(out)-1] {
			out = append(out, last)
		}
		return out
	}

	var chooseBoundary func(k int)
	chooseBoundary = func(k int) {
		if k == H-1 {
			if c.feasible(p, cuts) {
				if v := NeymanObjective(p, cuts, n); v < best.V {
					best.V = v
					best.Cuts = append([]int(nil), cuts...)
				}
			}
			return
		}
		for _, b := range candidates(ends[k]) {
			if b <= cuts[k] { // strictly increasing cuts
				continue
			}
			cuts[k+1] = b
			chooseBoundary(k + 1)
		}
	}

	var choosePartition func(k, start int)
	choosePartition = func(k, start int) {
		if k == H-1 {
			// Remaining samples (ends[H-2], m] form the last group.
			if m-ends[H-2] < mq {
				return
			}
			chooseBoundary(0)
			return
		}
		// Group k+1 covers samples (prev, e]; need ≥ mq samples in it and
		// enough left for the remaining groups.
		prev := 0
		if k > 0 {
			prev = ends[k-1]
		}
		for e := prev + mq; e <= m-(H-1-k)*mq; e++ {
			ends[k] = e
			choosePartition(k+1, e)
		}
	}
	choosePartition(0, 0)

	if best.Cuts == nil {
		return nil, fmt.Errorf("stratify: LogBdr found no feasible %d-stratification", H)
	}
	return best, nil
}
