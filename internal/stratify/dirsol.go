package stratify

import (
	"fmt"
	"math"
)

// DirSol is the (almost) exact H = 3 designer of §4.2.1 and Appendix A:
// for every pair (i, j) of pilot-sample indices delimiting the three
// strata, the estimated variance is a bivariate quadratic f(N1, N3) over a
// ≤5-sided polygon; we minimize it in closed form (critical point + edges),
// round to integer boundaries, and keep the overall best design.
//
// Theorem 1: assuming N_⊔ > n, the returned design's estimated variance is
// within a (1 + 2/N_⊔ + 2/(N_⊔−n) + 4/(N_⊔(N_⊔−n))) factor of optimal, in
// O(N log m + m²) time.
func DirSol(p *Pilot, n int, c Constraints) (*Design, error) {
	c = c.normalized()
	if err := validateDesignInput(p, 3, n, c); err != nil {
		return nil, err
	}
	m := p.M()
	N := p.N
	mq := c.MinPilotPerStratum
	Nq := c.MinStratumSize

	best := &Design{V: math.Inf(1)}
	// 1-based sample ranks ı_k = Pos[k-1]+1.
	rank := func(k int) int { return p.Pos[k-1] + 1 }

	for i := mq; i+mq < m-mq+1; i++ {
		for j := i + mq + 1; j <= m-mq+1; j++ {
			// Strata samples: (0, i], (i, j-1], (j-1, m].
			_, s1sq := p.SampleStats(0, i)
			_, s2sq := p.SampleStats(i, j-1)
			_, s3sq := p.SampleStats(j-1, m)
			s1, s2, s3 := math.Sqrt(s1sq), math.Sqrt(s2sq), math.Sqrt(s3sq)

			lo1 := maxInt(Nq, rank(i))
			hi1 := rank(i+1) - 1
			lo3 := maxInt(Nq, N-rank(j)+1)
			hi3 := N - rank(j-1)
			diag := N - Nq // N1 + N3 ≤ diag
			if lo1 > hi1 || lo3 > hi3 || lo1+lo3 > diag {
				continue
			}

			nf, Nf := float64(n), float64(N)
			a1 := (s1 - s2) * (s1 - s2) / nf
			a2 := (s3 - s2) * (s3 - s2) / nf
			a3 := 2 * (s1 - s2) * (s3 - s2) / nf
			a4 := 2*(s1-s2)*Nf*s2/nf - (s1sq - s2sq)
			a5 := 2*(s3-s2)*Nf*s2/nf - (s3sq - s2sq)
			a6 := Nf*Nf*s2sq/nf - Nf*s2sq
			f := func(x1, x3 float64) float64 {
				return a1*x1*x1 + a2*x3*x3 + a3*x1*x3 + a4*x1 + a5*x3 + a6
			}

			// Collect real-valued candidate minimizers.
			var cands [][2]float64
			// Critical point of the quadratic.
			det := 4*a1*a2 - a3*a3
			if math.Abs(det) > 1e-18 {
				x := (a3*a5 - 2*a2*a4) / det
				y := (a3*a4 - 2*a1*a5) / det
				cands = append(cands, [2]float64{x, y})
			}
			// Box edges (x fixed, minimize over y; and vice versa).
			for _, x := range []float64{float64(lo1), float64(hi1)} {
				yLo, yHi := float64(lo3), math.Min(float64(hi3), float64(diag)-x)
				if yLo <= yHi {
					y := minQuadratic(a2, a3*x+a5, yLo, yHi)
					cands = append(cands, [2]float64{x, y}, [2]float64{x, yLo}, [2]float64{x, yHi})
				}
			}
			for _, y := range []float64{float64(lo3), float64(hi3)} {
				xLo, xHi := float64(lo1), math.Min(float64(hi1), float64(diag)-y)
				if xLo <= xHi {
					x := minQuadratic(a1, a3*y+a4, xLo, xHi)
					cands = append(cands, [2]float64{x, y}, [2]float64{xLo, y}, [2]float64{xHi, y})
				}
			}
			// Diagonal edge x + y = diag.
			{
				D := float64(diag)
				xLo := math.Max(float64(lo1), D-float64(hi3))
				xHi := math.Min(float64(hi1), D-float64(lo3))
				if xLo <= xHi {
					// f(x, D−x) = (a1+a2−a3)x² + (a3 D − 2 a2 D + a4 − a5)x + const
					A := a1 + a2 - a3
					B := a3*D - 2*a2*D + a4 - a5
					x := minQuadratic(A, B, xLo, xHi)
					cands = append(cands, [2]float64{x, D - x}, [2]float64{xLo, D - xLo}, [2]float64{xHi, D - xHi})
				}
			}

			// Round each candidate to nearby integer points inside R.
			for _, cd := range cands {
				for _, x1 := range []int{int(math.Floor(cd[0])), int(math.Ceil(cd[0]))} {
					for _, x3 := range []int{int(math.Floor(cd[1])), int(math.Ceil(cd[1]))} {
						n1, n3 := clampPoint(x1, x3, lo1, hi1, lo3, hi3, diag)
						if n1 < 0 {
							continue
						}
						v := f(float64(n1), float64(n3))
						if v < best.V {
							best.V = v
							best.Cuts = []int{0, n1, N - n3, N}
						}
					}
				}
			}
		}
	}
	if best.Cuts == nil {
		return nil, fmt.Errorf("stratify: DirSol found no feasible 3-stratification (m=%d, N=%d, constraints %+v)", m, N, c)
	}
	// Report the exact objective for the chosen integer cuts.
	best.V = NeymanObjective(p, best.Cuts, n)
	return best, nil
}

// clampPoint clamps (x1, x3) into the polygon; returns (-1, -1) if the
// polygon cannot absorb the point.
func clampPoint(x1, x3, lo1, hi1, lo3, hi3, diag int) (int, int) {
	if x1 < lo1 {
		x1 = lo1
	}
	if x1 > hi1 {
		x1 = hi1
	}
	if x3 < lo3 {
		x3 = lo3
	}
	if x3 > hi3 {
		x3 = hi3
	}
	if x1+x3 > diag {
		// Pull x3 down first, then x1.
		x3 = diag - x1
		if x3 < lo3 {
			x3 = lo3
			x1 = diag - x3
			if x1 < lo1 || x1 > hi1 {
				return -1, -1
			}
		}
		if x3 > hi3 {
			return -1, -1
		}
	}
	return x1, x3
}

// minQuadratic returns the x in [lo, hi] minimizing A x² + B x.
func minQuadratic(A, B, lo, hi float64) float64 {
	bestX, bestV := lo, A*lo*lo+B*lo
	if v := A*hi*hi + B*hi; v < bestV {
		bestX, bestV = hi, v
	}
	if A > 0 {
		x := -B / (2 * A)
		if x >= lo && x <= hi {
			if v := A*x*x + B*x; v < bestV {
				bestX = x
			}
		}
	}
	return bestX
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
