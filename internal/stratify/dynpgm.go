package stratify

import (
	"fmt"
	"math"
	"sort"
)

// maxCandidates caps the candidate boundary set size. The paper's B has
// O(m log N) members; for very large pilots we thin the non-rank candidates
// to keep the O(H·|B|²) dynamic programs affordable. Rank positions
// (the ı_k themselves) are always retained.
const maxCandidates = 1500

// candidateBoundaries builds the ordered boundary set B of §4.2.1's DynPgm
// with the default power-of-two spacing (ε = 1).
func candidateBoundaries(p *Pilot) []int { return candidateBoundariesEps(p, 1) }

// candidateBoundariesEps builds B with offsets at powers of (1+ε) from each
// pilot rank — the paper's refinement trading running time for a tighter
// approximation ratio: for every pilot rank ı_k, positions ı_k + ⌈(1+ε)^t⌉
// (up to the next rank) and ı_k − ⌈(1+ε)^t⌉ (down to the previous rank),
// plus N. Returned positions are cut positions in [1, N].
func candidateBoundariesEps(p *Pilot, eps float64) []int {
	if eps <= 0 || eps > 1 {
		eps = 1
	}
	N := p.N
	m := p.M()
	set := make(map[int]bool)
	add := func(b int) {
		if b >= 1 && b <= N {
			set[b] = true
		}
	}
	grow := func(step int) int {
		next := int(math.Ceil(float64(step) * (1 + eps)))
		if next <= step {
			next = step + 1
		}
		return next
	}
	for k := 1; k <= m; k++ {
		cur := p.Pos[k-1] + 1 // 1-based rank
		next := N + 1
		if k < m {
			next = p.Pos[k] + 1
		}
		prev := 0
		if k > 1 {
			prev = p.Pos[k-2] + 1
		}
		add(cur)
		for step := 1; cur+step < next; step = grow(step) {
			add(cur + step)
		}
		for step := 1; cur-step > prev; step = grow(step) {
			add(cur - step)
		}
	}
	add(N)
	out := make([]int, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Ints(out)
	if len(out) > maxCandidates {
		out = thinCandidates(out, p)
	}
	return out
}

// thinCandidates keeps all rank positions and N, and an even subsample of
// the rest, bounding |B| near maxCandidates.
func thinCandidates(b []int, p *Pilot) []int {
	keep := make(map[int]bool, p.M()+1)
	for _, pos := range p.Pos {
		keep[pos+1] = true
	}
	keep[p.N] = true
	var extras []int
	for _, v := range b {
		if !keep[v] {
			extras = append(extras, v)
		}
	}
	budget := maxCandidates - len(keep)
	if budget < 0 {
		budget = 0
	}
	out := make([]int, 0, maxCandidates)
	for v := range keep {
		out = append(out, v)
	}
	if budget > 0 && len(extras) > 0 {
		stride := (len(extras) + budget - 1) / budget
		for i := 0; i < len(extras); i += stride {
			out = append(out, extras[i])
		}
	}
	sort.Ints(out)
	return out
}

// DynPgm is the scalable Neyman-allocation designer of §4.2.1 and Appendix
// C. The objective (5) is not separable because of the auxiliary sum
// Σ_{h'<h} N_h' s_h'; the algorithm runs one dynamic program per guessed
// bound t ∈ T = {2^t ≤ mHN} under the constraint N_h s_h ≤ t, and returns
// the best design found across all t.
//
// Theorem 3: assuming N_⊔ ≥ 4n, the result is within 14/3·(10H−9) of the
// optimum, in O(N log m + H m² log³ N) time.
func DynPgm(p *Pilot, H, n int, c Constraints) (*Design, error) {
	return DynPgmEps(p, H, n, c, 1)
}

// DynPgmEps is DynPgm with the paper's (1+ε) refinement: candidate
// boundaries at powers of (1+ε) and auxiliary-sum bounds T = {(1+ε)^i},
// improving the approximation ratio to 7(1+ε)/3·[5(1+ε)(H−1)+1] at
// O(1/ε³) extra cost. ε must lie in (0, 1]; ε = 1 recovers DynPgm.
func DynPgmEps(p *Pilot, H, n int, c Constraints, eps float64) (*Design, error) {
	c = c.normalized()
	if err := validateDesignInput(p, H, n, c); err != nil {
		return nil, err
	}
	if eps <= 0 || eps > 1 {
		eps = 1
	}
	B := candidateBoundariesEps(p, eps)
	if len(B) == 0 || B[len(B)-1] != p.N {
		return nil, fmt.Errorf("stratify: candidate set does not reach N")
	}
	pre := precompute(p, B)

	// T: powers of (1+ε). The paper bounds T by mHN, but N_h·s_h never
	// exceeds N/2 (binary variance caps s at ~0.5), so every t ≥ N/2 yields
	// the same unconstrained pass — we stop at the first such t.
	limit := float64(p.N) / 2
	var best *Design
	for t := 1.0; ; t *= 1 + eps {
		d := dynNeymanPass(p, pre, H, n, c, t)
		if d != nil && (best == nil || d.V < best.V) {
			best = d
		}
		if t >= limit {
			break
		}
	}
	if best == nil {
		return nil, fmt.Errorf("stratify: DynPgm found no feasible %d-stratification", H)
	}
	return best, nil
}

// pretables holds per-candidate prefix data shared by the DP passes.
type pretables struct {
	B []int // candidate cut positions (1-based), ascending, last = N
	L []int // L[i] = number of pilot samples at positions ≤ B[i]
}

func precompute(p *Pilot, B []int) *pretables {
	L := make([]int, len(B))
	for i, b := range B {
		L[i] = p.CountUpTo(b) // samples with 0-based pos < b ⇔ 1-based ≤ b
	}
	return &pretables{B: B, L: L}
}

// stratumS2 returns pilot count and variance for the stratum (B[j], B[i]];
// j = -1 denotes the sentinel boundary 0.
func (pt *pretables) stratumS2(p *Pilot, j, i int) (int, float64) {
	lo := 0
	if j >= 0 {
		lo = pt.L[j]
	}
	return p.SampleStats(lo, pt.L[i])
}

func dynNeymanPass(p *Pilot, pt *pretables, H, n int, c Constraints, t float64) *Design {
	nb := len(pt.B)
	nf := float64(n)
	const inf = math.MaxFloat64

	// A[h][i]: best Σ-term value for h strata over the first B[i] objects
	// under the auxiliary-sum constraint; X[h][i]: its auxiliary sum.
	A := make([][]float64, H+1)
	X := make([][]float64, H+1)
	parent := make([][]int, H+1)
	for h := 0; h <= H; h++ {
		A[h] = make([]float64, nb)
		X[h] = make([]float64, nb)
		parent[h] = make([]int, nb)
		for i := range A[h] {
			A[h][i] = inf
			parent[h][i] = -2
		}
	}

	bPos := func(j int) int {
		if j < 0 {
			return 0
		}
		return pt.B[j]
	}
	lOf := func(j int) int {
		if j < 0 {
			return 0
		}
		return pt.L[j]
	}

	for h := 1; h <= H; h++ {
		for i := 0; i < nb; i++ {
			// The first stratum must start at the sentinel boundary 0; later
			// strata start at a previously chosen boundary.
			lo, hiJ := 0, i
			if h == 1 {
				lo, hiJ = -1, 0
			}
			for j := lo; j < hiJ; j++ {
				if h > 1 && A[h-1][j] == inf {
					continue
				}
				size := pt.B[i] - bPos(j)
				if size < c.MinStratumSize {
					continue
				}
				mh := pt.L[i] - lOf(j)
				if mh < c.MinPilotPerStratum {
					continue
				}
				_, s2 := p.SampleStats(lOf(j), pt.L[i])
				Ns := float64(size) * math.Sqrt(s2)
				if Ns > t {
					continue
				}
				var prevA, prevX float64
				if h > 1 {
					prevA, prevX = A[h-1][j], X[h-1][j]
				}
				cand := prevA + Ns*Ns/nf - float64(size)*s2 + 2/nf*Ns*prevX
				if cand < A[h][i] {
					A[h][i] = cand
					X[h][i] = prevX + Ns
					parent[h][i] = j
				}
			}
		}
	}

	last := nb - 1
	if A[H][last] == inf {
		return nil
	}
	// Recover cuts.
	cuts := make([]int, H+1)
	cuts[H] = p.N
	i := last
	for h := H; h >= 1; h-- {
		j := parent[h][i]
		if j == -2 {
			return nil
		}
		cuts[h-1] = bPos(j)
		i = j
	}
	d := &Design{Cuts: cuts}
	d.V = NeymanObjective(p, cuts, n)
	return d
}

// DynPgmP is the proportional-allocation designer of §4.2.2 and Appendix D.
// Objective (6) is separable, so a single dynamic program over the
// candidate boundary set suffices.
//
// Theorem 4: the result is within a factor 2 of the optimal proportional-
// allocation stratification, in O(N log m + H m² log² N) time.
func DynPgmP(p *Pilot, H, n int, c Constraints) (*Design, error) {
	return DynPgmPEps(p, H, n, c, 1)
}

// DynPgmPEps is DynPgmP with (1+ε)-spaced candidate boundaries, improving
// the approximation ratio from 2 to (1+ε) at O(1/ε²) extra cost. ε must lie
// in (0, 1]; ε = 1 recovers DynPgmP.
func DynPgmPEps(p *Pilot, H, n int, c Constraints, eps float64) (*Design, error) {
	c = c.normalized()
	if err := validateDesignInput(p, H, n, c); err != nil {
		return nil, err
	}
	B := candidateBoundariesEps(p, eps)
	pt := precompute(p, B)
	nb := len(B)
	const inf = math.MaxFloat64
	scale := float64(p.N-n) / float64(n)

	A := make([][]float64, H+1)
	parent := make([][]int, H+1)
	for h := 0; h <= H; h++ {
		A[h] = make([]float64, nb)
		parent[h] = make([]int, nb)
		for i := range A[h] {
			A[h][i] = inf
			parent[h][i] = -2
		}
	}
	bPos := func(j int) int {
		if j < 0 {
			return 0
		}
		return pt.B[j]
	}
	lOf := func(j int) int {
		if j < 0 {
			return 0
		}
		return pt.L[j]
	}
	for h := 1; h <= H; h++ {
		for i := 0; i < nb; i++ {
			lo, hiJ := 0, i
			if h == 1 {
				lo, hiJ = -1, 0
			}
			for j := lo; j < hiJ; j++ {
				if h > 1 && A[h-1][j] == inf {
					continue
				}
				size := pt.B[i] - bPos(j)
				if size < c.MinStratumSize {
					continue
				}
				mh := pt.L[i] - lOf(j)
				if mh < c.MinPilotPerStratum {
					continue
				}
				_, s2 := p.SampleStats(lOf(j), pt.L[i])
				var prevA float64
				if h > 1 {
					prevA = A[h-1][j]
				}
				cand := prevA + scale*float64(size)*s2
				if cand < A[h][i] {
					A[h][i] = cand
					parent[h][i] = j
				}
			}
		}
	}
	last := nb - 1
	if A[H][last] == inf {
		return nil, fmt.Errorf("stratify: DynPgmP found no feasible %d-stratification", H)
	}
	cuts := make([]int, H+1)
	cuts[H] = p.N
	i := last
	for h := H; h >= 1; h-- {
		j := parent[h][i]
		if j == -2 {
			return nil, fmt.Errorf("stratify: DynPgmP parent chain broken")
		}
		cuts[h-1] = bPos(j)
		i = j
	}
	return &Design{Cuts: cuts, V: PropObjective(p, cuts, n)}, nil
}
