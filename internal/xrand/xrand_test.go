package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split()
	c2 := root.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling sub-streams produced identical first output")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntNBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.IntN(n)
			if v < 0 || v >= n {
				t.Fatalf("IntN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntNUniform(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.IntN(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates too far from %v", i, c, want)
		}
	}
}

func TestIntNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(17)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("first element %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(23)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", p)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(31)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntN(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.IntN(1000003)
	}
}
