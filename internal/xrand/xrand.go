// Package xrand provides a small, deterministic pseudo-random number
// generator substrate used by every stochastic component in this repository.
//
// All samplers, classifiers, and experiment drivers take an explicit *Rand so
// that every experiment is reproducible from a single seed. The generator is
// xoshiro256**, seeded through SplitMix64, matching the reference
// implementation by Blackman and Vigna. Sub-streams derived with Split are
// statistically independent for our purposes, which lets concurrent
// experiment trials share one root seed without sharing state.
package xrand

import "math"

// Rand is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not valid; use New or Split.
type Rand struct {
	s0, s1, s2, s3 uint64

	// cached second normal variate from Box-Muller
	haveGauss bool
	gauss     float64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand a single seed into the four xoshiro words.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	st := seed
	r.s0 = splitMix64(&st)
	r.s1 = splitMix64(&st)
	r.s2 = splitMix64(&st)
	r.s3 = splitMix64(&st)
	// Guard against the (astronomically unlikely) all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent sub-stream generator. The parent stream
// advances by one draw; the child is seeded from that draw, so distinct
// Split calls yield distinct streams.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniform value in [0, n). It panics if n <= 0.
// Uses Lemire's nearly-divisionless bounded generation.
func (r *Rand) IntN(n int) int {
	if n <= 0 {
		panic("xrand: IntN with non-positive n")
	}
	un := uint64(n)
	hi, lo := mul64(r.Uint64(), un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		if i != j {
			swap(i, j)
		}
	}
}

// NormFloat64 returns a standard normal variate (Box-Muller, with caching).
func (r *Rand) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns exp(mu + sigma*Z) for standard normal Z.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }
