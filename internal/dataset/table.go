// Package dataset provides the column-typed in-memory tables that play the
// role of the paper's stored relations, together with CSV import/export and
// the synthetic generators that stand in for the two evaluation datasets
// (MLB pitching statistics and the KDD Cup 1999 connection sample — see
// DESIGN.md §2 for the substitution rationale).
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Kind is the type of a column.
type Kind int

const (
	// Float is a 64-bit floating point column.
	Float Kind = iota
	// Int is a 64-bit integer column.
	Int
	// String is a text column.
	String
)

func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case String:
		return "string"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Table is a column-major in-memory relation. The zero value is not useful;
// construct with New.
type Table struct {
	Name   string
	schema Schema
	floats map[int][]float64
	ints   map[int][]int64
	strs   map[int][]string
	n      int
}

// New returns an empty table with the given schema.
func New(name string, schema Schema) *Table {
	t := &Table{
		Name:   name,
		schema: append(Schema(nil), schema...),
		floats: make(map[int][]float64),
		ints:   make(map[int][]int64),
		strs:   make(map[int][]string),
	}
	for i, c := range schema {
		switch c.Kind {
		case Float:
			t.floats[i] = nil
		case Int:
			t.ints[i] = nil
		case String:
			t.strs[i] = nil
		}
	}
	return t
}

// Schema returns the table's schema. The caller must not modify it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.n }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.schema) }

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int { return t.schema.Index(name) }

// AppendRow appends one row. vals must match the schema in length and kind
// (float64 for Float, int64 for Int, string for String).
func (t *Table) AppendRow(vals ...any) error {
	if len(vals) != len(t.schema) {
		return fmt.Errorf("dataset: row has %d values, schema has %d columns", len(vals), len(t.schema))
	}
	for i, c := range t.schema {
		switch c.Kind {
		case Float:
			v, ok := vals[i].(float64)
			if !ok {
				return fmt.Errorf("dataset: column %q wants float64, got %T", c.Name, vals[i])
			}
			t.floats[i] = append(t.floats[i], v)
		case Int:
			v, ok := vals[i].(int64)
			if !ok {
				return fmt.Errorf("dataset: column %q wants int64, got %T", c.Name, vals[i])
			}
			t.ints[i] = append(t.ints[i], v)
		case String:
			v, ok := vals[i].(string)
			if !ok {
				return fmt.Errorf("dataset: column %q wants string, got %T", c.Name, vals[i])
			}
			t.strs[i] = append(t.strs[i], v)
		}
	}
	t.n++
	return nil
}

// MustAppendRow appends one row and panics on schema mismatch. Intended for
// generators whose rows are constructed programmatically.
func (t *Table) MustAppendRow(vals ...any) {
	if err := t.AppendRow(vals...); err != nil {
		panic(err)
	}
}

// Float returns the float value at (row, col). Panics if out of range or the
// column is not a Float column.
func (t *Table) Float(row, col int) float64 { return t.floats[col][row] }

// Int returns the int value at (row, col).
func (t *Table) Int(row, col int) int64 { return t.ints[col][row] }

// Str returns the string value at (row, col).
func (t *Table) Str(row, col int) string { return t.strs[col][row] }

// Value returns the value at (row, col) as an any.
func (t *Table) Value(row, col int) any {
	switch t.schema[col].Kind {
	case Float:
		return t.floats[col][row]
	case Int:
		return t.ints[col][row]
	default:
		return t.strs[col][row]
	}
}

// Numeric returns the value at (row, col) coerced to float64. String columns
// yield an error.
func (t *Table) Numeric(row, col int) (float64, error) {
	switch t.schema[col].Kind {
	case Float:
		return t.floats[col][row], nil
	case Int:
		return float64(t.ints[col][row]), nil
	default:
		return 0, fmt.Errorf("dataset: column %q is not numeric", t.schema[col].Name)
	}
}

// FloatColumn returns the backing slice of a Float column (shared, not
// copied). Panics if the column is not Float.
func (t *Table) FloatColumn(name string) []float64 {
	i := t.ColIndex(name)
	if i < 0 || t.schema[i].Kind != Float {
		panic(fmt.Sprintf("dataset: no float column %q", name))
	}
	return t.floats[i]
}

// IntColumn returns the backing slice of an Int column.
func (t *Table) IntColumn(name string) []int64 {
	i := t.ColIndex(name)
	if i < 0 || t.schema[i].Kind != Int {
		panic(fmt.Sprintf("dataset: no int column %q", name))
	}
	return t.ints[i]
}

// FloatsAt returns the backing slice of the Float column at position col
// (shared, not copied). Panics if the column is not a Float column. The
// positional accessors exist for compiled predicate evaluation, whose hot
// loop reads columns resolved once at compile time.
func (t *Table) FloatsAt(col int) []float64 {
	if t.schema[col].Kind != Float {
		panic(fmt.Sprintf("dataset: column %d (%q) is not float", col, t.schema[col].Name))
	}
	return t.floats[col]
}

// IntsAt returns the backing slice of the Int column at position col.
func (t *Table) IntsAt(col int) []int64 {
	if t.schema[col].Kind != Int {
		panic(fmt.Sprintf("dataset: column %d (%q) is not int", col, t.schema[col].Name))
	}
	return t.ints[col]
}

// StringsAt returns the backing slice of the String column at position col.
func (t *Table) StringsAt(col int) []string {
	if t.schema[col].Kind != String {
		panic(fmt.Sprintf("dataset: column %d (%q) is not string", col, t.schema[col].Name))
	}
	return t.strs[col]
}

// Prefix returns a view of the first n rows that shares t's column storage
// (no row data is copied). The view is the snapshot primitive of the live
// layer: a parent table may keep appending rows at positions ≥ n — appends
// never write below an already-published length — while every prefix view
// stays a stable, immutable relation. The caller must treat the view as
// read-only (never AppendRow to it) and must guarantee the parent never
// mutates rows below n in place.
func (t *Table) Prefix(n int) *Table {
	if n < 0 || n > t.n {
		panic(fmt.Sprintf("dataset: prefix %d out of range [0, %d]", n, t.n))
	}
	nt := &Table{
		Name:   t.Name,
		schema: t.schema,
		floats: make(map[int][]float64, len(t.floats)),
		ints:   make(map[int][]int64, len(t.ints)),
		strs:   make(map[int][]string, len(t.strs)),
		n:      n,
	}
	for i, c := range t.floats {
		nt.floats[i] = c[:n]
	}
	for i, c := range t.ints {
		nt.ints[i] = c[:n]
	}
	for i, c := range t.strs {
		nt.strs[i] = c[:n]
	}
	return nt
}

// Features extracts the named numeric columns into row-major feature
// vectors, the format consumed by internal/learn classifiers.
func (t *Table) Features(cols ...string) ([][]float64, error) {
	idx := make([]int, len(cols))
	for j, name := range cols {
		i := t.ColIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("dataset: unknown column %q", name)
		}
		if t.schema[i].Kind == String {
			return nil, fmt.Errorf("dataset: column %q is not numeric", name)
		}
		idx[j] = i
	}
	out := make([][]float64, t.n)
	for r := 0; r < t.n; r++ {
		v := make([]float64, len(idx))
		for j, i := range idx {
			if t.schema[i].Kind == Float {
				v[j] = t.floats[i][r]
			} else {
				v[j] = float64(t.ints[i][r])
			}
		}
		out[r] = v
	}
	return out, nil
}

// WriteCSV writes the table (with a header row) to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.schema))
	for i, c := range t.schema {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(t.schema))
	for r := 0; r < t.n; r++ {
		for i, c := range t.schema {
			switch c.Kind {
			case Float:
				rec[i] = strconv.FormatFloat(t.floats[i][r], 'g', -1, 64)
			case Int:
				rec[i] = strconv.FormatInt(t.ints[i][r], 10)
			case String:
				rec[i] = t.strs[i][r]
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a table with the given schema from CSV data with a header
// row. The header must match the schema column names in order.
func ReadCSV(name string, schema Schema, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) != len(schema) {
		return nil, fmt.Errorf("dataset: header has %d columns, schema %d", len(header), len(schema))
	}
	for i, h := range header {
		if h != schema[i].Name {
			return nil, fmt.Errorf("dataset: header column %d is %q, want %q", i, h, schema[i].Name)
		}
	}
	t := New(name, schema)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		vals := make([]any, len(schema))
		for i, c := range schema {
			switch c.Kind {
			case Float:
				v, err := strconv.ParseFloat(rec[i], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: row %d column %q: %w", t.n, c.Name, err)
				}
				vals[i] = v
			case Int:
				v, err := strconv.ParseInt(rec[i], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: row %d column %q: %w", t.n, c.Name, err)
				}
				vals[i] = v
			case String:
				vals[i] = rec[i]
			}
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, err
		}
	}
	return t, nil
}
