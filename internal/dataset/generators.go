package dataset

import (
	"math"

	"repro/internal/xrand"
)

// SportsSize is the paper's MLB pitching table size (~47,000 player-years).
const SportsSize = 47000

// NeighborsSize is the paper's KDD Cup 1999 sample size (~73,000 records).
const NeighborsSize = 73000

// NeighborsFeatures is the KDD Cup 1999 feature count.
const NeighborsFeatures = 41

// Sports generates a synthetic stand-in for the paper's Type 1 dataset:
// yearly MLB pitching statistics. Each row is one player-year with a latent
// "skill" driving correlated performance columns. The k-skyband query of
// Example 2 runs over (strikeouts, wins): both are right-skewed, positively
// correlated, and heavily tied at low values — the structure that makes
// attribute-grid stratification (SSP) competitive on this dataset for small
// result sizes, as the paper observes in §5.4.2.
func Sports(n int, seed uint64) *Table {
	r := xrand.New(seed)
	schema := Schema{
		{Name: "player_id", Kind: Int},
		{Name: "year", Kind: Int},
		{Name: "wins", Kind: Float},
		{Name: "losses", Kind: Float},
		{Name: "era", Kind: Float},
		{Name: "strikeouts", Kind: Float},
		{Name: "innings", Kind: Float},
		{Name: "games", Kind: Float},
	}
	t := New("sports", schema)
	for i := 0; i < n; i++ {
		// Latent skill in (0,1), beta-like via squaring a uniform: most
		// pitchers are mediocre, a few are stars.
		skill := math.Pow(r.Float64(), 1.6)
		// Role: starters pitch many innings, relievers few.
		starter := r.Bool(0.35)
		var innings float64
		if starter {
			innings = 80 + 140*skill + 20*r.NormFloat64()
		} else {
			innings = 15 + 60*skill + 10*r.NormFloat64()
		}
		if innings < 1 {
			innings = 1
		}
		games := innings/6 + 5*r.Float64()*10
		kRate := 4.5 + 7*skill + 1.2*r.NormFloat64() // strikeouts per 9 innings
		if kRate < 0.5 {
			kRate = 0.5
		}
		so := kRate * innings / 9
		era := 6.2 - 3.4*skill + 0.8*r.NormFloat64()
		if era < 0.5 {
			era = 0.5
		}
		winRate := 0.25 + 0.5*skill
		wins := winRate*innings/9 + 1.5*r.NormFloat64()
		if wins < 0 {
			wins = 0
		}
		losses := (1-winRate)*innings/9 + 1.5*r.NormFloat64()
		if losses < 0 {
			losses = 0
		}
		t.MustAppendRow(
			int64(i/20), int64(1990+i%30),
			math.Round(wins), math.Round(losses),
			math.Round(era*100)/100,
			math.Round(so), math.Round(innings*10)/10,
			math.Round(games),
		)
	}
	return t
}

// Neighbors generates a synthetic stand-in for the paper's Type 2 dataset: a
// sample of KDD Cup 1999 network connections with 41 features. Records form
// dense clusters (normal traffic classes) plus a sprinkling of scattered
// outliers (intrusions). The Example 1 query — count records with at most k
// neighbors within distance d over features (f0, f1) — separates cluster
// cores (many neighbors) from outliers (few), and sweeping d moves the
// selectivity through the paper's XS…XXL regimes.
func Neighbors(n int, seed uint64) *Table {
	r := xrand.New(seed)
	schema := make(Schema, 0, NeighborsFeatures+2)
	schema = append(schema, Column{Name: "conn_id", Kind: Int})
	for j := 0; j < NeighborsFeatures; j++ {
		schema = append(schema, Column{Name: featureName(j), Kind: Float})
	}
	schema = append(schema, Column{Name: "attack", Kind: Int})
	t := New("neighbors", schema)

	// Cluster centers in the (f0, f1) query plane plus per-cluster offsets
	// for the remaining features.
	const clusters = 6
	centers := make([][2]float64, clusters)
	scales := make([]float64, clusters)
	weights := make([]float64, clusters)
	totalW := 0.0
	for c := 0; c < clusters; c++ {
		centers[c] = [2]float64{r.Float64() * 100, r.Float64() * 100}
		scales[c] = 1.5 + 4*r.Float64()
		weights[c] = 0.5 + r.Float64()
		totalW += weights[c]
	}
	const outlierFrac = 0.12
	row := make([]any, len(schema))
	for i := 0; i < n; i++ {
		isOutlier := r.Bool(outlierFrac)
		var x, y float64
		cluster := -1
		if isOutlier {
			x = r.Float64() * 100
			y = r.Float64() * 100
		} else {
			u := r.Float64() * totalW
			for c := 0; c < clusters; c++ {
				u -= weights[c]
				if u <= 0 || c == clusters-1 {
					cluster = c
					break
				}
			}
			x = centers[cluster][0] + scales[cluster]*r.NormFloat64()
			y = centers[cluster][1] + scales[cluster]*r.NormFloat64()
		}
		row[0] = int64(i)
		row[1] = x
		row[2] = y
		for j := 2; j < NeighborsFeatures; j++ {
			base := 0.0
			if cluster >= 0 {
				base = float64((cluster*7+j)%13) - 6
			}
			row[1+j] = base + r.NormFloat64()
		}
		attack := int64(0)
		if isOutlier {
			attack = 1
		}
		row[len(row)-1] = attack
		t.MustAppendRow(row...)
	}
	return t
}

func featureName(j int) string {
	return "f" + itoa(j)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
