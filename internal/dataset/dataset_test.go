package dataset

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func sampleSchema() Schema {
	return Schema{
		{Name: "id", Kind: Int},
		{Name: "x", Kind: Float},
		{Name: "tag", Kind: String},
	}
}

func TestTableAppendAndAccess(t *testing.T) {
	tb := New("t", sampleSchema())
	if err := tb.AppendRow(int64(1), 2.5, "a"); err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendRow(int64(2), -1.0, "b"); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 || tb.NumCols() != 3 {
		t.Fatalf("dims = %dx%d", tb.NumRows(), tb.NumCols())
	}
	if tb.Int(0, 0) != 1 || tb.Float(1, 1) != -1.0 || tb.Str(1, 2) != "b" {
		t.Fatal("cell access wrong")
	}
	if v := tb.Value(0, 2); v != "a" {
		t.Fatalf("Value = %v", v)
	}
	if f, err := tb.Numeric(0, 0); err != nil || f != 1 {
		t.Fatalf("Numeric int = %v, %v", f, err)
	}
	if _, err := tb.Numeric(0, 2); err == nil {
		t.Fatal("Numeric on string should error")
	}
}

func TestAppendRowErrors(t *testing.T) {
	tb := New("t", sampleSchema())
	if err := tb.AppendRow(int64(1), 2.5); err == nil {
		t.Fatal("arity mismatch should error")
	}
	if err := tb.AppendRow("x", 2.5, "a"); err == nil {
		t.Fatal("type mismatch should error")
	}
	if err := tb.AppendRow(int64(1), 2, "a"); err == nil {
		t.Fatal("int where float expected should error")
	}
	if tb.NumRows() != 0 {
		t.Fatal("failed appends must not grow the table")
	}
}

func TestMustAppendRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppendRow did not panic")
		}
	}()
	New("t", sampleSchema()).MustAppendRow("bad")
}

func TestSchemaIndex(t *testing.T) {
	s := sampleSchema()
	if s.Index("x") != 1 || s.Index("nope") != -1 {
		t.Fatal("Schema.Index wrong")
	}
	tb := New("t", s)
	if tb.ColIndex("tag") != 2 {
		t.Fatal("ColIndex wrong")
	}
}

func TestFeatures(t *testing.T) {
	tb := New("t", sampleSchema())
	tb.MustAppendRow(int64(7), 1.5, "a")
	tb.MustAppendRow(int64(8), 2.5, "b")
	f, err := tb.Features("x", "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 || f[0][0] != 1.5 || f[0][1] != 7 || f[1][1] != 8 {
		t.Fatalf("Features = %v", f)
	}
	if _, err := tb.Features("tag"); err == nil {
		t.Fatal("string feature should error")
	}
	if _, err := tb.Features("missing"); err == nil {
		t.Fatal("missing feature should error")
	}
}

func TestColumnAccessors(t *testing.T) {
	tb := New("t", sampleSchema())
	tb.MustAppendRow(int64(7), 1.5, "a")
	if got := tb.FloatColumn("x"); len(got) != 1 || got[0] != 1.5 {
		t.Fatalf("FloatColumn = %v", got)
	}
	if got := tb.IntColumn("id"); len(got) != 1 || got[0] != 7 {
		t.Fatalf("IntColumn = %v", got)
	}
	func() {
		defer func() { recover() }()
		tb.FloatColumn("id")
		t.Fatal("FloatColumn on int column should panic")
	}()
}

func TestCSVRoundTrip(t *testing.T) {
	tb := New("t", sampleSchema())
	tb.MustAppendRow(int64(1), 2.5, "hello")
	tb.MustAppendRow(int64(2), -0.125, "world,with,commas")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("t2", sampleSchema(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	if got.Float(1, 1) != -0.125 || got.Str(1, 2) != "world,with,commas" {
		t.Fatal("round trip mismatch")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", sampleSchema(), strings.NewReader("id,x\n")); err == nil {
		t.Fatal("column count mismatch should error")
	}
	if _, err := ReadCSV("t", sampleSchema(), strings.NewReader("id,wrong,tag\n")); err == nil {
		t.Fatal("column name mismatch should error")
	}
	if _, err := ReadCSV("t", sampleSchema(), strings.NewReader("id,x,tag\nnotanint,1.5,a\n")); err == nil {
		t.Fatal("bad int should error")
	}
	if _, err := ReadCSV("t", sampleSchema(), strings.NewReader("id,x,tag\n1,notafloat,a\n")); err == nil {
		t.Fatal("bad float should error")
	}
}

func TestKindString(t *testing.T) {
	if Float.String() != "float" || Int.String() != "int" || String.String() != "string" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestSportsGenerator(t *testing.T) {
	tb := Sports(5000, 1)
	if tb.NumRows() != 5000 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	so := tb.FloatColumn("strikeouts")
	wins := tb.FloatColumn("wins")
	era := tb.FloatColumn("era")
	for i := range so {
		if so[i] < 0 || wins[i] < 0 || era[i] < 0.5 {
			t.Fatalf("row %d out of domain: so=%v wins=%v era=%v", i, so[i], wins[i], era[i])
		}
	}
	// Strikeouts and wins must be positively correlated (they share skill).
	if corr(so, wins) < 0.3 {
		t.Fatalf("strikeouts-wins correlation = %v, want clearly positive", corr(so, wins))
	}
	// Era is anti-correlated with skill, hence with strikeout rate.
	if corr(so, era) > 0 {
		t.Fatalf("strikeouts-era correlation = %v, want negative", corr(so, era))
	}
	// Right skew: mean above median.
	sm := stats.Summarize(so)
	if sm.Mean <= sm.Median {
		t.Fatalf("strikeouts should be right-skewed: mean %v median %v", sm.Mean, sm.Median)
	}
}

func TestSportsDeterministic(t *testing.T) {
	a := Sports(200, 7)
	b := Sports(200, 7)
	for i := 0; i < a.NumRows(); i++ {
		if a.Float(i, 2) != b.Float(i, 2) {
			t.Fatal("same seed must reproduce the dataset")
		}
	}
	c := Sports(200, 8)
	diff := false
	for i := 0; i < a.NumRows(); i++ {
		if a.Float(i, 2) != c.Float(i, 2) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestNeighborsGenerator(t *testing.T) {
	tb := Neighbors(5000, 2)
	if tb.NumRows() != 5000 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	if tb.NumCols() != NeighborsFeatures+2 {
		t.Fatalf("cols = %d, want %d", tb.NumCols(), NeighborsFeatures+2)
	}
	attacks := tb.IntColumn("attack")
	n1 := 0
	for _, a := range attacks {
		if a != 0 && a != 1 {
			t.Fatalf("attack label %d not binary", a)
		}
		if a == 1 {
			n1++
		}
	}
	frac := float64(n1) / float64(len(attacks))
	if frac < 0.05 || frac > 0.25 {
		t.Fatalf("outlier fraction = %v, want ~0.12", frac)
	}
	// The (f0, f1) plane must contain dense structure: the variance of
	// cluster points should be far below a uniform scatter over [0,100]².
	f, err := tb.Features("f0", "f1")
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 5000 || len(f[0]) != 2 {
		t.Fatalf("feature dims wrong: %d x %d", len(f), len(f[0]))
	}
}

func corr(a, b []float64) float64 {
	ma, mb := stats.Mean(a), stats.Mean(b)
	var num, da, db float64
	for i := range a {
		num += (a[i] - ma) * (b[i] - mb)
		da += (a[i] - ma) * (a[i] - ma)
		db += (b[i] - mb) * (b[i] - mb)
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / (sqrt(da) * sqrt(db))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func BenchmarkSportsGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Sports(10000, 1)
	}
}

func BenchmarkNeighborsGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Neighbors(10000, 1)
	}
}
