package catalog

import (
	"fmt"
	"sync"
	"testing"
)

func testKey(i int) Key {
	return Key{
		Snapshot: fmt.Sprintf("D@%d", i),
		Query:    "q",
		Features: "x,y",
		Plan:     "lss|rf|4|1",
	}
}

// fill materializes the entry with sized artifacts so eviction has bytes
// to account.
func fill(e *Entry, scores int) {
	e.Lock()
	e.Budget = 100
	e.Scores = make(map[int64]float64, scores)
	for i := 0; i < scores; i++ {
		e.Scores[int64(i)] = float64(i)
	}
	e.Unlock()
}

func TestAcquireReleaseAccounting(t *testing.T) {
	c := New(1 << 20)
	e := c.Acquire(testKey(1))
	fill(e, 10)
	c.Release(e, ReuseNone)

	e2 := c.Acquire(testKey(1))
	if e2 != e {
		t.Fatal("second Acquire of the same key returned a different entry")
	}
	c.Release(e2, ReuseDirect)
	e3 := c.Acquire(testKey(1))
	c.Release(e3, ReuseExtension)
	e4 := c.Acquire(testKey(1))
	c.Release(e4, "") // an errored execution records nothing

	s := c.Stats()
	if s.Entries != 1 || s.Misses != 1 || s.Hits != 1 || s.Extensions != 1 {
		t.Errorf("stats = %+v, want 1 entry, 1 miss, 1 hit, 1 extension", s)
	}
	if s.Bytes <= 0 {
		t.Errorf("bytes = %d, want positive after materialization", s.Bytes)
	}
	if got := len(c.Keys()); got != 1 {
		t.Errorf("Keys() len = %d, want 1", got)
	}
}

func TestEvictionLFUAndPins(t *testing.T) {
	c := New(1 << 20)
	// Three entries; entry 1 is used many times (high density), entry 2
	// once, entry 3 stays pinned.
	e1 := c.Acquire(testKey(1))
	fill(e1, 100)
	c.Release(e1, ReuseNone)
	for i := 0; i < 10; i++ {
		c.Release(c.Acquire(testKey(1)), ReuseDirect)
	}
	e2 := c.Acquire(testKey(2))
	fill(e2, 100)
	c.Release(e2, ReuseNone)
	e3 := c.Acquire(testKey(3)) // pinned: no Release yet
	fill(e3, 100)

	// Shrink the budget so only roughly one unpinned entry fits. The
	// low-density entry 2 must go; the pinned entry 3 must survive even
	// though it has the lowest use count.
	c.SetMaxBytes(e1.bytes + 1)
	keys := c.Keys()
	got := make(map[string]bool, len(keys))
	for _, k := range keys {
		got[k.Snapshot] = true
	}
	if got["D@2"] {
		t.Error("low-density entry D@2 survived eviction")
	}
	if !got["D@1"] {
		t.Error("high-density entry D@1 was evicted")
	}
	if !got["D@3"] {
		t.Error("pinned entry D@3 was evicted")
	}
	if s := c.Stats(); s.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	c.Release(e3, ReuseNone)
}

func TestInvalidateDetachesPinnedEntries(t *testing.T) {
	c := New(1 << 20)
	e := c.Acquire(testKey(1))
	fill(e, 10)

	removed := c.Invalidate(func(k Key) bool { return k.Snapshot == "D@1" })
	if removed != 1 {
		t.Fatalf("Invalidate removed %d, want 1", removed)
	}
	if s := c.Stats(); s.Entries != 0 || s.Evictions != 1 {
		t.Errorf("stats after invalidate = %+v, want 0 entries, 1 eviction", s)
	}
	// The in-flight execution finishes on the detached entry; its Release
	// must not resurrect it or corrupt the byte accounting.
	c.Release(e, ReuseNone)
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Errorf("detached release resurrected state: %+v", s)
	}
	// A later Acquire under the same key starts from an empty entry.
	e2 := c.Acquire(testKey(1))
	if e2 == e || e2.Budget != 0 {
		t.Error("Acquire after invalidation did not return a fresh empty entry")
	}
	c.Release(e2, "")
}

func TestLabelSpaceLRUCap(t *testing.T) {
	c := New(1 << 20)
	e := c.Acquire(testKey(1))
	e.Lock()
	first := e.Labels("fp-0", c.Clock())
	first[7] = true
	for i := 1; i <= maxLabelSpaces; i++ { // one past the cap
		e.Labels(fmt.Sprintf("fp-%d", i), c.Clock())
	}
	if len(e.spaces) != maxLabelSpaces {
		t.Errorf("spaces = %d, want capped at %d", len(e.spaces), maxLabelSpaces)
	}
	if _, ok := e.spaces["fp-0"]; ok {
		t.Error("least recently used space fp-0 survived the cap")
	}
	// Re-requesting the evicted fingerprint yields a fresh empty memo.
	if again := e.Labels("fp-0", c.Clock()); len(again) != 0 {
		t.Error("re-created label space kept stale labels")
	}
	e.Unlock()
	c.Release(e, "")
}

func TestKeySnapshotTables(t *testing.T) {
	pairs, ok := Key{Snapshot: "a@1,b@22"}.SnapshotTables()
	if !ok || len(pairs) != 2 || pairs["a"] != 1 || pairs["b"] != 22 {
		t.Errorf("SnapshotTables = %v, %v", pairs, ok)
	}
	for _, bad := range []string{"", "a", "a@", "a@x", "@1", "a@1,b"} {
		if _, ok := (Key{Snapshot: bad}).SnapshotTables(); ok {
			t.Errorf("SnapshotTables(%q) parsed, want ok=false", bad)
		}
	}
}

func TestConcurrentAcquireReleaseInvalidate(t *testing.T) {
	c := New(1 << 14) // small budget so eviction churns during the run
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := c.Acquire(testKey(i % 5))
				e.Lock()
				if e.Budget == 0 {
					e.Budget = 10
					e.Scores = map[int64]float64{int64(i): 1}
				}
				e.Labels(fmt.Sprintf("fp-%d", g), c.Clock())[int64(i)] = true
				e.Unlock()
				c.Release(e, ReuseDirect)
				if i%50 == 0 {
					c.Invalidate(func(k Key) bool { return k.Snapshot == fmt.Sprintf("D@%d", g%5) })
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Bytes < 0 {
		t.Errorf("negative byte accounting after churn: %+v", s)
	}
	if s.Hits != 8*200 {
		t.Errorf("hits = %d, want %d", s.Hits, 8*200)
	}
}
