// Package catalog materializes learn-phase artifacts — hash-selected learn
// samples (implicitly, via per-key labels), trained classifiers, score
// vectors, and stratum designs — and reuses them across queries. Entries
// are keyed by (dataset snapshot, shard, Q1 shape, feature-column set,
// estimation plan); lookups classify into direct reuse (the plan matches:
// skip sampling and learning, relabel only if the predicate differs),
// extension (the plan partially covers the request: top up the hash
// bottom-k sample — a strict prefix extension, hence deterministic — and
// retrain), or materialization on a miss. Eviction is size-weighted LFU
// with pin protection; snapshot invalidation hooks let the serving layer
// drop entries the moment their data version is superseded.
//
// The package owns storage, accounting, and eviction only. The estimation
// algorithms that fill and read entries live in repro/lsample, which is
// also where the determinism contract (reused estimates byte-identical to
// their from-scratch equivalents) is enforced and tested.
package catalog

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/learn"
)

// Reuse classifications recorded per execution. Release maps them onto the
// hit/extension/miss counters.
const (
	ReuseNone      = "none"      // entry was empty: this execution materialized it
	ReuseDirect    = "direct"    // plan fully covered: sampling+learning skipped
	ReuseExtension = "extension" // plan partially covered: sample topped up / retrained
)

// Key identifies one materialized plan. All components are canonical
// strings so keys are comparable and printable; String joins them with an
// unambiguous separator.
type Key struct {
	// Snapshot is the sorted "name@snapID,…" identity of every table
	// snapshot the query reads. Any data change produces a different
	// snapshot identity, so stale entries can never serve new data.
	Snapshot string
	// Shard scopes the entry to one data partition ("" = unsharded). A
	// sharded executor sets it to the shard's identity so per-shard
	// artifacts compose without colliding — the key scheme is designed for
	// the planned scale-out partitioning.
	Shard string
	// Query is the Q1 shape: the canonical object-enumeration query (Q2)
	// fingerprinted with only the parameters Q2 itself reads. Predicate-only
	// (Q3) parameters are deliberately excluded so predicate variants of
	// the same shape share an entry.
	Query string
	// Features is the sorted feature-column set ("-" for feature-free
	// plans).
	Features string
	// Plan is the estimator identity: method, classifier, strata, seed —
	// everything that changes the learned artifacts. The labeling budget is
	// deliberately NOT part of the plan: budget changes are what the
	// extension path absorbs.
	Plan string
}

// String renders the canonical map key.
func (k Key) String() string {
	return k.Snapshot + "\x1f" + k.Shard + "\x1f" + k.Query + "\x1f" + k.Features + "\x1f" + k.Plan
}

// SnapshotTables parses the Snapshot component into (table name, snapshot
// id) pairs; malformed parts yield ok=false. Invalidation hooks use it to
// match entries against the currently served snapshot set.
func (k Key) SnapshotTables() (pairs map[string]uint64, ok bool) {
	pairs = make(map[string]uint64)
	for _, part := range strings.Split(k.Snapshot, ",") {
		name, idStr, found := strings.Cut(part, "@")
		if !found || name == "" {
			return nil, false
		}
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			return nil, false
		}
		pairs[name] = id
	}
	return pairs, true
}

// Entry is one materialized plan. The artifact fields are guarded by the
// entry mutex (Lock/Unlock), which executions hold for the whole
// estimation — concurrent identical plans therefore serialize on the entry
// and the followers reuse the leader's labels, which is exactly the
// coalescing a shared catalog wants. Accounting fields are guarded by the
// owning catalog's mutex.
type Entry struct {
	// Key is the identity the entry was acquired under.
	Key Key

	mu sync.Mutex

	// Budget is the labeling budget the artifacts were materialized at
	// (0 = empty entry awaiting materialization).
	Budget int
	// KLearn is the learn-sample size at that budget.
	KLearn int
	// TrainFP is the full predicate fingerprint whose labels trained the
	// classifier (direct reuse under a different fingerprint is legitimate:
	// scores are only a stratification function, so estimates stay
	// unbiased; TrainFP records the provenance).
	TrainFP string
	// Forest is the trained classifier (nil for feature-free plans).
	Forest learn.Classifier
	// Scores maps object key → classifier score, covering every object of
	// the materialized plan's enumeration.
	Scores map[int64]float64
	// Cuts are the equal-count stratum boundaries over Scores.
	Cuts []float64

	// spaces holds per-predicate-fingerprint label memos: labels are pure
	// functions of (snapshot, key, predicate), so a memo hit is
	// byte-identical to a fresh evaluation.
	spaces map[string]*labelSpace

	// accounting, guarded by the catalog mutex
	bytes int64
	uses  int64
	last  int64
	pins  int
}

// labelSpace is the label memo for one predicate fingerprint.
type labelSpace struct {
	labels map[int64]bool
	last   int64
}

// maxLabelSpaces bounds per-entry predicate variants; the least recently
// used space is dropped when a new fingerprint would exceed it.
const maxLabelSpaces = 16

// Lock acquires the entry's artifact mutex for one execution.
func (e *Entry) Lock() { e.mu.Lock() }

// Unlock releases the artifact mutex.
func (e *Entry) Unlock() { e.mu.Unlock() }

// Labels returns the label memo for the given predicate fingerprint,
// creating it (and evicting the least recently used space past the cap) on
// first use. Callers must hold the entry lock.
func (e *Entry) Labels(fp string, clock int64) map[int64]bool {
	if e.spaces == nil {
		e.spaces = make(map[string]*labelSpace)
	}
	sp, ok := e.spaces[fp]
	if !ok {
		if len(e.spaces) >= maxLabelSpaces {
			oldFP, oldLast := "", int64(0)
			for f, s := range e.spaces {
				if oldFP == "" || s.last < oldLast {
					oldFP, oldLast = f, s.last
				}
			}
			delete(e.spaces, oldFP)
		}
		sp = &labelSpace{labels: make(map[int64]bool)}
		e.spaces[fp] = sp
	}
	sp.last = clock
	return sp.labels
}

// sizeLocked estimates the entry's resident bytes; callers must hold the
// entry mutex. Map overheads are approximated per element — the point is
// proportionality for the eviction policy, not byte-exact accounting.
func (e *Entry) sizeLocked() int64 {
	b := int64(256)
	b += int64(len(e.Scores)) * 24
	b += int64(len(e.Cuts)) * 8
	for _, sp := range e.spaces {
		b += 64 + int64(len(sp.labels))*17
	}
	if e.Forest != nil {
		if s, ok := e.Forest.(interface{ MemoryFootprint() int64 }); ok {
			b += s.MemoryFootprint()
		} else {
			b += 1 << 14 // flat estimate for classifiers without a sizer
		}
	}
	return b
}

// Stats is a point-in-time accounting snapshot.
type Stats struct {
	Entries    int   // materialized plans currently resident
	Bytes      int64 // estimated resident bytes across all entries
	Hits       int64 // direct-reuse executions
	Extensions int64 // extension executions (sample top-up / retrain)
	Misses     int64 // materializing executions
	Evictions  int64 // entries removed by the byte budget or invalidation
}

// Catalog is a thread-safe store of materialized plans with a byte budget.
type Catalog struct {
	mu       sync.Mutex
	maxBytes int64
	entries  map[string]*Entry
	bytes    int64
	clock    int64

	hits, exts, misses, evictions int64
}

// DefaultMaxBytes is the byte budget used when New is given a non-positive
// one.
const DefaultMaxBytes = 64 << 20

// New returns an empty catalog with the given byte budget (<= 0 selects
// DefaultMaxBytes).
func New(maxBytes int64) *Catalog {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Catalog{maxBytes: maxBytes, entries: make(map[string]*Entry)}
}

// SetMaxBytes adjusts the byte budget and evicts down to it immediately.
func (c *Catalog) SetMaxBytes(maxBytes int64) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	c.mu.Lock()
	c.maxBytes = maxBytes
	c.evictLocked()
	c.mu.Unlock()
}

// Acquire returns the entry for k, creating an empty one on a miss. The
// entry is pinned (exempt from eviction) until the matching Release. The
// caller then takes the entry lock, inspects/updates the artifacts, and
// finally calls Release with the reuse classification.
func (c *Catalog) Acquire(k Key) *Entry {
	ks := k.String()
	c.mu.Lock()
	e, ok := c.entries[ks]
	if !ok {
		e = &Entry{Key: k}
		c.entries[ks] = e
	}
	c.clock++
	e.uses++
	e.last = c.clock
	e.pins++
	c.mu.Unlock()
	return e
}

// Clock returns a monotonically increasing stamp for label-space recency.
func (c *Catalog) Clock() int64 {
	c.mu.Lock()
	c.clock++
	v := c.clock
	c.mu.Unlock()
	return v
}

// Release unpins the entry, re-accounts its size, records the execution's
// reuse classification (one of the Reuse constants; "" records nothing,
// e.g. after an error), and enforces the byte budget. An entry that was
// invalidated while pinned is simply dropped from accounting.
//
// The size is measured before taking the catalog mutex: executions hold
// the entry lock across the whole estimation and call Clock() under it, so
// the lock order is entry.mu → catalog.mu, never the reverse. A concurrent
// mutation between measuring and accounting only makes the size estimate
// momentarily stale; that execution's own Release re-measures.
func (c *Catalog) Release(e *Entry, reuse string) {
	e.mu.Lock()
	size := e.sizeLocked()
	e.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	switch reuse {
	case ReuseDirect:
		c.hits++
	case ReuseExtension:
		c.exts++
	case ReuseNone:
		c.misses++
	}
	if e.pins > 0 {
		e.pins--
	}
	if cur, ok := c.entries[e.Key.String()]; ok && cur == e {
		c.bytes += size - e.bytes
		e.bytes = size
		c.evictLocked()
	}
}

// evictLocked enforces the byte budget: while over it, the unpinned entry
// with the lowest uses/bytes density (oldest on ties) is dropped. Pinned
// entries — executions in flight — are never evicted.
func (c *Catalog) evictLocked() {
	for c.bytes > c.maxBytes {
		var victim *Entry
		var victimKey string
		var victimScore float64
		for ks, e := range c.entries {
			if e.pins > 0 {
				continue
			}
			score := float64(e.uses) / float64(e.bytes+1)
			if victim == nil || score < victimScore ||
				(score == victimScore && e.last < victim.last) {
				victim, victimKey, victimScore = e, ks, score
			}
		}
		if victim == nil {
			return // everything resident is pinned; try again on next Release
		}
		delete(c.entries, victimKey)
		c.bytes -= victim.bytes
		c.evictions++
	}
}

// Invalidate drops every entry whose key matches pred, returning how many
// were removed. Pinned entries are removed from the map too — in-flight
// executions keep their reference and finish on the detached entry, whose
// updates are then simply dropped.
func (c *Catalog) Invalidate(pred func(Key) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for ks, e := range c.entries {
		if pred(e.Key) {
			delete(c.entries, ks)
			c.bytes -= e.bytes
			c.evictions++
			removed++
		}
	}
	return removed
}

// Stats returns the current accounting snapshot.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:    len(c.entries),
		Bytes:      c.bytes,
		Hits:       c.hits,
		Extensions: c.exts,
		Misses:     c.misses,
		Evictions:  c.evictions,
	}
}

// Keys returns the resident keys, sorted by their canonical string form
// (diagnostics and tests).
func (c *Catalog) Keys() []Key {
	c.mu.Lock()
	out := make([]Key, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e.Key)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
