package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/xrand"
	"repro/lsample"
)

// groupedSkybandQuery is the GROUP BY form of the skyband query: per-region
// counts of objects with fewer than k dominators.
const groupedSkybandQuery = `SELECT region, COUNT(*) FROM (
	SELECT o1.id, o1.region FROM G o1, G o2
	WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
	GROUP BY o1.id, o1.region HAVING COUNT(*) < k
) GROUP BY region`

// groupedTestTable builds G(id, x, y, region) with n points over three
// regions.
func groupedTestTable(n int, seed uint64) *lsample.Table {
	r := xrand.New(seed)
	t, err := lsample.NewTable("G", "id:int,x:float,y:float,region:string")
	if err != nil {
		panic(err)
	}
	regions := []string{"east", "north", "east", "west", "east"}
	for i := 0; i < n; i++ {
		if err := t.AppendRow(int64(i), r.Float64()*100, r.Float64()*100, regions[i%len(regions)]); err != nil {
			panic(err)
		}
	}
	return t
}

func TestCountGroupedRequest(t *testing.T) {
	const n, k = 120, 12
	reg := NewRegistry()
	reg.Register(groupedTestTable(n, 7))
	svc := New(reg, Options{})
	res, err := svc.Count(&CountRequest{
		SQL:    groupedSkybandQuery,
		Params: map[string]any{"k": float64(k)},
		Method: "lss",
		Budget: 0.3,
		Seed:   5,
		Exact:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.GroupCols; len(got) != 1 || got[0] != "region" {
		t.Fatalf("group_cols = %v", got)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(res.Groups))
	}
	keys := make([]string, len(res.Groups))
	total, objects := 0.0, 0
	for i, g := range res.Groups {
		keys[i] = g.Key[0]
		total += g.Estimate
		objects += g.Objects
		if g.TrueCount == nil {
			t.Fatalf("group %v: no true_count under exact", g.Key)
		}
		if !g.HasCI {
			t.Fatalf("group %v: no CI", g.Key)
		}
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("groups not ordered: %v", keys)
	}
	if total != res.Estimate {
		t.Fatalf("sum of groups %v != estimate %v", total, res.Estimate)
	}
	if res.TrueCount == nil {
		t.Fatal("exact grouped request has no top-level true_count")
	}
	trueSum := 0
	for _, g := range res.Groups {
		trueSum += *g.TrueCount
	}
	if *res.TrueCount != trueSum {
		t.Fatalf("top-level true_count %d != per-group sum %d", *res.TrueCount, trueSum)
	}
	if objects != res.Objects || objects != n {
		t.Fatalf("objects: groups %d, result %d, want %d", objects, res.Objects, n)
	}
}

func TestCountGroupedCachedAndDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.Register(groupedTestTable(100, 9))
	svc := New(reg, Options{})
	req := func() *CountRequest {
		return &CountRequest{
			SQL:    groupedSkybandQuery,
			Params: map[string]any{"k": float64(10)},
			Method: "srs",
			Budget: 0.2,
			Seed:   3,
		}
	}
	a, err := svc.Count(req())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cached {
		t.Fatal("first grouped request reported cached")
	}
	b, err := svc.Count(req())
	if err != nil {
		t.Fatal(err)
	}
	if !b.Cached {
		t.Fatal("second identical grouped request missed the cache")
	}
	aj, _ := json.Marshal(a.Groups)
	bj, _ := json.Marshal(b.Groups)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("cached grouped rows differ:\n%s\nvs\n%s", aj, bj)
	}
	// The plain (ungrouped) inner query must not share a cache entry with
	// the grouped form.
	inner := &CountRequest{
		SQL: `SELECT o1.id FROM G o1, G o2
			WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
			GROUP BY o1.id, o1.region HAVING COUNT(*) < k`,
		Params: map[string]any{"k": float64(10)},
		Method: "srs",
		Budget: 0.2,
		Seed:   3,
	}
	c, err := svc.Count(inner)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cached || len(c.Groups) != 0 {
		t.Fatalf("plain inner query hit the grouped cache entry: cached=%t groups=%d", c.Cached, len(c.Groups))
	}
}

func TestHTTPGroupedCount(t *testing.T) {
	reg := NewRegistry()
	reg.Register(groupedTestTable(100, 11))
	svc := New(reg, Options{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body, _ := json.Marshal(CountRequest{
		SQL:    groupedSkybandQuery,
		Params: map[string]any{"k": 10},
		Method: "srs",
		Budget: 0.25,
		Seed:   2,
	})
	resp, err := http.Post(srv.URL+"/v1/count", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var res CountResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 3 || len(res.GroupCols) != 1 {
		t.Fatalf("grouped HTTP response: group_cols=%v groups=%d", res.GroupCols, len(res.Groups))
	}
	for _, g := range res.Groups {
		if g.Objects <= 0 || g.Estimate < 0 {
			t.Fatalf("bad group row %+v", g)
		}
	}
}
