package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/lsample"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/count     JSON CountRequest -> CountResult
//	GET  /v1/datasets  list registered datasets
//	POST /v1/datasets  upload a CSV dataset (?name=D&schema=id:int,x:float)
//	GET  /v1/stats     metrics snapshot
//	GET  /healthz      liveness probe
//
// Every error response is the JSON envelope
//
//	{"error": {"code": "...", "message": "..."}}
//
// with codes bad_request (400), payload_too_large (413), canceled (499),
// unavailable (503), and internal (500).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/count", s.handleCount)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("POST /v1/datasets", s.handleUploadDataset)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Service) handleCount(w http.ResponseWriter, r *http.Request) {
	var req CountRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, clientErr("invalid JSON body", err))
		return
	}
	res, err := s.CountCtx(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Registry.List())
}

func (s *Service) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, badf("missing ?name="))
		return
	}
	t, err := lsample.ReadCSV(name, r.URL.Query().Get("schema"),
		http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes))
	if err != nil {
		writeError(w, mapSDKErr(err))
		return
	}
	v := s.Registry.Register(t)
	writeJSON(w, http.StatusOK, DatasetInfo{
		Name: name, Rows: t.NumRows(), Cols: t.NumCols(), Version: v,
	})
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Metrics     MetricsSnapshot `json:"metrics"`
		CachedItems int             `json:"cached_items"`
		Datasets    []DatasetInfo   `json:"datasets"`
	}{s.Metrics.Snapshot(), s.cache.len(), s.Registry.List()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a failed write
}

// clientErr marks a body-processing failure as a bad request, except for
// size-limit violations, which must keep their type so writeError can map
// them to 413.
func clientErr(context string, err error) error {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return err
	}
	return badf("%s: %v", context, err)
}

// errorEnvelope is the uniform error body every endpoint returns.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// statusClientClosedRequest is the de-facto status (nginx's 499) for a
// request whose client went away; no standard code fits and the response
// is unlikely to be delivered anyway.
const statusClientClosedRequest = 499

func writeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	status, code := http.StatusInternalServerError, "internal"
	switch {
	case errors.As(err, &tooBig):
		status, code = http.StatusRequestEntityTooLarge, "payload_too_large"
	case errors.Is(err, ErrBadRequest):
		status, code = http.StatusBadRequest, "bad_request"
	case errors.Is(err, ErrBusy):
		status, code = http.StatusServiceUnavailable, "unavailable"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status, code = statusClientClosedRequest, "canceled"
	}
	writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: err.Error()}})
}
