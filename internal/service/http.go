package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/dataset"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/count     JSON CountRequest -> CountResult
//	GET  /v1/datasets  list registered datasets
//	POST /v1/datasets  upload a CSV dataset (?name=D&schema=id:int,x:float)
//	GET  /v1/stats     metrics snapshot
//	GET  /healthz      liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/count", s.handleCount)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("POST /v1/datasets", s.handleUploadDataset)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Service) handleCount(w http.ResponseWriter, r *http.Request) {
	var req CountRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, clientErr("invalid JSON body", err))
		return
	}
	res, err := s.CountCtx(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Registry.List())
}

func (s *Service) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, badf("missing ?name="))
		return
	}
	schema, err := ParseSchema(r.URL.Query().Get("schema"))
	if err != nil {
		writeError(w, err)
		return
	}
	t, err := dataset.ReadCSV(name, schema, http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes))
	if err != nil {
		writeError(w, clientErr("reading CSV", err))
		return
	}
	v := s.Registry.Register(t)
	writeJSON(w, http.StatusOK, DatasetInfo{
		Name: name, Rows: t.NumRows(), Cols: t.NumCols(), Version: v,
	})
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Metrics     MetricsSnapshot `json:"metrics"`
		CachedItems int             `json:"cached_items"`
		Datasets    []DatasetInfo   `json:"datasets"`
	}{s.Metrics.Snapshot(), s.cache.len(), s.Registry.List()})
}

// ParseSchema parses the compact "name:kind,name:kind" schema syntax used
// by the upload endpoint and the lscount -schema flag. Kinds: int, float,
// string.
func ParseSchema(spec string) (dataset.Schema, error) {
	if spec == "" {
		return nil, badf("missing schema (want name:kind,name:kind with kinds int|float|string)")
	}
	var schema dataset.Schema
	for _, part := range strings.Split(spec, ",") {
		name, kind, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok || name == "" {
			return nil, badf("schema entry %q is not name:kind", part)
		}
		var k dataset.Kind
		switch kind {
		case "int":
			k = dataset.Int
		case "float":
			k = dataset.Float
		case "string":
			k = dataset.String
		default:
			return nil, badf("schema entry %q: unknown kind %q", part, kind)
		}
		schema = append(schema, dataset.Column{Name: name, Kind: k})
	}
	return schema, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a failed write
}

// clientErr marks a body-processing failure as a bad request, except for
// size-limit violations, which must keep their type so writeError can map
// them to 413.
func clientErr(context string, err error) error {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return err
	}
	return badf("%s: %v", context, err)
}

func writeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	status := http.StatusInternalServerError
	switch {
	case errors.As(err, &tooBig):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrBusy):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": fmt.Sprint(err)})
}
