package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/lsample"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/count     JSON CountRequest -> CountResult
//	POST /v1/shard     one shard's estimation primitive (worker role);
//	                   JSON ShardRequest -> ShardResponse, 409
//	                   version_mismatch when the coordinator's pinned
//	                   dataset versions no longer match
//	GET  /v1/datasets  list registered datasets
//	POST /v1/datasets  upload a CSV dataset (?name=D&schema=id:int,x:float);
//	                   add &live=1 (and optionally &key=id) to register it
//	                   as a live dataset accepting /v1/ingest deltas
//	POST /v1/ingest    stream a delta batch into a live dataset
//	                   (?name=D, body text/csv or application/x-ndjson)
//	GET  /v1/stats     metrics snapshot (including ingest counters and
//	                   latency histogram buckets)
//	GET  /v1/traces    completed request traces, newest first (?limit=N)
//	GET  /metrics      Prometheus text-format metrics exposition
//	                   (absent when Options.DisableMetrics)
//	GET  /healthz      liveness probe
//
// POST /v1/count and /v1/shard honor an inbound W3C traceparent header:
// the request's root span joins the remote trace, and a sampled remote
// decision forces recording — which is how a coordinator stitches its
// workers' spans into one tree.
//
// Every error response is the JSON envelope
//
//	{"error": {"code": "...", "message": "..."}}
//
// with codes bad_request (400), payload_too_large (413), canceled (499),
// overloaded (503, admission control), unavailable_durability (503, the
// write-ahead log cannot acknowledge writes — nothing was applied, retry
// after the Retry-After hint), and internal (500). Both 503s carry a
// Retry-After header with a wait hint in seconds.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/count", s.handleCount)
	mux.HandleFunc("POST /v1/shard", s.handleShard)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("POST /v1/datasets", s.handleUploadDataset)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	if !s.opts.DisableMetrics {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Service) handleCount(w http.ResponseWriter, r *http.Request) {
	var req CountRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, clientErr("invalid JSON body", err))
		return
	}
	res, err := s.CountCtx(traceCtx(r), &req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// traceCtx returns the request context carrying any inbound traceparent,
// so the next StartRequest joins the remote trace.
func traceCtx(r *http.Request) context.Context {
	ctx := r.Context()
	if tp, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		ctx = obs.WithRemoteParent(ctx, tp)
	}
	return ctx
}

// handleMetrics serves the Prometheus text-format exposition.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.prom.Expose(w) //nolint:errcheck // nothing to do about a failed write
}

// handleTraces pages the completed-trace ring, newest first.
func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, badf("invalid ?limit=%q", v))
			return
		}
		limit = n
	}
	traces := s.tracer.Traces(limit)
	writeJSON(w, http.StatusOK, struct {
		Traces []*obs.SpanData `json:"traces"`
	}{traces})
}

func (s *Service) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Registry.List())
}

func (s *Service) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	name := qp.Get("name")
	if name == "" {
		s.writeError(w, badf("missing ?name="))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	if qp.Get("live") == "1" || qp.Get("live") == "true" {
		// Live upload: the CSV seeds a mutable dataset that /v1/ingest can
		// keep appending to. The body is stream-parsed in bounded batches,
		// never buffered whole. With a data directory configured the dataset
		// is durable: the seed rows are logged and fsynced as they apply.
		lt, err := s.openLiveUpload(name, qp.Get("schema"), qp.Get("key"))
		if err != nil {
			s.writeError(w, mapSDKErr(err))
			return
		}
		if _, err := lt.ApplyDelta("csv", body, 0); err != nil {
			s.writeError(w, mapSDKErr(err))
			return
		}
		v := s.RegisterLiveTable(lt)
		writeJSON(w, http.StatusOK, DatasetInfo{
			Name: name, Rows: lt.NumRows(), Cols: lt.NumCols(), Version: v, Live: true,
		})
		return
	}
	t, err := lsample.ReadCSV(name, qp.Get("schema"), body)
	if err != nil {
		s.writeError(w, mapSDKErr(err))
		return
	}
	v := s.RegisterTable(t)
	writeJSON(w, http.StatusOK, DatasetInfo{
		Name: name, Rows: t.NumRows(), Cols: t.NumCols(), Version: v,
	})
}

// handleIngest streams a delta into a live dataset. The format comes from
// ?format= when present, otherwise from the Content-Type (text/csv or
// application/x-ndjson; CSV is the default). The body is parsed and applied
// in bounded batches under the usual upload size cap.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	name := qp.Get("name")
	if name == "" {
		s.writeError(w, badf("missing ?name="))
		return
	}
	format := qp.Get("format")
	if format == "" {
		switch ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";"); strings.TrimSpace(ct) {
		case "application/x-ndjson", "application/ndjson", "application/jsonl":
			format = "ndjson"
		default:
			format = "csv"
		}
	}
	res, err := s.Ingest(name, format, http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Metrics     MetricsSnapshot      `json:"metrics"`
		CachedItems int                  `json:"cached_items"`
		Catalog     lsample.CatalogStats `json:"catalog"`
		Datasets    []DatasetInfo        `json:"datasets"`
	}{s.Metrics.Snapshot(), s.cache.len(), s.CatalogStats(), s.Registry.List()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a failed write
}

// clientErr marks a body-processing failure as a bad request, except for
// size-limit violations, which must keep their type so writeError can map
// them to 413.
func clientErr(context string, err error) error {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return err
	}
	return badf("%s: %v", context, err)
}

// errorEnvelope is the uniform error body every endpoint returns.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// statusClientClosedRequest is the de-facto status (nginx's 499) for a
// request whose client went away; no standard code fits and the response
// is unlikely to be delivered anyway.
const statusClientClosedRequest = 499

func (s *Service) writeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	status, code := http.StatusInternalServerError, "internal"
	switch {
	case errors.As(err, &tooBig):
		status, code = http.StatusRequestEntityTooLarge, "payload_too_large"
	case errors.Is(err, ErrBadRequest):
		status, code = http.StatusBadRequest, "bad_request"
	case errors.Is(err, ErrDurability):
		// Storage cannot acknowledge writes right now; nothing was applied,
		// so the identical request is safe to retry after a short wait.
		status, code = http.StatusServiceUnavailable, "unavailable_durability"
	case errors.Is(err, ErrBusy):
		status, code = http.StatusServiceUnavailable, "overloaded"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status, code = statusClientClosedRequest, "canceled"
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int(max(1, s.opts.RetryAfter/time.Second))))
	}
	writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: err.Error()}})
}
