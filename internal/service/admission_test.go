package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

func mustAcquire(t *testing.T, a *admitter, key string) {
	t.Helper()
	if err := a.acquire(context.Background(), key, time.Now().Add(time.Second)); err != nil {
		t.Fatalf("acquire %q: %v", key, err)
	}
}

// TestAdmitterPerDatasetFairness pins the head-of-line property: a dataset
// at its per-key cap queues, while a request for another dataset — which
// arrived later — is admitted through the remaining global capacity.
func TestAdmitterPerDatasetFairness(t *testing.T) {
	a := newAdmitter(2, 1, 8)
	mustAcquire(t, a, "A") // A is now at its per-dataset cap

	queuedA := make(chan error, 1)
	go func() {
		queuedA <- a.acquire(context.Background(), "A", time.Now().Add(5*time.Second))
	}()
	// Wait until the A request is actually queued.
	for i := 0; ; i++ {
		a.mu.Lock()
		n := a.queued["A"]
		a.mu.Unlock()
		if n == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("second A request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// B skips over the queued A waiter: global capacity remains.
	mustAcquire(t, a, "B")

	// Releasing B must NOT grant the A waiter (A is still at cap) …
	a.release("B")
	select {
	case err := <-queuedA:
		t.Fatalf("A waiter granted while A at per-dataset cap (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	// … but releasing A does.
	a.release("A")
	if err := <-queuedA; err != nil {
		t.Fatalf("queued A waiter after release: %v", err)
	}
	a.release("A")
}

// TestAdmitterShedsDeepQueues pins queue-depth shedding: once a dataset's
// queue is maxQueued deep, further arrivals fail immediately with ErrBusy
// instead of waiting out a deadline they cannot meet.
func TestAdmitterShedsDeepQueues(t *testing.T) {
	a := newAdmitter(1, 1, 2)
	mustAcquire(t, a, "A")
	for i := 0; i < 2; i++ {
		go a.acquire(context.Background(), "A", time.Now().Add(10*time.Second)) //nolint:errcheck
	}
	for i := 0; ; i++ {
		a.mu.Lock()
		n := a.queued["A"]
		a.mu.Unlock()
		if n == 2 {
			break
		}
		if i > 1000 {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	err := a.acquire(context.Background(), "A", time.Now().Add(10*time.Second))
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("overdeep queue: err = %v, want ErrBusy", err)
	}
	if e := time.Since(start); e > time.Second {
		t.Fatalf("shed took %v, want immediate", e)
	}
}

// TestAdmitterDeadline pins deadline-aware rejection and the context path.
func TestAdmitterDeadline(t *testing.T) {
	a := newAdmitter(1, 1, 8)
	mustAcquire(t, a, "A")

	if err := a.acquire(context.Background(), "B", time.Now().Add(30*time.Millisecond)); !errors.Is(err, ErrBusy) {
		t.Fatalf("deadline expiry: err = %v, want ErrBusy", err)
	}
	// An already-expired deadline rejects without queueing.
	if err := a.acquire(context.Background(), "B", time.Now().Add(-time.Second)); !errors.Is(err, ErrBusy) {
		t.Fatalf("expired deadline: err = %v, want ErrBusy", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.acquire(ctx, "B", time.Now().Add(time.Minute)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: err = %v, want context.Canceled", err)
	}
	// Abandoned waiters must not leak queue accounting.
	a.mu.Lock()
	leaked := len(a.queued)
	a.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("queued accounting leaked %d keys", leaked)
	}
	a.release("A")
	mustAcquire(t, a, "B") // the slot is reusable after the failures
	a.release("B")
}

// TestAdmitterDrain pins shutdown semantics: drain takes every slot
// (bypassing per-dataset caps) and new acquires fail afterwards.
func TestAdmitterDrain(t *testing.T) {
	a := newAdmitter(3, 1, 8)
	mustAcquire(t, a, "A")
	done := make(chan error, 1)
	go func() { done <- a.drain(context.Background()) }()
	select {
	case err := <-done:
		t.Fatalf("drain finished with a slot still held (err=%v)", err)
	case <-time.After(30 * time.Millisecond):
	}
	a.release("A")
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := a.acquire(context.Background(), "A", time.Now().Add(20*time.Millisecond)); !errors.Is(err, ErrBusy) {
		t.Fatalf("acquire after drain: err = %v, want ErrBusy", err)
	}
}

// TestCountDegradedUnderOverload pins the deadline-degradation contract: a
// request that opts in via Degrade gets a small-budget SRS answer with a
// confidence interval instead of a 503, marked Degraded and never cached.
func TestCountDegradedUnderOverload(t *testing.T) {
	svc := newTestService(t, 400, Options{MaxInFlight: 1, QueueTimeout: 20 * time.Millisecond})
	release := occupyAdmission(t, svc)

	req := &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Method: "lss", Seed: 3, Degrade: true}
	res, err := svc.Count(req)
	if err != nil {
		t.Fatalf("degraded count: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked Degraded")
	}
	if !res.HasCI {
		t.Fatal("degraded answer has no confidence interval")
	}
	if res.Method != "srs" {
		t.Fatalf("degraded method = %q, want srs", res.Method)
	}
	if got := svc.Metrics.Degraded.Load(); got != 1 {
		t.Fatalf("Degraded metric = %d, want 1", got)
	}
	if got := svc.Metrics.Rejected.Load(); got != 0 {
		t.Fatalf("Rejected metric = %d, want 0 (the request was served)", got)
	}
	if n := svc.cache.len(); n != 0 {
		t.Fatalf("degraded answer was cached (%d entries)", n)
	}

	// Without the opt-in the same overload is still a plain ErrBusy.
	req2 := &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 9}, Seed: 3}
	if _, err := svc.Count(req2); !errors.Is(err, ErrBusy) {
		t.Fatalf("non-degrade request: err = %v, want ErrBusy", err)
	}

	// After load subsides, the degraded result must not shadow the real
	// one: the same request computes (and caches) a full answer.
	release()
	full, err := svc.Count(req)
	if err != nil {
		t.Fatalf("full count after release: %v", err)
	}
	if full.Degraded {
		t.Fatal("uncontended request still degraded")
	}
}
