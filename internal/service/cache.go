package service

import (
	"container/list"
	"sync"
	"time"
)

// resultCache is a bounded LRU with per-entry TTL. Estimation results are
// deterministic in (dataset versions, fingerprint, method, budget, seed),
// so caching is semantically lossless; the TTL only bounds staleness of
// wall-clock fields like timing.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ttl time.Duration
	ll  *list.List // front = most recent
	m   map[string]*list.Element
	now func() time.Time // injectable for tests
}

type cacheEntry struct {
	key string
	val *CountResult
	at  time.Time
}

func newResultCache(capacity int, ttl time.Duration) *resultCache {
	return &resultCache{
		cap: capacity,
		ttl: ttl,
		ll:  list.New(),
		m:   make(map[string]*list.Element),
		now: time.Now,
	}
}

// get returns the cached result for key, if present and fresh.
func (c *resultCache) get(key string) (*CountResult, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if c.ttl > 0 && c.now().Sub(e.at) > c.ttl {
		c.ll.Remove(el)
		delete(c.m, key)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.val, true
}

// put stores val under key, evicting the least-recently-used entry when
// over capacity.
func (c *resultCache) put(key string, val *CountResult) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*cacheEntry)
		e.val, e.at = val, c.now()
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, at: c.now()})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached entries (fresh or not).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
