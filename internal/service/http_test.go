package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, n int, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	svc := newTestService(t, n, opts)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHTTPCountConcurrentClientsIdentical(t *testing.T) {
	const clients = 6
	_, ts := newTestServer(t, 100, Options{MaxInFlight: clients})
	req := &CountRequest{
		SQL:     skybandQuery,
		Params:  map[string]any{"k": 8},
		Method:  "lss",
		Budget:  0.25,
		Seed:    11,
		NoCache: true,
	}
	type reply struct {
		res  CountResult
		code int
		err  error
	}
	replies := make([]reply, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/count", "application/json", bytes.NewReader(b))
			if err != nil {
				replies[i].err = err
				return
			}
			defer resp.Body.Close()
			replies[i].code = resp.StatusCode
			replies[i].err = json.NewDecoder(resp.Body).Decode(&replies[i].res)
		}(i)
	}
	wg.Wait()
	for i, r := range replies {
		if r.err != nil {
			t.Fatalf("client %d: %v", i, r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("client %d: status %d", i, r.code)
		}
	}
	ref := replies[0].res
	for i, r := range replies[1:] {
		if r.res.Estimate != ref.Estimate || r.res.Evals != ref.Evals ||
			r.res.CILo != ref.CILo || r.res.CIHi != ref.CIHi {
			t.Errorf("client %d got a different answer for the same seed: %+v vs %+v", i+1, r.res, ref)
		}
	}
}

func TestHTTPCountCachedFlag(t *testing.T) {
	_, ts := newTestServer(t, 80, Options{})
	req := &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Budget: 0.25, Seed: 2}
	var first, second CountResult
	resp, body := postJSON(t, ts.URL+"/v1/count", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts.URL+"/v1/count", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if first.Cached || !second.Cached {
		t.Errorf("cached flags: first=%t second=%t, want false/true", first.Cached, second.Cached)
	}
	if first.Estimate != second.Estimate {
		t.Errorf("cached estimate differs: %v vs %v", second.Estimate, first.Estimate)
	}
}

func TestHTTPStatusCodes(t *testing.T) {
	svc, ts := newTestServer(t, 50, Options{MaxInFlight: 1, QueueTimeout: 20 * time.Millisecond})

	resp, body := postJSON(t, ts.URL+"/v1/count", map[string]any{"sql": "SELEC nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("parse error: status %d, body %s", resp.StatusCode, body)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/count", map[string]any{"sql": skybandQuery, "unknown_field": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown JSON field: status %d", resp.StatusCode)
	}

	release := occupyAdmission(t, svc) // saturate admission
	resp, body = postJSON(t, ts.URL+"/v1/count", &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("saturated: status %d, body %s", resp.StatusCode, body)
	}
	release()

	// Oversized (but syntactically valid) bodies are rejected with 413,
	// not read to completion.
	big := []byte(`{"sql":"` + strings.Repeat("a", 2<<20) + `"}`)
	resp2, err := http.Post(ts.URL+"/v1/count", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("2MiB count body: status %d, want 413", resp2.StatusCode)
	}

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", r.StatusCode)
	}
}

func TestHTTPUploadDatasetAndQuery(t *testing.T) {
	_, ts := newTestServer(t, 10, Options{})

	var csv strings.Builder
	csv.WriteString("id,x,y\n")
	tb := testTable(60, 3)
	for i := 0; i < tb.NumRows(); i++ {
		fmt.Fprintf(&csv, "%d,%g,%g\n", tb.Int(i, 0), tb.Float(i, 1), tb.Float(i, 2))
	}
	resp, err := http.Post(ts.URL+"/v1/datasets?name=U&schema=id:int,x:float,y:float",
		"text/csv", strings.NewReader(csv.String()))
	if err != nil {
		t.Fatal(err)
	}
	var uploaded DatasetInfo
	err = json.NewDecoder(resp.Body).Decode(&uploaded)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	if uploaded.Version == 0 {
		t.Error("upload response did not report the assigned dataset version")
	}

	// The uploaded dataset is immediately queryable.
	q := strings.ReplaceAll(skybandQuery, "D o1, D o2", "U o1, U o2")
	resp2, body := postJSON(t, ts.URL+"/v1/count", &CountRequest{
		SQL: q, Params: map[string]any{"k": 10}, Method: "oracle", Budget: 1,
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("query on uploaded dataset: status %d: %s", resp2.StatusCode, body)
	}

	// Listing includes both tables.
	r, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var list []DatasetInfo
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("datasets = %+v, want D and U", list)
	}

	// Uploads over the configured limit are rejected with 413.
	small := newTestService(t, 10, Options{MaxUploadBytes: 64})
	tsSmall := httptest.NewServer(small.Handler())
	defer tsSmall.Close()
	resp3, err := http.Post(tsSmall.URL+"/v1/datasets?name=Big&schema=id:int",
		"text/csv", strings.NewReader("id\n"+strings.Repeat("1\n", 200)))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: status %d, want 413", resp3.StatusCode)
	}

	// Bad schema specs are client errors.
	for _, bad := range []string{"", "id", "id:blob"} {
		resp, err := http.Post(ts.URL+"/v1/datasets?name=X&schema="+bad, "text/csv", strings.NewReader("id\n1\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("schema %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestHTTPStats(t *testing.T) {
	_, ts := newTestServer(t, 60, Options{})
	req := &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Budget: 0.25, Seed: 2}
	postJSON(t, ts.URL+"/v1/count", req)
	postJSON(t, ts.URL+"/v1/count", req) // cache hit

	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats struct {
		Metrics     MetricsSnapshot `json:"metrics"`
		CachedItems int             `json:"cached_items"`
		Datasets    []DatasetInfo   `json:"datasets"`
	}
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Metrics.Requests != 2 || stats.Metrics.CacheHits != 1 || stats.Metrics.EstimatesRun != 1 {
		t.Errorf("metrics = %+v, want 2 requests / 1 hit / 1 estimate", stats.Metrics)
	}
	if stats.CachedItems != 1 {
		t.Errorf("cached_items = %d, want 1", stats.CachedItems)
	}
	if stats.Metrics.PredicateEvals <= 0 {
		t.Error("predicate_evals not recorded")
	}
	if len(stats.Datasets) != 1 {
		t.Errorf("datasets = %+v", stats.Datasets)
	}
}

func TestHTTPErrorEnvelope(t *testing.T) {
	// Every error response uses the {"error": {"code", "message"}} envelope.
	svc, ts := newTestServer(t, 50, Options{MaxInFlight: 1, QueueTimeout: 20 * time.Millisecond})
	decode := func(body []byte) (code, msg string) {
		t.Helper()
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("error body %q is not the envelope: %v", body, err)
		}
		return env.Error.Code, env.Error.Message
	}

	_, body := postJSON(t, ts.URL+"/v1/count", map[string]any{"sql": "SELEC nope"})
	if code, msg := decode(body); code != "bad_request" || msg == "" {
		t.Errorf("parse error envelope = %q / %q, want bad_request with a message", code, msg)
	}

	release := occupyAdmission(t, svc) // saturate admission
	resp503, body := postJSON(t, ts.URL+"/v1/count", &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}})
	if code, _ := decode(body); code != "overloaded" {
		t.Errorf("saturated envelope code = %q, want overloaded", code)
	}
	if resp503.StatusCode != http.StatusServiceUnavailable || resp503.Header.Get("Retry-After") == "" {
		t.Errorf("saturated response = %d with Retry-After %q, want 503 with a hint",
			resp503.StatusCode, resp503.Header.Get("Retry-After"))
	}
	release()

	resp, err := http.Post(ts.URL+"/v1/datasets?name=X&schema=id:blob", "text/csv", strings.NewReader("id\n1\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if code, _ := decode(b); code != "bad_request" {
		t.Errorf("bad schema envelope code = %q, want bad_request", code)
	}
}

func TestHTTPIntervalField(t *testing.T) {
	// The interval knob reaches the estimator: Wilson and Wald intervals
	// over the same seed differ, occupy distinct cache entries, and
	// unknown names are rejected.
	_, ts := newTestServer(t, 100, Options{})
	base := CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8},
		Method: "srs", Budget: 0.3, Seed: 7}

	var wald, wilson CountResult
	resp, body := postJSON(t, ts.URL+"/v1/count", &base)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wald: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &wald); err != nil {
		t.Fatal(err)
	}
	withIv := base
	withIv.Interval = "wilson"
	resp, body = postJSON(t, ts.URL+"/v1/count", &withIv)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wilson: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &wilson); err != nil {
		t.Fatal(err)
	}
	if wilson.Cached {
		t.Error("wilson request hit the wald cache entry")
	}
	if wilson.Interval != "wilson" || wald.Interval != "wald" {
		t.Errorf("interval echo = %q / %q, want wilson / wald", wilson.Interval, wald.Interval)
	}
	if wald.Estimate != wilson.Estimate {
		t.Errorf("point estimates differ across intervals: %v vs %v", wald.Estimate, wilson.Estimate)
	}
	if wald.CILo == wilson.CILo && wald.CIHi == wilson.CIHi {
		t.Error("Wilson interval identical to Wald; the knob did not reach the estimator")
	}

	bad := base
	bad.Interval = "nope"
	resp, _ = postJSON(t, ts.URL+"/v1/count", &bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown interval: status %d, want 400", resp.StatusCode)
	}
}
