package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/lsample"
)

// newWorkerServer starts one worker process: a Service over its own copy
// of the given tables, exposed over HTTP.
func newWorkerServer(t *testing.T, tables ...*lsample.Table) (*Service, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	for _, tab := range tables {
		reg.Register(tab)
	}
	svc := New(reg, Options{MaxInFlight: 16})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

func postShard(t *testing.T, srv *httptest.Server, req *ShardRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/shard", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

func TestShardEndpointMetaAndVersionFence(t *testing.T) {
	const n = 100
	_, srv := newWorkerServer(t, testTable(n, 7))
	base := ShardRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": float64(10)},
		Method: "srs",
		Budget: 0.25,
		Seed:   3,
		Shard:  ShardRef{Index: 0, Count: 4},
	}

	meta := base
	meta.Op = "meta"
	resp, payload := postShard(t, srv, &meta)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meta op: %d %s", resp.StatusCode, payload)
	}
	var sr ShardResponse
	if err := json.Unmarshal(payload, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Meta == nil || sr.Meta.N <= 0 || sr.Meta.N >= n {
		t.Fatalf("shard 0/4 census = %+v, want a proper slice of %d", sr.Meta, n)
	}
	if sr.Versions == "" || sr.Fingerprint == "" {
		t.Fatalf("meta response missing versions/fingerprint: %+v", sr)
	}

	// The version fence: a pinned versions string that no longer matches
	// answers 409 version_mismatch with the current versions in a header.
	fenced := meta
	fenced.Versions = "D@999"
	resp, payload = postShard(t, srv, &fenced)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale versions: %d %s, want 409", resp.StatusCode, payload)
	}
	var env errorEnvelope
	if err := json.Unmarshal(payload, &env); err != nil || env.Error.Code != "version_mismatch" {
		t.Fatalf("409 body = %s", payload)
	}
	if got := resp.Header.Get("X-Dataset-Versions"); got != sr.Versions {
		t.Fatalf("X-Dataset-Versions = %q, want %q", got, sr.Versions)
	}

	// Matching versions pass the fence.
	fenced.Versions = sr.Versions
	if resp, payload = postShard(t, srv, &fenced); resp.StatusCode != http.StatusOK {
		t.Fatalf("current versions rejected: %d %s", resp.StatusCode, payload)
	}
}

func TestShardExecCacheLifecycle(t *testing.T) {
	const n = 80
	svc, _ := newWorkerServer(t, testTable(n, 7))
	ctx := context.Background()
	req := func(idx, count int) *ShardRequest {
		return &ShardRequest{
			Op: "meta", SQL: skybandQuery, Params: map[string]any{"k": float64(10)},
			Method: "srs", Budget: 0.25, Seed: 3, Shard: ShardRef{Index: idx, Count: count},
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := svc.ShardOp(ctx, req(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.retainedShardExecs(); got != 2 {
		t.Fatalf("retained %d execs, want 2", got)
	}
	// A layout change (reshard) evicts every executor of the old layout.
	if _, err := svc.ShardOp(ctx, req(0, 4)); err != nil {
		t.Fatal(err)
	}
	if got := svc.retainedShardExecs(); got != 1 {
		t.Fatalf("after reshard: retained %d execs, want 1", got)
	}
	// A data version bump evicts executors pinning the old snapshot.
	svc.RegisterTable(testTable(n, 8))
	if got := svc.retainedShardExecs(); got != 0 {
		t.Fatalf("after re-registration: retained %d execs, want 0", got)
	}
}

func TestCountInProcessSharded(t *testing.T) {
	const n, k = 120, 10
	svc := newTestService(t, n, Options{})
	base := CountRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": float64(k)},
		Method: "lss",
		Budget: 0.25,
		Seed:   3,
		Exact:  true,
	}
	ref, err := svc.Count(&base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 4
	got, err := svc.Count(&sharded)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 4 || got.Cached || got.Degraded {
		t.Fatalf("shards/cached/degraded = %d/%t/%t", got.Shards, got.Cached, got.Degraded)
	}
	if got.Estimate != ref.Estimate || got.CILo != ref.CILo || got.CIHi != ref.CIHi ||
		got.Objects != ref.Objects || got.Budget != ref.Budget {
		t.Fatalf("sharded answer diverged: %v [%v,%v] vs %v [%v,%v]",
			got.Estimate, got.CILo, got.CIHi, ref.Estimate, ref.CILo, ref.CIHi)
	}
	if got.TrueCount == nil || ref.TrueCount == nil || *got.TrueCount != *ref.TrueCount {
		t.Fatalf("true counts %v vs %v", got.TrueCount, ref.TrueCount)
	}
	// Sharded and unsharded requests must not share a cache entry.
	again, err := svc.Count(&sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("identical sharded request should hit the result cache")
	}
}

func TestCountRejectsBadShards(t *testing.T) {
	svc := newTestService(t, 50, Options{})
	_, err := svc.Count(&CountRequest{
		SQL: skybandQuery, Params: map[string]any{"k": float64(5)}, Shards: -1,
	})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("shards=-1: err = %v", err)
	}
	// Methods outside the sharded contract are request errors, not silent
	// fallbacks to unsharded execution.
	_, err = svc.Count(&CountRequest{
		SQL: skybandQuery, Params: map[string]any{"k": float64(5)},
		Method: "ssp", Budget: 0.3, Shards: 2,
	})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("ssp sharded: err = %v", err)
	}
}

func newCoordinator(t *testing.T, opts CoordinatorOptions, servers ...*httptest.Server) *Coordinator {
	t.Helper()
	var infos []WorkerInfo
	for i, s := range servers {
		infos = append(infos, WorkerInfo{Name: fmt.Sprintf("w%d", i), BaseURL: s.URL})
	}
	c, err := NewCoordinator(infos, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoordinatorByteIdentity(t *testing.T) {
	const n, k = 120, 10
	// Two workers with identical copies of the data; a local service as
	// the single-process reference.
	_, srvA := newWorkerServer(t, testTable(n, 7))
	_, srvB := newWorkerServer(t, testTable(n, 7))
	local := newTestService(t, n, Options{})
	coord := newCoordinator(t, CoordinatorOptions{Shards: 4}, srvA, srvB)

	for _, method := range []string{"srs", "lss", "oracle"} {
		t.Run(method, func(t *testing.T) {
			req := CountRequest{
				SQL:    skybandQuery,
				Params: map[string]any{"k": float64(k)},
				Method: method,
				Budget: 0.25,
				Seed:   3,
				Exact:  true,
			}
			refReq := req
			refReq.Shards = 4
			ref, err := local.Count(&refReq)
			if err != nil {
				t.Fatal(err)
			}
			got, err := coord.Count(context.Background(), &req)
			if err != nil {
				t.Fatal(err)
			}
			if got.Degraded || got.Shards != 4 {
				t.Fatalf("degraded/shards = %t/%d", got.Degraded, got.Shards)
			}
			if got.Estimate != ref.Estimate || got.CILo != ref.CILo || got.CIHi != ref.CIHi ||
				got.Objects != ref.Objects || got.Budget != ref.Budget {
				t.Fatalf("scatter/gather diverged: %v [%v,%v] vs %v [%v,%v]",
					got.Estimate, got.CILo, got.CIHi, ref.Estimate, ref.CILo, ref.CIHi)
			}
			if got.TrueCount == nil || ref.TrueCount == nil || *got.TrueCount != *ref.TrueCount {
				t.Fatalf("true counts %v vs %v", got.TrueCount, ref.TrueCount)
			}
			if got.Fingerprint != ref.Fingerprint {
				t.Fatalf("fingerprints %q vs %q", got.Fingerprint, ref.Fingerprint)
			}
		})
	}
}

func TestCoordinatorGroupedByteIdentity(t *testing.T) {
	const n, k = 120, 12
	_, srvA := newWorkerServer(t, groupedTestTable(n, 7))
	_, srvB := newWorkerServer(t, groupedTestTable(n, 7))
	reg := NewRegistry()
	reg.Register(groupedTestTable(n, 7))
	local := New(reg, Options{})
	coord := newCoordinator(t, CoordinatorOptions{Shards: 4}, srvA, srvB)

	req := CountRequest{
		SQL:    groupedSkybandQuery,
		Params: map[string]any{"k": float64(k)},
		Method: "lss",
		Budget: 0.3,
		Seed:   5,
	}
	refReq := req
	refReq.Shards = 4
	ref, err := local.Count(&refReq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Count(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Groups) != len(ref.Groups) {
		t.Fatalf("%d groups, want %d", len(got.Groups), len(ref.Groups))
	}
	for i, rg := range ref.Groups {
		gg := got.Groups[i]
		if strings.Join(gg.Key, "|") != strings.Join(rg.Key, "|") ||
			gg.Estimate != rg.Estimate || gg.CILo != rg.CILo || gg.CIHi != rg.CIHi ||
			gg.Objects != rg.Objects || gg.Sampled != rg.Sampled {
			t.Fatalf("group %d diverged: %+v vs %+v", i, gg, rg)
		}
	}
	if got.Estimate != ref.Estimate {
		t.Fatalf("totals %v vs %v", got.Estimate, ref.Estimate)
	}
}

// faultRT injects transport faults for one worker host: kill (connection
// error), stall (hang until the per-op deadline), or corrupt (garbage
// 200 body). An optional match restricts the fault to specific shard ops
// so a single shard can be killed mid-query.
type faultRT struct {
	base   http.RoundTripper
	target string // URL host to fault
	mode   string // kill | stall | corrupt
	match  func(*ShardRequest) bool

	mu   sync.Mutex
	hits int
}

func (f *faultRT) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits
}

func (f *faultRT) RoundTrip(req *http.Request) (*http.Response, error) {
	apply := req.URL.Host == f.target
	if apply && f.match != nil {
		body, err := io.ReadAll(req.Body)
		if err != nil {
			return nil, err
		}
		req.Body = io.NopCloser(bytes.NewReader(body))
		var sr ShardRequest
		if json.Unmarshal(body, &sr) == nil {
			apply = f.match(&sr)
		}
	}
	if !apply {
		return f.base.RoundTrip(req)
	}
	f.mu.Lock()
	f.hits++
	f.mu.Unlock()
	switch f.mode {
	case "kill":
		return nil, errors.New("chaos: connection killed")
	case "stall":
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(10 * time.Second):
			return nil, errors.New("chaos: stall expired")
		}
	case "corrupt":
		return &http.Response{
			StatusCode: http.StatusOK,
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(strings.NewReader(`{"versions": "garbage`)),
			Request:    req,
		}, nil
	}
	return f.base.RoundTrip(req)
}

func hostOf(t *testing.T, rawURL string) string {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// TestCoordinatorChaosFailover: with a second worker holding the same
// data, killing, stalling, or corrupting every request to the first
// worker must not change the answer by a byte — the hedged retries route
// around it.
func TestCoordinatorChaosFailover(t *testing.T) {
	const n, k = 120, 10
	_, srvA := newWorkerServer(t, testTable(n, 7))
	_, srvB := newWorkerServer(t, testTable(n, 7))
	local := newTestService(t, n, Options{})
	req := CountRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": float64(k)},
		Method: "lss",
		Budget: 0.25,
		Seed:   3,
	}
	refReq := req
	refReq.Shards = 4
	ref, err := local.Count(&refReq)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []string{"kill", "stall", "corrupt"} {
		t.Run(mode, func(t *testing.T) {
			rt := &faultRT{base: http.DefaultTransport, target: hostOf(t, srvA.URL), mode: mode}
			coord := newCoordinator(t, CoordinatorOptions{
				Shards:         4,
				WorkerDeadline: 2 * time.Second,
				HedgeAfter:     25 * time.Millisecond,
				Client:         &http.Client{Transport: rt},
			}, srvA, srvB)
			got, cerr := coord.Count(context.Background(), &req)
			if cerr != nil {
				t.Fatal(cerr)
			}
			if rt.count() == 0 {
				t.Fatal("fault injector never fired; test routed nothing at the faulted worker")
			}
			if got.Degraded {
				t.Fatal("with a healthy replica the answer must not degrade")
			}
			if got.Estimate != ref.Estimate || got.CILo != ref.CILo || got.CIHi != ref.CIHi {
				t.Fatalf("answer changed under %s: %v [%v,%v] vs %v [%v,%v]",
					mode, got.Estimate, got.CILo, got.CIHi, ref.Estimate, ref.CILo, ref.CIHi)
			}
		})
	}
}

// TestCoordinatorDegradedAnswer kills one shard's operations after the
// census on the only worker: with AllowDegraded the coordinator answers
// inside its deadline with a scaled estimate, the lost shard listed, and
// a widened interval — never a silently partial count. Without it, the
// query fails.
func TestCoordinatorDegradedAnswer(t *testing.T) {
	const n, k = 120, 10
	_, srv := newWorkerServer(t, testTable(n, 7))
	req := CountRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": float64(k)},
		Method: "srs",
		Budget: 0.25,
		Seed:   3,
	}
	killShard2 := func(sr *ShardRequest) bool { return sr.Op != "meta" && sr.Shard.Index == 2 }
	rt := &faultRT{base: http.DefaultTransport, target: hostOf(t, srv.URL), mode: "kill", match: killShard2}
	opts := CoordinatorOptions{
		Shards:         4,
		WorkerDeadline: 2 * time.Second,
		HedgeAfter:     25 * time.Millisecond,
		Client:         &http.Client{Transport: rt},
	}

	strict := newCoordinator(t, opts, srv)
	if _, err := strict.Count(context.Background(), &req); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("strict coordinator: err = %v, want ErrNoWorkers", err)
	}

	opts.AllowDegraded = true
	lenient := newCoordinator(t, opts, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := lenient.Count(ctx, &req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || len(res.LostShards) != 1 || res.LostShards[0] != 2 {
		t.Fatalf("degraded/lost = %t/%v", res.Degraded, res.LostShards)
	}
	if res.Objects != n {
		t.Fatalf("objects = %d, want the full census %d", res.Objects, n)
	}
	if !res.HasCI || res.CIHi > float64(n) || res.CILo < 0 || res.CILo > res.CIHi {
		t.Fatalf("degraded CI invalid: [%v, %v]", res.CILo, res.CIHi)
	}
	if res.Estimate <= 0 || res.Estimate > float64(n) {
		t.Fatalf("degraded estimate %v out of range", res.Estimate)
	}
}

// TestCoordinatorVersionFence: workers serving different dataset versions
// can never contribute to one merged answer — the query fails with
// data_changed instead of mixing snapshots.
func TestCoordinatorVersionFence(t *testing.T) {
	const n, k = 100, 10
	_, srvA := newWorkerServer(t, testTable(n, 7))
	svcB, srvB := newWorkerServer(t, testTable(n, 7))
	svcB.RegisterTable(testTable(n, 7)) // bump B's version past A's
	coord := newCoordinator(t, CoordinatorOptions{Shards: 8}, srvA, srvB)
	_, err := coord.Count(context.Background(), &CountRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": float64(k)},
		Method: "srs",
		Budget: 0.25,
		Seed:   3,
	})
	if !errors.Is(err, ErrDataChanged) {
		t.Fatalf("mixed versions: err = %v, want ErrDataChanged", err)
	}
}

// TestCoordinatorConcurrentIngest races scatter/gather queries against
// live ingestion on the worker. Every query must either succeed with a
// well-formed answer or fail cleanly (data_changed when an ingest lands
// mid-query) — never return a silently partial merge. Run with -race.
func TestCoordinatorConcurrentIngest(t *testing.T) {
	const k = 10
	lt, err := lsample.NewLiveTable("D", "id:int,x:float,y:float", "id")
	if err != nil {
		t.Fatal(err)
	}
	var batch lsample.DeltaBatch
	for i := 0; i < 80; i++ {
		batch.Append(int64(i), float64((i*37)%100), float64((i*59)%100))
	}
	if _, err := lt.Apply(&batch); err != nil {
		t.Fatal(err)
	}
	svc := New(NewRegistry(), Options{MaxInFlight: 16})
	svc.RegisterLiveTable(lt)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	coord := newCoordinator(t, CoordinatorOptions{Shards: 4}, srv)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			csv := fmt.Sprintf("id,x,y\n%d,%d,%d\n", 1000+i, (i*13)%100, (i*29)%100)
			if _, ierr := svc.Ingest("D", "csv", strings.NewReader(csv)); ierr != nil {
				t.Errorf("ingest: %v", ierr)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for i := 0; i < 8; i++ {
		res, cerr := coord.Count(context.Background(), &CountRequest{
			SQL:    skybandQuery,
			Params: map[string]any{"k": float64(k)},
			Method: "srs",
			Budget: 0.3,
			Seed:   uint64(i + 1),
		})
		if cerr != nil {
			if errors.Is(cerr, ErrDataChanged) {
				continue // clean refusal: an ingest landed mid-query
			}
			t.Fatalf("query %d: %v", i, cerr)
		}
		if res.Degraded || res.Objects <= 0 || (res.HasCI && res.CILo > res.CIHi) {
			t.Fatalf("query %d: malformed answer %+v", i, res)
		}
	}
	close(stop)
	wg.Wait()
}
