package service

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/lsample"
)

// newLiveService registers a live items/events pair and returns the
// service plus the live tables for direct ingestion.
func newLiveService(t testing.TB, nItems int, opts Options) (*Service, *lsample.LiveTable, *lsample.LiveTable) {
	t.Helper()
	items, err := lsample.NewLiveTable("items", "id:int,f1:float,f2:float,region:string", "id")
	if err != nil {
		t.Fatal(err)
	}
	events, err := lsample.NewLiveTable("events", "item:int,v:float", "")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	var ib, eb lsample.DeltaBatch
	for i := 0; i < nItems; i++ {
		f1 := rng.Float64() * 100
		ib.Append(int64(i), f1, rng.Float64()*100, string(rune('a'+i%3)))
		for e := 0; e < int(f1/12); e++ {
			eb.Append(int64(i), rng.Float64()*10)
		}
	}
	if _, err := items.Apply(&ib); err != nil {
		t.Fatal(err)
	}
	if _, err := events.Apply(&eb); err != nil {
		t.Fatal(err)
	}
	svc := New(NewRegistry(), opts)
	svc.RegisterLiveTable(items)
	svc.RegisterLiveTable(events)
	return svc, items, events
}

const liveCountSQL = `SELECT i.id FROM items i, events e WHERE e.item = i.id GROUP BY i.id HAVING COUNT(*) > 4`
const liveGroupSQL = `SELECT region, COUNT(*) FROM (
	SELECT i.id, i.region FROM items i, events e WHERE e.item = i.id
	GROUP BY i.id, i.region HAVING COUNT(*) > 4) GROUP BY region`

// itemsCSV renders an append-only CSV delta of n new items starting at id.
func itemsCSV(start, n int) string {
	var sb strings.Builder
	sb.WriteString("id,f1,f2,region\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d,%g,%g,%s\n", start+i, float64(i%97), float64(i%89), string(rune('a'+i%3)))
	}
	return sb.String()
}

// TestIngestEndToEnd drives the HTTP API: live upload, CSV and NDJSON
// ingestion, version bumps, cache invalidation, and the stats counters.
func TestIngestEndToEnd(t *testing.T) {
	svc, _, _ := newLiveService(t, 300, Options{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Upload a brand-new live dataset over HTTP.
	resp, err := http.Post(srv.URL+"/v1/datasets?name=extra&schema=id:int,w:float&live=1&key=id",
		"text/csv", strings.NewReader("id,w\n1,2.5\n2,3.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live upload status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Count once to warm the cache.
	count := func() *CountResult {
		res, err := svc.Count(&CountRequest{SQL: liveCountSQL, Method: "srs", Budget: 0.2, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := count()
	r2 := count()
	if !r2.Cached {
		t.Fatal("second identical request must hit the cache")
	}

	// CSV ingest into items must bump the version and invalidate the cache.
	resp, err = http.Post(srv.URL+"/v1/ingest?name=items", "text/csv", strings.NewReader(itemsCSV(300, 50)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()

	r3 := count()
	if r3.Cached {
		t.Fatal("ingest must invalidate cached results for the dataset")
	}
	if r3.Objects != 350 {
		t.Fatalf("objects after ingest = %d, want 350", r3.Objects)
	}
	_ = r1

	// NDJSON ingest with update + delete.
	nd := `{"op":"update","key":3,"row":{"id":3,"f1":99.0,"f2":1.0,"region":"a"}}
{"op":"delete","key":5}`
	resp, err = http.Post(srv.URL+"/v1/ingest?name=items", "application/x-ndjson", strings.NewReader(nd))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ndjson ingest status %d", resp.StatusCode)
	}
	resp.Body.Close()
	if got := count().Objects; got != 349 {
		t.Fatalf("objects after delete = %d, want 349", got)
	}

	// Ingest into a non-live dataset must 400 with a helpful message.
	tb, err := lsample.NewTable("static", "id:int")
	if err != nil {
		t.Fatal(err)
	}
	svc.RegisterTable(tb)
	resp, err = http.Post(srv.URL+"/v1/ingest?name=static", "text/csv", strings.NewReader("id\n1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("static ingest status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	m := svc.Metrics.Snapshot()
	if m.IngestRequests != 3 || m.IngestRows != 52 || m.IngestErrors != 1 {
		t.Fatalf("ingest counters = %+v", m)
	}
	if m.IngestBatches < 2 {
		t.Fatalf("ingest batches = %d", m.IngestBatches)
	}
}

// TestIngestRespectsBodyLimit pins the size-limit semantics: a delta body
// over MaxUploadBytes fails with 413, and rows streamed before the limit
// stay committed (durable batches, like any streaming sink).
func TestIngestRespectsBodyLimit(t *testing.T) {
	svc, items, _ := newLiveService(t, 10, Options{MaxUploadBytes: 2048})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	before := items.NumRows()
	resp, err := http.Post(srv.URL+"/v1/ingest?name=items", "text/csv", strings.NewReader(itemsCSV(10, 5000)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if items.NumRows() >= 10+5000 || items.NumRows() < before {
		t.Fatalf("rows after capped ingest = %d", items.NumRows())
	}
}

// TestIngestConflictsWithReregistration pins the replace-during-ingest
// race: rows streamed into a live table that was re-registered mid-ingest
// must not be reported as published — Repin refuses the orphaned table and
// the ingest surfaces a conflict instead of silent data loss.
func TestIngestConflictsWithReregistration(t *testing.T) {
	svc, items, _ := newLiveService(t, 10, Options{})
	// Simulate the interleaving: the replacement lands after Ingest grabbed
	// the old live handle. Driving Repin directly reproduces the decision
	// point without needing a mid-stream hook.
	replacement, err := lsample.NewLiveTable("items", "id:int,f1:float,f2:float,region:string", "id")
	if err != nil {
		t.Fatal(err)
	}
	svc.RegisterLiveTable(replacement)
	if _, ok := svc.Registry.Repin("items", items); ok {
		t.Fatal("Repin must refuse a superseded live table")
	}
	if _, err := svc.Ingest("items", "csv", strings.NewReader(itemsCSV(10, 2))); err != nil {
		t.Fatalf("ingest into the current registration must work: %v", err)
	}
	if replacement.NumRows() != 2 {
		t.Fatalf("replacement rows = %d, want 2", replacement.NumRows())
	}
}

// TestRetainedSnapshotsBoundedUnderReregistration is the registry-leak
// regression test: under repeated re-registration (and live ingestion) with
// interleaved queries, the number of prepared-query entries — each pinning
// one consistent snapshot set — stays bounded instead of growing with the
// version history.
func TestRetainedSnapshotsBoundedUnderReregistration(t *testing.T) {
	svc, _, _ := newLiveService(t, 100, Options{})
	mkTable := func(n int) *lsample.Table {
		tb, err := lsample.NewTable("stat", "id:int,x:float")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := tb.AppendRow(int64(i), float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return tb
	}
	const statSQL = `SELECT s1.id FROM stat s1, stat s2 WHERE s2.x >= s1.x GROUP BY s1.id HAVING COUNT(*) < 4`
	for round := 0; round < 30; round++ {
		svc.RegisterTable(mkTable(40 + round))
		if _, err := svc.Count(&CountRequest{SQL: statSQL, Method: "srs", Budget: 0.5, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Ingest("items", "csv", strings.NewReader(itemsCSV(100+round, 1))); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Count(&CountRequest{SQL: liveCountSQL, Method: "srs", Budget: 0.3, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		if got := svc.retainedPrepSnapshots(); got > 4 {
			t.Fatalf("round %d: %d prepared snapshot sets retained, want ≤ 4", round, got)
		}
	}
}

// TestConcurrentIngestAndCount hammers ingestion against plain and grouped
// counting; run under -race this pins the whole pipeline (snapshot
// publication, registry repinning, prepared-query cache) as race-clean.
func TestConcurrentIngestAndCount(t *testing.T) {
	svc, _, events := newLiveService(t, 200, Options{MaxInFlight: 8})
	stop := make(chan struct{})
	ingestDone := make(chan struct{})

	go func() {
		defer close(ingestDone)
		// Bounded: an unthrottled ingester grows the tables so fast that
		// every counting request's prepare (whose validation is a full join
		// scan) slows quadratically; 200 rounds still guarantee plenty of
		// overlap with the counters.
		for i := 0; i < 200; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%3 == 2 {
				var eb lsample.DeltaBatch
				eb.Append(int64(i%200), 1.5)
				if _, err := events.Apply(&eb); err != nil {
					t.Error(err)
					return
				}
				if _, ok := svc.Registry.Repin("events", events); !ok {
					t.Error("repin failed")
					return
				}
				svc.dropStalePreps()
			} else {
				if _, err := svc.Ingest("items", "csv", strings.NewReader(itemsCSV(200+i*3, 3))); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var counters sync.WaitGroup
	for g := 0; g < 4; g++ {
		counters.Add(1)
		go func(g int) {
			defer counters.Done()
			for i := 0; i < 15; i++ {
				sqlText := liveCountSQL
				if g%2 == 1 {
					sqlText = liveGroupSQL
				}
				_, err := svc.Count(&CountRequest{SQL: sqlText, Method: "srs", Budget: 0.2, Seed: uint64(i)})
				if err != nil {
					t.Errorf("count: %v", err)
					return
				}
			}
		}(g)
	}
	counters.Wait()
	close(stop)
	<-ingestDone
}

// TestDeterminismAgainstPinnedSnapshotMidIngest pins that an estimate
// executed against a pinned snapshot is byte-identical across
// parallelism 1, 4, and NumCPU even while ingestion keeps mutating the
// live tables underneath.
func TestDeterminismAgainstPinnedSnapshotMidIngest(t *testing.T) {
	_, items, events := newLiveService(t, 400, Options{})
	frozen := lsample.NewMemorySource(items.Snapshot(), events.Snapshot())

	stop := make(chan struct{})
	ingestDone := make(chan struct{})
	go func() {
		defer close(ingestDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var ib lsample.DeltaBatch
			ib.Append(int64(400+i), float64(i%50), float64(i%70), "a")
			if _, err := items.Apply(&ib); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	results := make([]*lsample.Estimate, 0, 3)
	for _, p := range []int{1, 4, runtime.NumCPU()} {
		sess, err := lsample.NewSession(frozen,
			lsample.WithMethod("lss"), lsample.WithBudget(0.1),
			lsample.WithSeed(77), lsample.WithParallelism(p))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Count(nil, liveCountSQL, nil)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	close(stop)
	<-ingestDone
	for _, r := range results[1:] {
		if r.Count != results[0].Count || r.CI.Lo != results[0].CI.Lo || r.CI.Hi != results[0].CI.Hi ||
			r.SamplesUsed != results[0].SamplesUsed {
			t.Fatalf("mid-ingest pinned estimates diverge across parallelism: %+v vs %+v", r, results[0])
		}
	}
}
