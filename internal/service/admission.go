package service

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// admitter bounds concurrent estimations globally and per dataset. It
// replaces a single global semaphore so that one hot dataset cannot consume
// every slot and starve requests for the others:
//
//   - at most globalCap estimations run at once (the old MaxInFlight bound);
//   - at most perKeyCap of them run against any one dataset (keyed by the
//     request's resolved dataset-versions string);
//   - waiters queue FIFO, but a grant skips over waiters whose dataset is at
//     its per-key cap, so a saturated dataset never head-of-line blocks the
//     queue for everyone else;
//   - a dataset whose queue is already maxQueued deep sheds new arrivals
//     immediately with ErrBusy instead of making them wait out a timeout
//     that cannot possibly be met.
//
// Deadline awareness lives in acquire: a waiter that cannot be granted by
// its admission deadline gives up with ErrBusy, and the caller may then opt
// into a budget-degraded answer (see Service.degraded) instead of a 503.
type admitter struct {
	globalCap int
	perKeyCap int
	maxQueued int

	mu       sync.Mutex
	inFlight int
	perKey   map[string]int // in-flight per dataset key
	queued   map[string]int // queued waiters per dataset key
	queue    []*admitWaiter // FIFO arrival order
}

// admitWaiter is one queued acquire. granted/gone are guarded by the
// admitter mutex; ready is closed exactly once, on grant.
type admitWaiter struct {
	key     string
	bypass  bool // drain waiters ignore the per-key cap
	ready   chan struct{}
	granted bool
	gone    bool
}

func newAdmitter(globalCap, perKeyCap, maxQueued int) *admitter {
	return &admitter{
		globalCap: globalCap,
		perKeyCap: perKeyCap,
		maxQueued: maxQueued,
		perKey:    make(map[string]int),
		queued:    make(map[string]int),
	}
}

func (a *admitter) admissible(w *admitWaiter) bool {
	return a.inFlight < a.globalCap && (w.bypass || a.perKey[w.key] < a.perKeyCap)
}

func (a *admitter) grantLocked(w *admitWaiter) {
	a.inFlight++
	if !w.bypass {
		a.perKey[w.key]++
	}
	w.granted = true
}

// pumpLocked grants queued waiters in FIFO order, skipping (but keeping)
// waiters whose dataset is at its cap and discarding abandoned ones.
func (a *admitter) pumpLocked() {
	kept := a.queue[:0]
	for _, w := range a.queue {
		switch {
		case w.gone:
			// dropped: its acquire already returned
		case a.admissible(w):
			a.grantLocked(w)
			a.dequeuedLocked(w.key)
			close(w.ready)
		default:
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(a.queue); i++ {
		a.queue[i] = nil
	}
	a.queue = kept
}

func (a *admitter) dequeuedLocked(key string) {
	if n := a.queued[key]; n <= 1 {
		delete(a.queued, key)
	} else {
		a.queued[key] = n - 1
	}
}

// acquire admits one estimation against the dataset identified by key,
// waiting until the deadline (zero = no deadline, wait on ctx alone). It
// returns ErrBusy when the deadline passes or the dataset's queue is
// already hopeless, and the wrapped context error on cancellation.
func (a *admitter) acquire(ctx context.Context, key string, deadline time.Time) error {
	w := &admitWaiter{key: key, ready: make(chan struct{})}
	return a.wait(ctx, w, deadline)
}

func (a *admitter) wait(ctx context.Context, w *admitWaiter, deadline time.Time) error {
	var expiry <-chan time.Time
	if !deadline.IsZero() {
		wait := time.Until(deadline)
		if wait <= 0 {
			return ErrBusy
		}
		timer := time.NewTimer(wait)
		defer timer.Stop()
		expiry = timer.C
	}

	a.mu.Lock()
	if a.admissible(w) {
		a.grantLocked(w)
		a.mu.Unlock()
		return nil
	}
	if !w.bypass && a.queued[w.key] >= a.maxQueued {
		// Shedding: the dataset's queue is deeper than could drain within
		// any reasonable deadline; fail fast instead of parking.
		a.mu.Unlock()
		return ErrBusy
	}
	a.queued[w.key]++
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-expiry:
		return a.abandon(w, ErrBusy)
	case <-ctx.Done():
		return a.abandon(w, fmt.Errorf("service: %w", ctx.Err()))
	}
}

// abandon retracts a queued waiter after a timeout or cancellation. If a
// grant raced the retraction, the grant stands and the caller proceeds
// admitted (it must release as usual).
func (a *admitter) abandon(w *admitWaiter, err error) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if w.granted {
		return nil
	}
	w.gone = true
	a.dequeuedLocked(w.key)
	return err
}

// release returns one slot acquired for key and grants what the freed
// capacity allows.
func (a *admitter) release(key string) {
	a.mu.Lock()
	a.inFlight--
	if n := a.perKey[key]; n <= 1 {
		delete(a.perKey, key)
	} else {
		a.perKey[key] = n - 1
	}
	a.pumpLocked()
	a.mu.Unlock()
}

// drain acquires every global slot, bypassing per-dataset caps: once it
// returns nil, no estimation is running and none can start. The slots are
// never released — drain is shutdown's point of no return. On ctx expiry it
// stops early with the context error, holding the slots it got.
func (a *admitter) drain(ctx context.Context) error {
	for i := 0; i < a.globalCap; i++ {
		w := &admitWaiter{bypass: true, ready: make(chan struct{})}
		if err := a.wait(ctx, w, time.Time{}); err != nil {
			return err
		}
	}
	return nil
}
