package service

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/lsample"
)

// ErrDurability is returned when a live dataset backed by a data directory
// cannot make an ingest durable (fsync failure, closed table). The batch
// was NOT applied — memory and disk never diverge — so the request is safe
// to retry once storage recovers. The HTTP layer maps it to 503 with a
// Retry-After header and error code "unavailable_durability", distinct
// from admission-control rejection ("overloaded").
var ErrDurability = errors.New("service: durability unavailable")

// datasetDir maps a dataset name to its directory under DataDir.
// PathEscape keeps arbitrary dataset names (slashes, dots, unicode) inside
// one flat directory level, and decodes back losslessly on recovery.
func (s *Service) datasetDir(name string) string {
	return filepath.Join(s.opts.DataDir, url.PathEscape(name))
}

// Durable reports whether the service persists live datasets to a data
// directory.
func (s *Service) Durable() bool { return s.opts.DataDir != "" }

// RecoveredDataset describes one live dataset replayed from the data
// directory at startup.
type RecoveredDataset struct {
	Name    string
	Rows    int
	Version uint64 // registry version now serving the recovered snapshot
}

// RecoverDatasets scans the data directory, reopens every durable live
// dataset it holds (restoring the newest checkpoint and replaying the
// write-ahead log), and registers each under a fresh version — so prepared
// queries and cached results pin the recovered state exactly like any
// other registration. Call once at startup, before serving. A corrupt
// dataset fails recovery rather than serving partial data; a missing or
// empty data directory recovers nothing.
func (s *Service) RecoverDatasets() ([]RecoveredDataset, error) {
	if !s.Durable() {
		return nil, nil
	}
	entries, err := os.ReadDir(s.opts.DataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("service: reading data dir: %w", err)
	}
	var out []RecoveredDataset
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.opts.DataDir, e.Name())
		lt, err := lsample.OpenLiveDir(dir)
		if err != nil {
			return out, fmt.Errorf("service: recovering %s: %w", dir, err)
		}
		v := s.RegisterLiveTable(lt)
		out = append(out, RecoveredDataset{Name: lt.Name(), Rows: lt.NumRows(), Version: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// openLiveUpload creates the live table for an uploaded dataset: durable
// under the data directory when one is configured, memory-only otherwise.
// Re-uploading a durable dataset replaces it: the previous table is closed
// and its directory removed, so the new upload starts from a clean log.
func (s *Service) openLiveUpload(name, schema, key string) (*lsample.LiveTable, error) {
	if !s.Durable() {
		return lsample.NewLiveTable(name, schema, key)
	}
	if prev, ok := s.Registry.Live(name); ok && prev.Durable() {
		prev.Close() //nolint:errcheck // superseded; its directory is removed next
	}
	dir := s.datasetDir(name)
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("%w: clearing %s: %v", ErrDurability, dir, err)
	}
	return lsample.OpenLiveTable(dir, name, schema, key)
}

// Shutdown drains admission — waiting (up to ctx) for in-flight
// estimations to finish and blocking new ones — then checkpoints and
// closes every durable live dataset so the next start recovers from a
// checkpoint instead of a long log replay. Returns the names of the
// datasets persisted, and logs a structured summary line (datasets
// persisted, whether in-flight work drained cleanly, uptime). The
// service must not serve requests afterwards.
func (s *Service) Shutdown(ctx context.Context) ([]string, error) {
	var firstErr error
	// Acquire every admission slot: once held, no estimation is running and
	// none can start. On ctx expiry, persist anyway — a checkpoint racing a
	// straggler estimation is safe (estimations only read snapshots).
	drained := true
	if err := s.admit.drain(ctx); err != nil {
		drained = false
		firstErr = fmt.Errorf("service: shutdown drain: %w", err)
	}

	var persisted []string
	for _, info := range s.Registry.List() {
		lt, ok := s.Registry.Live(info.Name)
		if !ok || !lt.Durable() {
			continue
		}
		if err := lt.Close(); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("service: persisting %q: %w", info.Name, err)
			}
			continue
		}
		persisted = append(persisted, info.Name)
	}
	sort.Strings(persisted)
	s.logger.Info(ctx, "shutdown complete",
		"datasets_persisted", len(persisted),
		"persisted", persisted,
		"inflight_drained", drained,
		"requests_served", s.Metrics.Requests.Load(),
		"uptime_ms", float64(time.Since(s.started))/1e6)
	return persisted, firstErr
}
