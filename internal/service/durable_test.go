package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/lsample"
)

// newDurableServer returns a data-dir-backed service and its HTTP server.
func newDurableServer(t *testing.T, dataDir string, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	opts.DataDir = dataDir
	svc := New(NewRegistry(), opts)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// TestServiceDataDirRecovery is the serving-layer recovery acceptance test:
// upload a live dataset, ingest deltas, estimate; shut down (flushing and
// checkpointing the WAL); start a fresh service over the same data
// directory, recover, and require the same rows, a byte-identical estimate,
// and ingestion that resumes on the recovered version chain.
func TestServiceDataDirRecovery(t *testing.T) {
	dataDir := t.TempDir()
	countReq := &CountRequest{
		SQL:    `SELECT t1.id FROM tanks t1, tanks t2 WHERE t2.level >= t1.level GROUP BY t1.id HAVING COUNT(*) < 3`,
		Method: "srs", Budget: 0.5, Seed: 9,
	}

	var wantEstimate, wantEvals = 0.0, int64(0)
	var wantRows int
	var wantDurableVersion uint64
	{
		svc, ts := newDurableServer(t, dataDir, Options{})
		resp, err := http.Post(ts.URL+"/v1/datasets?name=tanks&schema=id:int,level:float&live=1&key=id",
			"text/csv", strings.NewReader("id,level\n1,10\n2,60\n3,80\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("live upload status %d", resp.StatusCode)
		}
		resp, err = http.Post(ts.URL+"/v1/ingest?name=tanks", "text/csv",
			strings.NewReader("id,level\n4,90\n5,30\n6,70\n"))
		if err != nil {
			t.Fatal(err)
		}
		var ing IngestResult
		if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !ing.Durable || ing.DurableVersion == 0 {
			t.Fatalf("ingest on a data-dir service not durable: %+v", ing)
		}
		wantDurableVersion = ing.DurableVersion

		res, err := svc.Count(countReq)
		if err != nil {
			t.Fatal(err)
		}
		wantEstimate, wantEvals = res.Estimate, res.Evals
		lt, _ := svc.Registry.Live("tanks")
		wantRows = lt.NumRows()

		persisted, err := svc.Shutdown(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(persisted) != 1 || persisted[0] != "tanks" {
			t.Fatalf("persisted %v, want [tanks]", persisted)
		}
	}

	svc2, ts2 := newDurableServer(t, dataDir, Options{})
	recovered, err := svc2.RecoverDatasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 || recovered[0].Name != "tanks" || recovered[0].Rows != wantRows {
		t.Fatalf("recovered %+v, want tanks with %d rows", recovered, wantRows)
	}
	res, err := svc2.Count(countReq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != wantEstimate || res.Evals != wantEvals {
		t.Fatalf("recovered estimate %v/%d evals, want %v/%d — recovery changed the snapshot",
			res.Estimate, res.Evals, wantEstimate, wantEvals)
	}
	// Ingestion resumes on the recovered version chain: the durable table
	// version strictly extends the pre-restart one.
	resp, err := http.Post(ts2.URL+"/v1/ingest?name=tanks", "text/csv",
		strings.NewReader("id,level\n7,55\n"))
	if err != nil {
		t.Fatal(err)
	}
	var ing IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ing.Durable || ing.DurableVersion <= wantDurableVersion {
		t.Fatalf("post-recovery ingest %+v does not extend durable version %d", ing, wantDurableVersion)
	}
	if _, err := svc2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServiceDurableUploadReplaces: re-uploading a durable dataset starts a
// clean directory rather than replaying the previous incarnation's log.
func TestServiceDurableUploadReplaces(t *testing.T) {
	_, ts := newDurableServer(t, t.TempDir(), Options{})
	upload := func(csv string) DatasetInfo {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/datasets?name=tanks&schema=id:int,level:float&live=1&key=id",
			"text/csv", strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("upload status %d: %s", resp.StatusCode, b)
		}
		var info DatasetInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		return info
	}
	upload("id,level\n1,10\n2,20\n3,30\n")
	info := upload("id,level\n1,99\n")
	if info.Rows != 1 {
		t.Fatalf("re-upload serves %d rows, want 1 — old log replayed into the new dataset?", info.Rows)
	}
}

// TestIngestDurabilityFaultMaps503: a durability failure during ingest
// surfaces as 503 with error code unavailable_durability and a Retry-After
// hint — distinct from admission-control "overloaded" — and publishes
// nothing.
func TestIngestDurabilityFaultMaps503(t *testing.T) {
	svc, _, _ := newLiveService(t, 50, Options{RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	_, v0, _ := svc.Registry.Get("items")
	svc.ingestApply = func(lt *lsample.LiveTable, format string, r io.Reader) (lsample.DeltaSummary, error) {
		return lsample.DeltaSummary{}, fmt.Errorf("%w: fsync failed", lsample.ErrUnavailable)
	}

	resp, err := http.Post(ts.URL+"/v1/ingest?name=items", "text/csv", strings.NewReader(itemsCSV(1000, 5)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", ra)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "unavailable_durability" {
		t.Fatalf("error code %q, want unavailable_durability", env.Error.Code)
	}
	if _, v1, _ := svc.Registry.Get("items"); v1 != v0 {
		t.Fatalf("failed ingest republished the dataset (version %d -> %d)", v0, v1)
	}
}

// TestShutdownDrainsAdmission: Shutdown waits for in-flight work, blocks
// new admissions afterwards, and reports a drain timeout when an
// estimation does not finish in time (while still persisting datasets).
func TestShutdownDrainsAdmission(t *testing.T) {
	svc := newTestService(t, 50, Options{MaxInFlight: 2, QueueTimeout: 50 * time.Millisecond})
	if _, err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Admission is saturated: new estimations time out with ErrBusy.
	_, err := svc.Count(&CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Method: "srs", Budget: 0.3})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("count after shutdown: %v, want ErrBusy", err)
	}

	// A stuck estimation: drain times out but shutdown still proceeds.
	svc2 := newTestService(t, 50, Options{MaxInFlight: 1})
	occupyAdmission(t, svc2) // simulate an estimation that never finishes
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := svc2.Shutdown(ctx); err == nil {
		t.Fatal("shutdown with a stuck estimation must report the drain timeout")
	}
}
