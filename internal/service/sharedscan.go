package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// scanChunk is the batch size of a coalesced labeling pass. It matches the
// SDK's standalone chunked pass, so a coalesced member sees the same
// ascending batches (and therefore the identical eval-counter trajectory)
// it would see labeling alone.
const scanChunk = 4096

// defaultScanWindow is how long the first arrival of a scan group waits for
// followers before the shared pass starts. Concurrent requests on the same
// snapshot typically arrive within a round-trip of each other; a couple of
// milliseconds of added latency buys scan sharing across all of them.
const defaultScanWindow = 2 * time.Millisecond

// scanCoalescer implements lsample.ScanCoalescer for the service: exact
// labeling passes of concurrent /v1/count requests over the same dataset
// snapshot and object enumeration (same scan key) are merged into one
// sequential scan that feeds every member's own evaluator chunk by chunk.
// Four concurrent exact queries that differ only in predicate parameters
// thus cost one scan's worth of data traversal, not four — each member
// still pays its own predicate evaluations, which is what keeps every
// answer byte-identical to a standalone run.
type scanCoalescer struct {
	metrics *Metrics
	window  time.Duration

	mu     sync.Mutex
	groups map[string]*scanGroup
}

// scanGroup collects the members that will share one labeling pass.
type scanGroup struct {
	members []*scanMember
}

// scanMember is one request's stake in a shared scan. out and err are
// written only by the scan worker before done is closed; the waiting
// request reads them only after done.
type scanMember struct {
	ctx  context.Context
	eval func(idxs []int, out []bool)
	out  []bool
	err  error
	done chan struct{}
}

func newScanCoalescer(m *Metrics) *scanCoalescer {
	return &scanCoalescer{metrics: m, window: defaultScanWindow, groups: make(map[string]*scanGroup)}
}

// LabelAll implements lsample.ScanCoalescer: it joins (or opens) the scan
// group for (key, n), waits for the shared pass, and returns this member's
// labels. A member whose context expires before its turn gets the context
// error back (the SDK maps it to a cancellation); any other failure makes
// the SDK fall back to a standalone scan.
func (c *scanCoalescer) LabelAll(ctx context.Context, key string, n int, eval func(idxs []int, out []bool)) ([]bool, error) {
	_, span := obs.StartSpan(ctx, "sharedscan.member")
	defer span.End()
	m := &scanMember{ctx: ctx, eval: eval, out: make([]bool, n), done: make(chan struct{})}
	gk := fmt.Sprintf("%s|%d", key, n)
	c.mu.Lock()
	g := c.groups[gk]
	if g == nil {
		g = &scanGroup{}
		c.groups[gk] = g
		time.AfterFunc(c.window, func() { c.run(gk, n) })
	}
	g.members = append(g.members, m)
	joined := len(g.members)
	c.mu.Unlock()
	span.Set("objects", n)
	span.Set("members_at_join", joined)

	// Wait for the worker even if ctx fires: the member's eval closure is
	// not safe for concurrent use, so returning early while the worker may
	// still call it would race. The worker observes ctx per chunk, so the
	// wait after cancellation is at most one chunk plus the window.
	<-m.done
	if m.err != nil {
		return nil, m.err
	}
	return m.out, nil
}

// run executes one shared pass for the group registered under gk: a single
// ascending walk over the object indices, feeding each live member's
// evaluator every chunk. Members fail independently — a cancellation or a
// data-dependent panic costs that member its place in the shared scan (the
// SDK retries standalone), never the whole group.
func (c *scanCoalescer) run(gk string, n int) {
	c.mu.Lock()
	g := c.groups[gk]
	delete(c.groups, gk)
	c.mu.Unlock()

	c.metrics.SharedScans.Add(1)
	c.metrics.SharedScanRequests.Add(int64(len(g.members)))

	idxs := make([]int, scanChunk)
	for base := 0; base < n; base += scanChunk {
		end := min(base+scanChunk, n)
		chunk := idxs[:end-base]
		for i := range chunk {
			chunk[i] = base + i
		}
		for _, m := range g.members {
			if m.err != nil {
				continue
			}
			if err := m.ctx.Err(); err != nil {
				m.err = err
				continue
			}
			evalMemberChunk(m, chunk, m.out[base:end])
		}
	}
	for _, m := range g.members {
		close(m.done)
	}
}

// evalMemberChunk isolates one member's evaluation so a panic inside its
// predicate surfaces as that member's error, not as a crash of the shared
// worker goroutine (where no request handler's recover could catch it).
func evalMemberChunk(m *scanMember, idxs []int, out []bool) {
	defer func() {
		if p := recover(); p != nil {
			m.err = fmt.Errorf("service: shared scan member panicked: %v", p)
		}
	}()
	m.eval(idxs, out)
}
