package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// spanNames flattens a span tree into name -> occurrence count.
func spanNames(d *obs.SpanData, out map[string]int) {
	if d == nil {
		return
	}
	out[d.Name]++
	for _, c := range d.Children {
		spanNames(c, out)
	}
}

// forEachSpan visits every span of the tree.
func forEachSpan(d *obs.SpanData, visit func(*obs.SpanData)) {
	if d == nil {
		return
	}
	visit(d)
	for _, c := range d.Children {
		forEachSpan(c, visit)
	}
}

// TestExplainReturnsTrace: a request with Explain gets its span tree
// inline, covering admission, preparation, and the SDK's execution
// phases; a cached re-ask still gets a fresh (per-request) trace while
// the cached result itself stays trace-free for non-explain clients.
func TestExplainReturnsTrace(t *testing.T) {
	svc := newTestService(t, 80, Options{})
	req := &CountRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": float64(10)},
		Method: "srs",
		Budget: 0.25,
		Seed:   3,
	}
	ex := *req
	ex.Explain = true
	res, err := svc.Count(&ex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("explain request returned no trace")
	}
	if res.Trace.Name != "count" {
		t.Fatalf("root span %q, want count", res.Trace.Name)
	}
	names := map[string]int{}
	spanNames(res.Trace, names)
	for _, want := range []string{"count", "admission.wait", "prepare", "execute"} {
		if names[want] == 0 {
			t.Fatalf("trace lacks span %q; got %v", want, names)
		}
	}
	// The execution phase shows up as either the classic estimate pipeline
	// or the reuse catalog's fast path — whichever served this query.
	if names["estimate"] == 0 && names["catalog"] == 0 {
		t.Fatalf("trace lacks an execution-phase span; got %v", names)
	}
	rootID := res.Trace.TraceID
	forEachSpan(res.Trace, func(d *obs.SpanData) {
		if d.TraceID != rootID {
			t.Fatalf("span %q has trace id %s, want %s", d.Name, d.TraceID, rootID)
		}
	})

	// A non-explain client hitting the now-warm cache sees no trace.
	plain, err := svc.Count(req)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Cached || plain.Trace != nil {
		t.Fatalf("cached non-explain result: cached=%t trace=%v", plain.Cached, plain.Trace)
	}
	// An explain client hitting the cache still gets its own (new) trace.
	again, err := svc.Count(&ex)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Trace == nil {
		t.Fatalf("cached explain result: cached=%t trace present=%t", again.Cached, again.Trace != nil)
	}
	if again.Trace.TraceID == rootID {
		t.Fatal("second explain reused the first request's trace")
	}
}

// TestTracesEndpointPaging: /v1/traces pages the completed-trace ring
// newest first.
func TestTracesEndpointPaging(t *testing.T) {
	svc := newTestService(t, 60, Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		req := CountRequest{
			SQL:     skybandQuery,
			Params:  map[string]any{"k": float64(10)},
			Method:  "srs",
			Budget:  0.25,
			Seed:    uint64(i + 1),
			Explain: true,
			NoCache: true,
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/count", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("count %d: status %d", i, resp.StatusCode)
		}
	}

	get := func(url string) []*obs.SpanData {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		var out struct {
			Traces []*obs.SpanData `json:"traces"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Traces
	}
	all := get(ts.URL + "/v1/traces")
	if len(all) != 3 {
		t.Fatalf("got %d traces, want 3", len(all))
	}
	two := get(ts.URL + "/v1/traces?limit=2")
	if len(two) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(two))
	}
	// Newest first: the first page entry is the most recent completion.
	if !all[0].Start.After(all[2].Start) {
		t.Fatalf("traces not newest-first: %v then %v", all[0].Start, all[2].Start)
	}
	if resp, err := http.Get(ts.URL + "/v1/traces?limit=bogus"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bogus limit: status %d, want 400", resp.StatusCode)
		}
	}
}

// TestStatsLatencyBuckets: /v1/stats exposes the latency histogram's
// cumulative bucket counts alongside the existing quantile fields.
func TestStatsLatencyBuckets(t *testing.T) {
	svc := newTestService(t, 60, Options{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	req := CountRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": float64(10)},
		Method: "srs",
		Budget: 0.25,
	}
	body, _ := json.Marshal(req)
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/v1/count", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Metrics MetricsSnapshot `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	lat := stats.Metrics.Latency
	if lat.Count != 4 {
		t.Fatalf("latency count %d, want 4", lat.Count)
	}
	if len(lat.Buckets) == 0 {
		t.Fatal("latency summary has no buckets")
	}
	last := lat.Buckets[len(lat.Buckets)-1]
	if int64(last.Count) != lat.Count {
		t.Fatalf("last cumulative bucket %d != count %d", last.Count, lat.Count)
	}
	for i := 1; i < len(lat.Buckets); i++ {
		if lat.Buckets[i].Count < lat.Buckets[i-1].Count || lat.Buckets[i].LeMS <= lat.Buckets[i-1].LeMS {
			t.Fatalf("buckets not cumulative/ascending at %d: %+v", i, lat.Buckets)
		}
	}
}

// TestConcurrentMetricsScrapes hammers GET /metrics and GET /v1/stats
// while live count traffic runs — the *Func collectors must read the
// serving path's atomics race-free (this test is what -race verifies).
func TestConcurrentMetricsScrapes(t *testing.T) {
	svc := newTestService(t, 60, Options{MaxInFlight: 8})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				req := CountRequest{
					SQL:     skybandQuery,
					Params:  map[string]any{"k": float64(10)},
					Method:  "srs",
					Budget:  0.25,
					Seed:    uint64(g*100 + i),
					NoCache: true,
					Explain: i%2 == 0,
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/count", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	scrapeErr := make(chan error, 2)
	for _, path := range []string{"/metrics", "/v1/stats"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					scrapeErr <- err
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					scrapeErr <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					scrapeErr <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
				if path == "/metrics" && !strings.Contains(string(b), "lsample_requests_total") {
					scrapeErr <- fmt.Errorf("scrape lacks lsample_requests_total:\n%s", b)
					return
				}
			}
		}(path)
	}
	wg.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}

	// Final scrape is well-formed: HELP/TYPE precede every family and the
	// histogram carries its cumulative suffix series.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(b)
	for _, want := range []string{
		"# HELP lsample_requests_total",
		"# TYPE lsample_requests_total counter",
		"# TYPE lsample_request_duration_seconds histogram",
		`lsample_request_duration_seconds_bucket{le="+Inf"}`,
		"lsample_request_duration_seconds_sum",
		"lsample_request_duration_seconds_count",
		"lsample_traces_sampled_total",
		"lsample_inflight_estimations",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape lacks %q:\n%s", want, text)
		}
	}
}

// TestSlowQueryLog: a configured slow-query threshold logs the full span
// tree of any slower request as one structured JSON line.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	svc := newTestService(t, 60, Options{
		SlowQuery: time.Nanosecond,
		Logger:    obs.NewLogger(&buf),
	})
	req := &CountRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": float64(10)},
		Method: "srs",
		Budget: 0.25,
	}
	if _, err := svc.Count(req); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.Contains(line, `"msg":"slow query"`) {
		t.Fatalf("no slow-query line logged:\n%s", line)
	}
	var parsed struct {
		Level   string        `json:"level"`
		TraceID string        `json:"trace_id"`
		Trace   *obs.SpanData `json:"trace"`
	}
	if err := json.Unmarshal([]byte(line[strings.Index(line, "{"):]), &parsed); err != nil {
		t.Fatalf("slow-query line is not JSON: %v\n%s", err, line)
	}
	if parsed.Trace == nil || parsed.Trace.Name != "count" {
		t.Fatalf("slow-query line lacks the span tree: %s", line)
	}
}

// TestShutdownSummaryLog: graceful shutdown emits one structured summary
// line with the persisted datasets, the drain outcome, and uptime.
func TestShutdownSummaryLog(t *testing.T) {
	var buf bytes.Buffer
	svc := newTestService(t, 60, Options{Logger: obs.NewLogger(&buf)})
	if _, err := svc.Count(&CountRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": float64(10)},
		Method: "srs",
		Budget: 0.25,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	var line string
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.Contains(l, `"msg":"shutdown complete"`) {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no shutdown summary line:\n%s", buf.String())
	}
	var parsed struct {
		Drained   *bool   `json:"inflight_drained"`
		Persisted []any   `json:"persisted"`
		Requests  int64   `json:"requests_served"`
		UptimeMS  float64 `json:"uptime_ms"`
	}
	if err := json.Unmarshal([]byte(line), &parsed); err != nil {
		t.Fatalf("summary line is not JSON: %v\n%s", err, line)
	}
	if parsed.Drained == nil || !*parsed.Drained {
		t.Fatalf("summary does not report a clean drain: %s", line)
	}
	if parsed.Requests != 1 || parsed.UptimeMS <= 0 {
		t.Fatalf("summary fields wrong: %s", line)
	}
}

// TestCoordinatorStitchedTrace: a 4-shard explain query over two workers,
// with every call to the first worker killed, returns ONE trace: the
// coordinator root, per-attempt rpc spans (failed primaries and their
// hedged retries as siblings), and each worker's own span subtree grafted
// under the attempt that carried it — all sharing a single trace id.
func TestCoordinatorStitchedTrace(t *testing.T) {
	const n, k = 120, 10
	_, srvA := newWorkerServer(t, testTable(n, 7))
	_, srvB := newWorkerServer(t, testTable(n, 7))
	rt := &faultRT{base: http.DefaultTransport, target: hostOf(t, srvA.URL), mode: "kill"}
	coord := newCoordinator(t, CoordinatorOptions{
		Shards:         4,
		WorkerDeadline: 2 * time.Second,
		HedgeAfter:     25 * time.Millisecond,
		Client:         &http.Client{Transport: rt},
	}, srvA, srvB)

	req := CountRequest{
		SQL:     skybandQuery,
		Params:  map[string]any{"k": float64(k)},
		Method:  "srs",
		Budget:  0.25,
		Seed:    3,
		Explain: true,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := coord.Count(ctx, &req)
	if err != nil {
		t.Fatal(err)
	}
	if rt.count() == 0 {
		t.Fatal("fault injector never fired")
	}
	if res.Trace == nil {
		t.Fatal("explain coordinator query returned no trace")
	}
	if res.Trace.Name != "coordinator.count" {
		t.Fatalf("root span %q", res.Trace.Name)
	}

	rootID := res.Trace.TraceID
	var rpcs, failed, retried, worker int
	forEachSpan(res.Trace, func(d *obs.SpanData) {
		if d.TraceID != rootID {
			t.Fatalf("span %q carries trace id %s, want %s — trace not stitched", d.Name, d.TraceID, rootID)
		}
		switch {
		case d.Name == "shard.rpc":
			rpcs++
			if d.Attrs["error"] != nil {
				failed++
			}
			if d.Attrs["hedged"] == true {
				retried++
			}
			// A successful attempt carries the worker's grafted subtree.
			for _, c := range d.Children {
				if strings.HasPrefix(c.Name, "shard.") && c.Name != "shard.rpc" {
					worker++
					if c.ParentID == "" {
						t.Fatalf("grafted worker span %q has no parent id", c.Name)
					}
				}
			}
		}
	})
	if rpcs < 2 {
		t.Fatalf("only %d rpc attempt spans", rpcs)
	}
	if failed == 0 {
		t.Fatal("no failed attempt span despite the killed worker")
	}
	if retried == 0 {
		t.Fatal("no hedged/failover attempt span")
	}
	if worker == 0 {
		t.Fatal("no worker subtree grafted into the coordinator trace")
	}

	// The answer must be byte-identical to an unfaulted run.
	clean := newCoordinator(t, CoordinatorOptions{Shards: 4}, srvA, srvB)
	reqPlain := req
	reqPlain.Explain = false
	ref, err := clean.Count(context.Background(), &reqPlain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != ref.Estimate || res.CILo != ref.CILo || res.CIHi != ref.CIHi {
		t.Fatalf("tracing/hedging changed the answer: %v vs %v", res.Estimate, ref.Estimate)
	}

	// The coordinator's own exposition reflects the chaos.
	h := coord.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	text := rec.Body.String()
	if !strings.Contains(text, "lsample_coordinator_queries_total 1") {
		t.Fatalf("coordinator metrics lack query count:\n%s", text)
	}
	if !strings.Contains(text, "lsample_coordinator_worker_errors_total") {
		t.Fatalf("coordinator metrics lack worker errors:\n%s", text)
	}
}

// TestWorkerTraceparentRoundTrip: a sampled traceparent posted straight
// to /v1/shard makes the worker adopt the remote trace id and return its
// span subtree on the response; an unsampled or absent header leaves the
// response trace-free (and the hot path unrecorded).
func TestWorkerTraceparentRoundTrip(t *testing.T) {
	const n = 100
	_, srv := newWorkerServer(t, testTable(n, 7))
	reqBody := ShardRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": float64(10)},
		Method: "srs",
		Budget: 0.25,
		Op:     "meta",
		Shard:  ShardRef{Index: 0, Count: 2},
	}
	body, _ := json.Marshal(&reqBody)

	post := func(traceparent string) *ShardResponse {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/shard", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			req.Header.Set(obs.TraceparentHeader, traceparent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		var out ShardResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return &out
	}

	const traceID = "0123456789abcdef0123456789abcdef"
	sampled := post("00-" + traceID + "-00f067aa0ba902b7-01")
	if sampled.Trace == nil {
		t.Fatal("sampled traceparent: worker returned no trace")
	}
	if sampled.Trace.TraceID != traceID {
		t.Fatalf("worker trace id %s, want adopted %s", sampled.Trace.TraceID, traceID)
	}
	if sampled.Trace.ParentID != "00f067aa0ba902b7" {
		t.Fatalf("worker root parent %s, want the caller's span id", sampled.Trace.ParentID)
	}
	if sampled.Trace.Name != "shard.meta" {
		t.Fatalf("worker root span %q", sampled.Trace.Name)
	}

	if unsampled := post("00-" + traceID + "-00f067aa0ba902b7-00"); unsampled.Trace != nil {
		t.Fatal("unsampled traceparent still recorded a trace")
	}
	if plain := post(""); plain.Trace != nil {
		t.Fatal("absent traceparent still recorded a trace")
	}
}
