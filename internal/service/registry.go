package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/lsample"
)

// Registry is the shared, thread-safe dataset catalog. Tables are immutable
// once registered (the engine only reads them); replacing a table under the
// same name bumps a monotonic version, which cache keys incorporate so
// stale results can never be served after a reload.
type Registry struct {
	mu      sync.RWMutex
	tables  map[string]*tableEntry
	counter atomic.Uint64
}

type tableEntry struct {
	t       *lsample.Table
	version uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tables: make(map[string]*tableEntry)}
}

// Register adds or replaces the table under its name, returning the
// assigned version. The caller must not mutate t afterwards.
func (r *Registry) Register(t *lsample.Table) uint64 {
	v := r.counter.Add(1)
	r.mu.Lock()
	r.tables[t.Name()] = &tableEntry{t: t, version: v}
	r.mu.Unlock()
	return v
}

// Get returns the named table and its registration version.
func (r *Registry) Get(name string) (*lsample.Table, uint64, bool) {
	r.mu.RLock()
	e, ok := r.tables[name]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, false
	}
	return e.t, e.version, true
}

// DatasetInfo describes one registered table.
type DatasetInfo struct {
	Name    string `json:"name"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	Version uint64 `json:"version"`
}

// List returns all registered tables, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	out := make([]DatasetInfo, 0, len(r.tables))
	for name, e := range r.tables {
		out = append(out, DatasetInfo{
			Name:    name,
			Rows:    e.t.NumRows(),
			Cols:    e.t.NumCols(),
			Version: e.version,
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Resolve looks up every named table under one lock acquisition, returning
// a consistent snapshot and a canonical "name@version,…" string for cache
// keys.
func (r *Registry) Resolve(names []string) (map[string]*lsample.Table, string, error) {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	snap := make(map[string]*lsample.Table, len(sorted))
	ver := ""
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i, name := range sorted {
		e, ok := r.tables[name]
		if !ok {
			return nil, "", fmt.Errorf("%w: unknown dataset %q", ErrBadRequest, name)
		}
		if i > 0 {
			ver += ","
		}
		ver += fmt.Sprintf("%s@%d", name, e.version)
		snap[name] = e.t
	}
	return snap, ver, nil
}
