package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/lsample"
)

// Registry is the shared, thread-safe dataset catalog. Served tables are
// immutable snapshots (the engine only reads them); replacing a table under
// the same name bumps a monotonic version, which cache keys incorporate so
// stale results can never be served after a reload. Live datasets register
// their mutable LiveTable alongside the current pinned snapshot: ingestion
// applies deltas to the live table and Repin publishes the new snapshot
// under a fresh version, giving streaming updates the same cache-soundness
// as full re-registration.
type Registry struct {
	mu      sync.RWMutex
	tables  map[string]*tableEntry
	counter atomic.Uint64
}

type tableEntry struct {
	t       *lsample.Table
	version uint64
	live    *lsample.LiveTable // nil for static registrations
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tables: make(map[string]*tableEntry)}
}

// Register adds or replaces the table under its name, returning the
// assigned version. The caller must not mutate t afterwards.
func (r *Registry) Register(t *lsample.Table) uint64 {
	v := r.counter.Add(1)
	r.mu.Lock()
	r.tables[t.Name()] = &tableEntry{t: t, version: v}
	r.mu.Unlock()
	return v
}

// RegisterLive adds or replaces a live dataset, serving its current pinned
// snapshot. Later ingests mutate the live table and Repin the entry.
func (r *Registry) RegisterLive(lt *lsample.LiveTable) uint64 {
	v := r.counter.Add(1)
	r.mu.Lock()
	r.tables[lt.Name()] = &tableEntry{t: lt.Snapshot(), version: v, live: lt}
	r.mu.Unlock()
	return v
}

// Live returns the named dataset's live table, if it was registered live.
func (r *Registry) Live(name string) (*lsample.LiveTable, bool) {
	r.mu.RLock()
	e, ok := r.tables[name]
	r.mu.RUnlock()
	if !ok || e.live == nil {
		return nil, false
	}
	return e.live, true
}

// Repin publishes the live dataset's newest snapshot under a fresh
// version; requests started against the previous pin keep their snapshot.
// lt must still be the registered live table — a mismatch means the
// dataset was re-registered concurrently (the ingested rows went to an
// orphaned table) and Repin refuses rather than publishing the wrong data.
func (r *Registry) Repin(name string, lt *lsample.LiveTable) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.tables[name]
	if !ok || e.live == nil || e.live != lt {
		return 0, false
	}
	v := r.counter.Add(1)
	r.tables[name] = &tableEntry{t: e.live.Snapshot(), version: v, live: e.live}
	return v, true
}

// Current returns the currently served snapshot of every registered table,
// keyed by name; reuse-catalog invalidation compares entries against it.
func (r *Registry) Current() map[string]*lsample.Table {
	r.mu.RLock()
	out := make(map[string]*lsample.Table, len(r.tables))
	for name, e := range r.tables {
		out[name] = e.t
	}
	r.mu.RUnlock()
	return out
}

// Get returns the named table and its registration version.
func (r *Registry) Get(name string) (*lsample.Table, uint64, bool) {
	r.mu.RLock()
	e, ok := r.tables[name]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, false
	}
	return e.t, e.version, true
}

// DatasetInfo describes one registered table.
type DatasetInfo struct {
	Name    string `json:"name"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	Version uint64 `json:"version"`
	Live    bool   `json:"live,omitempty"` // accepts /v1/ingest deltas
}

// List returns all registered tables, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	out := make([]DatasetInfo, 0, len(r.tables))
	for name, e := range r.tables {
		out = append(out, DatasetInfo{
			Name:    name,
			Rows:    e.t.NumRows(),
			Cols:    e.t.NumCols(),
			Version: e.version,
			Live:    e.live != nil,
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Resolve looks up every named table under one lock acquisition, returning
// a consistent snapshot and a canonical "name@version,…" string for cache
// keys.
func (r *Registry) Resolve(names []string) (map[string]*lsample.Table, string, error) {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	snap := make(map[string]*lsample.Table, len(sorted))
	ver := ""
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i, name := range sorted {
		e, ok := r.tables[name]
		if !ok {
			return nil, "", fmt.Errorf("%w: unknown dataset %q", ErrBadRequest, name)
		}
		if i > 0 {
			ver += ","
		}
		ver += fmt.Sprintf("%s@%d", name, e.version)
		snap[name] = e.t
	}
	return snap, ver, nil
}
