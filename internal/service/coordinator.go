package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/lsample"
)

// ErrDataChanged marks a query that observed two different dataset
// versions across its shard operations: an ingest or re-registration
// landed mid-query. Nothing partial is merged; the identical request is
// safe to retry against the new version.
var ErrDataChanged = errors.New("service: dataset changed mid-query")

// ErrNoWorkers is returned when a coordinator query finds every transport
// candidate for some shard unreachable and degraded answers are off.
var ErrNoWorkers = errors.New("service: no reachable workers")

// WorkerInfo names one worker process serving POST /v1/shard.
type WorkerInfo struct {
	Name    string `json:"name"`
	BaseURL string `json:"base_url"`
}

// CoordinatorOptions configures scatter/gather routing.
type CoordinatorOptions struct {
	// Shards is the shard count per query (default: the worker count).
	// Every worker holds the full registered datasets, so the count is a
	// parallelism knob, not a placement constraint; any worker can serve
	// any shard, which is what makes hedging and failover sound.
	Shards int
	// WorkerDeadline bounds each shard operation on one worker (default
	// 15s); a worker that misses it is treated as failed for that attempt.
	WorkerDeadline time.Duration
	// HedgeAfter starts a backup request to the next worker on the ring
	// when the current one has not answered within this duration (default
	// 500ms); the first successful answer wins. Operations are pure
	// functions of (snapshot, arguments), so duplicated execution is
	// harmless.
	HedgeAfter time.Duration
	// Replicas is the consistent-hash ring's virtual-node count per
	// worker (default shard.DefaultReplicas).
	Replicas int
	// AllowDegraded answers with a scaled estimate and a widened interval
	// when every candidate for some shard fails after the census, instead
	// of failing the query.
	AllowDegraded bool
	// Client is the HTTP client for worker calls (default http.DefaultClient).
	Client *http.Client

	// TraceSample, TraceRing, SlowQuery, and Logger mirror the service's
	// tracing knobs (Options): head-sampling probability, completed-trace
	// ring capacity, slow-query threshold, and the structured JSON logger.
	TraceSample float64
	TraceRing   int
	SlowQuery   time.Duration
	Logger      *obs.Logger
}

// Coordinator scatters counting queries over worker processes: each query
// is split into hash-aligned shards, shard operations are routed over a
// consistent-hash ring (with per-op deadlines and hedged retries on
// stragglers), and the per-shard partials merge through the same driver
// the in-process sharded path uses — so the answer is byte-identical to a
// single-process run over the same data, at any worker count.
type Coordinator struct {
	workers map[string]WorkerInfo
	ring    *shard.Ring // built once; read-only afterwards, safe for concurrent use
	opts    CoordinatorOptions
	client  *http.Client

	// tracer records coordinator traces; a sampled root injects its
	// traceparent into every worker call, and each worker's completed
	// subtree comes back on the shard response to be grafted under the
	// coordinator's attempt span — one query, one stitched tree.
	tracer *obs.Tracer
	logger *obs.Logger
	prom   *obs.Registry

	queries      *obs.Counter
	hedges       *obs.Counter
	workerErrors *obs.Counter
	degradedN    *obs.Counter
}

// NewCoordinator builds a coordinator over the given workers.
func NewCoordinator(workers []WorkerInfo, opts CoordinatorOptions) (*Coordinator, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("%w: coordinator needs at least one worker", ErrBadRequest)
	}
	if opts.Shards <= 0 {
		opts.Shards = len(workers)
	}
	if opts.WorkerDeadline <= 0 {
		opts.WorkerDeadline = 15 * time.Second
	}
	if opts.HedgeAfter <= 0 {
		opts.HedgeAfter = 500 * time.Millisecond
	}
	c := &Coordinator{
		workers: make(map[string]WorkerInfo, len(workers)),
		ring:    shard.NewRing(opts.Replicas),
		opts:    opts,
		client:  opts.Client,
		logger:  opts.Logger,
	}
	if c.client == nil {
		c.client = http.DefaultClient
	}
	c.tracer = obs.NewTracer(obs.TracerConfig{
		Sample:    opts.TraceSample,
		RingSize:  opts.TraceRing,
		SlowQuery: opts.SlowQuery,
		Logger:    opts.Logger,
	})
	c.prom = obs.NewRegistry()
	c.queries = c.prom.NewCounter("lsample_coordinator_queries_total",
		"Scatter/gather queries served by the coordinator.")
	c.hedges = c.prom.NewCounter("lsample_coordinator_hedges_total",
		"Backup shard requests launched on straggling workers.")
	c.workerErrors = c.prom.NewCounter("lsample_coordinator_worker_errors_total",
		"Failed worker shard calls (before any successful retry).")
	c.degradedN = c.prom.NewCounter("lsample_coordinator_degraded_total",
		"Queries answered degraded after losing every candidate for a shard.")
	c.prom.CounterFunc("lsample_traces_started_total",
		"Root spans considered by the coordinator tracer.", c.tracer.Started)
	c.prom.CounterFunc("lsample_traces_sampled_total",
		"Root spans recorded by the coordinator tracer.", c.tracer.Sampled)
	for _, w := range workers {
		if w.Name == "" || w.BaseURL == "" {
			return nil, fmt.Errorf("%w: worker needs a name and a base URL", ErrBadRequest)
		}
		if _, dup := c.workers[w.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate worker name %q", ErrBadRequest, w.Name)
		}
		c.workers[w.Name] = w
		c.ring.Add(w.Name)
	}
	return c, nil
}

// Count scatters one estimation request across the workers and merges the
// per-shard partials. The request's root span injects its traceparent into
// every worker call and grafts each worker's returned subtree, so an
// Explain (or sampled) query yields one stitched trace spanning the
// coordinator, every worker, and any hedged retries.
func (c *Coordinator) Count(ctx context.Context, req *CountRequest) (*CountResult, error) {
	c.queries.Inc()
	t0 := time.Now()
	ctx, span := c.tracer.StartRequest(ctx, "coordinator.count", req.Explain)
	res, err := c.count(ctx, req)
	if err != nil {
		span.Set("error", err.Error())
	} else {
		span.Set("method", res.Method)
		span.Set("objects", res.Objects)
		span.Set("shards", res.Shards)
		span.Set("degraded", res.Degraded)
		c.logger.Info(ctx, "query",
			"role", "coordinator",
			"fingerprint", res.Fingerprint,
			"method", res.Method,
			"shards", res.Shards,
			"objects", res.Objects,
			"estimate", res.Estimate,
			"degraded", res.Degraded,
			"duration_ms", float64(time.Since(t0))/1e6)
	}
	span.End()
	if err == nil && req.Explain && span.Recording() {
		out := *res
		out.Trace = span.Data()
		return &out, nil
	}
	return res, err
}

func (c *Coordinator) count(ctx context.Context, req *CountRequest) (*CountResult, error) {
	if req.SQL == "" {
		return nil, badf("missing sql")
	}
	method := req.Method
	if method == "" {
		method = "lss"
	}
	budgetFrac := req.Budget
	if budgetFrac == 0 {
		budgetFrac = 0.02
	}
	if !(budgetFrac > 0 && budgetFrac <= 1) {
		return nil, badf("budget %v outside (0, 1]", budgetFrac)
	}
	clfName := req.Classifier
	if clfName == "" {
		clfName = "rf"
	}
	strata := req.Strata
	if strata <= 0 {
		strata = 4
	}
	iv, err := lsample.ParseInterval(req.Interval)
	if err != nil {
		return nil, mapSDKErr(err)
	}
	shards := req.Shards
	if shards <= 0 {
		shards = c.opts.Shards
	}

	base := ShardRequest{
		SQL:        req.SQL,
		Params:     req.Params,
		Method:     method,
		Budget:     budgetFrac,
		Classifier: clfName,
		Strata:     strata,
		Interval:   iv.String(),
		Seed:       req.Seed,
	}
	run := &coordRun{c: c, base: base, shards: shards}

	// Pre-flight: learn the query's shape (grouped? fingerprint? feature
	// columns?) and pin the dataset versions every later op must match.
	pre, err := run.do(ctx, 0, &ShardRequest{Op: "meta", Shard: ShardRef{Index: 0, Count: shards}})
	if err != nil {
		return nil, err
	}
	run.versions = pre.Versions

	workers := make([]shard.Worker, shards)
	for i := range workers {
		workers[i] = &remoteWorker{run: run, idx: i}
	}
	const alpha = 0.05
	plan := shard.Plan{
		Method:        method,
		Grouped:       len(pre.GroupCols) > 0,
		BudgetOf:      func(n int) int { return lsample.EvalBudget(budgetFrac, n) },
		Strata:        strata,
		Seed:          req.Seed,
		Alpha:         alpha,
		Wilson:        iv == lsample.Wilson,
		Exact:         req.Exact,
		AllowDegraded: c.opts.AllowDegraded,
	}
	t0 := time.Now()
	res, err := shard.Drive(ctx, plan, workers)
	if err != nil {
		if errors.Is(err, ErrDataChanged) || errors.Is(err, ErrBadRequest) {
			return nil, err
		}
		if errors.Is(err, shard.ErrShardLost) {
			return nil, fmt.Errorf("%w: %w", ErrNoWorkers, err)
		}
		return nil, err
	}
	if res.Degraded {
		c.degradedN.Inc()
	}

	out := &CountResult{
		Fingerprint: pre.Fingerprint,
		Method:      method,
		Interval:    iv.String(),
		Objects:     res.N,
		Budget:      res.Budget,
		Estimate:    res.Count,
		HasCI:       res.HasCI,
		Evals:       int64(res.SamplesUsed),
		FeatureCols: pre.FeatureCols,
		GroupCols:   pre.GroupCols,
		Seed:        req.Seed,
		DurationMS:  float64(time.Since(t0)) / 1e6,
		Reuse:       lsample.ReuseNone,
		Shards:      res.Shards,
		Degraded:    res.Degraded,
		LostShards:  res.Lost,
	}
	if res.HasCI {
		out.CILo, out.CIHi = res.CILo, res.CIHi
	}
	if res.HasTrue {
		tc := res.TrueCount
		out.TrueCount = &tc
	}
	for _, g := range res.Groups {
		row := GroupRow{
			Key:      g.Parts,
			Objects:  g.N,
			Estimate: g.Count,
			HasCI:    g.HasCI,
			Sampled:  g.Sampled,
			Exact:    g.Exact,
		}
		if g.HasCI {
			row.CILo, row.CIHi = g.CILo, g.CIHi
		}
		if g.HasTrue {
			tc := g.TrueCount
			row.TrueCount = &tc
		}
		out.Groups = append(out.Groups, row)
	}
	if req.Exact && len(res.Groups) > 0 && !res.Degraded {
		trueTotal := 0
		for _, g := range res.Groups {
			trueTotal += g.TrueCount
		}
		out.TrueCount = &trueTotal
	}
	return out, nil
}

// Handler exposes the coordinator over HTTP:
//
//	POST /v1/count  JSON CountRequest -> CountResult (scatter/gathered);
//	                honors an inbound traceparent header
//	GET  /v1/traces completed coordinator traces, newest first (?limit=N)
//	GET  /metrics   Prometheus text-format metrics exposition
//	GET  /healthz   liveness + worker roster
//
// Errors use the service envelope; data_changed (409) means an ingest
// landed on the workers mid-query and the request should be retried.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/count", func(w http.ResponseWriter, r *http.Request) {
		var req CountRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			c.writeError(w, clientErr("invalid JSON body", err))
			return
		}
		res, err := c.Count(traceCtx(r), &req)
		if err != nil {
			c.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.prom.Expose(w) //nolint:errcheck // nothing to do about a failed write
	})
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		limit := 0
		if v := r.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				c.writeError(w, badf("invalid ?limit=%q", v))
				return
			}
			limit = n
		}
		writeJSON(w, http.StatusOK, struct {
			Traces []*obs.SpanData `json:"traces"`
		}{c.tracer.Traces(limit)})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		roster := make([]WorkerInfo, 0, len(c.workers))
		for _, wi := range c.workers {
			roster = append(roster, wi)
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "coordinator", "workers": roster})
	})
	return mux
}

func (c *Coordinator) writeError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, "internal"
	switch {
	case errors.Is(err, ErrBadRequest):
		status, code = http.StatusBadRequest, "bad_request"
	case errors.Is(err, ErrDataChanged):
		status, code = http.StatusConflict, "data_changed"
	case errors.Is(err, ErrNoWorkers):
		status, code = http.StatusServiceUnavailable, "workers_unavailable"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status, code = statusClientClosedRequest, "canceled"
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: err.Error()}})
}

// coordRun is one query's scatter state: the knob base every op shares
// and the dataset versions pinned at the census.
type coordRun struct {
	c        *Coordinator
	base     ShardRequest
	shards   int
	versions string
}

// permanentError marks a worker answer that retrying elsewhere cannot
// change (bad request, version conflict); the hedger stops immediately.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// do executes one shard op with routing, deadlines, and hedged retries:
// candidates come from the ring in failover order; the primary gets
// HedgeAfter of quiet time before a backup launches; the first success
// wins. When every candidate fails the op resolves to a LostShardError,
// which Drive absorbs (degraded mode) or surfaces.
func (r *coordRun) do(ctx context.Context, shardIdx int, req *ShardRequest) (*ShardResponse, error) {
	b := r.base
	b.Op, b.K, b.Tag, b.Keys, b.X, b.Y, b.ClfSeed = req.Op, req.K, req.Tag, req.Keys, req.X, req.Y, req.ClfSeed
	b.Shard = ShardRef{Index: shardIdx, Count: r.shards}
	b.Versions = r.versions
	body, err := json.Marshal(&b)
	if err != nil {
		return nil, badf("encoding shard request: %v", err)
	}

	cands := r.c.ring.Owners(fmt.Sprintf("shard/%d/%d", shardIdx, r.shards), len(r.c.workers))
	if len(cands) == 0 {
		return nil, &shard.LostShardError{Shard: shardIdx, Err: ErrNoWorkers}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		resp *ShardResponse
		err  error
	}
	ch := make(chan outcome, len(cands))
	launched := 0
	launch := func(hedged bool) {
		name := cands[launched]
		attempt := launched
		launched++
		// One span per attempt: a hedged or failed-over call shows up as a
		// sibling of the primary, each carrying the worker it targeted. The
		// worker's own subtree (shipped back on the response when the
		// injected traceparent was sampled) is grafted underneath.
		_, asp := obs.StartSpan(ctx, "shard.rpc")
		asp.Set("op", b.Op)
		asp.Set("shard", shardIdx)
		asp.Set("worker", name)
		asp.Set("attempt", attempt)
		if hedged {
			asp.Set("hedged", true)
		}
		go func() {
			resp, perr := r.c.post(ctx, r.c.workers[name].BaseURL, body, asp.Traceparent())
			if perr != nil {
				asp.Set("error", perr.Error())
			} else if resp.Trace != nil {
				asp.Graft(resp.Trace)
			}
			asp.End()
			ch <- outcome{resp, perr}
		}()
	}
	launch(false)
	hedge := time.NewTimer(r.c.opts.HedgeAfter)
	defer hedge.Stop()

	var lastErr error
	for done := 0; done < launched || launched < len(cands); {
		select {
		case out := <-ch:
			done++
			if out.err == nil {
				if r.versions != "" && out.resp.Versions != r.versions {
					// A worker with newer data answered without tripping the
					// fence (it never saw our pinned versions — e.g. a raced
					// hedge); refuse to merge it.
					return nil, fmt.Errorf("%w: expected %q, worker has %q",
						ErrDataChanged, r.versions, out.resp.Versions)
				}
				return out.resp, nil
			}
			var perm *permanentError
			if errors.As(out.err, &perm) {
				return nil, perm.err
			}
			r.c.workerErrors.Inc()
			lastErr = out.err
			if launched < len(cands) {
				launch(true)
			}
		case <-hedge.C:
			if launched < len(cands) {
				r.c.hedges.Inc()
				launch(true)
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("service: %w", ctx.Err())
		}
	}
	return nil, &shard.LostShardError{Shard: shardIdx, Err: lastErr}
}

// post performs one worker call under the per-op deadline, injecting the
// attempt span's traceparent (when recording) so the worker joins the
// coordinator's trace.
func (c *Coordinator) post(ctx context.Context, baseURL string, body []byte, traceparent string) (*ShardResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.WorkerDeadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set(obs.TraceparentHeader, traceparent)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var env errorEnvelope
		msg := string(payload)
		if json.Unmarshal(payload, &env) == nil && env.Error.Code != "" {
			msg = env.Error.Message
			switch env.Error.Code {
			case "version_mismatch":
				return nil, &permanentError{err: fmt.Errorf("%w: %s", ErrDataChanged, msg)}
			case "bad_request":
				return nil, &permanentError{err: badf("worker rejected shard op: %s", msg)}
			}
		}
		return nil, fmt.Errorf("service: worker answered %d: %s", resp.StatusCode, msg)
	}
	var out ShardResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("service: worker answer unreadable: %v", err)
	}
	return &out, nil
}

// remoteWorker adapts one shard's HTTP operations to the driver's Worker
// interface.
type remoteWorker struct {
	run *coordRun
	idx int
}

func (w *remoteWorker) Meta(ctx context.Context) (shard.Meta, error) {
	resp, err := w.run.do(ctx, w.idx, &ShardRequest{Op: "meta"})
	if err != nil {
		return shard.Meta{}, err
	}
	if resp.Meta == nil {
		return shard.Meta{}, fmt.Errorf("service: worker meta answer empty")
	}
	return shard.Meta{N: resp.Meta.N, Groups: toGroupCounts(resp.Meta.Groups)}, nil
}

func (w *remoteWorker) Cands(ctx context.Context, k int, tag uint64) ([]shard.Cand, error) {
	resp, err := w.run.do(ctx, w.idx, &ShardRequest{Op: "cands", K: k, Tag: tag})
	if err != nil {
		return nil, err
	}
	out := make([]shard.Cand, len(resp.Cands))
	for i, c := range resp.Cands {
		out[i] = shard.Cand{Hash: c.Hash, Key: c.Key}
	}
	return out, nil
}

func (w *remoteWorker) Label(ctx context.Context, keys []int64) ([]bool, int, error) {
	resp, err := w.run.do(ctx, w.idx, &ShardRequest{Op: "label", Keys: keys})
	if err != nil {
		return nil, 0, err
	}
	if len(resp.Labels) != len(keys) {
		return nil, 0, fmt.Errorf("service: worker labeled %d of %d keys", len(resp.Labels), len(keys))
	}
	return resp.Labels, resp.Fresh, nil
}

func (w *remoteWorker) Features(ctx context.Context, keys []int64) ([][]float64, error) {
	resp, err := w.run.do(ctx, w.idx, &ShardRequest{Op: "features", Keys: keys})
	if err != nil {
		return nil, err
	}
	if len(resp.Features) != len(keys) {
		return nil, fmt.Errorf("service: worker returned %d of %d feature rows", len(resp.Features), len(keys))
	}
	return resp.Features, nil
}

func (w *remoteWorker) ScoreAll(ctx context.Context, x [][]float64, y []bool, clfSeed uint64) ([]shard.Scored, error) {
	resp, err := w.run.do(ctx, w.idx, &ShardRequest{Op: "score_all", X: x, Y: y, ClfSeed: clfSeed})
	if err != nil {
		return nil, err
	}
	return toScored(resp.Scored), nil
}

func (w *remoteWorker) GroupKeys(ctx context.Context) ([]shard.Scored, error) {
	resp, err := w.run.do(ctx, w.idx, &ShardRequest{Op: "group_keys"})
	if err != nil {
		return nil, err
	}
	return toScored(resp.Scored), nil
}

func (w *remoteWorker) CountAll(ctx context.Context) (core.Partial, []shard.GroupCount, int, error) {
	resp, err := w.run.do(ctx, w.idx, &ShardRequest{Op: "count_all"})
	if err != nil {
		return core.Partial{}, nil, 0, err
	}
	if resp.Tally == nil {
		return core.Partial{}, nil, 0, fmt.Errorf("service: worker tally answer empty")
	}
	t := resp.Tally
	return core.Partial{N: t.N, Sampled: t.Sampled, Positives: t.Positives},
		toGroupCounts(t.Groups), t.Fresh, nil
}

func toGroupCounts(in []lsample.ShardGroupCount) []shard.GroupCount {
	out := make([]shard.GroupCount, len(in))
	for i, g := range in {
		out[i] = shard.GroupCount{Key: g.Key, Parts: g.Parts, N: g.N, Pos: g.Pos}
	}
	return out
}

func toScored(in []lsample.ShardScored) []shard.Scored {
	out := make([]shard.Scored, len(in))
	for i, s := range in {
		out[i] = shard.Scored{Key: s.Key, Score: s.Score, Group: s.Group}
	}
	return out
}
