// Package service is the serving layer over the paper's estimators: a
// thread-safe dataset registry, an end-to-end pipeline from a SQL counting
// query to an estimate with a confidence interval, a fingerprint-keyed
// result cache, and admission control for concurrent requests. The HTTP
// front end lives in http.go and is exposed by cmd/lsserve.
//
// The pipeline per request: parse the query (internal/sql), rewrite it into
// the §2 object/predicate form (engine.Decompose), enumerate objects with
// the cheap Q2, derive classifier features automatically from the columns
// the predicate reads (Decomposed.FeatureCols), wrap the expensive Q3 as an
// engine-backed predicate, and hand the resulting core.ObjectSet to any of
// the paper's methods. Results are deterministic in (dataset versions,
// query fingerprint, method, budget, seed), which makes the cache
// semantically lossless and lets concurrent clients verify bit-identical
// answers.
//
// Concurrency model: registered tables are immutable, each request builds
// its own evaluator/predicate/object set, and a bounded semaphore admits at
// most MaxInFlight estimations at once — a request that cannot start within
// QueueTimeout fails fast with ErrBusy instead of piling up.
package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/sql"
	"repro/internal/xrand"
)

// ErrBadRequest marks client errors (unparseable SQL, unknown datasets,
// invalid knobs); the HTTP layer maps it to 400.
var ErrBadRequest = errors.New("service: bad request")

// ErrBusy is returned when admission control cannot start the estimation
// within the queue timeout; the HTTP layer maps it to 503.
var ErrBusy = errors.New("service: too many estimations in flight")

// Options configures a Service. Zero values select the documented defaults.
type Options struct {
	MaxInFlight    int           // concurrent estimations admitted (default 4)
	QueueTimeout   time.Duration // max wait for admission (default 2s)
	CacheSize      int           // result-cache entries; 0 default 256, <0 disables
	CacheTTL       time.Duration // result max age; 0 default 10m, <0 no expiry
	DefaultMethod  string        // method when the request omits one (default "lss")
	DefaultBudget  float64       // budget fraction when omitted (default 0.02)
	Parallelism    int           // per-request classifier parallelism (0 default 1, <0 all cores)
	MaxUploadBytes int64         // CSV upload limit (0 default 64 MiB)
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 2 * time.Second
	}
	switch {
	case o.CacheSize == 0:
		o.CacheSize = 256
	case o.CacheSize < 0:
		o.CacheSize = 0
	}
	switch {
	case o.CacheTTL == 0:
		o.CacheTTL = 10 * time.Minute
	case o.CacheTTL < 0:
		o.CacheTTL = 0
	}
	if o.DefaultMethod == "" {
		o.DefaultMethod = "lss"
	}
	if o.DefaultBudget <= 0 {
		o.DefaultBudget = 0.02
	}
	if o.Parallelism == 0 {
		o.Parallelism = 1
	}
	if o.MaxUploadBytes == 0 {
		o.MaxUploadBytes = 64 << 20
	}
	return o
}

// Service wires the registry, cache, metrics, and admission control around
// the estimation pipeline.
type Service struct {
	Registry *Registry
	Metrics  *Metrics
	opts     Options
	cache    *resultCache
	sem      chan struct{}

	flightMu sync.Mutex
	flights  map[string]*flight

	memoMu sync.Mutex
	memos  map[*dataset.Table]map[string]*tableMemo
}

// tableMemo caches the per-table-snapshot artifacts that every uncached
// request over the same table would otherwise rebuild: the O(N) group-key
// index and the full feature matrix. The outer map is keyed by the table
// pointer itself — registered tables are immutable, and keying (and thus
// retaining) the pointer means a freed table's address can never be reused
// by a new table while its memo exists.
type tableMemo struct {
	index map[int64]int
	feats [][]float64
}

// flight is one in-progress estimation that concurrent identical requests
// wait on instead of re-running it (results are deterministic in the cache
// key, so sharing is always correct).
type flight struct {
	done chan struct{}
	res  *CountResult
	err  error
}

// New returns a Service over reg with the given options.
func New(reg *Registry, opts Options) *Service {
	o := opts.withDefaults()
	return &Service{
		Registry: reg,
		Metrics:  &Metrics{},
		opts:     o,
		cache:    newResultCache(o.CacheSize, o.CacheTTL),
		sem:      make(chan struct{}, o.MaxInFlight),
		flights:  make(map[string]*flight),
		memos:    make(map[*dataset.Table]map[string]*tableMemo),
	}
}

// CountRequest is one estimation request.
type CountRequest struct {
	SQL        string         `json:"sql"`
	Params     map[string]any `json:"params,omitempty"`     // free identifiers: numbers or strings
	Method     string         `json:"method,omitempty"`     // srs ssp ssn lws lss qlcc qlac oracle
	Budget     float64        `json:"budget,omitempty"`     // fraction of |O| to label, (0,1]
	Classifier string         `json:"classifier,omitempty"` // rf knn nn random (default rf)
	Strata     int            `json:"strata,omitempty"`     // strata for stratified methods (default 4)
	Seed       uint64         `json:"seed,omitempty"`
	Exact      bool           `json:"exact,omitempty"`    // also compute the true count (slow)
	NoCache    bool           `json:"no_cache,omitempty"` // bypass the result cache
}

// CountResult is the outcome of one estimation request.
type CountResult struct {
	Fingerprint string   `json:"fingerprint"`
	Method      string   `json:"method"`
	Objects     int      `json:"objects"` // |O| enumerated by Q2
	Budget      int      `json:"budget"`  // predicate evaluations allowed
	Estimate    float64  `json:"estimate"`
	CILo        float64  `json:"ci_lo"` // meaningful only when has_ci (no omitempty: 0 is a valid bound)
	CIHi        float64  `json:"ci_hi"`
	HasCI       bool     `json:"has_ci"`
	Evals       int64    `json:"evals"` // predicate evaluations spent
	TrueCount   *int     `json:"true_count,omitempty"`
	FeatureCols []string `json:"feature_cols,omitempty"`
	Seed        uint64   `json:"seed"`
	DurationMS  float64  `json:"duration_ms"`
	Cached      bool     `json:"cached"`
}

// badf wraps a client error.
func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// Count runs one estimation request end to end.
func (s *Service) Count(req *CountRequest) (*CountResult, error) {
	return s.CountCtx(context.Background(), req)
}

// CountCtx is Count with cancellation: ctx aborts waiting — for admission
// or for a coalesced in-flight estimation — when the caller goes away. An
// estimation that has already been admitted runs to completion (the paper's
// methods have no cancellation points); its result still lands in the cache
// for the next asker.
func (s *Service) CountCtx(ctx context.Context, req *CountRequest) (*CountResult, error) {
	s.Metrics.Requests.Add(1)
	res, err := func() (r *CountResult, e error) {
		// A data-dependent evaluation failure deep inside an estimation
		// (e.g. EngineExists panics on an object the construction-time
		// validation did not reach) must become a 500, not kill the
		// request goroutine.
		defer func() {
			if p := recover(); p != nil {
				log.Printf("service: panic serving count request: %v\n%s", p, debug.Stack())
				r, e = nil, fmt.Errorf("service: internal error: %v", p)
			}
		}()
		return s.count(ctx, req)
	}()
	if err != nil {
		if errors.Is(err, ErrBusy) {
			s.Metrics.Rejected.Add(1)
		} else {
			s.Metrics.Errors.Add(1)
		}
	}
	return res, err
}

func (s *Service) count(ctx context.Context, req *CountRequest) (*CountResult, error) {
	if req.SQL == "" {
		return nil, badf("missing sql")
	}
	method := req.Method
	if method == "" {
		method = s.opts.DefaultMethod
	}
	budgetFrac := req.Budget
	if budgetFrac == 0 {
		budgetFrac = s.opts.DefaultBudget
	}
	if !(budgetFrac > 0 && budgetFrac <= 1) { // NaN fails both comparisons
		return nil, badf("budget %v outside (0, 1]", budgetFrac)
	}

	// Normalize the knobs that have defaults, so a request spelling them
	// out shares a cache entry with one that omits them — and reject
	// unknown names before any per-object work.
	clfName := req.Classifier
	if clfName == "" {
		clfName = "rf"
	}
	strata := req.Strata
	if strata <= 0 {
		strata = 4
	}
	newClf, err := BuildClassifier(clfName, s.opts.Parallelism)
	if err != nil {
		return nil, err
	}
	m, err := BuildMethod(method, newClf, strata)
	if err != nil {
		return nil, err
	}

	stmt, err := sql.Parse(req.SQL)
	if err != nil {
		return nil, badf("parse: %v", err)
	}
	inner := engine.ExtractInner(stmt)

	params, paramStrs, err := convertParams(req.Params)
	if err != nil {
		return nil, err
	}
	fp := sql.Fingerprint(inner, paramStrs)

	for _, tr := range inner.From {
		if tr.Subquery != nil {
			return nil, badf("FROM subqueries are not supported in served queries")
		}
	}
	// Resolve every table the query touches, including ones referenced
	// only inside predicate subqueries — they must be in the evaluator's
	// catalog, and their versions must invalidate cached results.
	tableNames := sql.Tables(inner)
	if len(tableNames) == 0 {
		return nil, badf("query has no FROM clause")
	}
	cat, versions, err := s.Registry.Resolve(tableNames)
	if err != nil {
		return nil, err
	}

	key := fmt.Sprintf("%s|%s|%s|%s|%d|%g|%d|%t",
		versions, fp, method, clfName, strata, budgetFrac, req.Seed, req.Exact)
	// Every admission attempt this request makes — as leader now or after
	// retrying a failed leader — draws from one QueueTimeout budget, so
	// coalescing can neither reject a request before its own window ends
	// nor let retries stack into multiples of it.
	admitDeadline := time.Now().Add(s.opts.QueueTimeout)

	var fl *flight
	if !req.NoCache {
		if v, ok := s.cache.get(key); ok {
			s.Metrics.CacheHits.Add(1)
			out := *v // shallow copy; cached fields are read-only
			out.Cached = true
			return &out, nil
		}
		// Coalesce concurrent identical requests onto one estimation: a
		// cold cache plus many clients must not run the same work
		// MaxInFlight times and 503 the rest.
		for fl == nil {
			s.flightMu.Lock()
			if other, ok := s.flights[key]; ok {
				s.flightMu.Unlock()
				select {
				case <-other.done:
				case <-ctx.Done():
					return nil, fmt.Errorf("service: %w", ctx.Err())
				}
				if other.err != nil {
					// The leader's failure to start — its client went
					// away, or its admission window (which began before
					// ours) expired — says nothing about this request:
					// take our own turn, bounded by admitDeadline.
					if errors.Is(other.err, ErrBusy) ||
						errors.Is(other.err, context.Canceled) ||
						errors.Is(other.err, context.DeadlineExceeded) {
						continue
					}
					return nil, other.err
				}
				s.Metrics.CacheHits.Add(1)
				out := *other.res
				out.Cached = true
				return &out, nil
			}
			// Re-check the cache before becoming leader: a flight that
			// finished between our miss and here puts its result before
			// deregistering, so a miss under flightMu is authoritative.
			if v, ok := s.cache.get(key); ok {
				s.flightMu.Unlock()
				s.Metrics.CacheHits.Add(1)
				out := *v
				out.Cached = true
				return &out, nil
			}
			fl = &flight{done: make(chan struct{})}
			s.flights[key] = fl
			s.flightMu.Unlock()
		}
		s.Metrics.CacheMisses.Add(1)
		defer func() {
			if fl.res == nil && fl.err == nil {
				// Reached only if the estimation panicked; don't strand
				// the waiters with a nil result.
				fl.err = fmt.Errorf("service: internal error during shared estimation")
			}
			s.flightMu.Lock()
			delete(s.flights, key)
			s.flightMu.Unlock()
			close(fl.done)
		}()
	}

	res, err := func() (*CountResult, error) {
		// Admission: at most MaxInFlight estimations run concurrently.
		wait := time.Until(admitDeadline)
		if wait <= 0 {
			return nil, ErrBusy
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-time.After(wait):
			return nil, ErrBusy
		case <-ctx.Done():
			return nil, fmt.Errorf("service: %w", ctx.Err())
		}

		t0 := time.Now()
		res, err := s.estimate(inner, cat, params, paramStrs, m, method, budgetFrac, req)
		if err != nil {
			return nil, err
		}
		res.Fingerprint = fp
		res.DurationMS = float64(time.Since(t0)) / 1e6
		s.Metrics.EstimatesRun.Add(1)
		s.Metrics.EstimateNanos.Add(int64(time.Since(t0)))
		s.Metrics.PredicateEvals.Add(res.Evals)
		if !req.NoCache {
			s.cache.put(key, res)
		}
		return res, nil
	}()
	if fl != nil {
		fl.res, fl.err = res, err
	}
	return res, err
}

// estimate is the uncached pipeline: decompose, enumerate, featurize,
// estimate.
func (s *Service) estimate(inner *sql.SelectStmt, cat map[string]*dataset.Table,
	params map[string]engine.Value, paramStrs map[string]string,
	m core.Method, method string, budgetFrac float64, req *CountRequest) (*CountResult, error) {

	dec, err := engine.Decompose(inner)
	if err != nil {
		return nil, badf("decompose: %v", err)
	}
	ev := engine.NewEvaluator(engine.Catalog(cat))
	for name, v := range params {
		ev.SetParam(name, v)
	}
	objects, err := ev.Run(dec.Objects, nil)
	if err != nil {
		return nil, badf("enumerating objects: %v", err)
	}
	out := &CountResult{Method: method, Objects: objects.NumRows(), Seed: req.Seed}
	if objects.NumRows() == 0 {
		out.HasCI = true
		if req.Exact {
			zero := 0
			out.TrueCount = &zero
		}
		return out, nil
	}

	// Feature-free methods (plain random sampling, the exact oracle) skip
	// feature derivation entirely — and with it the single-unique-integer
	// group-key restriction it needs.
	var featCols []string
	features := make([][]float64, objects.NumRows())
	if methodNeedsFeatures(method) {
		ltab := cat[dec.Objects.From[0].Name]
		skip := make(map[string]bool, len(paramStrs))
		for name := range paramStrs {
			skip[name] = true
		}
		featCols, err = engine.NumericFeatureColumns(ltab, dec.FeatureCols, skip)
		if err != nil {
			return nil, badf("%v", err)
		}
		keyCol, err := objectKeyColumn(dec, ltab)
		if err != nil {
			return nil, err
		}
		memo, err := s.tableData(ltab, keyCol, featCols)
		if err != nil {
			return nil, err
		}
		for i := range features {
			v := objects.Value(i, 0)
			if v.Kind != engine.KInt {
				return nil, badf("object key is not an integer")
			}
			r, ok := memo.index[v.I]
			if !ok {
				return nil, badf("object key %d not found in %q", v.I, ltab.Name)
			}
			features[i] = memo.feats[r]
		}
	}

	pred, err := predicate.NewEngineExists(ev, dec, objects)
	if err != nil {
		return nil, badf("%v", err)
	}
	obj, err := core.NewObjectSet(features, pred)
	if err != nil {
		return nil, badf("%v", err)
	}

	budget := int(math.Round(budgetFrac * float64(obj.N())))
	if budget < 10 {
		budget = 10
	}
	if budget > obj.N() {
		budget = obj.N()
	}
	res, err := m.Estimate(obj, budget, xrand.New(req.Seed))
	if err != nil {
		return nil, fmt.Errorf("service: estimation failed: %w", err)
	}

	out.Budget = budget
	out.Estimate = res.Estimate
	out.HasCI = res.HasCI
	if res.HasCI {
		out.CILo, out.CIHi = res.CI.Lo, res.CI.Hi
	}
	out.Evals = res.Evals
	out.FeatureCols = featCols
	if req.Exact {
		tc := predicate.Count(pred, obj.N())
		out.TrueCount = &tc
		// The exact pass spends real predicate evaluations too; report
		// the predicate's full counter, not just the estimation's share.
		out.Evals = pred.Evals()
	}
	return out, nil
}

// objectKeyColumn validates the decomposition's group key for feature
// derivation and returns its base-column name. Queries needing features
// must group by a single integer column that is unique in L (e.g. an id
// column) — the shape of both of the paper's workloads.
func objectKeyColumn(dec *engine.Decomposed, ltab *dataset.Table) (string, error) {
	if len(dec.GroupCols) != 1 {
		return "", badf("served queries must GROUP BY a single key column; got %d", len(dec.GroupCols))
	}
	cr, ok := dec.Objects.Select[0].Expr.(*sql.ColumnRef)
	if !ok {
		return "", badf("group key is not a column reference")
	}
	ci := ltab.ColIndex(cr.Name)
	if ci < 0 {
		return "", badf("table %q has no column %q", ltab.Name, cr.Name)
	}
	if ltab.Schema()[ci].Kind != dataset.Int {
		return "", badf("group key %q must be an integer column", cr.Name)
	}
	return cr.Name, nil
}

// tableData returns the memoized key index and feature matrix for a table
// snapshot, building them on first use. Both depend only on (table
// identity, key column, feature columns); tables are immutable once
// registered, so entries never go stale — a re-registered table is a new
// pointer and misses naturally.
func (s *Service) tableData(ltab *dataset.Table, keyCol string, featCols []string) (*tableMemo, error) {
	memoKey := keyCol + "|" + strings.Join(featCols, ",")
	s.memoMu.Lock()
	memo, ok := s.memos[ltab][memoKey]
	s.memoMu.Unlock()
	if ok {
		return memo, nil
	}

	ci := ltab.ColIndex(keyCol)
	index := make(map[int64]int, ltab.NumRows())
	for r := 0; r < ltab.NumRows(); r++ {
		k := ltab.Int(r, ci)
		if _, dup := index[k]; dup {
			return nil, badf("group key %q is not unique in %q (value %d repeats); cannot derive per-object features", keyCol, ltab.Name, k)
		}
		index[k] = r
	}
	feats, err := ltab.Features(featCols...)
	if err != nil {
		return nil, badf("features: %v", err)
	}
	memo = &tableMemo{index: index, feats: feats}

	s.memoMu.Lock()
	// Drop memos pinning table snapshots the registry has since replaced,
	// so re-uploads don't accumulate stale feature matrices.
	for t := range s.memos {
		if cur, _, ok := s.Registry.Get(t.Name); !ok || cur != t {
			delete(s.memos, t)
		}
	}
	total := 0
	for _, m := range s.memos {
		total += len(m)
	}
	if total >= 64 { // crude bound; entries are per (table, query shape)
		clear(s.memos)
	}
	if s.memos[ltab] == nil {
		s.memos[ltab] = make(map[string]*tableMemo)
	}
	s.memos[ltab][memoKey] = memo
	s.memoMu.Unlock()
	return memo, nil
}

// convertParams turns JSON parameter values into engine values plus their
// canonical string form for fingerprinting.
func convertParams(in map[string]any) (map[string]engine.Value, map[string]string, error) {
	vals := make(map[string]engine.Value, len(in))
	strs := make(map[string]string, len(in))
	for name, raw := range in {
		switch v := raw.(type) {
		case float64:
			if v == math.Trunc(v) && math.Abs(v) < 1e15 {
				vals[name] = engine.IntVal(int64(v))
				strs[name] = strconv.FormatInt(int64(v), 10)
			} else {
				vals[name] = engine.FloatVal(v)
				strs[name] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		case int:
			vals[name] = engine.IntVal(int64(v))
			strs[name] = strconv.Itoa(v)
		case int64:
			vals[name] = engine.IntVal(v)
			strs[name] = strconv.FormatInt(v, 10)
		case string:
			vals[name] = engine.StringVal(v)
			strs[name] = "'" + v + "'"
		case bool:
			return nil, nil, badf("parameter %q: booleans are not supported", name)
		default:
			return nil, nil, badf("parameter %q has unsupported type %T", name, raw)
		}
	}
	return vals, strs, nil
}

// methodNeedsFeatures reports whether a method reads ObjectSet.Features:
// everything except plain random sampling and the exact oracle (grid
// stratification stratifies on attributes; learned and quantification
// methods train on them).
func methodNeedsFeatures(name string) bool {
	return name != "srs" && name != "oracle"
}

// BuildClassifier constructs a named classifier factory. The empty name
// selects the paper's default random forest. parallelism applies to forest
// training/scoring: <= 0 means all cores, 1 sequential.
func BuildClassifier(name string, parallelism int) (core.NewClassifierFunc, error) {
	switch name {
	case "", "rf":
		return core.ForestClassifier(parallelism), nil
	case "knn":
		return func(uint64) learn.Classifier { return learn.NewKNN(5) }, nil
	case "nn":
		return func(seed uint64) learn.Classifier { return learn.NewMLP(seed) }, nil
	case "random":
		return func(seed uint64) learn.Classifier { return learn.NewDummy(seed) }, nil
	}
	return nil, badf("unknown classifier %q", name)
}

// BuildMethod constructs a named estimation method. strata <= 0 selects the
// paper's default of 4 for stratified methods.
func BuildMethod(name string, newClf core.NewClassifierFunc, strata int) (core.Method, error) {
	if strata <= 0 {
		strata = 4
	}
	switch name {
	case "srs":
		return &core.SRS{}, nil
	case "ssp":
		return &core.SSP{Strata: strata}, nil
	case "ssn":
		return &core.SSN{Strata: strata}, nil
	case "lws":
		return &core.LWS{NewClassifier: newClf}, nil
	case "lss":
		return &core.LSS{NewClassifier: newClf, Strata: strata}, nil
	case "qlcc":
		return &core.QLCC{NewClassifier: newClf}, nil
	case "qlac":
		return &core.QLAC{NewClassifier: newClf}, nil
	case "oracle":
		return core.Oracle{}, nil
	}
	return nil, badf("unknown method %q", name)
}
