// Package service is the serving layer over the public lsample SDK: a
// thread-safe dataset registry, a fingerprint-keyed result cache, a
// prepared-query cache, and admission control for concurrent requests. The
// HTTP front end lives in http.go and is exposed by cmd/lsserve.
//
// The estimation pipeline itself — parsing, the §2 decomposition, automatic
// feature selection, and the paper's methods — lives in repro/lsample; the
// service's job is multi-tenant concerns. Each request resolves a versioned
// snapshot of the tables it references, reuses (or prepares) a
// lsample.PreparedQuery bound to that snapshot, and executes it with the
// request's knobs. Results are deterministic in (dataset versions, query
// fingerprint, knobs, seed), which makes the cache semantically lossless
// and lets concurrent clients verify bit-identical answers.
//
// Concurrency model: registered tables are immutable, each request executes
// against an immutable prepared snapshot, and per-dataset admission queues
// admit at most MaxInFlight estimations globally and MaxPerDataset per
// dataset — a request that cannot start within QueueTimeout fails fast with
// ErrBusy instead of piling up, a dataset whose queue is already hopeless
// sheds new arrivals immediately, and a request that opts in (Degrade) gets
// a budget-degraded answer with a wider interval at the deadline instead of
// a 503. Concurrent exact passes over the same snapshot coalesce into one
// shared scan (see sharedscan.go). A request whose context is canceled
// mid-estimation aborts at the next predicate evaluation and returns the
// wrapped cancellation error.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/lsample"
)

// ErrBadRequest marks client errors (unparseable SQL, unknown datasets,
// invalid knobs); the HTTP layer maps it to 400.
var ErrBadRequest = errors.New("service: bad request")

// ErrBusy is returned when admission control cannot start the estimation
// within the queue timeout; the HTTP layer maps it to 503.
var ErrBusy = errors.New("service: too many estimations in flight")

// Options configures a Service. Zero values select the documented defaults.
type Options struct {
	MaxInFlight        int           // concurrent estimations admitted (default 4)
	MaxPerDataset      int           // concurrent estimations per dataset (default MaxInFlight)
	MaxQueuePerDataset int           // queued requests per dataset before immediate 503 (default 8× MaxPerDataset)
	QueueTimeout       time.Duration // max wait for admission (default 2s)
	CacheSize          int           // result-cache entries; 0 default 256, <0 disables
	CacheTTL           time.Duration // result max age; 0 default 10m, <0 no expiry
	DefaultMethod      string        // method when the request omits one (default "lss")
	DefaultBudget      float64       // budget fraction when omitted (default 0.02)
	Parallelism        int           // per-request classifier parallelism (0 default 1, <0 all cores)
	MaxUploadBytes     int64         // CSV upload limit (0 default 64 MiB)
	DataDir            string        // root for durable live datasets ("" = memory-only)
	RetryAfter         time.Duration // Retry-After hint on 503 responses (default 1s)
	CatalogBytes       int64         // reuse-catalog budget; 0 default 64 MiB, <0 disables

	// TraceSample is the head-sampling probability for request traces in
	// [0, 1]; 0 records nothing unless a request forces it (explain, a
	// sampled inbound traceparent, or a slow-query threshold).
	TraceSample float64
	// TraceRing is the completed-trace ring capacity (0 default 256).
	TraceRing int
	// SlowQuery, when > 0, logs the full span tree of any request slower
	// than the threshold (this forces recording on every request, so the
	// offending trace exists when the threshold trips).
	SlowQuery time.Duration
	// Logger receives structured JSON logs (slow queries, panics, the
	// shutdown summary). Nil defaults to a JSON logger on stderr.
	Logger *obs.Logger
	// DisableMetrics leaves GET /metrics off the HTTP handler.
	DisableMetrics bool
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4
	}
	if o.MaxPerDataset <= 0 || o.MaxPerDataset > o.MaxInFlight {
		o.MaxPerDataset = o.MaxInFlight
	}
	if o.MaxQueuePerDataset <= 0 {
		o.MaxQueuePerDataset = 8 * o.MaxPerDataset
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 2 * time.Second
	}
	switch {
	case o.CacheSize == 0:
		o.CacheSize = 256
	case o.CacheSize < 0:
		o.CacheSize = 0
	}
	switch {
	case o.CacheTTL == 0:
		o.CacheTTL = 10 * time.Minute
	case o.CacheTTL < 0:
		o.CacheTTL = 0
	}
	if o.DefaultMethod == "" {
		o.DefaultMethod = "lss"
	}
	if o.DefaultBudget <= 0 {
		o.DefaultBudget = 0.02
	}
	if o.Parallelism == 0 {
		o.Parallelism = 1
	}
	if o.MaxUploadBytes == 0 {
		o.MaxUploadBytes = 64 << 20
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.TraceRing <= 0 {
		o.TraceRing = 256
	}
	if o.Logger == nil {
		o.Logger = obs.NewLogger(os.Stderr)
	}
	return o
}

// Service wires the registry, caches, metrics, and admission control around
// the SDK's estimation pipeline.
type Service struct {
	Registry *Registry
	Metrics  *Metrics
	opts     Options
	cache    *resultCache
	admit    *admitter
	scans    *scanCoalescer
	degSem   chan struct{} // dedicated slot(s) for budget-degraded answers

	flightMu sync.Mutex
	flights  map[string]*flight

	prepMu sync.Mutex
	preps  map[string]*lsample.PreparedQuery

	// shardExecs caches per-(query, knobs, shard) executors for the
	// /v1/shard worker endpoint; see shardapi.go.
	shardMu     sync.Mutex
	shardExecs  map[string]*shardExecEntry
	shardSeq    uint64
	shardLayout int // last served shard count; a change evicts the old layout

	// catalog is the shared cross-query reuse catalog every prepared
	// session executes through; nil when Options.CatalogBytes < 0.
	catalog *lsample.Catalog

	// tracer records request traces (see internal/obs); logger emits
	// structured JSON lines; prom is the /metrics registry over both plus
	// the Metrics atomics. started anchors the shutdown uptime summary.
	tracer  *obs.Tracer
	logger  *obs.Logger
	prom    *obs.Registry
	started time.Time

	// ingestApply overrides how Ingest applies a delta to a live table; nil
	// means lt.ApplyDelta. Tests inject durability faults through it.
	ingestApply func(lt *lsample.LiveTable, format string, r io.Reader) (lsample.DeltaSummary, error)
}

// flight is one in-progress estimation that concurrent identical requests
// wait on instead of re-running it (results are deterministic in the cache
// key, so sharing is always correct).
type flight struct {
	done chan struct{}
	res  *CountResult
	err  error
}

// New returns a Service over reg with the given options.
func New(reg *Registry, opts Options) *Service {
	o := opts.withDefaults()
	var cat *lsample.Catalog
	if o.CatalogBytes >= 0 {
		cat = lsample.NewCatalog(o.CatalogBytes)
	}
	m := &Metrics{}
	s := &Service{
		Registry:   reg,
		Metrics:    m,
		opts:       o,
		cache:      newResultCache(o.CacheSize, o.CacheTTL),
		admit:      newAdmitter(o.MaxInFlight, o.MaxPerDataset, o.MaxQueuePerDataset),
		scans:      newScanCoalescer(m),
		degSem:     make(chan struct{}, 1),
		flights:    make(map[string]*flight),
		preps:      make(map[string]*lsample.PreparedQuery),
		shardExecs: make(map[string]*shardExecEntry),
		catalog:    cat,
		logger:     o.Logger,
		started:    time.Now(),
	}
	s.tracer = obs.NewTracer(obs.TracerConfig{
		Sample:    o.TraceSample,
		RingSize:  o.TraceRing,
		SlowQuery: o.SlowQuery,
		Logger:    o.Logger,
	})
	s.prom = s.newPromRegistry()
	return s
}

// Tracer exposes the service's request tracer (tests and embedding
// binaries read the completed-trace ring through it).
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// CatalogStats returns the reuse catalog's accounting (zero when the
// catalog is disabled).
func (s *Service) CatalogStats() lsample.CatalogStats {
	if s.catalog == nil {
		return lsample.CatalogStats{}
	}
	return s.catalog.Stats()
}

// CountRequest is one estimation request.
type CountRequest struct {
	SQL        string         `json:"sql"`
	Params     map[string]any `json:"params,omitempty"`     // free identifiers: numbers or strings
	Method     string         `json:"method,omitempty"`     // srs ssp ssn lws lss qlcc qlac oracle
	Budget     float64        `json:"budget,omitempty"`     // fraction of |O| to label, (0,1]
	Classifier string         `json:"classifier,omitempty"` // rf knn nn random (default rf)
	Strata     int            `json:"strata,omitempty"`     // strata for stratified methods (default 4)
	Interval   string         `json:"interval,omitempty"`   // wald (default) or wilson
	Seed       uint64         `json:"seed,omitempty"`
	Shards     int            `json:"shards,omitempty"`   // >0: sharded in-process execution (srs/lss/oracle)
	Exact      bool           `json:"exact,omitempty"`    // also compute the true count (slow)
	NoCache    bool           `json:"no_cache,omitempty"` // bypass the result cache
	// Degrade opts into a budget-degraded answer when admission control
	// would otherwise 503: a tiny simple-random-sample estimate (wider
	// confidence interval, no exact pass, never cached) computed under a
	// dedicated slot, marked Degraded in the result.
	Degrade bool `json:"degrade,omitempty"`
	// Explain forces this request's trace to be recorded and returns the
	// completed span tree inline in the result (never cached).
	Explain bool `json:"explain,omitempty"`
}

// CountResult is the outcome of one estimation request. A GROUP BY request
// additionally carries one GroupRow per group (ordered by key) with
// Estimate holding the sum of the per-group estimates.
type CountResult struct {
	Fingerprint string     `json:"fingerprint"`
	Method      string     `json:"method"`
	Interval    string     `json:"interval"`
	Objects     int        `json:"objects"` // |O| enumerated by Q2
	Budget      int        `json:"budget"`  // predicate evaluations allowed
	Estimate    float64    `json:"estimate"`
	CILo        float64    `json:"ci_lo"` // meaningful only when has_ci (no omitempty: 0 is a valid bound)
	CIHi        float64    `json:"ci_hi"`
	HasCI       bool       `json:"has_ci"`
	Evals       int64      `json:"evals"` // predicate evaluations spent
	TrueCount   *int       `json:"true_count,omitempty"`
	FeatureCols []string   `json:"feature_cols,omitempty"`
	GroupCols   []string   `json:"group_cols,omitempty"` // GROUP BY requests only
	Groups      []GroupRow `json:"groups,omitempty"`     // GROUP BY requests only, ordered by key
	Seed        uint64     `json:"seed"`
	DurationMS  float64    `json:"duration_ms"`
	PredicateMS float64    `json:"predicate_ms"`          // wall time inside the expensive predicate
	Compiled    bool       `json:"compiled"`              // labeling ran through the compiled predicate engine
	Reuse       string     `json:"reuse"`                 // catalog reuse path: "direct", "extension", or "none"
	Shards      int        `json:"shards,omitempty"`      // >0 when the answer was computed sharded
	Degraded    bool       `json:"degraded,omitempty"`    // lost shards absorbed into the interval, or a budget-degraded under-load answer (Degrade)
	LostShards  []int      `json:"lost_shards,omitempty"` // shard indices lost mid-query (degraded answers)
	Cached      bool       `json:"cached"`
	// Trace is the request's completed span tree, present only when the
	// request set Explain. It is attached to a per-request copy after the
	// estimation finishes, so cached results never carry a stale trace.
	Trace *obs.SpanData `json:"trace,omitempty"`
}

// GroupRow is one group's estimate within a GROUP BY count response.
type GroupRow struct {
	Key       []string `json:"key"` // group column values, aligned with group_cols
	Objects   int      `json:"objects"`
	Estimate  float64  `json:"estimate"`
	CILo      float64  `json:"ci_lo"`
	CIHi      float64  `json:"ci_hi"`
	HasCI     bool     `json:"has_ci"`
	Sampled   int      `json:"sampled"`
	Exact     bool     `json:"exact"`
	TrueCount *int     `json:"true_count,omitempty"`
}

// badf wraps a client error.
func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// mapSDKErr converts lsample errors into the service's error vocabulary so
// the HTTP layer's status mapping has a single set of sentinels: client
// errors become ErrBadRequest (400), durability failures ErrDurability
// (503 + Retry-After).
func mapSDKErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, lsample.ErrUnavailable) {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	if errors.Is(err, lsample.ErrInvalid) {
		// Double-wrap: callers branch on ErrBadRequest, but the underlying
		// chain (e.g. an http.MaxBytesError) must stay reachable so the
		// HTTP layer can map size violations to 413 rather than 400.
		return fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	return err
}

// Count runs one estimation request end to end.
func (s *Service) Count(req *CountRequest) (*CountResult, error) {
	return s.CountCtx(context.Background(), req)
}

// CountCtx is Count with cancellation: ctx aborts waiting — for admission
// or for a coalesced in-flight estimation — and, since the SDK observes
// cancellation at labeling-loop granularity, also aborts an estimation that
// has already been admitted. A canceled leader's partial work is discarded;
// coalesced waiters retry on their own admission budget.
func (s *Service) CountCtx(ctx context.Context, req *CountRequest) (*CountResult, error) {
	s.Metrics.Requests.Add(1)
	t0 := time.Now()
	defer func() { s.Metrics.Latency.Record(time.Since(t0)) }()
	ctx, span := s.tracer.StartRequest(ctx, "count", req.Explain)
	res, err := func() (r *CountResult, e error) {
		// A data-dependent evaluation failure deep inside an estimation
		// (e.g. EngineExists panics on an object the construction-time
		// validation did not reach) must become a 500, not kill the
		// request goroutine.
		defer func() {
			if p := recover(); p != nil {
				s.logger.Error(ctx, "panic serving count request",
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				r, e = nil, fmt.Errorf("service: internal error: %v", p)
			}
		}()
		return s.count(ctx, req)
	}()
	if err != nil {
		if errors.Is(err, ErrBusy) {
			s.Metrics.Rejected.Add(1)
		} else {
			s.Metrics.Errors.Add(1)
		}
		span.Set("error", err.Error())
	} else if res != nil {
		span.Set("method", res.Method)
		span.Set("objects", res.Objects)
		span.Set("evals", res.Evals)
		span.Set("cached", res.Cached)
	}
	span.End()
	if err == nil && res != nil && req.Explain && span.Recording() {
		// Attach the trace to a per-request copy: the flight/cache paths
		// above may share res with concurrent requests, and a cached result
		// must never carry another request's span tree.
		out := *res
		out.Trace = span.Data()
		return &out, nil
	}
	return res, err
}

func (s *Service) count(ctx context.Context, req *CountRequest) (*CountResult, error) {
	if req.SQL == "" {
		return nil, badf("missing sql")
	}
	method := req.Method
	if method == "" {
		method = s.opts.DefaultMethod
	}
	budgetFrac := req.Budget
	if budgetFrac == 0 {
		budgetFrac = s.opts.DefaultBudget
	}
	if !(budgetFrac > 0 && budgetFrac <= 1) { // NaN fails both comparisons
		return nil, badf("budget %v outside (0, 1]", budgetFrac)
	}
	if req.Shards < 0 {
		return nil, badf("shards %d < 0", req.Shards)
	}

	// Normalize the knobs that have defaults, so a request spelling them
	// out shares a cache entry with one that omits them — and reject
	// unknown names before any per-object work.
	clfName := req.Classifier
	if clfName == "" {
		clfName = "rf"
	}
	strata := req.Strata
	if strata <= 0 {
		strata = 4
	}
	iv, err := lsample.ParseInterval(req.Interval)
	if err != nil {
		return nil, mapSDKErr(err)
	}
	execOpts, err := s.execOptions(method, clfName, strata, iv, budgetFrac, req)
	if err != nil {
		return nil, mapSDKErr(err)
	}

	// Identify the query and its data for the caches: the canonical
	// parameter-free fingerprint, a deterministic encoding of the bound
	// parameters (encoding/json sorts map keys), and the versions of every
	// table referenced — including subquery-only ones.
	fp0, tables, err := lsample.QueryShape(req.SQL)
	if err != nil {
		return nil, mapSDKErr(err)
	}
	paramsJSON, err := json.Marshal(req.Params)
	if err != nil {
		return nil, badf("parameters are not encodable: %v", err)
	}
	snap, versions, err := s.Registry.Resolve(tables)
	if err != nil {
		return nil, err
	}

	key := fmt.Sprintf("%s|%s|%s|%s|%s|%d|%s|%g|%d|%t|s%d",
		versions, fp0, paramsJSON, method, clfName, strata, iv, budgetFrac, req.Seed, req.Exact, req.Shards)
	// Every admission attempt this request makes — as leader now or after
	// retrying a failed leader — draws from one QueueTimeout budget, so
	// coalescing can neither reject a request before its own window ends
	// nor let retries stack into multiples of it.
	admitDeadline := time.Now().Add(s.opts.QueueTimeout)

	var fl *flight
	if !req.NoCache {
		if v, ok := s.cache.get(key); ok {
			s.Metrics.CacheHits.Add(1)
			out := *v // shallow copy; cached fields are read-only
			out.Cached = true
			return &out, nil
		}
		// Coalesce concurrent identical requests onto one estimation: a
		// cold cache plus many clients must not run the same work
		// MaxInFlight times and 503 the rest.
		for fl == nil {
			s.flightMu.Lock()
			if other, ok := s.flights[key]; ok {
				s.flightMu.Unlock()
				select {
				case <-other.done:
				case <-ctx.Done():
					return nil, fmt.Errorf("service: %w", ctx.Err())
				}
				if other.err != nil {
					// The leader's failure to start — its client went
					// away, or its admission window (which began before
					// ours) expired — says nothing about this request:
					// take our own turn, bounded by admitDeadline.
					if errors.Is(other.err, ErrBusy) ||
						errors.Is(other.err, context.Canceled) ||
						errors.Is(other.err, context.DeadlineExceeded) {
						continue
					}
					return nil, other.err
				}
				s.Metrics.CacheHits.Add(1)
				out := *other.res
				out.Cached = true
				return &out, nil
			}
			// Re-check the cache before becoming leader: a flight that
			// finished between our miss and here puts its result before
			// deregistering, so a miss under flightMu is authoritative.
			if v, ok := s.cache.get(key); ok {
				s.flightMu.Unlock()
				s.Metrics.CacheHits.Add(1)
				out := *v
				out.Cached = true
				return &out, nil
			}
			fl = &flight{done: make(chan struct{})}
			s.flights[key] = fl
			s.flightMu.Unlock()
		}
		s.Metrics.CacheMisses.Add(1)
		defer func() {
			if fl.res == nil && fl.err == nil {
				// Reached only if the estimation panicked; don't strand
				// the waiters with a nil result.
				fl.err = fmt.Errorf("service: internal error during shared estimation")
			}
			s.flightMu.Lock()
			delete(s.flights, key)
			s.flightMu.Unlock()
			close(fl.done)
		}()
	}

	res, err := func() (*CountResult, error) {
		// Admission: at most MaxInFlight estimations run concurrently, at
		// most MaxPerDataset of them against this request's dataset.
		_, wsp := obs.StartSpan(ctx, "admission.wait")
		wsp.Set("dataset", versions)
		aerr := s.admit.acquire(ctx, versions, admitDeadline)
		if aerr != nil {
			wsp.Set("error", aerr.Error())
		}
		wsp.End()
		if aerr != nil {
			return nil, aerr
		}
		defer s.admit.release(versions)

		t0 := time.Now()
		res, err := s.estimate(ctx, req, versions, fp0, snap, iv, execOpts)
		if err != nil {
			return nil, err
		}
		res.DurationMS = float64(time.Since(t0)) / 1e6
		s.Metrics.EstimatesRun.Add(1)
		s.Metrics.EstimateNanos.Add(int64(time.Since(t0)))
		s.Metrics.PredicateEvals.Add(res.Evals)
		s.Metrics.PredicateNanos.Add(int64(res.PredicateMS * 1e6))
		if !req.NoCache {
			s.cache.put(key, res)
		}
		return res, nil
	}()
	if fl != nil {
		fl.res, fl.err = res, err
	}
	// Deadline-aware degradation: the flight above has already published
	// ErrBusy (coalesced waiters retry on their own budgets), but this
	// client asked for a degraded answer over a 503.
	if err != nil && errors.Is(err, ErrBusy) && req.Degrade {
		if dres, derr := s.degraded(ctx, req, versions, fp0, snap, iv); derr == nil {
			s.Metrics.Degraded.Add(1)
			return dres, nil
		}
	}
	return res, err
}

// degradedBudget caps the labeling budget of a budget-degraded answer.
const degradedBudget = 0.005

// degradedWait bounds how long a shed request waits for the dedicated
// degraded-answer slot before giving up and returning the original 503.
const degradedWait = 100 * time.Millisecond

// degraded computes the budget-degraded answer for a request that admission
// shed: a tiny simple-random-sample estimate (so the client gets an
// unbiased count with a wider confidence interval at its deadline instead
// of a 503) under a dedicated single-slot semaphore that keeps degraded
// service available while the main admission queues are saturated. The
// answer skips the exact pass, is marked Degraded, and is never cached.
func (s *Service) degraded(ctx context.Context, req *CountRequest, versions, fp0 string,
	snap map[string]*lsample.Table, iv lsample.Interval) (*CountResult, error) {

	select {
	case s.degSem <- struct{}{}:
		defer func() { <-s.degSem }()
	case <-time.After(degradedWait):
		return nil, ErrBusy
	case <-ctx.Done():
		return nil, fmt.Errorf("service: %w", ctx.Err())
	}
	budget := degradedBudget
	if req.Budget > 0 && req.Budget < budget {
		budget = req.Budget
	}
	opts := []lsample.Option{
		lsample.WithMethod("srs"),
		lsample.WithBudget(budget),
		lsample.WithInterval(iv),
		lsample.WithSeed(req.Seed),
		lsample.WithParallelism(1),
	}
	dreq := *req
	dreq.Exact = false
	dreq.Shards = 0
	t0 := time.Now()
	res, err := s.estimate(ctx, &dreq, versions, fp0, snap, iv, opts)
	if err != nil {
		return nil, err
	}
	res.DurationMS = float64(time.Since(t0)) / 1e6
	res.Degraded = true
	s.Metrics.EstimatesRun.Add(1)
	s.Metrics.EstimateNanos.Add(int64(time.Since(t0)))
	s.Metrics.PredicateEvals.Add(res.Evals)
	s.Metrics.PredicateNanos.Add(int64(res.PredicateMS * 1e6))
	return res, nil
}

// execOptions translates normalized request knobs into SDK options,
// validating names eagerly (before admission).
func (s *Service) execOptions(method, clfName string, strata int, iv lsample.Interval,
	budgetFrac float64, req *CountRequest) ([]lsample.Option, error) {

	opts := []lsample.Option{
		lsample.WithMethod(method),
		lsample.WithClassifier(clfName),
		lsample.WithStrata(strata),
		lsample.WithInterval(iv),
		lsample.WithBudget(budgetFrac),
		lsample.WithSeed(req.Seed),
		lsample.WithParallelism(s.opts.Parallelism),
		lsample.WithExact(req.Exact),
		// Concurrent exact passes over the same snapshot coalesce into one
		// shared scan; non-exact requests never consult the coalescer.
		lsample.WithScanCoalescer(s.scans),
	}
	if req.Shards > 0 {
		opts = append(opts, lsample.WithShards(req.Shards))
	}
	// NoCache promises a full recomputation, so it bypasses the reuse
	// catalog too — concurrent no-cache clients verifying bit-identical
	// answers must all pay (and report) the same full evaluation bill.
	if req.NoCache {
		opts = append(opts, lsample.WithCatalog(nil))
	}
	// Applying the options to a throwaway estimator surfaces unknown
	// method/classifier names now, so bad requests never occupy an
	// admission slot.
	if _, err := lsample.NewEstimator(opts...); err != nil {
		return nil, err
	}
	return opts, nil
}

// estimate runs the uncached path: reuse (or prepare) the query against the
// resolved snapshot and execute it through the SDK.
func (s *Service) estimate(ctx context.Context, req *CountRequest, versions, fp0 string,
	snap map[string]*lsample.Table, iv lsample.Interval, opts []lsample.Option) (*CountResult, error) {

	_, psp := obs.StartSpan(ctx, "prepare")
	prep, err := s.prepared(versions, fp0, req.SQL, snap)
	psp.End()
	if err != nil {
		return nil, mapSDKErr(err)
	}
	if prep.IsGrouped() {
		ge, err := prep.ExecuteGroups(ctx, req.Params, opts...)
		if err != nil {
			return nil, mapSDKErr(err)
		}
		out := &CountResult{
			Fingerprint: ge.Fingerprint,
			Method:      ge.Method,
			Interval:    iv.String(),
			Objects:     ge.Objects,
			Budget:      ge.Budget,
			Estimate:    ge.Total,
			Evals:       ge.SamplesUsed,
			FeatureCols: ge.FeatureColumns,
			GroupCols:   ge.GroupColumns,
			Groups:      make([]GroupRow, len(ge.Groups)),
			Seed:        ge.Seed,
			PredicateMS: float64(ge.Timings.Predicate) / 1e6,
			Compiled:    ge.Labeling.Compiled,
			Reuse:       lsample.ReuseNone, // grouped plans are outside the catalog's contract
			Shards:      req.Shards,
		}
		trueTotal := 0
		for i, g := range ge.Groups {
			row := GroupRow{
				Key:       g.Key,
				Objects:   g.Objects,
				Estimate:  g.Count,
				HasCI:     g.CI != nil,
				Sampled:   g.Sampled,
				Exact:     g.Exact,
				TrueCount: g.TrueCount,
			}
			if g.CI != nil {
				row.CILo, row.CIHi = g.CI.Lo, g.CI.Hi
			}
			if g.TrueCount != nil {
				trueTotal += *g.TrueCount
			}
			out.Groups[i] = row
		}
		// Under exact the top-level true count is the per-group sum, so
		// grouped and plain responses expose the same field.
		if req.Exact && len(ge.Groups) > 0 {
			out.TrueCount = &trueTotal
		}
		return out, nil
	}
	est, err := prep.Execute(ctx, req.Params, opts...)
	if err != nil {
		return nil, mapSDKErr(err)
	}
	out := &CountResult{
		Fingerprint: est.Fingerprint,
		Method:      est.Method,
		Interval:    iv.String(),
		Objects:     est.Objects,
		Budget:      est.Budget,
		Estimate:    est.Count,
		HasCI:       est.CI != nil,
		Evals:       est.SamplesUsed,
		TrueCount:   est.TrueCount,
		FeatureCols: est.FeatureColumns,
		Seed:        est.Seed,
		PredicateMS: float64(est.Timings.Predicate) / 1e6,
		Compiled:    est.Labeling.Compiled,
		Reuse:       est.Reuse,
		Shards:      req.Shards,
	}
	if out.Reuse == "" {
		out.Reuse = lsample.ReuseNone // classic path: no catalog in play
	}
	if est.CI != nil {
		out.CILo, out.CIHi = est.CI.Lo, est.CI.Hi
	}
	return out, nil
}

// prepared returns the cached PreparedQuery for (dataset versions, query
// fingerprint), preparing it against the resolved snapshot on first use.
// Prepared queries hold the parsed AST, the §2 decomposition, and — after
// their first feature-using execution — the O(N) key index and feature
// matrix, so repeated requests over the same data skip all of that work.
func (s *Service) prepared(versions, fp0, sqlText string, snap map[string]*lsample.Table) (*lsample.PreparedQuery, error) {
	prepKey := versions + "|" + fp0
	s.prepMu.Lock()
	prep, ok := s.preps[prepKey]
	s.prepMu.Unlock()
	if ok {
		return prep, nil
	}

	tables := make([]*lsample.Table, 0, len(snap))
	for _, t := range snap {
		tables = append(tables, t)
	}
	sess, err := lsample.NewSession(lsample.NewMemorySource(tables...),
		lsample.WithCatalog(s.catalog))
	if err != nil {
		return nil, err
	}
	prep, err = sess.Prepare(sqlText)
	if err != nil {
		return nil, err
	}

	s.prepMu.Lock()
	if cur, ok := s.preps[prepKey]; ok {
		// A concurrent request prepared the same key; share its feature
		// memoization instead of keeping two.
		prep = cur
	} else {
		// Drop entries pinning table snapshots the registry has since
		// replaced (their versioned keys can never be requested again), and
		// bound the map crudely — entries are per (data version, query).
		s.dropStalePrepsLocked()
		if len(s.preps) >= 64 {
			clear(s.preps)
		}
		s.preps[prepKey] = prep
	}
	s.prepMu.Unlock()
	return prep, nil
}

// dropStalePreps evicts prepared queries whose keys reference dataset
// versions the registry no longer serves. It runs on every registration and
// ingest (not just lazily inside prepared), so superseded snapshots are
// released as soon as they are superseded — the registry's memory footprint
// stays proportional to the live version set, not the update history. The
// same hook evicts reuse-catalog entries keyed to superseded snapshots, so
// a live Repin or re-registration can never leave a stale catalog entry
// serving an old data version.
func (s *Service) dropStalePreps() {
	s.prepMu.Lock()
	s.dropStalePrepsLocked()
	s.prepMu.Unlock()
	s.dropStaleShardExecs()
	if s.catalog != nil {
		s.catalog.EvictStale(s.Registry.Current())
	}
}

func (s *Service) dropStalePrepsLocked() {
	for k := range s.preps {
		if s.stalePrep(k) {
			delete(s.preps, k)
		}
	}
}

// retainedPrepSnapshots reports how many prepared-query entries (each
// pinning one consistent set of table snapshots) the service currently
// retains; tests bound it under repeated re-registration.
func (s *Service) retainedPrepSnapshots() int {
	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	return len(s.preps)
}

// stalePrep reports whether a prepared-query key references any table
// version the registry no longer serves.
func (s *Service) stalePrep(key string) bool {
	versions, _, ok := strings.Cut(key, "|")
	if !ok {
		return true
	}
	for _, part := range strings.Split(versions, ",") {
		name, ver, ok := strings.Cut(part, "@")
		if !ok {
			return true
		}
		_, cur, found := s.Registry.Get(name)
		if !found || strconv.FormatUint(cur, 10) != ver {
			return true
		}
	}
	return false
}
