package service

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestHistIndexMonotone sweeps the bucket mapping: indices stay in range,
// never decrease as the value grows, and each bucket's reported upper
// bound actually bounds the values it holds within the ≤25% width.
func TestHistIndexMonotone(t *testing.T) {
	check := func(ns int64, prev int) int {
		idx := histIndex(ns)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d out of range", ns, idx)
		}
		if idx < prev {
			t.Fatalf("histIndex(%d) = %d < previous %d: not monotone", ns, idx, prev)
		}
		// The top bucket's bound clamps to MaxInt64 and becomes inclusive.
		if up := histUpper(idx); ns >= up && up != math.MaxInt64 {
			t.Fatalf("histIndex(%d) = %d but histUpper = %d", ns, idx, up)
		}
		if ns >= 8 {
			if up := histUpper(idx); float64(up-ns) > 0.25*float64(ns)+1 {
				t.Fatalf("bucket of %dns overstates by %dns (>25%%)", ns, up-ns)
			}
		}
		return idx
	}
	prev := 0
	for ns := int64(0); ns < 1<<14; ns++ {
		prev = check(ns, prev)
	}
	// Geometric sweep to the top of the range.
	prev = 0
	for ns := int64(1); ns > 0 && ns < math.MaxInt64/3; ns = ns*3 + 1 {
		prev = check(ns, prev)
	}
	check(math.MaxInt64, prev)
	if got := histIndex(-5); got != 0 {
		t.Fatalf("negative duration bucket = %d, want 0", got)
	}
}

// TestLatencyHistQuantiles records a known distribution and checks the
// summary brackets the true quantiles within bucket resolution.
func TestLatencyHistQuantiles(t *testing.T) {
	var h LatencyHist
	if s := h.Summary(); s.Count != 0 || s.MaxMS != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	// 980 requests at ~1ms, 20 at 100ms: p50/p90 land in the 1ms octave,
	// p99/p999 and max in the 100ms octave.
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 980; i++ {
		h.Record(time.Millisecond + time.Duration(r.Intn(100_000)))
	}
	for i := 0; i < 20; i++ {
		h.Record(100 * time.Millisecond)
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.P50MS < 1 || s.P50MS > 1.5 {
		t.Fatalf("p50 = %vms, want ≈1ms", s.P50MS)
	}
	if s.P90MS > 1.5 {
		t.Fatalf("p90 = %vms, want ≈1ms", s.P90MS)
	}
	if s.P99MS < 100 || s.P99MS > 130 {
		t.Fatalf("p99 = %vms, want ≈100ms", s.P99MS)
	}
	if s.P999MS < 100 || s.P999MS > 130 {
		t.Fatalf("p999 = %vms, want ≈100ms", s.P999MS)
	}
	if s.MaxMS != 100 {
		t.Fatalf("max = %vms, want 100ms", s.MaxMS)
	}
	if s.P50MS > s.P90MS || s.P90MS > s.P99MS || s.P99MS > s.P999MS || s.P999MS > s.MaxMS {
		t.Fatalf("quantiles not ordered: %+v", s)
	}
}

// TestStatsExposeLatency pins that a served request shows up in the
// /v1/stats latency block with a nonzero p99.
func TestStatsExposeLatency(t *testing.T) {
	svc := newTestService(t, 60, Options{})
	if _, err := svc.Count(&CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Method: "srs", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	snap := svc.Metrics.Snapshot()
	if snap.Latency.Count != 1 {
		t.Fatalf("latency count = %d, want 1", snap.Latency.Count)
	}
	if snap.Latency.P99MS <= 0 || snap.Latency.MaxMS <= 0 {
		t.Fatalf("latency summary not populated: %+v", snap.Latency)
	}
}
