package service

import (
	"fmt"
	"io"
	"time"

	"repro/lsample"
)

// RegisterTable registers (or replaces) a static dataset and immediately
// evicts prepared queries pinning snapshots no registered version serves
// anymore — superseded snapshots become collectable at re-registration
// time instead of lingering until some later request happens to prepare.
func (s *Service) RegisterTable(t *lsample.Table) uint64 {
	v := s.Registry.Register(t)
	s.dropStalePreps()
	return v
}

// RegisterLiveTable registers (or replaces) a live dataset, serving its
// current snapshot and accepting /v1/ingest deltas from then on.
func (s *Service) RegisterLiveTable(lt *lsample.LiveTable) uint64 {
	v := s.Registry.RegisterLive(lt)
	s.dropStalePreps()
	return v
}

// IngestResult reports one ingest request: what was committed and the
// dataset version serving it. On durable datasets Durable is true and
// DurableVersion is the table version the write-ahead log had fsynced
// before this response was sent — everything up to it survives a crash.
type IngestResult struct {
	Name           string  `json:"name"`
	Format         string  `json:"format"`
	Appended       int     `json:"appended"`
	Updated        int     `json:"updated"`
	Deleted        int     `json:"deleted"`
	Batches        int     `json:"batches"`
	Rows           int     `json:"rows"` // live rows after the ingest
	Version        uint64  `json:"version"`
	Durable        bool    `json:"durable,omitempty"`
	DurableVersion uint64  `json:"durable_version,omitempty"`
	DurationMS     float64 `json:"duration_ms"`
}

// Ingest stream-parses a delta (format "csv" or "ndjson") into the named
// live dataset in bounded batches, then publishes the new snapshot under a
// fresh version — which is what invalidates every cached result and
// prepared query over the old one. Batches are durable as they apply: a
// mid-stream error (bad line, body over the size limit) keeps the batches
// already committed, re-publishes, and reports the failure; the error
// message carries how many rows were committed first.
func (s *Service) Ingest(name, format string, r io.Reader) (*IngestResult, error) {
	s.Metrics.IngestRequests.Add(1)
	lt, ok := s.Registry.Live(name)
	if !ok {
		s.Metrics.IngestErrors.Add(1)
		if _, _, exists := s.Registry.Get(name); exists {
			return nil, badf("dataset %q is not live; re-upload it with ?live=1 to enable ingestion", name)
		}
		return nil, badf("unknown dataset %q", name)
	}
	t0 := time.Now()
	apply := s.ingestApply
	if apply == nil {
		apply = func(lt *lsample.LiveTable, format string, r io.Reader) (lsample.DeltaSummary, error) {
			return lt.ApplyDelta(format, r, 0)
		}
	}
	sum, ierr := apply(lt, format, r)
	version := uint64(0)
	repinned := true
	if sum.Batches > 0 {
		// Something committed: publish it (and drop preparations pinning
		// superseded snapshots) whether or not the stream later failed.
		version, repinned = s.Registry.Repin(name, lt)
		s.dropStalePreps()
	}
	s.Metrics.IngestRows.Add(int64(sum.Rows()))
	s.Metrics.IngestBatches.Add(int64(sum.Batches))
	if ierr != nil {
		s.Metrics.IngestErrors.Add(1)
		return nil, fmt.Errorf("%w (after committing %d rows in %d batches)", mapSDKErr(ierr), sum.Rows(), sum.Batches)
	}
	if !repinned {
		// The dataset was re-registered while this delta streamed: the rows
		// went to the superseded table and will never be served. Surface
		// the conflict instead of reporting success.
		s.Metrics.IngestErrors.Add(1)
		return nil, badf("dataset %q was replaced during the ingest; the delta was not published — retry against the new dataset", name)
	}
	out := &IngestResult{
		Name:       name,
		Format:     format,
		Appended:   sum.Appended,
		Updated:    sum.Updated,
		Deleted:    sum.Deleted,
		Batches:    sum.Batches,
		Rows:       lt.NumRows(),
		Version:    version,
		DurationMS: float64(time.Since(t0)) / 1e6,
	}
	if lt.Durable() {
		// Every applied batch was fsynced before ApplyDelta returned it as
		// committed, so the summary's table version is the durable one.
		out.Durable = true
		out.DurableVersion = sum.Version
	}
	return out, nil
}
