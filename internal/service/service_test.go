package service

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/xrand"
	"repro/lsample"
)

// skybandQuery is Example 2's k-skyband counting query: objects with fewer
// than k dominators.
const skybandQuery = `SELECT o1.id FROM D o1, D o2
	WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
	GROUP BY o1.id HAVING COUNT(*) < k`

// testTable builds D(id, x, y) with n uniform points.
func testTable(n int, seed uint64) *lsample.Table {
	r := xrand.New(seed)
	t, err := lsample.NewTable("D", "id:int,x:float,y:float")
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		if err := t.AppendRow(int64(i), r.Float64()*100, r.Float64()*100); err != nil {
			panic(err)
		}
	}
	return t
}

// trueSkyband counts rows of t with at least one but fewer than k
// dominators, by brute force. The lower bound mirrors the query's GROUP BY
// semantics: a row with zero dominators produces no join rows, hence no
// group, so the self-join form does not count it.
func trueSkyband(t *lsample.Table, k int) int {
	n := t.NumRows()
	xi, yi := t.ColIndex("x"), t.ColIndex("y")
	count := 0
	for i := 0; i < n; i++ {
		dom := 0
		for j := 0; j < n; j++ {
			if t.Float(j, xi) >= t.Float(i, xi) && t.Float(j, yi) >= t.Float(i, yi) &&
				(t.Float(j, xi) > t.Float(i, xi) || t.Float(j, yi) > t.Float(i, yi)) {
				dom++
			}
		}
		if dom > 0 && dom < k {
			count++
		}
	}
	return count
}

func newTestService(t *testing.T, n int, opts Options) *Service {
	t.Helper()
	reg := NewRegistry()
	reg.Register(testTable(n, 7))
	return New(reg, opts)
}

// occupyAdmission takes one global admission slot under a key no request
// uses; the returned func releases it.
func occupyAdmission(t *testing.T, svc *Service) func() {
	t.Helper()
	if err := svc.admit.acquire(context.Background(), "\x00occupied", time.Now().Add(time.Minute)); err != nil {
		t.Fatalf("occupying admission: %v", err)
	}
	return func() { svc.admit.release("\x00occupied") }
}

func TestCountOracleMatchesBruteForce(t *testing.T) {
	const n, k = 120, 10
	svc := newTestService(t, n, Options{})
	res, err := svc.Count(&CountRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": float64(k)},
		Method: "oracle",
		Budget: 1,
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := trueSkyband(testTable(n, 7), k)
	if int(res.Estimate) != want {
		t.Errorf("oracle estimate %v, brute force %d", res.Estimate, want)
	}
	if res.Objects != n {
		t.Errorf("objects = %d, want %d", res.Objects, n)
	}
	if len(res.FeatureCols) != 0 {
		t.Errorf("oracle is feature-free but reported feature_cols %v", res.FeatureCols)
	}
}

func TestCountLearnedEstimateReasonable(t *testing.T) {
	const n, k = 120, 10
	svc := newTestService(t, n, Options{})
	res, err := svc.Count(&CountRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": float64(k)},
		Method: "lss",
		Budget: 0.3,
		Seed:   3,
		Exact:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrueCount == nil {
		t.Fatal("exact=true did not return true_count")
	}
	if want := trueSkyband(testTable(n, 7), k); *res.TrueCount != want {
		t.Errorf("true_count = %d, brute force %d", *res.TrueCount, want)
	}
	if !res.HasCI {
		t.Error("LSS should return a confidence interval")
	}
	if got, want := res.FeatureCols, []string{"x", "y"}; !reflect.DeepEqual(got, want) {
		t.Errorf("feature_cols = %v, want %v (auto-selected from the predicate)", got, want)
	}
	// The estimate must at least be a plausible count; tightness is the
	// experiments' job, not this plumbing test's.
	if res.Estimate < 0 || res.Estimate > float64(n) {
		t.Errorf("estimate %v outside [0, %d]", res.Estimate, n)
	}
	if res.Evals > int64(res.Budget)+int64(*res.TrueCount)+int64(res.Objects) {
		t.Errorf("evals %d exceed budget %d plus the exact pass", res.Evals, res.Budget)
	}
}

func TestCountDeterministicUnderConcurrency(t *testing.T) {
	const clients = 8
	svc := newTestService(t, 100, Options{MaxInFlight: clients})
	req := func() *CountRequest {
		return &CountRequest{
			SQL:     skybandQuery,
			Params:  map[string]any{"k": 8},
			Method:  "lss",
			Budget:  0.25,
			Seed:    11,
			NoCache: true, // force every client through the full pipeline
		}
	}
	results := make([]*CountResult, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Count(req())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	ref := results[0]
	for i, r := range results[1:] {
		if r.Estimate != ref.Estimate || r.CILo != ref.CILo || r.CIHi != ref.CIHi || r.Evals != ref.Evals {
			t.Errorf("client %d diverged: estimate %v (CI %v..%v, evals %d) vs %v (CI %v..%v, evals %d)",
				i+1, r.Estimate, r.CILo, r.CIHi, r.Evals, ref.Estimate, ref.CILo, ref.CIHi, ref.Evals)
		}
	}
	if hits := svc.Metrics.CacheHits.Load(); hits != 0 {
		t.Errorf("no_cache requests recorded %d cache hits", hits)
	}
	if misses := svc.Metrics.CacheMisses.Load(); misses != 0 {
		t.Errorf("no_cache requests recorded %d cache misses without consulting the cache", misses)
	}
}

func TestCountCacheHitAndInvalidation(t *testing.T) {
	svc := newTestService(t, 80, Options{})
	req := &CountRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": 8},
		Method: "lss",
		Budget: 0.25,
		Seed:   5,
	}
	first, err := svc.Count(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request claims to be cached")
	}
	// Same query, different formatting: must hit via the fingerprint.
	second, err := svc.Count(&CountRequest{
		SQL:    "select   o1.id from D o1, D o2 where o2.x>=o1.x and o2.y >= o1.y and (o2.x > o1.x or o2.y > o1.y) group by o1.id having count(*) < k",
		Params: map[string]any{"k": 8},
		Method: "lss",
		Budget: 0.25,
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("reformatted identical query missed the cache")
	}
	if second.Estimate != first.Estimate {
		t.Errorf("cached estimate %v != original %v", second.Estimate, first.Estimate)
	}
	if hits := svc.Metrics.CacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}

	// Different seed or params must miss.
	for _, alt := range []*CountRequest{
		{SQL: skybandQuery, Params: map[string]any{"k": 8}, Method: "lss", Budget: 0.25, Seed: 6},
		{SQL: skybandQuery, Params: map[string]any{"k": 9}, Method: "lss", Budget: 0.25, Seed: 5},
	} {
		r, err := svc.Count(alt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cached {
			t.Errorf("request %+v unexpectedly hit the cache", alt)
		}
	}

	// Re-registering the dataset bumps its version: cached results for the
	// old data must not be served.
	svc.Registry.Register(testTable(80, 99))
	third, err := svc.Count(req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Error("cache served a result for a replaced dataset")
	}
}

func TestCountCoalescesConcurrentIdenticalRequests(t *testing.T) {
	// Many clients hitting a cold cache with one identical request must
	// share a single estimation — even with MaxInFlight=1 and a queue
	// timeout far shorter than clients*estimation time, nobody gets 503.
	const clients = 8
	svc := newTestService(t, 100, Options{MaxInFlight: 1, QueueTimeout: 50 * time.Millisecond})
	req := &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Method: "lss", Budget: 0.25, Seed: 11}
	results := make([]*CountResult, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Count(req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if runs := svc.Metrics.EstimatesRun.Load(); runs != 1 {
		t.Errorf("estimates_run = %d, want 1 (coalesced)", runs)
	}
	for i, r := range results[1:] {
		if r.Estimate != results[0].Estimate {
			t.Errorf("client %d estimate %v != %v", i+1, r.Estimate, results[0].Estimate)
		}
	}
}

func TestCountResolvesSubqueryTables(t *testing.T) {
	// A table referenced only inside a predicate subquery must be in the
	// evaluator catalog, and its version must participate in cache
	// invalidation.
	reg := NewRegistry()
	reg.Register(testTable(60, 7))
	e, err := lsample.NewTable("E", "id:int")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := e.AppendRow(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	reg.Register(e)
	svc := New(reg, Options{})
	req := &CountRequest{
		SQL: `SELECT o1.id FROM D o1, D o2
			WHERE o2.x >= o1.x AND EXISTS (SELECT id FROM E WHERE id = o1.id)
			GROUP BY o1.id HAVING COUNT(*) < k`,
		Params: map[string]any{"k": 30},
		Method: "oracle",
		Budget: 1,
	}
	first, err := svc.Count(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Objects != 60 {
		t.Errorf("objects = %d, want 60", first.Objects)
	}
	// Only ids 0..9 exist in E, so at most 10 objects can satisfy q.
	if first.Estimate > 10 {
		t.Errorf("estimate %v > 10 despite EXISTS filter over E", first.Estimate)
	}

	// Replacing E must strand the cached result.
	reg.Register(e)
	second, err := svc.Count(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Error("cache survived re-registration of a subquery-only table")
	}
}

func TestCountLearnedMethodWithSubqueryLocalColumns(t *testing.T) {
	// A subquery over another table whose columns are referenced
	// unqualified must not pollute (or 400) feature selection for the
	// object table.
	reg := NewRegistry()
	reg.Register(testTable(60, 7))
	e, err := lsample.NewTable("E", "w:float")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := e.AppendRow(float64(i * 20)); err != nil {
			t.Fatal(err)
		}
	}
	reg.Register(e)
	svc := New(reg, Options{})
	res, err := svc.Count(&CountRequest{
		SQL: `SELECT o.id FROM D o
			WHERE EXISTS (SELECT w FROM E WHERE w < o.x)
			GROUP BY o.id HAVING COUNT(*) >= k`,
		Params: map[string]any{"k": 1},
		Method: "lss",
		Budget: 0.3,
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"x"}; !reflect.DeepEqual(res.FeatureCols, want) {
		t.Errorf("feature_cols = %v, want %v (E's w must not be a feature of D)", res.FeatureCols, want)
	}
}

func TestCountCtxCanceled(t *testing.T) {
	svc := newTestService(t, 80, Options{MaxInFlight: 1, QueueTimeout: time.Minute})
	release := occupyAdmission(t, svc) // leave admission saturated
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := svc.CountCtx(ctx, &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("canceled request waited instead of returning promptly")
	}
}

func TestCountWaiterSurvivesLeaderCancellation(t *testing.T) {
	// A waiter coalesced onto a leader whose client disconnects must not
	// inherit the leader's context error; it retries and becomes the
	// leader itself.
	svc := newTestService(t, 80, Options{MaxInFlight: 1, QueueTimeout: time.Minute})
	release := occupyAdmission(t, svc) // block admission so the leader parks queued
	req := &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Method: "lss", Budget: 0.25, Seed: 5}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := svc.CountCtx(leaderCtx, req)
		leaderErr <- err
	}()
	waiterRes := make(chan error, 1)
	time.Sleep(50 * time.Millisecond) // let the leader register its flight
	go func() {
		_, err := svc.Count(req)
		waiterRes <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter attach to the flight

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	release() // free admission for the retrying waiter
	if err := <-waiterRes; err != nil {
		t.Fatalf("waiter err = %v, want success after retry", err)
	}
}

func TestPreparedQueryReusedAcrossRequests(t *testing.T) {
	svc := newTestService(t, 80, Options{})
	for seed := uint64(1); seed <= 3; seed++ {
		if _, err := svc.Count(&CountRequest{
			SQL: skybandQuery, Params: map[string]any{"k": 8}, Method: "lss", Budget: 0.25, Seed: seed,
		}); err != nil {
			t.Fatal(err)
		}
	}
	svc.prepMu.Lock()
	n := len(svc.preps)
	svc.prepMu.Unlock()
	if n != 1 {
		t.Errorf("prepared queries = %d, want 1 shared across requests on the same data", n)
	}

	// Re-registering the dataset makes the old snapshot unreachable; the
	// next request prepares fresh and the stale entry is dropped.
	svc.Registry.Register(testTable(80, 99))
	if _, err := svc.Count(&CountRequest{
		SQL: skybandQuery, Params: map[string]any{"k": 8}, Method: "lss", Budget: 0.25, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	svc.prepMu.Lock()
	n = len(svc.preps)
	svc.prepMu.Unlock()
	if n != 1 {
		t.Errorf("prepared queries after re-register = %d, want 1 (stale entry evicted)", n)
	}
}

func TestCountAdmissionControl(t *testing.T) {
	svc := newTestService(t, 80, Options{MaxInFlight: 1, QueueTimeout: 20 * time.Millisecond})
	release := occupyAdmission(t, svc) // occupy the only slot
	_, err := svc.Count(&CountRequest{
		SQL:    skybandQuery,
		Params: map[string]any{"k": 8},
		Seed:   1,
	})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if rej := svc.Metrics.Rejected.Load(); rej != 1 {
		t.Errorf("rejected = %d, want 1", rej)
	}
	release()
	if _, err := svc.Count(&CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Seed: 1}); err != nil {
		t.Fatalf("after releasing the slot: %v", err)
	}
}

func TestCountBadRequests(t *testing.T) {
	svc := newTestService(t, 50, Options{})
	cases := []struct {
		name string
		req  *CountRequest
	}{
		{"empty sql", &CountRequest{}},
		{"parse error", &CountRequest{SQL: "SELEC nope"}},
		{"unknown dataset", &CountRequest{SQL: "SELECT id FROM Nope GROUP BY id HAVING COUNT(*) > 0"}},
		{"no group by", &CountRequest{SQL: "SELECT id FROM D"}},
		{"bad budget", &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Budget: 1.5}},
		{"unknown method", &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Method: "nope"}},
		{"bad param type", &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": true}}},
	}
	for _, tc := range cases {
		if _, err := svc.Count(tc.req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", tc.name, err)
		}
	}
	if errs := svc.Metrics.Errors.Load(); errs != int64(len(cases)) {
		t.Errorf("error counter = %d, want %d", errs, len(cases))
	}
}

func TestCountFeatureFreeMethods(t *testing.T) {
	// The predicate references no numeric columns (only the parameter k),
	// so learned methods cannot run — but srs and oracle need no features
	// and must still serve the query.
	svc := newTestService(t, 60, Options{})
	q := "SELECT o.id FROM D o GROUP BY o.id HAVING COUNT(*) < k"
	for _, method := range []string{"srs", "oracle"} {
		res, err := svc.Count(&CountRequest{
			SQL: q, Params: map[string]any{"k": 5}, Method: method, Budget: 0.5, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		// Every row is its own group of size 1 < 5, so the count is |O|.
		if method == "oracle" && res.Estimate != 60 {
			t.Errorf("oracle estimate = %v, want 60", res.Estimate)
		}
		if len(res.FeatureCols) != 0 {
			t.Errorf("%s: unexpected feature cols %v", method, res.FeatureCols)
		}
	}
	if _, err := svc.Count(&CountRequest{
		SQL: q, Params: map[string]any{"k": 5}, Method: "lss", Seed: 1,
	}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("lss on a featureless query: err = %v, want ErrBadRequest", err)
	}
}

func TestCountCacheKeyIncludesClassifierAndStrata(t *testing.T) {
	svc := newTestService(t, 80, Options{})
	base := CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Method: "lss", Budget: 0.25, Seed: 5}
	if _, err := svc.Count(&base); err != nil {
		t.Fatal(err)
	}
	knn := base
	knn.Classifier = "knn"
	r, err := svc.Count(&knn)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Error("different classifier hit the rf cache entry")
	}
	strata := base
	strata.Strata = 8
	r, err = svc.Count(&strata)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Error("different strata hit the default-strata cache entry")
	}

	// Spelling out the defaults is the same request: must hit the entry
	// created by the defaulted base request.
	explicit := base
	explicit.Classifier = "rf"
	explicit.Strata = 4
	r, err = svc.Count(&explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cached {
		t.Error("explicit rf/4 request missed the defaulted request's cache entry")
	}
}

func TestCountGroupKeyNotUnique(t *testing.T) {
	reg := NewRegistry()
	tb, err := lsample.NewTable("D", "id:int,x:float")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := tb.AppendRow(int64(i%10), float64(i)); err != nil { // ids repeat
			t.Fatal(err)
		}
	}
	reg.Register(tb)
	svc := New(reg, Options{})
	_, err = svc.Count(&CountRequest{
		SQL:    "SELECT id FROM D WHERE x > k GROUP BY id HAVING COUNT(*) > 0",
		Params: map[string]any{"k": 5},
	})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest for non-unique group key", err)
	}
}

func TestResultCacheLRUAndTTL(t *testing.T) {
	c := newResultCache(2, time.Minute)
	now := time.Unix(0, 0)
	c.now = func() time.Time { return now }
	mk := func(v float64) *CountResult { return &CountResult{Estimate: v} }

	c.put("a", mk(1))
	c.put("b", mk(2))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", mk(3)) // evicts b (a was just touched)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should survive eviction")
	}

	now = now.Add(2 * time.Minute)
	if _, ok := c.get("a"); ok {
		t.Error("a should have expired")
	}
	if c.len() > 1 {
		t.Errorf("expired entry not pruned, len=%d", c.len())
	}
}

func TestRegistryResolveVersions(t *testing.T) {
	reg := NewRegistry()
	reg.Register(testTable(5, 1))
	_, v1, err := reg.Resolve([]string{"D"})
	if err != nil {
		t.Fatal(err)
	}
	reg.Register(testTable(5, 2))
	_, v2, err := reg.Resolve([]string{"D"})
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Errorf("version string unchanged after re-register: %s", v1)
	}
	if _, _, err := reg.Resolve([]string{"D", "E"}); !errors.Is(err, ErrBadRequest) {
		t.Error("unknown table should be a bad request")
	}
}

func BenchmarkServeCount(b *testing.B) {
	reg := NewRegistry()
	reg.Register(testTable(300, 7))
	for _, cached := range []bool{false, true} {
		name := "cold"
		if cached {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			svc := New(reg, Options{MaxInFlight: 8})
			req := &CountRequest{
				SQL:     skybandQuery,
				Params:  map[string]any{"k": 10},
				Method:  "lss",
				Budget:  0.1,
				NoCache: !cached,
			}
			if cached {
				if _, err := svc.Count(req); err != nil {
					b.Fatal(err)
				}
			}
			base := svc.Metrics.PredicateEvals.Load()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !cached {
					req.Seed = uint64(i) // defeat any caching; vary the run
				}
				if _, err := svc.Count(req); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(svc.Metrics.PredicateEvals.Load()-base)/float64(b.N), "evals/op")
		})
	}
}
