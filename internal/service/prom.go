package service

import (
	"repro/internal/obs"
)

// newPromRegistry wires every service-level counter, gauge, and the HDR
// request-latency histogram into a Prometheus text-format registry. All
// collectors are *Func re-exports over the atomics the serving path
// already maintains — scraping /metrics reads the same state /v1/stats
// reports, with no second source of truth and no per-request overhead.
//
// Naming convention: every family is prefixed lsample_, counters end in
// _total, sizes are _bytes, populations are bare gauges, and the request
// histogram is lsample_request_duration_seconds (base seconds, per
// Prometheus convention).
func (s *Service) newPromRegistry() *obs.Registry {
	r := obs.NewRegistry()
	m := s.Metrics

	r.CounterFunc("lsample_requests_total",
		"Count requests received by /v1/count.", m.Requests.Load)
	r.CounterFunc("lsample_cache_hits_total",
		"Requests served from the result cache (including coalesced flights).", m.CacheHits.Load)
	r.CounterFunc("lsample_cache_misses_total",
		"Requests that required a fresh estimation.", m.CacheMisses.Load)
	r.CounterFunc("lsample_rejected_total",
		"Requests shed by admission control (503 overloaded).", m.Rejected.Load)
	r.CounterFunc("lsample_degraded_total",
		"Budget-degraded answers served instead of 503s.", m.Degraded.Load)
	r.CounterFunc("lsample_errors_total",
		"Failed requests (bad input or internal).", m.Errors.Load)
	r.CounterFunc("lsample_estimates_run_total",
		"Estimations actually executed (cache misses and degraded runs).", m.EstimatesRun.Load)
	r.CounterFunc("lsample_predicate_evals_total",
		"Expensive-predicate evaluations spent across all estimations.", m.PredicateEvals.Load)
	r.GaugeFunc("lsample_estimate_busy_seconds",
		"Cumulative wall time spent inside estimation.",
		func() float64 { return float64(m.EstimateNanos.Load()) / 1e9 })
	r.GaugeFunc("lsample_predicate_busy_seconds",
		"Cumulative wall time spent inside the expensive predicate q.",
		func() float64 { return float64(m.PredicateNanos.Load()) / 1e9 })
	r.CounterFunc("lsample_ingest_requests_total",
		"Delta-ingest requests received by /v1/ingest.", m.IngestRequests.Load)
	r.CounterFunc("lsample_ingest_rows_total",
		"Delta rows committed (appends, updates, and deletes).", m.IngestRows.Load)
	r.CounterFunc("lsample_ingest_batches_total",
		"Delta batches committed.", m.IngestBatches.Load)
	r.CounterFunc("lsample_ingest_errors_total",
		"Ingest requests that failed, possibly mid-stream.", m.IngestErrors.Load)
	r.CounterFunc("lsample_shared_scans_total",
		"Coalesced exact-labeling passes executed.", m.SharedScans.Load)
	r.CounterFunc("lsample_shared_scan_requests_total",
		"Requests served by coalesced exact-labeling passes.", m.SharedScanRequests.Load)

	r.HistogramFunc("lsample_request_duration_seconds",
		"End-to-end /v1/count latency (admission wait included).",
		s.Metrics.Latency.promSnapshot)

	r.GaugeFunc("lsample_datasets",
		"Datasets currently registered.",
		func() float64 { return float64(len(s.Registry.List())) })
	r.GaugeFunc("lsample_result_cache_entries",
		"Entries resident in the result cache.",
		func() float64 { return float64(s.cache.len()) })
	r.GaugeFunc("lsample_prepared_queries",
		"Prepared queries retained across (dataset version, fingerprint) keys.",
		func() float64 { return float64(s.retainedPrepSnapshots()) })
	r.GaugeFunc("lsample_shard_execs",
		"Per-shard executors cached for the /v1/shard worker role.",
		func() float64 { return float64(s.retainedShardExecs()) })
	r.GaugeFunc("lsample_inflight_estimations",
		"Estimations currently admitted and running.",
		func() float64 { return float64(s.admit.inflight()) })
	r.GaugeFunc("lsample_admission_queued",
		"Requests currently queued for admission.",
		func() float64 { return float64(s.admit.queuedTotal()) })

	r.GaugeFunc("lsample_catalog_entries",
		"Materialized plans resident in the reuse catalog.",
		func() float64 { return float64(s.CatalogStats().Entries) })
	r.GaugeFunc("lsample_catalog_bytes",
		"Estimated resident size of the reuse catalog.",
		func() float64 { return float64(s.CatalogStats().Bytes) })
	r.CounterFunc("lsample_catalog_hits_total",
		"Direct catalog-reuse executions.",
		func() int64 { return s.CatalogStats().Hits })
	r.CounterFunc("lsample_catalog_extensions_total",
		"Catalog extension executions (sample top-up or retrain).",
		func() int64 { return s.CatalogStats().Extensions })
	r.CounterFunc("lsample_catalog_misses_total",
		"Executions that materialized a fresh catalog entry.",
		func() int64 { return s.CatalogStats().Misses })
	r.CounterFunc("lsample_catalog_evictions_total",
		"Catalog entries evicted by budget pressure or invalidation.",
		func() int64 { return s.CatalogStats().Evictions })

	r.CounterFunc("lsample_traces_started_total",
		"Root spans considered by the tracer (sampled or not).", s.tracer.Started)
	r.CounterFunc("lsample_traces_sampled_total",
		"Root spans recorded by the tracer.", s.tracer.Sampled)

	return r
}

// inflight reports the number of currently admitted estimations.
func (a *admitter) inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight
}

// queuedTotal reports the number of waiters currently queued for
// admission across all datasets.
func (a *admitter) queuedTotal() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, q := range a.queued {
		n += q
	}
	return n
}
