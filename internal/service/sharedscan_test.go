package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestScanCoalescerMergesConcurrentMembers pins the acceptance property
// directly: four concurrent LabelAll calls on the same scan key cost one
// shared pass (≤ 0.5× the four passes serial execution would have run),
// and every member's evaluator sees each object exactly once, ascending.
func TestScanCoalescerMergesConcurrentMembers(t *testing.T) {
	m := &Metrics{}
	c := newScanCoalescer(m)
	c.window = 100 * time.Millisecond // generous join window: determinism over latency

	const n = 10_000
	const members = 4
	var wg sync.WaitGroup
	results := make([][]bool, members)
	errs := make([]error, members)
	counts := make([]int, members)
	for i := 0; i < members; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			next := 0
			results[i], errs[i] = c.LabelAll(context.Background(), "snap|q2", n,
				func(idxs []int, out []bool) {
					for j, idx := range idxs {
						if idx != next {
							t.Errorf("member %d: object %d arrived, want %d (ascending, exactly once)", i, idx, next)
							return
						}
						next++
						counts[i]++
						out[j] = idx%(i+2) == 0 // member-specific labels
					}
				})
		}(i)
	}
	wg.Wait()

	for i := 0; i < members; i++ {
		if errs[i] != nil {
			t.Fatalf("member %d: %v", i, errs[i])
		}
		if counts[i] != n {
			t.Fatalf("member %d evaluated %d objects, want %d", i, counts[i], n)
		}
		for idx, got := range results[i] {
			if want := idx%(i+2) == 0; got != want {
				t.Fatalf("member %d label[%d] = %v, want %v", i, idx, got, want)
			}
		}
	}
	if scans := m.SharedScans.Load(); scans != 1 {
		t.Fatalf("SharedScans = %d, want 1 (4 concurrent requests must share one pass)", scans)
	}
	if reqs := m.SharedScanRequests.Load(); reqs != members {
		t.Fatalf("SharedScanRequests = %d, want %d", reqs, members)
	}
}

// TestScanCoalescerSeparatesKeys pins that different scan keys (different
// snapshots or enumerations) never share a pass.
func TestScanCoalescerSeparatesKeys(t *testing.T) {
	m := &Metrics{}
	c := newScanCoalescer(m)
	c.window = 50 * time.Millisecond
	var wg sync.WaitGroup
	for _, key := range []string{"snapA", "snapB"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			if _, err := c.LabelAll(context.Background(), key, 100,
				func(idxs []int, out []bool) {}); err != nil {
				t.Errorf("%s: %v", key, err)
			}
		}(key)
	}
	wg.Wait()
	if scans := m.SharedScans.Load(); scans != 2 {
		t.Fatalf("SharedScans = %d, want 2 (distinct keys must not merge)", scans)
	}
}

// TestScanCoalescerMemberFailureIsolated pins that one member's panic or
// cancellation costs only that member (it gets an error and the SDK falls
// back standalone) while the rest of the group completes normally.
func TestScanCoalescerMemberFailureIsolated(t *testing.T) {
	m := &Metrics{}
	c := newScanCoalescer(m)
	c.window = 50 * time.Millisecond

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	var wg sync.WaitGroup
	var okLabels []bool
	var okErr, panicErr, ctxErr error
	wg.Add(3)
	go func() {
		defer wg.Done()
		okLabels, okErr = c.LabelAll(context.Background(), "k", 5000,
			func(idxs []int, out []bool) {
				for j := range idxs {
					out[j] = true
				}
			})
	}()
	go func() {
		defer wg.Done()
		_, panicErr = c.LabelAll(context.Background(), "k", 5000,
			func(idxs []int, out []bool) { panic("data-dependent eval failure") })
	}()
	go func() {
		defer wg.Done()
		_, ctxErr = c.LabelAll(canceled, "k", 5000, func(idxs []int, out []bool) {
			t.Error("canceled member's evaluator must not run")
		})
	}()
	wg.Wait()

	if okErr != nil {
		t.Fatalf("healthy member: %v", okErr)
	}
	for i, v := range okLabels {
		if !v {
			t.Fatalf("healthy member label[%d] lost", i)
		}
	}
	if panicErr == nil {
		t.Fatal("panicking member got no error")
	}
	if !errors.Is(ctxErr, context.Canceled) {
		t.Fatalf("canceled member err = %v, want context.Canceled", ctxErr)
	}
}

// TestCountSharedScanEndToEnd drives the full stack: concurrent exact
// /v1/count requests that differ only in predicate-only parameters (same
// snapshot, same object enumeration) coalesce their exact passes, and each
// answer matches the brute-force truth exactly.
func TestCountSharedScanEndToEnd(t *testing.T) {
	tbl := testTable(300, 7)
	reg := NewRegistry()
	reg.Register(tbl)
	// Catalog off: the reuse catalog's fast path keeps its own per-entry
	// label memo for exact counts; the scan coalescer serves the classic
	// path (catalog-ineligible shapes, no_cache traffic, catalog disabled).
	svc := New(reg, Options{MaxInFlight: 8, CacheSize: -1, CatalogBytes: -1})
	svc.scans.window = 100 * time.Millisecond // absorb prep/sampling skew between goroutines

	ks := []int{5, 8, 12, 20}
	var wg sync.WaitGroup
	res := make([]*CountResult, len(ks))
	errs := make([]error, len(ks))
	for i, k := range ks {
		wg.Add(1)
		go func(i, k int) {
			defer wg.Done()
			res[i], errs[i] = svc.Count(&CountRequest{
				SQL: skybandQuery, Params: map[string]any{"k": k},
				Method: "srs", Budget: 0.2, Seed: 11, Exact: true,
			})
		}(i, k)
	}
	wg.Wait()
	for i, k := range ks {
		if errs[i] != nil {
			t.Fatalf("k=%d: %v", k, errs[i])
		}
		if res[i].TrueCount == nil {
			t.Fatalf("k=%d: no exact count", k)
		}
		if want := trueSkyband(tbl, k); *res[i].TrueCount != want {
			t.Fatalf("k=%d: exact count %d, want %d", k, *res[i].TrueCount, want)
		}
	}
	if reqs := svc.Metrics.SharedScanRequests.Load(); reqs != int64(len(ks)) {
		t.Fatalf("SharedScanRequests = %d, want %d", reqs, len(ks))
	}
	// The acceptance bound: 4 concurrent queries cost at most half the
	// scans of 4 serial runs.
	if scans := svc.Metrics.SharedScans.Load(); scans > int64(len(ks))/2 {
		t.Fatalf("SharedScans = %d for %d concurrent exact queries, want ≤ %d",
			scans, len(ks), len(ks)/2)
	}
}
