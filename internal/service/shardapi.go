package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/lsample"
)

// This file is the worker side of sharded scale-out estimation: POST
// /v1/shard serves one shard's estimation primitives (the seven ops of
// internal/shard.Worker) over JSON, so a coordinator process can scatter
// the deterministic per-trial-stream protocol across machines and merge
// byte-identically. Every op names the query, the bound parameters, the
// sampling knobs, and the shard (index/count); the worker materializes a
// lsample.ShardExec for that tuple once and caches it across ops.
//
// Version fencing: every response reports the worker's resolved dataset
// versions, and a request carrying an expected "versions" string fails
// with 409 version_mismatch when the worker's data has moved on — a
// coordinator that pinned its census against version V can never merge a
// partial computed against V+1.

// ShardRef names one shard of a layout.
type ShardRef struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// ShardRequest is one /v1/shard operation. SQL, Params, and the sampling
// knobs (method, budget, classifier, strata, interval, seed) follow the
// CountRequest contract; Op selects the primitive and the remaining
// fields are its arguments.
type ShardRequest struct {
	Op         string         `json:"op"` // meta cands label features score_all group_keys count_all
	SQL        string         `json:"sql"`
	Params     map[string]any `json:"params,omitempty"`
	Method     string         `json:"method,omitempty"`
	Budget     float64        `json:"budget,omitempty"`
	Classifier string         `json:"classifier,omitempty"`
	Strata     int            `json:"strata,omitempty"`
	Interval   string         `json:"interval,omitempty"`
	Seed       uint64         `json:"seed,omitempty"`
	Shard      ShardRef       `json:"shard"`
	Versions   string         `json:"versions,omitempty"` // expected dataset versions ("" skips the fence)

	K       int         `json:"k,omitempty"`        // cands
	Tag     uint64      `json:"tag,omitempty"`      // cands
	Keys    []int64     `json:"keys,omitempty"`     // label, features
	X       [][]float64 `json:"x,omitempty"`        // score_all: learn-sample features
	Y       []bool      `json:"y,omitempty"`        // score_all: learn-sample labels
	ClfSeed uint64      `json:"clf_seed,omitempty"` // score_all
}

// ShardResponse is the result of one /v1/shard operation; exactly the
// fields of the requested op are set, plus the worker's dataset versions
// on every response. The meta op additionally reports the query
// fingerprint and its group/feature columns so a coordinator can shape
// the final answer without parsing SQL itself.
type ShardResponse struct {
	Versions    string                `json:"versions"`
	Fingerprint string                `json:"fingerprint,omitempty"`
	GroupCols   []string              `json:"group_cols,omitempty"`
	FeatureCols []string              `json:"feature_cols,omitempty"`
	Meta        *lsample.ShardMeta    `json:"meta,omitempty"`
	Cands       []lsample.ShardCand   `json:"cands,omitempty"`
	Labels      []bool                `json:"labels,omitempty"`
	Fresh       int                   `json:"fresh,omitempty"`
	Features    [][]float64           `json:"features,omitempty"`
	Scored      []lsample.ShardScored `json:"scored,omitempty"`
	Tally       *lsample.ShardTally   `json:"tally,omitempty"`
	// Trace is the worker's completed span tree for this op, present when
	// the inbound traceparent was sampled — the coordinator grafts it under
	// its own attempt span so one query yields one stitched trace.
	Trace *obs.SpanData `json:"trace,omitempty"`
}

// versionMismatchError carries the worker's current versions back to the
// HTTP layer, which maps it to 409 version_mismatch.
type versionMismatchError struct {
	want, current string
}

func (e *versionMismatchError) Error() string {
	return fmt.Sprintf("service: dataset versions moved from %q to %q", e.want, e.current)
}

// shardExecEntry is one cached per-(query, knobs, shard) executor.
type shardExecEntry struct {
	key   string
	exec  *lsample.ShardExec
	count int    // shard layout
	last  uint64 // LRU tick
}

// maxShardExecs bounds the worker's executor cache; each entry pins one
// population slice plus its feature rows.
const maxShardExecs = 32

// ShardOp executes one shard operation against the registry's current
// snapshot of the referenced datasets.
func (s *Service) ShardOp(ctx context.Context, req *ShardRequest) (*ShardResponse, error) {
	if req.SQL == "" {
		return nil, badf("missing sql")
	}
	if req.Shard.Count < 1 || req.Shard.Index < 0 || req.Shard.Index >= req.Shard.Count {
		return nil, badf("shard %d/%d out of range", req.Shard.Index, req.Shard.Count)
	}
	method := req.Method
	if method == "" {
		method = s.opts.DefaultMethod
	}
	budgetFrac := req.Budget
	if budgetFrac == 0 {
		budgetFrac = s.opts.DefaultBudget
	}
	if !(budgetFrac > 0 && budgetFrac <= 1) {
		return nil, badf("budget %v outside (0, 1]", budgetFrac)
	}
	clfName := req.Classifier
	if clfName == "" {
		clfName = "rf"
	}
	strata := req.Strata
	if strata <= 0 {
		strata = 4
	}
	iv, err := lsample.ParseInterval(req.Interval)
	if err != nil {
		return nil, mapSDKErr(err)
	}

	fp0, tables, err := lsample.QueryShape(req.SQL)
	if err != nil {
		return nil, mapSDKErr(err)
	}
	paramsJSON, err := json.Marshal(req.Params)
	if err != nil {
		return nil, badf("parameters are not encodable: %v", err)
	}
	snap, versions, err := s.Registry.Resolve(tables)
	if err != nil {
		return nil, err
	}
	if req.Versions != "" && req.Versions != versions {
		return nil, &versionMismatchError{want: req.Versions, current: versions}
	}

	key := fmt.Sprintf("%s|%s|%s|%s|%s|%d|%s|%g|%d|%d/%d",
		versions, fp0, paramsJSON, method, clfName, strata, iv, budgetFrac, req.Seed,
		req.Shard.Index, req.Shard.Count)
	exec, prep, err := s.shardExec(ctx, req, key, versions, fp0, snap,
		method, clfName, strata, iv, budgetFrac)
	if err != nil {
		return nil, mapSDKErr(err)
	}

	resp := &ShardResponse{Versions: versions}
	switch req.Op {
	case "meta":
		m, merr := exec.Meta(ctx)
		if merr != nil {
			return nil, mapSDKErr(merr)
		}
		resp.Meta = &m
		resp.Fingerprint = exec.Fingerprint()
		resp.GroupCols = prep.GroupColumns()
		resp.FeatureCols = exec.FeatureColumns()
	case "cands":
		resp.Cands, err = exec.Cands(ctx, req.K, req.Tag)
	case "label":
		err = s.admitted(ctx, versions, func() error {
			var lerr error
			resp.Labels, resp.Fresh, lerr = exec.Label(ctx, req.Keys)
			return lerr
		})
	case "features":
		resp.Features, err = exec.Features(ctx, req.Keys)
	case "score_all":
		err = s.admitted(ctx, versions, func() error {
			var serr error
			resp.Scored, serr = exec.ScoreAll(ctx, req.X, req.Y, req.ClfSeed)
			return serr
		})
	case "group_keys":
		resp.Scored, err = exec.GroupKeys(ctx)
	case "count_all":
		err = s.admitted(ctx, versions, func() error {
			t, terr := exec.CountAll(ctx)
			resp.Tally = &t
			return terr
		})
	default:
		return nil, badf("unknown shard op %q", req.Op)
	}
	if err != nil {
		return nil, mapSDKErr(err)
	}
	return resp, nil
}

// admitted runs fn under the service's admission queues: the expensive
// shard ops (labeling and training) share the MaxInFlight and per-dataset
// budgets with whole-query estimations. Shard ops carry no admission
// deadline of their own — the coordinator's per-op context deadline bounds
// the wait.
func (s *Service) admitted(ctx context.Context, key string, fn func() error) error {
	_, wsp := obs.StartSpan(ctx, "admission.wait")
	wsp.Set("dataset", key)
	err := s.admit.acquire(ctx, key, time.Time{})
	if err != nil {
		wsp.Set("error", err.Error())
	}
	wsp.End()
	if err != nil {
		return err
	}
	defer s.admit.release(key)
	return fn()
}

// shardExec returns the cached executor for the request tuple, preparing
// it on first use. A layout change (a different shard count) evicts every
// executor and reuse-catalog entry of the old layout: after a reshard the
// old per-shard label memos could never be merged soundly, so they are
// reclaimed instead of lingering until LFU pressure finds them.
func (s *Service) shardExec(ctx context.Context, req *ShardRequest, key, versions, fp0 string,
	snap map[string]*lsample.Table, method, clfName string, strata int,
	iv lsample.Interval, budgetFrac float64) (*lsample.ShardExec, *lsample.PreparedQuery, error) {

	prep, err := s.prepared(versions, fp0, req.SQL, snap)
	if err != nil {
		return nil, nil, err
	}

	s.shardMu.Lock()
	if s.shardLayout != 0 && s.shardLayout != req.Shard.Count {
		for k, e := range s.shardExecs {
			if e.count != req.Shard.Count {
				e.exec.Close()
				delete(s.shardExecs, k)
			}
		}
		if s.catalog != nil {
			s.catalog.EvictShardLayout(req.Shard.Count)
		}
	}
	s.shardLayout = req.Shard.Count
	if e, ok := s.shardExecs[key]; ok {
		s.shardSeq++
		e.last = s.shardSeq
		s.shardMu.Unlock()
		return e.exec, prep, nil
	}
	s.shardMu.Unlock()

	exec, err := prep.PrepareShard(ctx, req.Shard.Index, req.Shard.Count, req.Params,
		lsample.WithMethod(method),
		lsample.WithClassifier(clfName),
		lsample.WithStrata(strata),
		lsample.WithInterval(iv),
		lsample.WithBudget(budgetFrac),
		lsample.WithSeed(req.Seed),
		lsample.WithParallelism(s.opts.Parallelism),
	)
	if err != nil {
		return nil, nil, err
	}

	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	if cur, ok := s.shardExecs[key]; ok {
		// A concurrent op prepared the same tuple; keep its executor (and
		// its label memo) instead of two.
		exec.Close()
		s.shardSeq++
		cur.last = s.shardSeq
		return cur.exec, prep, nil
	}
	for len(s.shardExecs) >= maxShardExecs {
		var oldest *shardExecEntry
		for _, e := range s.shardExecs {
			if oldest == nil || e.last < oldest.last {
				oldest = e
			}
		}
		oldest.exec.Close()
		delete(s.shardExecs, oldest.key)
	}
	s.shardSeq++
	s.shardExecs[key] = &shardExecEntry{key: key, exec: exec, count: req.Shard.Count, last: s.shardSeq}
	return exec, prep, nil
}

// dropStaleShardExecs evicts executors pinning dataset versions the
// registry no longer serves; it rides the same hooks as dropStalePreps.
func (s *Service) dropStaleShardExecs() {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	for k, e := range s.shardExecs {
		if s.stalePrep(k) {
			e.exec.Close()
			delete(s.shardExecs, k)
		}
	}
}

// retainedShardExecs reports the executor-cache population (tests bound
// it).
func (s *Service) retainedShardExecs() int {
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	return len(s.shardExecs)
}

func (s *Service) handleShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, clientErr("invalid JSON body", err))
		return
	}
	// Adopt the coordinator's trace: a sampled inbound traceparent makes
	// this worker record its own subtree and ship it back on the response.
	ctx, span := s.tracer.StartRequest(traceCtx(r), "shard."+req.Op, false)
	span.Set("op", req.Op)
	span.Set("shard", req.Shard.Index)
	span.Set("shard_count", req.Shard.Count)
	resp, err := s.ShardOp(ctx, &req)
	if err != nil {
		span.Set("error", err.Error())
	}
	span.End()
	if err == nil && span.Recording() {
		resp.Trace = span.Data()
	}
	if err != nil {
		var vm *versionMismatchError
		if errors.As(err, &vm) {
			w.Header().Set("X-Dataset-Versions", vm.current)
			writeJSON(w, http.StatusConflict, errorEnvelope{Error: errorBody{
				Code: "version_mismatch", Message: vm.Error(),
			}})
			return
		}
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
