package service

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Metrics holds the service's monotonic counters. All fields are updated
// atomically; Snapshot returns a consistent-enough copy for reporting
// (counters may be mid-flight relative to each other, which is fine for
// monitoring).
type Metrics struct {
	Requests       atomic.Int64 // count requests received
	CacheHits      atomic.Int64 // served from the result cache
	CacheMisses    atomic.Int64 // required a fresh estimation
	Rejected       atomic.Int64 // 503s from admission control
	Degraded       atomic.Int64 // budget-degraded answers served instead of 503s
	Errors         atomic.Int64 // failed requests (bad input or internal)
	EstimatesRun   atomic.Int64 // estimations actually executed
	PredicateEvals atomic.Int64 // expensive-predicate evaluations spent
	EstimateNanos  atomic.Int64 // wall time spent inside estimation
	PredicateNanos atomic.Int64 // wall time spent inside the predicate q
	IngestRequests atomic.Int64 // /v1/ingest requests received
	IngestRows     atomic.Int64 // delta rows committed (appends+updates+deletes)
	IngestBatches  atomic.Int64 // delta batches committed
	IngestErrors   atomic.Int64 // ingest requests that failed (possibly mid-stream)

	SharedScans        atomic.Int64 // coalesced exact-labeling passes executed
	SharedScanRequests atomic.Int64 // requests served by those passes (≥ SharedScans)

	// Latency is the /v1/count request-latency histogram (admission wait
	// included — tail latency is what admission control is for).
	Latency LatencyHist
}

// MetricsSnapshot is the JSON form of Metrics.
type MetricsSnapshot struct {
	Requests           int64          `json:"requests"`
	CacheHits          int64          `json:"cache_hits"`
	CacheMisses        int64          `json:"cache_misses"`
	Rejected           int64          `json:"rejected"`
	Degraded           int64          `json:"degraded"`
	Errors             int64          `json:"errors"`
	EstimatesRun       int64          `json:"estimates_run"`
	PredicateEvals     int64          `json:"predicate_evals"`
	EstimateMS         float64        `json:"estimate_ms"`
	PredicateMS        float64        `json:"predicate_ms"` // cumulative wall time inside q
	IngestRequests     int64          `json:"ingest_requests"`
	IngestRows         int64          `json:"ingest_rows"`
	IngestBatches      int64          `json:"ingest_batches"`
	IngestErrors       int64          `json:"ingest_errors"`
	SharedScans        int64          `json:"shared_scans"`
	SharedScanRequests int64          `json:"shared_scan_requests"`
	Latency            LatencySummary `json:"latency"`
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Requests:           m.Requests.Load(),
		CacheHits:          m.CacheHits.Load(),
		CacheMisses:        m.CacheMisses.Load(),
		Rejected:           m.Rejected.Load(),
		Degraded:           m.Degraded.Load(),
		Errors:             m.Errors.Load(),
		EstimatesRun:       m.EstimatesRun.Load(),
		PredicateEvals:     m.PredicateEvals.Load(),
		EstimateMS:         float64(m.EstimateNanos.Load()) / 1e6,
		PredicateMS:        float64(m.PredicateNanos.Load()) / 1e6,
		IngestRequests:     m.IngestRequests.Load(),
		IngestRows:         m.IngestRows.Load(),
		IngestBatches:      m.IngestBatches.Load(),
		IngestErrors:       m.IngestErrors.Load(),
		SharedScans:        m.SharedScans.Load(),
		SharedScanRequests: m.SharedScanRequests.Load(),
		Latency:            m.Latency.Summary(),
	}
}

// histBuckets covers the full int64 nanosecond range: durations below 4ns
// occupy one bucket each, and every power-of-two octave above splits into
// 4 linear sub-buckets, so any recorded value lands in a bucket whose width
// is at most 25% of its value (HDR-histogram style, fixed size, lock-free).
const histBuckets = 248

// LatencyHist is a fixed-size high-dynamic-range latency histogram. The
// zero value is ready to use; Record and Summary may run concurrently.
type LatencyHist struct {
	counts [histBuckets]atomic.Uint64
	maxNS  atomic.Int64
	sumNS  atomic.Int64
}

// histIndex maps a duration in nanoseconds to its bucket. It is monotone
// non-decreasing in ns, and every int64 maps inside [0, histBuckets).
func histIndex(ns int64) int {
	if ns < 4 {
		if ns < 0 {
			return 0
		}
		return int(ns)
	}
	k := bits.Len64(uint64(ns)) - 1 // ns in [2^k, 2^(k+1)), k >= 2
	sub := int(ns>>(k-2)) & 3       // top two bits below the leading one
	return (k-1)*4 + sub
}

// histUpper is the exclusive upper bound (in ns) of bucket idx — the value
// quantiles report, so they never understate an observed latency by more
// than the bucket's ≤25% width.
func histUpper(idx int) int64 {
	if idx < 4 {
		return int64(idx) + 1
	}
	k := idx/4 + 1
	upper := uint64(1)<<k + uint64(idx%4+1)<<(k-2)
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Record adds one observation.
func (h *LatencyHist) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[histIndex(ns)].Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// LatencySummary is the JSON form of a LatencyHist: request count, tail
// quantiles, the maximum, and the raw cumulative bucket counts — the
// quantile fields are conveniences; the buckets let external scrapers
// compute arbitrary quantiles themselves.
type LatencySummary struct {
	Count  int64   `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
	// Buckets are the histogram's non-empty buckets as cumulative counts:
	// Buckets[i].Count observations took at most Buckets[i].LeMS
	// milliseconds. Only buckets whose cumulative count changed are
	// listed, so the list stays short at any traffic volume.
	Buckets []LatencyBucket `json:"buckets,omitempty"`
}

// LatencyBucket is one cumulative histogram bucket of a LatencySummary.
type LatencyBucket struct {
	LeMS  float64 `json:"le_ms"` // inclusive upper bound, milliseconds
	Count uint64  `json:"count"` // observations at or under LeMS
}

// Buckets returns the histogram's non-empty cumulative buckets (see
// LatencySummary.Buckets).
func (h *LatencyHist) Buckets() []LatencyBucket {
	var out []LatencyBucket
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		out = append(out, LatencyBucket{LeMS: float64(histUpper(i)) / 1e6, Count: cum})
	}
	return out
}

// promSnapshot exports the histogram as cumulative Prometheus buckets in
// seconds — the re-export behind lsample_request_duration_seconds. Only
// non-empty buckets are emitted (plus the implicit +Inf), which keeps the
// 248-bucket HDR layout from bloating every scrape.
func (h *LatencyHist) promSnapshot() obs.HistSnapshot {
	var s obs.HistSnapshot
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := int64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		cum += n
		s.Uppers = append(s.Uppers, float64(histUpper(i))/1e9)
		s.Cum = append(s.Cum, cum)
	}
	s.Count = cum
	s.Sum = float64(h.sumNS.Load()) / 1e9
	return s
}

// Summary computes the quantiles from a single pass over a copy of the
// counters. Quantiles are bucket upper bounds clamped to the observed max.
func (h *LatencyHist) Summary() LatencySummary {
	var c [histBuckets]uint64
	var total uint64
	for i := range h.counts {
		c[i] = h.counts[i].Load()
		total += c[i]
	}
	maxNS := h.maxNS.Load()
	out := LatencySummary{Count: int64(total)}
	if total == 0 {
		return out
	}
	out.MaxMS = float64(maxNS) / 1e6
	q := func(p float64) float64 {
		target := uint64(math.Ceil(p * float64(total)))
		if target < 1 {
			target = 1
		}
		var cum uint64
		for i := range c {
			cum += c[i]
			if cum >= target {
				return float64(min(histUpper(i), maxNS)) / 1e6
			}
		}
		return out.MaxMS
	}
	out.P50MS, out.P90MS, out.P99MS, out.P999MS = q(0.50), q(0.90), q(0.99), q(0.999)
	out.Buckets = h.Buckets()
	return out
}
