package service

import "sync/atomic"

// Metrics holds the service's monotonic counters. All fields are updated
// atomically; Snapshot returns a consistent-enough copy for reporting
// (counters may be mid-flight relative to each other, which is fine for
// monitoring).
type Metrics struct {
	Requests       atomic.Int64 // count requests received
	CacheHits      atomic.Int64 // served from the result cache
	CacheMisses    atomic.Int64 // required a fresh estimation
	Rejected       atomic.Int64 // 503s from admission control
	Errors         atomic.Int64 // failed requests (bad input or internal)
	EstimatesRun   atomic.Int64 // estimations actually executed
	PredicateEvals atomic.Int64 // expensive-predicate evaluations spent
	EstimateNanos  atomic.Int64 // wall time spent inside estimation
	PredicateNanos atomic.Int64 // wall time spent inside the predicate q
	IngestRequests atomic.Int64 // /v1/ingest requests received
	IngestRows     atomic.Int64 // delta rows committed (appends+updates+deletes)
	IngestBatches  atomic.Int64 // delta batches committed
	IngestErrors   atomic.Int64 // ingest requests that failed (possibly mid-stream)
}

// MetricsSnapshot is the JSON form of Metrics.
type MetricsSnapshot struct {
	Requests       int64   `json:"requests"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	Rejected       int64   `json:"rejected"`
	Errors         int64   `json:"errors"`
	EstimatesRun   int64   `json:"estimates_run"`
	PredicateEvals int64   `json:"predicate_evals"`
	EstimateMS     float64 `json:"estimate_ms"`
	PredicateMS    float64 `json:"predicate_ms"` // cumulative wall time inside q
	IngestRequests int64   `json:"ingest_requests"`
	IngestRows     int64   `json:"ingest_rows"`
	IngestBatches  int64   `json:"ingest_batches"`
	IngestErrors   int64   `json:"ingest_errors"`
}

// Snapshot copies the current counter values.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Requests:       m.Requests.Load(),
		CacheHits:      m.CacheHits.Load(),
		CacheMisses:    m.CacheMisses.Load(),
		Rejected:       m.Rejected.Load(),
		Errors:         m.Errors.Load(),
		EstimatesRun:   m.EstimatesRun.Load(),
		PredicateEvals: m.PredicateEvals.Load(),
		EstimateMS:     float64(m.EstimateNanos.Load()) / 1e6,
		PredicateMS:    float64(m.PredicateNanos.Load()) / 1e6,
		IngestRequests: m.IngestRequests.Load(),
		IngestRows:     m.IngestRows.Load(),
		IngestBatches:  m.IngestBatches.Load(),
		IngestErrors:   m.IngestErrors.Load(),
	}
}
