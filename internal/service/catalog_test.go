package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/lsample"
)

// TestCountReuseAndCatalogStats drives the shared reuse catalog through
// the service: the first estimation materializes, an identical request
// (result cache disabled) is served by direct reuse, and a budget bump
// takes the extension path.
func TestCountReuseAndCatalogStats(t *testing.T) {
	svc := newTestService(t, 120, Options{CacheSize: -1})
	req := func(budget float64) *CountRequest {
		return &CountRequest{
			SQL: skybandQuery, Params: map[string]any{"k": 8},
			Method: "lss", Budget: budget, Seed: 3,
		}
	}
	first, err := svc.Count(req(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if first.Reuse != lsample.ReuseNone {
		t.Errorf("first request reuse = %q, want %q", first.Reuse, lsample.ReuseNone)
	}
	second, err := svc.Count(req(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if second.Reuse != lsample.ReuseDirect {
		t.Errorf("identical request reuse = %q, want %q", second.Reuse, lsample.ReuseDirect)
	}
	if second.Estimate != first.Estimate || second.Evals != 0 {
		t.Errorf("direct reuse diverged: estimate %v vs %v, evals %d",
			second.Estimate, first.Estimate, second.Evals)
	}
	ext, err := svc.Count(req(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if ext.Reuse != lsample.ReuseExtension {
		t.Errorf("larger-budget request reuse = %q, want %q", ext.Reuse, lsample.ReuseExtension)
	}
	s := svc.CatalogStats()
	if s.Misses != 1 || s.Hits != 1 || s.Extensions != 1 || s.Entries == 0 {
		t.Errorf("catalog stats = %+v, want 1 miss, 1 hit, 1 extension", s)
	}
}

// TestCountNoCacheBypassesCatalog checks that no_cache keeps its meaning
// under the catalog: the request recomputes from scratch and neither reads
// nor advances the shared catalog's counters.
func TestCountNoCacheBypassesCatalog(t *testing.T) {
	svc := newTestService(t, 100, Options{})
	req := &CountRequest{
		SQL: skybandQuery, Params: map[string]any{"k": 8},
		Method: "lss", Budget: 0.25, Seed: 3, NoCache: true,
	}
	for i := 0; i < 2; i++ {
		res, err := svc.Count(req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reuse != lsample.ReuseNone {
			t.Errorf("no_cache run %d reuse = %q, want %q", i, res.Reuse, lsample.ReuseNone)
		}
		if res.Evals == 0 {
			t.Errorf("no_cache run %d spent no evaluations", i)
		}
	}
	if s := svc.CatalogStats(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Errorf("no_cache touched the catalog: %+v", s)
	}
}

// TestCatalogDisabled checks that CatalogBytes < 0 turns the subsystem
// off: requests still answer, reuse is always "none", stats stay zero.
func TestCatalogDisabled(t *testing.T) {
	svc := newTestService(t, 80, Options{CacheSize: -1, CatalogBytes: -1})
	req := &CountRequest{
		SQL: skybandQuery, Params: map[string]any{"k": 8},
		Method: "lss", Budget: 0.25, Seed: 3,
	}
	for i := 0; i < 2; i++ {
		res, err := svc.Count(req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reuse != lsample.ReuseNone {
			t.Errorf("run %d reuse = %q, want %q", i, res.Reuse, lsample.ReuseNone)
		}
	}
	if s := svc.CatalogStats(); s != (lsample.CatalogStats{}) {
		t.Errorf("disabled catalog has stats %+v", s)
	}
}

// TestIngestEvictsCatalogEntries: publishing a new snapshot version via
// ingest must drop the affected catalog entries, so the next request
// rematerializes against the new data instead of reusing stale artifacts.
func TestIngestEvictsCatalogEntries(t *testing.T) {
	svc, _, _ := newLiveService(t, 150, Options{CacheSize: -1})
	req := &CountRequest{SQL: liveCountSQL, Method: "lss", Budget: 0.3, Seed: 5}
	if _, err := svc.Count(req); err != nil {
		t.Fatal(err)
	}
	if s := svc.CatalogStats(); s.Entries == 0 {
		t.Fatalf("no catalog entry materialized: %+v", s)
	}
	if _, err := svc.Ingest("items", "csv", strings.NewReader(itemsCSV(150, 30))); err != nil {
		t.Fatal(err)
	}
	if s := svc.CatalogStats(); s.Entries != 0 || s.Evictions == 0 {
		t.Errorf("ingest left stale catalog entries: %+v", s)
	}
	res, err := svc.Count(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reuse != lsample.ReuseNone {
		t.Errorf("post-ingest reuse = %q, want %q (old artifacts must not serve new data)",
			res.Reuse, lsample.ReuseNone)
	}
}

// TestHTTPCatalogBlock checks the HTTP surfaces: /v1/count answers carry
// the reuse field and /v1/stats exposes the catalog block.
func TestHTTPCatalogBlock(t *testing.T) {
	_, ts := newTestServer(t, 80, Options{CacheSize: -1})
	req := &CountRequest{SQL: skybandQuery, Params: map[string]any{"k": 8}, Method: "lss", Budget: 0.25, Seed: 2}
	wantReuse := []string{lsample.ReuseNone, lsample.ReuseDirect}
	for i, want := range wantReuse {
		_, body := postJSON(t, ts.URL+"/v1/count", req)
		var res struct {
			Reuse string `json:"reuse"`
		}
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		if res.Reuse != want {
			t.Errorf("request %d reuse = %q, want %q", i, res.Reuse, want)
		}
	}

	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats struct {
		Catalog lsample.CatalogStats `json:"catalog"`
	}
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	c := stats.Catalog
	if c.Entries != 1 || c.Misses != 1 || c.Hits != 1 || c.Bytes <= 0 {
		t.Errorf("stats catalog block = %+v, want 1 entry, 1 miss, 1 hit, positive bytes", c)
	}
}
