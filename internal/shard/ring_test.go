package shard

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dataset/key-%d", i)
	}
	return out
}

func TestRingDeterministicAndComplete(t *testing.T) {
	a := NewRing(0)
	b := NewRing(0)
	for _, n := range []string{"w2", "w0", "w1"} {
		a.Add(n)
	}
	for _, n := range []string{"w0", "w1", "w2"} { // different insertion order
		b.Add(n)
	}
	for _, k := range ringKeys(300) {
		oa, ok := a.Owner(k)
		if !ok {
			t.Fatalf("key %q unassigned", k)
		}
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("rings disagree on %q: %q vs %q", k, oa, ob)
		}
	}
	owners := map[string]int{}
	for _, k := range ringKeys(1000) {
		o, _ := a.Owner(k)
		owners[o]++
	}
	if len(owners) != 3 {
		t.Fatalf("1000 keys landed on %d of 3 nodes", len(owners))
	}
	for n, c := range owners {
		if c < 100 {
			t.Errorf("node %q owns only %d of 1000 keys (poor spread)", n, c)
		}
	}
}

func TestRingMinimalMovement(t *testing.T) {
	r := NewRing(0)
	r.Add("w0")
	r.Add("w1")
	r.Add("w2")
	keys := ringKeys(500)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	// Join: only keys that move may move to the new node.
	r.Add("w3")
	moved := 0
	for _, k := range keys {
		now, _ := r.Owner(k)
		if now != before[k] {
			if now != "w3" {
				t.Fatalf("key %q moved %q->%q on w3 join (not to the joiner)", k, before[k], now)
			}
			moved++
		}
	}
	if moved == 0 || moved == len(keys) {
		t.Fatalf("w3 join moved %d of %d keys", moved, len(keys))
	}

	// Leave: only the departed node's keys move; everyone else stays put.
	after := make(map[string]string, len(keys))
	for _, k := range keys {
		after[k], _ = r.Owner(k)
	}
	r.Remove("w3")
	for _, k := range keys {
		now, _ := r.Owner(k)
		if after[k] == "w3" {
			if now == "w3" {
				t.Fatalf("key %q still owned by removed node", k)
			}
		} else if now != after[k] {
			t.Fatalf("key %q moved %q->%q though w3 departed", k, after[k], now)
		}
	}
}

func TestRingOwnersFailoverOrder(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("w%d", i))
	}
	for _, k := range ringKeys(50) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 3) = %v", k, owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats %q", k, o)
			}
			seen[o] = true
		}
		primary, _ := r.Owner(k)
		if owners[0] != primary {
			t.Fatalf("Owners(%q)[0] = %q, Owner = %q", k, owners[0], primary)
		}
	}
	if got := r.Owners("k", 99); len(got) != 4 {
		t.Fatalf("Owners capped at node count: got %d", len(got))
	}
	empty := NewRing(0)
	if _, ok := empty.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}

// FuzzShardRouting fuzzes the consistent-hash ring: whatever the
// membership history, every key has exactly one owner from the live node
// set, routing is deterministic, and a join moves keys only onto the
// joiner (the minimal-movement property).
func FuzzShardRouting(f *testing.F) {
	f.Add([]byte{1, 2, 3}, "orders/42")
	f.Add([]byte{0xff, 0x00, 0x10, 0x07}, "a")
	f.Add([]byte{9}, "")
	f.Fuzz(func(t *testing.T, ops []byte, key string) {
		r := NewRing(8) // few replicas: more edge wraparounds per op
		live := map[string]bool{}
		for _, op := range ops {
			node := fmt.Sprintf("w%d", op&0x0f)
			if op&0x80 != 0 {
				r.Remove(node)
				delete(live, node)
			} else {
				r.Add(node)
				live[node] = true
			}
			if r.Len() != len(live) {
				t.Fatalf("ring has %d nodes, membership says %d", r.Len(), len(live))
			}
			owner, ok := r.Owner(key)
			if len(live) == 0 {
				if ok {
					t.Fatalf("empty ring assigned %q to %q", key, owner)
				}
				continue
			}
			if !ok || !live[owner] {
				t.Fatalf("key %q owner %q not in live set %v", key, owner, live)
			}
			if again, _ := r.Owner(key); again != owner {
				t.Fatalf("owner of %q unstable: %q then %q", key, owner, again)
			}
			owners := r.Owners(key, len(live))
			if len(owners) != len(live) {
				t.Fatalf("Owners returned %d of %d nodes", len(owners), len(live))
			}
			seen := map[string]bool{}
			for _, o := range owners {
				if seen[o] || !live[o] {
					t.Fatalf("failover order %v invalid for live set %v", owners, live)
				}
				seen[o] = true
			}
		}
		// Minimal movement: add a fresh node; keys may move only onto it.
		if r.Len() > 0 {
			probes := []string{key, key + "/x", "p0", "p1", "p2", "p3"}
			before := map[string]string{}
			for _, p := range probes {
				before[p], _ = r.Owner(p)
			}
			r.Add("joiner")
			for _, p := range probes {
				now, _ := r.Owner(p)
				if now != before[p] && now != "joiner" {
					t.Fatalf("probe %q moved %q->%q on join (not to joiner)", p, before[p], now)
				}
			}
		}
	})
}
