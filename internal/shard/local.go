package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/learn"
)

// LabelFunc evaluates the expensive predicate for the given object keys,
// returning labels aligned with keys and how many evaluations were fresh
// (not answered from a memo). Implementations must be safe for concurrent
// calls from different shards but are only ever called with keys the
// owning shard holds.
type LabelFunc func(ctx context.Context, keys []int64) ([]bool, int, error)

// Trainer trains the plan classifier once per training seed and shares
// the fitted instance across every shard of one execution context — the
// in-process analogue of each remote worker training its own identical
// copy. A Trainer must be scoped to one (snapshot, parameters, plan)
// context: the memo key is the training seed alone, which is only sound
// while (x, y) are pinned by that context.
type Trainer struct {
	newClf func(seed uint64) learn.Classifier

	mu   sync.Mutex
	clfs map[uint64]learn.Classifier
}

// NewTrainer returns a Trainer over the given classifier factory.
func NewTrainer(newClf func(seed uint64) learn.Classifier) *Trainer {
	return &Trainer{newClf: newClf, clfs: make(map[uint64]learn.Classifier)}
}

// Train returns the classifier fitted to (x, y) under clfSeed, fitting at
// most once per seed. Forest fitting is deterministic in (x order, y,
// seed), so the shared instance scores byte-identically to a per-shard
// retrain.
func (t *Trainer) Train(x [][]float64, y []bool, clfSeed uint64) (learn.Classifier, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if clf, ok := t.clfs[clfSeed]; ok {
		return clf, nil
	}
	clf := t.newClf(clfSeed)
	if err := clf.Fit(x, y); err != nil {
		return nil, fmt.Errorf("shard: training classifier: %w", err)
	}
	t.clfs[clfSeed] = clf
	return clf, nil
}

// Local is the in-process Worker over one shard's slice of the
// population. The slices are aligned: Feats[i] and Groups[i] (when
// present) describe Keys[i].
type Local struct {
	seed    uint64
	keys    []int64
	feats   [][]float64         // nil when the plan needs no features
	groups  []string            // canonical group per key; nil for plain plans
	parts   map[string][]string // canonical group -> rendered parts
	labelFn LabelFunc
	trainer *Trainer
	idx     map[int64]int
}

// NewLocal builds an in-process shard worker. feats, groups, and parts
// may be nil when the plan does not need them; labelFn is required.
func NewLocal(seed uint64, keys []int64, feats [][]float64, groups []string,
	parts map[string][]string, labelFn LabelFunc, trainer *Trainer) *Local {

	idx := make(map[int64]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}
	return &Local{
		seed: seed, keys: keys, feats: feats, groups: groups, parts: parts,
		labelFn: labelFn, trainer: trainer, idx: idx,
	}
}

// Meta returns the shard's object count and local group census.
func (w *Local) Meta(ctx context.Context) (Meta, error) {
	m := Meta{N: len(w.keys)}
	if w.groups != nil {
		tally := make(map[string]int)
		for _, g := range w.groups {
			tally[g]++
		}
		m.Groups = make([]GroupCount, 0, len(tally))
		for g, n := range tally {
			m.Groups = append(m.Groups, GroupCount{Key: g, Parts: w.parts[g], N: n})
		}
		sort.Slice(m.Groups, func(a, b int) bool { return m.Groups[a].Key < m.Groups[b].Key })
	}
	return m, nil
}

// Cands returns the shard's bottom-k candidates under the given tag.
func (w *Local) Cands(ctx context.Context, k int, tag uint64) ([]Cand, error) {
	return LocalCands(w.keys, k, w.seed, tag), nil
}

// Label evaluates the predicate for the given local keys.
func (w *Local) Label(ctx context.Context, keys []int64) ([]bool, int, error) {
	for _, k := range keys {
		if _, ok := w.idx[k]; !ok {
			return nil, 0, fmt.Errorf("shard: key %d is not on this shard", k)
		}
	}
	return w.labelFn(ctx, keys)
}

// Features returns the feature vectors of the given local keys.
func (w *Local) Features(ctx context.Context, keys []int64) ([][]float64, error) {
	if w.feats == nil {
		return nil, fmt.Errorf("shard: plan carries no features")
	}
	out := make([][]float64, len(keys))
	for i, k := range keys {
		p, ok := w.idx[k]
		if !ok {
			return nil, fmt.Errorf("shard: key %d is not on this shard", k)
		}
		out[i] = w.feats[p]
	}
	return out, nil
}

// ScoreAll trains (or reuses) the plan classifier and scores every local
// object.
func (w *Local) ScoreAll(ctx context.Context, x [][]float64, y []bool, clfSeed uint64) ([]Scored, error) {
	if w.feats == nil {
		return nil, fmt.Errorf("shard: plan carries no features")
	}
	clf, err := w.trainer.Train(x, y, clfSeed)
	if err != nil {
		return nil, err
	}
	scores := learn.ScoreAll(clf, w.feats)
	out := make([]Scored, len(w.keys))
	for i, k := range w.keys {
		s := Scored{Key: k, Score: scores[i]}
		if w.groups != nil {
			s.Group = w.groups[i]
		}
		out[i] = s
	}
	return out, nil
}

// GroupKeys lists every local key with its canonical group.
func (w *Local) GroupKeys(ctx context.Context) ([]Scored, error) {
	out := make([]Scored, len(w.keys))
	for i, k := range w.keys {
		s := Scored{Key: k}
		if w.groups != nil {
			s.Group = w.groups[i]
		}
		out[i] = s
	}
	return out, nil
}

// CountAll labels every local object and returns the merged tallies.
func (w *Local) CountAll(ctx context.Context) (core.Partial, []GroupCount, int, error) {
	labels, fresh, err := w.labelFn(ctx, w.keys)
	if err != nil {
		return core.Partial{}, nil, 0, err
	}
	p := core.Partial{N: len(w.keys), Sampled: len(w.keys)}
	var byGroup map[string]*GroupCount
	if w.groups != nil {
		byGroup = make(map[string]*GroupCount)
		for i, g := range w.groups {
			gc, ok := byGroup[g]
			if !ok {
				gc = &GroupCount{Key: g, Parts: w.parts[g]}
				byGroup[g] = gc
			}
			gc.N++
			if labels[i] {
				gc.Pos++
			}
		}
	}
	for _, b := range labels {
		if b {
			p.Positives++
		}
	}
	var groups []GroupCount
	if byGroup != nil {
		groups = make([]GroupCount, 0, len(byGroup))
		for _, gc := range byGroup {
			groups = append(groups, *gc)
		}
		sort.Slice(groups, func(a, b int) bool { return groups[a].Key < groups[b].Key })
	}
	return p, groups, fresh, nil
}
