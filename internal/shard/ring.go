package shard

import (
	"sort"

	"repro/internal/live"
)

// Ring is a consistent-hash ring over worker names. Each node owns the
// arc before each of its virtual points; a key belongs to the node whose
// point follows the key's hash clockwise. Adding a node moves only the
// keys that land on the new node's arcs; removing one moves only the keys
// it owned — the minimal-movement property the routing fuzzer pins down.
//
// A Ring is deterministic in (replica count, node set): two coordinators
// configured with the same workers route identically. It is not
// goroutine-safe; guard it externally when membership changes at runtime.
type Ring struct {
	replicas int
	nodes    map[string]bool
	points   []ringPoint // sorted by (hash, node, replica)
}

type ringPoint struct {
	hash    uint64
	node    string
	replica int
}

// DefaultReplicas is the virtual-node count per worker: enough to spread
// arcs evenly across a handful of workers without bloating lookups.
const DefaultReplicas = 64

// NewRing returns an empty ring with the given virtual-node count per
// node (<= 0 selects DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]bool)}
}

// Add inserts a node (no-op if present) and reports whether it was new.
func (r *Ring) Add(node string) bool {
	if r.nodes[node] {
		return false
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash:    live.Mix64(HashString(node), uint64(i), TagShard),
			node:    node,
			replica: i,
		})
	}
	r.sortPoints()
	return true
}

// Remove deletes a node and reports whether it was present.
func (r *Ring) Remove(node string) bool {
	if !r.nodes[node] {
		return false
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Nodes returns the current node set, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning the given key, and false when the ring is
// empty.
func (r *Ring) Owner(key string) (string, bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners returns up to n distinct nodes in preference order for the key:
// the owner first, then the successors met walking the ring clockwise.
// The tail of the list is the hedging/failover order for the key's shard.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := live.Mix64(HashString(key), TagShard)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		if pa.node != pb.node {
			return pa.node < pb.node
		}
		return pa.replica < pb.replica
	})
}
