package shard

import (
	"sort"
	"testing"

	"repro/internal/xrand"
)

func randomKeys(n int, seed uint64) []int64 {
	r := xrand.New(seed)
	seen := make(map[int64]bool, n)
	out := make([]int64, 0, n)
	for len(out) < n {
		k := int64(r.Uint64() % uint64(n*10))
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// TestMergeBottomKEquivalence is the merge-exactness pin: for any
// partition of the keys and any k, LocalCands+MergeBottomK equals the
// single-set BottomK byte for byte.
func TestMergeBottomKEquivalence(t *testing.T) {
	keys := randomKeys(500, 42)
	const seed, tag = 7, TagSample
	for _, shards := range []int{1, 2, 3, 8} {
		parts := make([][]int64, shards)
		for _, k := range keys {
			s := OwnerOf(k, shards)
			parts[s] = append(parts[s], k)
		}
		for _, k := range []int{0, 1, 10, 250, 499, 500, 700} {
			want := BottomK(keys, k, seed, tag)
			cands := make([][]Cand, shards)
			for s, p := range parts {
				cands[s] = LocalCands(p, k, seed, tag)
			}
			got := MergeBottomK(cands, k, len(keys))
			if len(got) != len(want) {
				t.Fatalf("shards=%d k=%d: merged %d keys, want %d", shards, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d k=%d: merged[%d]=%d, want %d", shards, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestOwnerOf(t *testing.T) {
	keys := randomKeys(200, 9)
	for _, k := range keys {
		if o := OwnerOf(k, 1); o != 0 {
			t.Fatalf("OwnerOf(%d, 1) = %d", k, o)
		}
		for _, s := range []int{2, 3, 8} {
			o := OwnerOf(k, s)
			if o < 0 || o >= s {
				t.Fatalf("OwnerOf(%d, %d) = %d out of range", k, s, o)
			}
			if o2 := OwnerOf(k, s); o2 != o {
				t.Fatalf("OwnerOf(%d, %d) unstable: %d then %d", k, s, o, o2)
			}
		}
	}
	// The partition must actually spread keys for reasonable counts.
	used := make(map[int]bool)
	for _, k := range keys {
		used[OwnerOf(k, 4)] = true
	}
	if len(used) != 4 {
		t.Fatalf("200 keys landed on only %d of 4 shards", len(used))
	}
}

func TestSpec(t *testing.T) {
	s := Spec{Index: 2, Count: 8}
	if s.String() != "2/8" {
		t.Fatalf("Spec.String() = %q", s.String())
	}
	if !s.Valid() {
		t.Fatal("2/8 should be valid")
	}
	for _, bad := range []Spec{{Index: -1, Count: 4}, {Index: 4, Count: 4}, {Index: 0, Count: 0}} {
		if bad.Valid() {
			t.Fatalf("%+v should be invalid", bad)
		}
	}
}

func TestGroupTagDistinct(t *testing.T) {
	tags := map[uint64]string{}
	for _, g := range []string{"east", "west", "north", "", "east\x1f1"} {
		tag := GroupTag(g)
		if prev, dup := tags[tag]; dup {
			t.Fatalf("GroupTag collision between %q and %q", prev, g)
		}
		tags[tag] = g
	}
}

func TestLessGroupKey(t *testing.T) {
	cases := []struct {
		a, b []string
		want bool
	}{
		{[]string{"2"}, []string{"10"}, true},   // numeric, not lexical
		{[]string{"10"}, []string{"2"}, false},
		{[]string{"east"}, []string{"west"}, true},
		{[]string{"east", "1"}, []string{"east", "2"}, true},
		{[]string{"east"}, []string{"east", "2"}, true}, // shorter first
		{[]string{"1.5"}, []string{"1.25"}, false},
	}
	for _, c := range cases {
		if got := LessGroupKey(c.a, c.b); got != c.want {
			t.Errorf("LessGroupKey(%v, %v) = %t, want %t", c.a, c.b, got, c.want)
		}
	}
	// Irreflexive and a strict weak order over a sample set.
	keys := [][]string{{"1"}, {"2"}, {"10"}, {"x"}, {"x", "1"}}
	sort.Slice(keys, func(a, b int) bool { return LessGroupKey(keys[a], keys[b]) })
	for i := range keys {
		if LessGroupKey(keys[i], keys[i]) {
			t.Fatalf("LessGroupKey(%v, %v) is reflexive", keys[i], keys[i])
		}
	}
}
