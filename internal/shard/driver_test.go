package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
)

// testPred is the deterministic stand-in for the expensive predicate.
func testPred(k int64) bool { return (k*2654435761)%97 < 30 }

// testWorkers partitions a synthetic population of n objects into
// hash-aligned Local workers. Features are derived from the key so lss
// has something to learn; groups (when asked) split the population three
// ways.
func testWorkers(n, shards int, grouped bool) []Worker {
	trainer := NewTrainer(core.ForestClassifier(1))
	keys := make([][]int64, shards)
	feats := make([][][]float64, shards)
	groups := make([][]string, shards)
	parts := map[string][]string{"g0": {"g0"}, "g1": {"g1"}, "g2": {"g2"}}
	for i := 0; i < n; i++ {
		k := int64(i*3 + 1)
		s := OwnerOf(k, shards)
		keys[s] = append(keys[s], k)
		feats[s] = append(feats[s], []float64{float64(k % 17), float64(k % 5)})
		if grouped {
			groups[s] = append(groups[s], fmt.Sprintf("g%d", i%3))
		}
	}
	out := make([]Worker, shards)
	for s := 0; s < shards; s++ {
		label := func(ctx context.Context, sel []int64) ([]bool, int, error) {
			labels := make([]bool, len(sel))
			for j, k := range sel {
				labels[j] = testPred(k)
			}
			return labels, len(sel), nil
		}
		var g []string
		if grouped {
			g = groups[s]
		}
		out[s] = NewLocal(5, keys[s], feats[s], g, parts, label, trainer)
	}
	return out
}

func testPlan(method string, grouped bool) Plan {
	return Plan{
		Method:  method,
		Grouped: grouped,
		BudgetOf: func(n int) int {
			b := int(math.Round(0.2 * float64(n)))
			if b < 10 {
				b = 10
			}
			if b > n {
				b = n
			}
			return b
		},
		Strata: 4,
		Seed:   5,
	}
}

// TestDriveByteIdenticalAcrossShardCounts pins the merge identity at the
// driver level: every method's result at 2, 3, and 5 shards equals the
// single-shard run byte for byte.
func TestDriveByteIdenticalAcrossShardCounts(t *testing.T) {
	const n = 300
	for _, method := range []string{"srs", "lss", "oracle"} {
		for _, grouped := range []bool{false, true} {
			name := method
			if grouped {
				name += "/grouped"
			}
			t.Run(name, func(t *testing.T) {
				plan := testPlan(method, grouped)
				plan.Exact = true
				ref, err := Drive(context.Background(), plan, testWorkers(n, 1, grouped))
				if err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{2, 3, 5} {
					got, err := Drive(context.Background(), plan, testWorkers(n, shards, grouped))
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					if got.Count != ref.Count || got.CILo != ref.CILo || got.CIHi != ref.CIHi {
						t.Errorf("shards=%d: %v [%v,%v], want %v [%v,%v]",
							shards, got.Count, got.CILo, got.CIHi, ref.Count, ref.CILo, ref.CIHi)
					}
					if got.TrueCount != ref.TrueCount || got.N != ref.N || got.Budget != ref.Budget {
						t.Errorf("shards=%d: true/N/budget %d/%d/%d, want %d/%d/%d",
							shards, got.TrueCount, got.N, got.Budget, ref.TrueCount, ref.N, ref.Budget)
					}
					if len(got.Groups) != len(ref.Groups) {
						t.Fatalf("shards=%d: %d groups, want %d", shards, len(got.Groups), len(ref.Groups))
					}
					for i := range ref.Groups {
						rg, gg := ref.Groups[i], got.Groups[i]
						if gg.Key != rg.Key || gg.Count != rg.Count || gg.CILo != rg.CILo ||
							gg.CIHi != rg.CIHi || gg.N != rg.N || gg.Sampled != rg.Sampled {
							t.Errorf("shards=%d group %q diverged: %+v vs %+v", shards, rg.Key, gg, rg)
						}
					}
				}
			})
		}
	}
}

// lossy wraps a Worker and fails configured ops with a LostShardError —
// the driver-level model of a crashed or unreachable worker.
type lossy struct {
	Worker
	id       int
	failMeta bool
	failOps  bool
}

func (l *lossy) err() error {
	return &LostShardError{Shard: l.id, Err: errors.New("injected shard loss")}
}

func (l *lossy) Meta(ctx context.Context) (Meta, error) {
	if l.failMeta {
		return Meta{}, l.err()
	}
	return l.Worker.Meta(ctx)
}

func (l *lossy) Cands(ctx context.Context, k int, tag uint64) ([]Cand, error) {
	if l.failOps {
		return nil, l.err()
	}
	return l.Worker.Cands(ctx, k, tag)
}

func (l *lossy) Label(ctx context.Context, keys []int64) ([]bool, int, error) {
	if l.failOps {
		return nil, 0, l.err()
	}
	return l.Worker.Label(ctx, keys)
}

func (l *lossy) Features(ctx context.Context, keys []int64) ([][]float64, error) {
	if l.failOps {
		return nil, l.err()
	}
	return l.Worker.Features(ctx, keys)
}

func (l *lossy) ScoreAll(ctx context.Context, x [][]float64, y []bool, clfSeed uint64) ([]Scored, error) {
	if l.failOps {
		return nil, l.err()
	}
	return l.Worker.ScoreAll(ctx, x, y, clfSeed)
}

func (l *lossy) GroupKeys(ctx context.Context) ([]Scored, error) {
	if l.failOps {
		return nil, l.err()
	}
	return l.Worker.GroupKeys(ctx)
}

func (l *lossy) CountAll(ctx context.Context) (core.Partial, []GroupCount, int, error) {
	if l.failOps {
		return core.Partial{}, nil, 0, l.err()
	}
	return l.Worker.CountAll(ctx)
}

// TestDriveDegradedPlain loses one shard after the census: with
// AllowDegraded the answer comes back scaled and widened (never silently
// partial), without it the query fails with ErrShardLost.
func TestDriveDegradedPlain(t *testing.T) {
	const n, shards = 300, 4
	for _, method := range []string{"srs", "lss", "oracle"} {
		t.Run(method, func(t *testing.T) {
			workers := testWorkers(n, shards, false)
			dead := &lossy{Worker: workers[2], id: 2, failOps: true}
			workers[2] = dead

			plan := testPlan(method, false)
			if _, err := Drive(context.Background(), plan, workers); !errors.Is(err, ErrShardLost) {
				t.Fatalf("without AllowDegraded: err = %v, want ErrShardLost", err)
			}

			plan.AllowDegraded = true
			plan.Exact = true
			res, err := Drive(context.Background(), plan, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Degraded {
				t.Fatal("result not marked degraded")
			}
			if len(res.Lost) != 1 || res.Lost[0] != 2 {
				t.Fatalf("Lost = %v, want [2]", res.Lost)
			}
			if res.N != n {
				t.Fatalf("N = %d, want the full population %d", res.N, n)
			}
			if res.HasTrue {
				t.Fatal("degraded answer must not claim a true count")
			}
			if !res.HasCI || res.CIHi > float64(n) || res.CILo < 0 || res.CILo > res.CIHi {
				t.Fatalf("degraded CI invalid: [%v, %v]", res.CILo, res.CIHi)
			}
			// The interval must have absorbed the lost mass: compare with a
			// clean run's width.
			clean, err := Drive(context.Background(), testPlan(method, false), testWorkers(n, shards, false))
			if err != nil {
				t.Fatal(err)
			}
			if res.CIHi-res.CILo <= clean.CIHi-clean.CILo {
				t.Fatalf("degraded interval [%v,%v] no wider than clean [%v,%v]",
					res.CILo, res.CIHi, clean.CILo, clean.CIHi)
			}
			if res.Count <= 0 || res.Count > float64(n) {
				t.Fatalf("degraded count %v out of range", res.Count)
			}
		})
	}
}

// TestDriveDegradedGrouped checks the grouped degraded contract: every
// census group survives in the answer, and a group's interval widens by
// exactly its own lost membership.
func TestDriveDegradedGrouped(t *testing.T) {
	const n, shards = 300, 4
	workers := testWorkers(n, shards, true)
	workers[1] = &lossy{Worker: workers[1], id: 1, failOps: true}
	plan := testPlan("lss", true)
	plan.AllowDegraded = true
	res, err := Drive(context.Background(), plan, workers)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || len(res.Lost) != 1 || res.Lost[0] != 1 {
		t.Fatalf("degraded/lost = %t/%v", res.Degraded, res.Lost)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("got %d groups, want all 3 census groups", len(res.Groups))
	}
	totalN := 0
	for _, g := range res.Groups {
		totalN += g.N
		if !g.HasCI || g.CIHi > float64(g.N) || g.CILo < 0 {
			t.Fatalf("group %q: invalid CI [%v, %v] for N=%d", g.Key, g.CILo, g.CIHi, g.N)
		}
		if g.HasTrue {
			t.Fatalf("group %q claims a true count while degraded", g.Key)
		}
	}
	if totalN != n {
		t.Fatalf("group census sums to %d, want %d", totalN, n)
	}
}

// TestDriveCensusLossFatal: a shard lost before reporting its size can
// never be absorbed — its population is unknown — so the query fails even
// with AllowDegraded.
func TestDriveCensusLossFatal(t *testing.T) {
	workers := testWorkers(100, 3, false)
	workers[0] = &lossy{Worker: workers[0], id: 0, failMeta: true}
	plan := testPlan("srs", false)
	plan.AllowDegraded = true
	if _, err := Drive(context.Background(), plan, workers); !errors.Is(err, ErrShardLost) {
		t.Fatalf("err = %v, want ErrShardLost", err)
	}
}

// TestDriveAllShardsLost: losing everything is an error, not an empty
// answer.
func TestDriveAllShardsLost(t *testing.T) {
	workers := testWorkers(100, 2, false)
	for i := range workers {
		workers[i] = &lossy{Worker: workers[i], id: i, failOps: true}
	}
	plan := testPlan("srs", false)
	plan.AllowDegraded = true
	if _, err := Drive(context.Background(), plan, workers); err == nil {
		t.Fatal("losing every shard should fail")
	}
}

// TestDriveRejectsUnknownMethod pins the no-fallback rule at the driver.
func TestDriveRejectsUnknownMethod(t *testing.T) {
	if _, err := Drive(context.Background(), Plan{Method: "ssp"}, testWorkers(10, 1, false)); err == nil {
		t.Fatal("ssp should be rejected")
	}
	if _, err := Drive(context.Background(), Plan{Method: "srs"}, nil); err == nil {
		t.Fatal("no workers should be rejected")
	}
}
