package shard

import (
	"sort"

	"repro/internal/live"
)

// Cand is one candidate of a per-shard bottom-k selection: the object key
// and its selection hash. Candidates from different shards merge by
// re-sorting on (Hash, Key) — the same order BottomK uses — so the merged
// prefix is exactly the unsharded selection.
type Cand struct {
	Hash uint64
	Key  int64
}

// BottomK deterministically samples k of the given keys: the k smallest
// by (Mix64(seed, tag, key), key). When k covers the whole population the
// selection is every key, sorted ascending. This is the canonical
// hash-plan sampling primitive; lsample's catalog and refresh paths
// delegate to it, so sharded and unsharded executions share one
// implementation by construction.
func BottomK(keys []int64, k int, seed, tag uint64) []int64 {
	if k >= len(keys) {
		out := append([]int64(nil), keys...)
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out
	}
	if k <= 0 {
		return nil
	}
	hs := candsOf(keys, seed, tag)
	sortCands(hs)
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = hs[i].Key
	}
	return out
}

// LocalCands returns one shard's bottom-k candidates: its min(k, n)
// smallest (hash, key) pairs, sorted. The global bottom-k of the whole
// population is always a subset of the union of per-shard bottom-k sets,
// which is what makes MergeBottomK exact.
func LocalCands(keys []int64, k int, seed, tag uint64) []Cand {
	if k <= 0 {
		return nil
	}
	hs := candsOf(keys, seed, tag)
	sortCands(hs)
	if k < len(hs) {
		hs = hs[:k]
	}
	return hs
}

// MergeBottomK merges per-shard candidate sets into the global bottom-k
// over a population of total keys. It is byte-identical to
// BottomK(allKeys, k, seed, tag) provided every part was produced by
// LocalCands with the same (k, seed, tag): when k covers the population
// the result is every key ascending (BottomK's full-coverage order);
// otherwise the k smallest (hash, key) pairs in hash order.
func MergeBottomK(parts [][]Cand, k, total int) []int64 {
	if k <= 0 {
		return nil
	}
	all := make([]Cand, 0, k*len(parts))
	for _, p := range parts {
		all = append(all, p...)
	}
	if k >= total {
		out := make([]int64, 0, len(all))
		for _, c := range all {
			out = append(out, c.Key)
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out
	}
	sortCands(all)
	if k > len(all) {
		k = len(all)
	}
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].Key
	}
	return out
}

func candsOf(keys []int64, seed, tag uint64) []Cand {
	hs := make([]Cand, len(keys))
	for i, key := range keys {
		hs[i] = Cand{Hash: live.Mix64(seed, tag, uint64(key)), Key: key}
	}
	return hs
}

func sortCands(hs []Cand) {
	sort.Slice(hs, func(a, b int) bool {
		if hs[a].Hash != hs[b].Hash {
			return hs[a].Hash < hs[b].Hash
		}
		return hs[a].Key < hs[b].Key
	})
}
