// Package shard implements sharded scale-out estimation: a registered
// table is partitioned into hash-aligned shards, the deterministic
// sample/learn/label pipeline runs independently per shard, and the
// partial results merge through the stratified estimator so the sharded
// answer is byte-identical to the single-shard run at any shard count.
//
// The identity argument is the same pure-function-of-(snapshot, seed)
// trick the live layer uses for sample membership:
//
//   - Sample membership is hash bottom-k: an object key k belongs to the
//     size-b sample iff Mix64(seed, tag, k) is among the b smallest hashes
//     of the population. Each shard reports its local bottom-k candidates;
//     the union of per-shard bottom-k sets always contains the global
//     bottom-k, so re-sorting the candidates and keeping k reproduces the
//     unsharded selection exactly (MergeBottomK).
//   - Labels are pure functions of (snapshot, key, predicate): which shard
//     evaluates the predicate cannot change the label.
//   - Classifier training is a pure function of (learn sample order,
//     labels, train seed): the merged learn sample is broadcast to every
//     shard, each trains the identical forest locally, and per-row scores
//     of disjoint shards concatenate into exactly the scores a single
//     process would have computed.
//   - Everything downstream of scoring — equal-count cuts over the merged
//     score multiset, stratum membership, proportional allocation,
//     per-stratum bottom-k, and the stratified estimator — consumes
//     integer tallies or full multisets, both of which merge exactly.
//
// The Worker interface abstracts one shard's primitives; Local implements
// it in-process, and the serving layer implements it over HTTP so the
// same Drive loop powers both lsample.WithShards and the lsserve
// coordinator/worker roles.
package shard

import (
	"fmt"

	"repro/internal/live"
)

// Hash-plan domain-separation tags. TagLearn, TagSample, and TagTrain
// mirror lsample's hash-plan constants — the sharded executor must draw
// the same learn/sample membership and train seed as the unsharded
// catalog plan, or byte-identity is lost.
const (
	// TagLearn selects the learn-phase bottom-k sample ("LEARN").
	TagLearn = 0x4c4541524e
	// TagSample selects the estimation-phase bottom-k sample ("SAMPL").
	TagSample = 0x53414d504c
	// TagTrain derives the classifier training seed ("TRAIN").
	TagTrain = 0x545241494e
	// TagShard places object keys on shards ("SHARD"). It is distinct from
	// the sampling tags so shard placement and sample membership stay
	// independent hashes.
	TagShard = 0x5348415244
	// TagGroup derives per-group fallback sampling tags ("GROUP").
	TagGroup = 0x47524f5550
)

// Spec identifies one shard of a layout: shard Index of Count total.
type Spec struct {
	Index int
	Count int
}

// String renders the spec in the catalog's Shard key form, "index/count".
func (s Spec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// Valid reports whether the spec is a well-formed layout member.
func (s Spec) Valid() bool { return s.Count >= 1 && s.Index >= 0 && s.Index < s.Count }

// OwnerOf places an object key on a shard: a pure function of the key, so
// every process computes the same partition without coordination. Shard
// placement hashes with TagShard, keeping it independent of sample
// membership — a shard neither concentrates nor starves sample mass.
func OwnerOf(key int64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(live.Mix64(TagShard, uint64(key)) % uint64(shards))
}

// HashString folds a string into a 64-bit value (FNV-1a) for ring
// placement and group-tag derivation.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// GroupTag derives the per-group fallback sampling tag from the group's
// canonical key, domain-separated from the shared-sample tag so a group's
// top-up draw is independent of the shared selection.
func GroupTag(canonical string) uint64 {
	return live.Mix64(TagSample, TagGroup, HashString(canonical))
}
