package shard

import (
	"context"
	"testing"
	"time"
)

// The shard benchmarks price what the scatter layer buys. Labeling
// dominates an estimate's cost (the paper bills everything in predicate
// evaluations), and sharding overlaps the per-worker labeling time. A CI
// runner gives every in-process worker the same core, so each benchmark
// worker's Label models a remote predicate service: a fixed per-key
// service time (benchLabelCost) on top of the real evaluation. The wall
// clock then measures the scatter overlap a multi-process deployment
// sees, while evals/op pins the total labeling bill — byte-identity
// keeps it equal at every shard count.

const (
	benchShardN    = 4000
	benchLabelCost = 100 * time.Microsecond
)

// slowWorker wraps a Worker with per-key labeling service time.
type slowWorker struct{ Worker }

func (s slowWorker) Label(ctx context.Context, keys []int64) ([]bool, int, error) {
	t := time.NewTimer(time.Duration(len(keys)) * benchLabelCost)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	case <-t.C:
	}
	return s.Worker.Label(ctx, keys)
}

func benchWorkers(b *testing.B, shards int) []Worker {
	b.Helper()
	ws := testWorkers(benchShardN, shards, false)
	out := make([]Worker, len(ws))
	for i, w := range ws {
		out[i] = slowWorker{w}
	}
	return out
}

// benchDrive runs the lss plan over the given shard count and checks the
// answer against the unsharded reference — the benchmark doubles as a
// determinism probe, so a run that loses byte-identity fails instead of
// recording a meaningless time.
func benchDrive(b *testing.B, shards int) {
	b.Helper()
	plan := testPlan("lss", false)
	ref, err := Drive(context.Background(), plan, testWorkers(benchShardN, 1, false))
	if err != nil {
		b.Fatal(err)
	}
	workers := benchWorkers(b, shards)
	b.ResetTimer()
	var evals int64
	for i := 0; i < b.N; i++ {
		res, err := Drive(context.Background(), plan, workers)
		if err != nil {
			b.Fatal(err)
		}
		if res.Count != ref.Count || res.CILo != ref.CILo || res.CIHi != ref.CIHi {
			b.Fatalf("shards=%d diverged: %v [%v,%v], want %v [%v,%v]",
				shards, res.Count, res.CILo, res.CIHi, ref.Count, ref.CILo, ref.CIHi)
		}
		evals += int64(res.SamplesUsed)
	}
	b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
}

func BenchmarkShardDrive1(b *testing.B) { benchDrive(b, 1) }
func BenchmarkShardDrive2(b *testing.B) { benchDrive(b, 2) }
func BenchmarkShardDrive4(b *testing.B) { benchDrive(b, 4) }
func BenchmarkShardDrive8(b *testing.B) { benchDrive(b, 8) }

// BenchmarkShardDriveDegraded is the chaos run: 4 shards with shard 2
// killed after the census, under a 2-second deadline standing in for the
// coordinator's per-query budget. AllowDegraded restarts the protocol
// over the survivors; missing the deadline or answering non-degraded
// fails the benchmark.
func BenchmarkShardDriveDegraded(b *testing.B) {
	workers := benchWorkers(b, 4)
	workers[2] = &lossy{Worker: workers[2], id: 2, failOps: true}
	plan := testPlan("lss", false)
	plan.AllowDegraded = true
	b.ResetTimer()
	var evals int64
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		res, err := Drive(ctx, plan, workers)
		cancel()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Degraded || len(res.Lost) != 1 || res.Lost[0] != 2 {
			b.Fatalf("degraded run answered degraded=%v lost=%v", res.Degraded, res.Lost)
		}
		evals += int64(res.SamplesUsed)
	}
	b.ReportMetric(float64(evals)/float64(b.N), "evals/op")
}
