package shard

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrShardLost marks a shard whose every transport candidate failed: the
// resilient wrappers (hedged HTTP clients, chaos-test fakes) return it
// once retries are exhausted, and Drive reacts by restarting over the
// surviving shards and — when the plan allows — answering degraded with a
// widened interval instead of silently dropping the shard's population.
var ErrShardLost = errors.New("shard: shard lost")

// LostShardError wraps ErrShardLost with the failing shard's index.
type LostShardError struct {
	Shard int
	Err   error
}

// Error renders the lost shard and its cause.
func (e *LostShardError) Error() string { return fmt.Sprintf("shard %d lost: %v", e.Shard, e.Err) }

// Unwrap exposes ErrShardLost (and the cause) to errors.Is/As.
func (e *LostShardError) Unwrap() error { return ErrShardLost }

// Meta is a shard's population summary: its object count and, for grouped
// queries, its per-group census.
type Meta struct {
	N      int
	Groups []GroupCount
}

// GroupCount is one group's tally on one shard: canonical key, rendered
// key parts, member count, and (for exact passes) positives.
type GroupCount struct {
	Key   string   // canonical identity: parts joined with \x1f
	Parts []string // rendered column values, aligned with GroupColumns
	N     int
	Pos   int
}

// Scored is one object's shard-local record: its key, classifier score
// (zero when the op does not score), and canonical group key (empty for
// plain queries).
type Scored struct {
	Key   int64
	Score float64
	Group string
}

// Worker is one shard's estimation primitives. Every method is a pure
// function of (snapshot, seed, arguments) — which worker executes a call
// never changes its result — so a coordinator may freely retry, hedge, or
// re-route calls between replicas holding the same snapshot.
//
// Implementations must be safe for concurrent calls: Drive scatters
// rounds across shards in parallel.
type Worker interface {
	// Meta returns the shard's object count and, for grouped plans, its
	// local per-group census.
	Meta(ctx context.Context) (Meta, error)

	// Cands returns the shard's bottom-k candidates under the plan seed
	// and the given tag (LocalCands over the shard's keys).
	Cands(ctx context.Context, k int, tag uint64) ([]Cand, error)

	// Label evaluates the predicate for the given shard-owned keys,
	// returning labels aligned with keys and the number of fresh
	// (non-memoized) predicate evaluations spent.
	Label(ctx context.Context, keys []int64) (labels []bool, fresh int, err error)

	// Features returns the feature vectors of the given shard-owned keys.
	Features(ctx context.Context, keys []int64) ([][]float64, error)

	// ScoreAll trains the plan classifier on the broadcast learn sample
	// (x, y in merged selection order; clfSeed from the plan) and scores
	// every local object, returning one Scored per local key. Training is
	// deterministic in (x, y, clfSeed), so every shard trains the
	// identical classifier and per-row scores concatenate exactly.
	ScoreAll(ctx context.Context, x [][]float64, y []bool, clfSeed uint64) ([]Scored, error)

	// GroupKeys returns every local key with its canonical group (scores
	// zero) — the feature-free grouped plans' population listing.
	GroupKeys(ctx context.Context) ([]Scored, error)

	// CountAll labels every local object, returning the shard tally, the
	// per-group tallies (grouped plans), and the fresh evaluation count.
	CountAll(ctx context.Context) (core.Partial, []GroupCount, int, error)
}
