package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/live"
	"repro/internal/obs"
)

// Plan describes one sharded estimation: the method and every knob that
// feeds the deterministic hash-plan recipe. Drive executes the same
// procedure the single-process catalog path runs — hash bottom-k
// sampling, seeded training, equal-count cuts, proportional allocation —
// so the merged answer is byte-identical to the unsharded one.
type Plan struct {
	Method   string           // "srs", "lss", or "oracle"
	Grouped  bool             // grouped (GROUP BY) estimation
	BudgetOf func(n int) int  // evaluation budget as a function of population size
	Strata   int              // lss stratum count H (< 2 selects 4)
	Seed     uint64
	Alpha    float64
	Wilson   bool // Wilson interval for srs (plain and per-group)
	MinGroup int  // grouped: minimum per-group sample before topping up (<= 0 selects 10)
	Exact    bool // also compute the true count (full labeling pass)

	// AllowDegraded lets Drive answer after losing shards mid-query:
	// the protocol restarts over the survivors and the answer is scaled
	// to the full population with a widened interval. When false a lost
	// shard fails the query.
	AllowDegraded bool
}

// Group is one group's merged estimate.
type Group struct {
	Key        string   // canonical identity (parts joined with \x1f)
	Parts      []string // rendered key parts
	N          int      // group population size
	Sampled    int
	Count      float64
	Proportion float64
	CILo, CIHi float64
	HasCI      bool
	Exact      bool
	TrueCount  int
	HasTrue    bool
}

// Result is the merged estimate of one sharded execution.
type Result struct {
	N            int // full population size (including lost shards)
	Budget       int
	Count        float64
	Proportion   float64
	CILo, CIHi   float64
	HasCI        bool
	SamplesUsed  int // fresh predicate evaluations across all shards
	ReusedLabels int // label requests answered by the driver-side memo
	Exact        bool
	Degraded     bool
	Lost         []int // shard indices lost mid-query (degraded answers)
	Shards       int
	Groups       []Group
	TrueCount    int
	HasTrue      bool
}

// DefaultMinGroup is the per-group sample floor for grouped estimates.
const DefaultMinGroup = 10

// Drive runs the plan across the given shard workers and merges their
// partial results. Workers are indexed by shard: workers[i] serves shard
// i of len(workers). Every sampling decision is a pure function of
// (plan, population), so the result is byte-identical at any shard count
// and any scatter interleaving.
//
// A worker that fails with a LostShardError is dropped and — when
// plan.AllowDegraded is set — the protocol restarts over the survivors;
// the final answer is scaled to the full population with the lost mass
// added to the interval's upper bound. Losses during the initial
// population census are always fatal: without the lost shard's size the
// answer cannot be made sound.
func Drive(ctx context.Context, plan Plan, workers []Worker) (*Result, error) {
	switch plan.Method {
	case "srs", "lss", "oracle":
	default:
		return nil, fmt.Errorf("shard: method %q cannot run sharded", plan.Method)
	}
	if plan.BudgetOf == nil && plan.Method != "oracle" {
		return nil, fmt.Errorf("shard: plan for %q needs a budget rule", plan.Method)
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("shard: no workers")
	}

	r := &run{plan: plan, memo: make(map[int64]bool), owner: make(map[int64]int)}
	for i, w := range workers {
		r.workers = append(r.workers, w)
		r.ids = append(r.ids, i)
	}

	// Census round: every shard must report its population before any
	// loss is survivable.
	r.metas = make([]Meta, len(r.workers))
	cctx, csp := obs.StartSpan(ctx, "shard.census")
	err := r.scatter(cctx, func(slot int, w Worker) error {
		m, merr := w.Meta(cctx)
		if merr != nil {
			return merr
		}
		r.metas[slot] = m
		return nil
	})
	csp.End()
	if err != nil {
		if errors.Is(err, ErrShardLost) {
			return nil, fmt.Errorf("shard: lost before census, population unknown: %w", err)
		}
		return nil, err
	}
	fullN := 0
	for _, m := range r.metas {
		fullN += m.N
	}
	csp.Set("shards", len(r.workers))
	csp.Set("population", fullN)
	fullGroups := r.mergeCensus()

	for restart := 0; ; restart++ {
		actx, asp := obs.StartSpan(ctx, "shard.attempt")
		asp.Set("survivors", len(r.workers))
		asp.Set("restart", restart)
		res, rerr := r.attempt(actx)
		if rerr == nil {
			asp.End()
			r.degrade(res, fullN, fullGroups)
			return res, nil
		}
		asp.Set("error", rerr.Error())
		asp.End()
		var lost *LostShardError
		if !errors.As(rerr, &lost) || !plan.AllowDegraded {
			return nil, rerr
		}
		if !r.drop(lost.Shard) {
			return nil, rerr
		}
		if len(r.workers) == 0 {
			return nil, fmt.Errorf("shard: every shard lost: %w", rerr)
		}
	}
}

// run is one Drive invocation's mutable state: the surviving workers (and
// their original shard ids), the census, the key-ownership map learned
// from op results, and the driver-side label memo. The memo survives a
// degraded restart — labels are pure in (snapshot, key, predicate), so
// survivor keys never need relabeling.
type run struct {
	plan    Plan
	workers []Worker
	ids     []int
	metas   []Meta

	owner  map[int64]int // key -> slot in workers
	memo   map[int64]bool
	fresh  int
	reused int

	lost  []int
	lostN int
}

// drop removes the lost shard (by original id) from the survivor set and
// from the ownership map, recording its population as lost mass.
func (r *run) drop(id int) bool {
	slot := -1
	for i, wid := range r.ids {
		if wid == id {
			slot = i
			break
		}
	}
	if slot < 0 {
		return false
	}
	r.lost = append(r.lost, id)
	r.lostN += r.metas[slot].N
	r.workers = append(r.workers[:slot], r.workers[slot+1:]...)
	r.ids = append(r.ids[:slot], r.ids[slot+1:]...)
	r.metas = append(r.metas[:slot], r.metas[slot+1:]...)
	for k, s := range r.owner {
		switch {
		case s == slot:
			delete(r.owner, k)
		case s > slot:
			r.owner[k] = s - 1
		}
	}
	return true
}

// aliveN is the survivor universe's population.
func (r *run) aliveN() int {
	n := 0
	for _, m := range r.metas {
		n += m.N
	}
	return n
}

// census is the merged per-group population table.
type census struct {
	key   string
	parts []string
	n     int
}

// mergeCensus merges the survivors' group censuses.
func (r *run) mergeCensus() []census {
	if !r.plan.Grouped {
		return nil
	}
	byKey := make(map[string]*census)
	for _, m := range r.metas {
		for _, g := range m.Groups {
			c, ok := byKey[g.Key]
			if !ok {
				c = &census{key: g.Key, parts: g.Parts}
				byKey[g.Key] = c
			}
			c.n += g.N
		}
	}
	out := make([]census, 0, len(byKey))
	for _, c := range byKey {
		out = append(out, *c)
	}
	sort.Slice(out, func(a, b int) bool { return LessGroupKey(out[a].parts, out[b].parts) })
	return out
}

// scatter runs fn once per surviving worker concurrently and joins. A
// LostShardError is reported in preference to other errors so the caller
// can degrade; the error is annotated with the worker's original shard id
// when the implementation did not set one.
func (r *run) scatter(ctx context.Context, fn func(slot int, w Worker) error) error {
	errs := make([]error, len(r.workers))
	var wg sync.WaitGroup
	for i, w := range r.workers {
		wg.Add(1)
		go func(slot int, w Worker) {
			defer wg.Done()
			errs[slot] = fn(slot, w)
		}(i, w)
	}
	wg.Wait()
	var first error
	for slot, err := range errs {
		if err == nil {
			continue
		}
		var lost *LostShardError
		if errors.As(err, &lost) {
			return lost
		}
		if errors.Is(err, ErrShardLost) {
			return &LostShardError{Shard: r.ids[slot], Err: err}
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// claim records key ownership learned from an op result.
func (r *run) claim(slot int, key int64) { r.owner[key] = slot }

// label answers labels for the given distinct keys, routing memo misses
// to their owning shards in one batched round.
func (r *run) label(ctx context.Context, sel []int64) ([]bool, error) {
	perOwner := make(map[int][]int64)
	queued := 0
	for _, k := range sel {
		if _, ok := r.memo[k]; ok {
			continue
		}
		slot, ok := r.owner[k]
		if !ok {
			return nil, fmt.Errorf("shard: key %d has no known owner", k)
		}
		perOwner[slot] = append(perOwner[slot], k)
		queued++
	}
	if queued > 0 {
		type got struct {
			keys   []int64
			labels []bool
			fresh  int
		}
		results := make([]*got, len(r.workers))
		err := r.scatter(ctx, func(slot int, w Worker) error {
			keys := perOwner[slot]
			if len(keys) == 0 {
				return nil
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			labels, fresh, lerr := w.Label(ctx, keys)
			if lerr != nil {
				return lerr
			}
			if len(labels) != len(keys) {
				return fmt.Errorf("shard: worker returned %d labels for %d keys", len(labels), len(keys))
			}
			results[slot] = &got{keys: keys, labels: labels, fresh: fresh}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, g := range results {
			if g == nil {
				continue
			}
			for j, k := range g.keys {
				r.memo[k] = g.labels[j]
			}
			r.fresh += g.fresh
		}
	}
	r.reused += len(sel) - queued
	out := make([]bool, len(sel))
	for j, k := range sel {
		out[j] = r.memo[k]
	}
	return out, nil
}

// features fetches feature vectors for the given keys from their owners,
// assembled in sel order.
func (r *run) features(ctx context.Context, sel []int64) ([][]float64, error) {
	perOwner := make(map[int][]int64)
	for _, k := range sel {
		slot, ok := r.owner[k]
		if !ok {
			return nil, fmt.Errorf("shard: key %d has no known owner", k)
		}
		perOwner[slot] = append(perOwner[slot], k)
	}
	byKey := make(map[int64][]float64, len(sel))
	var mu sync.Mutex
	err := r.scatter(ctx, func(slot int, w Worker) error {
		keys := perOwner[slot]
		if len(keys) == 0 {
			return nil
		}
		fv, ferr := w.Features(ctx, keys)
		if ferr != nil {
			return ferr
		}
		if len(fv) != len(keys) {
			return fmt.Errorf("shard: worker returned %d vectors for %d keys", len(fv), len(keys))
		}
		mu.Lock()
		for j, k := range keys {
			byKey[k] = fv[j]
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(sel))
	for j, k := range sel {
		out[j] = byKey[k]
	}
	return out, nil
}

// cands gathers per-shard bottom-k candidates under the tag and records
// their ownership.
func (r *run) cands(ctx context.Context, k int, tag uint64) ([][]Cand, error) {
	parts := make([][]Cand, len(r.workers))
	err := r.scatter(ctx, func(slot int, w Worker) error {
		cs, cerr := w.Cands(ctx, k, tag)
		if cerr != nil {
			return cerr
		}
		parts[slot] = cs
		return nil
	})
	if err != nil {
		return nil, err
	}
	for slot, cs := range parts {
		for _, c := range cs {
			r.claim(slot, c.Key)
		}
	}
	return parts, nil
}

// attempt runs the full protocol over the current survivor set.
func (r *run) attempt(ctx context.Context) (*Result, error) {
	n := r.aliveN()
	res := &Result{N: n, Shards: len(r.workers)}
	alpha := r.plan.Alpha
	if alpha <= 0 {
		alpha = 0.05
	}
	if n == 0 {
		res.HasCI = true
		if r.plan.Exact {
			res.HasTrue = true
		}
		return res, nil
	}

	if r.plan.BudgetOf != nil {
		// The nominal budget is reported even for the oracle, mirroring
		// the single-process paths.
		res.Budget = r.plan.BudgetOf(n)
	}
	var err error
	if r.plan.Grouped {
		err = r.attemptGrouped(ctx, res, n, alpha)
	} else {
		err = r.attemptPlain(ctx, res, n, alpha)
	}
	if err != nil {
		return nil, err
	}
	res.Proportion = res.Count / float64(n)
	res.SamplesUsed = r.fresh
	res.ReusedLabels = r.reused
	return res, nil
}

// attemptPlain runs srs/lss/oracle without grouping — the exact recipe of
// the single-process catalog path.
func (r *run) attemptPlain(ctx context.Context, res *Result, n int, alpha float64) error {
	switch r.plan.Method {
	case "oracle":
		merged, _, err := r.countAll(ctx, nil)
		if err != nil {
			return err
		}
		c := float64(merged.Positives)
		res.Count, res.CILo, res.CIHi, res.HasCI = c, c, c, true
		res.Exact = true
		if r.plan.Exact {
			res.TrueCount, res.HasTrue = merged.Positives, true
		}
		return nil

	case "srs":
		budget := r.plan.BudgetOf(n)
		res.Budget = budget
		parts, err := r.cands(ctx, budget, TagSample)
		if err != nil {
			return err
		}
		sel := MergeBottomK(parts, budget, n)
		labels, err := r.label(ctx, sel)
		if err != nil {
			return err
		}
		pos := 0
		for _, b := range labels {
			if b {
				pos++
			}
		}
		var er estimate.Result
		if r.plan.Wilson {
			er = estimate.ProportionWilson(pos, len(sel), n, alpha)
		} else {
			er = estimate.Proportion(pos, len(sel), n, alpha)
		}
		res.Count, res.CILo, res.CIHi, res.HasCI = er.Count, er.CI.Lo, er.CI.Hi, true

	case "lss":
		budget := r.plan.BudgetOf(n)
		res.Budget = budget
		scores, _, err := r.learnAndScore(ctx, n, budget)
		if err != nil {
			return err
		}
		strata, err := r.sampleStrata(ctx, scores, n, budget)
		if err != nil {
			return err
		}
		er, serr := estimate.Stratified(strata, alpha)
		if serr != nil {
			return fmt.Errorf("shard: %v", serr)
		}
		res.Count, res.CILo, res.CIHi, res.HasCI = er.Count, er.CI.Lo, er.CI.Hi, true
	}

	if r.plan.Exact {
		merged, _, err := r.countAll(ctx, nil)
		if err != nil {
			return err
		}
		res.TrueCount, res.HasTrue = merged.Positives, true
	}
	return nil
}

// learnAndScore runs the lss learn phase: merge the hash learn sample,
// label it, broadcast (x, y, seed) so every shard trains the identical
// classifier, and gather per-key scores. It returns every scored object
// (claiming ownership as it goes) and the learn-sample size.
func (r *run) learnAndScore(ctx context.Context, n, budget int) ([]Scored, int, error) {
	kLearn := int(math.Round(0.25 * float64(budget)))
	if kLearn < 2 {
		kLearn = 2
	}
	if kLearn > budget-2 {
		kLearn = budget - 2
	}
	if kLearn < 2 {
		return nil, 0, fmt.Errorf("shard: budget %d too small for an lss estimate", budget)
	}
	parts, err := r.cands(ctx, kLearn, TagLearn)
	if err != nil {
		return nil, 0, err
	}
	learnSel := MergeBottomK(parts, kLearn, n)
	y, err := r.label(ctx, learnSel)
	if err != nil {
		return nil, 0, err
	}
	x, err := r.features(ctx, learnSel)
	if err != nil {
		return nil, 0, err
	}
	clfSeed := live.Mix64(r.plan.Seed, TagTrain, uint64(len(learnSel)))

	scored := make([][]Scored, len(r.workers))
	err = r.scatter(ctx, func(slot int, w Worker) error {
		s, serr := w.ScoreAll(ctx, x, y, clfSeed)
		if serr != nil {
			return serr
		}
		scored[slot] = s
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	all := make([]Scored, 0, n)
	for slot, part := range scored {
		for _, s := range part {
			r.claim(slot, s.Key)
		}
		all = append(all, part...)
	}
	if len(all) != n {
		return nil, 0, fmt.Errorf("shard: scored %d of %d objects", len(all), n)
	}
	return all, len(learnSel), nil
}

// cutsOf computes the equal-count stratum boundaries over all scores —
// the same j*n/H rule as the catalog path, over the identical sorted
// score multiset.
func (r *run) cutsOf(all []Scored, n int) []float64 {
	H := r.plan.Strata
	if H < 2 {
		H = 4
	}
	sorted := make([]float64, len(all))
	for i, s := range all {
		sorted[i] = s.Score
	}
	sort.Float64s(sorted)
	cuts := make([]float64, 0, H-1)
	for j := 1; j < H; j++ {
		pos := j * n / H
		if pos > 0 {
			pos--
		}
		cuts = append(cuts, sorted[pos])
	}
	return cuts
}

// stratumOf places a score into its stratum.
func stratumOf(cuts []float64, score float64, H int) int {
	h := sort.SearchFloat64s(cuts, score)
	if h >= H {
		h = H - 1
	}
	return h
}

// sampleStrata partitions the scored population by the cuts, allocates
// the remaining budget proportionally, draws each stratum's hash
// bottom-k, and labels it in one batched round.
func (r *run) sampleStrata(ctx context.Context, all []Scored, n, budget int) ([]estimate.StratumSample, error) {
	H := r.plan.Strata
	if H < 2 {
		H = 4
	}
	kLearn := int(math.Round(0.25 * float64(budget)))
	if kLearn < 2 {
		kLearn = 2
	}
	if kLearn > budget-2 {
		kLearn = budget - 2
	}
	cuts := r.cutsOf(all, n)
	members := make([][]int64, H)
	sizes := make([]int, H)
	for _, s := range all {
		h := stratumOf(cuts, s.Score, H)
		members[h] = append(members[h], s.Key)
		sizes[h]++
	}
	alloc := estimate.ProportionalAllocation(sizes, budget-kLearn, 2)
	strata := make([]estimate.StratumSample, H)
	for h := 0; h < H; h++ {
		sel := BottomK(members[h], alloc[h], r.plan.Seed, TagSample)
		labels, err := r.label(ctx, sel)
		if err != nil {
			return nil, err
		}
		pos := 0
		for _, b := range labels {
			if b {
				pos++
			}
		}
		strata[h] = estimate.StratumSample{N: sizes[h], Sampled: len(sel), Positives: pos}
	}
	return strata, nil
}

// countAll scatters a full labeling pass and merges the shard tallies;
// groupTally (when non-nil) receives the merged per-group tallies.
func (r *run) countAll(ctx context.Context, groupTally map[string]*GroupCount) (core.Partial, map[string]*GroupCount, error) {
	parts := make([]core.Partial, len(r.workers))
	groups := make([][]GroupCount, len(r.workers))
	freshes := make([]int, len(r.workers))
	err := r.scatter(ctx, func(slot int, w Worker) error {
		p, gs, fresh, cerr := w.CountAll(ctx)
		if cerr != nil {
			return cerr
		}
		parts[slot], groups[slot], freshes[slot] = p, gs, fresh
		return nil
	})
	if err != nil {
		return core.Partial{}, nil, err
	}
	var merged core.Partial
	for slot := range parts {
		if verr := parts[slot].Validate(); verr != nil {
			return core.Partial{}, nil, verr
		}
		merged.Add(parts[slot])
		r.fresh += freshes[slot]
	}
	if groupTally == nil {
		groupTally = make(map[string]*GroupCount)
	}
	for _, gs := range groups {
		for _, g := range gs {
			t, ok := groupTally[g.Key]
			if !ok {
				t = &GroupCount{Key: g.Key, Parts: g.Parts}
				groupTally[g.Key] = t
			}
			t.N += g.N
			t.Pos += g.Pos
		}
	}
	return merged, groupTally, nil
}

// attemptGrouped runs the grouped protocol: one shared sample keyed by
// the global tags, per-group tallies, and a deterministic per-group
// top-up (under the group's own tag) for groups the shared sample
// underserves.
func (r *run) attemptGrouped(ctx context.Context, res *Result, n int, alpha float64) error {
	cens := r.mergeCensus()
	minG := r.plan.MinGroup
	if minG <= 0 {
		minG = DefaultMinGroup
	}

	type cell struct{ sampled, pos int }
	perGroup := make(map[string]map[int]*cell) // canonical -> stratum -> tally
	members := make(map[string][]int64)        // canonical -> member keys
	tally := func(g string, h int, positive bool) {
		cells, ok := perGroup[g]
		if !ok {
			cells = make(map[int]*cell)
			perGroup[g] = cells
		}
		c, ok := cells[h]
		if !ok {
			c = &cell{}
			cells[h] = c
		}
		c.sampled++
		if positive {
			c.pos++
		}
	}

	H := 1 // plain srs/oracle tallies live in stratum 0
	var stratumSizes map[string][]int
	switch r.plan.Method {
	case "oracle":
		_, groupTally, err := r.countAll(ctx, nil)
		if err != nil {
			return err
		}
		total := 0
		for _, c := range cens {
			g := groupTally[c.key]
			pos := 0
			if g != nil {
				pos = g.Pos
			}
			total += pos
			grp := Group{
				Key: c.key, Parts: c.parts, N: c.n, Sampled: c.n,
				Count: float64(pos), Proportion: safeDiv(float64(pos), c.n),
				CILo: float64(pos), CIHi: float64(pos), HasCI: true, Exact: true,
			}
			if r.plan.Exact {
				grp.TrueCount, grp.HasTrue = pos, true
			}
			res.Groups = append(res.Groups, grp)
		}
		res.Count, res.CILo, res.CIHi, res.HasCI = float64(total), float64(total), float64(total), true
		res.Exact = true
		if r.plan.Exact {
			res.TrueCount, res.HasTrue = total, true
		}
		return nil

	case "srs":
		budget := r.plan.BudgetOf(n)
		res.Budget = budget
		listed, err := r.listGroupKeys(ctx)
		if err != nil {
			return err
		}
		keys := make([]int64, len(listed))
		groupOf := make(map[int64]string, len(listed))
		for i, s := range listed {
			keys[i] = s.Key
			groupOf[s.Key] = s.Group
			members[s.Group] = append(members[s.Group], s.Key)
		}
		sel := BottomK(keys, budget, r.plan.Seed, TagSample)
		labels, err := r.label(ctx, sel)
		if err != nil {
			return err
		}
		for j, k := range sel {
			tally(groupOf[k], 0, labels[j])
		}

	case "lss":
		budget := r.plan.BudgetOf(n)
		res.Budget = budget
		scores, _, err := r.learnAndScore(ctx, n, budget)
		if err != nil {
			return err
		}
		H = r.plan.Strata
		if H < 2 {
			H = 4
		}
		cuts := r.cutsOf(scores, n)
		stratumSizes = make(map[string][]int)
		groupOf := make(map[int64]string, len(scores))
		stratumMembers := make([][]int64, H)
		sizes := make([]int, H)
		keyStratum := make(map[int64]int, len(scores))
		for _, s := range scores {
			h := stratumOf(cuts, s.Score, H)
			stratumMembers[h] = append(stratumMembers[h], s.Key)
			sizes[h]++
			keyStratum[s.Key] = h
			groupOf[s.Key] = s.Group
			members[s.Group] = append(members[s.Group], s.Key)
			gs, ok := stratumSizes[s.Group]
			if !ok {
				gs = make([]int, H)
				stratumSizes[s.Group] = gs
			}
			gs[h]++
		}
		kLearn := int(math.Round(0.25 * float64(budget)))
		if kLearn < 2 {
			kLearn = 2
		}
		if kLearn > budget-2 {
			kLearn = budget - 2
		}
		alloc := estimate.ProportionalAllocation(sizes, budget-kLearn, 2)
		for h := 0; h < H; h++ {
			sel := BottomK(stratumMembers[h], alloc[h], r.plan.Seed, TagSample)
			labels, err := r.label(ctx, sel)
			if err != nil {
				return err
			}
			for j, k := range sel {
				tally(groupOf[k], keyStratum[k], labels[j])
			}
		}
	}

	// Per-group estimates with a deterministic top-up for groups the
	// shared sample underserves: the top-up replaces the shared estimate
	// so the answer never depends on which path a group took historically.
	total, lo, hi := 0.0, 0.0, 0.0
	for _, c := range cens {
		sampled := 0
		for _, cl := range perGroup[c.key] {
			sampled += cl.sampled
		}
		want := minG
		if want > c.n {
			want = c.n
		}
		grp := Group{Key: c.key, Parts: c.parts, N: c.n}
		if sampled < want {
			// Top up under the group's own tag.
			target := minG
			if sampled > target {
				target = sampled
			}
			if target > c.n {
				target = c.n
			}
			gsel := BottomK(members[c.key], target, r.plan.Seed, GroupTag(c.key))
			labels, err := r.label(ctx, gsel)
			if err != nil {
				return err
			}
			pos := 0
			for _, b := range labels {
				if b {
					pos++
				}
			}
			var er estimate.Result
			if r.plan.Wilson {
				er = estimate.ProportionWilson(pos, len(gsel), c.n, alpha)
			} else {
				er = estimate.Proportion(pos, len(gsel), c.n, alpha)
			}
			grp.Sampled = len(gsel)
			grp.Count, grp.Proportion = er.Count, er.Proportion
			grp.CILo, grp.CIHi, grp.HasCI = er.CI.Lo, er.CI.Hi, true
			grp.Exact = len(gsel) == c.n
			if grp.Exact {
				grp.Count = float64(pos)
				grp.CILo, grp.CIHi = grp.Count, grp.Count
			}
		} else if r.plan.Method == "lss" {
			gs := stratumSizes[c.key]
			var cells []estimate.StratumSample
			for h := 0; h < H; h++ {
				if gs[h] == 0 {
					continue
				}
				cl := perGroup[c.key][h]
				s := estimate.StratumSample{N: gs[h]}
				if cl != nil {
					s.Sampled, s.Positives = cl.sampled, cl.pos
				}
				cells = append(cells, s)
			}
			er, serr := estimate.Stratified(cells, alpha)
			if serr != nil {
				return fmt.Errorf("shard: group %q: %v", c.key, serr)
			}
			grp.Sampled = sampled
			grp.Count, grp.Proportion = er.Count, er.Proportion
			grp.CILo, grp.CIHi, grp.HasCI = er.CI.Lo, er.CI.Hi, true
			grp.Exact = sampled == c.n
		} else {
			cl := perGroup[c.key][0]
			pos := 0
			if cl != nil {
				pos = cl.pos
			}
			var er estimate.Result
			if r.plan.Wilson {
				er = estimate.ProportionWilson(pos, sampled, c.n, alpha)
			} else {
				er = estimate.Proportion(pos, sampled, c.n, alpha)
			}
			grp.Sampled = sampled
			grp.Count, grp.Proportion = er.Count, er.Proportion
			grp.CILo, grp.CIHi, grp.HasCI = er.CI.Lo, er.CI.Hi, true
			grp.Exact = sampled == c.n
			if grp.Exact {
				grp.Count = float64(pos)
				grp.CILo, grp.CIHi = grp.Count, grp.Count
			}
		}
		total += grp.Count
		lo += grp.CILo
		hi += grp.CIHi
		res.Groups = append(res.Groups, grp)
	}
	res.Count, res.CILo, res.CIHi, res.HasCI = total, lo, hi, true

	if r.plan.Exact {
		_, groupTally, err := r.countAll(ctx, nil)
		if err != nil {
			return err
		}
		tc := 0
		for i := range res.Groups {
			pos := 0
			if g := groupTally[res.Groups[i].Key]; g != nil {
				pos = g.Pos
			}
			res.Groups[i].TrueCount, res.Groups[i].HasTrue = pos, true
			tc += pos
		}
		res.TrueCount, res.HasTrue = tc, true
	}
	return nil
}

// listGroupKeys gathers every key with its group from the survivors,
// claiming ownership.
func (r *run) listGroupKeys(ctx context.Context) ([]Scored, error) {
	parts := make([][]Scored, len(r.workers))
	err := r.scatter(ctx, func(slot int, w Worker) error {
		s, serr := w.GroupKeys(ctx)
		if serr != nil {
			return serr
		}
		parts[slot] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	var all []Scored
	for slot, p := range parts {
		for _, s := range p {
			r.claim(slot, s.Key)
		}
		all = append(all, p...)
	}
	return all, nil
}

// degrade scales a survivor-universe answer to the full population when
// shards were lost: the point estimate extrapolates by population ratio
// and the interval's upper bound absorbs the lost mass (every lost object
// could have been positive; the lower bound keeps the survivors'
// evidence). Group intervals widen by each group's own lost membership —
// the census ran before any loss, so the lost mass per group is known
// exactly. True counts cannot be known degraded, so they are dropped.
func (r *run) degrade(res *Result, fullN int, fullGroups []census) {
	res.Shards = len(r.workers) + len(r.lost)
	if r.lostN == 0 && len(r.lost) == 0 {
		return
	}
	survN := res.N
	res.N = fullN
	res.Degraded = true
	res.Lost = append([]int(nil), r.lost...)
	sort.Ints(res.Lost)
	res.Exact = false
	res.TrueCount, res.HasTrue = 0, false

	if survN > 0 {
		scale := float64(fullN) / float64(survN)
		res.Count *= scale
	} else {
		res.Count = 0
	}
	res.CIHi += float64(r.lostN)
	if res.CIHi > float64(fullN) {
		res.CIHi = float64(fullN)
	}
	res.Proportion = safeDiv(res.Count, fullN)

	if !r.plan.Grouped {
		return
	}
	// Re-key the survivor group results against the full census; groups
	// entirely on lost shards come back as pure-uncertainty rows.
	bySurv := make(map[string]Group, len(res.Groups))
	for _, g := range res.Groups {
		bySurv[g.Key] = g
	}
	out := make([]Group, 0, len(fullGroups))
	for _, c := range fullGroups {
		g, ok := bySurv[c.key]
		if !ok {
			g = Group{Key: c.key, Parts: c.parts}
		}
		lostG := c.n - g.N
		g.N = c.n
		if lostG > 0 {
			if g.Sampled > 0 {
				g.Count *= float64(c.n) / float64(c.n-lostG)
			}
			g.CIHi += float64(lostG)
			if g.CIHi > float64(c.n) {
				g.CIHi = float64(c.n)
			}
			g.HasCI = true
			g.Exact = false
		}
		g.Proportion = safeDiv(g.Count, c.n)
		g.TrueCount, g.HasTrue = 0, false
		out = append(out, g)
	}
	res.Groups = out
}

// LessGroupKey orders rendered group keys the way lsample presents them:
// element-wise, numerically when both parts parse as numbers, lexically
// otherwise, shorter keys first on a tie.
func LessGroupKey(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] == b[i] {
			continue
		}
		na, aok := strconv.ParseFloat(a[i], 64)
		nb, bok := strconv.ParseFloat(b[i], 64)
		if aok == nil && bok == nil {
			if na != nb {
				return na < nb
			}
		}
		return a[i] < b[i]
	}
	return len(a) < len(b)
}

func safeDiv(num float64, den int) float64 {
	if den == 0 {
		return 0
	}
	return num / float64(den)
}
