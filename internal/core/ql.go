package core

import (
	"context"
	"time"

	"repro/internal/learn"
	"repro/internal/quantify"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// QLCC is the Classify-and-Count baseline (§3.2): spend the whole budget on
// a labeled training sample, train a classifier, and count its positive
// predictions over the unlabeled objects. No confidence interval.
type QLCC struct {
	NewClassifier NewClassifierFunc
	Augment       bool
	AugmentFrac   float64
	Rounds        int
	PoolCap       int
}

// Name implements Method.
func (m *QLCC) Name() string { return "qlcc" }

// Estimate implements Method.
func (m *QLCC) Estimate(ctx context.Context, obj *ObjectSet, budget int, r *xrand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := checkBudget(obj, budget); err != nil {
		return nil, err
	}
	tp := &timedPred{p: obj.Pred}
	start := obj.Pred.Evals()
	newClf := m.NewClassifier
	if newClf == nil {
		newClf = DefaultForest
	}
	t0 := time.Now()
	clf, SL, labels, err := runLearnPhase(ctx, obj, tp, budget, learnOptions{
		newClf:      newClf,
		augment:     m.Augment,
		augmentFrac: m.AugmentFrac,
		rounds:      m.Rounds,
		poolCap:     m.PoolCap,
	}, r)
	if err != nil {
		return nil, err
	}
	learnDur := time.Since(t0)

	t1 := time.Now()
	restIdx, _ := scoreRest(obj, clf, SL)
	testX := make([][]float64, len(restIdx))
	for j, i := range restIdx {
		testX[j] = obj.Features[i]
	}
	res := quantify.ClassifyAndCount(clf, countPositives(labels), testX)
	return &Result{
		Method:   m.Name(),
		Estimate: res.Count,
		CI:       stats.Interval{},
		HasCI:    false,
		Evals:    obj.Pred.Evals() - start,
		Timing:   Timing{Learn: learnDur, Sample: time.Since(t1), Predicate: tp.dur},
	}, nil
}

// QLAC is the Adjusted Count baseline (§3.2): QLCC corrected by
// cross-validated true/false positive rates (eq. 2). No confidence
// interval; occasionally produces extreme estimates when t̂pr ≈ f̂pr.
type QLAC struct {
	NewClassifier NewClassifierFunc
	Folds         int // cross-validation folds; 0 means 5
	Augment       bool
	AugmentFrac   float64
	Rounds        int
	PoolCap       int
}

// Name implements Method.
func (m *QLAC) Name() string { return "qlac" }

func (m *QLAC) folds() int {
	if m.Folds < 2 {
		return 5
	}
	return m.Folds
}

// Estimate implements Method.
func (m *QLAC) Estimate(ctx context.Context, obj *ObjectSet, budget int, r *xrand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := checkBudget(obj, budget); err != nil {
		return nil, err
	}
	tp := &timedPred{p: obj.Pred}
	start := obj.Pred.Evals()
	newClf := m.NewClassifier
	if newClf == nil {
		newClf = DefaultForest
	}
	t0 := time.Now()
	clf, SL, labels, err := runLearnPhase(ctx, obj, tp, budget, learnOptions{
		newClf:      newClf,
		augment:     m.Augment,
		augmentFrac: m.AugmentFrac,
		rounds:      m.Rounds,
		poolCap:     m.PoolCap,
	}, r)
	if err != nil {
		return nil, err
	}
	learnDur := time.Since(t0)

	t1 := time.Now()
	restIdx, _ := scoreRest(obj, clf, SL)
	testX := make([][]float64, len(restIdx))
	for j, i := range restIdx {
		testX[j] = obj.Features[i]
	}
	trainX := make([][]float64, len(SL))
	for j, i := range SL {
		trainX[j] = obj.Features[i]
	}
	factory := func() learn.Classifier { return newClf(r.Uint64()) }
	res, err := quantify.AdjustedCount(clf, factory, trainX, labels, testX, m.folds(), r)
	if err != nil {
		return nil, err
	}
	return &Result{
		Method:   m.Name(),
		Estimate: res.Count,
		CI:       stats.Interval{},
		HasCI:    false,
		Evals:    obj.Pred.Evals() - start,
		Timing:   Timing{Learn: learnDur, Sample: time.Since(t1), Predicate: tp.dur},
	}, nil
}
