package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/predicate"
	"repro/internal/xrand"
)

// groupedInstance builds a synthetic grouped problem: N objects in K
// size-skewed groups, feature x, label x > cut with per-group cuts so group
// proportions differ.
func groupedInstance(N, K int, seed uint64) (*ObjectSet, []int, []int) {
	r := xrand.New(seed)
	features := make([][]float64, N)
	groupOf := make([]int, N)
	labels := make([]bool, N)
	truth := make([]int, K)
	for i := 0; i < N; i++ {
		x := r.Float64()
		// Skewed group sizes: group g gets ~2x the mass of group g+1.
		g := 0
		u := r.Float64()
		mass := 0.5
		for g < K-1 && u > mass {
			u -= mass
			mass /= 2
			g++
		}
		features[i] = []float64{x}
		groupOf[i] = g
		cut := 0.3 + 0.4*float64(g)/float64(K)
		labels[i] = x > cut
		if labels[i] {
			truth[g]++
		}
	}
	obj, err := NewObjectSet(features, predicate.NewLabels(labels))
	if err != nil {
		panic(err)
	}
	return obj, groupOf, truth
}

func groupSizes(groupOf []int, K int) []int {
	sizes := make([]int, K)
	for _, g := range groupOf {
		sizes[g]++
	}
	return sizes
}

func TestGroupedOracleExact(t *testing.T) {
	obj, groupOf, truth := groupedInstance(500, 4, 1)
	res, err := GroupedOracle{}.EstimateGroups(context.Background(), obj, groupOf, 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for g, gc := range res.Groups {
		if !gc.Exact || gc.Estimate != float64(truth[g]) {
			t.Fatalf("group %d: got %+v, want exact %d", g, gc, truth[g])
		}
		if gc.CI.Lo != gc.Estimate || gc.CI.Hi != gc.Estimate {
			t.Fatalf("group %d: degenerate CI expected, got %v", g, gc.CI)
		}
	}
	if res.Evals != int64(obj.N()) {
		t.Fatalf("oracle evals = %d, want %d", res.Evals, obj.N())
	}
}

func TestGroupedSRSFullBudgetIsExact(t *testing.T) {
	obj, groupOf, truth := groupedInstance(400, 3, 2)
	m := &GroupedSRS{}
	res, err := m.EstimateGroups(context.Background(), obj, groupOf, 3, obj.N(), xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for g, gc := range res.Groups {
		if !gc.Exact || gc.Estimate != float64(truth[g]) {
			t.Fatalf("group %d: got %+v, want exact %d", g, gc, truth[g])
		}
	}
	if res.Evals != int64(obj.N()) {
		t.Fatalf("evals = %d, want %d (memoized labels must not re-evaluate)", res.Evals, obj.N())
	}
}

func TestGroupedSRSSharesEvals(t *testing.T) {
	const N, K, budget = 4000, 6, 400
	obj, groupOf, _ := groupedInstance(N, K, 3)
	m := &GroupedSRS{}
	res, err := m.EstimateGroups(context.Background(), obj, groupOf, K, budget, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// The shared sample costs exactly budget evaluations; rare-group
	// top-ups add at most MinPerGroup per group on top.
	if res.Evals < int64(budget) || res.Evals > int64(budget+K*minPerGroupDefault) {
		t.Fatalf("evals = %d, want within [%d, %d]", res.Evals, budget, budget+K*minPerGroupDefault)
	}
	sizes := groupSizes(groupOf, K)
	for g, gc := range res.Groups {
		want := minPerGroupDefault
		if want > sizes[g] {
			want = sizes[g]
		}
		if gc.Sampled < want {
			t.Fatalf("group %d sampled %d < floor %d", g, gc.Sampled, want)
		}
		if gc.N != sizes[g] {
			t.Fatalf("group %d: N = %d, want %d", g, gc.N, sizes[g])
		}
	}
}

func TestGroupedSRSCoverage(t *testing.T) {
	// Across seeds, the 95% CI should cover the true per-group count most
	// of the time. This is a smoke-level calibration check, not a precise
	// coverage experiment.
	const N, K, budget, trials = 3000, 4, 600, 20
	obj, groupOf, truth := groupedInstance(N, K, 4)
	covered, total := 0, 0
	for trial := 0; trial < trials; trial++ {
		m := &GroupedSRS{}
		res, err := m.EstimateGroups(context.Background(), obj, groupOf, K, budget, xrand.New(uint64(100+trial)))
		if err != nil {
			t.Fatal(err)
		}
		for g, gc := range res.Groups {
			total++
			if gc.CI.Lo <= float64(truth[g]) && float64(truth[g]) <= gc.CI.Hi {
				covered++
			}
		}
	}
	if frac := float64(covered) / float64(total); frac < 0.80 {
		t.Fatalf("CI coverage %.2f < 0.80 (%d/%d)", frac, covered, total)
	}
}

func TestGroupedLSSSharesLearnPhase(t *testing.T) {
	const N, K, budget = 3000, 5, 300
	obj, groupOf, truth := groupedInstance(N, K, 5)
	m := &GroupedLSS{NewClassifier: ForestClassifier(1)}
	res, err := m.EstimateGroups(context.Background(), obj, groupOf, K, budget, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals < int64(budget) || res.Evals > int64(budget+K*minPerGroupDefault) {
		t.Fatalf("evals = %d, want within [%d, %d]", res.Evals, budget, budget+K*minPerGroupDefault)
	}
	totalTruth, totalEst := 0.0, 0.0
	for g, gc := range res.Groups {
		totalTruth += float64(truth[g])
		totalEst += gc.Estimate
		if !gc.HasCI {
			t.Fatalf("group %d: no CI", g)
		}
		if gc.Estimate < 0 || gc.Estimate > float64(gc.N) {
			t.Fatalf("group %d: estimate %v outside [0, %d]", g, gc.Estimate, gc.N)
		}
	}
	if rel := math.Abs(totalEst-totalTruth) / totalTruth; rel > 0.5 {
		t.Fatalf("total estimate %v vs truth %v (rel %.2f)", totalEst, totalTruth, rel)
	}
}

func TestGroupedLSSFullBudgetIsExact(t *testing.T) {
	obj, groupOf, truth := groupedInstance(400, 3, 6)
	m := &GroupedLSS{NewClassifier: ForestClassifier(1)}
	res, err := m.EstimateGroups(context.Background(), obj, groupOf, 3, obj.N(), xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for g, gc := range res.Groups {
		if !gc.Exact || gc.Estimate != float64(truth[g]) {
			t.Fatalf("group %d: got %+v, want exact %d", g, gc, truth[g])
		}
	}
	if res.Evals != int64(obj.N()) {
		t.Fatalf("evals = %d, want %d", res.Evals, obj.N())
	}
}

func TestGroupedDeterministic(t *testing.T) {
	obj, groupOf, _ := groupedInstance(2000, 4, 8)
	for _, m := range []GroupedMethod{
		&GroupedSRS{},
		&GroupedLSS{NewClassifier: ForestClassifier(1)},
	} {
		a, err := m.EstimateGroups(context.Background(), obj, groupOf, 4, 200, xrand.New(42))
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.EstimateGroups(context.Background(), obj, groupOf, 4, 200, xrand.New(42))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%#v", a.Groups) != fmt.Sprintf("%#v", b.Groups) {
			t.Fatalf("%s: same seed produced different group estimates", m.Name())
		}
	}
}

func TestGroupedRareGroupFallback(t *testing.T) {
	// One group with 5 members among 2000 objects: a 100-draw shared
	// sample will usually miss it, so the fallback must kick in.
	const N = 2000
	features := make([][]float64, N)
	groupOf := make([]int, N)
	labels := make([]bool, N)
	for i := 0; i < N; i++ {
		features[i] = []float64{float64(i % 7)}
		if i < 5 {
			groupOf[i] = 1
			labels[i] = true
		}
	}
	obj, err := NewObjectSet(features, predicate.NewLabels(labels))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []GroupedMethod{
		&GroupedSRS{},
		&GroupedLSS{NewClassifier: ForestClassifier(1)},
	} {
		res, err := m.EstimateGroups(context.Background(), obj, groupOf, 2, 100, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		rare := res.Groups[1]
		if !rare.Exact || rare.Estimate != 5 {
			t.Fatalf("%s: rare group got %+v, want exact count 5 via fallback", m.Name(), rare)
		}
	}
}

// TestGroupedLSSIntervalInvariants sweeps seeds over a small skewed
// instance — the regime where zero-variance point estimates can overshoot
// a group's feasible range — and pins the interval invariants: Lo ≤ Hi,
// Lo ≤ Estimate ≤ Hi, and everything within [0, N_g]. A regression guard
// for the inverted-CI bug where the feasibility clamp pushed Lo above Hi.
func TestGroupedLSSIntervalInvariants(t *testing.T) {
	const N, K, budget = 54, 2, 30
	obj, groupOf, _ := groupedInstance(N, K, 12)
	for seed := uint64(1); seed <= 60; seed++ {
		m := &GroupedLSS{NewClassifier: ForestClassifier(1)}
		res, err := m.EstimateGroups(context.Background(), obj, groupOf, K, budget, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for g, gc := range res.Groups {
			if gc.CI.Lo > gc.CI.Hi {
				t.Fatalf("seed %d group %d: inverted CI [%v, %v]", seed, g, gc.CI.Lo, gc.CI.Hi)
			}
			if gc.Estimate < gc.CI.Lo || gc.Estimate > gc.CI.Hi {
				t.Fatalf("seed %d group %d: estimate %v outside CI [%v, %v]", seed, g, gc.Estimate, gc.CI.Lo, gc.CI.Hi)
			}
			if gc.CI.Lo < 0 || gc.CI.Hi > float64(gc.N) {
				t.Fatalf("seed %d group %d: CI [%v, %v] outside [0, %d]", seed, g, gc.CI.Lo, gc.CI.Hi, gc.N)
			}
		}
	}
}

func TestGroupedCtxCancel(t *testing.T) {
	obj, groupOf, _ := groupedInstance(1000, 3, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []GroupedMethod{
		&GroupedSRS{},
		&GroupedLSS{NewClassifier: ForestClassifier(1)},
		GroupedOracle{},
	} {
		if _, err := m.EstimateGroups(ctx, obj, groupOf, 3, 100, xrand.New(1)); err == nil {
			t.Fatalf("%s: canceled ctx did not abort", m.Name())
		}
	}
}

func TestGroupedValidation(t *testing.T) {
	obj, groupOf, _ := groupedInstance(100, 2, 11)
	m := &GroupedSRS{}
	if _, err := m.EstimateGroups(context.Background(), obj, groupOf, 0, 10, xrand.New(1)); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := m.EstimateGroups(context.Background(), obj, groupOf[:50], 2, 10, xrand.New(1)); err == nil {
		t.Fatal("short groupOf accepted")
	}
	bad := append([]int(nil), groupOf...)
	bad[3] = 9
	if _, err := m.EstimateGroups(context.Background(), obj, bad, 2, 10, xrand.New(1)); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	if _, err := m.EstimateGroups(context.Background(), obj, groupOf, 2, obj.N()+1, xrand.New(1)); err == nil {
		t.Fatal("over-budget accepted")
	}
}
