package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/stratify"
	"repro/internal/xrand"
)

func TestGridStrataPartition(t *testing.T) {
	obj, _ := syntheticInstance(1000, 1.0, 40)
	pools, err := gridStrata(obj, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every object appears in exactly one pool.
	seen := make(map[int]bool)
	total := 0
	for _, p := range pools {
		for _, i := range p {
			if seen[i] {
				t.Fatalf("object %d in two strata", i)
			}
			seen[i] = true
		}
		total += len(p)
	}
	if total != obj.N() {
		t.Fatalf("strata cover %d of %d objects", total, obj.N())
	}
	// A 2×2 grid on continuous attributes yields 4 non-empty cells.
	if len(pools) != 4 {
		t.Fatalf("pools = %d, want 4", len(pools))
	}
}

func TestGridStrataOneAttribute(t *testing.T) {
	obj, _ := syntheticInstance(500, 1.0, 41)
	pools, err := gridStrata(obj, []int{0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pools) != 5 {
		t.Fatalf("1-d pools = %d, want 5", len(pools))
	}
}

func TestGridStrataBadAttribute(t *testing.T) {
	obj, _ := syntheticInstance(100, 1.0, 42)
	if _, err := gridStrata(obj, []int{7}, 4); err == nil {
		t.Fatal("out-of-range attribute should error")
	}
}

func TestSSNAllocatesMoreToMixedStrata(t *testing.T) {
	// Population where one grid quadrant is mixed and the rest are pure:
	// Neyman should outperform proportional in spread.
	r := xrand.New(43)
	n := 4000
	features := make([][]float64, n)
	labels := make([]bool, n)
	truth := 0
	for i := 0; i < n; i++ {
		x := r.Float64()
		y := r.Float64()
		features[i] = []float64{x, y}
		// Mixed only when x > 0.5 && y > 0.5; otherwise negative.
		if x > 0.5 && y > 0.5 {
			labels[i] = r.Bool(0.5)
		}
		if labels[i] {
			truth++
		}
	}
	obj, err := NewObjectSet(features, labelsPred(labels))
	if err != nil {
		t.Fatal(err)
	}
	const trials, budget = 80, 800
	collect := func(m Method) []float64 {
		rr := xrand.New(44)
		ests := make([]float64, trials)
		for i := range ests {
			res, err := m.Estimate(context.Background(), obj, budget, rr.Split())
			if err != nil {
				t.Fatal(err)
			}
			ests[i] = res.Estimate
		}
		return ests
	}
	ssn := collect(&SSN{Strata: 4})
	ssp := collect(&SSP{Strata: 4})
	// Neyman concentrates budget on the one mixed quadrant, so its spread
	// must come out below proportional allocation's.
	if stats.StdDev(ssn) >= stats.StdDev(ssp) {
		t.Fatalf("SSN sd %v should beat SSP sd %v on a concentrated predicate",
			stats.StdDev(ssn), stats.StdDev(ssp))
	}
	mean := stats.Mean(ssn)
	if math.Abs(mean-float64(truth)) > 0.2*float64(truth) {
		t.Fatalf("SSN mean %v vs truth %d", mean, truth)
	}
}

func TestLSSConstraintsOverride(t *testing.T) {
	obj, _ := syntheticInstance(2000, 1.2, 45)
	m := &LSS{
		NewClassifier: knnSpec,
		Constraints:   &stratify.Constraints{MinStratumSize: 50, MinPilotPerStratum: 3},
	}
	if _, err := m.Estimate(context.Background(), obj, 300, xrand.New(46)); err != nil {
		t.Fatal(err)
	}
	// Impossible constraints: the designer fails, and LSS falls back to the
	// equal-count layout instead of erroring.
	m.Constraints = &stratify.Constraints{MinStratumSize: 1900, MinPilotPerStratum: 3}
	if _, err := m.Estimate(context.Background(), obj, 300, xrand.New(47)); err != nil {
		t.Fatalf("infeasible constraints should fall back, got %v", err)
	}
}

func TestOrderByScoreDeterministicTies(t *testing.T) {
	restIdx := []int{5, 3, 9, 1}
	scores := []float64{0.5, 0.5, 0.1, 0.5}
	orderByScore(restIdx, scores)
	if restIdx[0] != 9 {
		t.Fatalf("lowest score should come first: %v", restIdx)
	}
	// Ties broken by object index ascending.
	if restIdx[1] != 1 || restIdx[2] != 3 || restIdx[3] != 5 {
		t.Fatalf("tie-break order wrong: %v", restIdx)
	}
}

func TestLearnPhaseErrors(t *testing.T) {
	obj, _ := syntheticInstance(100, 1.0, 48)
	r := xrand.New(49)
	if _, _, _, err := runLearnPhase(context.Background(), obj, obj.Pred, 10, learnOptions{}, r); err == nil {
		t.Fatal("nil classifier constructor should error")
	}
	if _, _, _, err := runLearnPhase(context.Background(), obj, obj.Pred, 1, learnOptions{newClf: knnSpec}, r); err == nil {
		t.Fatal("tiny learn budget should error")
	}
}

// labelsPred adapts a label vector without importing predicate in the test.
type labelsAdapter struct {
	labels []bool
	n      int64
}

func labelsPred(labels []bool) *labelsAdapter { return &labelsAdapter{labels: labels} }

func (l *labelsAdapter) Eval(i int) bool {
	l.n++
	return l.labels[i]
}
func (l *labelsAdapter) Evals() int64 { return l.n }
func (l *labelsAdapter) ResetCount()  { l.n = 0 }
