package core

import (
	"testing"

	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/xrand"
)

// benchObjects builds an N-object instance with a trained default forest,
// mirroring the state scoreRest sees inside every learned method.
func benchObjects(b *testing.B, n int) (*ObjectSet, learn.Classifier, []int) {
	b.Helper()
	r := xrand.New(9)
	features := make([][]float64, n)
	labels := make([]bool, n)
	for i := range features {
		x, y := r.NormFloat64(), r.NormFloat64()
		features[i] = []float64{x, y}
		labels[i] = x*x+y*y < 1.5
	}
	obj, err := NewObjectSet(features, predicate.NewLabels(labels))
	if err != nil {
		b.Fatal(err)
	}
	nLearn := 200
	SL := make([]int, nLearn)
	X := make([][]float64, nLearn)
	y := make([]bool, nLearn)
	for j := 0; j < nLearn; j++ {
		i := r.IntN(n)
		SL[j] = i
		X[j] = features[i]
		y[j] = labels[i]
	}
	clf := learn.NewRandomForest(100, 5)
	if err := clf.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	return obj, clf, SL
}

// BenchmarkScoreRest measures the shared learn-phase scoring pass (batch
// path for the forest, []bool membership bitmap).
func BenchmarkScoreRest(b *testing.B) {
	obj, clf, SL := benchObjects(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = scoreRest(obj, clf, SL)
	}
}

// BenchmarkOrderByScore measures the score-order sort on a scored rest set.
func BenchmarkOrderByScore(b *testing.B) {
	obj, clf, SL := benchObjects(b, 20000)
	restIdx, scores := scoreRest(obj, clf, SL)
	idxCopy := make([]int, len(restIdx))
	scoreCopy := make([]float64, len(scores))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(idxCopy, restIdx)
		copy(scoreCopy, scores)
		orderByScore(idxCopy, scoreCopy)
	}
}
