package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/estimate"
	"repro/internal/predicate"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/stratify"
	"repro/internal/xrand"
)

// GroupCount is the estimate for one group of a grouped estimation run.
type GroupCount struct {
	N         int            // objects in the group
	Estimate  float64        // estimated count of positives in the group
	CI        stats.Interval // count interval; meaningful only if HasCI
	HasCI     bool
	Sampled   int  // distinct labeled objects the group's estimate used
	Positives int  // positives among Sampled
	Exact     bool // every object of the group was labeled
}

// GroupedResult is the outcome of one grouped estimation run: one
// GroupCount per group, indexed by the caller's dense group ids.
type GroupedResult struct {
	Method string
	Groups []GroupCount
	Evals  int64 // expensive-predicate evaluations spent, shared across groups
	Timing Timing
}

// GroupedMethod estimates C(O_g, q) for every group of a partitioned object
// set within one shared labeling budget. groupOf assigns each object a
// dense group id in [0, K); the expensive predicate is evaluated at most
// once per object no matter how many estimates it feeds — that sharing,
// rather than a per-group re-run of the whole pipeline, is the point.
type GroupedMethod interface {
	Name() string
	// EstimateGroups runs one grouped estimation spending budget shared
	// evaluations of obj.Pred (plus a small bounded top-up for groups too
	// rare to be covered by the shared sample), drawing randomness from r.
	// Cancellation follows the Method contract: checked before every
	// predicate evaluation, consuming no randomness.
	EstimateGroups(ctx context.Context, obj *ObjectSet, groupOf []int, K int, budget int, r *xrand.Rand) (*GroupedResult, error)
}

// checkGroups validates a group assignment.
func checkGroups(obj *ObjectSet, groupOf []int, K int) error {
	if K < 1 {
		return fmt.Errorf("core: %d groups", K)
	}
	if len(groupOf) != obj.N() {
		return fmt.Errorf("core: %d group labels for %d objects", len(groupOf), obj.N())
	}
	for i, g := range groupOf {
		if g < 0 || g >= K {
			return fmt.Errorf("core: object %d has group %d outside [0, %d)", i, g, K)
		}
	}
	return nil
}

// groupMembers inverts groupOf into per-group member lists (ascending
// object index, so downstream draws are deterministic).
func groupMembers(groupOf []int, K int) [][]int {
	members := make([][]int, K)
	for i, g := range groupOf {
		members[g] = append(members[g], i)
	}
	return members
}

// minPerGroupDefault is the fallback threshold: a group whose share of the
// shared sample is smaller gets a dedicated per-group draw up to this size
// (capped by the group's population). Re-labeling is free — labels are
// memoized — so the top-up costs at most the uncovered remainder.
const minPerGroupDefault = 10

// groupSRSEstimate turns a per-group SRS tally into a GroupCount.
func groupSRSEstimate(pos, n, N int, alpha float64, wilson bool) GroupCount {
	if alpha <= 0 {
		alpha = 0.05
	}
	var res estimate.Result
	if wilson {
		res = estimate.ProportionWilson(pos, n, N, alpha)
	} else {
		res = estimate.Proportion(pos, n, N, alpha)
	}
	gc := GroupCount{
		N:         N,
		Estimate:  res.Count,
		CI:        res.CI,
		HasCI:     true,
		Sampled:   n,
		Positives: pos,
	}
	if n == N {
		gc.Exact = true
		gc.Estimate = float64(pos)
		gc.CI = stats.Interval{Lo: float64(pos), Hi: float64(pos)}
	}
	return gc
}

// topUpGroup draws a dedicated SRS of size target from one group's members
// and labels it through the memoized predicate, so already-labeled members
// cost nothing. The draw is unconditional over the whole group — a plain
// SRS of the group — which keeps the fallback estimate design-unbiased.
func topUpGroup(ctx context.Context, mp *predicate.Memo, members []int, target int, r *xrand.Rand) (pos int, err error) {
	draw := sample.SRSFrom(r, members, target)
	sort.Ints(draw)
	return labelCount(ctx, mp, draw)
}

// GroupedSRS estimates every group from one shared simple random sample:
// budget objects are drawn uniformly from the whole population and labeled
// once; each group's members within the shared sample form a simple random
// sample of that group, so the per-group proportion estimator applies
// directly. Groups whose shared-sample share falls below MinPerGroup fall
// back to a dedicated per-group draw (labels stay memoized, so only the
// group's uncovered members cost new evaluations).
type GroupedSRS struct {
	Alpha       float64 // 0 means 0.05
	Wilson      bool    // Wilson score intervals instead of Wald
	MinPerGroup int     // per-group sample floor; 0 means 10
}

// Name implements GroupedMethod.
func (m *GroupedSRS) Name() string { return "srs" }

func (m *GroupedSRS) minPerGroup() int {
	if m.MinPerGroup <= 0 {
		return minPerGroupDefault
	}
	return m.MinPerGroup
}

// EstimateGroups implements GroupedMethod.
func (m *GroupedSRS) EstimateGroups(ctx context.Context, obj *ObjectSet, groupOf []int, K int, budget int, r *xrand.Rand) (*GroupedResult, error) {
	ctx = orBackground(ctx)
	if err := checkBudget(obj, budget); err != nil {
		return nil, err
	}
	if err := checkGroups(obj, groupOf, K); err != nil {
		return nil, err
	}
	tp := &timedPred{p: obj.Pred}
	mp := predicate.NewMemo(tp, obj.N())
	start := obj.Pred.Evals()
	t0 := time.Now()

	// Shared phase: one SRS over the whole population, each draw labeled
	// once, tallied into its group.
	shared := sample.SRS(r, obj.N(), budget)
	sort.Ints(shared)
	sharedLabels, err := labelSet(ctx, mp, shared)
	if err != nil {
		return nil, err
	}
	inShared := make([]bool, obj.N())
	nG := make([]int, K)
	posG := make([]int, K)
	for j, i := range shared {
		inShared[i] = true
		nG[groupOf[i]]++
		if sharedLabels[j] {
			posG[groupOf[i]]++
		}
	}

	// Per-group estimates, with the rare-group fallback drawn in ascending
	// group order so the random stream is consumed deterministically.
	members := groupMembers(groupOf, K)
	groups := make([]GroupCount, K)
	for g := 0; g < K; g++ {
		Ng := len(members[g])
		target := m.minPerGroup()
		if target > Ng {
			target = Ng
		}
		n, pos := nG[g], posG[g]
		if n < target {
			// Top up from the group's not-yet-drawn members; the union of
			// the shared draw restricted to the group and a fresh SRS of the
			// remainder is itself an SRS of the group.
			pool := make([]int, 0, Ng-n)
			for _, i := range members[g] {
				if !inShared[i] {
					pool = append(pool, i)
				}
			}
			extraPos, err := topUpGroup(ctx, mp, pool, target-n, r)
			if err != nil {
				return nil, err
			}
			n, pos = target, pos+extraPos
		}
		groups[g] = groupSRSEstimate(pos, n, Ng, m.Alpha, m.Wilson)
	}
	return &GroupedResult{
		Method: m.Name(),
		Groups: groups,
		Evals:  obj.Pred.Evals() - start,
		Timing: Timing{Sample: time.Since(t0), Predicate: tp.dur},
	}, nil
}

// GroupedLSS shares one learning plan across all groups: it labels one
// learn sample, trains one classifier, scores every object once, lays
// score-ordered equal-count strata over the unlabeled rest, and draws one
// proportionally allocated stratified sample — then reads per-group counts
// out of the shared draw with the stratified domain (Horvitz–Thompson)
// estimator
//
//	Ĉ_g = C_g(SL) + Σ_h (N_h / n_h) · pos_{h,g}
//
// where C_g(SL) is the exact positive count among the group's learn-sample
// members and pos_{h,g} the group's positives among stratum h's n_h draws.
// The expensive predicate runs once per sampled object regardless of the
// number of groups; a naive per-group loop would re-learn (and re-label a
// pilot) K times. Groups with too few labeled members fall back to a
// dedicated per-group SRS, as in GroupedSRS.
type GroupedLSS struct {
	NewClassifier NewClassifierFunc
	Alpha         float64 // 0 means 0.05
	TrainFrac     float64 // budget fraction for the learn phase; 0 means 0.25
	Strata        int     // number of strata H; 0 means 4
	MinAlloc      int     // per-stratum second-stage minimum; 0 means 2
	MinPerGroup   int     // per-group labeled floor before fallback; 0 means 10
	Wilson        bool    // Wilson intervals for the per-group SRS fallback
	// (the shared stratified estimate keeps its t-interval regardless,
	// matching LSS; Wilson avoids the degenerate [0, 0] Wald interval when
	// a rare group's fallback sample has zero or all positives)
}

// Name implements GroupedMethod.
func (m *GroupedLSS) Name() string { return "lss" }

func (m *GroupedLSS) alpha() float64 {
	if m.Alpha <= 0 {
		return 0.05
	}
	return m.Alpha
}

func (m *GroupedLSS) trainFrac() float64 {
	if m.TrainFrac <= 0 || m.TrainFrac >= 1 {
		return 0.25
	}
	return m.TrainFrac
}

func (m *GroupedLSS) strata() int {
	if m.Strata < 2 {
		return 4
	}
	return m.Strata
}

func (m *GroupedLSS) minAlloc() int {
	if m.MinAlloc <= 0 {
		return 2
	}
	return m.MinAlloc
}

func (m *GroupedLSS) minPerGroup() int {
	if m.MinPerGroup <= 0 {
		return minPerGroupDefault
	}
	return m.MinPerGroup
}

// EstimateGroups implements GroupedMethod.
func (m *GroupedLSS) EstimateGroups(ctx context.Context, obj *ObjectSet, groupOf []int, K int, budget int, r *xrand.Rand) (*GroupedResult, error) {
	ctx = orBackground(ctx)
	if err := checkBudget(obj, budget); err != nil {
		return nil, err
	}
	if err := checkGroups(obj, groupOf, K); err != nil {
		return nil, err
	}
	newClf := m.NewClassifier
	if newClf == nil {
		newClf = DefaultForest
	}
	tp := &timedPred{p: obj.Pred}
	mp := predicate.NewMemo(tp, obj.N())
	start := obj.Pred.Evals()

	// Phase 1 (shared): learn and score once for all groups.
	t0 := time.Now()
	nLearn := int(math.Round(m.trainFrac() * float64(budget)))
	if nLearn < 2 {
		nLearn = 2
	}
	if nLearn > budget-2 {
		nLearn = budget - 2
	}
	if nLearn < 2 {
		return nil, fmt.Errorf("core: budget %d too small for grouped LSS", budget)
	}
	clf, SL, labels, err := runLearnPhase(ctx, obj, mp, nLearn, learnOptions{newClf: newClf}, r)
	if err != nil {
		return nil, err
	}
	slN := make([]int, K)
	slPos := make([]int, K)
	for j, i := range SL {
		slN[groupOf[i]]++
		if labels[j] {
			slPos[groupOf[i]]++
		}
	}
	restIdx, scores := scoreRest(obj, clf, SL)
	orderByScore(restIdx, scores)
	M := len(restIdx)
	learnDur := time.Since(t0)

	// Shared design: equal-count strata over the score order with a
	// proportional allocation. (The per-group targets are unknown a priori,
	// so the optimal single-count designers do not apply; equal-count +
	// proportional is the layout that is simultaneously reasonable for
	// every group.)
	t1 := time.Now()
	nII := budget - len(SL)
	if nII > M {
		nII = M
	}
	H := m.strata()
	if H > M && M > 0 {
		H = M
	}
	var cuts []int
	var alloc, sizes []int
	if M > 0 {
		cuts = stratify.EqualCount(M, H)
		sizes = make([]int, H)
		for h := 0; h < H; h++ {
			sizes[h] = cuts[h+1] - cuts[h]
		}
		alloc = estimate.ProportionalAllocation(sizes, nII, m.minAlloc())
	}
	designDur := time.Since(t1)

	// Phase 2 (shared): one stratified draw, each draw labeled once and
	// tallied into its (stratum, group) cell.
	t2 := time.Now()
	posHG := make([][]int, len(sizes))
	nH := make([]int, len(sizes))
	restSampled := make([]int, K)
	if M > 0 {
		pools := make([][]int, H)
		for h := 0; h < H; h++ {
			pools[h] = restIdx[cuts[h]:cuts[h+1]]
		}
		draws, err := sample.Stratified(r, pools, alloc)
		if err != nil {
			return nil, err
		}
		for h, dset := range draws {
			posHG[h] = make([]int, K)
			nH[h] = len(dset)
			labels, err := labelSet(ctx, mp, dset)
			if err != nil {
				return nil, err
			}
			for j, i := range dset {
				restSampled[groupOf[i]]++
				if labels[j] {
					posHG[h][groupOf[i]]++
				}
			}
		}
	}

	// Per-group domain estimates over the shared draw.
	members := groupMembers(groupOf, K)
	groups := make([]GroupCount, K)
	dfTotal := 0
	for h := range nH {
		dfTotal += nH[h]
	}
	df := dfTotal - len(nH)
	if df < 1 {
		df = 1
	}
	for g := 0; g < K; g++ {
		Ng := len(members[g])
		est := float64(slPos[g])
		varhat := 0.0
		pos := slPos[g]
		for h := range nH {
			if nH[h] == 0 {
				continue
			}
			Nh, nh := float64(sizes[h]), float64(nH[h])
			est += Nh / nh * float64(posHG[h][g])
			pos += posHG[h][g]
			s2 := stats.BinaryVariance(posHG[h][g], nH[h])
			varhat += Nh * Nh * (1/nh - 1/Nh) * s2
		}
		sampled := slN[g] + restSampled[g]
		gc := GroupCount{
			N:         Ng,
			Estimate:  est,
			HasCI:     true,
			Sampled:   sampled,
			Positives: pos,
		}
		gc.CI = stats.TInterval(est, math.Sqrt(varhat), df, m.alpha())
		// The learn-sample positives are certain, and the unlabeled part of
		// the group bounds what remains; clamping both ends into [lo, hi]
		// keeps Lo ≤ Hi even when a zero-variance point estimate overshoots
		// the feasible range (the clamp is monotone).
		lo, hi := float64(slPos[g]), float64(slPos[g]+Ng-slN[g])
		gc.CI.Lo = math.Min(math.Max(gc.CI.Lo, lo), hi)
		gc.CI.Hi = math.Min(math.Max(gc.CI.Hi, lo), hi)
		gc.Estimate = math.Min(math.Max(gc.Estimate, lo), hi)
		if sampled == Ng {
			gc.Exact = true
			gc.Estimate = float64(pos)
			gc.CI = stats.Interval{Lo: float64(pos), Hi: float64(pos)}
		}
		groups[g] = gc
	}

	// Fallback to a dedicated per-group SRS, in ascending group order for
	// determinism, for groups the shared plan serves badly: ones it barely
	// touched, and ones whose every (stratum, group) cell was pure — there
	// the stratified variance estimate collapses to zero and the t-interval
	// degenerates to a point, which is not a credible interval for a group
	// that was only sampled. Labels stay memoized, so the fallback costs at
	// most the group's not-yet-labeled share of the fresh draw.
	for g := 0; g < K; g++ {
		Ng := len(members[g])
		target := m.minPerGroup()
		if target > Ng {
			target = Ng
		}
		degenerate := !groups[g].Exact && groups[g].CI.Width() <= 0
		if groups[g].Sampled >= target && !degenerate {
			continue
		}
		// Match the shared plan's coverage of the group so the fallback
		// never throws away sample size; re-drawn objects are mostly
		// already labeled and cost nothing.
		if groups[g].Sampled > target {
			target = groups[g].Sampled
		}
		fpos, err := topUpGroup(ctx, mp, members[g], target, r)
		if err != nil {
			return nil, err
		}
		groups[g] = groupSRSEstimate(fpos, target, Ng, m.alpha(), m.Wilson)
	}
	return &GroupedResult{
		Method: m.Name(),
		Groups: groups,
		Evals:  obj.Pred.Evals() - start,
		Timing: Timing{Learn: learnDur, Design: designDur, Sample: time.Since(t2), Predicate: tp.dur},
	}, nil
}

// GroupedOracle evaluates the predicate on every object and reports exact
// per-group counts — the slow path, for calibration and tests.
type GroupedOracle struct{}

// Name implements GroupedMethod.
func (GroupedOracle) Name() string { return "oracle" }

// EstimateGroups implements GroupedMethod.
func (GroupedOracle) EstimateGroups(ctx context.Context, obj *ObjectSet, groupOf []int, K int, _ int, _ *xrand.Rand) (*GroupedResult, error) {
	ctx = orBackground(ctx)
	if err := checkGroups(obj, groupOf, K); err != nil {
		return nil, err
	}
	tp := &timedPred{p: obj.Pred}
	start := obj.Pred.Evals()
	t0 := time.Now()
	groups := make([]GroupCount, K)
	labels, err := labelSet(ctx, tp, predicate.AllIndices(obj.N()))
	if err != nil {
		return nil, err
	}
	for i := 0; i < obj.N(); i++ {
		g := groupOf[i]
		groups[g].N++
		groups[g].Sampled++
		if labels[i] {
			groups[g].Positives++
		}
	}
	for g := range groups {
		c := float64(groups[g].Positives)
		groups[g].Estimate = c
		groups[g].CI = stats.Interval{Lo: c, Hi: c}
		groups[g].HasCI = true
		groups[g].Exact = true
	}
	return &GroupedResult{
		Method: "oracle",
		Groups: groups,
		Evals:  obj.Pred.Evals() - start,
		Timing: Timing{Sample: time.Since(t0), Predicate: tp.dur},
	}, nil
}
