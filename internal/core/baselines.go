package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/estimate"
	"repro/internal/sample"
	"repro/internal/stratify"
	"repro/internal/xrand"
)

// SRS is simple random sampling (§3.1): draw the whole budget uniformly
// without replacement and estimate the proportion.
type SRS struct {
	Alpha  float64 // confidence level; 0 means 0.05
	Wilson bool    // use the Wilson interval (recommended at extreme selectivities)
}

// Name implements Method.
func (s *SRS) Name() string { return "srs" }

func (s *SRS) alpha() float64 {
	if s.Alpha <= 0 {
		return 0.05
	}
	return s.Alpha
}

// Estimate implements Method.
func (s *SRS) Estimate(ctx context.Context, obj *ObjectSet, budget int, r *xrand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := checkBudget(obj, budget); err != nil {
		return nil, err
	}
	tp := &timedPred{p: obj.Pred}
	start := obj.Pred.Evals()
	t0 := time.Now()
	idx := sample.SRS(r, obj.N(), budget)
	pos, err := labelCount(ctx, tp, idx)
	if err != nil {
		return nil, err
	}
	var res estimate.Result
	if s.Wilson {
		res = estimate.ProportionWilson(pos, budget, obj.N(), s.alpha())
	} else {
		res = estimate.Proportion(pos, budget, obj.N(), s.alpha())
	}
	return &Result{
		Method:   s.Name(),
		Estimate: res.Count,
		CI:       res.CI,
		HasCI:    true,
		Evals:    obj.Pred.Evals() - start,
		Timing:   Timing{Sample: time.Since(t0), Predicate: tp.dur},
	}, nil
}

// gridStrata partitions objects into a k×k grid over two surrogate
// attributes (or a 1-d split if one attribute is given), the SSP/SSN
// stratification of §3.1. Empty cells are dropped.
func gridStrata(obj *ObjectSet, attrIdx []int, strata int) ([][]int, error) {
	if len(attrIdx) == 0 {
		attrIdx = []int{0, 1}
	}
	d := len(obj.Features[0])
	for _, a := range attrIdx {
		if a < 0 || a >= d {
			return nil, fmt.Errorf("core: surrogate attribute %d out of range (d=%d)", a, d)
		}
	}
	if len(attrIdx) > 2 {
		attrIdx = attrIdx[:2]
	}
	if strata < 1 {
		strata = 4
	}
	var perDim int
	if len(attrIdx) == 1 {
		perDim = strata
	} else {
		perDim = int(math.Round(math.Sqrt(float64(strata))))
		if perDim < 1 {
			perDim = 1
		}
	}
	// Quantile boundaries per attribute.
	bounds := make([][]float64, len(attrIdx))
	for j, a := range attrIdx {
		vals := make([]float64, obj.N())
		for i, f := range obj.Features {
			vals[i] = f[a]
		}
		bounds[j] = stratify.GridCuts(vals, perDim)
	}
	cells := make(map[int][]int)
	for i, f := range obj.Features {
		cell := 0
		for j, a := range attrIdx {
			cell = cell*perDim + stratify.GridAssign(f[a], bounds[j])
		}
		cells[cell] = append(cells[cell], i)
	}
	pools := make([][]int, 0, len(cells))
	for cell := 0; cell < perDim*perDim+perDim; cell++ {
		if p, ok := cells[cell]; ok {
			pools = append(pools, p)
		}
	}
	return pools, nil
}

// SSP is stratified sampling with proportional allocation over an
// attribute-grid stratification (§3.1).
type SSP struct {
	Alpha    float64
	Strata   int   // total strata (grid of ⌈√Strata⌉ per dimension); 0 means 4
	AttrIdx  []int // surrogate attribute indices; nil means {0, 1}
	MinAlloc int   // per-stratum minimum allocation; 0 means 1
}

// Name implements Method.
func (s *SSP) Name() string { return "ssp" }

func (s *SSP) alpha() float64 {
	if s.Alpha <= 0 {
		return 0.05
	}
	return s.Alpha
}

func (s *SSP) minAlloc() int {
	if s.MinAlloc <= 0 {
		return 1
	}
	return s.MinAlloc
}

// Estimate implements Method.
func (s *SSP) Estimate(ctx context.Context, obj *ObjectSet, budget int, r *xrand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := checkBudget(obj, budget); err != nil {
		return nil, err
	}
	tp := &timedPred{p: obj.Pred}
	start := obj.Pred.Evals()
	t0 := time.Now()
	pools, err := gridStrata(obj, s.AttrIdx, s.Strata)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(pools))
	for h, p := range pools {
		sizes[h] = len(p)
	}
	alloc := estimate.ProportionalAllocation(sizes, budget, s.minAlloc())
	design := time.Since(t0)

	t1 := time.Now()
	draws, err := sample.Stratified(r, pools, alloc)
	if err != nil {
		return nil, err
	}
	strata := make([]estimate.StratumSample, len(pools))
	for h, dr := range draws {
		pos, err := labelCount(ctx, tp, dr)
		if err != nil {
			return nil, err
		}
		strata[h] = estimate.StratumSample{N: sizes[h], Sampled: len(dr), Positives: pos}
	}
	res, err := estimate.Stratified(strata, s.alpha())
	if err != nil {
		return nil, err
	}
	return &Result{
		Method:   s.Name(),
		Estimate: res.Count,
		CI:       res.CI,
		HasCI:    true,
		Evals:    obj.Pred.Evals() - start,
		Timing:   Timing{Design: design, Sample: time.Since(t1), Predicate: tp.dur},
	}, nil
}

// SSN is two-stage stratified sampling with Neyman allocation (§3.1): a
// pilot estimates per-stratum deviations, then the remaining budget is
// allocated n_h ∝ N_h S_h.
type SSN struct {
	Alpha     float64
	Strata    int
	AttrIdx   []int
	PilotFrac float64 // fraction of budget spent on the pilot; 0 means 0.3
	MinAlloc  int
}

// Name implements Method.
func (s *SSN) Name() string { return "ssn" }

func (s *SSN) alpha() float64 {
	if s.Alpha <= 0 {
		return 0.05
	}
	return s.Alpha
}

func (s *SSN) pilotFrac() float64 {
	if s.PilotFrac <= 0 || s.PilotFrac >= 1 {
		return 0.3
	}
	return s.PilotFrac
}

func (s *SSN) minAlloc() int {
	if s.MinAlloc <= 0 {
		return 5
	}
	return s.MinAlloc
}

// Estimate implements Method.
func (s *SSN) Estimate(ctx context.Context, obj *ObjectSet, budget int, r *xrand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := checkBudget(obj, budget); err != nil {
		return nil, err
	}
	tp := &timedPred{p: obj.Pred}
	start := obj.Pred.Evals()
	t0 := time.Now()
	pools, err := gridStrata(obj, s.AttrIdx, s.Strata)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(pools))
	poolOf := make(map[int]int) // object → stratum
	for h, p := range pools {
		sizes[h] = len(p)
		for _, i := range p {
			poolOf[i] = h
		}
	}

	// Stage 1: pilot to estimate S_h.
	nPilot := int(math.Round(s.pilotFrac() * float64(budget)))
	if nPilot < len(pools) {
		nPilot = minInt(len(pools), budget/2)
	}
	if nPilot >= budget {
		nPilot = budget / 2
	}
	pilotIdx := sample.SRS(r, obj.N(), nPilot)
	pilotLabels, err := labelSet(ctx, tp, pilotIdx)
	if err != nil {
		return nil, err
	}
	pilotPos := make([]int, len(pools))
	pilotCnt := make([]int, len(pools))
	pilotSet := make(map[int]bool, nPilot)
	for j, i := range pilotIdx {
		pilotSet[i] = true
		h := poolOf[i]
		pilotCnt[h]++
		if pilotLabels[j] {
			pilotPos[h]++
		}
	}
	// Laplace-smoothed deviations: a pure pilot sample must not zero out a
	// stratum's allocation (footnote 1 of §3.1).
	Sh := make([]float64, len(pools))
	for h := range pools {
		Sh[h] = stratify.SmoothedStdDev(pilotCnt[h], pilotPos[h])
	}
	// Stage 2 pools exclude pilot objects.
	rest := make([][]int, len(pools))
	restSizes := make([]int, len(pools))
	for h, p := range pools {
		for _, i := range p {
			if !pilotSet[i] {
				rest[h] = append(rest[h], i)
			}
		}
		restSizes[h] = len(rest[h])
	}
	alloc := estimate.NeymanAllocation(restSizes, Sh, budget-nPilot, s.minAlloc())
	design := time.Since(t0)

	t1 := time.Now()
	draws, err := sample.Stratified(r, rest, alloc)
	if err != nil {
		return nil, err
	}
	strata := make([]estimate.StratumSample, len(pools))
	for h, dr := range draws {
		pos, err := labelCount(ctx, tp, dr)
		if err != nil {
			return nil, err
		}
		strata[h] = estimate.StratumSample{N: sizes[h], Sampled: len(dr), Positives: pos}
	}
	res, err := estimate.Stratified(strata, s.alpha())
	if err != nil {
		return nil, err
	}
	return &Result{
		Method:   s.Name(),
		Estimate: res.Count,
		CI:       res.CI,
		HasCI:    true,
		Evals:    obj.Pred.Evals() - start,
		Timing:   Timing{Design: design, Sample: time.Since(t1), Predicate: tp.dur},
	}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
