// Package core implements the paper's estimation methods behind a single
// Method interface: the sampling baselines SRS, SSP, and SSN (§3.1), the
// quantification-learning baselines QLCC and QLAC (§3.2), and the paper's
// contributions — Learned Weighted Sampling (§4.1) and Learned Stratified
// Sampling (§4.2).
//
// Every method spends a labeling budget: a maximum number of evaluations of
// the expensive predicate q. Sampling-based methods return estimates with
// confidence intervals; quantification methods return point estimates only,
// which is exactly the trade the paper studies.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// ObjectSet is one instance of the §2 problem: N objects enumerable by
// index, a feature vector per object (the attributes referenced by q, per
// the paper's feature-selection heuristic), and the expensive predicate.
type ObjectSet struct {
	Features [][]float64
	Pred     predicate.Predicate
}

// NewObjectSet validates and bundles a problem instance.
func NewObjectSet(features [][]float64, pred predicate.Predicate) (*ObjectSet, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("core: empty object set")
	}
	if pred == nil {
		return nil, fmt.Errorf("core: nil predicate")
	}
	d := len(features[0])
	for i, f := range features {
		if len(f) != d {
			return nil, fmt.Errorf("core: object %d has %d features, want %d", i, len(f), d)
		}
	}
	return &ObjectSet{Features: features, Pred: pred}, nil
}

// N returns the number of objects.
func (o *ObjectSet) N() int { return len(o.Features) }

// Timing breaks an estimation run into the paper's Figure 3 phases.
// Overhead is everything that is not predicate evaluation.
type Timing struct {
	Learn     time.Duration // P1 learning: sampling, labeling, training, scoring
	Design    time.Duration // P1 sample design: variance estimates + strata layout
	Sample    time.Duration // P2: sampling, iteration, estimation
	Predicate time.Duration // total time inside q (across all phases)
}

// Total returns the wall time of all phases.
func (t Timing) Total() time.Duration { return t.Learn + t.Design + t.Sample }

// Overhead returns non-labeling time: Total − Predicate.
func (t Timing) Overhead() time.Duration {
	ov := t.Total() - t.Predicate
	if ov < 0 {
		return 0
	}
	return ov
}

// Result is the outcome of one estimation run.
type Result struct {
	Method   string
	Estimate float64        // estimated count C(O, q)
	CI       stats.Interval // count interval; meaningful only if HasCI
	HasCI    bool
	Evals    int64 // predicate evaluations spent
	Timing   Timing
}

// Method estimates C(O, q) within a labeling budget.
type Method interface {
	Name() string
	// Estimate runs one estimation spending at most budget evaluations of
	// obj.Pred, drawing randomness from r. Cancellation of ctx is observed
	// cooperatively at labeling-loop granularity: an in-flight run returns a
	// wrapped ctx.Err() before its next predicate evaluation instead of
	// running to completion. A nil ctx means context.Background(). The ctx
	// checks consume no randomness, so for an uncanceled ctx the estimate is
	// byte-identical at any parallelism to what a ctx-free run produced.
	Estimate(ctx context.Context, obj *ObjectSet, budget int, r *xrand.Rand) (*Result, error)
}

// NewClassifierFunc builds a fresh classifier for a given seed; methods
// derive per-run seeds from their *xrand.Rand so that repeated trials are
// independent yet reproducible.
type NewClassifierFunc func(seed uint64) learn.Classifier

// ForestClassifier returns a constructor for the paper's default
// classifier — a random forest with 100 trees — with the given internal
// parallelism (0 = all cores, 1 = sequential). Callers that already
// parallelize at an outer level (e.g. concurrent experiment trials) should
// pass 1 so nested pools don't oversubscribe the machine.
func ForestClassifier(parallelism int) NewClassifierFunc {
	return func(seed uint64) learn.Classifier {
		f := learn.NewRandomForest(100, seed)
		f.Parallelism = parallelism
		return f
	}
}

// DefaultForest is the paper's default classifier: a random forest with 100
// trees, training and scoring on all cores.
func DefaultForest(seed uint64) learn.Classifier { return ForestClassifier(0)(seed) }

// timedPred wraps a predicate, accumulating the wall time spent inside q so
// Timing can separate labeling cost from overhead.
type timedPred struct {
	p   predicate.Predicate
	dur time.Duration
}

func (tp *timedPred) Eval(i int) bool {
	t0 := time.Now()
	v := tp.p.Eval(i)
	tp.dur += time.Since(t0)
	return v
}

func (tp *timedPred) Evals() int64 { return tp.p.Evals() }
func (tp *timedPred) ResetCount()  { tp.p.ResetCount() }

// AsBatch exposes the underlying predicate's batch path, timing each whole
// batch call (a batch is pure labeling work). The duration accumulates on
// the wrapper's single owning goroutine; only the batch's internals may be
// parallel.
func (tp *timedPred) AsBatch() (predicate.BatchPredicate, bool) {
	bp, ok := predicate.AsBatch(tp.p)
	if !ok {
		return nil, false
	}
	return &timedBatch{tp: tp, bp: bp}, true
}

type timedBatch struct {
	tp *timedPred
	bp predicate.BatchPredicate
}

func (tb *timedBatch) Eval(i int) bool { return tb.tp.Eval(i) }
func (tb *timedBatch) Evals() int64    { return tb.tp.Evals() }
func (tb *timedBatch) ResetCount()     { tb.tp.ResetCount() }

func (tb *timedBatch) EvalBatch(idxs []int, out []bool) {
	t0 := time.Now()
	tb.bp.EvalBatch(idxs, out)
	tb.tp.dur += time.Since(t0)
}

// labelSet labels a pre-chosen sample set through pred and returns the
// label vector. When the predicate's chain supports native batched
// evaluation the set is labeled in bounded (possibly parallel) batch
// chunks, with the cooperative cancellation check between chunks;
// otherwise it falls back to the sequential loop with the check before
// every evaluation. Sample sets are chosen before labeling and labels are
// pure functions of the object index, so both paths produce byte-identical
// results for a fixed seed — batching (and its internal parallelism) is a
// pure throughput knob. Cancellation granularity is the one observable
// difference: the batch path checks ctx per chunk rather than per
// evaluation.
func labelSet(ctx context.Context, pred predicate.Predicate, idxs []int) ([]bool, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	out := make([]bool, len(idxs))
	if bp, ok := predicate.AsBatch(pred); ok {
		if err := predicate.EvalBatchChunked(bp, idxs, out, func() error { return ctxErr(ctx) }); err != nil {
			return nil, err
		}
		return out, nil
	}
	for j, i := range idxs {
		if j > 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		out[j] = pred.Eval(i)
	}
	return out, nil
}

// labelCount labels a pre-chosen sample set and returns its positive count.
func labelCount(ctx context.Context, pred predicate.Predicate, idxs []int) (int, error) {
	labels, err := labelSet(ctx, pred, idxs)
	if err != nil {
		return 0, err
	}
	return countPositives(labels), nil
}

// orBackground normalizes a nil ctx so methods can check it unconditionally.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// ctxErr reports a cancellation as a wrapped, method-attributable error. It
// is the cooperative cancellation point every labeling loop calls before
// spending the next predicate evaluation.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: estimation canceled: %w", err)
	}
	return nil
}

// checkBudget validates common preconditions.
func checkBudget(obj *ObjectSet, budget int) error {
	if budget < 1 {
		return fmt.Errorf("core: budget %d < 1", budget)
	}
	if budget > obj.N() {
		return fmt.Errorf("core: budget %d exceeds population %d", budget, obj.N())
	}
	return nil
}

// countPositives tallies true labels.
func countPositives(labels []bool) int {
	c := 0
	for _, b := range labels {
		if b {
			c++
		}
	}
	return c
}

// Oracle evaluates q on every object — the exact, expensive path. It
// ignores the budget and is used for ground truth in tests and experiment
// calibration.
type Oracle struct{}

// Name implements Method.
func (Oracle) Name() string { return "oracle" }

// Estimate evaluates the predicate exhaustively, through the batch path
// when the predicate has one.
func (Oracle) Estimate(ctx context.Context, obj *ObjectSet, _ int, _ *xrand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	tp := &timedPred{p: obj.Pred}
	start := obj.Pred.Evals()
	t0 := time.Now()
	count, err := labelCount(ctx, tp, predicate.AllIndices(obj.N()))
	if err != nil {
		return nil, err
	}
	c := float64(count)
	return &Result{
		Method:   "oracle",
		Estimate: c,
		CI:       stats.Interval{Lo: c, Hi: c},
		HasCI:    true,
		Evals:    obj.Pred.Evals() - start,
		Timing:   Timing{Sample: time.Since(t0), Predicate: tp.dur},
	}, nil
}
