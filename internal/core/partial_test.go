package core

import "testing"

func TestPartialAddAndMerge(t *testing.T) {
	a := Partial{N: 10, Sampled: 4, Positives: 2}
	a.Add(Partial{N: 5, Sampled: 1, Positives: 1})
	if a != (Partial{N: 15, Sampled: 5, Positives: 3}) {
		t.Fatalf("Add = %+v", a)
	}

	merged := MergePartials([][]Partial{
		{{N: 10, Sampled: 2, Positives: 1}, {N: 20, Sampled: 5, Positives: 0}},
		{{N: 3, Sampled: 3, Positives: 3}}, // short vector: cell 1 missing
		nil,
		{{N: 1, Sampled: 0, Positives: 0}, {N: 4, Sampled: 1, Positives: 1}, {N: 7, Sampled: 2, Positives: 2}},
	})
	want := []Partial{
		{N: 14, Sampled: 5, Positives: 4},
		{N: 24, Sampled: 6, Positives: 1},
		{N: 7, Sampled: 2, Positives: 2},
	}
	if len(merged) != len(want) {
		t.Fatalf("merged %d cells, want %d", len(merged), len(want))
	}
	for i := range want {
		if merged[i] != want[i] {
			t.Errorf("cell %d = %+v, want %+v", i, merged[i], want[i])
		}
	}

	if got := MergePartials(nil); len(got) != 0 {
		t.Fatalf("MergePartials(nil) = %v", got)
	}
}

func TestPartialStrataSamples(t *testing.T) {
	cells := []Partial{{N: 10, Sampled: 4, Positives: 2}, {N: 6, Sampled: 6, Positives: 0}}
	ss := StrataSamples(cells)
	if len(ss) != 2 {
		t.Fatalf("got %d strata", len(ss))
	}
	for i, c := range cells {
		if ss[i].N != c.N || ss[i].Sampled != c.Sampled || ss[i].Positives != c.Positives {
			t.Errorf("stratum %d = %+v, want %+v", i, ss[i], c)
		}
	}
}

func TestPartialValidate(t *testing.T) {
	ok := []Partial{{}, {N: 5, Sampled: 5, Positives: 5}, {N: 9, Sampled: 3, Positives: 0}}
	for _, p := range ok {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", p, err)
		}
	}
	bad := []Partial{
		{N: 2, Sampled: 3},
		{N: 5, Sampled: 2, Positives: 3},
		{N: -1},
		{N: 1, Sampled: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v: expected validation error", p)
		}
	}
}
