package core

import (
	"context"
	"testing"

	"repro/internal/learn"
	"repro/internal/xrand"
)

func TestLWSEarlyStopSavesBudget(t *testing.T) {
	obj, truth := syntheticInstance(4000, 1.2, 60)
	// An oracle classifier makes the Des Raj running estimate converge
	// almost immediately, so a loose stop width should end phase 2 well
	// before the budget is exhausted.
	m := &LWS{
		NewClassifier: func(uint64) learn.Classifier { return &circleOracle{r2: 1.2 * 1.2} },
		TrainFrac:     0.1,
		StopRelWidth:  0.05,
	}
	res, err := m.Estimate(context.Background(), obj, 800, xrand.New(61))
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals >= 800 {
		t.Fatalf("early stop did not fire: spent %d of 800", res.Evals)
	}
	if res.Evals < 30 {
		t.Fatalf("must take at least the minimum draws: %d", res.Evals)
	}
	rel := res.Estimate/float64(truth) - 1
	if rel < -0.2 || rel > 0.2 {
		t.Fatalf("early-stopped estimate %v vs truth %d", res.Estimate, truth)
	}
	// The achieved interval honors the requested width.
	if res.CI.Width() > 0.05*float64(obj.N())+1 {
		t.Fatalf("CI width %v exceeds requested", res.CI.Width())
	}
}

func TestLWSNoStopWithoutTarget(t *testing.T) {
	obj, _ := syntheticInstance(2000, 1.2, 62)
	m := &LWS{NewClassifier: knnSpec}
	res, err := m.Estimate(context.Background(), obj, 400, xrand.New(63))
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 400 {
		t.Fatalf("without a stop target the full budget must be spent: %d", res.Evals)
	}
}
