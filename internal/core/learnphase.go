package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/active"
	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/sample"
	"repro/internal/xrand"
)

// learnOptions configures the shared first phase of the learned methods
// (§4): draw and label SL, optionally augment by uncertainty sampling, and
// train a classifier.
type learnOptions struct {
	newClf      NewClassifierFunc
	augment     bool
	augmentFrac float64 // fraction of the learn budget spent on augmentation
	rounds      int     // augmentation rounds (default 1, per §3.2)
	poolCap     int
}

func (o learnOptions) normalized() learnOptions {
	if o.augmentFrac <= 0 || o.augmentFrac >= 1 {
		o.augmentFrac = 0.1
	}
	if o.rounds <= 0 {
		o.rounds = 1
	}
	return o
}

// runLearnPhase labels nLearn objects and trains a classifier on them.
// It returns the classifier, the labeled indices SL, and their labels.
// Cancellation of ctx is checked before every label.
func runLearnPhase(ctx context.Context, obj *ObjectSet, pred predicate.Predicate, nLearn int,
	opt learnOptions, r *xrand.Rand) (learn.Classifier, []int, []bool, error) {

	if opt.newClf == nil {
		return nil, nil, nil, fmt.Errorf("core: nil classifier constructor")
	}
	if nLearn < 2 {
		return nil, nil, nil, fmt.Errorf("core: learn budget %d too small", nLearn)
	}
	opt = opt.normalized()
	factory := func() learn.Classifier { return opt.newClf(r.Uint64()) }

	if opt.augment {
		nAug := int(math.Round(opt.augmentFrac * float64(nLearn)))
		if nAug >= nLearn {
			nAug = nLearn / 2
		}
		perRound := nAug / opt.rounds
		initial := nLearn - perRound*opt.rounds
		if initial < 2 {
			initial = 2
		}
		initIdx := sample.SRS(r, obj.N(), initial)
		clf, idx, labels, err := active.Train(ctx, active.Config{
			Factory: factory,
			Rounds:  opt.rounds,
			PoolCap: opt.poolCap,
		}, obj.Features, pred, initIdx, perRound, r)
		if err != nil {
			return nil, nil, nil, err
		}
		return clf, idx, labels, nil
	}

	idx := sample.SRS(r, obj.N(), nLearn)
	labels, err := labelSet(ctx, pred, idx)
	if err != nil {
		return nil, nil, nil, err
	}
	X := make([][]float64, len(idx))
	for j, i := range idx {
		X[j] = obj.Features[i]
	}
	clf := factory()
	if err := clf.Fit(X, labels); err != nil {
		return nil, nil, nil, err
	}
	return clf, idx, labels, nil
}

// scoreRest scores every object outside the labeled set and returns the
// remaining object indices with their scores. Membership uses a []bool
// bitmap (indices are dense in [0, N)), and scoring goes through the
// classifier's batch path when it has one — for the default random forest
// that means one cache-friendly, parallel pass instead of N interface
// calls.
func scoreRest(obj *ObjectSet, clf learn.Classifier, labeled []int) (restIdx []int, scores []float64) {
	inSL := make([]bool, obj.N())
	for _, i := range labeled {
		inSL[i] = true
	}
	restIdx = make([]int, 0, obj.N()-len(labeled))
	for i := 0; i < obj.N(); i++ {
		if !inSL[i] {
			restIdx = append(restIdx, i)
		}
	}
	restX := make([][]float64, len(restIdx))
	for j, i := range restIdx {
		restX[j] = obj.Features[i]
	}
	return restIdx, learn.ScoreAll(clf, restX)
}

// byScoreThenIndex sorts restIdx and scores together, ascending by score
// with index tie-breaking. The (score, index) key is a strict total order,
// so the unstable sort.Sort is fully deterministic.
type byScoreThenIndex struct {
	idx    []int
	scores []float64
}

func (s byScoreThenIndex) Len() int { return len(s.idx) }

func (s byScoreThenIndex) Less(a, b int) bool {
	if s.scores[a] != s.scores[b] {
		return s.scores[a] < s.scores[b]
	}
	return s.idx[a] < s.idx[b]
}

func (s byScoreThenIndex) Swap(a, b int) {
	s.idx[a], s.idx[b] = s.idx[b], s.idx[a]
	s.scores[a], s.scores[b] = s.scores[b], s.scores[a]
}

// orderByScore sorts rest indices (and scores) ascending by score, with
// index tie-breaking for determinism. Sorting the two slices in place
// through a concrete sort.Interface avoids the permutation buffer, the two
// scratch slices, and the per-comparison closure dispatch of the previous
// sort.SliceStable implementation.
func orderByScore(restIdx []int, scores []float64) {
	sort.Sort(byScoreThenIndex{idx: restIdx, scores: scores})
}
