package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/active"
	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/sample"
	"repro/internal/xrand"
)

// learnOptions configures the shared first phase of the learned methods
// (§4): draw and label SL, optionally augment by uncertainty sampling, and
// train a classifier.
type learnOptions struct {
	newClf      NewClassifierFunc
	augment     bool
	augmentFrac float64 // fraction of the learn budget spent on augmentation
	rounds      int     // augmentation rounds (default 1, per §3.2)
	poolCap     int
}

func (o learnOptions) normalized() learnOptions {
	if o.augmentFrac <= 0 || o.augmentFrac >= 1 {
		o.augmentFrac = 0.1
	}
	if o.rounds <= 0 {
		o.rounds = 1
	}
	return o
}

// runLearnPhase labels nLearn objects and trains a classifier on them.
// It returns the classifier, the labeled indices SL, and their labels.
func runLearnPhase(obj *ObjectSet, pred predicate.Predicate, nLearn int,
	opt learnOptions, r *xrand.Rand) (learn.Classifier, []int, []bool, error) {

	if opt.newClf == nil {
		return nil, nil, nil, fmt.Errorf("core: nil classifier constructor")
	}
	if nLearn < 2 {
		return nil, nil, nil, fmt.Errorf("core: learn budget %d too small", nLearn)
	}
	opt = opt.normalized()
	factory := func() learn.Classifier { return opt.newClf(r.Uint64()) }

	if opt.augment {
		nAug := int(math.Round(opt.augmentFrac * float64(nLearn)))
		if nAug >= nLearn {
			nAug = nLearn / 2
		}
		perRound := nAug / opt.rounds
		initial := nLearn - perRound*opt.rounds
		if initial < 2 {
			initial = 2
		}
		initIdx := sample.SRS(r, obj.N(), initial)
		clf, idx, labels, err := active.Train(active.Config{
			Factory: factory,
			Rounds:  opt.rounds,
			PoolCap: opt.poolCap,
		}, obj.Features, pred, initIdx, perRound, r)
		if err != nil {
			return nil, nil, nil, err
		}
		return clf, idx, labels, nil
	}

	idx := sample.SRS(r, obj.N(), nLearn)
	labels := make([]bool, len(idx))
	X := make([][]float64, len(idx))
	for j, i := range idx {
		labels[j] = pred.Eval(i)
		X[j] = obj.Features[i]
	}
	clf := factory()
	if err := clf.Fit(X, labels); err != nil {
		return nil, nil, nil, err
	}
	return clf, idx, labels, nil
}

// scoreRest scores every object outside the labeled set and returns the
// remaining object indices with their scores.
func scoreRest(obj *ObjectSet, clf learn.Classifier, labeled []int) (restIdx []int, scores []float64) {
	inSL := make(map[int]bool, len(labeled))
	for _, i := range labeled {
		inSL[i] = true
	}
	restIdx = make([]int, 0, obj.N()-len(labeled))
	scores = make([]float64, 0, obj.N()-len(labeled))
	for i := 0; i < obj.N(); i++ {
		if inSL[i] {
			continue
		}
		restIdx = append(restIdx, i)
		scores = append(scores, clf.Score(obj.Features[i]))
	}
	return restIdx, scores
}

// orderByScore sorts rest indices (and scores) ascending by score, with
// index tie-breaking for determinism.
func orderByScore(restIdx []int, scores []float64) {
	order := make([]int, len(restIdx))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] < scores[order[b]]
		}
		return restIdx[order[a]] < restIdx[order[b]]
	})
	ni := make([]int, len(restIdx))
	ns := make([]float64, len(scores))
	for p, o := range order {
		ni[p] = restIdx[o]
		ns[p] = scores[o]
	}
	copy(restIdx, ni)
	copy(scores, ns)
}
