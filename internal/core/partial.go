package core

import (
	"fmt"

	"repro/internal/estimate"
)

// Partial is the mergeable unit of a sharded estimation: one sampling
// cell's integer tally (population size, labeled members, positives).
// Partials of the same cell computed on disjoint shards merge by
// addition, and because every downstream estimator consumes only these
// integers, the merged estimate is byte-identical to the single-shard
// computation over the union.
type Partial struct {
	N         int // cell population size
	Sampled   int // labeled members
	Positives int // positives among the labeled members
}

// Add merges another shard's tally of the same cell into p.
func (p *Partial) Add(q Partial) {
	p.N += q.N
	p.Sampled += q.Sampled
	p.Positives += q.Positives
}

// MergePartials merges per-shard cell vectors (aligned by index: cell i of
// every shard describes the same stratum or group) into the global cell
// vector. Shards may report short vectors; missing cells are zero.
func MergePartials(parts [][]Partial) []Partial {
	width := 0
	for _, p := range parts {
		if len(p) > width {
			width = len(p)
		}
	}
	out := make([]Partial, width)
	for _, p := range parts {
		for i, c := range p {
			out[i].Add(c)
		}
	}
	return out
}

// StrataSamples converts merged cells into the stratified estimator's
// input form.
func StrataSamples(cells []Partial) []estimate.StratumSample {
	out := make([]estimate.StratumSample, len(cells))
	for i, c := range cells {
		out[i] = estimate.StratumSample{N: c.N, Sampled: c.Sampled, Positives: c.Positives}
	}
	return out
}

// Validate checks cell consistency (Sampled <= N, Positives <= Sampled);
// a violation means shards disagreed about the population and the merge
// must not be trusted.
func (p Partial) Validate() error {
	if p.Sampled > p.N {
		return fmt.Errorf("core: partial sampled %d > population %d", p.Sampled, p.N)
	}
	if p.Positives > p.Sampled {
		return fmt.Errorf("core: partial positives %d > sampled %d", p.Positives, p.Sampled)
	}
	if p.N < 0 || p.Sampled < 0 || p.Positives < 0 {
		return fmt.Errorf("core: negative partial tally {%d %d %d}", p.N, p.Sampled, p.Positives)
	}
	return nil
}
