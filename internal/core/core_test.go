package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// syntheticInstance builds an object set whose positives form a circle in
// feature space — learnable, with a known exact count.
func syntheticInstance(n int, radius float64, seed uint64) (*ObjectSet, int) {
	r := xrand.New(seed)
	features := make([][]float64, n)
	labels := make([]bool, n)
	truth := 0
	for i := 0; i < n; i++ {
		x := r.Float64()*4 - 2
		y := r.Float64()*4 - 2
		features[i] = []float64{x, y}
		labels[i] = x*x+y*y <= radius*radius
		if labels[i] {
			truth++
		}
	}
	obj, err := NewObjectSet(features, predicate.NewLabels(labels))
	if err != nil {
		panic(err)
	}
	return obj, truth
}

func knnSpec(seed uint64) learn.Classifier { return learn.NewKNN(5) }

func smallForest(seed uint64) learn.Classifier { return learn.NewRandomForest(20, seed) }

func TestNewObjectSetValidation(t *testing.T) {
	if _, err := NewObjectSet(nil, predicate.NewLabels(nil)); err == nil {
		t.Fatal("empty features should error")
	}
	if _, err := NewObjectSet([][]float64{{1}}, nil); err == nil {
		t.Fatal("nil predicate should error")
	}
	if _, err := NewObjectSet([][]float64{{1, 2}, {3}}, predicate.NewLabels([]bool{true, false})); err == nil {
		t.Fatal("ragged features should error")
	}
}

func TestOracle(t *testing.T) {
	obj, truth := syntheticInstance(500, 1.0, 1)
	res, err := Oracle{}.Estimate(context.Background(), obj, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != float64(truth) {
		t.Fatalf("oracle = %v, truth %d", res.Estimate, truth)
	}
	if res.Evals != 500 {
		t.Fatalf("oracle evals = %d", res.Evals)
	}
	if !res.CI.Contains(float64(truth)) || res.CI.Width() != 0 {
		t.Fatalf("oracle CI = %v", res.CI)
	}
}

func TestBudgetValidation(t *testing.T) {
	obj, _ := syntheticInstance(100, 1.0, 2)
	r := xrand.New(3)
	methods := []Method{&SRS{}, &SSP{}, &SSN{}, &LWS{NewClassifier: knnSpec}, &LSS{NewClassifier: knnSpec}, &QLCC{NewClassifier: knnSpec}, &QLAC{NewClassifier: knnSpec}}
	for _, m := range methods {
		if _, err := m.Estimate(context.Background(), obj, 0, r); err == nil {
			t.Fatalf("%s: zero budget should error", m.Name())
		}
		if _, err := m.Estimate(context.Background(), obj, 101, r); err == nil {
			t.Fatalf("%s: over-budget should error", m.Name())
		}
	}
}

func TestAllMethodsRespectBudget(t *testing.T) {
	obj, _ := syntheticInstance(2000, 1.0, 4)
	r := xrand.New(5)
	budget := 300
	methods := []Method{
		&SRS{},
		&SSP{Strata: 4},
		&SSN{Strata: 4},
		&LWS{NewClassifier: knnSpec},
		&LSS{NewClassifier: knnSpec},
		&LSS{NewClassifier: knnSpec, Layout: LayoutFixedWidth},
		&LSS{NewClassifier: knnSpec, Layout: LayoutEqualCount},
		&LSS{NewClassifier: knnSpec, Alloc: AllocProportional},
		&QLCC{NewClassifier: knnSpec},
		&QLAC{NewClassifier: knnSpec},
		&LWS{NewClassifier: knnSpec, Augment: true},
		&LSS{NewClassifier: knnSpec, Augment: true},
	}
	for _, m := range methods {
		before := obj.Pred.Evals()
		res, err := m.Estimate(context.Background(), obj, budget, r)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		spent := obj.Pred.Evals() - before
		if spent > int64(budget) {
			t.Fatalf("%s spent %d > budget %d", m.Name(), spent, budget)
		}
		if res.Evals != spent {
			t.Fatalf("%s reported %d evals, actual %d", m.Name(), res.Evals, spent)
		}
		if res.Estimate < 0 || res.Estimate > float64(obj.N()) {
			t.Fatalf("%s estimate %v out of range", m.Name(), res.Estimate)
		}
		if math.IsNaN(res.Estimate) {
			t.Fatalf("%s produced NaN", m.Name())
		}
	}
}

// runTrials collects estimates over repeated runs.
func runTrials(t *testing.T, m Method, obj *ObjectSet, budget, trials int, seed uint64) []float64 {
	t.Helper()
	r := xrand.New(seed)
	out := make([]float64, trials)
	for i := 0; i < trials; i++ {
		res, err := m.Estimate(context.Background(), obj, budget, r.Split())
		if err != nil {
			t.Fatalf("%s trial %d: %v", m.Name(), i, err)
		}
		out[i] = res.Estimate
	}
	return out
}

func TestSamplingMethodsUnbiased(t *testing.T) {
	obj, truth := syntheticInstance(3000, 1.2, 6)
	const trials, budget = 60, 300
	for _, m := range []Method{
		&SRS{},
		&SSP{Strata: 4},
		&LWS{NewClassifier: knnSpec},
		&LSS{NewClassifier: knnSpec},
	} {
		ests := runTrials(t, m, obj, budget, trials, 7)
		mean := stats.Mean(ests)
		sd := stats.StdDev(ests)
		if sd == 0 {
			sd = 1
		}
		z := math.Abs(mean-float64(truth)) / (sd / math.Sqrt(trials))
		if z > 4.5 {
			t.Fatalf("%s mean %v vs truth %d (z = %v)", m.Name(), mean, truth, z)
		}
	}
}

func TestLSSBeatsSRS(t *testing.T) {
	// The headline result (Fig 2): with a learnable predicate, LSS should
	// produce clearly tighter estimate distributions than plain SRS.
	obj, _ := syntheticInstance(4000, 1.2, 8)
	const trials, budget = 40, 400
	srs := runTrials(t, &SRS{}, obj, budget, trials, 9)
	lss := runTrials(t, &LSS{NewClassifier: knnSpec}, obj, budget, trials, 9)
	iqrSRS := stats.IQR(srs)
	iqrLSS := stats.IQR(lss)
	if iqrLSS >= iqrSRS {
		t.Fatalf("IQR(LSS)=%v should beat IQR(SRS)=%v", iqrLSS, iqrSRS)
	}
}

func TestLSSRobustToRandomClassifier(t *testing.T) {
	// §5.4.4: LSS with a random classifier must stay unbiased — quality
	// degrades to ordinary stratified sampling, not to garbage.
	obj, truth := syntheticInstance(2000, 1.2, 10)
	dummy := func(seed uint64) learn.Classifier { return learn.NewDummy(seed) }
	ests := runTrials(t, &LSS{NewClassifier: dummy}, obj, 250, 40, 11)
	mean := stats.Mean(ests)
	sd := stats.StdDev(ests)
	z := math.Abs(mean-float64(truth)) / (sd / math.Sqrt(40))
	if z > 4.5 {
		t.Fatalf("LSS+random mean %v vs truth %d (z=%v)", mean, truth, z)
	}
}

func TestCICoverage(t *testing.T) {
	obj, truth := syntheticInstance(3000, 1.2, 12)
	const trials, budget = 60, 300
	for _, m := range []Method{&SRS{}, &LSS{NewClassifier: knnSpec}} {
		r := xrand.New(13)
		hits := 0
		for i := 0; i < trials; i++ {
			res, err := m.Estimate(context.Background(), obj, budget, r.Split())
			if err != nil {
				t.Fatal(err)
			}
			if !res.HasCI {
				t.Fatalf("%s should produce a CI", m.Name())
			}
			if res.CI.Contains(float64(truth)) {
				hits++
			}
		}
		cov := float64(hits) / trials
		if cov < 0.80 {
			t.Fatalf("%s coverage %v too low (want ≈0.95)", m.Name(), cov)
		}
	}
}

func TestQLWithGoodClassifier(t *testing.T) {
	obj, truth := syntheticInstance(3000, 1.2, 14)
	r := xrand.New(15)
	for _, m := range []Method{&QLCC{NewClassifier: knnSpec}, &QLAC{NewClassifier: knnSpec}} {
		res, err := m.Estimate(context.Background(), obj, 600, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		if res.HasCI {
			t.Fatalf("%s should not claim a CI", m.Name())
		}
		relErr := math.Abs(res.Estimate-float64(truth)) / float64(truth)
		if relErr > 0.25 {
			t.Fatalf("%s estimate %v vs truth %d (rel err %v)", m.Name(), res.Estimate, truth, relErr)
		}
	}
}

// circleOracle scores exactly like the true predicate — the "accurate and
// confident classifier" of §4.1's analysis.
type circleOracle struct{ r2 float64 }

func (c *circleOracle) Name() string                      { return "oracle-clf" }
func (c *circleOracle) Fit(X [][]float64, y []bool) error { return nil }
func (c *circleOracle) Score(x []float64) float64 {
	if x[0]*x[0]+x[1]*x[1] <= c.r2 {
		return 1
	}
	return 0
}

func TestLWSWithPerfectScores(t *testing.T) {
	// §4.1: with a perfect, confident classifier, every Des Raj running
	// estimate is (nearly) exact, so LWS collapses the variance far below
	// SRS.
	obj, truth := syntheticInstance(2000, 1.2, 16)
	oracle := func(seed uint64) learn.Classifier { return &circleOracle{r2: 1.2 * 1.2} }
	ests := runTrials(t, &LWS{NewClassifier: oracle, TrainFrac: 0.1}, obj, 400, 20, 17)
	sd := stats.StdDev(ests)
	srs := runTrials(t, &SRS{}, obj, 400, 20, 17)
	if sd >= stats.StdDev(srs)/2 {
		t.Fatalf("LWS sd %v should be far below SRS sd %v with an oracle classifier", sd, stats.StdDev(srs))
	}
	mean := stats.Mean(ests)
	if math.Abs(mean-float64(truth)) > 0.1*float64(truth) {
		t.Fatalf("LWS mean %v vs truth %d", mean, truth)
	}
}

func TestTimingBreakdown(t *testing.T) {
	obj, _ := syntheticInstance(2000, 1.2, 18)
	r := xrand.New(19)
	res, err := (&LSS{NewClassifier: smallForest}).Estimate(context.Background(), obj, 300, r)
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timing
	if tm.Learn <= 0 || tm.Design <= 0 || tm.Sample <= 0 {
		t.Fatalf("phase timings missing: %+v", tm)
	}
	if tm.Total() < tm.Predicate {
		t.Fatalf("total %v below predicate time %v", tm.Total(), tm.Predicate)
	}
	if tm.Overhead() <= 0 {
		t.Fatalf("overhead = %v", tm.Overhead())
	}
}

func TestLSSStrataCounts(t *testing.T) {
	obj, _ := syntheticInstance(3000, 1.2, 20)
	r := xrand.New(21)
	for _, h := range []int{3, 4, 9} {
		m := &LSS{NewClassifier: knnSpec, Strata: h}
		if _, err := m.Estimate(context.Background(), obj, 400, r.Split()); err != nil {
			t.Fatalf("H=%d: %v", h, err)
		}
	}
}

func TestLSSDesignAlgos(t *testing.T) {
	obj, _ := syntheticInstance(2500, 1.2, 22)
	r := xrand.New(23)
	for _, tc := range []struct {
		algo DesignAlgo
		h    int
	}{
		{DesignDirSol, 3},
		{DesignLogBdr, 3},
		{DesignDynPgm, 4},
		{DesignDynPgmP, 4},
	} {
		m := &LSS{NewClassifier: knnSpec, Strata: tc.h, Algo: tc.algo}
		if _, err := m.Estimate(context.Background(), obj, 400, r.Split()); err != nil {
			t.Fatalf("%v: %v", tc.algo, err)
		}
	}
	// DirSol with wrong H must fail loudly.
	m := &LSS{NewClassifier: knnSpec, Strata: 4, Algo: DesignDirSol}
	if _, err := m.Estimate(context.Background(), obj, 400, r.Split()); err == nil {
		t.Fatal("DirSol with H=4 should error")
	}
}

func TestExtremeSelectivities(t *testing.T) {
	// XS-like (1%) and XXL-like (90%) populations must not break anything.
	for _, radius := range []float64{0.25, 2.4} {
		obj, truth := syntheticInstance(3000, radius, 24)
		r := xrand.New(25)
		for _, m := range []Method{&SRS{Wilson: true}, &LSS{NewClassifier: knnSpec}, &LWS{NewClassifier: knnSpec}} {
			res, err := m.Estimate(context.Background(), obj, 300, r.Split())
			if err != nil {
				t.Fatalf("radius %v %s: %v", radius, m.Name(), err)
			}
			if math.Abs(res.Estimate-float64(truth)) > 0.25*float64(obj.N()) {
				t.Fatalf("radius %v %s: estimate %v vs truth %d", radius, m.Name(), res.Estimate, truth)
			}
		}
	}
}

func TestStringers(t *testing.T) {
	if LayoutOptimal.String() != "optimal" || LayoutFixedWidth.String() != "fixed-width" ||
		LayoutEqualCount.String() != "fixed-height" {
		t.Fatal("Layout strings")
	}
	if AllocNeyman.String() != "neyman" || AllocProportional.String() != "proportional" {
		t.Fatal("Allocation strings")
	}
	for _, d := range []DesignAlgo{DesignAuto, DesignDirSol, DesignLogBdr, DesignDynPgm, DesignDynPgmP} {
		if d.String() == "" {
			t.Fatal("DesignAlgo string empty")
		}
	}
	if Layout(99).String() == "" || DesignAlgo(99).String() == "" {
		t.Fatal("unknown enum strings")
	}
}

func TestMethodNames(t *testing.T) {
	names := map[string]Method{
		"srs":    &SRS{},
		"ssp":    &SSP{},
		"ssn":    &SSN{},
		"lws":    &LWS{},
		"lss":    &LSS{},
		"qlcc":   &QLCC{},
		"qlac":   &QLAC{},
		"oracle": Oracle{},
	}
	for want, m := range names {
		if m.Name() != want {
			t.Fatalf("Name() = %q, want %q", m.Name(), want)
		}
	}
}

func BenchmarkLSSEstimate(b *testing.B) {
	obj, _ := syntheticInstance(10000, 1.2, 26)
	r := xrand.New(27)
	m := &LSS{NewClassifier: knnSpec}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Estimate(context.Background(), obj, 500, r.Split()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLWSEstimate(b *testing.B) {
	obj, _ := syntheticInstance(10000, 1.2, 28)
	r := xrand.New(29)
	m := &LWS{NewClassifier: knnSpec}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Estimate(context.Background(), obj, 500, r.Split()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSRSEstimate(b *testing.B) {
	obj, _ := syntheticInstance(10000, 1.2, 30)
	r := xrand.New(31)
	m := &SRS{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Estimate(context.Background(), obj, 500, r.Split()); err != nil {
			b.Fatal(err)
		}
	}
}
