package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/estimate"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/stratify"
	"repro/internal/xrand"
)

// Layout selects how LSS lays out strata over the score-ordered objects
// (the §5.4.1 comparison).
type Layout int

// Layout values.
const (
	// LayoutOptimal uses the paper's variance-minimizing designers (§4.2.1).
	LayoutOptimal Layout = iota
	// LayoutFixedWidth divides the score range into even increments.
	LayoutFixedWidth
	// LayoutEqualCount gives every stratum the same number of objects
	// (the paper's "fixed height").
	LayoutEqualCount
)

func (l Layout) String() string {
	switch l {
	case LayoutOptimal:
		return "optimal"
	case LayoutFixedWidth:
		return "fixed-width"
	case LayoutEqualCount:
		return "fixed-height"
	}
	return fmt.Sprintf("Layout(%d)", int(l))
}

// Allocation selects the second-stage allocation rule.
type Allocation int

// Allocation values.
const (
	// AllocNeyman allocates n_h ∝ N_h S_h (variance-minimizing).
	AllocNeyman Allocation = iota
	// AllocProportional allocates n_h ∝ N_h.
	AllocProportional
)

func (a Allocation) String() string {
	if a == AllocProportional {
		return "proportional"
	}
	return "neyman"
}

// DesignAlgo selects the stratification-design algorithm for LayoutOptimal.
type DesignAlgo int

// DesignAlgo values.
const (
	// DesignAuto picks DirSol for H = 3, otherwise DynPgm (Neyman) or
	// DynPgmP (proportional).
	DesignAuto DesignAlgo = iota
	// DesignDirSol forces the H = 3 closed-form designer.
	DesignDirSol
	// DesignLogBdr forces the partition-enumeration designer.
	DesignLogBdr
	// DesignDynPgm forces the Neyman dynamic program.
	DesignDynPgm
	// DesignDynPgmP forces the proportional dynamic program.
	DesignDynPgmP
)

func (d DesignAlgo) String() string {
	switch d {
	case DesignAuto:
		return "auto"
	case DesignDirSol:
		return "dirsol"
	case DesignLogBdr:
		return "logbdr"
	case DesignDynPgm:
		return "dynpgm"
	case DesignDynPgmP:
		return "dynpgmp"
	}
	return fmt.Sprintf("DesignAlgo(%d)", int(d))
}

// LSS is Learned Stratified Sampling (§4.2): order the unlabeled objects by
// classifier score, draw a pilot SI, jointly design stratification and
// allocation from the pilot, then draw the second-stage sample SII and form
// the stratified estimate. LSS uses only the score ordering — not the score
// values — so it degrades gracefully with classifier quality (§5.4.4).
type LSS struct {
	NewClassifier NewClassifierFunc
	Alpha         float64 // 0 means 0.05
	TrainFrac     float64 // budget fraction for phase 1; 0 means 0.25
	PilotFrac     float64 // fraction of the sampling budget for SI; 0 means 0.3
	Strata        int     // number of strata H; 0 means 4
	Layout        Layout
	Alloc         Allocation
	Algo          DesignAlgo
	MinAlloc      int // per-stratum second-stage minimum; 0 means 2
	Augment       bool
	AugmentFrac   float64
	Rounds        int
	PoolCap       int
	// Constraints overrides the designer feasibility constraints; nil means
	// scale-aware defaults.
	Constraints *stratify.Constraints
}

// Name implements Method.
func (m *LSS) Name() string { return "lss" }

func (m *LSS) alpha() float64 {
	if m.Alpha <= 0 {
		return 0.05
	}
	return m.Alpha
}

func (m *LSS) trainFrac() float64 {
	if m.TrainFrac <= 0 || m.TrainFrac >= 1 {
		return 0.25
	}
	return m.TrainFrac
}

func (m *LSS) pilotFrac() float64 {
	if m.PilotFrac <= 0 || m.PilotFrac >= 1 {
		return 0.3
	}
	return m.PilotFrac
}

func (m *LSS) strata() int {
	if m.Strata < 2 {
		return 4
	}
	return m.Strata
}

func (m *LSS) minAlloc() int {
	if m.MinAlloc <= 0 {
		return 5
	}
	return m.MinAlloc
}

// constraintsFor builds feasibility constraints scaled to the instance.
func (m *LSS) constraintsFor(M, mPilot, H int) stratify.Constraints {
	if m.Constraints != nil {
		return *m.Constraints
	}
	mq := mPilot / (3 * H)
	if mq > 5 {
		mq = 5
	}
	if mq < 2 {
		mq = 2
	}
	nq := M / (5 * H)
	if nq < 2 {
		nq = 2
	}
	return stratify.Constraints{MinStratumSize: nq, MinPilotPerStratum: mq}
}

// design computes the stratification cuts for the ordered object set.
func (m *LSS) design(pilot *stratify.Pilot, scores []float64, nII int) ([]int, error) {
	H := m.strata()
	switch m.Layout {
	case LayoutFixedWidth:
		return stratify.FixedWidth(scores, H), nil
	case LayoutEqualCount:
		return stratify.EqualCount(pilot.N, H), nil
	}
	c := m.constraintsFor(pilot.N, pilot.M(), H)
	algo := m.Algo
	if algo == DesignAuto {
		switch {
		case H == 3:
			algo = DesignDirSol
		case m.Alloc == AllocProportional:
			algo = DesignDynPgmP
		case H > 6:
			// The Neyman DP costs O(|T|·H·|B|²); for many strata the
			// separable proportional DP finds a near-identical layout at a
			// fraction of the cost (allocation stays Neyman regardless).
			algo = DesignDynPgmP
		default:
			algo = DesignDynPgm
		}
	}
	var d *stratify.Design
	var err error
	switch algo {
	case DesignDirSol:
		if H != 3 {
			return nil, fmt.Errorf("core: DirSol requires H=3, got %d", H)
		}
		d, err = stratify.DirSol(pilot, nII, c)
	case DesignLogBdr:
		d, err = stratify.LogBdr(pilot, H, nII, c)
	case DesignDynPgm:
		d, err = stratify.DynPgm(pilot, H, nII, c)
	case DesignDynPgmP:
		d, err = stratify.DynPgmP(pilot, H, nII, c)
	default:
		return nil, fmt.Errorf("core: unknown design algorithm %v", algo)
	}
	if err != nil {
		// Infeasible optimal design (tiny pilots, extreme constraints):
		// fall back to the equal-count layout rather than failing the run.
		return stratify.EqualCount(pilot.N, H), nil
	}
	return d.Cuts, nil
}

// Estimate implements Method.
func (m *LSS) Estimate(ctx context.Context, obj *ObjectSet, budget int, r *xrand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := checkBudget(obj, budget); err != nil {
		return nil, err
	}
	tp := &timedPred{p: obj.Pred}
	start := obj.Pred.Evals()
	newClf := m.NewClassifier
	if newClf == nil {
		newClf = DefaultForest
	}

	// Phase 1: learn and score.
	t0 := time.Now()
	nLearn := int(math.Round(m.trainFrac() * float64(budget)))
	if nLearn < 2 {
		nLearn = 2
	}
	if nLearn > budget-2 {
		nLearn = budget - 2
	}
	if nLearn < 2 {
		return nil, fmt.Errorf("core: budget %d too small for LSS", budget)
	}
	clf, SL, labels, err := runLearnPhase(ctx, obj, tp, nLearn, learnOptions{
		newClf:      newClf,
		augment:     m.Augment,
		augmentFrac: m.AugmentFrac,
		rounds:      m.Rounds,
		poolCap:     m.PoolCap,
	}, r)
	if err != nil {
		return nil, err
	}
	cs := countPositives(labels)
	restIdx, scores := scoreRest(obj, clf, SL)
	orderByScore(restIdx, scores)
	M := len(restIdx)
	learnDur := time.Since(t0)

	// Phase 2, stage 1: pilot + design.
	t1 := time.Now()
	sampling := budget - len(SL)
	nI := int(math.Round(m.pilotFrac() * float64(sampling)))
	if nI < 2 {
		nI = 2
	}
	if nI > sampling-1 {
		nI = sampling - 1
	}
	nII := sampling - nI
	if nI > M {
		nI = M
		nII = 0
	}

	pilotPos := sample.SRS(r, M, nI)
	sort.Ints(pilotPos)
	pilotObjs := make([]int, len(pilotPos))
	for j, p := range pilotPos {
		pilotObjs[j] = restIdx[p]
	}
	pilotQ, err := labelSet(ctx, tp, pilotObjs)
	if err != nil {
		return nil, err
	}
	pilot, err := stratify.NewPilot(M, pilotPos, pilotQ)
	if err != nil {
		return nil, err
	}
	cuts, err := m.design(pilot, scores, maxInt(nII, 1))
	if err != nil {
		return nil, err
	}
	H := len(cuts) - 1

	// Per-stratum pilot statistics for allocation. Allocation uses the
	// Laplace-smoothed deviation so that strata whose pilot sample happens
	// to be pure are not starved (footnote 1 of §3.1): a pilot that saw 5/5
	// positives is consistent with a true proportion well below 1.
	sizes := make([]int, H)
	Sh := make([]float64, H)
	for h := 0; h < H; h++ {
		sizes[h] = cuts[h+1] - cuts[h]
		mh, pos := pilot.StratumCounts(cuts[h], cuts[h+1])
		Sh[h] = stratify.SmoothedStdDev(mh, pos)
	}
	// Second-stage pools exclude pilot positions; positions are dense in
	// [0, M), so a bitmap beats a hash set in this O(M) loop.
	inPilot := make([]bool, M)
	for _, p := range pilotPos {
		inPilot[p] = true
	}
	pools := make([][]int, H)
	poolSizes := make([]int, H)
	for h := 0; h < H; h++ {
		for p := cuts[h]; p < cuts[h+1]; p++ {
			if !inPilot[p] {
				pools[h] = append(pools[h], restIdx[p])
			}
		}
		poolSizes[h] = len(pools[h])
	}
	var alloc []int
	if m.Alloc == AllocProportional {
		alloc = estimate.ProportionalAllocation(poolSizes, nII, m.minAlloc())
	} else {
		alloc = estimate.NeymanAllocation(poolSizes, Sh, nII, m.minAlloc())
	}
	designDur := time.Since(t1)

	// Phase 2, stage 2: draw SII and estimate.
	t2 := time.Now()
	draws, err := sample.Stratified(r, pools, alloc)
	if err != nil {
		return nil, err
	}
	strata := make([]estimate.StratumSample, H)
	for h, dset := range draws {
		pos, err := labelCount(ctx, tp, dset)
		if err != nil {
			return nil, err
		}
		strata[h] = estimate.StratumSample{N: sizes[h], Sampled: len(dset), Positives: pos}
	}
	res, err := estimate.Stratified(strata, m.alpha())
	if err != nil {
		return nil, err
	}
	total := float64(cs) + res.Count
	ci := stats.Interval{Lo: float64(cs) + res.CI.Lo, Hi: float64(cs) + res.CI.Hi}
	return &Result{
		Method:   m.Name(),
		Estimate: total,
		CI:       ci,
		HasCI:    true,
		Evals:    obj.Pred.Evals() - start,
		Timing:   Timing{Learn: learnDur, Design: designDur, Sample: time.Since(t2), Predicate: tp.dur},
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
