package core

import (
	"context"
	"math"
	"time"

	"repro/internal/estimate"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// LWS is Learned Weighted Sampling (§4.1): train a classifier, then sample
// the remaining objects without replacement with probability proportional
// to max(g(o), ε), estimating the count with the Des Raj ordered estimator.
// A good classifier concentrates the draws on positives and drives the
// variance toward zero; a poor classifier only costs efficiency — the
// estimate stays unbiased with a valid confidence interval.
type LWS struct {
	NewClassifier NewClassifierFunc
	Alpha         float64 // 0 means 0.05
	TrainFrac     float64 // fraction of budget used for learning; 0 means 0.25
	Epsilon       float64 // probability floor ε; 0 means 0.01
	// WithReplacement switches phase 2 to PPS with replacement and the
	// Hansen-Hurwitz estimator (ablation; the paper's LWS draws without
	// replacement and uses Des Raj).
	WithReplacement bool
	// StopRelWidth, when positive, stops phase 2 early once the running
	// Des Raj confidence interval's width falls below StopRelWidth × N —
	// the "ordered estimates" use the paper highlights in §4.1 (running
	// mean and variance as samples are drawn). A minimum of 30 draws is
	// taken before the rule can fire. Ignored with WithReplacement.
	StopRelWidth float64
	Augment      bool // apply uncertainty-sampling augmentation in phase 1
	AugmentFrac  float64
	Rounds       int
	PoolCap      int
}

// Name implements Method.
func (m *LWS) Name() string { return "lws" }

func (m *LWS) alpha() float64 {
	if m.Alpha <= 0 {
		return 0.05
	}
	return m.Alpha
}

func (m *LWS) trainFrac() float64 {
	if m.TrainFrac <= 0 || m.TrainFrac >= 1 {
		return 0.25
	}
	return m.TrainFrac
}

func (m *LWS) epsilon() float64 {
	if m.Epsilon <= 0 {
		return 0.01
	}
	return m.Epsilon
}

// Estimate implements Method.
func (m *LWS) Estimate(ctx context.Context, obj *ObjectSet, budget int, r *xrand.Rand) (*Result, error) {
	ctx = orBackground(ctx)
	if err := checkBudget(obj, budget); err != nil {
		return nil, err
	}
	tp := &timedPred{p: obj.Pred}
	start := obj.Pred.Evals()
	newClf := m.NewClassifier
	if newClf == nil {
		newClf = DefaultForest
	}

	// Phase 1: learn.
	t0 := time.Now()
	nLearn := int(math.Round(m.trainFrac() * float64(budget)))
	if nLearn < 2 {
		nLearn = 2
	}
	if nLearn > budget-1 {
		nLearn = budget - 1
	}
	clf, SL, labels, err := runLearnPhase(ctx, obj, tp, nLearn, learnOptions{
		newClf:      newClf,
		augment:     m.Augment,
		augmentFrac: m.AugmentFrac,
		rounds:      m.Rounds,
		poolCap:     m.PoolCap,
	}, r)
	if err != nil {
		return nil, err
	}
	cs := countPositives(labels)
	restIdx, scores := scoreRest(obj, clf, SL)
	learnDur := time.Since(t0)

	// Phase 2: PPS sampling. Default: without replacement + Des Raj.
	t1 := time.Now()
	eps := m.epsilon()
	weights := make([]float64, len(scores))
	for i, g := range scores {
		weights[i] = math.Max(g, eps)
	}
	nSample := budget - len(SL)
	if nSample > len(restIdx) {
		nSample = len(restIdx)
	}
	var res estimate.Result
	if m.WithReplacement {
		sampler, err := sample.NewWithReplacement(weights)
		if err != nil {
			return nil, err
		}
		hh := estimate.NewHansenHurwitz(len(restIdx))
		for i := 0; i < nSample; i++ {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			j := sampler.Draw(r)
			hh.Add(tp.Eval(restIdx[j]), sampler.Prob(j))
		}
		res = hh.Estimate(m.alpha())
	} else {
		sampler, err := sample.NewWeighted(weights)
		if err != nil {
			return nil, err
		}
		dr := estimate.NewDesRaj(len(restIdx))
		const minDraws = 30
		stopWidth := m.StopRelWidth * float64(len(restIdx))
		for i := 0; i < nSample; i++ {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			j, err := sampler.Draw(r)
			if err != nil {
				break
			}
			dr.Add(tp.Eval(restIdx[j]), sampler.InitialProb(j))
			if stopWidth > 0 && dr.Draws() >= minDraws {
				if cur := dr.Estimate(m.alpha()); cur.CI.Width() <= stopWidth {
					break
				}
			}
		}
		res = dr.Estimate(m.alpha())
	}

	total := float64(cs) + res.Count
	ci := stats.Interval{Lo: float64(cs) + res.CI.Lo, Hi: float64(cs) + res.CI.Hi}
	return &Result{
		Method:   m.Name(),
		Estimate: total,
		CI:       ci,
		HasCI:    true,
		Evals:    obj.Pred.Evals() - start,
		Timing:   Timing{Learn: learnDur, Sample: time.Since(t1), Predicate: tp.dur},
	}, nil
}
