// Package engine executes the SQL subset parsed by internal/sql over
// internal/dataset tables. The executor is deliberately naive — nested-loop
// joins, hash aggregation, full materialization — because the paper's
// premise (§1) is that a generic system evaluates these counting queries as
// nested loops, which is exactly the cost our sampling estimators avoid.
//
// The package also implements the §2 decomposition of a counting query (Q1)
// into an object-enumeration query (Q2) and a per-object predicate (Q3),
// which is how complex SQL becomes an instance of the C(O, q) problem.
package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind discriminates Value contents.
type ValueKind int

// Value kinds.
const (
	KNull ValueKind = iota
	KBool
	KInt
	KFloat
	KString
)

// Value is one SQL runtime value.
type Value struct {
	Kind ValueKind
	B    bool
	I    int64
	F    float64
	S    string
}

// Null, BoolVal, IntVal, FloatVal, StringVal construct values.
var Null = Value{Kind: KNull}

// BoolVal returns a boolean value.
func BoolVal(b bool) Value { return Value{Kind: KBool, B: b} }

// IntVal returns an integer value.
func IntVal(i int64) Value { return Value{Kind: KInt, I: i} }

// FloatVal returns a float value.
func FloatVal(f float64) Value { return Value{Kind: KFloat, F: f} }

// StringVal returns a string value.
func StringVal(s string) Value { return Value{Kind: KString, S: s} }

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.Kind == KInt || v.Kind == KFloat }

// AsFloat coerces a numeric value to float64.
func (v Value) AsFloat() (float64, error) {
	switch v.Kind {
	case KInt:
		return float64(v.I), nil
	case KFloat:
		return v.F, nil
	default:
		return 0, fmt.Errorf("engine: value %s is not numeric", v)
	}
}

// AsBool returns the boolean content.
func (v Value) AsBool() (bool, error) {
	if v.Kind != KBool {
		return false, fmt.Errorf("engine: value %s is not boolean", v)
	}
	return v.B, nil
}

func (v Value) String() string {
	switch v.Kind {
	case KNull:
		return "NULL"
	case KBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KString:
		return "'" + v.S + "'"
	}
	return "?"
}

// key returns a string usable as a hash key for grouping / DISTINCT.
func (v Value) key() string {
	switch v.Kind {
	case KNull:
		return "n"
	case KBool:
		if v.B {
			return "bt"
		}
		return "bf"
	case KInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case KFloat:
		// Normalize integral floats so 2.0 groups with 2 consistently.
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KString:
		return "s" + v.S
	}
	return "?"
}

// rowKey encodes a tuple of values for hashing.
func rowKey(vals []Value) string {
	var sb strings.Builder
	for _, v := range vals {
		k := v.key()
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
	}
	return sb.String()
}

// compare returns -1, 0, +1 for a < b, a == b, a > b. Numerics compare
// numerically (int/float mixed allowed); strings lexicographically;
// booleans with false < true. Mixed incomparable kinds yield an error.
func compare(a, b Value) (int, error) {
	if a.IsNumeric() && b.IsNumeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.Kind == KString && b.Kind == KString {
		return strings.Compare(a.S, b.S), nil
	}
	if a.Kind == KBool && b.Kind == KBool {
		switch {
		case a.B == b.B:
			return 0, nil
		case !a.B:
			return -1, nil
		default:
			return 1, nil
		}
	}
	return 0, fmt.Errorf("engine: cannot compare %s with %s", a, b)
}
