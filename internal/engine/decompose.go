package engine

import (
	"fmt"

	"repro/internal/sql"
)

// ObjectAlias is the binding name the decomposed per-object predicate (Q3)
// uses to reference the current object row, mirroring the paper's "o".
const ObjectAlias = "_o"

// Decomposed is the §2 rewriting of a counting query (Q1) into an
// object-enumeration query (Q2) and a per-object predicate (Q3):
//
//	Q1: SELECT E FROM L, R WHERE θL AND θLR GROUP BY GL HAVING φ
//	Q2: SELECT DISTINCT GL FROM L WHERE θL
//	Q3: EXISTS (SELECT GL FROM L, R WHERE θL AND θLR AND GL = o.*
//	            GROUP BY GL HAVING φ)
//
// Counting Q1's results equals counting the Q2 objects satisfying Q3, which
// is exactly the C(O, q) estimation problem the rest of the repository
// solves. Note we conservatively keep θL inside Q3 as well: the paper's
// formulation omits it, which is only equivalent when θL is functionally
// determined by GL; retaining it is always correct.
type Decomposed struct {
	Objects   *sql.SelectStmt // Q2
	Predicate sql.Expr        // Q3, referencing ObjectAlias
	GroupCols []string        // output column names of Q2, aligned with GROUP BY

	// FeatureCols are the candidate classifier features per the paper's
	// heuristic: columns referenced through an L alias (or unqualified,
	// when FROM is entirely L) in the original WHERE and HAVING. Names
	// that are really free parameters or non-numeric columns survive
	// here; narrow with NumericFeatureColumns against the object table.
	FeatureCols []string
}

// Decompose rewrites a Q1-shaped statement. The statement must have a
// non-empty GROUP BY consisting of column references; group columns must be
// qualified unless the FROM clause has a single table.
func Decompose(stmt *sql.SelectStmt) (*Decomposed, error) {
	if len(stmt.GroupBy) == 0 {
		return nil, fmt.Errorf("engine: decompose requires GROUP BY")
	}
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("engine: decompose requires FROM")
	}

	// Resolve group-by columns and the set of "L" aliases they live in.
	type glCol struct {
		ref  *sql.ColumnRef
		name string // Q2 output name
	}
	var gls []glCol
	lAliases := make(map[string]bool)
	nameSeen := make(map[string]int)
	for _, g := range stmt.GroupBy {
		cr, ok := g.(*sql.ColumnRef)
		if !ok {
			return nil, fmt.Errorf("engine: GROUP BY expression %s is not a column", g.String())
		}
		q := cr.Qualifier
		if q == "" {
			if len(stmt.From) != 1 {
				return nil, fmt.Errorf("engine: unqualified GROUP BY column %s with multi-table FROM", cr.Name)
			}
			q = stmt.From[0].BindName()
			cr = &sql.ColumnRef{Qualifier: q, Name: cr.Name}
		}
		lAliases[q] = true
		name := cr.Name
		if n := nameSeen[name]; n > 0 {
			name = fmt.Sprintf("%s_%d", name, n)
		}
		nameSeen[cr.Name]++
		gls = append(gls, glCol{ref: cr, name: name})
	}

	// Partition FROM into L (bind names referenced by GROUP BY) and verify
	// all group aliases exist.
	var lRefs []sql.TableRef
	fromAliases := make(map[string]bool)
	for _, tr := range stmt.From {
		fromAliases[tr.BindName()] = true
		if lAliases[tr.BindName()] {
			lRefs = append(lRefs, tr)
		}
	}
	for a := range lAliases {
		if !fromAliases[a] {
			return nil, fmt.Errorf("engine: GROUP BY references unknown alias %q", a)
		}
	}

	// Split WHERE into θL (references only L aliases, no subqueries) and
	// θLR (everything else).
	var thetaL, thetaLR []sql.Expr
	for _, c := range sql.SplitConjuncts(stmt.Where) {
		if conjunctIsLocal(c, lAliases, len(stmt.From) == len(lRefs)) {
			thetaL = append(thetaL, c)
		} else {
			thetaLR = append(thetaLR, c)
		}
	}

	// Q2: SELECT DISTINCT GL FROM L WHERE θL.
	q2 := &sql.SelectStmt{Distinct: true}
	for _, g := range gls {
		q2.Select = append(q2.Select, sql.SelectItem{Expr: g.ref, Alias: g.name})
	}
	q2.From = append(q2.From, lRefs...)
	q2.Where = sql.Conjoin(thetaL)

	// Q3: EXISTS(SELECT GL FROM L,R WHERE θL AND θLR AND GL=o.* GROUP BY GL
	// HAVING φ).
	q3 := &sql.SelectStmt{}
	for _, g := range gls {
		q3.Select = append(q3.Select, sql.SelectItem{Expr: g.ref})
	}
	q3.From = append(q3.From, stmt.From...)
	conj := make([]sql.Expr, 0, len(thetaL)+len(thetaLR)+len(gls))
	conj = append(conj, thetaL...)
	conj = append(conj, thetaLR...)
	for _, g := range gls {
		conj = append(conj, &sql.BinaryExpr{
			Op: "=",
			L:  g.ref,
			R:  &sql.ColumnRef{Qualifier: ObjectAlias, Name: g.name},
		})
	}
	q3.Where = sql.Conjoin(conj)
	for _, g := range gls {
		q3.GroupBy = append(q3.GroupBy, g.ref)
	}
	q3.Having = stmt.Having

	cols := make([]string, len(gls))
	for i, g := range gls {
		cols[i] = g.name
	}

	// Candidate features: what the original predicate reads of the object,
	// i.e. WHERE and HAVING references through L aliases. With a pure-L
	// FROM, unqualified names can only be object columns or parameters.
	featAliases := make([]string, 0, len(lAliases)+1)
	for a := range lAliases {
		featAliases = append(featAliases, a)
	}
	if len(stmt.From) == len(lRefs) {
		featAliases = append(featAliases, "")
	}
	featSrc := sql.Conjoin(append(sql.SplitConjuncts(stmt.Where), sql.SplitConjuncts(stmt.Having)...))

	return &Decomposed{
		Objects:     q2,
		Predicate:   &sql.SubqueryExpr{Exists: true, Query: q3},
		GroupCols:   cols,
		FeatureCols: FeatureColumns(featSrc, featAliases...),
	}, nil
}

// conjunctIsLocal reports whether conjunct c can be evaluated over L alone:
// it contains no subqueries, every qualified reference targets an L alias,
// and (unless the whole FROM is L) no unqualified references.
func conjunctIsLocal(c sql.Expr, lAliases map[string]bool, fromIsAllL bool) bool {
	local := true
	sql.WalkExpr(c, func(x sql.Expr) {
		switch r := x.(type) {
		case *sql.SubqueryExpr:
			local = false
		case *sql.ColumnRef:
			if r.Qualifier == "" {
				if !fromIsAllL {
					local = false
				}
			} else if !lAliases[r.Qualifier] {
				local = false
			}
		}
	})
	return local
}

// ExtractInner unwraps the common counting form
// SELECT COUNT(*) FROM (inner) and returns inner; if stmt is not of that
// shape it is returned unchanged.
func ExtractInner(stmt *sql.SelectStmt) *sql.SelectStmt {
	if len(stmt.Select) == 1 && !stmt.Select[0].Star && len(stmt.From) == 1 &&
		stmt.From[0].Subquery != nil && stmt.Where == nil &&
		len(stmt.GroupBy) == 0 && stmt.Having == nil {
		if fc, ok := stmt.Select[0].Expr.(*sql.FuncCall); ok && fc.Name == "COUNT" && fc.Star {
			return stmt.From[0].Subquery
		}
	}
	return stmt
}

// ObjectPredicate returns a closure that evaluates the decomposed predicate
// for the i-th row of the materialized object set.
func (ev *Evaluator) ObjectPredicate(d *Decomposed, objects *ResultSet) func(i int) (bool, error) {
	return func(i int) (bool, error) {
		sc := NewScope(nil)
		sc.BindRow(ObjectAlias, objects, i)
		v, err := ev.Eval(d.Predicate, sc)
		if err != nil {
			return false, err
		}
		return v.AsBool()
	}
}

// CountQuery fully evaluates a counting query: the number of result rows of
// the (possibly COUNT(*)-wrapped) statement's inner query. This is the
// exact, slow path the estimators avoid.
func (ev *Evaluator) CountQuery(stmt *sql.SelectStmt) (int, error) {
	inner := ExtractInner(stmt)
	res, err := ev.Run(inner, nil)
	if err != nil {
		return 0, err
	}
	return len(res.Rows), nil
}
