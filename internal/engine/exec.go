package engine

import (
	"fmt"
	"sort"

	"repro/internal/sql"
)

// Run executes stmt against the evaluator's catalog. outer, which may be
// nil, supplies bindings for correlated references.
func (ev *Evaluator) Run(stmt *sql.SelectStmt, outer *Scope) (*ResultSet, error) {
	// Resolve FROM.
	sc := NewScope(outer)
	var cursors []*binding
	for _, tr := range stmt.From {
		var rel Relation
		if tr.Subquery != nil {
			sub, err := ev.Run(tr.Subquery, outer)
			if err != nil {
				return nil, err
			}
			rel = sub
		} else {
			t, ok := ev.Cat[tr.Name]
			if !ok {
				return nil, fmt.Errorf("engine: unknown table %q", tr.Name)
			}
			rel = NewTableRelation(t)
		}
		cursors = append(cursors, sc.Bind(tr.BindName(), rel))
	}

	// Classify the query: grouped iff GROUP BY present or aggregates appear.
	var aggCalls []*sql.FuncCall
	for _, it := range stmt.Select {
		if !it.Star {
			collectAggregates(it.Expr, &aggCalls)
		}
	}
	collectAggregates(stmt.Having, &aggCalls)
	grouped := len(stmt.GroupBy) > 0 || len(aggCalls) > 0
	if stmt.Having != nil && !grouped {
		return nil, fmt.Errorf("engine: HAVING without grouping")
	}

	// Output columns.
	cols, starExpand, err := outputColumns(stmt, cursors)
	if err != nil {
		return nil, err
	}

	res := &ResultSet{Cols: cols}
	var distinctSeen map[string]bool
	if stmt.Distinct {
		distinctSeen = make(map[string]bool)
	}

	if !grouped {
		err := ev.enumerate(cursors, 0, func() error {
			ev.Stats.RowsScanned++
			if stmt.Where != nil {
				ev.Stats.PredicateEval++
				v, err := ev.Eval(stmt.Where, sc)
				if err != nil {
					return err
				}
				b, err := v.AsBool()
				if err != nil {
					return fmt.Errorf("engine: WHERE is not boolean: %w", err)
				}
				if !b {
					return nil
				}
			}
			row, err := ev.projectRow(stmt, sc, nil, starExpand, cursors)
			if err != nil {
				return err
			}
			appendMaybeDistinct(res, row, distinctSeen)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := orderAndLimit(stmt, res); err != nil {
			return nil, err
		}
		return res, nil
	}

	// Grouped execution: hash aggregation with representative rows.
	type group struct {
		repRows []int // row index per cursor at first group member
		accs    []accumulator
	}
	groups := make(map[string]*group)
	var order []string

	err = ev.enumerate(cursors, 0, func() error {
		ev.Stats.RowsScanned++
		if stmt.Where != nil {
			ev.Stats.PredicateEval++
			v, err := ev.Eval(stmt.Where, sc)
			if err != nil {
				return err
			}
			b, err := v.AsBool()
			if err != nil {
				return fmt.Errorf("engine: WHERE is not boolean: %w", err)
			}
			if !b {
				return nil
			}
		}
		keyVals := make([]Value, len(stmt.GroupBy))
		for i, g := range stmt.GroupBy {
			v, err := ev.Eval(g, sc)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		k := rowKey(keyVals)
		grp, ok := groups[k]
		if !ok {
			rep := make([]int, len(cursors))
			for i, c := range cursors {
				rep[i] = c.row
			}
			grp = &group{repRows: rep, accs: newAccumulators(aggCalls)}
			groups[k] = grp
			order = append(order, k)
		}
		for i, fc := range aggCalls {
			if err := grp.accs[i].add(ev, fc, sc); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// A global aggregate (no GROUP BY) over zero rows still yields one row.
	if len(stmt.GroupBy) == 0 && len(groups) == 0 {
		grp := &group{repRows: nil, accs: newAccumulators(aggCalls)}
		groups[""] = grp
		order = append(order, "")
	}

	for _, k := range order {
		grp := groups[k]
		if grp.repRows != nil {
			for i, c := range cursors {
				c.row = grp.repRows[i]
			}
		}
		aggs := make(aggEnv, len(aggCalls))
		for i, fc := range aggCalls {
			aggs[fc] = grp.accs[i].resultFor(fc)
		}
		if stmt.Having != nil {
			ev.Stats.PredicateEval++
			v, err := ev.eval(stmt.Having, sc, aggs)
			if err != nil {
				return nil, err
			}
			b, err := v.AsBool()
			if err != nil {
				return nil, fmt.Errorf("engine: HAVING is not boolean: %w", err)
			}
			if !b {
				continue
			}
		}
		row, err := ev.projectRow(stmt, sc, aggs, starExpand, cursors)
		if err != nil {
			return nil, err
		}
		appendMaybeDistinct(res, row, distinctSeen)
	}
	if err := orderAndLimit(stmt, res); err != nil {
		return nil, err
	}
	return res, nil
}

// orderAndLimit applies ORDER BY and LIMIT to a materialized result. Order
// keys must be output columns (by name) or 1-based output positions — the
// forms the repository's query class uses.
func orderAndLimit(stmt *sql.SelectStmt, res *ResultSet) error {
	if len(stmt.OrderBy) > 0 {
		type key struct {
			col  int
			desc bool
		}
		keys := make([]key, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			switch x := o.Expr.(type) {
			case *sql.ColumnRef:
				name := x.Name
				ci := res.ColIndex(name)
				if ci < 0 {
					return fmt.Errorf("engine: ORDER BY references unknown output column %q", name)
				}
				keys[i] = key{ci, o.Desc}
			case *sql.NumberLit:
				if !x.IsInt || int(x.Value) < 1 || int(x.Value) > len(res.Cols) {
					return fmt.Errorf("engine: ORDER BY position %v out of range", x.Value)
				}
				keys[i] = key{int(x.Value) - 1, o.Desc}
			default:
				return fmt.Errorf("engine: ORDER BY supports output columns or positions, got %s", o.Expr.String())
			}
		}
		var sortErr error
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for _, k := range keys {
				c, err := compare(res.Rows[a][k.col], res.Rows[b][k.col])
				if err != nil {
					if sortErr == nil {
						sortErr = err
					}
					return false
				}
				if c != 0 {
					if k.desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return sortErr
		}
	}
	if stmt.HasLimit && len(res.Rows) > stmt.Limit {
		res.Rows = res.Rows[:stmt.Limit]
	}
	return nil
}

func appendMaybeDistinct(res *ResultSet, row []Value, seen map[string]bool) {
	if seen != nil {
		k := rowKey(row)
		if seen[k] {
			return
		}
		seen[k] = true
	}
	res.Rows = append(res.Rows, row)
}

// enumerate drives the nested-loop join over all cursors, invoking emit for
// each complete row combination.
func (ev *Evaluator) enumerate(cursors []*binding, depth int, emit func() error) error {
	if depth == len(cursors) {
		return emit()
	}
	c := cursors[depth]
	n := c.rel.NumRows()
	for i := 0; i < n; i++ {
		c.row = i
		if err := ev.enumerate(cursors, depth+1, emit); err != nil {
			return err
		}
	}
	return nil
}

// outputColumns computes result column names; starExpand lists, for a bare
// SELECT *, the (cursorIndex, colIndex) pairs to copy.
func outputColumns(stmt *sql.SelectStmt, cursors []*binding) ([]string, [][2]int, error) {
	var cols []string
	var star [][2]int
	for _, it := range stmt.Select {
		if it.Star {
			for ci, c := range cursors {
				for j, name := range c.rel.Columns() {
					cols = append(cols, name)
					star = append(star, [2]int{ci, j})
				}
			}
			continue
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*sql.ColumnRef); ok {
				name = cr.Name
			} else {
				name = it.Expr.String()
			}
		}
		cols = append(cols, name)
	}
	return cols, star, nil
}

func (ev *Evaluator) projectRow(stmt *sql.SelectStmt, sc *Scope, aggs aggEnv, star [][2]int, cursors []*binding) ([]Value, error) {
	var row []Value
	for _, it := range stmt.Select {
		if it.Star {
			for _, se := range star {
				c := cursors[se[0]]
				row = append(row, c.rel.Value(c.row, se[1]))
			}
			continue
		}
		v, err := ev.eval(it.Expr, sc, aggs)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

// --- aggregate accumulators ---

type accumulator struct {
	count    int64
	sum      float64
	sumIsInt bool
	min, max Value
	distinct map[string]bool
	sawRow   bool
}

func newAccumulators(calls []*sql.FuncCall) []accumulator {
	accs := make([]accumulator, len(calls))
	for i, fc := range calls {
		accs[i].sumIsInt = true
		if fc.Distinct {
			accs[i].distinct = make(map[string]bool)
		}
	}
	return accs
}

func (a *accumulator) add(ev *Evaluator, fc *sql.FuncCall, sc *Scope) error {
	if fc.Star {
		a.count++
		a.sawRow = true
		return nil
	}
	if len(fc.Args) != 1 {
		return fmt.Errorf("engine: %s expects 1 argument", fc.Name)
	}
	v, err := ev.Eval(fc.Args[0], sc)
	if err != nil {
		return err
	}
	if v.Kind == KNull {
		return nil
	}
	if a.distinct != nil {
		k := v.key()
		if a.distinct[k] {
			return nil
		}
		a.distinct[k] = true
	}
	a.sawRow = true
	a.count++
	switch fc.Name {
	case "COUNT":
		// count already incremented
	case "SUM", "AVG":
		f, err := v.AsFloat()
		if err != nil {
			return err
		}
		if v.Kind != KInt {
			a.sumIsInt = false
		}
		a.sum += f
	case "MIN":
		if a.min.Kind == KNull {
			a.min = v
		} else if c, err := compare(v, a.min); err != nil {
			return err
		} else if c < 0 {
			a.min = v
		}
	case "MAX":
		if a.max.Kind == KNull {
			a.max = v
		} else if c, err := compare(v, a.max); err != nil {
			return err
		} else if c > 0 {
			a.max = v
		}
	}
	return nil
}

// resultFor finalizes an accumulator for a specific aggregate call.
func (a *accumulator) resultFor(fc *sql.FuncCall) Value {
	switch fc.Name {
	case "COUNT":
		return IntVal(a.count)
	case "SUM":
		if !a.sawRow {
			return Null
		}
		if a.sumIsInt {
			return IntVal(int64(a.sum))
		}
		return FloatVal(a.sum)
	case "AVG":
		if a.count == 0 {
			return Null
		}
		return FloatVal(a.sum / float64(a.count))
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	}
	return Null
}
