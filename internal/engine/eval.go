package engine

import (
	"fmt"
	"math"

	"repro/internal/sql"
)

// Stats accumulates work counters so experiments can report the cost of
// "full" query evaluation versus sampled predicate evaluation.
type Stats struct {
	RowsScanned   int64 // rows produced by FROM enumeration
	SubqueryRuns  int64 // scalar/EXISTS subquery executions
	PredicateEval int64 // WHERE/HAVING evaluations
}

// Evaluator evaluates expressions and executes statements against a catalog.
// Params supplies values for free identifiers (e.g. the paper's d and k
// query parameters).
type Evaluator struct {
	Cat    Catalog
	Params map[string]Value
	Stats  Stats
}

// NewEvaluator returns an evaluator over cat with no parameters.
func NewEvaluator(cat Catalog) *Evaluator {
	return &Evaluator{Cat: cat, Params: make(map[string]Value)}
}

// SetParam sets a named parameter.
func (ev *Evaluator) SetParam(name string, v Value) { ev.Params[name] = v }

// aggEnv carries accumulated aggregate results during HAVING / projection
// evaluation of a grouped query.
type aggEnv map[*sql.FuncCall]Value

// Eval evaluates a non-aggregate expression in the given scope.
func (ev *Evaluator) Eval(e sql.Expr, sc *Scope) (Value, error) {
	return ev.eval(e, sc, nil)
}

func (ev *Evaluator) eval(e sql.Expr, sc *Scope, aggs aggEnv) (Value, error) {
	switch x := e.(type) {
	case *sql.NumberLit:
		if x.IsInt {
			return IntVal(int64(x.Value)), nil
		}
		return FloatVal(x.Value), nil

	case *sql.StringLit:
		return StringVal(x.Value), nil

	case *sql.ColumnRef:
		v, ok, err := sc.resolve(x.Qualifier, x.Name)
		if err != nil {
			return Null, err
		}
		if ok {
			return v, nil
		}
		if x.Qualifier == "" {
			if pv, ok := ev.Params[x.Name]; ok {
				return pv, nil
			}
		}
		return Null, fmt.Errorf("engine: unresolved column %s", x.String())

	case *sql.UnaryExpr:
		v, err := ev.eval(x.X, sc, aggs)
		if err != nil {
			return Null, err
		}
		switch x.Op {
		case "NOT":
			b, err := v.AsBool()
			if err != nil {
				return Null, err
			}
			return BoolVal(!b), nil
		case "-":
			switch v.Kind {
			case KInt:
				return IntVal(-v.I), nil
			case KFloat:
				return FloatVal(-v.F), nil
			default:
				return Null, fmt.Errorf("engine: cannot negate %s", v)
			}
		}
		return Null, fmt.Errorf("engine: unknown unary op %q", x.Op)

	case *sql.BinaryExpr:
		return ev.evalBinary(x, sc, aggs)

	case *sql.FuncCall:
		if isAggregate(x.Name) {
			if aggs == nil {
				return Null, fmt.Errorf("engine: aggregate %s outside grouped query", x.Name)
			}
			v, ok := aggs[x]
			if !ok {
				return Null, fmt.Errorf("engine: aggregate %s not accumulated", x.String())
			}
			return v, nil
		}
		return ev.evalScalarFunc(x, sc, aggs)

	case *sql.SubqueryExpr:
		ev.Stats.SubqueryRuns++
		res, err := ev.Run(x.Query, sc)
		if err != nil {
			return Null, err
		}
		if x.Exists {
			return BoolVal(len(res.Rows) > 0), nil
		}
		if len(res.Cols) != 1 {
			return Null, fmt.Errorf("engine: scalar subquery has %d columns", len(res.Cols))
		}
		switch len(res.Rows) {
		case 0:
			return Null, nil
		case 1:
			return res.Rows[0][0], nil
		default:
			return Null, fmt.Errorf("engine: scalar subquery returned %d rows", len(res.Rows))
		}
	}
	return Null, fmt.Errorf("engine: unsupported expression %T", e)
}

func (ev *Evaluator) evalBinary(x *sql.BinaryExpr, sc *Scope, aggs aggEnv) (Value, error) {
	switch x.Op {
	case "AND", "OR":
		l, err := ev.eval(x.L, sc, aggs)
		if err != nil {
			return Null, err
		}
		lb, err := l.AsBool()
		if err != nil {
			return Null, err
		}
		// Short-circuit.
		if x.Op == "AND" && !lb {
			return BoolVal(false), nil
		}
		if x.Op == "OR" && lb {
			return BoolVal(true), nil
		}
		r, err := ev.eval(x.R, sc, aggs)
		if err != nil {
			return Null, err
		}
		rb, err := r.AsBool()
		if err != nil {
			return Null, err
		}
		return BoolVal(rb), nil
	}

	l, err := ev.eval(x.L, sc, aggs)
	if err != nil {
		return Null, err
	}
	r, err := ev.eval(x.R, sc, aggs)
	if err != nil {
		return Null, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.Kind == KNull || r.Kind == KNull {
			return BoolVal(false), nil
		}
		c, err := compare(l, r)
		if err != nil {
			return Null, err
		}
		switch x.Op {
		case "=":
			return BoolVal(c == 0), nil
		case "<>":
			return BoolVal(c != 0), nil
		case "<":
			return BoolVal(c < 0), nil
		case "<=":
			return BoolVal(c <= 0), nil
		case ">":
			return BoolVal(c > 0), nil
		case ">=":
			return BoolVal(c >= 0), nil
		}
	case "+", "-", "*", "/":
		// Integer arithmetic stays integral except division.
		if l.Kind == KInt && r.Kind == KInt && x.Op != "/" {
			switch x.Op {
			case "+":
				return IntVal(l.I + r.I), nil
			case "-":
				return IntVal(l.I - r.I), nil
			case "*":
				return IntVal(l.I * r.I), nil
			}
		}
		lf, err := l.AsFloat()
		if err != nil {
			return Null, err
		}
		rf, err := r.AsFloat()
		if err != nil {
			return Null, err
		}
		switch x.Op {
		case "+":
			return FloatVal(lf + rf), nil
		case "-":
			return FloatVal(lf - rf), nil
		case "*":
			return FloatVal(lf * rf), nil
		case "/":
			if rf == 0 {
				return Null, fmt.Errorf("engine: division by zero")
			}
			return FloatVal(lf / rf), nil
		}
	}
	return Null, fmt.Errorf("engine: unknown operator %q", x.Op)
}

func (ev *Evaluator) evalScalarFunc(x *sql.FuncCall, sc *Scope, aggs aggEnv) (Value, error) {
	args := make([]float64, len(x.Args))
	for i, a := range x.Args {
		v, err := ev.eval(a, sc, aggs)
		if err != nil {
			return Null, err
		}
		f, err := v.AsFloat()
		if err != nil {
			return Null, fmt.Errorf("engine: %s argument %d: %w", x.Name, i, err)
		}
		args[i] = f
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("engine: %s expects %d arguments, got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "SQRT":
		if err := need(1); err != nil {
			return Null, err
		}
		if args[0] < 0 {
			return Null, fmt.Errorf("engine: SQRT of negative %v", args[0])
		}
		return FloatVal(math.Sqrt(args[0])), nil
	case "POWER", "POW":
		if err := need(2); err != nil {
			return Null, err
		}
		return FloatVal(math.Pow(args[0], args[1])), nil
	case "ABS":
		if err := need(1); err != nil {
			return Null, err
		}
		return FloatVal(math.Abs(args[0])), nil
	case "FLOOR":
		if err := need(1); err != nil {
			return Null, err
		}
		return FloatVal(math.Floor(args[0])), nil
	case "CEIL", "CEILING":
		if err := need(1); err != nil {
			return Null, err
		}
		return FloatVal(math.Ceil(args[0])), nil
	case "LN":
		if err := need(1); err != nil {
			return Null, err
		}
		return FloatVal(math.Log(args[0])), nil
	case "EXP":
		if err := need(1); err != nil {
			return Null, err
		}
		return FloatVal(math.Exp(args[0])), nil
	case "LEAST":
		if len(args) == 0 {
			return Null, fmt.Errorf("engine: LEAST needs arguments")
		}
		m := args[0]
		for _, a := range args[1:] {
			m = math.Min(m, a)
		}
		return FloatVal(m), nil
	case "GREATEST":
		if len(args) == 0 {
			return Null, fmt.Errorf("engine: GREATEST needs arguments")
		}
		m := args[0]
		for _, a := range args[1:] {
			m = math.Max(m, a)
		}
		return FloatVal(m), nil
	}
	return Null, fmt.Errorf("engine: unknown function %s", x.Name)
}

func isAggregate(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// collectAggregates gathers aggregate calls in e (not descending into
// subqueries, whose aggregates belong to their own group context).
func collectAggregates(e sql.Expr, out *[]*sql.FuncCall) {
	sql.WalkExpr(e, func(x sql.Expr) {
		if fc, ok := x.(*sql.FuncCall); ok && isAggregate(fc.Name) {
			*out = append(*out, fc)
		}
	})
}
