package engine

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/sql"
	"repro/internal/xrand"
)

// pointsTable builds the paper's D(id, x, y) table.
func pointsTable(pts []geom.Point2) *dataset.Table {
	t := dataset.New("D", dataset.Schema{
		{Name: "id", Kind: dataset.Int},
		{Name: "x", Kind: dataset.Float},
		{Name: "y", Kind: dataset.Float},
	})
	for i, p := range pts {
		t.MustAppendRow(int64(i), p.X, p.Y)
	}
	return t
}

func mustParse(t *testing.T, q string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return stmt
}

func run(t *testing.T, cat Catalog, q string, params map[string]Value) *ResultSet {
	t.Helper()
	ev := NewEvaluator(cat)
	for k, v := range params {
		ev.SetParam(k, v)
	}
	res, err := ev.Run(mustParse(t, q), nil)
	if err != nil {
		t.Fatalf("run %q: %v", q, err)
	}
	return res
}

func TestSimpleSelect(t *testing.T) {
	d := pointsTable([]geom.Point2{{X: 1, Y: 2}, {X: 3, Y: 4}, {X: 5, Y: 6}})
	cat := Catalog{"D": d}
	res := run(t, cat, "SELECT id, x FROM D WHERE x > 2", nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].I != 1 || res.Rows[0][1].F != 3 {
		t.Fatalf("first row = %v", res.Rows[0])
	}
	if res.Cols[0] != "id" || res.Cols[1] != "x" {
		t.Fatalf("cols = %v", res.Cols)
	}
}

func TestSelectStar(t *testing.T) {
	d := pointsTable([]geom.Point2{{X: 1, Y: 2}})
	res := run(t, Catalog{"D": d}, "SELECT * FROM D", nil)
	if len(res.Cols) != 3 || len(res.Rows) != 1 {
		t.Fatalf("star select = %v / %v", res.Cols, res.Rows)
	}
}

func TestArithmeticAndFunctions(t *testing.T) {
	d := pointsTable([]geom.Point2{{X: 3, Y: 4}})
	res := run(t, Catalog{"D": d},
		"SELECT SQRT(POWER(x,2) + POWER(y,2)) AS dist, x + y, x * y - 2, ABS(0 - x) FROM D", nil)
	r := res.Rows[0]
	if r[0].F != 5 {
		t.Fatalf("dist = %v", r[0])
	}
	if r[1].F != 7 {
		t.Fatalf("x+y = %v", r[1])
	}
	if r[2].F != 10 {
		t.Fatalf("x*y-2 = %v", r[2])
	}
	if r[3].F != 3 {
		t.Fatalf("abs = %v", r[3])
	}
	if res.Cols[0] != "dist" {
		t.Fatalf("alias lost: %v", res.Cols)
	}
}

func TestIntegerArithmetic(t *testing.T) {
	d := pointsTable([]geom.Point2{{X: 0, Y: 0}})
	res := run(t, Catalog{"D": d}, "SELECT id + 2, id * 3, 7 / 2 FROM D", nil)
	r := res.Rows[0]
	if r[0].Kind != KInt || r[0].I != 2 {
		t.Fatalf("int add = %v", r[0])
	}
	if r[2].Kind != KFloat || r[2].F != 3.5 {
		t.Fatalf("division should be float: %v", r[2])
	}
}

func TestGroupByHaving(t *testing.T) {
	tb := dataset.New("t", dataset.Schema{
		{Name: "grp", Kind: dataset.String},
		{Name: "v", Kind: dataset.Float},
	})
	tb.MustAppendRow("a", 1.0)
	tb.MustAppendRow("a", 2.0)
	tb.MustAppendRow("b", 10.0)
	tb.MustAppendRow("b", 20.0)
	tb.MustAppendRow("c", 5.0)
	res := run(t, Catalog{"t": tb},
		"SELECT grp, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM t GROUP BY grp HAVING COUNT(*) >= 2", nil)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0].S != "a" || row[1].I != 2 || row[2].F != 3 || row[3].F != 1.5 || row[4].F != 1 || row[5].F != 2 {
		t.Fatalf("group a = %v", row)
	}
	row = res.Rows[1]
	if row[0].S != "b" || row[2].F != 30 {
		t.Fatalf("group b = %v", row)
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	tb := dataset.New("t", dataset.Schema{{Name: "v", Kind: dataset.Float}})
	res := run(t, Catalog{"t": tb}, "SELECT COUNT(*) FROM t", nil)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("COUNT over empty = %v", res.Rows)
	}
	n, err := res.ScalarInt()
	if err != nil || n != 0 {
		t.Fatalf("ScalarInt = %v, %v", n, err)
	}
}

func TestCountDistinct(t *testing.T) {
	tb := dataset.New("t", dataset.Schema{{Name: "v", Kind: dataset.Int}})
	for _, v := range []int64{1, 1, 2, 3, 3, 3} {
		tb.MustAppendRow(v)
	}
	res := run(t, Catalog{"t": tb}, "SELECT COUNT(DISTINCT v) FROM t", nil)
	if res.Rows[0][0].I != 3 {
		t.Fatalf("COUNT(DISTINCT) = %v", res.Rows[0][0])
	}
}

func TestSelectDistinct(t *testing.T) {
	tb := dataset.New("t", dataset.Schema{{Name: "v", Kind: dataset.Int}})
	for _, v := range []int64{1, 1, 2, 3, 3} {
		tb.MustAppendRow(v)
	}
	res := run(t, Catalog{"t": tb}, "SELECT DISTINCT v FROM t", nil)
	if len(res.Rows) != 3 {
		t.Fatalf("DISTINCT rows = %d", len(res.Rows))
	}
}

func TestJoin(t *testing.T) {
	a := dataset.New("a", dataset.Schema{{Name: "k", Kind: dataset.Int}})
	b := dataset.New("b", dataset.Schema{{Name: "k", Kind: dataset.Int}})
	for _, v := range []int64{1, 2, 3} {
		a.MustAppendRow(v)
	}
	for _, v := range []int64{2, 3, 4} {
		b.MustAppendRow(v)
	}
	res := run(t, Catalog{"a": a, "b": b}, "SELECT u.k FROM a u, b v WHERE u.k = v.k", nil)
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
}

func TestParams(t *testing.T) {
	d := pointsTable([]geom.Point2{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}})
	res := run(t, Catalog{"D": d}, "SELECT COUNT(*) FROM D WHERE x >= thresh",
		map[string]Value{"thresh": FloatVal(2)})
	if res.Rows[0][0].I != 2 {
		t.Fatalf("param count = %v", res.Rows[0][0])
	}
}

func TestScalarSubquery(t *testing.T) {
	d := pointsTable([]geom.Point2{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 5, Y: 5}})
	// Points whose dominator count (strict) is < 1, i.e. the skyline.
	res := run(t, Catalog{"D": d},
		`SELECT id FROM D o WHERE
		   (SELECT COUNT(*) FROM D WHERE x >= o.x AND y >= o.y AND (x > o.x OR y > o.y)) < 1`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("skyline = %v", res.Rows)
	}
}

func TestExistsSubquery(t *testing.T) {
	d := pointsTable([]geom.Point2{{X: 1, Y: 1}, {X: 2, Y: 2}})
	res := run(t, Catalog{"D": d},
		"SELECT id FROM D o WHERE EXISTS (SELECT id FROM D WHERE x > o.x)", nil)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("exists = %v", res.Rows)
	}
}

func TestExample2FullQuery(t *testing.T) {
	// The paper's Example 2 self-join form, validated against the
	// specialized dominance counter on random data.
	r := xrand.New(42)
	pts := make([]geom.Point2, 60)
	for i := range pts {
		pts[i] = geom.Point2{X: float64(r.IntN(12)), Y: float64(r.IntN(12))}
	}
	d := pointsTable(pts)
	for _, k := range []int{1, 3, 8} {
		want := geom.SkybandSize(pts, k)
		ev := NewEvaluator(Catalog{"D": d})
		ev.SetParam("k", IntVal(int64(k)))
		got, err := ev.CountQuery(mustParse(t, `
			SELECT COUNT(*) FROM
			  (SELECT o1.id FROM D o1, D o2
			   WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
			   GROUP BY o1.id HAVING COUNT(*) < k) s`))
		if err != nil {
			t.Fatal(err)
		}
		// The self-join form counts only points with ≥1 dominator group
		// member... actually groups with zero joined rows vanish, so the
		// skyband points with zero dominators are NOT in the join result.
		// The standard fix counts them separately; verify the relationship:
		// join-form count = |{o : 1 <= dom(o) < k}|.
		counts := geom.DominanceCounts(pts)
		wantJoin := 0
		for _, c := range counts {
			if c >= 1 && c < k {
				wantJoin++
			}
		}
		if got != wantJoin {
			t.Fatalf("k=%d: join-form count = %d, want %d (full skyband %d)", k, got, wantJoin, want)
		}
	}
}

func TestExample2PredicateForm(t *testing.T) {
	// The predicate form (Example 2's q(o)) counts the full skyband,
	// including zero-dominator points.
	r := xrand.New(43)
	pts := make([]geom.Point2, 50)
	for i := range pts {
		pts[i] = geom.Point2{X: float64(r.IntN(10)), Y: float64(r.IntN(10))}
	}
	d := pointsTable(pts)
	for _, k := range []int{1, 2, 5} {
		ev := NewEvaluator(Catalog{"D": d})
		ev.SetParam("k", IntVal(int64(k)))
		res, err := ev.Run(mustParse(t, `
			SELECT COUNT(*) FROM D o WHERE
			  (SELECT COUNT(*) FROM D WHERE x >= o.x AND y >= o.y AND (x > o.x OR y > o.y)) < k`), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.ScalarInt()
		if err != nil {
			t.Fatal(err)
		}
		if want := geom.SkybandSize(pts, k); int(got) != want {
			t.Fatalf("k=%d: predicate-form count = %d, want %d", k, got, want)
		}
	}
}

func TestExample1NeighborQuery(t *testing.T) {
	// Example 1: count points with at most k neighbors within distance d,
	// validated against the kd-tree.
	r := xrand.New(44)
	pts := make([]geom.Point2, 40)
	coords := make([][]float64, 40)
	for i := range pts {
		pts[i] = geom.Point2{X: r.Float64() * 10, Y: r.Float64() * 10}
		coords[i] = []float64{pts[i].X, pts[i].Y}
	}
	tree := geom.NewKDTree(coords)
	d := pointsTable(pts)
	dist, k := 2.0, 3
	want := 0
	for i := range coords {
		if tree.CountWithin(coords[i], dist) <= k {
			want++
		}
	}
	ev := NewEvaluator(Catalog{"D": d})
	ev.SetParam("d", FloatVal(dist))
	ev.SetParam("k", IntVal(int64(k)))
	res, err := ev.Run(mustParse(t, `
		SELECT COUNT(*) FROM D o WHERE
		  (SELECT COUNT(*) FROM D WHERE SQRT(POWER(o.x - x, 2) + POWER(o.y - y, 2)) <= d) <= k`), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.ScalarInt()
	if err != nil {
		t.Fatal(err)
	}
	if int(got) != want {
		t.Fatalf("neighbor count = %d, want %d", got, want)
	}
}

func TestDerivedTable(t *testing.T) {
	d := pointsTable([]geom.Point2{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}})
	res := run(t, Catalog{"D": d},
		"SELECT COUNT(*) FROM (SELECT id FROM D WHERE x > 1) s", nil)
	if res.Rows[0][0].I != 2 {
		t.Fatalf("derived count = %v", res.Rows[0][0])
	}
}

func TestErrors(t *testing.T) {
	d := pointsTable([]geom.Point2{{X: 1, Y: 1}})
	cat := Catalog{"D": d}
	bad := []string{
		"SELECT nope FROM D",
		"SELECT x FROM Unknown",
		"SELECT o.nope FROM D o",
		"SELECT x FROM D HAVING x > 1",
		"SELECT SUM(x) FROM D WHERE SUM(x) > 0",
		"SELECT x / 0 FROM D",
		"SELECT SQRT(0 - 1) FROM D",
		"SELECT UNKNOWNFUNC(x) FROM D",
		"SELECT x FROM D WHERE x",
		"SELECT NOT x FROM D",
		"SELECT x FROM D WHERE x = 'str'",
		"SELECT (SELECT id, x FROM D) FROM D",
	}
	for _, q := range bad {
		ev := NewEvaluator(cat)
		if _, err := ev.Run(mustParse(t, q), nil); err == nil {
			t.Fatalf("expected error for %q", q)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	d := pointsTable([]geom.Point2{{X: 1, Y: 1}})
	ev := NewEvaluator(Catalog{"D": d})
	if _, err := ev.Run(mustParse(t, "SELECT x FROM D a, D b"), nil); err == nil {
		t.Fatal("ambiguous column should error")
	}
}

func TestScalarSubqueryMultiRow(t *testing.T) {
	d := pointsTable([]geom.Point2{{X: 1, Y: 1}, {X: 2, Y: 2}})
	ev := NewEvaluator(Catalog{"D": d})
	if _, err := ev.Run(mustParse(t, "SELECT (SELECT id FROM D) FROM D"), nil); err == nil {
		t.Fatal("multi-row scalar subquery should error")
	}
}

func TestStatsCounters(t *testing.T) {
	d := pointsTable([]geom.Point2{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}})
	ev := NewEvaluator(Catalog{"D": d})
	if _, err := ev.Run(mustParse(t, "SELECT id FROM D o WHERE EXISTS (SELECT id FROM D WHERE x > o.x)"), nil); err != nil {
		t.Fatal(err)
	}
	if ev.Stats.SubqueryRuns != 3 {
		t.Fatalf("SubqueryRuns = %d, want 3", ev.Stats.SubqueryRuns)
	}
	if ev.Stats.RowsScanned < 9 {
		t.Fatalf("RowsScanned = %d, want >= 9", ev.Stats.RowsScanned)
	}
}

func TestDecomposeExample2(t *testing.T) {
	r := xrand.New(45)
	pts := make([]geom.Point2, 50)
	for i := range pts {
		pts[i] = geom.Point2{X: float64(r.IntN(9)), Y: float64(r.IntN(9))}
	}
	d := pointsTable(pts)
	stmt := mustParse(t, `
		SELECT o1.id FROM D o1, D o2
		WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
		GROUP BY o1.id HAVING COUNT(*) < k`)
	dec, err := Decompose(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Objects.Distinct || len(dec.Objects.Select) != 1 {
		t.Fatalf("Q2 malformed: %s", dec.Objects.String())
	}
	ev := NewEvaluator(Catalog{"D": d})
	ev.SetParam("k", IntVal(3))

	objects, err := ev.Run(dec.Objects, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(objects.Rows) != len(pts) {
		t.Fatalf("|O| = %d, want %d", len(objects.Rows), len(pts))
	}

	pred := ev.ObjectPredicate(dec, objects)
	got := 0
	for i := range objects.Rows {
		ok, err := pred(i)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			got++
		}
	}
	// Full-query ground truth.
	want, err := ev.CountQuery(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("decomposed count = %d, full count = %d", got, want)
	}
}

func TestDecomposeWithThetaL(t *testing.T) {
	// θL (x > 0 on the grouped table) must move to Q2 and stay in Q3.
	stmt := mustParse(t, `
		SELECT o1.id FROM D o1, D o2
		WHERE o1.x > 0 AND o2.x >= o1.x
		GROUP BY o1.id HAVING COUNT(*) < 5`)
	dec, err := Decompose(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Objects.Where == nil {
		t.Fatal("θL should appear in Q2")
	}
	q2s := dec.Objects.String()
	if want := "SELECT DISTINCT o1.id AS id FROM D o1 WHERE (o1.x > 0)"; q2s != want {
		t.Fatalf("Q2 = %s, want %s", q2s, want)
	}
}

func TestDecomposeErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT id FROM D",                        // no GROUP BY
		"SELECT x + 1 FROM D GROUP BY x + 1",      // non-column group
		"SELECT id FROM D a, D b GROUP BY id",     // ambiguous unqualified
		"SELECT q.id FROM D a, D b GROUP BY q.id", // unknown alias
	} {
		stmt := mustParse(t, q)
		if _, err := Decompose(stmt); err == nil {
			t.Fatalf("expected decompose error for %q", q)
		}
	}
}

func TestDecomposeUnqualifiedSingleTable(t *testing.T) {
	tb := dataset.New("t", dataset.Schema{
		{Name: "g", Kind: dataset.Int},
		{Name: "v", Kind: dataset.Float},
	})
	for i := 0; i < 10; i++ {
		tb.MustAppendRow(int64(i%3), float64(i))
	}
	stmt := mustParse(t, "SELECT g FROM t GROUP BY g HAVING SUM(v) > 10")
	dec, err := Decompose(stmt)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(Catalog{"t": tb})
	objects, err := ev.Run(dec.Objects, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(objects.Rows) != 3 {
		t.Fatalf("objects = %d, want 3", len(objects.Rows))
	}
	pred := ev.ObjectPredicate(dec, objects)
	got := 0
	for i := range objects.Rows {
		ok, err := pred(i)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			got++
		}
	}
	want, err := ev.CountQuery(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestExtractInner(t *testing.T) {
	outer := mustParse(t, "SELECT COUNT(*) FROM (SELECT id FROM D GROUP BY id HAVING COUNT(*) < 3) s")
	inner := ExtractInner(outer)
	if len(inner.GroupBy) != 1 {
		t.Fatalf("inner not extracted: %s", inner.String())
	}
	plain := mustParse(t, "SELECT id FROM D")
	if ExtractInner(plain) != plain {
		t.Fatal("non-count query should be unchanged")
	}
}

func TestValueHelpers(t *testing.T) {
	if v, err := IntVal(3).AsFloat(); err != nil || v != 3 {
		t.Fatal("IntVal.AsFloat")
	}
	if _, err := StringVal("x").AsFloat(); err == nil {
		t.Fatal("string AsFloat should error")
	}
	if _, err := IntVal(1).AsBool(); err == nil {
		t.Fatal("int AsBool should error")
	}
	if Null.String() != "NULL" || BoolVal(true).String() != "TRUE" {
		t.Fatal("String rendering")
	}
	if c, _ := compare(IntVal(2), FloatVal(2.0)); c != 0 {
		t.Fatal("mixed numeric compare")
	}
	if _, err := compare(IntVal(1), StringVal("a")); err == nil {
		t.Fatal("int vs string should error")
	}
	if c, _ := compare(BoolVal(false), BoolVal(true)); c != -1 {
		t.Fatal("bool compare")
	}
	if c, _ := compare(StringVal("a"), StringVal("b")); c != -1 {
		t.Fatal("string compare")
	}
}

func BenchmarkExample2FullQuery(b *testing.B) {
	r := xrand.New(46)
	pts := make([]geom.Point2, 200)
	for i := range pts {
		pts[i] = geom.Point2{X: r.Float64() * 100, Y: r.Float64() * 100}
	}
	d := pointsTable(pts)
	stmt, err := sql.Parse(`
		SELECT COUNT(*) FROM
		  (SELECT o1.id FROM D o1, D o2
		   WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
		   GROUP BY o1.id HAVING COUNT(*) < 10) s`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := NewEvaluator(Catalog{"D": d})
		if _, err := ev.CountQuery(stmt); err != nil {
			b.Fatal(err)
		}
	}
}
