package engine

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/sql"
)

// FeatureColumns returns the column names referenced through any of the
// given aliases anywhere in e, including inside subquery bodies,
// deduplicated in first-reference order. Passing "" as one of the aliases
// also collects unqualified references (useful when the whole FROM clause
// is the object table, so bare names can only mean object attributes — or
// free query parameters, which callers filter out afterwards).
//
// Applied to a counting query's predicate with the object-side aliases,
// this is the paper's feature-selection heuristic: the classifier learns
// over exactly the object attributes the expensive predicate reads.
//
// Scoping: qualified references are collected at any depth — a predicate's
// cost usually lives in a correlated aggregate subquery, and the object
// columns it correlates on (o.x, o.y) appear only inside that body (which
// is why sql.WalkExpr, stopping at subquery boundaries, is not used for
// them). Unqualified references, by contrast, are collected only OUTSIDE
// subquery bodies: inside one, a bare name resolves to the subquery's own
// FROM first, so it cannot be assumed to name an object attribute.
func FeatureColumns(e sql.Expr, aliases ...string) []string {
	want := make(map[string]bool, len(aliases))
	for _, a := range aliases {
		want[a] = true
	}
	var out []string
	seen := make(map[string]bool)
	collect := func(c *sql.ColumnRef, topLevel bool) {
		if c.Qualifier == "" && !topLevel {
			return
		}
		if want[c.Qualifier] && !seen[c.Name] {
			seen[c.Name] = true
			out = append(out, c.Name)
		}
	}
	var walkExpr func(x sql.Expr, topLevel bool)
	walkExpr = func(x sql.Expr, topLevel bool) {
		switch v := x.(type) {
		case nil:
		case *sql.ColumnRef:
			collect(v, topLevel)
		case *sql.BinaryExpr:
			walkExpr(v.L, topLevel)
			walkExpr(v.R, topLevel)
		case *sql.UnaryExpr:
			walkExpr(v.X, topLevel)
		case *sql.FuncCall:
			for _, a := range v.Args {
				walkExpr(a, topLevel)
			}
		case *sql.SubqueryExpr:
			// Everything below is inside another scope: qualified refs
			// still matter (correlation), unqualified ones do not.
			sql.WalkStmtDeep(v.Query, func(se sql.Expr) {
				if c, ok := se.(*sql.ColumnRef); ok {
					collect(c, false)
				}
			}, nil)
		}
	}
	walkExpr(e, true)
	return out
}

// NumericFeatureColumns narrows candidate feature columns to the ones that
// can feed a classifier over table t. Resolution mirrors the evaluator's:
// a name that is a column of t is always a column (params never shadow
// columns in Scope.resolve), so skip — typically the query's free
// parameters — only excuses names that are NOT columns; string-typed
// columns are dropped; and a name that is neither a column nor skippable
// is an error. An empty result is also an error — a learned method with a
// zero-width feature matrix would silently degenerate to random sampling,
// which callers should decide about explicitly.
func NumericFeatureColumns(t *dataset.Table, candidates []string, skip map[string]bool) ([]string, error) {
	var cols []string
	for _, name := range candidates {
		i := t.ColIndex(name)
		if i < 0 {
			if skip[name] {
				continue
			}
			return nil, fmt.Errorf("engine: predicate references %q, which is neither a column of %q nor a bound parameter", name, t.Name)
		}
		if t.Schema()[i].Kind != dataset.String {
			cols = append(cols, name)
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("engine: predicate references no numeric columns of %q", t.Name)
	}
	return cols, nil
}
