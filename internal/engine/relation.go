package engine

import (
	"fmt"

	"repro/internal/dataset"
)

// Relation is a read-only rowset: either a base table or a materialized
// intermediate result.
type Relation interface {
	NumRows() int
	Columns() []string
	ColIndex(name string) int
	Value(row, col int) Value
}

// tableRel adapts a dataset.Table to Relation.
type tableRel struct {
	t    *dataset.Table
	cols []string
}

// NewTableRelation wraps a dataset table as a Relation.
func NewTableRelation(t *dataset.Table) Relation {
	cols := make([]string, t.NumCols())
	for i, c := range t.Schema() {
		cols[i] = c.Name
	}
	return &tableRel{t: t, cols: cols}
}

func (r *tableRel) NumRows() int      { return r.t.NumRows() }
func (r *tableRel) Columns() []string { return r.cols }
func (r *tableRel) ColIndex(name string) int {
	return r.t.ColIndex(name)
}
func (r *tableRel) Value(row, col int) Value {
	switch r.t.Schema()[col].Kind {
	case dataset.Float:
		return FloatVal(r.t.Float(row, col))
	case dataset.Int:
		return IntVal(r.t.Int(row, col))
	default:
		return StringVal(r.t.Str(row, col))
	}
}

// ResultSet is a fully materialized query result.
type ResultSet struct {
	Cols []string
	Rows [][]Value
}

// NumRows returns the number of rows.
func (r *ResultSet) NumRows() int { return len(r.Rows) }

// Columns returns the output column names.
func (r *ResultSet) Columns() []string { return r.Cols }

// ColIndex returns the position of the named column, or -1.
func (r *ResultSet) ColIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Value returns the value at (row, col).
func (r *ResultSet) Value(row, col int) Value { return r.Rows[row][col] }

// ScalarInt returns the single value of a 1×1 result as an int64
// (useful for COUNT queries).
func (r *ResultSet) ScalarInt() (int64, error) {
	if len(r.Rows) != 1 || len(r.Cols) != 1 {
		return 0, fmt.Errorf("engine: result is %dx%d, not scalar", len(r.Rows), len(r.Cols))
	}
	v := r.Rows[0][0]
	switch v.Kind {
	case KInt:
		return v.I, nil
	case KFloat:
		return int64(v.F), nil
	default:
		return 0, fmt.Errorf("engine: scalar %s is not numeric", v)
	}
}

// Catalog maps table names to base tables.
type Catalog map[string]*dataset.Table

// binding associates an alias with one current row of a relation.
type binding struct {
	name string
	rel  Relation
	row  int
}

// Scope is a chain of row bindings; inner scopes shadow outer ones, which is
// how correlated subqueries see the outer query's current row.
type Scope struct {
	parent   *Scope
	bindings []*binding
}

// NewScope returns a scope with parent as enclosing scope.
func NewScope(parent *Scope) *Scope { return &Scope{parent: parent} }

// Bind adds an alias binding and returns the binding handle so the executor
// can advance its row cursor.
func (s *Scope) Bind(name string, rel Relation) *binding {
	b := &binding{name: name, rel: rel}
	s.bindings = append(s.bindings, b)
	return b
}

// BindRow adds an alias binding fixed at a specific row (used to bind the
// decomposed object alias).
func (s *Scope) BindRow(name string, rel Relation, row int) {
	s.bindings = append(s.bindings, &binding{name: name, rel: rel, row: row})
}

// resolve finds the value of a (possibly qualified) column reference.
func (s *Scope) resolve(qualifier, name string) (Value, bool, error) {
	for sc := s; sc != nil; sc = sc.parent {
		if qualifier != "" {
			for _, b := range sc.bindings {
				if b.name == qualifier {
					ci := b.rel.ColIndex(name)
					if ci < 0 {
						return Null, false, fmt.Errorf("engine: table %q has no column %q", qualifier, name)
					}
					return b.rel.Value(b.row, ci), true, nil
				}
			}
			continue
		}
		// Unqualified: must be unique among bindings at this level.
		var found *binding
		ci := -1
		for _, b := range sc.bindings {
			if j := b.rel.ColIndex(name); j >= 0 {
				if found != nil {
					return Null, false, fmt.Errorf("engine: ambiguous column %q", name)
				}
				found, ci = b, j
			}
		}
		if found != nil {
			return found.rel.Value(found.row, ci), true, nil
		}
	}
	return Null, false, nil
}
