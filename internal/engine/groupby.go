package engine

import (
	"fmt"

	"repro/internal/sql"
)

// GroupedDecomposed extends the §2 decomposition to GROUP BY counting
// queries of the form
//
//	SELECT g1, ..., gm, COUNT(*) FROM (Q1) GROUP BY g1, ..., gm
//
// where Q1 is the usual object-enumeration query whose GROUP BY carries
// both the object identity (e.g. an id column) and the grouping columns.
// The inner statement decomposes exactly as before — one Q2 enumerating
// objects, one Q3 predicate — and the grouping columns are simply a cheap
// projection of each Q2 row. Counting per group therefore shares one
// sampling/learning plan across all groups: each sampled object is labeled
// once with the expensive predicate and attributed to its group by reading
// the already-materialized group columns.
type GroupedDecomposed struct {
	*Decomposed

	// GroupNames are the outer grouping column names in outer GROUP BY
	// order; they are a subset of Decomposed.GroupCols.
	GroupNames []string
	// GroupIdx are the positions of GroupNames in each Q2 output row.
	GroupIdx []int
	// KeyIdx are the positions of the remaining (object-identity) columns
	// of the inner GROUP BY in each Q2 output row.
	KeyIdx []int
}

// ExtractGroups recognizes the grouped counting form
//
//	SELECT g1, ..., gm, COUNT(*) FROM (inner) GROUP BY g1, ..., gm
//
// and returns the inner statement plus the outer grouping column names in
// GROUP BY order. For any other statement it returns (nil, nil, nil): the
// query is not grouped (callers fall back to ExtractInner). A statement
// that clearly attempts the grouped form but violates its constraints
// (extra aggregates, WHERE/HAVING/LIMIT on the outer block, group columns
// missing from the select list) returns an error instead, so the mistake
// surfaces rather than silently estimating a different query.
func ExtractGroups(stmt *sql.SelectStmt) (*sql.SelectStmt, []string, error) {
	if len(stmt.GroupBy) == 0 || len(stmt.From) != 1 || stmt.From[0].Subquery == nil {
		return nil, nil, nil
	}
	// An outer block grouping over a derived table is the grouped form;
	// everything below is validation, not detection.
	sub := stmt.From[0].Subquery
	subAlias := stmt.From[0].BindName()
	if stmt.Where != nil || stmt.Having != nil || stmt.HasLimit || stmt.Distinct || len(stmt.OrderBy) > 0 {
		return nil, nil, fmt.Errorf("engine: grouped counting supports only SELECT groups, COUNT(*) FROM (...) GROUP BY groups (no outer WHERE/HAVING/ORDER BY/LIMIT/DISTINCT)")
	}

	groupName := func(e sql.Expr) (string, error) {
		cr, ok := e.(*sql.ColumnRef)
		if !ok {
			return "", fmt.Errorf("engine: outer GROUP BY expression %s is not a column", e.String())
		}
		if cr.Qualifier != "" && cr.Qualifier != subAlias {
			return "", fmt.Errorf("engine: outer GROUP BY column %s references unknown alias %q", cr.String(), cr.Qualifier)
		}
		return cr.Name, nil
	}

	var names []string
	seen := make(map[string]bool)
	for _, g := range stmt.GroupBy {
		name, err := groupName(g)
		if err != nil {
			return nil, nil, err
		}
		if seen[name] {
			return nil, nil, fmt.Errorf("engine: duplicate outer GROUP BY column %q", name)
		}
		seen[name] = true
		names = append(names, name)
	}

	// The select list must be exactly the grouping columns (any order,
	// aliases allowed) plus one COUNT(*).
	counts := 0
	selected := make(map[string]bool)
	for _, it := range stmt.Select {
		if it.Star {
			return nil, nil, fmt.Errorf("engine: grouped counting does not allow * in the outer select list")
		}
		switch e := it.Expr.(type) {
		case *sql.FuncCall:
			if e.Name != "COUNT" || !e.Star {
				return nil, nil, fmt.Errorf("engine: grouped counting allows only COUNT(*) as the outer aggregate, got %s", e.String())
			}
			counts++
		case *sql.ColumnRef:
			name, err := groupName(e)
			if err != nil {
				return nil, nil, err
			}
			if !seen[name] {
				return nil, nil, fmt.Errorf("engine: outer select column %q is not in GROUP BY", name)
			}
			selected[name] = true
		default:
			return nil, nil, fmt.Errorf("engine: unsupported outer select expression %s", it.Expr.String())
		}
	}
	if counts != 1 {
		return nil, nil, fmt.Errorf("engine: grouped counting wants exactly one COUNT(*) in the outer select list, got %d", counts)
	}
	for _, name := range names {
		if !selected[name] {
			return nil, nil, fmt.Errorf("engine: GROUP BY column %q is missing from the outer select list", name)
		}
	}
	return sub, names, nil
}

// DecomposeGrouped rewrites a grouped counting query — already split by
// ExtractGroups into its inner statement and outer grouping column names —
// into the shared-plan decomposition: the inner statement's §2
// decomposition plus the positions of the grouping and object-identity
// columns within each Q2 row. The inner GROUP BY must contain every outer
// grouping column (matched by Q2 output name) and at least one additional
// object-identity column.
func DecomposeGrouped(inner *sql.SelectStmt, names []string) (*GroupedDecomposed, error) {
	if inner == nil || len(names) == 0 {
		return nil, fmt.Errorf("engine: statement is not a grouped counting query")
	}
	dec, err := Decompose(inner)
	if err != nil {
		return nil, err
	}
	pos := make(map[string]int, len(dec.GroupCols))
	for i, c := range dec.GroupCols {
		pos[c] = i
	}
	g := &GroupedDecomposed{Decomposed: dec, GroupNames: names}
	isGroup := make([]bool, len(dec.GroupCols))
	for _, name := range names {
		i, ok := pos[name]
		if !ok {
			return nil, fmt.Errorf("engine: outer GROUP BY column %q is not produced by the inner GROUP BY (inner columns: %v)", name, dec.GroupCols)
		}
		isGroup[i] = true
		g.GroupIdx = append(g.GroupIdx, i)
	}
	for i := range dec.GroupCols {
		if !isGroup[i] {
			g.KeyIdx = append(g.KeyIdx, i)
		}
	}
	if len(g.KeyIdx) == 0 {
		return nil, fmt.Errorf("engine: the inner GROUP BY needs an object-identity column beyond the grouping columns %v", names)
	}
	return g, nil
}

// GroupLabels assigns each Q2 object row to a dense group index by its
// grouping-column tuple, in first-appearance order (Q2's row order is
// deterministic, so the assignment is too). It returns the per-object group
// indices and, per group, the rendered column values of its key.
func (g *GroupedDecomposed) GroupLabels(objects *ResultSet) (groupOf []int, keys [][]Value) {
	groupOf = make([]int, objects.NumRows())
	byKey := make(map[string]int)
	for i := 0; i < objects.NumRows(); i++ {
		tuple := make([]Value, len(g.GroupIdx))
		for j, c := range g.GroupIdx {
			tuple[j] = objects.Value(i, c)
		}
		k := rowKey(tuple)
		id, ok := byKey[k]
		if !ok {
			id = len(keys)
			byKey[k] = id
			keys = append(keys, tuple)
		}
		groupOf[i] = id
	}
	return groupOf, keys
}
