package engine

import (
	"strings"
	"testing"

	"repro/internal/sql"
)

const groupedSQL = `
	SELECT region, COUNT(*) FROM (
		SELECT o1.id, o1.region FROM D o1, D o2
		WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
		GROUP BY o1.id, o1.region HAVING COUNT(*) < k
	) GROUP BY region`

func TestExtractGroupsDetects(t *testing.T) {
	stmt, err := sql.Parse(groupedSQL)
	if err != nil {
		t.Fatal(err)
	}
	inner, names, err := ExtractGroups(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if inner == nil {
		t.Fatal("grouped form not detected")
	}
	if len(names) != 1 || names[0] != "region" {
		t.Fatalf("group names = %v, want [region]", names)
	}
	if len(inner.GroupBy) != 2 {
		t.Fatalf("inner GROUP BY has %d columns, want 2", len(inner.GroupBy))
	}
}

func TestExtractGroupsIgnoresPlainForms(t *testing.T) {
	for _, q := range []string{
		`SELECT COUNT(*) FROM (SELECT o.id FROM D o GROUP BY o.id HAVING COUNT(*) < 3)`,
		`SELECT o.id FROM D o GROUP BY o.id HAVING COUNT(*) < 3`,
	} {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		inner, names, err := ExtractGroups(stmt)
		if err != nil || inner != nil || names != nil {
			t.Fatalf("%s: ExtractGroups = (%v, %v, %v), want not-grouped", q, inner, names, err)
		}
	}
}

func TestExtractGroupsRejectsMalformed(t *testing.T) {
	inner := `(SELECT o.id, o.region FROM D o GROUP BY o.id, o.region HAVING COUNT(*) < 3)`
	for _, tc := range []struct{ q, wantErr string }{
		{`SELECT region, COUNT(*) FROM ` + inner + ` GROUP BY region LIMIT 3`, "no outer WHERE"},
		{`SELECT region, COUNT(*) FROM ` + inner + ` WHERE region > 1 GROUP BY region`, "no outer WHERE"},
		{`SELECT region, SUM(region) FROM ` + inner + ` GROUP BY region`, "only COUNT(*)"},
		{`SELECT region FROM ` + inner + ` GROUP BY region`, "exactly one COUNT(*)"},
		{`SELECT COUNT(*) FROM ` + inner + ` GROUP BY region`, "missing from the outer select"},
		{`SELECT region, tier, COUNT(*) FROM ` + inner + ` GROUP BY region`, "not in GROUP BY"},
		{`SELECT x.region, COUNT(*) FROM ` + inner + ` sub GROUP BY x.region`, "unknown alias"},
	} {
		stmt, err := sql.Parse(tc.q)
		if err != nil {
			t.Fatalf("parse %s: %v", tc.q, err)
		}
		_, _, err = ExtractGroups(stmt)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.q, err, tc.wantErr)
		}
	}
}

// decomposeGrouped is the test shorthand for the two-step
// ExtractGroups → DecomposeGrouped pipeline Prepare runs.
func decomposeGrouped(t *testing.T, stmt *sql.SelectStmt) (*GroupedDecomposed, error) {
	t.Helper()
	inner, names, err := ExtractGroups(stmt)
	if err != nil {
		t.Fatal(err)
	}
	return DecomposeGrouped(inner, names)
}

func TestDecomposeGrouped(t *testing.T) {
	stmt, err := sql.Parse(groupedSQL)
	if err != nil {
		t.Fatal(err)
	}
	g, err := decomposeGrouped(t, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.GroupNames; len(got) != 1 || got[0] != "region" {
		t.Fatalf("GroupNames = %v", got)
	}
	if len(g.KeyIdx) != 1 || g.GroupCols[g.KeyIdx[0]] != "id" {
		t.Fatalf("KeyIdx = %v over %v, want the id column", g.KeyIdx, g.GroupCols)
	}
	if len(g.GroupIdx) != 1 || g.GroupCols[g.GroupIdx[0]] != "region" {
		t.Fatalf("GroupIdx = %v over %v, want the region column", g.GroupIdx, g.GroupCols)
	}
	// The inner decomposition is the ordinary §2 rewriting: Q2 enumerates
	// (id, region) objects, Q3 is the per-object EXISTS predicate.
	if !strings.Contains(g.Objects.String(), "SELECT DISTINCT") {
		t.Fatalf("Q2 = %s", g.Objects.String())
	}
	if !strings.Contains(g.Predicate.String(), "EXISTS") {
		t.Fatalf("Q3 = %s", g.Predicate.String())
	}
}

func TestDecomposeGroupedMultiColumn(t *testing.T) {
	stmt, err := sql.Parse(`
		SELECT region, tier, COUNT(*) FROM (
			SELECT o.id, o.region, o.tier FROM D o
			GROUP BY o.id, o.region, o.tier HAVING COUNT(*) < 3
		) GROUP BY region, tier`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := decomposeGrouped(t, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.GroupIdx) != 2 || len(g.KeyIdx) != 1 {
		t.Fatalf("GroupIdx = %v KeyIdx = %v", g.GroupIdx, g.KeyIdx)
	}
}

func TestDecomposeGroupedNeedsIdentityColumn(t *testing.T) {
	stmt, err := sql.Parse(`
		SELECT region, COUNT(*) FROM (
			SELECT o.region FROM D o GROUP BY o.region HAVING COUNT(*) < 3
		) GROUP BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decomposeGrouped(t, stmt); err == nil ||
		!strings.Contains(err.Error(), "object-identity column") {
		t.Fatalf("err = %v, want object-identity complaint", err)
	}
}

func TestDecomposeGroupedUnknownGroupColumn(t *testing.T) {
	stmt, err := sql.Parse(`
		SELECT tier, COUNT(*) FROM (
			SELECT o.id, o.region FROM D o GROUP BY o.id, o.region HAVING COUNT(*) < 3
		) GROUP BY tier`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decomposeGrouped(t, stmt); err == nil ||
		!strings.Contains(err.Error(), "not produced by the inner GROUP BY") {
		t.Fatalf("err = %v, want inner-GROUP-BY complaint", err)
	}
}

func TestGroupLabels(t *testing.T) {
	g := &GroupedDecomposed{GroupIdx: []int{1}}
	rs := &ResultSet{
		Cols: []string{"id", "region"},
		Rows: [][]Value{
			{IntVal(1), StringVal("east")},
			{IntVal(2), StringVal("west")},
			{IntVal(3), StringVal("east")},
			{IntVal(4), StringVal("north")},
		},
	}
	groupOf, keys := g.GroupLabels(rs)
	want := []int{0, 1, 0, 2}
	for i, w := range want {
		if groupOf[i] != w {
			t.Fatalf("groupOf = %v, want %v", groupOf, want)
		}
	}
	if len(keys) != 3 || keys[0][0].S != "east" || keys[1][0].S != "west" || keys[2][0].S != "north" {
		t.Fatalf("keys = %v", keys)
	}
}
