package engine

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sql"
)

func TestFeatureColumnsDescendsIntoSubqueries(t *testing.T) {
	// Example 2's decomposed predicate: all _o references live inside the
	// correlated aggregate subquery body.
	e, err := sql.ParseExpr(
		"(SELECT COUNT(*) FROM D WHERE x >= _o.x AND y >= _o.y AND (x > _o.x OR y > _o.y)) < k")
	if err != nil {
		t.Fatal(err)
	}
	got := FeatureColumns(e, ObjectAlias)
	if want := []string{"x", "y"}; !reflect.DeepEqual(got, want) {
		t.Errorf("FeatureColumns = %v, want %v", got, want)
	}
}

func TestFeatureColumnsOrderDedupAndAliasFilter(t *testing.T) {
	e, err := sql.ParseExpr("_o.b > 1 AND other.a > _o.b AND _o.a < 2 AND EXISTS (SELECT id FROM D WHERE z = _o.c)")
	if err != nil {
		t.Fatal(err)
	}
	got := FeatureColumns(e, ObjectAlias)
	if want := []string{"b", "a", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("FeatureColumns = %v, want %v", got, want)
	}
}

func TestFeatureColumnsUnqualified(t *testing.T) {
	e := mustExpr(t, "x > 3 AND o.y < k AND z = 'a'")
	got := FeatureColumns(e, "o", "")
	if want := []string{"x", "y", "k", "z"}; !reflect.DeepEqual(got, want) {
		t.Errorf("FeatureColumns = %v, want %v", got, want)
	}
	// Without "", unqualified names are ignored.
	if got := FeatureColumns(e, "o"); !reflect.DeepEqual(got, []string{"y"}) {
		t.Errorf("FeatureColumns qualified-only = %v, want [y]", got)
	}
}

func TestFeatureColumnsUnqualifiedNotCollectedInSubqueries(t *testing.T) {
	// Inside a subquery, a bare name binds to the subquery's own FROM (w
	// is a column of E, not an object attribute); only qualified
	// correlation refs may be collected there.
	e := mustExpr(t, "EXISTS (SELECT w FROM E WHERE w > _o.x) AND y > 0")
	got := FeatureColumns(e, ObjectAlias, "")
	if want := []string{"x", "y"}; !reflect.DeepEqual(got, want) {
		t.Errorf("FeatureColumns = %v, want %v (w must not leak out of the subquery scope)", got, want)
	}
}

func TestDecomposeFeatureCols(t *testing.T) {
	// Example 2: object attributes are what the WHERE reads through the
	// grouped alias o1 — x and y, not the group key id.
	stmt, err := sql.Parse(`SELECT o1.id FROM D o1, D o2
		WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
		GROUP BY o1.id HAVING COUNT(*) < k`)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompose(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"x", "y"}; !reflect.DeepEqual(dec.FeatureCols, want) {
		t.Errorf("FeatureCols = %v, want %v", dec.FeatureCols, want)
	}
}

func TestDecomposeFeatureColsUnqualifiedAndParams(t *testing.T) {
	// Single-table FROM: unqualified WHERE references are candidate
	// features; the free parameter k survives as a candidate and is
	// dropped by NumericFeatureColumns via skip.
	stmt, err := sql.Parse("SELECT id FROM D WHERE x > k AND tag = 'a' GROUP BY id HAVING COUNT(*) > 0")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompose(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"x", "k", "tag"}; !reflect.DeepEqual(dec.FeatureCols, want) {
		t.Errorf("FeatureCols = %v, want %v", dec.FeatureCols, want)
	}

	tb := dataset.New("D", dataset.Schema{
		{Name: "id", Kind: dataset.Int},
		{Name: "x", Kind: dataset.Float},
		{Name: "tag", Kind: dataset.String},
	})
	tb.MustAppendRow(int64(0), 1.5, "a")
	cols, err := NumericFeatureColumns(tb, dec.FeatureCols, map[string]bool{"k": true})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"x"}; !reflect.DeepEqual(cols, want) {
		t.Errorf("NumericFeatureColumns = %v, want %v", cols, want)
	}
}

func TestNumericFeatureColumnsColumnsWinOverParams(t *testing.T) {
	// Scope.resolve prefers columns over parameters, so a parameter named
	// like a referenced column must not drop that column from the
	// features.
	tb := dataset.New("D", dataset.Schema{
		{Name: "x", Kind: dataset.Float},
		{Name: "y", Kind: dataset.Float},
	})
	tb.MustAppendRow(1.0, 2.0)
	cols, err := NumericFeatureColumns(tb, []string{"x", "y"}, map[string]bool{"x": true, "k": true})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"x", "y"}; !reflect.DeepEqual(cols, want) {
		t.Errorf("NumericFeatureColumns = %v, want %v (param must not shadow column)", cols, want)
	}
}

func TestNumericFeatureColumnsErrors(t *testing.T) {
	tb := dataset.New("D", dataset.Schema{
		{Name: "x", Kind: dataset.Float},
		{Name: "tag", Kind: dataset.String},
	})
	tb.MustAppendRow(1.5, "a")

	if _, err := NumericFeatureColumns(tb, []string{"tag"}, nil); err == nil {
		t.Error("want error when only string columns are referenced")
	}
	if _, err := NumericFeatureColumns(tb, []string{"missing", "x"}, nil); err == nil {
		t.Error("want error for unknown column")
	}
	if _, err := NumericFeatureColumns(tb, nil, nil); err == nil {
		t.Error("want error for empty candidate list")
	}
}

func mustExpr(t *testing.T, s string) sql.Expr {
	t.Helper()
	e, err := sql.ParseExpr(s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
