package engine

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/sql"
)

func valuesTable() *dataset.Table {
	tb := dataset.New("t", dataset.Schema{
		{Name: "grp", Kind: dataset.String},
		{Name: "v", Kind: dataset.Float},
	})
	tb.MustAppendRow("b", 3.0)
	tb.MustAppendRow("a", 1.0)
	tb.MustAppendRow("c", 2.0)
	tb.MustAppendRow("a", 5.0)
	return tb
}

func TestOrderByColumn(t *testing.T) {
	res := run(t, Catalog{"t": valuesTable()}, "SELECT grp, v FROM t ORDER BY v", nil)
	want := []float64{1, 2, 3, 5}
	for i, w := range want {
		if res.Rows[i][1].F != w {
			t.Fatalf("row %d = %v, want %v", i, res.Rows[i][1], w)
		}
	}
}

func TestOrderByDesc(t *testing.T) {
	res := run(t, Catalog{"t": valuesTable()}, "SELECT v FROM t ORDER BY v DESC", nil)
	want := []float64{5, 3, 2, 1}
	for i, w := range want {
		if res.Rows[i][0].F != w {
			t.Fatalf("row %d = %v, want %v", i, res.Rows[i][0], w)
		}
	}
}

func TestOrderByMultiKey(t *testing.T) {
	res := run(t, Catalog{"t": valuesTable()}, "SELECT grp, v FROM t ORDER BY grp ASC, v DESC", nil)
	// Groups a(5,1), b(3), c(2).
	wantGrp := []string{"a", "a", "b", "c"}
	wantV := []float64{5, 1, 3, 2}
	for i := range wantGrp {
		if res.Rows[i][0].S != wantGrp[i] || res.Rows[i][1].F != wantV[i] {
			t.Fatalf("row %d = %v", i, res.Rows[i])
		}
	}
}

func TestOrderByPosition(t *testing.T) {
	res := run(t, Catalog{"t": valuesTable()}, "SELECT grp, v FROM t ORDER BY 2", nil)
	if res.Rows[0][1].F != 1 || res.Rows[3][1].F != 5 {
		t.Fatalf("positional order wrong: %v", res.Rows)
	}
}

func TestOrderByAggregateAlias(t *testing.T) {
	res := run(t, Catalog{"t": valuesTable()},
		"SELECT grp, SUM(v) AS total FROM t GROUP BY grp ORDER BY total DESC", nil)
	if res.Rows[0][0].S != "a" || res.Rows[0][1].F != 6 {
		t.Fatalf("top group = %v", res.Rows[0])
	}
	if res.Rows[2][0].S != "c" {
		t.Fatalf("bottom group = %v", res.Rows[2])
	}
}

func TestLimit(t *testing.T) {
	res := run(t, Catalog{"t": valuesTable()}, "SELECT v FROM t ORDER BY v LIMIT 2", nil)
	if len(res.Rows) != 2 || res.Rows[0][0].F != 1 || res.Rows[1][0].F != 2 {
		t.Fatalf("limit rows = %v", res.Rows)
	}
	res = run(t, Catalog{"t": valuesTable()}, "SELECT v FROM t LIMIT 0", nil)
	if len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 rows = %d", len(res.Rows))
	}
	res = run(t, Catalog{"t": valuesTable()}, "SELECT v FROM t LIMIT 100", nil)
	if len(res.Rows) != 4 {
		t.Fatalf("oversized limit rows = %d", len(res.Rows))
	}
}

func TestOrderByErrors(t *testing.T) {
	ev := NewEvaluator(Catalog{"t": valuesTable()})
	for _, q := range []string{
		"SELECT v FROM t ORDER BY nope",
		"SELECT v FROM t ORDER BY 5",
		"SELECT v FROM t ORDER BY v + 1",
	} {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := ev.Run(stmt, nil); err == nil {
			t.Fatalf("expected error for %q", q)
		}
	}
}

func TestOrderLimitParseErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT v FROM t ORDER v",
		"SELECT v FROM t LIMIT abc",
		"SELECT v FROM t LIMIT 1.5",
	} {
		if _, err := sql.Parse(q); err == nil {
			t.Fatalf("expected parse error for %q", q)
		}
	}
}

func TestOrderLimitRoundTrip(t *testing.T) {
	q := "SELECT grp, SUM(v) AS total FROM t GROUP BY grp ORDER BY total DESC, grp LIMIT 3"
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	rendered := stmt.String()
	stmt2, err := sql.Parse(rendered)
	if err != nil {
		t.Fatalf("reparse %q: %v", rendered, err)
	}
	if stmt2.String() != rendered {
		t.Fatalf("round trip unstable: %s vs %s", rendered, stmt2.String())
	}
	if !stmt2.HasLimit || stmt2.Limit != 3 || len(stmt2.OrderBy) != 2 || !stmt2.OrderBy[0].Desc {
		t.Fatalf("order/limit lost: %+v", stmt2)
	}
}
