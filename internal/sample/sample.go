// Package sample provides the drawing primitives behind every estimator:
// simple random sampling without replacement (Floyd's algorithm),
// per-stratum draws for stratified sampling, and probability-proportional-
// to-size (PPS) sampling without replacement backed by a Fenwick tree —
// the draw-by-draw scheme the Des Raj estimator of §4.1 requires.
package sample

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// SRS returns n distinct indices drawn uniformly without replacement from
// [0, N), in random order. It panics if n > N or n < 0.
func SRS(r *xrand.Rand, N, n int) []int {
	if n < 0 || n > N {
		panic(fmt.Sprintf("sample: SRS(%d, %d) out of range", N, n))
	}
	// Floyd's algorithm: O(n) expected time, O(n) space.
	chosen := make(map[int]struct{}, n)
	out := make([]int, 0, n)
	for j := N - n; j < N; j++ {
		t := r.IntN(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Floyd's emits a uniformly random subset but in a biased order;
	// shuffle so callers may use prefix order.
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// SRSFrom draws n distinct elements from the given pool without
// replacement.
func SRSFrom(r *xrand.Rand, pool []int, n int) []int {
	idx := SRS(r, len(pool), n)
	out := make([]int, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// Weighted draws objects without replacement with probability proportional
// to their weights, using a Fenwick tree for O(log n) draws. InitialProb
// exposes the first-draw inclusion probability π(o) used by the Des Raj
// estimator.
type Weighted struct {
	tree      []float64
	weights   []float64
	remaining float64
	initial   float64
	n         int
	drawn     []bool
	numDrawn  int
}

// NewWeighted builds a sampler over the given nonnegative weights. At least
// one weight must be positive.
func NewWeighted(weights []float64) (*Weighted, error) {
	n := len(weights)
	w := &Weighted{
		tree:    make([]float64, n+1),
		weights: append([]float64(nil), weights...),
		n:       n,
		drawn:   make([]bool, n),
	}
	for i, wt := range weights {
		if wt < 0 || math.IsNaN(wt) || math.IsInf(wt, 0) {
			return nil, fmt.Errorf("sample: invalid weight %v at index %d", wt, i)
		}
		w.add(i, wt)
		w.initial += wt
	}
	if w.initial <= 0 {
		return nil, fmt.Errorf("sample: all weights are zero")
	}
	w.remaining = w.initial
	return w, nil
}

func (w *Weighted) add(i int, delta float64) {
	for i++; i <= w.n; i += i & (-i) {
		w.tree[i] += delta
	}
}

// findPrefix returns the smallest index whose cumulative weight exceeds
// target.
func (w *Weighted) findPrefix(target float64) int {
	pos := 0
	bit := 1
	for bit<<1 <= w.n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := pos + bit
		if next <= w.n && w.tree[next] <= target {
			target -= w.tree[next]
			pos = next
		}
	}
	return pos // 0-based index of first prefix > target
}

// Remaining returns the number of not-yet-drawn objects with positive
// weight... strictly, the count of undrawn objects (zero-weight objects are
// never drawn and do not count).
func (w *Weighted) Remaining() int {
	cnt := 0
	for i, wt := range w.weights {
		if !w.drawn[i] && wt > 0 {
			cnt++
		}
	}
	return cnt
}

// InitialProb returns the first-draw probability π(i) = w_i / Σw.
func (w *Weighted) InitialProb(i int) float64 {
	return w.weights[i] / w.initial
}

// Draw removes and returns one undrawn index, chosen with probability
// proportional to its weight among the remaining objects. It returns an
// error when no positive-weight object remains.
func (w *Weighted) Draw(r *xrand.Rand) (int, error) {
	if w.remaining <= 1e-12 || w.numDrawn == w.n {
		// Guard against float drift: verify nothing drawable remains.
		if w.Remaining() == 0 {
			return 0, fmt.Errorf("sample: weighted sampler exhausted")
		}
		w.rebuild()
	}
	target := r.Float64() * w.remaining
	idx := w.findPrefix(target)
	// Guard against numeric edge cases landing on a drawn/zero slot.
	if idx >= w.n || w.drawn[idx] || w.weights[idx] <= 0 {
		idx = -1
		for j := 0; j < w.n; j++ {
			if !w.drawn[j] && w.weights[j] > 0 {
				idx = j
				break
			}
		}
		if idx < 0 {
			return 0, fmt.Errorf("sample: weighted sampler exhausted")
		}
	}
	w.drawn[idx] = true
	w.numDrawn++
	w.add(idx, -w.weights[idx])
	w.remaining -= w.weights[idx]
	return idx, nil
}

// rebuild recomputes the tree from scratch to shed accumulated float error.
func (w *Weighted) rebuild() {
	for i := range w.tree {
		w.tree[i] = 0
	}
	w.remaining = 0
	for i, wt := range w.weights {
		if !w.drawn[i] && wt > 0 {
			w.add(i, wt)
			w.remaining += wt
		}
	}
}

// DrawN draws n objects without replacement, in order.
func (w *Weighted) DrawN(r *xrand.Rand, n int) ([]int, error) {
	out := make([]int, 0, n)
	for len(out) < n {
		i, err := w.Draw(r)
		if err != nil {
			return out, err
		}
		out = append(out, i)
	}
	return out, nil
}

// WithReplacement draws objects independently with probability proportional
// to fixed weights (PPS with replacement), feeding the Hansen-Hurwitz
// estimator. Draw cost is O(log n) via binary search over prefix sums.
type WithReplacement struct {
	prefix  []float64
	weights []float64
	total   float64
}

// NewWithReplacement builds a with-replacement sampler over nonnegative
// weights; at least one must be positive.
func NewWithReplacement(weights []float64) (*WithReplacement, error) {
	w := &WithReplacement{
		prefix:  make([]float64, len(weights)+1),
		weights: append([]float64(nil), weights...),
	}
	for i, wt := range weights {
		if wt < 0 || math.IsNaN(wt) || math.IsInf(wt, 0) {
			return nil, fmt.Errorf("sample: invalid weight %v at index %d", wt, i)
		}
		w.prefix[i+1] = w.prefix[i] + wt
	}
	w.total = w.prefix[len(weights)]
	if w.total <= 0 {
		return nil, fmt.Errorf("sample: all weights are zero")
	}
	return w, nil
}

// Prob returns the per-draw probability of index i.
func (w *WithReplacement) Prob(i int) float64 { return w.weights[i] / w.total }

// Draw returns one index with probability proportional to its weight.
func (w *WithReplacement) Draw(r *xrand.Rand) int {
	target := r.Float64() * w.total
	lo, hi := 0, len(w.prefix)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if w.prefix[mid] <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Guard: never return a zero-weight slot on boundary hits.
	for lo < len(w.weights) && w.weights[lo] == 0 {
		lo++
	}
	if lo >= len(w.weights) {
		for lo > 0 && w.weights[lo-1] == 0 {
			lo--
		}
		lo--
	}
	return lo
}

// Stratified draws allocation[h] objects uniformly without replacement from
// each stratum's index pool and returns the per-stratum samples.
func Stratified(r *xrand.Rand, strata [][]int, allocation []int) ([][]int, error) {
	if len(strata) != len(allocation) {
		return nil, fmt.Errorf("sample: %d strata but %d allocations", len(strata), len(allocation))
	}
	out := make([][]int, len(strata))
	for h, pool := range strata {
		nh := allocation[h]
		if nh > len(pool) {
			return nil, fmt.Errorf("sample: stratum %d allocated %d > size %d", h, nh, len(pool))
		}
		if nh < 0 {
			return nil, fmt.Errorf("sample: stratum %d has negative allocation %d", h, nh)
		}
		out[h] = SRSFrom(r, pool, nh)
	}
	return out, nil
}
