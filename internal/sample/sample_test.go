package sample

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestSRSDistinctAndInRange(t *testing.T) {
	r := xrand.New(1)
	for _, tc := range []struct{ N, n int }{{10, 0}, {10, 1}, {10, 10}, {1000, 37}} {
		got := SRS(r, tc.N, tc.n)
		if len(got) != tc.n {
			t.Fatalf("SRS(%d,%d) len = %d", tc.N, tc.n, len(got))
		}
		seen := make(map[int]bool)
		for _, v := range got {
			if v < 0 || v >= tc.N || seen[v] {
				t.Fatalf("SRS(%d,%d) invalid draw %d in %v", tc.N, tc.n, v, got)
			}
			seen[v] = true
		}
	}
}

func TestSRSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SRS(2,3) should panic")
		}
	}()
	SRS(xrand.New(1), 2, 3)
}

func TestSRSMarginalUniform(t *testing.T) {
	r := xrand.New(2)
	const N, n, trials = 20, 5, 40000
	counts := make([]int, N)
	for i := 0; i < trials; i++ {
		for _, v := range SRS(r, N, n) {
			counts[v]++
		}
	}
	want := float64(trials) * float64(n) / float64(N)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("index %d drawn %d times, want ~%v", i, c, want)
		}
	}
}

func TestSRSPrefixOrderUniform(t *testing.T) {
	// The first element of the returned order must also be uniform (callers
	// use prefixes of the sample).
	r := xrand.New(3)
	const N, trials = 10, 50000
	counts := make([]int, N)
	for i := 0; i < trials; i++ {
		counts[SRS(r, N, 4)[0]]++
	}
	want := float64(trials) / N
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("first-position count for %d is %d, want ~%v", i, c, want)
		}
	}
}

func TestSRSFrom(t *testing.T) {
	r := xrand.New(4)
	pool := []int{100, 200, 300, 400}
	got := SRSFrom(r, pool, 2)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	valid := map[int]bool{100: true, 200: true, 300: true, 400: true}
	if !valid[got[0]] || !valid[got[1]] || got[0] == got[1] {
		t.Fatalf("bad draw %v", got)
	}
}

func TestWeightedValidation(t *testing.T) {
	if _, err := NewWeighted([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights should error")
	}
	if _, err := NewWeighted([]float64{1, -1}); err == nil {
		t.Fatal("negative weight should error")
	}
	if _, err := NewWeighted([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN weight should error")
	}
	if _, err := NewWeighted([]float64{1, math.Inf(1)}); err == nil {
		t.Fatal("Inf weight should error")
	}
}

func TestWeightedDrawsAllExactlyOnce(t *testing.T) {
	r := xrand.New(5)
	weights := []float64{1, 2, 3, 4, 0, 5}
	w, err := NewWeighted(weights)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 5; i++ { // five positive weights
		idx, err := w.Draw(r)
		if err != nil {
			t.Fatal(err)
		}
		if seen[idx] {
			t.Fatalf("index %d drawn twice", idx)
		}
		if idx == 4 {
			t.Fatal("zero-weight index drawn")
		}
		seen[idx] = true
	}
	if _, err := w.Draw(r); err == nil {
		t.Fatal("exhausted sampler should error")
	}
}

func TestWeightedFirstDrawMarginals(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	const trials = 60000
	counts := make([]int, len(weights))
	r := xrand.New(6)
	for i := 0; i < trials; i++ {
		w, err := NewWeighted(weights)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := w.Draw(r)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	total := 10.0
	for i, c := range counts {
		want := float64(trials) * weights[i] / total
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("index %d drawn %d, want ~%v", i, c, want)
		}
	}
}

func TestWeightedInitialProb(t *testing.T) {
	w, err := NewWeighted([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p := w.InitialProb(0); math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("InitialProb(0) = %v", p)
	}
	if p := w.InitialProb(1); math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("InitialProb(1) = %v", p)
	}
}

func TestWeightedDrawN(t *testing.T) {
	r := xrand.New(7)
	w, err := NewWeighted([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.DrawN(r, 3)
	if err != nil || len(got) != 3 {
		t.Fatalf("DrawN = %v, %v", got, err)
	}
	if _, err := w.DrawN(r, 1); err == nil {
		t.Fatal("over-drawing should error")
	}
	if w.Remaining() != 0 {
		t.Fatalf("Remaining = %d", w.Remaining())
	}
}

func TestWeightedSecondDrawConditional(t *testing.T) {
	// After removing index 0 (w=5), remaining weights {1, 4}: second draw
	// must follow the renormalized distribution.
	const trials = 40000
	r := xrand.New(8)
	count1 := 0
	n2 := 0
	for i := 0; i < trials; i++ {
		w, err := NewWeighted([]float64{5, 1, 4})
		if err != nil {
			t.Fatal(err)
		}
		first, err := w.Draw(r)
		if err != nil {
			t.Fatal(err)
		}
		if first != 0 {
			continue
		}
		second, err := w.Draw(r)
		if err != nil {
			t.Fatal(err)
		}
		n2++
		if second == 1 {
			count1++
		}
	}
	p := float64(count1) / float64(n2)
	if math.Abs(p-0.2) > 0.02 {
		t.Fatalf("conditional second-draw P(1) = %v, want 0.2", p)
	}
}

func TestStratified(t *testing.T) {
	r := xrand.New(9)
	strata := [][]int{{0, 1, 2}, {3, 4, 5, 6}, {7}}
	out, err := Stratified(r, strata, []int{2, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != 2 || len(out[1]) != 3 || len(out[2]) != 1 {
		t.Fatalf("allocation mismatch: %v", out)
	}
	members := map[int]int{}
	for h, pool := range strata {
		for _, v := range pool {
			members[v] = h
		}
	}
	for h, s := range out {
		seen := map[int]bool{}
		for _, v := range s {
			if members[v] != h {
				t.Fatalf("index %d drawn from wrong stratum %d", v, h)
			}
			if seen[v] {
				t.Fatalf("duplicate %d in stratum %d", v, h)
			}
			seen[v] = true
		}
	}
}

func TestStratifiedErrors(t *testing.T) {
	r := xrand.New(10)
	if _, err := Stratified(r, [][]int{{1}}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Stratified(r, [][]int{{1}}, []int{2}); err == nil {
		t.Fatal("over-allocation should error")
	}
	if _, err := Stratified(r, [][]int{{1}}, []int{-1}); err == nil {
		t.Fatal("negative allocation should error")
	}
}

func BenchmarkSRS(b *testing.B) {
	r := xrand.New(11)
	for i := 0; i < b.N; i++ {
		_ = SRS(r, 100000, 1000)
	}
}

func BenchmarkWeightedDraw(b *testing.B) {
	r := xrand.New(12)
	weights := make([]float64, 100000)
	for i := range weights {
		weights[i] = r.Float64() + 0.01
	}
	w, err := NewWeighted(weights)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Draw(r); err != nil {
			w, _ = NewWeighted(weights)
		}
	}
}
