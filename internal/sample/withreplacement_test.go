package sample

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestWithReplacementValidation(t *testing.T) {
	if _, err := NewWithReplacement([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights should error")
	}
	if _, err := NewWithReplacement([]float64{1, -1}); err == nil {
		t.Fatal("negative weight should error")
	}
	if _, err := NewWithReplacement([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN should error")
	}
}

func TestWithReplacementMarginals(t *testing.T) {
	weights := []float64{1, 0, 3, 6}
	w, err := NewWithReplacement(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	const trials = 80000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[w.Draw(r)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[1])
	}
	for i, wt := range weights {
		want := float64(trials) * wt / 10
		if wt > 0 && math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Fatalf("index %d drawn %d, want ~%v", i, counts[i], want)
		}
	}
}

func TestWithReplacementProb(t *testing.T) {
	w, err := NewWithReplacement([]float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	if p := w.Prob(0); math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("Prob(0) = %v", p)
	}
	if p := w.Prob(1); math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("Prob(1) = %v", p)
	}
}

func TestWithReplacementRepeatsAllowed(t *testing.T) {
	// A single positive-weight object must be drawn repeatedly.
	w, err := NewWithReplacement([]float64{0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	for i := 0; i < 100; i++ {
		if got := w.Draw(r); got != 1 {
			t.Fatalf("draw %d = %d, want 1", i, got)
		}
	}
}
