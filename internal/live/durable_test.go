package live

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

func durableSpec() *Spec {
	return &Spec{
		Name: "events",
		Schema: dataset.Schema{
			{Name: "id", Kind: dataset.Int},
			{Name: "score", Kind: dataset.Float},
			{Name: "tag", Kind: dataset.String},
		},
		KeyCol: "id",
	}
}

// workload drives tab through a deterministic mixed mutation sequence:
// appends, updates, deletes, and mid-stream snapshots (which compact).
// Returns the number of batches applied.
func workload(t *testing.T, tab *Table) int {
	t.Helper()
	batches := 0
	apply := func(rows ...Row) {
		t.Helper()
		if _, err := tab.Apply(&Batch{Rows: rows}); err != nil {
			t.Fatalf("batch %d: %v", batches, err)
		}
		batches++
	}
	for i := 0; i < 8; i++ {
		apply(
			Row{Op: OpAppend, Vals: []any{int64(2 * i), float64(i) * 1.5, fmt.Sprintf("row-%d", i)}},
			Row{Op: OpAppend, Vals: []any{int64(2*i + 1), float64(-i), "odd"}},
		)
	}
	apply(
		Row{Op: OpUpdate, Key: 4, Vals: []any{int64(4), 99.25, "patched"}},
		Row{Op: OpDelete, Key: 7},
	)
	tab.Snapshot() // compacts: tombstones from the update/delete above
	apply(Row{Op: OpAppend, Vals: []any{int64(100), 1.0, "after-compact"}})
	apply(
		Row{Op: OpDelete, Key: 0},
		Row{Op: OpAppend, Vals: []any{int64(101), 2.0, "tail"}},
	)
	return batches
}

// state captures everything observable about a table for equality checks.
type tableState struct {
	Version, Epoch             uint64
	Appended, Updated, Deleted uint64
	Rows                       [][]any
}

func captureState(tab *Table) tableState {
	s := tab.Snapshot()
	a, u, d := tab.Counters()
	st := tableState{Version: s.Version, Epoch: s.Epoch, Appended: a, Updated: u, Deleted: d}
	for r := 0; r < s.Tab.NumRows(); r++ {
		row := make([]any, s.Tab.NumCols())
		for c := range row {
			row[c] = s.Tab.Value(r, c)
		}
		st.Rows = append(st.Rows, row)
	}
	return st
}

func TestDurableRoundTrip(t *testing.T) {
	fs := faultfs.New()
	tab, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Durable() {
		t.Fatal("OpenDurable returned a non-durable table")
	}
	workload(t, tab)
	want := captureState(tab)
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := captureState(re); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered state diverges:\n got %+v\nwant %+v", got, want)
	}
}

func TestDurableOpenWithoutSpecReadsMeta(t *testing.T) {
	fs := faultfs.New()
	tab, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(int64(1), 2.0, "x"); err != nil {
		t.Fatal(err)
	}
	tab.Close()

	re, err := OpenDurable("d", nil, DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Name() != "events" || re.KeyColumn() != "id" || re.NumRows() != 1 {
		t.Fatalf("meta-derived table wrong: name=%q key=%q rows=%d", re.Name(), re.KeyColumn(), re.NumRows())
	}
}

func TestDurableSpecMismatchRejected(t *testing.T) {
	fs := faultfs.New()
	tab, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	tab.Close()

	bad := durableSpec()
	bad.Schema[1].Kind = dataset.String
	if _, err := OpenDurable("d", bad, DurableOptions{FS: fs}); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}

// TestDurableCrashAtEveryBoundary is the tentpole recovery property test:
// run the workload once on a memory table to capture the golden state after
// every batch, then run it durably, crash the filesystem after every single
// successful fsync (i.e. at every record durability boundary), recover from
// the crash image, and require the recovered table to exactly equal the
// golden state at the corresponding batch count — no lost acknowledged
// batch, no phantom unacknowledged one.
func TestDurableCrashAtEveryBoundary(t *testing.T) {
	// Golden: memory-only states after each batch.
	golden := []tableState{}
	{
		goldenTab, err := New("events", durableSpec().Schema, "id")
		if err != nil {
			t.Fatal(err)
		}
		// Re-run workload capturing state after every batch. workload()
		// itself snapshots mid-stream; captureState snapshots too, which is
		// fine — snapshots don't change live-row content.
		batches := 0
		apply := func(rows ...Row) {
			if _, err := goldenTab.Apply(&Batch{Rows: rows}); err != nil {
				t.Fatalf("golden batch %d: %v", batches, err)
			}
			batches++
			golden = append(golden, captureState(goldenTab))
		}
		for i := 0; i < 8; i++ {
			apply(
				Row{Op: OpAppend, Vals: []any{int64(2 * i), float64(i) * 1.5, fmt.Sprintf("row-%d", i)}},
				Row{Op: OpAppend, Vals: []any{int64(2*i + 1), float64(-i), "odd"}},
			)
		}
		apply(
			Row{Op: OpUpdate, Key: 4, Vals: []any{int64(4), 99.25, "patched"}},
			Row{Op: OpDelete, Key: 7},
		)
		goldenTab.Snapshot()
		apply(Row{Op: OpAppend, Vals: []any{int64(100), 1.0, "after-compact"}})
		apply(
			Row{Op: OpDelete, Key: 0},
			Row{Op: OpAppend, Vals: []any{int64(101), 2.0, "tail"}},
		)
	}

	// Durable run with tiny segments to exercise rotation during recovery.
	fs := faultfs.New()
	tab, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	nBatches := workload(t, tab)
	if nBatches != len(golden) {
		t.Fatalf("workload applied %d batches, golden has %d", nBatches, len(golden))
	}
	tab.Close()

	// Every file in the final image was built through appends; recovery from
	// a crash at each intermediate durable length must land exactly on a
	// golden state. We reconstruct intermediate images by replaying the
	// workload and snapshotting the durable image after each batch.
	fs2 := faultfs.New()
	tab2, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs2, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	images := []map[string][]byte{fs2.DurableSnapshot()}
	replayBatches := 0
	apply2 := func(rows ...Row) {
		if _, err := tab2.Apply(&Batch{Rows: rows}); err != nil {
			t.Fatalf("durable batch %d: %v", replayBatches, err)
		}
		replayBatches++
		images = append(images, fs2.DurableSnapshot())
	}
	for i := 0; i < 8; i++ {
		apply2(
			Row{Op: OpAppend, Vals: []any{int64(2 * i), float64(i) * 1.5, fmt.Sprintf("row-%d", i)}},
			Row{Op: OpAppend, Vals: []any{int64(2*i + 1), float64(-i), "odd"}},
		)
	}
	apply2(
		Row{Op: OpUpdate, Key: 4, Vals: []any{int64(4), 99.25, "patched"}},
		Row{Op: OpDelete, Key: 7},
	)
	tab2.Snapshot()
	apply2(Row{Op: OpAppend, Vals: []any{int64(100), 1.0, "after-compact"}})
	apply2(
		Row{Op: OpDelete, Key: 0},
		Row{Op: OpAppend, Vals: []any{int64(101), 2.0, "tail"}},
	)

	for bi, img := range images {
		// Torn variants: crash images with 0..3 garbage bytes appended to
		// the final segment model a write that died mid-record.
		for torn := 0; torn <= 3; torn++ {
			m := map[string][]byte{}
			for name, data := range img {
				m[name] = data
			}
			if torn > 0 {
				// Find the newest segment and tear its tail.
				var newest string
				for name := range m {
					if len(name) > 4 && name[len(name)-4:] == ".seg" && name > newest {
						newest = name
					}
				}
				if newest == "" {
					continue
				}
				tail := make([]byte, torn)
				for i := range tail {
					tail[i] = 0x5A
				}
				m[newest] = append(append([]byte(nil), m[newest]...), tail...)
			}
			re, err := OpenDurable("d", durableSpec(), DurableOptions{FS: faultfs.FromMap(m), SegmentBytes: 128})
			if err != nil {
				t.Fatalf("recovery after batch %d (torn %d): %v", bi, torn, err)
			}
			got := captureState(re)
			re.Close()
			if bi == 0 {
				if got.Version != 0 || len(got.Rows) != 0 {
					t.Fatalf("empty image recovered to version %d with %d rows", got.Version, len(got.Rows))
				}
				continue
			}
			want := golden[bi-1]
			// Epochs may differ: the durable run compacts at snapshot points
			// that depend on replay, and compaction never changes content.
			got.Epoch, want.Epoch = 0, 0
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("crash after batch %d (torn %d):\n got %+v\nwant %+v", bi, torn, got, want)
			}
		}
	}
}

// TestDurableFsyncFailureAppliesNothing: when the fsync at commit fails the
// client gets an error wrapping wal.ErrUnavailable and the in-memory table
// is untouched — memory never runs ahead of disk.
func TestDurableFsyncFailureAppliesNothing(t *testing.T) {
	fs := faultfs.New()
	tab, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(int64(1), 1.0, "ok"); err != nil {
		t.Fatal(err)
	}
	before := captureState(tab)

	fs.FailSyncs(-1)
	err = tab.Append(int64(2), 2.0, "lost")
	if !errors.Is(err, wal.ErrUnavailable) {
		t.Fatalf("got %v, want wal.ErrUnavailable", err)
	}
	if got := captureState(tab); !reflect.DeepEqual(got, before) {
		t.Fatalf("failed append mutated the table:\n got %+v\nwant %+v", got, before)
	}
	// The failure is sticky: even with fsync healthy again, the log refuses
	// until reopened, because its buffered state is suspect.
	fs.FailSyncs(0)
	if err := tab.Append(int64(3), 3.0, "still-down"); !errors.Is(err, wal.ErrUnavailable) {
		t.Fatalf("sticky failure not sticky: %v", err)
	}
	tab.Close()

	// Recovery from the durable prefix sees exactly the acknowledged batch.
	re, err := OpenDurable("d", durableSpec(), DurableOptions{FS: faultfs.FromMap(fs.DurableSnapshot())})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := captureState(re); !reflect.DeepEqual(got, before) {
		t.Fatalf("recovered state diverges from acknowledged state:\n got %+v\nwant %+v", got, before)
	}
}

// TestDurableDoubleReplayIdempotent: recovering the same crash image twice
// (including once through the torn-tail truncation path) yields identical
// states — recovery repairs the log so a crash during recovery is safe.
func TestDurableDoubleReplayIdempotent(t *testing.T) {
	fs := faultfs.New()
	tab, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	workload(t, tab)
	// Crash without Close: unsynced tail plus 2 torn bytes.
	fs.Crash(2)

	re1, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	s1 := captureState(re1)
	re1.Close()

	// Second recovery over the repaired image (Close checkpointed; reopen
	// again to also cover the checkpoint-restore path).
	re2, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	s2 := captureState(re2)
	re2.Close()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("double replay diverges:\n first %+v\nsecond %+v", s1, s2)
	}
}

// TestDurableCheckpointPrunesAndRecovers: an explicit checkpoint survives a
// crash and replaces replay of the records it covers.
func TestDurableCheckpointPrunesAndRecovers(t *testing.T) {
	fs := faultfs.New()
	tab, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	workload(t, tab)
	want := captureState(tab)
	if err := tab.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fs.Crash(0)

	re, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := captureState(re)
	// Checkpoint compacts, so row content/order must match exactly; version
	// and counters too. Epoch of the pre-checkpoint capture may differ.
	got.Epoch, want.Epoch = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-checkpoint recovery diverges:\n got %+v\nwant %+v", got, want)
	}
}

// TestDurableAutoCheckpoint: crossing AutoCheckpointBytes triggers a
// checkpoint that bounds the log.
func TestDurableAutoCheckpoint(t *testing.T) {
	fs := faultfs.New()
	tab, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs, SegmentBytes: 256, AutoCheckpointBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	for i := 0; i < 200; i++ {
		if err := tab.Append(int64(i), float64(i), "padding-padding-padding"); err != nil {
			t.Fatal(err)
		}
	}
	ckpts := 0
	for name := range fs.Snapshot() {
		if len(name) > 5 && name[len(name)-5:] == ".ckpt" {
			ckpts++
		}
	}
	if ckpts == 0 {
		t.Fatal("no checkpoint written despite crossing AutoCheckpointBytes")
	}
}

// TestDurableClosedTableRejectsMutations: Apply after Close is a durability
// error, not a silent memory-only mutation.
func TestDurableClosedTableRejectsMutations(t *testing.T) {
	fs := faultfs.New()
	tab, err := OpenDurable("d", durableSpec(), DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	tab.Close()
	if err := tab.Append(int64(1), 1.0, "x"); !errors.Is(err, wal.ErrUnavailable) {
		t.Fatalf("append on closed table: got %v, want wal.ErrUnavailable", err)
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	schema := durableSpec().Schema
	b := &Batch{Rows: []Row{
		{Op: OpAppend, Vals: []any{int64(-5), 3.25, ""}},
		{Op: OpUpdate, Key: -5, Vals: []any{int64(-5), -0.0, "héllo\x00world"}},
		{Op: OpDelete, Key: 1 << 60},
	}}
	got, err := decodeBatch(schema, encodeBatch(schema, b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, b)
	}
	// Strictness: spare bytes rejected.
	if _, err := decodeBatch(schema, append(encodeBatch(schema, b), 0)); err == nil {
		t.Fatal("spare byte not rejected")
	}
	// Truncation rejected.
	enc := encodeBatch(schema, b)
	if _, err := decodeBatch(schema, enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated batch not rejected")
	}
}
