package live

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/dataset"
)

// Format selects the wire encoding of a delta stream.
type Format int

// Format values.
const (
	// CSV is a header row matching the schema followed by append rows. CSV
	// deltas are append-only; use NDJSON for updates and deletes.
	CSV Format = iota
	// NDJSON is one JSON object per line:
	//
	//	{"op":"append","row":{"id":7,"x":1.5}}
	//	{"op":"update","key":3,"row":{"id":3,"x":2.0}}
	//	{"op":"delete","key":5}
	//
	// "op" defaults to "append" when omitted. Rows must bind every schema
	// column exactly once; unknown fields are errors.
	NDJSON Format = iota
)

// ParseFormat converts a wire name ("csv" or "ndjson") to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "csv":
		return CSV, nil
	case "ndjson", "jsonl":
		return NDJSON, nil
	}
	return CSV, fmt.Errorf("live: unknown delta format %q (want csv or ndjson)", s)
}

func (f Format) String() string {
	if f == NDJSON {
		return "ndjson"
	}
	return "csv"
}

// DefaultChunk is the batch size ParseDelta uses when the caller passes 0:
// large enough to amortize per-batch locking and version bumps, small
// enough that ingestion memory stays bounded by the chunk, not the stream.
const DefaultChunk = 4096

// maxLine bounds one NDJSON line (1 MiB), keeping per-line memory bounded
// for arbitrary input.
const maxLine = 1 << 20

// ParseDelta stream-parses a delta in the given format against the schema,
// accumulating at most chunk rows (0 means DefaultChunk) before invoking
// apply with a batch. The whole stream is never buffered: memory use is
// bounded by one chunk. Batches handed to apply before an error are already
// applied — a mid-stream failure reports what was committed via the
// returned summary alongside the error, mirroring how a durable ingest
// endpoint behaves.
func ParseDelta(schema dataset.Schema, format Format, r io.Reader, chunk int, apply func(*Batch) error) (Summary, error) {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	var (
		total Summary
		rows  []Row
	)
	flush := func() error {
		if len(rows) == 0 {
			return nil
		}
		b := &Batch{Rows: rows}
		err := apply(b)
		rows = nil
		if err != nil {
			return err
		}
		for _, r := range b.Rows {
			switch r.Op {
			case OpAppend:
				total.Appended++
			case OpUpdate:
				total.Updated++
			case OpDelete:
				total.Deleted++
			}
		}
		total.Batches++
		return nil
	}
	emit := func(row Row) error {
		rows = append(rows, row)
		if len(rows) >= chunk {
			return flush()
		}
		return nil
	}

	var err error
	switch format {
	case CSV:
		err = parseCSVDelta(schema, r, emit)
	case NDJSON:
		err = parseNDJSONDelta(schema, r, emit)
	default:
		return total, fmt.Errorf("live: unknown delta format %d", int(format))
	}
	if err != nil {
		return total, err
	}
	return total, flush()
}

// parseCSVDelta reads a header row matching the schema, then appends.
func parseCSVDelta(schema dataset.Schema, r io.Reader, emit func(Row) error) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("live: reading CSV header: %w", err)
	}
	if len(header) != len(schema) {
		return fmt.Errorf("live: CSV header has %d columns, schema %d", len(header), len(schema))
	}
	for i, h := range header {
		if h != schema[i].Name {
			return fmt.Errorf("live: CSV header column %d is %q, want %q", i, h, schema[i].Name)
		}
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		vals := make([]any, len(schema))
		for i, c := range schema {
			switch c.Kind {
			case dataset.Float:
				v, err := strconv.ParseFloat(rec[i], 64)
				if err != nil {
					return fmt.Errorf("live: CSV line %d column %q: %w", line, c.Name, err)
				}
				vals[i] = v
			case dataset.Int:
				v, err := strconv.ParseInt(rec[i], 10, 64)
				if err != nil {
					return fmt.Errorf("live: CSV line %d column %q: %w", line, c.Name, err)
				}
				vals[i] = v
			case dataset.String:
				vals[i] = rec[i]
			}
		}
		if err := emit(Row{Op: OpAppend, Vals: vals}); err != nil {
			return err
		}
	}
}

// ndjsonOp is the wire form of one NDJSON delta line.
type ndjsonOp struct {
	Op  string          `json:"op"`
	Key *int64          `json:"key"`
	Row json.RawMessage `json:"row"`
}

// parseNDJSONDelta reads one operation per line.
func parseNDJSONDelta(schema dataset.Schema, r io.Reader, emit func(Row) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var op ndjsonOp
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&op); err != nil {
			return fmt.Errorf("live: NDJSON line %d: %w", line, err)
		}
		var out Row
		switch op.Op {
		case "", "append":
			out.Op = OpAppend
		case "update":
			out.Op = OpUpdate
		case "delete":
			out.Op = OpDelete
		default:
			return fmt.Errorf("live: NDJSON line %d: unknown op %q", line, op.Op)
		}
		if out.Op == OpDelete {
			if op.Key == nil {
				return fmt.Errorf("live: NDJSON line %d: delete requires a key", line)
			}
			if len(op.Row) != 0 {
				return fmt.Errorf("live: NDJSON line %d: delete must not carry a row", line)
			}
			out.Key = *op.Key
		} else {
			if len(op.Row) == 0 {
				return fmt.Errorf("live: NDJSON line %d: %s requires a row", line, out.Op)
			}
			vals, err := decodeRow(schema, op.Row)
			if err != nil {
				return fmt.Errorf("live: NDJSON line %d: %w", line, err)
			}
			out.Vals = vals
			if out.Op == OpUpdate {
				if op.Key == nil {
					return fmt.Errorf("live: NDJSON line %d: update requires a key", line)
				}
				out.Key = *op.Key
			}
		}
		if err := emit(out); err != nil {
			return err
		}
	}
	return sc.Err()
}

// decodeRow binds a JSON object's fields to schema columns, requiring an
// exact match: every column present, no extras, kinds compatible (JSON
// numbers bind to int columns only when integral).
func decodeRow(schema dataset.Schema, raw json.RawMessage) ([]any, error) {
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("row: %w", err)
	}
	if len(m) != len(schema) {
		return nil, fmt.Errorf("row has %d fields, schema has %d columns", len(m), len(schema))
	}
	vals := make([]any, len(schema))
	for i, c := range schema {
		rv, ok := m[c.Name]
		if !ok {
			return nil, fmt.Errorf("row is missing column %q", c.Name)
		}
		switch c.Kind {
		case dataset.Float:
			f, ok := rv.(float64)
			if !ok {
				return nil, fmt.Errorf("column %q wants a number, got %T", c.Name, rv)
			}
			vals[i] = f
		case dataset.Int:
			f, ok := rv.(float64)
			if !ok || f != math.Trunc(f) || math.Abs(f) >= 1<<53 {
				return nil, fmt.Errorf("column %q wants an integer, got %v", c.Name, rv)
			}
			vals[i] = int64(f)
		case dataset.String:
			s, ok := rv.(string)
			if !ok {
				return nil, fmt.Errorf("column %q wants a string, got %T", c.Name, rv)
			}
			vals[i] = s
		}
	}
	return vals, nil
}
