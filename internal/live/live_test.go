package live

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
)

var testSchema = dataset.Schema{
	{Name: "id", Kind: dataset.Int},
	{Name: "x", Kind: dataset.Float},
	{Name: "tag", Kind: dataset.String},
}

func newTestTable(t *testing.T) *Table {
	t.Helper()
	lt, err := New("D", testSchema, "id")
	if err != nil {
		t.Fatal(err)
	}
	return lt
}

func TestAppendOnlySnapshotsArePrefixes(t *testing.T) {
	lt := newTestTable(t)
	for i := 0; i < 10; i++ {
		if err := lt.Append(int64(i), float64(i)*1.5, "a"); err != nil {
			t.Fatal(err)
		}
	}
	s1 := lt.Snapshot()
	if s1.Rows != 10 || s1.Tab.NumRows() != 10 {
		t.Fatalf("snapshot rows = %d/%d, want 10", s1.Rows, s1.Tab.NumRows())
	}
	for i := 0; i < 100; i++ {
		if err := lt.Append(int64(10+i), float64(i), "b"); err != nil {
			t.Fatal(err)
		}
	}
	s2 := lt.Snapshot()
	if !PrefixExtends(s1, s2) {
		t.Fatalf("append-only snapshots should be prefix extensions (epochs %d vs %d)", s1.Epoch, s2.Epoch)
	}
	if s2.Rows != 110 {
		t.Fatalf("s2 rows = %d, want 110", s2.Rows)
	}
	// The older snapshot must be unaffected by later appends.
	if s1.Tab.NumRows() != 10 {
		t.Fatalf("s1 mutated: rows = %d", s1.Tab.NumRows())
	}
	for i := 0; i < 10; i++ {
		if got := s1.Tab.Int(i, 0); got != int64(i) {
			t.Fatalf("s1 row %d id = %d, want %d", i, got, i)
		}
		if got := s2.Tab.Int(i, 0); got != int64(i) {
			t.Fatalf("s2 prefix row %d id = %d, want %d", i, got, i)
		}
	}
	if s1.Version == s2.Version {
		t.Fatal("versions must differ across batches")
	}
}

func TestUpdateDeleteCompaction(t *testing.T) {
	lt := newTestTable(t)
	for i := 0; i < 5; i++ {
		if err := lt.Append(int64(i), float64(i), "a"); err != nil {
			t.Fatal(err)
		}
	}
	s1 := lt.Snapshot()
	_, err := lt.Apply(&Batch{Rows: []Row{
		{Op: OpUpdate, Key: 2, Vals: []any{int64(2), 99.0, "upd"}},
		{Op: OpDelete, Key: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s2 := lt.Snapshot()
	if PrefixExtends(s1, s2) {
		t.Fatal("update/delete must bump the epoch")
	}
	if s2.Rows != 4 {
		t.Fatalf("rows after delete = %d, want 4", s2.Rows)
	}
	// The updated row's new values must be visible; the deleted key gone.
	found := false
	for r := 0; r < s2.Tab.NumRows(); r++ {
		switch s2.Tab.Int(r, 0) {
		case 2:
			found = true
			if s2.Tab.Float(r, 1) != 99.0 || s2.Tab.Str(r, 2) != "upd" {
				t.Fatalf("update not applied: %v %q", s2.Tab.Float(r, 1), s2.Tab.Str(r, 2))
			}
		case 4:
			t.Fatal("deleted key 4 still visible")
		}
	}
	if !found {
		t.Fatal("key 2 missing after update")
	}
	// The old snapshot still shows the original data.
	if s1.Tab.NumRows() != 5 || s1.Tab.Float(2, 1) != 2.0 {
		t.Fatal("old snapshot changed by compaction")
	}
}

func TestApplyValidation(t *testing.T) {
	lt := newTestTable(t)
	if err := lt.Append(int64(1), 1.0, "a"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    *Batch
		want string
	}{
		{"dup key", &Batch{Rows: []Row{{Op: OpAppend, Vals: []any{int64(1), 2.0, "b"}}}}, "existing key"},
		{"update missing", &Batch{Rows: []Row{{Op: OpUpdate, Key: 9, Vals: []any{int64(9), 2.0, "b"}}}}, "unknown key"},
		{"delete missing", &Batch{Rows: []Row{{Op: OpDelete, Key: 9}}}, "unknown key"},
		{"key mismatch", &Batch{Rows: []Row{{Op: OpUpdate, Key: 1, Vals: []any{int64(2), 2.0, "b"}}}}, "does not match"},
		{"bad kind", &Batch{Rows: []Row{{Op: OpAppend, Vals: []any{int64(2), "no", "b"}}}}, "wants float64"},
		{"short row", &Batch{Rows: []Row{{Op: OpAppend, Vals: []any{int64(2)}}}}, "schema has"},
	}
	for _, tc := range cases {
		v := lt.Version()
		if _, err := lt.Apply(tc.b); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
		if lt.Version() != v {
			t.Errorf("%s: failed batch bumped the version", tc.name)
		}
	}
	// A batch that fails validation must not apply any of its rows.
	if _, err := lt.Apply(&Batch{Rows: []Row{
		{Op: OpAppend, Vals: []any{int64(5), 5.0, "ok"}},
		{Op: OpAppend, Vals: []any{int64(5), 5.0, "dup"}},
	}}); err == nil {
		t.Fatal("want duplicate-key error")
	}
	if got := lt.NumRows(); got != 1 {
		t.Fatalf("partial batch applied: rows = %d, want 1", got)
	}
	// Within-batch append→update→delete of the same key is legal.
	if _, err := lt.Apply(&Batch{Rows: []Row{
		{Op: OpAppend, Vals: []any{int64(7), 7.0, "n"}},
		{Op: OpUpdate, Key: 7, Vals: []any{int64(7), 7.5, "n2"}},
		{Op: OpDelete, Key: 7},
	}}); err != nil {
		t.Fatalf("append→update→delete in one batch: %v", err)
	}
	if got := lt.NumRows(); got != 1 {
		t.Fatalf("rows = %d, want 1", got)
	}
}

func TestKeylessTableRejectsMutations(t *testing.T) {
	lt, err := New("E", testSchema, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := lt.Append(int64(1), 1.0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := lt.Append(int64(1), 1.0, "a"); err != nil {
		t.Fatalf("key-less table must allow duplicate values: %v", err)
	}
	if _, err := lt.Apply(&Batch{Rows: []Row{{Op: OpUpdate, Key: 1, Vals: []any{int64(1), 2.0, "b"}}}}); err == nil {
		t.Fatal("update on key-less table must fail")
	}
	if _, err := lt.Apply(&Batch{Rows: []Row{{Op: OpDelete, Key: 1}}}); err == nil {
		t.Fatal("delete on key-less table must fail")
	}
}

// TestConcurrentAppendAndSnapshotReads hammers appends against snapshot
// reads; run under -race this pins the shared-prefix publication as
// race-clean.
func TestConcurrentAppendAndSnapshotReads(t *testing.T) {
	lt := newTestTable(t)
	for i := 0; i < 64; i++ {
		if err := lt.Append(int64(i), float64(i), "seed"); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 64; i < 20000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := lt.Append(int64(i), float64(i), "w"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for k := 0; k < 50; k++ {
				s := lt.Snapshot()
				sum := 0.0
				for r := 0; r < s.Tab.NumRows(); r++ {
					sum += s.Tab.Float(r, 1)
					if s.Tab.Int(r, 0) != int64(r) {
						t.Errorf("row %d id = %d", r, s.Tab.Int(r, 0))
						return
					}
				}
				_ = sum
			}
		}()
	}
	readers.Wait()
	close(stop)
	<-writerDone
}

func TestParseDeltaCSV(t *testing.T) {
	lt := newTestTable(t)
	in := "id,x,tag\n1,1.5,a\n2,2.5,b\n3,3.5,c\n"
	sum, err := ParseDelta(testSchema, CSV, strings.NewReader(in), 2, func(b *Batch) error {
		_, err := lt.Apply(b)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Appended != 3 || sum.Batches != 2 {
		t.Fatalf("summary = %+v, want 3 appended in 2 batches", sum)
	}
	if lt.NumRows() != 3 {
		t.Fatalf("rows = %d", lt.NumRows())
	}
	// Bad header, bad cell.
	if _, err := ParseDelta(testSchema, CSV, strings.NewReader("id,y,tag\n"), 0, nil); err == nil {
		t.Fatal("want header mismatch error")
	}
	if _, err := ParseDelta(testSchema, CSV, strings.NewReader("id,x,tag\nnope,1,a\n"), 0,
		func(*Batch) error { return nil }); err == nil {
		t.Fatal("want parse error")
	}
}

func TestParseDeltaNDJSON(t *testing.T) {
	lt := newTestTable(t)
	in := `{"op":"append","row":{"id":1,"x":1.5,"tag":"a"}}
{"row":{"id":2,"x":2.5,"tag":"b"}}

{"op":"update","key":1,"row":{"id":1,"x":9.5,"tag":"a2"}}
{"op":"delete","key":2}
`
	sum, err := ParseDelta(testSchema, NDJSON, strings.NewReader(in), 0, func(b *Batch) error {
		_, err := lt.Apply(b)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Appended != 2 || sum.Updated != 1 || sum.Deleted != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	s := lt.Snapshot()
	if s.Rows != 1 || s.Tab.Int(0, 0) != 1 || s.Tab.Float(0, 1) != 9.5 {
		t.Fatalf("final state wrong: rows=%d", s.Rows)
	}

	bad := []string{
		`{"op":"nope"}`,
		`{"op":"append"}`,
		`{"op":"update","row":{"id":1,"x":1,"tag":"a"}}`,
		`{"op":"delete"}`,
		`{"op":"delete","key":1,"row":{"id":1,"x":1,"tag":"a"}}`,
		`{"op":"append","row":{"id":1,"x":1}}`,
		`{"op":"append","row":{"id":1,"x":1,"tag":"a","extra":1}}`,
		`{"op":"append","row":{"id":1.5,"x":1,"tag":"a"}}`,
		`{"unknown":true}`,
	}
	for _, line := range bad {
		if _, err := ParseDelta(testSchema, NDJSON, strings.NewReader(line), 0,
			func(*Batch) error { return nil }); err == nil {
			t.Errorf("line %q: want error", line)
		}
	}
}

// TestParseDeltaMidStreamFailure pins the durability contract: batches
// applied before the failing line stay applied and are reported in the
// summary returned alongside the error.
func TestParseDeltaMidStreamFailure(t *testing.T) {
	lt := newTestTable(t)
	in := "id,x,tag\n1,1.0,a\n2,2.0,b\nbroken,x,y\n"
	sum, err := ParseDelta(testSchema, CSV, strings.NewReader(in), 1, func(b *Batch) error {
		_, err := lt.Apply(b)
		return err
	})
	if err == nil {
		t.Fatal("want error")
	}
	if sum.Appended != 2 {
		t.Fatalf("committed summary = %+v, want 2 appended", sum)
	}
	if lt.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", lt.NumRows())
	}
}

func TestMix64Deterministic(t *testing.T) {
	a := Mix64(1, 2, 3)
	b := Mix64(1, 2, 3)
	if a != b {
		t.Fatal("Mix64 not deterministic")
	}
	if Mix64(1, 2, 3) == Mix64(1, 2, 4) || Mix64(0) == Mix64(1) {
		t.Fatal("Mix64 collides on trivial inputs")
	}
}
