package live

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/wal/faultfs"
)

// WAL overhead benchmarks. BenchmarkIngestMemory vs BenchmarkIngestDurable
// measure the cost a write-ahead log adds to applying 4096-row append
// batches (the streaming-ingest chunk size); the durability bar for this
// repo is durable ingest ≤ 2x memory-only. Both run over faultfs so the
// comparison isolates encode+log+fsync bookkeeping from physical disk
// variance; BenchmarkIngestDurableDisk is the same workload on the real
// filesystem (b.TempDir) for absolute numbers. BenchmarkWALRecovery
// measures reopening a log holding 100k rows of batches.

const benchBatchRows = 4096

func benchSchema() dataset.Schema {
	return dataset.Schema{
		{Name: "id", Kind: dataset.Int},
		{Name: "value", Kind: dataset.Float},
		{Name: "label", Kind: dataset.String},
	}
}

func benchBatch(start int64) *Batch {
	b := &Batch{Rows: make([]Row, benchBatchRows)}
	for i := range b.Rows {
		k := start + int64(i)
		b.Rows[i] = Row{Op: OpAppend, Vals: []any{k, float64(k%97) * 0.5, fmt.Sprintf("cat-%d", k%7)}}
	}
	return b
}

func benchIngest(b *testing.B, tab *Table) {
	b.Helper()
	b.ReportAllocs()
	var next int64
	for b.Loop() {
		if _, err := tab.Apply(benchBatch(next)); err != nil {
			b.Fatal(err)
		}
		next += benchBatchRows
	}
	b.ReportMetric(float64(benchBatchRows), "rows/batch")
}

func BenchmarkIngestMemory(b *testing.B) {
	tab, err := New("bench", benchSchema(), "id")
	if err != nil {
		b.Fatal(err)
	}
	benchIngest(b, tab)
}

func BenchmarkIngestDurable(b *testing.B) {
	tab, err := OpenDurable("d", &Spec{Name: "bench", Schema: benchSchema(), KeyCol: "id"},
		DurableOptions{FS: faultfs.New(), AutoCheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer tab.Close()
	benchIngest(b, tab)
}

func BenchmarkIngestDurableDisk(b *testing.B) {
	tab, err := OpenDurable(b.TempDir(), &Spec{Name: "bench", Schema: benchSchema(), KeyCol: "id"},
		DurableOptions{AutoCheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer tab.Close()
	benchIngest(b, tab)
}

// BenchmarkWALRecovery measures OpenDurable over a crash image holding 100k
// rows of logged batches and no checkpoint — the worst case, full replay.
func BenchmarkWALRecovery(b *testing.B) {
	fs := faultfs.New()
	spec := &Spec{Name: "bench", Schema: benchSchema(), KeyCol: "id"}
	tab, err := OpenDurable("d", spec, DurableOptions{FS: fs, AutoCheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	var next int64
	for next < 100_000 {
		if _, err := tab.Apply(benchBatch(next)); err != nil {
			b.Fatal(err)
		}
		next += benchBatchRows
	}
	img := fs.DurableSnapshot() // crash: no Close, no checkpoint
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		re, err := OpenDurable("d", spec, DurableOptions{FS: faultfs.FromMap(img), AutoCheckpointBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		if re.NumRows() != int(next) {
			b.Fatalf("recovered %d rows, want %d", re.NumRows(), next)
		}
		_ = re // never closed: closing would checkpoint into the per-iter FS copy
	}
	b.ReportMetric(float64(next), "rows")
}
