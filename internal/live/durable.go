package live

import (
	"encoding/binary"
	"fmt"
	"path"

	"repro/internal/dataset"
	"repro/internal/wal"
)

// Spec names a durable table: its identity is persisted to meta.json on
// first open and verified on every reopen, so a data directory can never be
// silently reinterpreted under a different schema.
type Spec struct {
	Name   string
	Schema dataset.Schema
	KeyCol string // "" for append-only tables
}

// DurableOptions tunes OpenDurable. The zero value is production defaults
// over the real filesystem.
type DurableOptions struct {
	// FS is the filesystem to persist into (default wal.OS). Tests inject
	// faultfs here.
	FS wal.FS
	// SegmentBytes rotates WAL segments past this size (default 4 MiB).
	SegmentBytes int64
	// AutoCheckpointBytes checkpoints automatically once the log holds this
	// many bytes since the last checkpoint (default 64 MiB; < 0 disables).
	AutoCheckpointBytes int64
	// NoSync skips fsync on commit — benchmark-only, never production.
	NoSync bool
}

const (
	metaName           = "meta.json"
	defaultAutoCkpt    = 64 << 20
	maxCheckpointBytes = 1 << 32 // sanity bound when decoding
)

// OpenDurable opens (creating if absent) a durable live table rooted at
// dir. New directories get a meta.json identity and an empty WAL; existing
// ones are verified against spec, then recovered: the newest valid
// checkpoint is restored and every durable WAL record after it replayed, so
// the table resumes at exactly the state whose batches were acknowledged.
// Torn tails (a crash mid-append) are truncated; corrupt sealed segments or
// checkpoints are an error — recovery never loads garbage.
//
// When spec is nil the identity is read from meta.json, which must already
// exist.
func OpenDurable(dir string, spec *Spec, o DurableOptions) (*Table, error) {
	if o.FS == nil {
		o.FS = wal.OS
	}
	if o.AutoCheckpointBytes == 0 {
		o.AutoCheckpointBytes = defaultAutoCkpt
	}
	if err := o.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("live: creating %s: %w", dir, err)
	}

	metaPath := path.Join(dir, metaName)
	raw, readErr := o.FS.ReadFile(metaPath)
	switch {
	case readErr == nil:
		name, schema, keyCol, err := decodeMeta(raw)
		if err != nil {
			return nil, fmt.Errorf("live: %s: %w", metaPath, err)
		}
		if spec == nil {
			spec = &Spec{Name: name, Schema: schema, KeyCol: keyCol}
		} else if err := spec.matches(name, schema, keyCol); err != nil {
			return nil, fmt.Errorf("live: %s does not match requested table: %w", dir, err)
		}
	case spec == nil:
		return nil, fmt.Errorf("live: %s has no %s and no spec was given: %w", dir, metaName, readErr)
	default:
		data, err := encodeMeta(spec.Name, spec.Schema, spec.KeyCol)
		if err != nil {
			return nil, err
		}
		if err := wal.WriteAtomic(o.FS, metaPath, data); err != nil {
			return nil, fmt.Errorf("live: writing %s: %w", metaPath, err)
		}
	}

	t, err := New(spec.Name, spec.Schema, spec.KeyCol)
	if err != nil {
		return nil, err
	}

	log, rec, err := wal.Open(o.FS, dir, wal.Options{SegmentBytes: o.SegmentBytes, NoSync: o.NoSync})
	if err != nil {
		return nil, fmt.Errorf("live: opening WAL for %q: %w", spec.Name, err)
	}
	if err := t.replay(rec); err != nil {
		log.Close() //nolint:errcheck
		return nil, err
	}
	// Attach the log only after replay: replayed records must not be
	// re-logged, and replay-triggered compactions must not emit records.
	t.mu.Lock()
	t.log = log
	t.autoCkpt = o.AutoCheckpointBytes
	t.mu.Unlock()
	return t, nil
}

func (s *Spec) matches(name string, schema dataset.Schema, keyCol string) error {
	if s.Name != name {
		return fmt.Errorf("directory holds table %q, want %q", name, s.Name)
	}
	if s.KeyCol != keyCol {
		return fmt.Errorf("directory key column is %q, want %q", keyCol, s.KeyCol)
	}
	if len(s.Schema) != len(schema) {
		return fmt.Errorf("directory schema has %d columns, want %d", len(schema), len(s.Schema))
	}
	for i, c := range schema {
		if s.Schema[i] != c {
			return fmt.Errorf("directory schema column %d is %s:%s, want %s:%s",
				i, c.Name, c.Kind, s.Schema[i].Name, s.Schema[i].Kind)
		}
	}
	return nil
}

// replay restores the checkpoint and applies every recovered record. The
// table has no log attached yet, so nothing here writes back to disk.
func (t *Table) replay(rec *wal.Recovery) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec.Checkpoint != nil {
		if uint64(len(rec.Checkpoint)) > maxCheckpointBytes {
			return fmt.Errorf("live: checkpoint for %q is implausibly large", t.name)
		}
		if err := t.restoreCheckpointLocked(rec.Checkpoint); err != nil {
			return fmt.Errorf("live: restoring checkpoint for %q: %w", t.name, err)
		}
		if t.version != rec.CheckpointVersion {
			return fmt.Errorf("live: checkpoint for %q decodes to version %d, file claims %d",
				t.name, t.version, rec.CheckpointVersion)
		}
	}
	for _, r := range rec.Records {
		switch r.Kind {
		case wal.KindBatch:
			if r.Version != t.version+1 {
				return fmt.Errorf("live: replaying %q: batch version %d after %d", t.name, r.Version, t.version)
			}
			b, err := decodeBatch(t.schema, r.Payload)
			if err != nil {
				return fmt.Errorf("live: replaying %q version %d: %w", t.name, r.Version, err)
			}
			if _, err := t.applyLocked(b, false); err != nil {
				return fmt.Errorf("live: replaying %q version %d: %w", t.name, r.Version, err)
			}
		case wal.KindCompact:
			if len(r.Payload) != 8 {
				return fmt.Errorf("live: replaying %q: compaction record has %d payload bytes", t.name, len(r.Payload))
			}
			if r.Version != t.version {
				return fmt.Errorf("live: replaying %q: compaction at version %d, table at %d", t.name, r.Version, t.version)
			}
			if t.nTomb > 0 {
				t.compactLocked()
			}
			// Trust the recorded epoch over our own counting so epochs stay
			// stable across restarts even when a redundant compaction record
			// was logged.
			t.epoch = binary.LittleEndian.Uint64(r.Payload)
			t.snap = nil
		default:
			return fmt.Errorf("live: replaying %q: unknown record kind %d", t.name, r.Kind)
		}
	}
	return nil
}

// Durable reports whether the table persists batches to a write-ahead log.
func (t *Table) Durable() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.log != nil
}

// Checkpoint compacts the table and atomically persists its full state,
// then prunes WAL segments the checkpoint covers. Recovery cost restarts
// from zero. No-op (nil) on memory-only tables.
func (t *Table) Checkpoint() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.log == nil {
		return nil
	}
	if t.closed {
		return fmt.Errorf("live: table %q is closed: %w", t.name, wal.ErrUnavailable)
	}
	return t.checkpointLocked()
}

// checkpointLocked writes a checkpoint at the current version. Compacts
// first so the image carries no tombstones. Caller holds t.mu and has
// checked t.log != nil.
func (t *Table) checkpointLocked() error {
	if t.nTomb > 0 {
		t.compactLocked()
	}
	if err := t.log.Checkpoint(t.version, t.encodeCheckpointLocked()); err != nil {
		return fmt.Errorf("live: checkpointing %q: %w", t.name, err)
	}
	return nil
}

// Close checkpoints (when the log is healthy) and closes the WAL. The table
// rejects all further mutations. Closing a memory-only table just marks it
// closed.
func (t *Table) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	if t.log == nil {
		return nil
	}
	var err error
	if t.log.Err() == nil {
		err = t.checkpointLocked()
	}
	if cerr := t.log.Close(); err == nil {
		err = cerr
	}
	return err
}
