package live

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/dataset"
)

// WAL payload codecs. The wal package stores opaque, checksummed payloads;
// this file defines what the live layer puts in them:
//
//   - batch records: the full mutation batch, self-contained (ops, keys,
//     row values in schema order), so replay needs only the schema;
//   - checkpoint payloads: the complete columnar state — schema
//     fingerprint, version, epoch, lifetime counters, and every column —
//     written only after compaction, so there are never tombstones inside;
//   - meta.json: the table identity (name, schema, key column) that lets a
//     data directory be reopened without the caller restating the schema.
//
// Values encode per column kind: floats as 8-byte IEEE bits (NaN and -0
// round-trip exactly), ints as zigzag varints, strings length-prefixed.
// Decoders are strict — any spare or missing byte is an error — because a
// record that passed its CRC but fails decoding means a logic bug or
// deliberate tampering, and recovery must reject it rather than guess.

// encodeBatch serializes a validated batch (values already normalized to
// the schema kinds).
func encodeBatch(schema dataset.Schema, b *Batch) []byte {
	out := binary.AppendUvarint(nil, uint64(len(b.Rows)))
	for _, r := range b.Rows {
		out = append(out, byte(r.Op))
		if r.Op == OpUpdate || r.Op == OpDelete {
			out = binary.AppendVarint(out, r.Key)
		}
		if r.Op == OpAppend || r.Op == OpUpdate {
			for i, c := range schema {
				switch c.Kind {
				case dataset.Float:
					out = binary.LittleEndian.AppendUint64(out, math.Float64bits(r.Vals[i].(float64)))
				case dataset.Int:
					out = binary.AppendVarint(out, r.Vals[i].(int64))
				case dataset.String:
					s := r.Vals[i].(string)
					out = binary.AppendUvarint(out, uint64(len(s)))
					out = append(out, s...)
				}
			}
		}
	}
	return out
}

// decodeBatch is the strict inverse of encodeBatch.
func decodeBatch(schema dataset.Schema, data []byte) (*Batch, error) {
	n, off, err := readUvarint(data, 0)
	if err != nil {
		return nil, fmt.Errorf("live: batch record: row count: %w", err)
	}
	if n > uint64(len(data)) { // each row needs at least one byte
		return nil, fmt.Errorf("live: batch record claims %d rows in %d bytes", n, len(data))
	}
	b := &Batch{Rows: make([]Row, 0, n)}
	for ri := uint64(0); ri < n; ri++ {
		if off >= len(data) {
			return nil, fmt.Errorf("live: batch record: truncated at row %d", ri)
		}
		op := Op(data[off])
		off++
		row := Row{Op: op}
		switch op {
		case OpAppend, OpUpdate, OpDelete:
		default:
			return nil, fmt.Errorf("live: batch record: row %d has unknown op %d", ri, int(op))
		}
		if op == OpUpdate || op == OpDelete {
			row.Key, off, err = readVarint(data, off)
			if err != nil {
				return nil, fmt.Errorf("live: batch record: row %d key: %w", ri, err)
			}
		}
		if op == OpAppend || op == OpUpdate {
			row.Vals = make([]any, len(schema))
			for i, c := range schema {
				switch c.Kind {
				case dataset.Float:
					if off+8 > len(data) {
						return nil, fmt.Errorf("live: batch record: row %d column %q truncated", ri, c.Name)
					}
					row.Vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
					off += 8
				case dataset.Int:
					var v int64
					v, off, err = readVarint(data, off)
					if err != nil {
						return nil, fmt.Errorf("live: batch record: row %d column %q: %w", ri, c.Name, err)
					}
					row.Vals[i] = v
				case dataset.String:
					var l uint64
					l, off, err = readUvarint(data, off)
					if err != nil || l > uint64(len(data)-off) {
						return nil, fmt.Errorf("live: batch record: row %d column %q truncated", ri, c.Name)
					}
					row.Vals[i] = string(data[off : off+int(l)])
					off += int(l)
				}
			}
		}
		b.Rows = append(b.Rows, row)
	}
	if off != len(data) {
		return nil, fmt.Errorf("live: batch record has %d spare bytes", len(data)-off)
	}
	return b, nil
}

// checkpointFormat versions the checkpoint payload layout.
const checkpointFormat = 1

// encodeCheckpoint serializes the full table state. Caller holds t.mu and
// has compacted (no tombstones).
func (t *Table) encodeCheckpointLocked() []byte {
	n := t.store.NumRows()
	out := []byte{checkpointFormat}
	out = binary.AppendUvarint(out, uint64(len(t.schema)))
	for _, c := range t.schema {
		out = append(out, byte(c.Kind))
	}
	out = binary.LittleEndian.AppendUint64(out, t.version)
	out = binary.LittleEndian.AppendUint64(out, t.epoch)
	out = binary.LittleEndian.AppendUint64(out, t.appended)
	out = binary.LittleEndian.AppendUint64(out, t.updated)
	out = binary.LittleEndian.AppendUint64(out, t.deleted)
	out = binary.AppendUvarint(out, uint64(n))
	for ci, c := range t.schema {
		switch c.Kind {
		case dataset.Float:
			for _, v := range t.store.FloatsAt(ci) {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
			}
		case dataset.Int:
			for _, v := range t.store.IntsAt(ci) {
				out = binary.AppendVarint(out, v)
			}
		case dataset.String:
			for _, v := range t.store.StringsAt(ci) {
				out = binary.AppendUvarint(out, uint64(len(v)))
				out = append(out, v...)
			}
		}
	}
	return out
}

// restoreCheckpointLocked rebuilds storage, version, epoch, counters, and
// the key index from a checkpoint payload.
func (t *Table) restoreCheckpointLocked(data []byte) error {
	if len(data) < 1 || data[0] != checkpointFormat {
		return fmt.Errorf("live: checkpoint format %d not supported", int(dataByteAt(data, 0)))
	}
	nc, off, err := readUvarint(data, 1)
	if err != nil || nc != uint64(len(t.schema)) {
		return fmt.Errorf("live: checkpoint has %d columns, schema %d", nc, len(t.schema))
	}
	for i, c := range t.schema {
		if off >= len(data) || data[off] != byte(c.Kind) {
			return fmt.Errorf("live: checkpoint column %d kind mismatch", i)
		}
		off++
	}
	if off+40 > len(data) {
		return fmt.Errorf("live: checkpoint header truncated")
	}
	t.version = binary.LittleEndian.Uint64(data[off:])
	t.epoch = binary.LittleEndian.Uint64(data[off+8:])
	t.appended = binary.LittleEndian.Uint64(data[off+16:])
	t.updated = binary.LittleEndian.Uint64(data[off+24:])
	t.deleted = binary.LittleEndian.Uint64(data[off+32:])
	off += 40
	n64, off, err := readUvarint(data, off)
	if err != nil || n64 > uint64(len(data)) {
		return fmt.Errorf("live: checkpoint row count: invalid")
	}
	n := int(n64)
	store := dataset.New(t.name, t.schema)
	cols := make([][]any, len(t.schema))
	for ci, c := range t.schema {
		col := make([]any, n)
		switch c.Kind {
		case dataset.Float:
			for r := 0; r < n; r++ {
				if off+8 > len(data) {
					return fmt.Errorf("live: checkpoint column %q truncated", c.Name)
				}
				col[r] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
				off += 8
			}
		case dataset.Int:
			for r := 0; r < n; r++ {
				var v int64
				v, off, err = readVarint(data, off)
				if err != nil {
					return fmt.Errorf("live: checkpoint column %q: %w", c.Name, err)
				}
				col[r] = v
			}
		case dataset.String:
			for r := 0; r < n; r++ {
				var l uint64
				l, off, err = readUvarint(data, off)
				if err != nil || l > uint64(len(data)-off) {
					return fmt.Errorf("live: checkpoint column %q truncated", c.Name)
				}
				col[r] = string(data[off : off+int(l)])
				off += int(l)
			}
		}
		cols[ci] = col
	}
	if off != len(data) {
		return fmt.Errorf("live: checkpoint has %d spare bytes", len(data)-off)
	}
	vals := make([]any, len(t.schema))
	keyIdx := make(map[int64]int, n)
	for r := 0; r < n; r++ {
		for ci := range t.schema {
			vals[ci] = cols[ci][r]
		}
		store.MustAppendRow(vals...)
		if t.keyCol >= 0 {
			k := vals[t.keyCol].(int64)
			if _, dup := keyIdx[k]; dup {
				return fmt.Errorf("live: checkpoint has duplicate key %d", k)
			}
			keyIdx[k] = r
		}
	}
	t.store = store
	t.tomb = make([]bool, n)
	t.nTomb = 0
	t.keyIdx = keyIdx
	t.snap = nil
	return nil
}

func dataByteAt(data []byte, i int) byte {
	if i < len(data) {
		return data[i]
	}
	return 0
}

// metaFile is the JSON identity written next to the WAL so a data
// directory reopens without the caller restating the schema.
type metaFile struct {
	Name   string       `json:"name"`
	Key    string       `json:"key,omitempty"`
	Schema []metaColumn `json:"schema"`
}

type metaColumn struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

func encodeMeta(name string, schema dataset.Schema, keyCol string) ([]byte, error) {
	m := metaFile{Name: name, Key: keyCol}
	for _, c := range schema {
		m.Schema = append(m.Schema, metaColumn{Name: c.Name, Kind: c.Kind.String()})
	}
	return json.MarshalIndent(m, "", "  ")
}

func decodeMeta(data []byte) (name string, schema dataset.Schema, keyCol string, err error) {
	var m metaFile
	if err := json.Unmarshal(data, &m); err != nil {
		return "", nil, "", fmt.Errorf("live: parsing meta.json: %w", err)
	}
	if m.Name == "" || len(m.Schema) == 0 {
		return "", nil, "", fmt.Errorf("live: meta.json is missing name or schema")
	}
	for _, c := range m.Schema {
		var k dataset.Kind
		switch c.Kind {
		case "float":
			k = dataset.Float
		case "int":
			k = dataset.Int
		case "string":
			k = dataset.String
		default:
			return "", nil, "", fmt.Errorf("live: meta.json column %q has unknown kind %q", c.Name, c.Kind)
		}
		schema = append(schema, dataset.Column{Name: c.Name, Kind: k})
	}
	return m.Name, schema, m.Key, nil
}

// readUvarint decodes a uvarint at off, returning the value and the new
// offset.
func readUvarint(data []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, off, fmt.Errorf("invalid uvarint")
	}
	return v, off + n, nil
}

// readVarint decodes a zigzag varint at off.
func readVarint(data []byte, off int) (int64, int, error) {
	v, n := binary.Varint(data[off:])
	if n <= 0 {
		return 0, off, fmt.Errorf("invalid varint")
	}
	return v, off + n, nil
}
