package live

// Mix64 hashes a sequence of 64-bit words with splitmix64 finalization at
// every step. The refresh sampler uses it to give each (seed, purpose, key)
// a deterministic, platform-independent uniform draw: sample membership is
// then a pure function of the snapshot and the seed, which is what makes an
// incremental refresh byte-identical to a cold re-estimate over the same
// state.
func Mix64(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h ^= w
		h += 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
