package live

import (
	"bytes"
	"testing"
)

// FuzzParseDelta feeds arbitrary bytes through both delta decoders and
// applies every parsed batch to a real keyed table: the parser and
// Table.Apply must never panic, a reported success must leave the table
// consistent with the returned summary, and storage invariants (key index
// covering exactly the live rows) must hold afterwards.
func FuzzParseDelta(f *testing.F) {
	f.Add([]byte("id,x,tag\n1,1.5,a\n2,2.5,b\n"), true)
	f.Add([]byte("id,x,tag\n1,notanumber,a\n"), true)
	f.Add([]byte(`{"op":"append","row":{"id":1,"x":1.5,"tag":"a"}}`), false)
	f.Add([]byte(`{"op":"update","key":1,"row":{"id":1,"x":2.5,"tag":"b"}}`), false)
	f.Add([]byte(`{"op":"delete","key":1}`), false)
	f.Add([]byte("{\"op\":\"append\",\"row\":{\"id\":1,\"x\":1e309,\"tag\":\"a\"}}\n{\"op\":\"delete\",\"key\":1}"), false)
	f.Add([]byte("\xff\xfe{]"), false)
	f.Add([]byte("id,x,tag\n9223372036854775807,0,z\n"), true)

	f.Fuzz(func(t *testing.T, data []byte, asCSV bool) {
		format := NDJSON
		if asCSV {
			format = CSV
		}
		lt, err := New("F", testSchema, "id")
		if err != nil {
			t.Fatal(err)
		}
		// Seed a few rows so updates/deletes can hit existing keys.
		for i := int64(0); i < 4; i++ {
			if err := lt.Append(i, float64(i), "seed"); err != nil {
				t.Fatal(err)
			}
		}
		sum, err := ParseDelta(testSchema, format, bytes.NewReader(data), 3, func(b *Batch) error {
			_, aerr := lt.Apply(b)
			return aerr
		})
		// Whether or not parsing succeeded, committed batches must leave a
		// consistent table: live rows = seeds + appended − deleted, and a
		// snapshot must materialize without panicking.
		want := 4 + sum.Appended - sum.Deleted
		if got := lt.NumRows(); got != want {
			t.Fatalf("live rows = %d, want %d (summary %+v, err %v)", got, want, sum, err)
		}
		s := lt.Snapshot()
		if s.Tab.NumRows() != want {
			t.Fatalf("snapshot rows = %d, want %d", s.Tab.NumRows(), want)
		}
		// Every snapshot key unique (the keyed-table invariant).
		seen := make(map[int64]bool, s.Rows)
		for r := 0; r < s.Rows; r++ {
			k := s.Tab.Int(r, 0)
			if seen[k] {
				t.Fatalf("duplicate key %d in snapshot", k)
			}
			seen[k] = true
		}
	})
}
