// Package live implements mutable datasets under the repository's
// otherwise-immutable table model: a live.Table accepts append/update/delete
// batches and publishes immutable MVCC snapshots that satisfy the same
// contract as any other *dataset.Table, so the whole estimation pipeline
// (engine, qcompile, feature selection, the paper's methods) runs unchanged
// against a pinned snapshot while ingestion continues.
//
// # Snapshot model
//
// Storage is columnar and append-only within an epoch: an append extends the
// column arrays, and a snapshot is a dataset.Prefix view sharing that
// storage — O(columns), not O(rows). Updates and deletes tombstone rows;
// the next snapshot compacts live rows into fresh arrays and bumps the
// epoch. Two snapshots of the same table with the same epoch are therefore
// literal prefixes of one another: every row of the older one appears at
// the same position with the same values in the newer one. Incremental
// consumers (hash-index patching, feature-matrix extension, label memos)
// key their fast path on exactly this prefix property; an epoch change
// tells them to rebuild.
//
// Versions increase by one per applied batch and identify snapshots for
// cache keys; epochs only change when row positions move.
package live

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/wal"
)

// Op is one mutation kind within a Batch.
type Op uint8

// Op values.
const (
	// OpAppend inserts a new row (a new key, when the table has a key column).
	OpAppend Op = iota
	// OpUpdate replaces the row with the given key by a new full row.
	OpUpdate
	// OpDelete removes the row with the given key.
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpAppend:
		return "append"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Row is one mutation: an operation, the addressed key (updates and
// deletes), and the full row values in schema order (appends and updates).
type Row struct {
	Op   Op
	Key  int64 // ignored for appends (derived from Vals when a key column exists)
	Vals []any // nil for deletes
}

// Batch is an ordered list of mutations applied atomically under the
// table's lock; a batch bumps the version exactly once.
type Batch struct {
	Rows []Row
}

// Summary reports what a batch (or a stream of batches) changed.
type Summary struct {
	Appended int
	Updated  int
	Deleted  int
	Batches  int
}

// Add accumulates another summary.
func (s *Summary) Add(o Summary) {
	s.Appended += o.Appended
	s.Updated += o.Updated
	s.Deleted += o.Deleted
	s.Batches += o.Batches
}

// Rows returns the total number of mutated rows.
func (s Summary) Rows() int { return s.Appended + s.Updated + s.Deleted }

// Table is a mutable dataset: columnar storage plus a tombstone bitmap,
// with per-batch versioning and snapshot publication. Safe for concurrent
// use; snapshots taken at any time remain valid forever.
type Table struct {
	mu     sync.Mutex
	name   string
	schema dataset.Schema
	keyCol int // -1 when the table has no key column (append-only)

	store   *dataset.Table
	tomb    []bool
	nTomb   int
	keyIdx  map[int64]int // key -> storage row, live rows only
	version uint64
	epoch   uint64

	appended, updated, deleted uint64 // lifetime counters

	snap *Snapshot // cached snapshot for the current version

	// Durability (nil/zero for memory-only tables; see OpenDurable).
	log      *wal.Log
	autoCkpt int64 // checkpoint when the log grows past this many bytes
	closed   bool
}

// Snapshot is one immutable published state of a live table. Tab satisfies
// the usual table contract; Version identifies the state for cache keys;
// (Epoch, Rows) let incremental consumers detect the prefix-extension fast
// path: two snapshots with equal Epoch are prefixes of one another.
type Snapshot struct {
	Tab     *dataset.Table
	Version uint64
	Epoch   uint64
	Rows    int
}

// New returns an empty live table. keyCol names the unique int64 key column
// updates and deletes address rows by; it may be empty, making the table
// append-only (updates and deletes are then rejected).
func New(name string, schema dataset.Schema, keyCol string) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("live: missing table name")
	}
	if len(schema) == 0 {
		return nil, fmt.Errorf("live: empty schema")
	}
	kc := -1
	if keyCol != "" {
		kc = schema.Index(keyCol)
		if kc < 0 {
			return nil, fmt.Errorf("live: schema has no key column %q", keyCol)
		}
		if schema[kc].Kind != dataset.Int {
			return nil, fmt.Errorf("live: key column %q must be an int column", keyCol)
		}
	}
	return &Table{
		name:   name,
		schema: append(dataset.Schema(nil), schema...),
		keyCol: kc,
		store:  dataset.New(name, schema),
		keyIdx: make(map[int64]int),
	}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema. The caller must not modify it.
func (t *Table) Schema() dataset.Schema { return t.schema }

// KeyColumn returns the key column name, or "" for append-only tables.
func (t *Table) KeyColumn() string {
	if t.keyCol < 0 {
		return ""
	}
	return t.schema[t.keyCol].Name
}

// Version returns the current version (one increment per applied batch).
func (t *Table) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// NumRows returns the number of live (non-tombstoned) rows.
func (t *Table) NumRows() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.store.NumRows() - t.nTomb
}

// Counters returns the lifetime mutation counters (appended, updated,
// deleted rows).
func (t *Table) Counters() (appended, updated, deleted uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appended, t.updated, t.deleted
}

// Append applies a single-row append batch.
func (t *Table) Append(vals ...any) error {
	_, err := t.Apply(&Batch{Rows: []Row{{Op: OpAppend, Vals: vals}}})
	return err
}

// Apply validates and applies one batch atomically, returning its summary.
// The batch either applies fully or not at all: validation runs before any
// mutation. Appends of an existing key (on keyed tables) and
// updates/deletes of a missing key are errors; updates and deletes on
// key-less tables are errors.
//
// On a durable table (OpenDurable) the batch is written and fsynced to the
// write-ahead log BEFORE any in-memory mutation: a nil return means the
// batch will survive a crash, and a durability error (wrapping
// wal.ErrUnavailable) means nothing was applied at all — memory and disk
// never diverge.
func (t *Table) Apply(b *Batch) (Summary, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.applyLocked(b, true)
}

// applyLocked runs the validate → log → mutate pipeline. logIt is false
// only during recovery replay, where the record being applied is already on
// disk.
func (t *Table) applyLocked(b *Batch, logIt bool) (Summary, error) {
	if t.closed {
		return Summary{}, fmt.Errorf("live: table %q is closed: %w", t.name, wal.ErrUnavailable)
	}
	if t.log != nil && logIt {
		if err := t.log.Err(); err != nil {
			return Summary{}, fmt.Errorf("live: table %q: %w", t.name, err)
		}
	}
	if len(b.Rows) == 0 {
		return Summary{}, nil
	}
	sum, err := t.validateLocked(b)
	if err != nil {
		return Summary{}, err
	}
	if t.log != nil && logIt {
		// Write-ahead: the record must be durable before memory changes, so
		// an fsync failure leaves the table exactly as it was and the
		// client is never acknowledged for data disk does not have.
		if err := t.log.Append(wal.KindBatch, t.version+1, encodeBatch(t.schema, b)); err != nil {
			return Summary{}, fmt.Errorf("live: logging batch for %q: %w", t.name, err)
		}
		if err := t.log.Commit(); err != nil {
			return Summary{}, fmt.Errorf("live: committing batch for %q: %w", t.name, err)
		}
	}
	t.mutateLocked(b, sum)
	sum.Batches = 1
	if t.log != nil && logIt && t.autoCkpt > 0 && t.log.SizeSinceCheckpoint() > t.autoCkpt {
		// Bound replay cost. The batch above is already durable and
		// acknowledged; a checkpoint failure turns the log sticky-failed
		// and surfaces on the next Apply.
		t.checkpointLocked() //nolint:errcheck
	}
	return sum, nil
}

// validateLocked checks every row against the schema and the key index as
// it will be at that point in the batch, without mutating storage, and
// returns the would-be summary.
func (t *Table) validateLocked(b *Batch) (Summary, error) {
	// pendKeys tracks key liveness changes earlier batch rows would make.
	pendKeys := make(map[int64]bool) // key -> alive after the pending ops
	alive := func(k int64) bool {
		if v, ok := pendKeys[k]; ok {
			return v
		}
		_, ok := t.keyIdx[k]
		return ok
	}
	var sum Summary
	for ri, r := range b.Rows {
		switch r.Op {
		case OpAppend:
			if err := t.checkVals(r.Vals); err != nil {
				return Summary{}, fmt.Errorf("live: batch row %d: %w", ri, err)
			}
			if t.keyCol >= 0 {
				k := r.Vals[t.keyCol].(int64)
				if alive(k) {
					return Summary{}, fmt.Errorf("live: batch row %d: append of existing key %d (use update)", ri, k)
				}
				pendKeys[k] = true
			}
			sum.Appended++
		case OpUpdate:
			if t.keyCol < 0 {
				return Summary{}, fmt.Errorf("live: batch row %d: update on key-less table %q", ri, t.name)
			}
			if err := t.checkVals(r.Vals); err != nil {
				return Summary{}, fmt.Errorf("live: batch row %d: %w", ri, err)
			}
			if k := r.Vals[t.keyCol].(int64); k != r.Key {
				return Summary{}, fmt.Errorf("live: batch row %d: update key %d does not match row key %d", ri, r.Key, k)
			}
			if !alive(r.Key) {
				return Summary{}, fmt.Errorf("live: batch row %d: update of unknown key %d", ri, r.Key)
			}
			sum.Updated++
		case OpDelete:
			if t.keyCol < 0 {
				return Summary{}, fmt.Errorf("live: batch row %d: delete on key-less table %q", ri, t.name)
			}
			if !alive(r.Key) {
				return Summary{}, fmt.Errorf("live: batch row %d: delete of unknown key %d", ri, r.Key)
			}
			pendKeys[r.Key] = false
			sum.Deleted++
		default:
			return Summary{}, fmt.Errorf("live: batch row %d: unknown op %d", ri, int(r.Op))
		}
	}
	return sum, nil
}

// mutateLocked applies a validated batch: storage errors are impossible
// here, so the batch can never half-apply.
func (t *Table) mutateLocked(b *Batch, sum Summary) {
	for _, r := range b.Rows {
		switch r.Op {
		case OpAppend:
			t.store.MustAppendRow(r.Vals...)
			t.tomb = append(t.tomb, false)
			if t.keyCol >= 0 {
				t.keyIdx[r.Vals[t.keyCol].(int64)] = t.store.NumRows() - 1
			}
		case OpUpdate:
			old := t.keyIdx[r.Key]
			t.tomb[old] = true
			t.nTomb++
			t.store.MustAppendRow(r.Vals...)
			t.tomb = append(t.tomb, false)
			t.keyIdx[r.Key] = t.store.NumRows() - 1
		case OpDelete:
			old := t.keyIdx[r.Key]
			t.tomb[old] = true
			t.nTomb++
			delete(t.keyIdx, r.Key)
		}
	}
	t.appended += uint64(sum.Appended)
	t.updated += uint64(sum.Updated)
	t.deleted += uint64(sum.Deleted)
	t.version++
	t.snap = nil
}

// checkVals validates a full row against the schema (same kinds as
// dataset.Table.AppendRow, with int accepted for int64 convenience).
func (t *Table) checkVals(vals []any) error {
	if len(vals) != len(t.schema) {
		return fmt.Errorf("row has %d values, schema has %d columns", len(vals), len(t.schema))
	}
	for i, c := range t.schema {
		switch c.Kind {
		case dataset.Float:
			if _, ok := vals[i].(float64); !ok {
				return fmt.Errorf("column %q wants float64, got %T", c.Name, vals[i])
			}
		case dataset.Int:
			switch v := vals[i].(type) {
			case int64:
			case int:
				vals[i] = int64(v)
			default:
				return fmt.Errorf("column %q wants int64, got %T", c.Name, vals[i])
			}
		case dataset.String:
			if _, ok := vals[i].(string); !ok {
				return fmt.Errorf("column %q wants string, got %T", c.Name, vals[i])
			}
		}
	}
	return nil
}

// Snapshot publishes the current state as an immutable snapshot. With no
// tombstones outstanding this is O(columns): a prefix view over shared
// storage. Tombstones trigger a compaction first — live rows are copied to
// fresh arrays and the epoch is bumped, telling incremental consumers that
// row positions moved.
func (t *Table) Snapshot() *Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.snap != nil {
		return t.snap
	}
	if t.nTomb > 0 {
		t.compactLocked()
	}
	n := t.store.NumRows()
	t.snap = &Snapshot{
		Tab:     t.store.Prefix(n),
		Version: t.version,
		Epoch:   t.epoch,
		Rows:    n,
	}
	return t.snap
}

// compactLocked rewrites storage with live rows only, preserving order, and
// bumps the epoch. On durable tables it appends (without fsync — the record
// piggybacks on the next batch commit) a compaction record so replay
// reproduces the same epoch numbering; losing the record in a crash only
// shifts recovered epochs, never content, because compaction preserves
// live-row order. Caller holds t.mu.
func (t *Table) compactLocked() {
	n := t.store.NumRows()
	fresh := dataset.New(t.name, t.schema)
	vals := make([]any, len(t.schema))
	for r := 0; r < n; r++ {
		if t.tomb[r] {
			continue
		}
		for c := range t.schema {
			vals[c] = t.store.Value(r, c)
		}
		fresh.MustAppendRow(vals...)
		if t.keyCol >= 0 {
			t.keyIdx[vals[t.keyCol].(int64)] = fresh.NumRows() - 1
		}
	}
	t.store = fresh
	t.tomb = make([]bool, fresh.NumRows())
	t.nTomb = 0
	t.epoch++
	if t.log != nil && !t.closed {
		var payload [8]byte
		binary.LittleEndian.PutUint64(payload[:], t.epoch)
		// Best-effort: an error turns the log sticky-failed and surfaces on
		// the next Apply; the snapshot itself is still consistent.
		t.log.Append(wal.KindCompact, t.version, payload[:]) //nolint:errcheck
	}
}

// PrefixExtends reports whether newer extends older as a literal prefix:
// same epoch, at least as many rows. Both snapshots must come from the same
// table.
func PrefixExtends(older, newer *Snapshot) bool {
	return older != nil && newer != nil &&
		older.Epoch == newer.Epoch && older.Rows <= newer.Rows
}
