package estimate

import (
	"math"
	"testing"

	"repro/internal/sample"
	"repro/internal/xrand"
)

func TestHansenHurwitzPerfectWeights(t *testing.T) {
	// With draw probabilities exactly proportional to q, every contribution
	// equals the true proportion.
	N := 200
	positives := 50
	h := NewHansenHurwitz(N)
	for i := 0; i < 30; i++ {
		h.Add(true, 1.0/float64(positives))
	}
	est := h.Estimate(0.05)
	if math.Abs(est.Count-float64(positives)) > 1e-9 {
		t.Fatalf("count = %v, want %d", est.Count, positives)
	}
	if est.StdErr > 1e-12 {
		t.Fatalf("stderr = %v, want 0", est.StdErr)
	}
	if h.Draws() != 30 {
		t.Fatalf("Draws = %d", h.Draws())
	}
}

func TestHansenHurwitzUnbiased(t *testing.T) {
	r := xrand.New(1)
	N := 300
	labels := make([]bool, N)
	weights := make([]float64, N)
	truth := 0
	for i := range labels {
		labels[i] = r.Bool(0.25)
		if labels[i] {
			truth++
			weights[i] = 0.5 + r.Float64()
		} else {
			weights[i] = 0.05 + 0.3*r.Float64()
		}
	}
	w, err := sample.NewWithReplacement(weights)
	if err != nil {
		t.Fatal(err)
	}
	const trials, draws = 500, 50
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		h := NewHansenHurwitz(N)
		for i := 0; i < draws; i++ {
			j := w.Draw(r)
			h.Add(labels[j], w.Prob(j))
		}
		sum += h.Estimate(0.05).Count
	}
	mean := sum / trials
	if math.Abs(mean-float64(truth)) > 0.08*float64(truth) {
		t.Fatalf("mean HH estimate %v vs truth %d", mean, truth)
	}
}

func TestHansenHurwitzEmpty(t *testing.T) {
	h := NewHansenHurwitz(40)
	est := h.Estimate(0.05)
	if est.CI.Lo != 0 || est.CI.Hi != 40 {
		t.Fatalf("empty HH CI = %v", est.CI)
	}
}

func TestHansenHurwitzZeroProbGuard(t *testing.T) {
	h := NewHansenHurwitz(10)
	h.Add(true, 0)
	est := h.Estimate(0.05)
	if math.IsNaN(est.Count) || math.IsInf(est.Count, 0) {
		t.Fatalf("estimate = %v", est.Count)
	}
}
