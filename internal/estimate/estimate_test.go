package estimate

import (
	"math"
	"testing"

	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestProportionBasics(t *testing.T) {
	res := Proportion(30, 100, 1000, 0.05)
	if math.Abs(res.Proportion-0.3) > 1e-12 {
		t.Fatalf("phat = %v", res.Proportion)
	}
	if math.Abs(res.Count-300) > 1e-9 {
		t.Fatalf("count = %v", res.Count)
	}
	if !res.CI.Contains(300) {
		t.Fatalf("CI %v should contain the point estimate", res.CI)
	}
	if res.SamplesUsed != 100 {
		t.Fatalf("SamplesUsed = %d", res.SamplesUsed)
	}
	// n = 0 degenerates gracefully.
	res0 := Proportion(0, 0, 1000, 0.05)
	if res0.CI.Lo != 0 || res0.CI.Hi != 1000 {
		t.Fatalf("empty-sample CI = %v", res0.CI)
	}
}

func TestProportionCensusHasNoError(t *testing.T) {
	res := Proportion(300, 1000, 1000, 0.05)
	if res.StdErr != 0 || res.CI.Width() > 1e-9 {
		t.Fatalf("census should be exact: %+v", res)
	}
}

func TestProportionWilson(t *testing.T) {
	res := ProportionWilson(0, 50, 1000, 0.05)
	if res.CI.Hi <= 0 {
		t.Fatal("Wilson upper bound must be positive at p̂=0")
	}
	if res.CI.Lo != 0 {
		t.Fatalf("Wilson lower at p̂=0 should be 0, got %v", res.CI.Lo)
	}
}

func TestProportionUnbiased(t *testing.T) {
	// Mean of estimates over many SRS draws must approach the truth.
	r := xrand.New(1)
	N := 2000
	labels := make([]bool, N)
	trueCount := 0
	for i := range labels {
		labels[i] = r.Bool(0.23)
		if labels[i] {
			trueCount++
		}
	}
	const trials = 400
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		idx := sample.SRS(r, N, 200)
		pos := 0
		for _, i := range idx {
			if labels[i] {
				pos++
			}
		}
		sum += Proportion(pos, 200, N, 0.05).Count
	}
	mean := sum / trials
	se := float64(trueCount) * 0.05 // loose tolerance
	if math.Abs(mean-float64(trueCount)) > se {
		t.Fatalf("mean estimate %v vs truth %d", mean, trueCount)
	}
}

func TestStratifiedExactWhenHomogeneous(t *testing.T) {
	// Perfectly homogeneous strata → zero variance.
	strata := []StratumSample{
		{N: 500, Sampled: 10, Positives: 10},
		{N: 500, Sampled: 10, Positives: 0},
	}
	res, err := Stratified(strata, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Count-500) > 1e-9 {
		t.Fatalf("count = %v, want 500", res.Count)
	}
	if res.StdErr != 0 {
		t.Fatalf("homogeneous strata should give zero SE, got %v", res.StdErr)
	}
}

func TestStratifiedMatchesFormula(t *testing.T) {
	strata := []StratumSample{
		{N: 600, Sampled: 30, Positives: 12},
		{N: 400, Sampled: 20, Positives: 15},
	}
	res, err := Stratified(strata, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	wantP := 0.6*(12.0/30) + 0.4*(15.0/20)
	if math.Abs(res.Proportion-wantP) > 1e-12 {
		t.Fatalf("phat = %v, want %v", res.Proportion, wantP)
	}
	// Hand-evaluate eq. (1) with sample variances.
	s1 := stats.BinaryVariance(12, 30)
	s2 := stats.BinaryVariance(15, 20)
	wantVar := 0.6*0.6*s1/30 - 0.6*s1/1000 + 0.4*0.4*s2/20 - 0.4*s2/1000
	if math.Abs(res.StdErr*res.StdErr-wantVar) > 1e-12 {
		t.Fatalf("var = %v, want %v", res.StdErr*res.StdErr, wantVar)
	}
}

func TestStratifiedErrors(t *testing.T) {
	if _, err := Stratified([]StratumSample{{N: 5, Sampled: 6}}, 0.05); err == nil {
		t.Fatal("oversampling should error")
	}
	if _, err := Stratified([]StratumSample{{N: 5, Sampled: 2, Positives: 3}}, 0.05); err == nil {
		t.Fatal("positives > sampled should error")
	}
	if _, err := Stratified(nil, 0.05); err == nil {
		t.Fatal("empty population should error")
	}
}

func TestStratifiedVarianceFunction(t *testing.T) {
	Nh := []int{500, 500}
	Sh := []float64{0.5, 0.1}
	nh := []int{50, 50}
	v := StratifiedVariance(Nh, Sh, nh)
	want := 0.25*0.25/50 - 0.5*0.25/1000 + 0.25*0.01/50 - 0.5*0.01/1000
	if math.Abs(v-want) > 1e-12 {
		t.Fatalf("variance = %v, want %v", v, want)
	}
	if StratifiedVariance(nil, nil, nil) != 0 {
		t.Fatal("empty variance should be 0")
	}
}

func TestProportionalAllocation(t *testing.T) {
	got := ProportionalAllocation([]int{600, 300, 100}, 100, 0)
	if sumInts(got) != 100 {
		t.Fatalf("allocation %v does not sum to 100", got)
	}
	if got[0] < got[1] || got[1] < got[2] {
		t.Fatalf("allocation %v not ordered by size", got)
	}
	if math.Abs(float64(got[0])-60) > 2 {
		t.Fatalf("allocation %v deviates from proportional", got)
	}
}

func TestAllocationRespectsCapacity(t *testing.T) {
	got := ProportionalAllocation([]int{5, 1000}, 100, 0)
	if got[0] > 5 {
		t.Fatalf("allocation %v exceeds stratum size", got)
	}
	if sumInts(got) != 100 {
		t.Fatalf("allocation %v does not sum to 100", got)
	}
}

func TestAllocationMinimums(t *testing.T) {
	got := NeymanAllocation([]int{1000, 1000, 1000}, []float64{0.5, 0, 0}, 90, 5)
	if got[1] < 5 || got[2] < 5 {
		t.Fatalf("zero-variance strata must keep the minimum: %v", got)
	}
	if sumInts(got) != 90 {
		t.Fatalf("allocation %v does not sum to 90", got)
	}
	if got[0] < got[1] {
		t.Fatalf("high-variance stratum should dominate: %v", got)
	}
}

func TestNeymanMatchesTheory(t *testing.T) {
	// Without binding constraints, n_h ∝ N_h S_h.
	got := NeymanAllocation([]int{500, 500}, []float64{0.4, 0.1}, 100, 0)
	if sumInts(got) != 100 {
		t.Fatalf("sum = %d", sumInts(got))
	}
	if math.Abs(float64(got[0])-80) > 2 {
		t.Fatalf("allocation %v, want ~[80 20]", got)
	}
}

func TestNeymanAllZeroVariance(t *testing.T) {
	got := NeymanAllocation([]int{300, 700}, []float64{0, 0}, 100, 0)
	if sumInts(got) != 100 {
		t.Fatalf("sum = %d", sumInts(got))
	}
	if math.Abs(float64(got[1])-70) > 2 {
		t.Fatalf("should fall back to proportional: %v", got)
	}
}

func TestAllocationBudgetBelowMinimums(t *testing.T) {
	got := ProportionalAllocation([]int{100, 100, 100}, 7, 5)
	if sumInts(got) != 7 {
		t.Fatalf("allocation %v should sum to 7", got)
	}
	for _, v := range got {
		if v > 5 {
			t.Fatalf("allocation %v exceeds minimum spread", got)
		}
	}
}

func TestAllocationWholePopulation(t *testing.T) {
	got := ProportionalAllocation([]int{10, 20}, 100, 0)
	if got[0] != 10 || got[1] != 20 {
		t.Fatalf("census allocation = %v", got)
	}
}

func TestNeymanMinimizesVariance(t *testing.T) {
	// Among a grid of allocations, Neyman must (nearly) minimize eq. (1).
	Nh := []int{400, 600}
	Sh := []float64{0.5, 0.2}
	n := 60
	best := math.Inf(1)
	for n1 := 1; n1 < n; n1++ {
		v := StratifiedVariance(Nh, Sh, []int{n1, n - n1})
		if v < best {
			best = v
		}
	}
	got := NeymanAllocation(Nh, Sh, n, 1)
	v := StratifiedVariance(Nh, Sh, got)
	if v > best*1.05 {
		t.Fatalf("Neyman variance %v vs optimal %v (alloc %v)", v, best, got)
	}
}

func TestDesRajPerfectClassifier(t *testing.T) {
	// §4.1: with π(o) ∝ q(o) exactly, every running estimate equals the
	// true proportion.
	N := 100
	labels := make([]bool, N)
	for i := 0; i < 30; i++ {
		labels[i] = true
	}
	d := NewDesRaj(N)
	// Draw positives in any order with π = 1/30 each (ideal weights).
	for i := 0; i < 30; i++ {
		d.Add(true, 1.0/30.0)
		est := d.Estimate(0.05)
		if math.Abs(est.Count-30) > 1e-9 {
			t.Fatalf("draw %d: estimate %v, want exactly 30", i+1, est.Count)
		}
	}
	if d.Draws() != 30 {
		t.Fatalf("Draws = %d", d.Draws())
	}
}

func TestDesRajUnbiased(t *testing.T) {
	// Empirical unbiasedness across repeated weighted draws with imperfect
	// weights.
	r := xrand.New(2)
	N := 400
	labels := make([]bool, N)
	weights := make([]float64, N)
	trueCount := 0
	for i := range labels {
		labels[i] = r.Bool(0.3)
		if labels[i] {
			trueCount++
			weights[i] = 0.8 + 0.4*r.Float64() // informative but noisy
		} else {
			weights[i] = 0.1 + 0.2*r.Float64()
		}
	}
	const trials, draws = 600, 40
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		w, err := sample.NewWeighted(weights)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDesRaj(N)
		for i := 0; i < draws; i++ {
			idx, err := w.Draw(r)
			if err != nil {
				t.Fatal(err)
			}
			d.Add(labels[idx], w.InitialProb(idx))
		}
		sum += d.Estimate(0.05).Count
	}
	mean := sum / trials
	if math.Abs(mean-float64(trueCount)) > 0.06*float64(trueCount) {
		t.Fatalf("mean Des Raj estimate %v vs truth %d", mean, trueCount)
	}
}

func TestDesRajEmpty(t *testing.T) {
	d := NewDesRaj(50)
	est := d.Estimate(0.05)
	if est.CI.Lo != 0 || est.CI.Hi != 50 {
		t.Fatalf("empty estimator CI = %v", est.CI)
	}
}

func TestDesRajZeroProbGuard(t *testing.T) {
	d := NewDesRaj(10)
	d.Add(true, 0) // caller error: must not panic or produce NaN/Inf
	est := d.Estimate(0.05)
	if math.IsNaN(est.Count) || math.IsInf(est.Count, 0) {
		t.Fatalf("estimate = %v", est.Count)
	}
}

func sumInts(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}

func BenchmarkStratified(b *testing.B) {
	strata := make([]StratumSample, 10)
	for h := range strata {
		strata[h] = StratumSample{N: 1000, Sampled: 50, Positives: h * 5}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Stratified(strata, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesRaj(b *testing.B) {
	d := NewDesRaj(100000)
	for i := 0; i < b.N; i++ {
		d.Add(i%3 == 0, 1e-5)
	}
}
