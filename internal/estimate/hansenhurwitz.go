package estimate

import (
	"math"

	"repro/internal/stats"
)

// HansenHurwitz is the classical estimator for PPS sampling *with*
// replacement: each draw contributes q(o)/(N·π(o)), and the estimate is the
// mean of the contributions. The paper's LWS uses the Des Raj estimator for
// without-replacement draws (§4.1); Hansen-Hurwitz is provided as the
// with-replacement ablation — simpler, but it revisits objects and so wastes
// labeling budget when the effective sample rate is high.
type HansenHurwitz struct {
	n    int // population size N
	vals []float64
}

// NewHansenHurwitz creates an estimator for a population of n objects.
func NewHansenHurwitz(n int) *HansenHurwitz { return &HansenHurwitz{n: n} }

// Add records a with-replacement draw: the predicate outcome and the draw
// probability π(o) (normalized over the population).
func (h *HansenHurwitz) Add(q bool, pi float64) {
	v := 0.0
	if q && pi > 0 {
		v = 1 / (pi * float64(h.n))
	}
	h.vals = append(h.vals, v)
}

// Draws returns the number of draws recorded.
func (h *HansenHurwitz) Draws() int { return len(h.vals) }

// Estimate returns the current point estimate and confidence interval for
// the count.
func (h *HansenHurwitz) Estimate(alpha float64) Result {
	n := len(h.vals)
	if n == 0 {
		return Result{CI: stats.Interval{Lo: 0, Hi: float64(h.n)}, Alpha: alpha}
	}
	phat := stats.Mean(h.vals)
	varhat := 0.0
	if n >= 2 {
		varhat = stats.Variance(h.vals) / float64(n)
	}
	se := math.Sqrt(varhat)
	df := n - 1
	if df < 1 {
		df = 1
	}
	iv := stats.TInterval(phat, se, df, alpha)
	if iv.Lo < 0 {
		iv.Lo = 0
	}
	if iv.Hi > 1 {
		iv.Hi = 1
	}
	return Result{
		Proportion:  phat,
		Count:       phat * float64(h.n),
		StdErr:      se,
		CI:          iv.Scale(float64(h.n)),
		Alpha:       alpha,
		SamplesUsed: n,
	}
}
