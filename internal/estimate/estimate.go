// Package estimate implements the count estimators of §3.1 and §4.1:
// the simple-random-sampling proportion estimator with Wald/Wilson
// intervals, the stratified estimator with its variance formula (eq. 1),
// sample allocation rules (proportional and constrained Neyman), and the
// Des Raj ordered estimator for PPS sampling without replacement (eq. 3).
package estimate

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Result is a point estimate of C(O, q) with a confidence interval.
type Result struct {
	Proportion  float64        // estimated positive proportion p̂
	Count       float64        // p̂ · N
	StdErr      float64        // standard error of p̂
	CI          stats.Interval // (1−alpha) interval for the count
	Alpha       float64
	SamplesUsed int
}

// Proportion estimates p from a 0/1 SRS sample of size n drawn without
// replacement from N objects, with a Wald interval (finite population
// corrected). Use Wilson for extreme selectivities.
func Proportion(positives, n, N int, alpha float64) Result {
	phat := 0.0
	if n > 0 {
		phat = float64(positives) / float64(n)
	}
	se := 0.0
	if n > 0 {
		se = math.Sqrt(phat * (1 - phat) / float64(n))
		if N > 1 {
			se *= math.Sqrt(float64(N-n) / float64(N-1))
		}
	}
	iv := stats.WaldInterval(phat, n, N, alpha)
	return Result{
		Proportion:  phat,
		Count:       phat * float64(N),
		StdErr:      se,
		CI:          iv.Scale(float64(N)),
		Alpha:       alpha,
		SamplesUsed: n,
	}
}

// ProportionWilson is Proportion with the Wilson score interval.
func ProportionWilson(positives, n, N int, alpha float64) Result {
	res := Proportion(positives, n, N, alpha)
	res.CI = stats.WilsonInterval(res.Proportion, n, alpha).Scale(float64(N))
	return res
}

// StratumSample is the observed labels of one stratum's sample.
type StratumSample struct {
	N         int // stratum population size N_h
	Sampled   int // n_h
	Positives int // number of q(o)=1 among the n_h
}

// Stratified combines per-stratum samples into the stratified estimator of
// §3.1: p̂ = Σ W_h p̂_h with variance (1). Degrees of freedom for the t
// interval are n − H (strata with n_h < 2 contribute no variance estimate
// and are treated as zero-variance).
func Stratified(strata []StratumSample, alpha float64) (Result, error) {
	N := 0
	n := 0
	for h, s := range strata {
		if s.Sampled > s.N {
			return Result{}, fmt.Errorf("estimate: stratum %d sampled %d > size %d", h, s.Sampled, s.N)
		}
		if s.Positives > s.Sampled {
			return Result{}, fmt.Errorf("estimate: stratum %d positives %d > sampled %d", h, s.Positives, s.Sampled)
		}
		N += s.N
		n += s.Sampled
	}
	if N == 0 {
		return Result{}, fmt.Errorf("estimate: empty population")
	}
	phat := 0.0
	varhat := 0.0
	for _, s := range strata {
		if s.N == 0 {
			continue
		}
		Wh := float64(s.N) / float64(N)
		ph := 0.0
		if s.Sampled > 0 {
			ph = float64(s.Positives) / float64(s.Sampled)
		}
		phat += Wh * ph
		if s.Sampled >= 2 {
			sh2 := stats.BinaryVariance(s.Positives, s.Sampled)
			// W_h² s_h²/n_h − W_h s_h²/N  (eq. 1 with sample variance)
			varhat += Wh*Wh*sh2/float64(s.Sampled) - Wh*sh2/float64(N)
		}
	}
	if varhat < 0 {
		varhat = 0
	}
	se := math.Sqrt(varhat)
	df := n - len(strata)
	if df < 1 {
		df = 1
	}
	iv := stats.TInterval(phat, se, df, alpha)
	if iv.Lo < 0 {
		iv.Lo = 0
	}
	if iv.Hi > 1 {
		iv.Hi = 1
	}
	return Result{
		Proportion:  phat,
		Count:       phat * float64(N),
		StdErr:      se,
		CI:          iv.Scale(float64(N)),
		Alpha:       alpha,
		SamplesUsed: n,
	}, nil
}

// StratifiedVariance evaluates the paper's eq. (1) for a known stratification
// and allocation, given per-stratum standard deviations. It is the quantity
// the LSS designers minimize.
func StratifiedVariance(Nh []int, Sh []float64, nh []int) float64 {
	N := 0
	for _, v := range Nh {
		N += v
	}
	if N == 0 {
		return 0
	}
	v := 0.0
	for h := range Nh {
		Wh := float64(Nh[h]) / float64(N)
		s2 := Sh[h] * Sh[h]
		if nh[h] > 0 {
			v += Wh * Wh * s2 / float64(nh[h])
		}
		v -= Wh * s2 / float64(N)
	}
	return v
}

// ProportionalAllocation splits n samples across strata proportionally to
// their sizes, honoring a per-stratum minimum (capped by stratum size) and
// the n_h ≤ N_h constraint, rebalancing as the paper's footnote prescribes.
func ProportionalAllocation(Nh []int, n, minPer int) []int {
	weights := make([]float64, len(Nh))
	for h, v := range Nh {
		weights[h] = float64(v)
	}
	return constrainedAllocation(Nh, weights, n, minPer)
}

// NeymanAllocation allocates n samples with n_h ∝ N_h S_h, honoring the
// same constraints. Zero-variance strata still receive the minimum so their
// variance estimate stays defined (§3.1's standard caveat). If every
// stratum has zero estimated deviation the allocation degrades to
// proportional.
func NeymanAllocation(Nh []int, Sh []float64, n, minPer int) []int {
	weights := make([]float64, len(Nh))
	allZero := true
	for h := range Nh {
		weights[h] = float64(Nh[h]) * Sh[h]
		if weights[h] > 0 {
			allZero = false
		}
	}
	if allZero {
		return ProportionalAllocation(Nh, n, minPer)
	}
	return constrainedAllocation(Nh, weights, n, minPer)
}

// constrainedAllocation distributes n samples proportionally to weights,
// subject to minPer ≤ n_h ≤ N_h, using iterative rebalancing.
func constrainedAllocation(Nh []int, weights []float64, n, minPer int) []int {
	H := len(Nh)
	alloc := make([]int, H)
	if H == 0 {
		return alloc
	}
	// Feasibility: total min may exceed n; then spread n as evenly as
	// possible respecting N_h. Total capacity may be under n; then take all.
	capTotal := 0
	for _, v := range Nh {
		capTotal += v
	}
	if n >= capTotal {
		copy(alloc, Nh)
		return alloc
	}

	fixed := make([]bool, H)
	remaining := n
	// Pin minimums first (capped by stratum size).
	mins := make([]int, H)
	minTotal := 0
	for h := range Nh {
		m := minPer
		if m > Nh[h] {
			m = Nh[h]
		}
		mins[h] = m
		minTotal += m
	}
	if minTotal >= n {
		// Not enough budget for all minimums: round-robin up to mins.
		for remaining > 0 {
			progressed := false
			for h := 0; h < H && remaining > 0; h++ {
				if alloc[h] < mins[h] {
					alloc[h]++
					remaining--
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		return alloc
	}
	copy(alloc, mins)
	remaining = n - minTotal

	// Iteratively hand out the remainder proportionally to weights among
	// strata not yet at capacity.
	for iter := 0; iter < H+2 && remaining > 0; iter++ {
		wsum := 0.0
		for h := range Nh {
			if !fixed[h] && alloc[h] < Nh[h] {
				wsum += weights[h]
			}
		}
		if wsum <= 0 {
			// No weighted stratum can absorb more; fall back to spreading
			// by free capacity.
			for h := 0; h < H && remaining > 0; h++ {
				free := Nh[h] - alloc[h]
				if free > 0 {
					take := free
					if take > remaining {
						take = remaining
					}
					alloc[h] += take
					remaining -= take
				}
			}
			break
		}
		// Fractional shares with largest-remainder rounding.
		shares := make([]float64, H)
		floorSum := 0
		for h := range Nh {
			if fixed[h] || alloc[h] >= Nh[h] {
				continue
			}
			shares[h] = float64(remaining) * weights[h] / wsum
			floorSum += int(shares[h])
		}
		handed := 0
		for h := range Nh {
			if fixed[h] || alloc[h] >= Nh[h] {
				continue
			}
			give := int(shares[h])
			if alloc[h]+give > Nh[h] {
				give = Nh[h] - alloc[h]
				fixed[h] = true
			}
			alloc[h] += give
			handed += give
		}
		remaining -= handed
		if handed == 0 {
			// Distribute leftovers one-by-one by largest fractional part.
			for remaining > 0 {
				best, bestFrac := -1, -1.0
				for h := range Nh {
					if alloc[h] >= Nh[h] {
						continue
					}
					frac := shares[h] - math.Floor(shares[h])
					if frac > bestFrac {
						best, bestFrac = h, frac
					}
				}
				if best < 0 {
					break
				}
				alloc[best]++
				remaining--
			}
		}
	}
	return alloc
}

// DesRaj is the ordered estimator for PPS sampling without replacement
// (§4.1, eq. 3). Feed draws in order with Add; Estimate is valid after any
// number of draws, which is what makes the estimator "ordered".
type DesRaj struct {
	n     int     // population size N
	sumQ  float64 // Σ_{j<i} q(o_j)
	sumPi float64 // Σ_{j<i} π(o_j)
	ps    []float64
}

// NewDesRaj creates an estimator for a population of n objects.
func NewDesRaj(n int) *DesRaj { return &DesRaj{n: n} }

// Add records the i-th draw: the predicate outcome q and the object's
// initial sampling probability pi (π(o) normalized over the full
// population).
func (d *DesRaj) Add(q bool, pi float64) {
	qv := 0.0
	if q {
		qv = 1
	}
	var p float64
	if pi <= 0 {
		// An impossible draw (π=0) cannot occur under the scheme; guard
		// against caller error without dividing by zero.
		p = d.sumQ / float64(d.n)
	} else {
		p = (d.sumQ + qv/pi*(1-d.sumPi)) / float64(d.n)
	}
	d.ps = append(d.ps, p)
	d.sumQ += qv
	d.sumPi += pi
}

// Draws returns the number of draws recorded.
func (d *DesRaj) Draws() int { return len(d.ps) }

// Estimate returns the current point estimate and confidence interval for
// the count over a population of size N.
func (d *DesRaj) Estimate(alpha float64) Result {
	n := len(d.ps)
	if n == 0 {
		return Result{CI: stats.Interval{Lo: 0, Hi: float64(d.n)}, Alpha: alpha}
	}
	phat := stats.Mean(d.ps)
	varhat := 0.0
	if n >= 2 {
		varhat = stats.Variance(d.ps) / float64(n)
	}
	se := math.Sqrt(varhat)
	df := n - 1
	if df < 1 {
		df = 1
	}
	iv := stats.TInterval(phat, se, df, alpha)
	if iv.Lo < 0 {
		iv.Lo = 0
	}
	if iv.Hi > 1 {
		iv.Hi = 1
	}
	return Result{
		Proportion:  phat,
		Count:       phat * float64(d.n),
		StdErr:      se,
		CI:          iv.Scale(float64(d.n)),
		Alpha:       alpha,
		SamplesUsed: n,
	}
}
