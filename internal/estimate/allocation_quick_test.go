package estimate

import (
	"testing"
	"testing/quick"
)

// Property tests for the allocation rules: whatever the inputs, allocations
// must be feasible (0 ≤ n_h ≤ N_h) and exhaust the budget when capacity
// allows.

func decodeSizes(raw []uint8) []int {
	if len(raw) == 0 {
		return nil
	}
	if len(raw) > 8 {
		raw = raw[:8]
	}
	sizes := make([]int, len(raw))
	for i, v := range raw {
		sizes[i] = int(v%200) + 1
	}
	return sizes
}

func feasible(alloc, sizes []int, n int) bool {
	total := 0
	capTotal := 0
	for h, a := range alloc {
		if a < 0 || a > sizes[h] {
			return false
		}
		total += a
		capTotal += sizes[h]
	}
	want := n
	if capTotal < n {
		want = capTotal
	}
	return total == want
}

func TestProportionalAllocationQuick(t *testing.T) {
	f := func(raw []uint8, nRaw uint16, minRaw uint8) bool {
		sizes := decodeSizes(raw)
		if sizes == nil {
			return true
		}
		n := int(nRaw % 2000)
		minPer := int(minRaw % 10)
		alloc := ProportionalAllocation(sizes, n, minPer)
		return feasible(alloc, sizes, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNeymanAllocationQuick(t *testing.T) {
	f := func(raw []uint8, devs []uint8, nRaw uint16, minRaw uint8) bool {
		sizes := decodeSizes(raw)
		if sizes == nil {
			return true
		}
		Sh := make([]float64, len(sizes))
		for i := range Sh {
			if i < len(devs) {
				Sh[i] = float64(devs[i]%128) / 255
			}
		}
		n := int(nRaw % 2000)
		minPer := int(minRaw % 10)
		alloc := NeymanAllocation(sizes, Sh, n, minPer)
		return feasible(alloc, sizes, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDesRajRunningEstimateQuick(t *testing.T) {
	// Running estimates must always stay finite and within [0, N] after
	// clamping at the interval level.
	f := func(qs []bool, pis []uint8) bool {
		n := len(qs)
		if n == 0 || n > 50 {
			return true
		}
		d := NewDesRaj(1000)
		for i, q := range qs {
			pi := 0.001
			if i < len(pis) {
				pi = (float64(pis[i]) + 1) / 512
			}
			d.Add(q, pi)
		}
		res := d.Estimate(0.05)
		if res.CI.Lo < 0 || res.CI.Hi > 1000 {
			return false
		}
		return !isNaN(res.Count) && !isNaN(res.StdErr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func isNaN(v float64) bool { return v != v }
