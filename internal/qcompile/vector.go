package qcompile

// Vectorized evaluation: instead of one closure call per object, batches of
// up to VecWidth objects are labeled together. Per-object ("pre") conjuncts
// lower to bitmap kernels — selection bitmap in, selection bitmap out — and
// for the common probe-indexed join shapes the whole walk fuses into a
// monomorphic nested loop over raw column slices with no closure dispatch
// per row. Everything the hot loop touches is preallocated in the VecEval
// arena, so steady-state batch labeling performs zero allocations
// (verified by TestVecEvalZeroAlloc).
//
// Equivalence: labels are byte-identical to the scalar path on the full
// supported subset — the fused loop reproduces the interpreter's NaN
// compare forms, ±0 hash-bucket folding, probe NaN→all-rows semantics, and
// the monotone COUNT(*) abort exactly, and any shape the fuser cannot prove
// falls back per lane to the audited scalar closures sharing one
// preallocated env. The only permitted divergence is which panic surfaces
// first when several objects of one batch would panic (e.g. two divisions
// by zero): the set of panicking evaluations is identical, but kernels run
// conjunct-major over the batch while the scalar path runs object-major.
// Fused probe keys and filter operands are restricted to panic-free
// expressions so no panic can be introduced that the scalar path would have
// skipped behind an empty join.

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sql"
)

// VecWidth is the number of objects one selection bitmap covers: batches
// are processed in chunks of up to 64 lanes, one bit per object.
const VecWidth = 64

// cmpOp is a comparison operator code for the fused kernels.
type cmpOp uint8

const (
	opEQ cmpOp = iota
	opNE
	opLT
	opLE
	opGT
	opGE
)

var cmpOpOf = map[string]cmpOp{"=": opEQ, "<>": opNE, "<": opLT, "<=": opLE, ">": opGT, ">=": opGE}

// cmpFlip mirrors an operator so "const op col" can be evaluated as
// "col flipped-op const".
var cmpFlip = [...]cmpOp{opEQ: opEQ, opNE: opNE, opLT: opGT, opLE: opGE, opGT: opLT, opGE: opLE}

// cmpF compares through float64 using the interpreter's exact forms: the
// derived !(a<b) / !(a>b) shapes make NaN compare equal to everything.
func cmpF(op cmpOp, a, b float64) bool {
	switch op {
	case opEQ:
		return !(a < b) && !(a > b)
	case opNE:
		return a < b || a > b
	case opLT:
		return a < b
	case opLE:
		return !(a > b)
	case opGT:
		return a > b
	default: // opGE
		return !(a < b)
	}
}

func cmpS(op cmpOp, a, b string) bool {
	switch op {
	case opEQ:
		return a == b
	case opNE:
		return a != b
	case opLT:
		return a < b
	case opLE:
		return a <= b
	case opGT:
		return a > b
	default: // opGE
		return a >= b
	}
}

// vecKernel evaluates one boolean conjunct over the lanes selected in sel
// and returns the lanes where it holds (always a subset of sel).
type vecKernel func(v *VecEval, lanes []int, sel uint64) uint64

// preStep is one per-object conjunct: a bitmap kernel when the shape
// vectorizes, otherwise the audited scalar closure applied lane by lane
// under the mask.
type preStep struct {
	vec    vecKernel
	scalar func(*env) bool
}

// vecPlan is the per-Bind vectorization plan. fused is non-nil when the
// whole join walk compiled to the fused kernel; otherwise surviving lanes
// run the scalar walk with a shared env.
type vecPlan struct {
	pre     []preStep
	fused   []fusedAlias
	short   shortKind
	countOp cmpOp

	// single marks the one-alias probe shape with numeric-only filters;
	// lanes then run laneSingle, a flat loop with no per-row calls. chain
	// marks the two-alias probe chain (object → alias 0 → alias 1, the
	// SQL-EXISTS join shape), run as the flat laneChain loop once the
	// probe buckets are built.
	single bool
	chain  bool

	// thrConst holds the COUNT(*) threshold when its expression is
	// object-free (parameters only): evaluated once at Bind instead of once
	// per lane.
	thrConst bool
	thrVal   float64
	thrUse   bool

	// Precomputed probe buckets (objRows for per-object keys, depRows for
	// earlier-alias row keys), built lazily once cumulative batch lanes
	// reach the build cost — at that point the map probes already paid for
	// the precompute, and every later full scan (the WithExact /
	// shared-scan passes) skips hashing entirely. Sampling-budget runs
	// never cross the threshold and never pay the O(N) build. objReady
	// gates the (sync.Once-built) bucket slices with release/acquire
	// semantics. The buckets freeze the probe-index map contents, which is
	// sound because a Bound's indexes are immutable after Bind (Extend
	// patches indexes only on exclusively-owned, not-yet-bound programs).
	nObjects  int
	buildCost int64 // total bucket-array entries the lazy build fills
	lanes     atomic.Int64
	objOnce   sync.Once
	objReady  atomic.Bool
}

// fusedAlias is one FROM entry of the fused walk: the probe key source
// (per-lane precomputed value, or a raw column of an earlier alias), the
// prebuilt hash index, and the alias's filters as oriented comparisons.
type fusedAlias struct {
	n     int
	probe bool
	str   bool // string-keyed index

	keyNumFn func(*env) float64 // per-object numeric key (panic-free)
	keyStrFn func(*env) string  // per-object string key (panic-free)
	keyDepth int                // earlier alias the key column belongs to
	colF     []float64          // key column when float
	colI     []int64            // key column when int
	colS     []string           // key column when string

	numIdx map[float64][]int32
	strIdx map[string][]int32
	all    []int32

	// objRows[obj] is the probe bucket for each object when the key is a
	// per-object expression; depRows[r] is the bucket for row r of the
	// keyDepth alias when the key is an earlier alias's column. Both are
	// nil until the lazy build (see vecPlan.objReady).
	objRows [][]int32
	depRows [][]int32

	filters []fusedFilter
}

// fusedFilter is one conjunct of the shape "col <op> per-object-constant",
// oriented with the column on the left. The per-object side is evaluated
// once per lane into the arena slot; the inner loop then compares raw
// column values against it with no closure calls.
type fusedFilter struct {
	num      bool
	constRhs bool // rhs is object-free: evaluated once per VecEval, not per lane
	fs       []float64
	is       []int64
	ss       []string
	op       cmpOp
	rhsF     func(*env) float64
	rhsS     func(*env) string
	slot     int
}

// buildVecPlan derives the vectorization plan for a freshly bound program.
// It never fails: any shape outside the fusable/vectorizable subset simply
// keeps its scalar lowering, lane by lane.
func buildVecPlan(p *Program, lc *lowerCtx, b *Bound, nObjects int) *vecPlan {
	vp := &vecPlan{short: b.short, nObjects: nObjects}
	if op, ok := cmpOpOf[b.countOp]; ok {
		vp.countOp = op
	}
	for i, c := range p.pre {
		st := preStep{scalar: b.pre[i]}
		if k, ok := lc.buildVecBool(c); ok {
			st.vec = k
		}
		vp.pre = append(vp.pre, st)
	}
	vp.fused = buildFused(p, lc, b)
	if vp.fused != nil {
		if b.short == shortCount && b.thrFn != nil &&
			p.objFree(p.threshold) && panicFree(p.threshold) {
			vp.thrVal = b.thrFn(&env{})
			vp.thrUse = !math.IsNaN(vp.thrVal)
			vp.thrConst = true
		}
		numFilters := func(fa *fusedAlias) bool {
			for i := range fa.filters {
				if !fa.filters[i].num {
					return false
				}
			}
			return true
		}
		if len(vp.fused) == 1 && vp.fused[0].probe {
			vp.single = numFilters(&vp.fused[0])
		}
		if len(vp.fused) == 2 &&
			vp.fused[0].probe && vp.fused[0].keyDepth < 0 &&
			vp.fused[1].probe && vp.fused[1].keyDepth == 0 {
			vp.chain = numFilters(&vp.fused[0]) && numFilters(&vp.fused[1])
		}
		for d := range vp.fused {
			fa := &vp.fused[d]
			if !fa.probe {
				continue
			}
			if fa.keyDepth < 0 {
				vp.buildCost += int64(nObjects)
			} else {
				vp.buildCost += int64(vp.fused[fa.keyDepth].n)
			}
		}
	}
	return vp
}

// buildFused compiles the join walk into fusedAlias entries, or returns nil
// when any alias falls outside the fusable subset: the program must
// short-circuit (no HAVING, or the monotone COUNT(*) abort — which
// guarantees the only aggregate is that COUNT), probe keys must be plain
// earlier-alias columns or panic-free per-object expressions, and filters
// must be comparisons between a column of their alias and a panic-free
// per-object expression.
func buildFused(p *Program, lc *lowerCtx, b *Bound) []fusedAlias {
	if b.short == shortNone {
		return nil
	}
	out := make([]fusedAlias, 0, len(p.aliases))
	slot := 0
	for d := range p.aliases {
		ap := &p.aliases[d]
		fa := fusedAlias{n: ap.tab.NumRows(), keyDepth: -1}
		if pp := ap.probe; pp != nil {
			fa.probe = true
			fa.numIdx, fa.strIdx, fa.all = pp.numIdx, pp.strIdx, pp.all
			fa.str = pp.strIdx != nil
			rd, ok := p.depthOf(pp.rhs)
			if !ok {
				return nil
			}
			if rd < 0 {
				if !panicFree(pp.rhs) {
					return nil
				}
				ce, err := lc.lower(pp.rhs)
				if err != nil {
					return nil
				}
				switch {
				case fa.str && ce.k == kStr:
					fa.keyStrFn = ce.s
				case !fa.str && numeric(ce.k):
					fa.keyNumFn = ce.toFloat()
				default:
					return nil
				}
			} else {
				cr, ok := pp.rhs.(*sql.ColumnRef)
				if !ok {
					return nil
				}
				ref, err := p.resolve(cr)
				if err != nil || ref.kind != refTable {
					return nil
				}
				fa.keyDepth = ref.depth
				tab := p.aliases[ref.depth].tab
				switch k := tab.Schema()[ref.col].Kind; {
				case k == dataset.Float && !fa.str:
					fa.colF = tab.FloatsAt(ref.col)
				case k == dataset.Int && !fa.str:
					fa.colI = tab.IntsAt(ref.col)
				case k == dataset.String && fa.str:
					fa.colS = tab.StringsAt(ref.col)
				default:
					return nil
				}
			}
		}
		for _, f := range ap.filters {
			ff, ok := buildFusedFilter(p, lc, f, d, slot)
			if !ok {
				return nil
			}
			slot++
			fa.filters = append(fa.filters, ff)
		}
		out = append(out, fa)
	}
	return out
}

func buildFusedFilter(p *Program, lc *lowerCtx, e sql.Expr, depth, slot int) (fusedFilter, bool) {
	be, ok := e.(*sql.BinaryExpr)
	if !ok {
		return fusedFilter{}, false
	}
	op, ok := cmpOpOf[be.Op]
	if !ok {
		return fusedFilter{}, false
	}
	for _, side := range [2][2]sql.Expr{{be.L, be.R}, {be.R, be.L}} {
		cr, isCR := side[0].(*sql.ColumnRef)
		if !isCR {
			continue
		}
		ref, err := p.resolve(cr)
		if err != nil || ref.kind != refTable || ref.depth != depth {
			continue
		}
		rd, okd := p.depthOf(side[1])
		if !okd || rd >= 0 || !panicFree(side[1]) {
			continue
		}
		ce, err := lc.lower(side[1])
		if err != nil {
			continue
		}
		o := op
		if side[0] == be.R {
			o = cmpFlip[op]
		}
		ff := fusedFilter{op: o, slot: slot, constRhs: p.objFree(side[1])}
		tab := p.aliases[depth].tab
		switch k := tab.Schema()[ref.col].Kind; {
		case k == dataset.Float && numeric(ce.k):
			ff.num, ff.fs, ff.rhsF = true, tab.FloatsAt(ref.col), ce.toFloat()
		case k == dataset.Int && numeric(ce.k):
			ff.num, ff.is, ff.rhsF = true, tab.IntsAt(ref.col), ce.toFloat()
		case k == dataset.String && ce.k == kStr:
			ff.ss, ff.rhsS = tab.StringsAt(ref.col), ce.s
		default:
			continue
		}
		return ff, true
	}
	return fusedFilter{}, false
}

// depthOf is maxDepth without the object-column recording side effect (the
// program is shared across Binds and must stay immutable here).
func (p *Program) depthOf(e sql.Expr) (int, bool) {
	depth, ok := -1, true
	sql.WalkExpr(e, func(x sql.Expr) {
		cr, isCR := x.(*sql.ColumnRef)
		if !isCR || !ok {
			return
		}
		ref, err := p.resolve(cr)
		if err != nil {
			ok = false
			return
		}
		if ref.kind == refTable && ref.depth > depth {
			depth = ref.depth
		}
	})
	return depth, ok
}

// objFree reports whether the expression references only parameters —
// neither object columns nor alias columns — so its lowered closure is a
// per-Bind constant.
func (p *Program) objFree(e sql.Expr) bool {
	free := true
	sql.WalkExpr(e, func(x sql.Expr) {
		cr, isCR := x.(*sql.ColumnRef)
		if !isCR || !free {
			return
		}
		if ref, err := p.resolve(cr); err != nil || ref.kind != refParam {
			free = false
		}
	})
	return free
}

// panicFree reports whether evaluating the expression can never panic: the
// lowered closures only panic on division ("/" divides through float64 and
// panics on zero) and SQRT of a negative argument.
func panicFree(e sql.Expr) bool {
	ok := true
	sql.WalkExpr(e, func(x sql.Expr) {
		switch n := x.(type) {
		case *sql.BinaryExpr:
			if n.Op == "/" {
				ok = false
			}
		case *sql.FuncCall:
			if n.Name == "SQRT" {
				ok = false
			}
		}
	})
	return ok
}

// buildVecBool compiles a per-object boolean expression to a bitmap kernel.
// AND masks the right side by the left side's survivors, OR evaluates the
// right side only on lanes the left side rejected, and NOT complements
// within the selection — preserving the scalar short-circuit exactly.
func (lc *lowerCtx) buildVecBool(e sql.Expr) (vecKernel, bool) {
	switch x := e.(type) {
	case *sql.BinaryExpr:
		switch x.Op {
		case "AND", "OR":
			l, okl := lc.buildVecBool(x.L)
			if !okl {
				return nil, false
			}
			r, okr := lc.buildVecBool(x.R)
			if !okr {
				return nil, false
			}
			if x.Op == "AND" {
				return func(v *VecEval, lanes []int, sel uint64) uint64 {
					return r(v, lanes, l(v, lanes, sel))
				}, true
			}
			return func(v *VecEval, lanes []int, sel uint64) uint64 {
				lt := l(v, lanes, sel)
				return lt | r(v, lanes, sel&^lt)
			}, true
		case "=", "<>", "<", "<=", ">", ">=":
			return lc.buildVecCompare(x)
		}
	case *sql.UnaryExpr:
		if x.Op == "NOT" {
			inner, ok := lc.buildVecBool(x.X)
			if !ok {
				return nil, false
			}
			return func(v *VecEval, lanes []int, sel uint64) uint64 {
				return sel &^ inner(v, lanes, sel)
			}, true
		}
	}
	return nil, false
}

func (lc *lowerCtx) buildVecCompare(x *sql.BinaryExpr) (vecKernel, bool) {
	op := cmpOpOf[x.Op]
	if lf, ok := lc.vecNumLoader(x.L); ok {
		rf, ok2 := lc.vecNumLoader(x.R)
		if !ok2 {
			return nil, false
		}
		return func(v *VecEval, lanes []int, sel uint64) uint64 {
			var out uint64
			for m := sel; m != 0; {
				l := bits.TrailingZeros64(m)
				m &^= 1 << uint(l)
				if cmpF(op, lf(lanes[l]), rf(lanes[l])) {
					out |= 1 << uint(l)
				}
			}
			return out
		}, true
	}
	ls, ok := lc.vecStrLoader(x.L)
	if !ok {
		return nil, false
	}
	rs, ok := lc.vecStrLoader(x.R)
	if !ok {
		return nil, false
	}
	return func(v *VecEval, lanes []int, sel uint64) uint64 {
		var out uint64
		for m := sel; m != 0; {
			l := bits.TrailingZeros64(m)
			m &^= 1 << uint(l)
			if cmpS(op, ls(lanes[l]), rs(lanes[l])) {
				out |= 1 << uint(l)
			}
		}
		return out
	}, true
}

// vecNumLoader builds a per-lane numeric loader for the leaf shapes the
// kernels support: literals, parameters, object columns, and unary minus of
// those. Anything richer keeps the scalar path for the whole conjunct.
func (lc *lowerCtx) vecNumLoader(e sql.Expr) (func(int) float64, bool) {
	switch x := e.(type) {
	case *sql.NumberLit:
		v := x.Value
		if x.IsInt {
			v = float64(int64(x.Value))
		}
		return func(int) float64 { return v }, true
	case *sql.UnaryExpr:
		if x.Op != "-" {
			return nil, false
		}
		f, ok := lc.vecNumLoader(x.X)
		if !ok {
			return nil, false
		}
		return func(o int) float64 { return -f(o) }, true
	case *sql.ColumnRef:
		ref, err := lc.prog.resolve(x)
		if err != nil {
			return nil, false
		}
		switch ref.kind {
		case refObject:
			oc := lc.obj[ref.name]
			if oc == nil {
				return nil, false
			}
			switch oc.k {
			case kFloat:
				xs := oc.fs
				return func(o int) float64 { return xs[o] }, true
			case kInt:
				xs := oc.is
				return func(o int) float64 { return float64(xs[o]) }, true
			}
		case refParam:
			v, ok := lc.params[ref.name]
			if !ok {
				return nil, false
			}
			switch v.Kind {
			case engine.KInt:
				c := float64(v.I)
				return func(int) float64 { return c }, true
			case engine.KFloat:
				c := v.F
				return func(int) float64 { return c }, true
			}
		}
	}
	return nil, false
}

func (lc *lowerCtx) vecStrLoader(e sql.Expr) (func(int) string, bool) {
	switch x := e.(type) {
	case *sql.StringLit:
		v := x.Value
		return func(int) string { return v }, true
	case *sql.ColumnRef:
		ref, err := lc.prog.resolve(x)
		if err != nil {
			return nil, false
		}
		switch ref.kind {
		case refObject:
			if oc := lc.obj[ref.name]; oc != nil && oc.k == kStr {
				xs := oc.ss
				return func(o int) string { return xs[o] }, true
			}
		case refParam:
			if v, ok := lc.params[ref.name]; ok && v.Kind == engine.KString {
				c := v.S
				return func(int) string { return c }, true
			}
		}
	}
	return nil, false
}

// VecEval is the arena for vectorized batch evaluation: every buffer the
// hot loop touches is allocated once here and reused across batches, so
// EvalBatch runs with zero allocations in steady state. A VecEval is not
// safe for concurrent use with itself; create one per goroutine.
type VecEval struct {
	b   *Bound
	env *env // shared scratch for scalar closures and fallback lanes

	// fused per-lane scratch, indexed by alias / filter slot
	rows   []int
	keyF   []float64
	keyS   []string
	filtF  []float64
	filtS  []string
	count  int64
	thr    float64
	useThr bool
	empty  bool // some relation is empty: every label is false
	fast   bool // per-batch cache of vecPlan.objReady (precomputed buckets usable)
}

// NewVecEval returns a vectorized batch evaluator over this bound program.
// Labels are byte-identical to NewEvalFn's (see the package equivalence
// contract); the batch path exists purely as a throughput knob.
func (b *Bound) NewVecEval() *VecEval {
	v := &VecEval{
		b: b,
		env: &env{
			rows: make([]int, b.nAliases),
			reps: make([]int, b.nAliases),
			accs: make([]agg, b.nSlots),
		},
	}
	for a := range b.aliases {
		if b.aliases[a].n == 0 {
			v.empty = true
		}
	}
	if b.vec != nil && b.vec.fused != nil {
		f := b.vec.fused
		nf := 0
		for d := range f {
			nf += len(f[d].filters)
		}
		v.rows = make([]int, len(f))
		v.keyF = make([]float64, len(f))
		v.keyS = make([]string, len(f))
		v.filtF = make([]float64, nf)
		v.filtS = make([]string, nf)
		// Object-free filter operands are per-Bind constants: evaluate them
		// into their arena slots once here, never per lane.
		for d := range f {
			fa := &f[d]
			for i := range fa.filters {
				ff := &fa.filters[i]
				if !ff.constRhs {
					continue
				}
				if ff.num {
					v.filtF[ff.slot] = ff.rhsF(v.env)
				} else {
					v.filtS[ff.slot] = ff.rhsS(v.env)
				}
			}
		}
	}
	return v
}

// Vectorized reports whether the join walk fused into the vector kernel
// (as opposed to batched per-lane scalar evaluation).
func (b *Bound) Vectorized() bool { return b.vec != nil && b.vec.fused != nil }

// EvalBatch labels idxs into out (out[i] = label of object idxs[i]),
// processing VecWidth lanes per selection bitmap. It allocates nothing in
// steady state.
func (v *VecEval) EvalBatch(idxs []int, out []bool) {
	b := v.b
	if b.vec == nil {
		for i, idx := range idxs {
			out[i] = b.eval(idx, v.env)
		}
		return
	}
	vp := b.vec
	if vp.buildCost > 0 {
		v.fast = vp.objReady.Load()
	}
	for base := 0; base < len(idxs); base += VecWidth {
		n := min(VecWidth, len(idxs)-base)
		lanes := idxs[base : base+n]
		chunk := out[base : base+n]
		for i := range chunk {
			chunk[i] = false
		}
		if v.empty {
			continue
		}
		sel := ^uint64(0)
		if n < VecWidth {
			sel = 1<<uint(n) - 1
		}
		for i := range b.vec.pre {
			st := &b.vec.pre[i]
			if st.vec != nil {
				sel = st.vec(v, lanes, sel)
			} else {
				var keep uint64
				for m := sel; m != 0; {
					l := bits.TrailingZeros64(m)
					m &^= 1 << uint(l)
					v.env.obj = lanes[l]
					if st.scalar(v.env) {
						keep |= 1 << uint(l)
					}
				}
				sel = keep
			}
			if sel == 0 {
				break
			}
		}
		for m := sel; m != 0; {
			l := bits.TrailingZeros64(m)
			m &^= 1 << uint(l)
			chunk[l] = v.lane(lanes[l])
		}
	}
	// Once the lanes that went through the map probes add up to the build
	// cost, precompute every probe bucket (shared across all pooled
	// VecEvals of this Bound): later passes index a slice instead of
	// hashing a key. The build runs after the batch, so the crossing batch
	// stays allocation-free, and the threshold guarantees the build never
	// exceeds the probe work already spent.
	if vp.buildCost > 0 && !v.fast && !v.empty &&
		vp.lanes.Add(int64(len(idxs))) >= vp.buildCost {
		vp.objOnce.Do(v.buildObjRows)
	}
}

// buildObjRows materializes the probe buckets — fa.objRows for
// per-object-keyed aliases, fa.depRows for earlier-alias-keyed ones —
// reproducing the probe's key→bucket mapping exactly (NaN keys take the
// all-rows bucket, matching the interpreter's NaN-equals-everything
// compare).
func (v *VecEval) buildObjRows() {
	vp := v.b.vec
	e := v.env
	saved := e.obj
	for d := range vp.fused {
		fa := &vp.fused[d]
		if !fa.probe {
			continue
		}
		if fa.keyDepth >= 0 {
			rows := make([][]int32, vp.fused[fa.keyDepth].n)
			for r0 := range rows {
				switch {
				case fa.colS != nil:
					rows[r0] = fa.strIdx[fa.colS[r0]]
				case fa.colF != nil:
					k := fa.colF[r0]
					if math.IsNaN(k) {
						rows[r0] = fa.all
					} else {
						rows[r0] = fa.numIdx[k]
					}
				default:
					rows[r0] = fa.numIdx[float64(fa.colI[r0])]
				}
			}
			fa.depRows = rows
			continue
		}
		rows := make([][]int32, vp.nObjects)
		for obj := range rows {
			e.obj = obj
			if fa.str {
				rows[obj] = fa.strIdx[fa.keyStrFn(e)]
				continue
			}
			k := fa.keyNumFn(e)
			if math.IsNaN(k) {
				rows[obj] = fa.all
			} else {
				rows[obj] = fa.numIdx[k]
			}
		}
		fa.objRows = rows
	}
	e.obj = saved
	vp.objReady.Store(true)
}

// lane decides one surviving lane: the fused walk when available, else the
// scalar walk on the shared env.
func (v *VecEval) lane(obj int) bool {
	b := v.b
	e := v.env
	e.obj = obj
	vp := b.vec
	if vp.fused == nil {
		return b.evalJoin(e)
	}
	if vp.thrConst {
		v.thr, v.useThr = vp.thrVal, vp.thrUse
	} else {
		v.useThr = false
		if b.short == shortCount && b.thrFn != nil {
			v.thr = b.thrFn(e)
			v.useThr = !math.IsNaN(v.thr) // NaN compares equal to everything; no abort
		}
	}
	f := vp.fused
	for d := range f {
		fa := &f[d]
		if !(v.fast && fa.objRows != nil) {
			if fa.keyNumFn != nil {
				v.keyF[d] = fa.keyNumFn(e)
			}
			if fa.keyStrFn != nil {
				v.keyS[d] = fa.keyStrFn(e)
			}
		}
		for i := range fa.filters {
			ff := &fa.filters[i]
			if ff.constRhs {
				continue
			}
			if ff.num {
				v.filtF[ff.slot] = ff.rhsF(e)
			} else {
				v.filtS[ff.slot] = ff.rhsS(e)
			}
		}
	}
	v.count = 0
	if vp.single {
		return v.laneSingle(obj, &f[0])
	}
	if vp.chain && v.fast {
		if f0, f1 := &f[0], &f[1]; f0.objRows != nil && f1.depRows != nil {
			return v.laneChain(obj, f0, f1)
		}
	}
	switch v.fwalk(0) {
	case sigTrue:
		return true
	case sigFalse:
		return false
	}
	if b.vec.short == shortNoHaving {
		return false // no witnessing row was found
	}
	if v.count == 0 {
		return false // empty group set: EXISTS over zero groups
	}
	return cmpF(b.vec.countOp, float64(v.count), v.thr)
}

// laneSingle is the flat loop for the one-alias probe shape (the SQL-EXISTS
// workload): bucket lookup — a precomputed per-object slice once the lazy
// build ran, a map probe before — then numeric filter comparisons on raw
// columns with the COUNT(*) abort inlined (mirroring fonRow case by case).
// No per-row function calls survive into the hot loop.
func (v *VecEval) laneSingle(obj int, fa *fusedAlias) bool {
	vp := v.b.vec
	var rows []int32
	switch {
	case v.fast && fa.objRows != nil:
		rows = fa.objRows[obj]
	case fa.str:
		rows = fa.strIdx[v.keyS[0]]
	default:
		k := v.keyF[0]
		if math.IsNaN(k) {
			rows = fa.all // NaN compares equal to everything
		} else {
			rows = fa.numIdx[k]
		}
	}
	short, countOp := vp.short, vp.countOp
	useThr, thr := v.useThr, v.thr
	var count int64
rowLoop:
	for _, r := range rows {
		for i := range fa.filters {
			ff := &fa.filters[i]
			var c float64
			if ff.fs != nil {
				c = ff.fs[r]
			} else {
				c = float64(ff.is[r])
			}
			if !cmpF(ff.op, c, v.filtF[ff.slot]) {
				continue rowLoop
			}
		}
		if short == shortNoHaving {
			return true
		}
		count++
		if useThr {
			if s := countAbort(countOp, float64(count), thr); s != sigNone {
				return s == sigTrue
			}
		}
	}
	if short == shortNoHaving {
		return false // no witnessing row was found
	}
	if count == 0 {
		return false // empty group set: EXISTS over zero groups
	}
	return cmpF(countOp, float64(count), thr)
}

// laneChain is laneSingle's two-alias form: object → alias-0 bucket →
// alias-1 bucket, all precomputed, with numeric filters and the COUNT(*)
// abort inlined. It runs only after the lazy bucket build (v.fast).
func (v *VecEval) laneChain(obj int, f0, f1 *fusedAlias) bool {
	vp := v.b.vec
	short, countOp := vp.short, vp.countOp
	useThr, thr := v.useThr, v.thr
	var count int64
outer:
	for _, r0 := range f0.objRows[obj] {
		for i := range f0.filters {
			ff := &f0.filters[i]
			var c float64
			if ff.fs != nil {
				c = ff.fs[r0]
			} else {
				c = float64(ff.is[r0])
			}
			if !cmpF(ff.op, c, v.filtF[ff.slot]) {
				continue outer
			}
		}
	inner:
		for _, r1 := range f1.depRows[r0] {
			for i := range f1.filters {
				ff := &f1.filters[i]
				var c float64
				if ff.fs != nil {
					c = ff.fs[r1]
				} else {
					c = float64(ff.is[r1])
				}
				if !cmpF(ff.op, c, v.filtF[ff.slot]) {
					continue inner
				}
			}
			if short == shortNoHaving {
				return true
			}
			count++
			if useThr {
				if s := countAbort(countOp, float64(count), thr); s != sigNone {
					return s == sigTrue
				}
			}
		}
	}
	if short == shortNoHaving {
		return false // no witnessing row was found
	}
	if count == 0 {
		return false // empty group set: EXISTS over zero groups
	}
	return cmpF(countOp, float64(count), thr)
}

// countAbort is the monotone COUNT(*) early-exit decision: once the running
// count can no longer change the comparison's outcome, the walk resolves.
func countAbort(op cmpOp, c, thr float64) signal {
	switch op {
	case opLT:
		if !(c < thr) {
			return sigFalse
		}
	case opLE:
		if c > thr {
			return sigFalse
		}
	case opGT:
		if c > thr {
			return sigTrue
		}
	case opGE:
		if !(c < thr) {
			return sigTrue
		}
	case opEQ:
		if c > thr {
			return sigFalse
		}
	case opNE:
		if c > thr {
			return sigTrue
		}
	}
	return sigNone
}

func (v *VecEval) fwalk(d int) signal {
	fa := &v.b.vec.fused[d]
	if !fa.probe {
		for r := 0; r < fa.n; r++ {
			if s := v.fvisit(d, r, fa); s != sigNone {
				return s
			}
		}
		return sigNone
	}
	if v.fast {
		rows := fa.objRows
		if rows != nil {
			for _, r := range rows[v.env.obj] {
				if s := v.fvisit(d, int(r), fa); s != sigNone {
					return s
				}
			}
			return sigNone
		}
		if rows = fa.depRows; rows != nil {
			for _, r := range rows[v.rows[fa.keyDepth]] {
				if s := v.fvisit(d, int(r), fa); s != sigNone {
					return s
				}
			}
			return sigNone
		}
	}
	if fa.str {
		k := v.keyS[d]
		if fa.colS != nil {
			k = fa.colS[v.rows[fa.keyDepth]]
		}
		for _, r := range fa.strIdx[k] {
			if s := v.fvisit(d, int(r), fa); s != sigNone {
				return s
			}
		}
		return sigNone
	}
	var k float64
	switch {
	case fa.colF != nil:
		k = fa.colF[v.rows[fa.keyDepth]]
	case fa.colI != nil:
		k = float64(fa.colI[v.rows[fa.keyDepth]])
	default:
		k = v.keyF[d]
	}
	rows := fa.numIdx[k]
	if math.IsNaN(k) {
		rows = fa.all // NaN compares equal to everything
	}
	for _, r := range rows {
		if s := v.fvisit(d, int(r), fa); s != sigNone {
			return s
		}
	}
	return sigNone
}

func (v *VecEval) fvisit(d, r int, fa *fusedAlias) signal {
	v.rows[d] = r
	for i := range fa.filters {
		ff := &fa.filters[i]
		if ff.num {
			a := v.filtF[ff.slot]
			var c float64
			if ff.fs != nil {
				c = ff.fs[r]
			} else {
				c = float64(ff.is[r])
			}
			if !cmpF(ff.op, c, a) {
				return sigNone
			}
		} else if !cmpS(ff.op, ff.ss[r], v.filtS[ff.slot]) {
			return sigNone
		}
	}
	if d == len(v.b.vec.fused)-1 {
		return v.fonRow()
	}
	return v.fwalk(d + 1)
}

// fonRow mirrors Bound.onRow for the fused plan, where the only aggregate
// is the monotone COUNT(*) (guaranteed by shortCount) or none at all.
func (v *VecEval) fonRow() signal {
	if v.b.vec.short == shortNoHaving {
		return sigTrue
	}
	v.count++
	if v.useThr {
		return countAbort(v.b.vec.countOp, float64(v.count), v.thr)
	}
	return sigNone
}
