package qcompile

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// Extend patches the program in place for a catalog whose tables are
// prefix-extensions of the ones it was compiled against: every table in cat
// must contain the rows the program has already indexed at the same
// positions with the same values (the contract live snapshots with an
// unchanged epoch provide), and oldRows gives the previously-indexed row
// count per table name. Hash indexes absorb only the delta rows — O(delta)
// instead of the O(table) rebuild Compile performs — and the NaN/-0
// validation scans delta rows only.
//
// Extend returns an *Unsupported error when a delta row breaks a
// compilability invariant (NaN in an indexed or grouped float column),
// matching what Compile would decide over the full table. On ANY error the
// program may be partially patched and must be discarded; the caller falls
// back to a fresh Compile (which re-decides compilability from scratch).
//
// Extend mutates shared index maps, so it must only be called on a program
// owned exclusively by the caller — never on one still shared with
// concurrent Bind/eval users.
func (p *Program) Extend(cat engine.Catalog, oldRows map[string]int) error {
	for ai := range p.aliases {
		ap := &p.aliases[ai]
		tab, ok := cat[ap.tabName]
		if !ok {
			return fmt.Errorf("qcompile: extend: catalog is missing table %q", ap.tabName)
		}
		old, ok := oldRows[ap.tabName]
		if !ok {
			return fmt.Errorf("qcompile: extend: no previous row count for table %q", ap.tabName)
		}
		if got, want := tab.NumCols(), ap.tab.NumCols(); got != want {
			return fmt.Errorf("qcompile: extend: table %q has %d columns, program expects %d", ap.tabName, got, want)
		}
		n := tab.NumRows()
		if n < old {
			return fmt.Errorf("qcompile: extend: table %q shrank from %d to %d rows", ap.tabName, old, n)
		}
		if ap.probe != nil {
			if err := ap.probe.extend(tab, old, n); err != nil {
				return err
			}
		}
		ap.tab = tab
	}
	for _, ref := range p.floatGroupChecks {
		ap := p.aliases[ref.depth]
		vals := ap.tab.FloatsAt(ref.col)
		for _, v := range vals[oldRows[ap.tabName]:] {
			if math.IsNaN(v) || (v == 0 && math.Signbit(v)) {
				return unsupportedf("GROUP BY column contains NaN or -0 in delta rows")
			}
		}
	}
	return nil
}

// extend appends rows [old, n) of the (re-pinned) table to the hash index,
// preserving buildIndex's semantics: a NaN in an indexed float column makes
// the plan unsupported.
func (pp *probePlan) extend(tab *dataset.Table, old, n int) error {
	for r := old; r < n; r++ {
		pp.all = append(pp.all, int32(r))
	}
	switch tab.Schema()[pp.col].Kind {
	case dataset.Float:
		vals := tab.FloatsAt(pp.col)
		for r := old; r < n; r++ {
			v := vals[r]
			if math.IsNaN(v) {
				return unsupportedf("indexed column gained a NaN in delta rows")
			}
			pp.numIdx[v] = append(pp.numIdx[v], int32(r))
		}
	case dataset.Int:
		vals := tab.IntsAt(pp.col)
		for r := old; r < n; r++ {
			pp.numIdx[float64(vals[r])] = append(pp.numIdx[float64(vals[r])], int32(r))
		}
	case dataset.String:
		vals := tab.StringsAt(pp.col)
		for r := old; r < n; r++ {
			pp.strIdx[vals[r]] = append(pp.strIdx[vals[r]], int32(r))
		}
	default:
		return unsupportedf("indexed column has unknown kind")
	}
	return nil
}
