package qcompile

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sql"
)

// kind is the static type of a lowered expression. The compilable subset is
// null-free (base columns, literals, and parameters cannot be NULL, and the
// single group HAVING sees is never empty), which is what makes static
// typing sound.
type kind int

const (
	kBool kind = iota
	kInt
	kFloat
	kStr
)

// env is the per-evaluation scratch: one current row per FROM alias, the
// representative-row snapshot HAVING reads non-aggregate references from,
// the aggregate accumulators, and the current object index. Each evaluation
// function owns its env, so a batch of goroutines can evaluate disjoint
// objects without sharing state.
type env struct {
	rows   []int
	reps   []int
	obj    int
	accs   []agg
	count  int64
	rep    bool
	thr    float64
	useThr bool
}

// agg is one aggregate accumulator. Sums accumulate through float64 even
// for integer arguments — exactly as the interpreter's accumulator does —
// and min/max comparisons for numeric kinds go through float64 to match the
// interpreter's compare.
type agg struct {
	count int64
	sum   float64
	curI  int64
	curF  float64
	curS  string
	seen  bool
}

type signal int

const (
	sigNone  signal = iota
	sigTrue         // EXISTS decided true
	sigFalse        // EXISTS decided false
)

// objColumn is one prefetched object column in a uniform kind.
type objColumn struct {
	k  kind
	fs []float64
	is []int64
	ss []string
}

// aliasRT is the runtime form of an aliasPlan: row count, probe lookup, and
// lowered filters.
type aliasRT struct {
	n       int
	probe   func(*env) []int32
	filters []func(*env) bool
}

// Bound is a Program specialized to bound parameter values and one
// materialized object set. It is immutable; NewEvalFn hands out evaluation
// closures with private scratch, so distinct closures may run concurrently.
type Bound struct {
	aliases  []aliasRT
	pre      []func(*env) bool
	accums   []func(*env)
	havingFn func(*env) bool
	short    shortKind
	countOp  string
	thrFn    func(*env) float64
	nAliases int
	nSlots   int
	vec      *vecPlan // vectorized/fused batch plan (see vector.go)
}

// lowerCtx carries what expression lowering needs: the program (for
// resolution), bound parameters, prefetched object columns, and — when
// lowering HAVING — the aggregate slot of each collected aggregate call.
type lowerCtx struct {
	prog   *Program
	params map[string]engine.Value
	obj    map[string]*objColumn
	slots  map[*sql.FuncCall]int
}

// Bind specializes the program: parameters are bound, the referenced object
// columns are prefetched into typed arrays, and every expression lowers to
// a monomorphic closure. Bind errors mean this execution cannot take the
// compiled path (an unresolvable parameter, a type mismatch the interpreter
// would also reject); callers fall back to the interpreter, which surfaces
// the equivalent error to the user.
func (p *Program) Bind(params map[string]engine.Value, objects *engine.ResultSet) (*Bound, error) {
	lc := &lowerCtx{prog: p, params: params, obj: make(map[string]*objColumn, len(p.objCols))}
	for _, name := range p.objCols {
		oc, err := prefetchObjCol(objects, name)
		if err != nil {
			return nil, err
		}
		lc.obj[name] = oc
	}

	b := &Bound{short: p.short, countOp: p.countOp, nAliases: len(p.aliases), nSlots: len(p.aggs)}
	for _, c := range p.pre {
		fn, err := lc.lowerBool(c)
		if err != nil {
			return nil, err
		}
		b.pre = append(b.pre, fn)
	}
	for ai := range p.aliases {
		ap := &p.aliases[ai]
		rt := aliasRT{n: ap.tab.NumRows()}
		if ap.probe != nil {
			fn, err := lc.lowerProbe(ap.probe)
			if err != nil {
				return nil, err
			}
			rt.probe = fn
		}
		for _, f := range ap.filters {
			fn, err := lc.lowerBool(f)
			if err != nil {
				return nil, err
			}
			rt.filters = append(rt.filters, fn)
		}
		b.aliases = append(b.aliases, rt)
	}

	if p.having != nil {
		lc.slots = make(map[*sql.FuncCall]int, len(p.aggs))
		for si, fc := range p.aggs {
			lc.slots[fc] = si
			fn, err := lc.lowerAccum(si, fc)
			if err != nil {
				return nil, err
			}
			b.accums = append(b.accums, fn)
		}
		fn, err := lc.lowerBool(p.having)
		if err != nil {
			return nil, err
		}
		b.havingFn = fn
		if p.short == shortCount {
			thr, err := lc.lower(p.threshold)
			if err != nil {
				return nil, err
			}
			if thr.k != kInt && thr.k != kFloat {
				// The generic HAVING path would reject this too; let it.
				b.short = shortNone
			} else {
				b.thrFn = thr.toFloat()
			}
		}
	}
	b.vec = buildVecPlan(p, lc, b, objects.NumRows())
	return b, nil
}

// NewEvalFn returns a fresh evaluation closure with private scratch. The
// closure is not safe for concurrent use with itself; create one per
// goroutine.
func (b *Bound) NewEvalFn() func(i int) bool {
	e := &env{
		rows: make([]int, b.nAliases),
		reps: make([]int, b.nAliases),
		accs: make([]agg, b.nSlots),
	}
	return func(i int) bool { return b.eval(i, e) }
}

func (b *Bound) eval(i int, e *env) bool {
	e.obj = i
	// Any empty relation means no complete rows: EXISTS is false before any
	// WHERE conjunct is evaluated (matching the interpreter, which never
	// reaches WHERE without a complete row).
	for a := range b.aliases {
		if b.aliases[a].n == 0 {
			return false
		}
	}
	for _, f := range b.pre {
		if !f(e) {
			return false
		}
	}
	return b.evalJoin(e)
}

// evalJoin runs the join walk and HAVING for the object already set in
// e.obj, after the pre conjuncts passed and no relation proved empty. The
// vector path calls it directly for lanes surviving the bitmap kernels.
func (b *Bound) evalJoin(e *env) bool {
	e.count = 0
	e.rep = false
	for k := range e.accs {
		e.accs[k] = agg{}
	}
	e.useThr = false
	if b.short == shortCount && b.thrFn != nil {
		e.thr = b.thrFn(e)
		e.useThr = !math.IsNaN(e.thr) // NaN compares equal to everything; no abort
	}
	switch b.walk(0, e) {
	case sigTrue:
		return true
	case sigFalse:
		return false
	}
	if b.havingFn == nil {
		return false // no witnessing row was found
	}
	if e.count == 0 {
		return false // empty group set: EXISTS over zero groups
	}
	copy(e.rows, e.reps)
	return b.havingFn(e)
}

func (b *Bound) walk(d int, e *env) signal {
	ap := &b.aliases[d]
	if ap.probe != nil {
		for _, r := range ap.probe(e) {
			if s := b.visit(d, int(r), e); s != sigNone {
				return s
			}
		}
		return sigNone
	}
	for r := 0; r < ap.n; r++ {
		if s := b.visit(d, r, e); s != sigNone {
			return s
		}
	}
	return sigNone
}

func (b *Bound) visit(d, r int, e *env) signal {
	e.rows[d] = r
	ap := &b.aliases[d]
	for _, f := range ap.filters {
		if !f(e) {
			return sigNone
		}
	}
	if d == b.nAliases-1 {
		return b.onRow(e)
	}
	return b.walk(d+1, e)
}

// onRow handles one WHERE-passing full row: the no-HAVING short-circuit,
// the representative-row snapshot, aggregate accumulation, and the monotone
// COUNT(*) abort.
func (b *Bound) onRow(e *env) signal {
	if b.havingFn == nil {
		return sigTrue
	}
	if !e.rep {
		copy(e.reps, e.rows)
		e.rep = true
	}
	e.count++
	for _, fn := range b.accums {
		fn(e)
	}
	if e.useThr {
		c := float64(e.count)
		// The count only grows, so each comparison settles permanently in
		// one direction. Comparisons use the interpreter's compare order
		// (NaN thresholds were excluded above).
		switch b.countOp {
		case "<":
			if !(c < e.thr) {
				return sigFalse
			}
		case "<=":
			if c > e.thr {
				return sigFalse
			}
		case ">":
			if c > e.thr {
				return sigTrue
			}
		case ">=":
			if !(c < e.thr) {
				return sigTrue
			}
		case "=":
			if c > e.thr {
				return sigFalse
			}
		case "<>":
			if c > e.thr {
				return sigTrue
			}
		}
	}
	return sigNone
}

// --- typed expression lowering ---

// cexpr is a lowered expression: a static kind plus the one non-nil closure
// of that kind.
type cexpr struct {
	k kind
	b func(*env) bool
	i func(*env) int64
	f func(*env) float64
	s func(*env) string
}

func (c cexpr) toFloat() func(*env) float64 {
	if c.k == kFloat {
		return c.f
	}
	fi := c.i
	return func(e *env) float64 { return float64(fi(e)) }
}

func (lc *lowerCtx) lowerBool(e sql.Expr) (func(*env) bool, error) {
	ce, err := lc.lower(e)
	if err != nil {
		return nil, err
	}
	if ce.k != kBool {
		return nil, unsupportedf("expression %s is not boolean", e.String())
	}
	return ce.b, nil
}

func (lc *lowerCtx) lower(e sql.Expr) (cexpr, error) {
	switch x := e.(type) {
	case *sql.NumberLit:
		if x.IsInt {
			v := int64(x.Value)
			return cexpr{k: kInt, i: func(*env) int64 { return v }}, nil
		}
		v := x.Value
		return cexpr{k: kFloat, f: func(*env) float64 { return v }}, nil

	case *sql.StringLit:
		v := x.Value
		return cexpr{k: kStr, s: func(*env) string { return v }}, nil

	case *sql.ColumnRef:
		return lc.lowerColumn(x)

	case *sql.UnaryExpr:
		ce, err := lc.lower(x.X)
		if err != nil {
			return cexpr{}, err
		}
		switch x.Op {
		case "NOT":
			if ce.k != kBool {
				return cexpr{}, unsupportedf("NOT of non-boolean %s", x.X.String())
			}
			fb := ce.b
			return cexpr{k: kBool, b: func(e *env) bool { return !fb(e) }}, nil
		case "-":
			switch ce.k {
			case kInt:
				fi := ce.i
				return cexpr{k: kInt, i: func(e *env) int64 { return -fi(e) }}, nil
			case kFloat:
				ff := ce.f
				return cexpr{k: kFloat, f: func(e *env) float64 { return -ff(e) }}, nil
			}
			return cexpr{}, unsupportedf("negation of non-numeric %s", x.X.String())
		}
		return cexpr{}, unsupportedf("unary operator %q", x.Op)

	case *sql.BinaryExpr:
		return lc.lowerBinary(x)

	case *sql.FuncCall:
		if isAggregate(x.Name) {
			return lc.lowerAggRef(x)
		}
		return lc.lowerScalarFunc(x)
	}
	return cexpr{}, unsupportedf("unsupported expression %T", e)
}

func (lc *lowerCtx) lowerColumn(cr *sql.ColumnRef) (cexpr, error) {
	ref, err := lc.prog.resolve(cr)
	if err != nil {
		return cexpr{}, err
	}
	switch ref.kind {
	case refTable:
		d := ref.depth
		tab := lc.prog.aliases[d].tab
		switch tab.Schema()[ref.col].Kind {
		case dataset.Float:
			xs := tab.FloatsAt(ref.col)
			return cexpr{k: kFloat, f: func(e *env) float64 { return xs[e.rows[d]] }}, nil
		case dataset.Int:
			xs := tab.IntsAt(ref.col)
			return cexpr{k: kInt, i: func(e *env) int64 { return xs[e.rows[d]] }}, nil
		default:
			xs := tab.StringsAt(ref.col)
			return cexpr{k: kStr, s: func(e *env) string { return xs[e.rows[d]] }}, nil
		}
	case refObject:
		oc := lc.obj[ref.name]
		if oc == nil {
			return cexpr{}, unsupportedf("object column %q not prefetched", ref.name)
		}
		switch oc.k {
		case kFloat:
			xs := oc.fs
			return cexpr{k: kFloat, f: func(e *env) float64 { return xs[e.obj] }}, nil
		case kInt:
			xs := oc.is
			return cexpr{k: kInt, i: func(e *env) int64 { return xs[e.obj] }}, nil
		default:
			xs := oc.ss
			return cexpr{k: kStr, s: func(e *env) string { return xs[e.obj] }}, nil
		}
	default: // refParam
		v, ok := lc.params[ref.name]
		if !ok {
			return cexpr{}, unsupportedf("unresolved identifier %q (not a column or bound parameter)", ref.name)
		}
		switch v.Kind {
		case engine.KInt:
			c := v.I
			return cexpr{k: kInt, i: func(*env) int64 { return c }}, nil
		case engine.KFloat:
			c := v.F
			return cexpr{k: kFloat, f: func(*env) float64 { return c }}, nil
		case engine.KString:
			c := v.S
			return cexpr{k: kStr, s: func(*env) string { return c }}, nil
		default:
			return cexpr{}, unsupportedf("parameter %q has unsupported kind", ref.name)
		}
	}
}

func (lc *lowerCtx) lowerBinary(x *sql.BinaryExpr) (cexpr, error) {
	if x.Op == "AND" || x.Op == "OR" {
		lb, err := lc.lowerBool(x.L)
		if err != nil {
			return cexpr{}, err
		}
		rb, err := lc.lowerBool(x.R)
		if err != nil {
			return cexpr{}, err
		}
		if x.Op == "AND" {
			return cexpr{k: kBool, b: func(e *env) bool { return lb(e) && rb(e) }}, nil
		}
		return cexpr{k: kBool, b: func(e *env) bool { return lb(e) || rb(e) }}, nil
	}

	l, err := lc.lower(x.L)
	if err != nil {
		return cexpr{}, err
	}
	r, err := lc.lower(x.R)
	if err != nil {
		return cexpr{}, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		return lowerCompare(x.Op, l, r, x)
	case "+", "-", "*", "/":
		return lowerArith(x.Op, l, r, x)
	}
	return cexpr{}, unsupportedf("operator %q", x.Op)
}

func numeric(k kind) bool { return k == kInt || k == kFloat }

// lowerCompare lowers comparisons with the interpreter's exact semantics:
// numerics (mixed int/float included) compare through float64, and the
// derived forms !(l>r) / !(l<r) reproduce compare's treatment of NaN as
// equal to everything.
func lowerCompare(op string, l, r cexpr, src *sql.BinaryExpr) (cexpr, error) {
	switch {
	case numeric(l.k) && numeric(r.k):
		lf, rf := l.toFloat(), r.toFloat()
		var fn func(*env) bool
		switch op {
		case "=":
			fn = func(e *env) bool { a, b := lf(e), rf(e); return !(a < b) && !(a > b) }
		case "<>":
			fn = func(e *env) bool { a, b := lf(e), rf(e); return a < b || a > b }
		case "<":
			fn = func(e *env) bool { return lf(e) < rf(e) }
		case "<=":
			fn = func(e *env) bool { return !(lf(e) > rf(e)) }
		case ">":
			fn = func(e *env) bool { return lf(e) > rf(e) }
		case ">=":
			fn = func(e *env) bool { return !(lf(e) < rf(e)) }
		}
		return cexpr{k: kBool, b: fn}, nil
	case l.k == kStr && r.k == kStr:
		ls, rs := l.s, r.s
		var fn func(*env) bool
		switch op {
		case "=":
			fn = func(e *env) bool { return ls(e) == rs(e) }
		case "<>":
			fn = func(e *env) bool { return ls(e) != rs(e) }
		case "<":
			fn = func(e *env) bool { return ls(e) < rs(e) }
		case "<=":
			fn = func(e *env) bool { return ls(e) <= rs(e) }
		case ">":
			fn = func(e *env) bool { return ls(e) > rs(e) }
		case ">=":
			fn = func(e *env) bool { return ls(e) >= rs(e) }
		}
		return cexpr{k: kBool, b: fn}, nil
	case l.k == kBool && r.k == kBool:
		lb, rb := l.b, r.b
		var fn func(*env) bool
		switch op { // false < true
		case "=":
			fn = func(e *env) bool { return lb(e) == rb(e) }
		case "<>":
			fn = func(e *env) bool { return lb(e) != rb(e) }
		case "<":
			fn = func(e *env) bool { return !lb(e) && rb(e) }
		case "<=":
			fn = func(e *env) bool { a := lb(e); return !a || rb(e) }
		case ">":
			fn = func(e *env) bool { return lb(e) && !rb(e) }
		case ">=":
			fn = func(e *env) bool { a := lb(e); return a || !rb(e) }
		}
		return cexpr{k: kBool, b: fn}, nil
	}
	return cexpr{}, unsupportedf("cannot compare %s", src.String())
}

// lowerArith lowers arithmetic: integer arithmetic stays in int64 (with Go's
// two's-complement wrap, same as the interpreter's IntVal arithmetic) except
// division, which always goes through float64 and panics on a zero divisor
// exactly where the interpreter would have returned its error.
func lowerArith(op string, l, r cexpr, src *sql.BinaryExpr) (cexpr, error) {
	if !numeric(l.k) || !numeric(r.k) {
		return cexpr{}, unsupportedf("non-numeric arithmetic %s", src.String())
	}
	if l.k == kInt && r.k == kInt && op != "/" {
		li, ri := l.i, r.i
		var fn func(*env) int64
		switch op {
		case "+":
			fn = func(e *env) int64 { return li(e) + ri(e) }
		case "-":
			fn = func(e *env) int64 { return li(e) - ri(e) }
		case "*":
			fn = func(e *env) int64 { return li(e) * ri(e) }
		}
		return cexpr{k: kInt, i: fn}, nil
	}
	lf, rf := l.toFloat(), r.toFloat()
	var fn func(*env) float64
	switch op {
	case "+":
		fn = func(e *env) float64 { return lf(e) + rf(e) }
	case "-":
		fn = func(e *env) float64 { return lf(e) - rf(e) }
	case "*":
		fn = func(e *env) float64 { return lf(e) * rf(e) }
	case "/":
		fn = func(e *env) float64 {
			d := rf(e)
			if d == 0 {
				panic("qcompile: division by zero")
			}
			return lf(e) / d
		}
	}
	return cexpr{k: kFloat, f: fn}, nil
}

// lowerScalarFunc lowers the engine's scalar functions; like the
// interpreter, every argument coerces to float64 and the result is float.
func (lc *lowerCtx) lowerScalarFunc(x *sql.FuncCall) (cexpr, error) {
	if x.Star || x.Distinct {
		return cexpr{}, unsupportedf("malformed call %s", x.String())
	}
	args := make([]func(*env) float64, len(x.Args))
	for i, a := range x.Args {
		ce, err := lc.lower(a)
		if err != nil {
			return cexpr{}, err
		}
		if !numeric(ce.k) {
			return cexpr{}, unsupportedf("%s argument %d is not numeric", x.Name, i)
		}
		args[i] = ce.toFloat()
	}
	need := func(n int) error {
		if len(args) != n {
			return unsupportedf("%s expects %d arguments, got %d", x.Name, n, len(args))
		}
		return nil
	}
	var fn func(*env) float64
	switch x.Name {
	case "SQRT":
		if err := need(1); err != nil {
			return cexpr{}, err
		}
		a := args[0]
		fn = func(e *env) float64 {
			v := a(e)
			if v < 0 {
				panic(fmt.Sprintf("qcompile: SQRT of negative %v", v))
			}
			return math.Sqrt(v)
		}
	case "POWER", "POW":
		if err := need(2); err != nil {
			return cexpr{}, err
		}
		a, b := args[0], args[1]
		fn = func(e *env) float64 { return math.Pow(a(e), b(e)) }
	case "ABS":
		if err := need(1); err != nil {
			return cexpr{}, err
		}
		a := args[0]
		fn = func(e *env) float64 { return math.Abs(a(e)) }
	case "FLOOR":
		if err := need(1); err != nil {
			return cexpr{}, err
		}
		a := args[0]
		fn = func(e *env) float64 { return math.Floor(a(e)) }
	case "CEIL", "CEILING":
		if err := need(1); err != nil {
			return cexpr{}, err
		}
		a := args[0]
		fn = func(e *env) float64 { return math.Ceil(a(e)) }
	case "LN":
		if err := need(1); err != nil {
			return cexpr{}, err
		}
		a := args[0]
		fn = func(e *env) float64 { return math.Log(a(e)) }
	case "EXP":
		if err := need(1); err != nil {
			return cexpr{}, err
		}
		a := args[0]
		fn = func(e *env) float64 { return math.Exp(a(e)) }
	case "LEAST", "GREATEST":
		if len(args) == 0 {
			return cexpr{}, unsupportedf("%s needs arguments", x.Name)
		}
		fns := args
		most := x.Name == "GREATEST"
		fn = func(e *env) float64 {
			m := fns[0](e)
			for _, a := range fns[1:] {
				if most {
					m = math.Max(m, a(e))
				} else {
					m = math.Min(m, a(e))
				}
			}
			return m
		}
	default:
		return cexpr{}, unsupportedf("unknown function %s", x.Name)
	}
	return cexpr{k: kFloat, f: fn}, nil
}

// lowerAggRef lowers a reference to an aggregate slot inside HAVING. The
// result kind follows the interpreter: COUNT is int, SUM is int iff its
// argument is statically int (sumIsInt), AVG is float, MIN/MAX keep the
// argument's kind.
func (lc *lowerCtx) lowerAggRef(fc *sql.FuncCall) (cexpr, error) {
	slot, ok := lc.slots[fc]
	if !ok {
		return cexpr{}, unsupportedf("aggregate %s outside HAVING", fc.String())
	}
	argKind := kInt // COUNT(*) default
	if !fc.Star {
		ce, err := lc.lower(fc.Args[0])
		if err != nil {
			return cexpr{}, err
		}
		argKind = ce.k
	}
	switch fc.Name {
	case "COUNT":
		return cexpr{k: kInt, i: func(e *env) int64 { return e.accs[slot].count }}, nil
	case "SUM":
		if argKind == kInt {
			return cexpr{k: kInt, i: func(e *env) int64 { return int64(e.accs[slot].sum) }}, nil
		}
		if argKind == kFloat {
			return cexpr{k: kFloat, f: func(e *env) float64 { return e.accs[slot].sum }}, nil
		}
		return cexpr{}, unsupportedf("SUM of non-numeric argument")
	case "AVG":
		if !numeric(argKind) {
			return cexpr{}, unsupportedf("AVG of non-numeric argument")
		}
		return cexpr{k: kFloat, f: func(e *env) float64 {
			a := &e.accs[slot]
			return a.sum / float64(a.count)
		}}, nil
	case "MIN", "MAX":
		switch argKind {
		case kInt:
			return cexpr{k: kInt, i: func(e *env) int64 { return e.accs[slot].curI }}, nil
		case kFloat:
			return cexpr{k: kFloat, f: func(e *env) float64 { return e.accs[slot].curF }}, nil
		case kStr:
			return cexpr{k: kStr, s: func(e *env) string { return e.accs[slot].curS }}, nil
		}
		return cexpr{}, unsupportedf("%s of boolean argument", fc.Name)
	}
	return cexpr{}, unsupportedf("aggregate %s", fc.Name)
}

// lowerAccum builds the per-row accumulation step for one aggregate slot.
func (lc *lowerCtx) lowerAccum(slot int, fc *sql.FuncCall) (func(*env), error) {
	if fc.Star { // COUNT(*)
		return func(e *env) { e.accs[slot].count++ }, nil
	}
	ce, err := lc.lower(fc.Args[0])
	if err != nil {
		return nil, err
	}
	switch fc.Name {
	case "COUNT":
		// The argument is evaluated for its (possible) side effects — a
		// division by zero must still surface — and every value counts,
		// since the compilable subset is null-free.
		arg := discardFn(ce)
		return func(e *env) { arg(e); e.accs[slot].count++ }, nil
	case "SUM", "AVG":
		if !numeric(ce.k) {
			return nil, unsupportedf("%s of non-numeric argument", fc.Name)
		}
		f := ce.toFloat()
		return func(e *env) {
			a := &e.accs[slot]
			a.sum += f(e)
			a.count++
		}, nil
	case "MIN", "MAX":
		most := fc.Name == "MAX"
		switch ce.k {
		case kInt:
			f := ce.i
			return func(e *env) {
				v := f(e)
				a := &e.accs[slot]
				// The interpreter compares numerics through float64.
				if !a.seen || (most && float64(v) > float64(a.curI)) || (!most && float64(v) < float64(a.curI)) {
					a.curI = v
					a.seen = true
				}
			}, nil
		case kFloat:
			f := ce.f
			return func(e *env) {
				v := f(e)
				a := &e.accs[slot]
				if !a.seen || (most && v > a.curF) || (!most && v < a.curF) {
					a.curF = v
					a.seen = true
				}
			}, nil
		case kStr:
			f := ce.s
			return func(e *env) {
				v := f(e)
				a := &e.accs[slot]
				if !a.seen || (most && v > a.curS) || (!most && v < a.curS) {
					a.curS = v
					a.seen = true
				}
			}, nil
		}
		return nil, unsupportedf("%s of boolean argument", fc.Name)
	}
	return nil, unsupportedf("aggregate %s", fc.Name)
}

func discardFn(ce cexpr) func(*env) {
	switch ce.k {
	case kBool:
		f := ce.b
		return func(e *env) { f(e) }
	case kInt:
		f := ce.i
		return func(e *env) { f(e) }
	case kFloat:
		f := ce.f
		return func(e *env) { f(e) }
	default:
		f := ce.s
		return func(e *env) { f(e) }
	}
}

// lowerProbe lowers a hash-index probe: the probe expression evaluates to
// the lookup key. A NaN probe value returns every row — under the
// interpreter's compare, NaN is equal to everything — and the equality
// conjunct the probe consumed needs no re-check because bucket membership
// is exactly compare-equality for non-NaN keys.
func (lc *lowerCtx) lowerProbe(pp *probePlan) (func(*env) []int32, error) {
	ce, err := lc.lower(pp.rhs)
	if err != nil {
		return nil, err
	}
	if pp.numIdx != nil {
		if !numeric(ce.k) {
			return nil, unsupportedf("equality between numeric column and %s", pp.rhs.String())
		}
		key := ce.toFloat()
		idx, all := pp.numIdx, pp.all
		return func(e *env) []int32 {
			v := key(e)
			if math.IsNaN(v) {
				return all
			}
			return idx[v]
		}, nil
	}
	if ce.k != kStr {
		return nil, unsupportedf("equality between string column and %s", pp.rhs.String())
	}
	key := ce.s
	idx := pp.strIdx
	return func(e *env) []int32 { return idx[key(e)] }, nil
}

// prefetchObjCol extracts one object column into a typed array, verifying
// kind uniformity (Q2 outputs are table columns, so mixed kinds indicate a
// shape the compiler should not touch).
func prefetchObjCol(objects *engine.ResultSet, name string) (*objColumn, error) {
	ci := objects.ColIndex(name)
	if ci < 0 {
		return nil, unsupportedf("object set has no column %q", name)
	}
	n := objects.NumRows()
	oc := &objColumn{k: kFloat}
	if n == 0 {
		return oc, nil
	}
	switch objects.Value(0, ci).Kind {
	case engine.KFloat:
		oc.k = kFloat
		oc.fs = make([]float64, n)
		for r := 0; r < n; r++ {
			v := objects.Value(r, ci)
			if v.Kind != engine.KFloat {
				return nil, unsupportedf("object column %q has mixed kinds", name)
			}
			oc.fs[r] = v.F
		}
	case engine.KInt:
		oc.k = kInt
		oc.is = make([]int64, n)
		for r := 0; r < n; r++ {
			v := objects.Value(r, ci)
			if v.Kind != engine.KInt {
				return nil, unsupportedf("object column %q has mixed kinds", name)
			}
			oc.is[r] = v.I
		}
	case engine.KString:
		oc.k = kStr
		oc.ss = make([]string, n)
		for r := 0; r < n; r++ {
			v := objects.Value(r, ci)
			if v.Kind != engine.KString {
				return nil, unsupportedf("object column %q has mixed kinds", name)
			}
			oc.ss[r] = v.S
		}
	default:
		return nil, unsupportedf("object column %q has unsupported kind", name)
	}
	return oc, nil
}
