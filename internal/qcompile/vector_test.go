package qcompile

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/sql"
)

// bindFor compiles and binds a query, returning the bound program and the
// materialized object set.
func bindFor(t *testing.T, cat engine.Catalog, query string, params map[string]engine.Value) (*Bound, *engine.ResultSet) {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	dec, err := engine.Decompose(engine.ExtractInner(stmt))
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	ev := engine.NewEvaluator(cat)
	for k, v := range params {
		ev.SetParam(k, v)
	}
	objects, err := ev.Run(dec.Objects, nil)
	if err != nil {
		t.Fatalf("objects: %v", err)
	}
	prog, err := Compile(dec, cat)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	bound, err := prog.Bind(params, objects)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	return bound, objects
}

// vecCompare asserts the vector batch path labels every object exactly as
// the scalar closure path does, across several batch slicings (whole set,
// odd-sized tails, singletons).
func vecCompare(t *testing.T, b *Bound, n int) {
	t.Helper()
	scalar := b.NewEvalFn()
	want := make([]bool, n)
	for i := 0; i < n; i++ {
		want[i] = scalar(i)
	}
	ve := b.NewVecEval()
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	got := make([]bool, n)
	ve.EvalBatch(idxs, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("object %d: vector=%v scalar=%v", i, got[i], want[i])
		}
	}
	// Odd batch sizes exercise the partial-bitmap tail; reversed order
	// checks lanes are independent of position.
	for _, sz := range []int{1, 7, 63, 65} {
		for base := 0; base < n; base += sz {
			end := min(base+sz, n)
			ve.EvalBatch(idxs[base:end], got[base:end])
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch size %d, object %d: vector=%v scalar=%v", sz, i, got[i], want[i])
			}
		}
	}
	rev := make([]int, n)
	out := make([]bool, n)
	for i := range rev {
		rev[i] = n - 1 - i
	}
	ve.EvalBatch(rev, out)
	for i := range rev {
		if out[i] != want[rev[i]] {
			t.Fatalf("reversed lane %d (object %d): vector=%v scalar=%v", i, rev[i], out[i], want[rev[i]])
		}
	}
}

func TestVecEvalEquiJoinFused(t *testing.T) {
	cat := engine.Catalog{"D": buildD(t, 150, 21), "R": buildR(t, 600, 50, 22)}
	b, objects := bindFor(t, cat,
		`SELECT d.id FROM D d, R r WHERE d.id = r.key AND r.v > t GROUP BY d.id HAVING COUNT(*) >= m`,
		map[string]engine.Value{"t": engine.FloatVal(4), "m": engine.IntVal(3)})
	if !b.Vectorized() {
		t.Fatal("equi-join with COUNT(*) HAVING should take the fused kernel")
	}
	vecCompare(t, b, objects.NumRows())
}

func TestVecEvalSkybandFallback(t *testing.T) {
	cat := engine.Catalog{"D": buildD(t, 120, 23)}
	// The o2 filters reference the o1 row, so the walk cannot fuse; the
	// vector path must still agree lane by lane through the scalar walk.
	b, objects := bindFor(t, cat,
		`SELECT o1.id FROM D o1, D o2
		 WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
		 GROUP BY o1.id HAVING COUNT(*) < k`,
		map[string]engine.Value{"k": engine.IntVal(12)})
	if b.Vectorized() {
		t.Fatal("outer-row-dependent filters must not fuse")
	}
	vecCompare(t, b, objects.NumRows())
}

func TestVecEvalNoHavingFused(t *testing.T) {
	cat := engine.Catalog{"D": buildD(t, 100, 24), "R": buildR(t, 400, 30, 25)}
	b, objects := bindFor(t, cat,
		`SELECT d.id FROM D d, R r WHERE d.id = r.key AND r.v > t GROUP BY d.id`,
		map[string]engine.Value{"t": engine.FloatVal(8)})
	if !b.Vectorized() {
		t.Fatal("no-HAVING equi-join should take the fused kernel")
	}
	vecCompare(t, b, objects.NumRows())
}

func TestVecEvalGeneralHavingFallback(t *testing.T) {
	cat := engine.Catalog{"D": buildD(t, 80, 26), "R": buildR(t, 350, 30, 27)}
	b, objects := bindFor(t, cat,
		`SELECT d.id FROM D d, R r WHERE d.id = r.key GROUP BY d.id HAVING SUM(r.v) > 12.5`,
		nil)
	if b.Vectorized() {
		t.Fatal("float-aggregate HAVING must not fuse")
	}
	vecCompare(t, b, objects.NumRows())
}

func TestVecEvalPreConjunctKernels(t *testing.T) {
	cat := engine.Catalog{"D": buildD(t, 90, 28), "R": buildR(t, 300, 25, 29)}
	// p and q resolve as parameters, so the conjunct has no alias references
	// and becomes a pre conjunct lowered to a bitmap kernel (constant across
	// lanes here, but it drives the mask path end to end).
	for _, pv := range []float64{1, 9} {
		b, objects := bindFor(t, cat,
			`SELECT d.id FROM D d, R r WHERE d.id = r.key AND r.v > t AND p < q GROUP BY d.id HAVING COUNT(*) >= m`,
			map[string]engine.Value{
				"t": engine.FloatVal(4), "m": engine.IntVal(2),
				"p": engine.FloatVal(pv), "q": engine.FloatVal(5),
			})
		if b.vec.pre[0].vec == nil {
			t.Fatal("param-only conjunct should lower to a bitmap kernel")
		}
		vecCompare(t, b, objects.NumRows())
	}
}

// TestVecEvalRandomizedDifferential is the vector-vs-scalar analogue of
// TestCompiledRandomizedDifferential: random tables × random aggregate and
// comparison shapes, every label byte-identical across both paths (fused
// shapes and fallback shapes alike).
func TestVecEvalRandomizedDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}
	aggs := []string{"COUNT(*)", "SUM(r.v)", "AVG(r.v)", "MIN(r.v)", "MAX(r.v)"}
	for trial := 0; trial < 16; trial++ {
		d := buildD(t, 30+r.Intn(40), int64(300+trial))
		rt := buildR(t, 80+r.Intn(150), 10+r.Intn(30), int64(400+trial))
		cat := engine.Catalog{"D": d, "R": rt}
		q := `SELECT d.id FROM D d, R r WHERE d.id = r.key AND r.v > t GROUP BY d.id HAVING ` +
			aggs[r.Intn(len(aggs))] + " " + ops[r.Intn(len(ops))] + " m"
		params := map[string]engine.Value{
			"t": engine.FloatVal(r.Float64() * 10),
			"m": engine.FloatVal(r.Float64() * 6),
		}
		b, objects := bindFor(t, cat, q, params)
		vecCompare(t, b, objects.NumRows())
	}
}

// TestVecEvalZeroAlloc pins the tentpole property: steady-state batch
// labeling allocates nothing, on both the fused kernel and the per-lane
// fallback walk.
func TestVecEvalZeroAlloc(t *testing.T) {
	cases := []struct {
		name   string
		cat    engine.Catalog
		query  string
		params map[string]engine.Value
	}{
		{
			name:  "fused-equijoin",
			cat:   engine.Catalog{"D": buildD(t, 200, 31), "R": buildR(t, 800, 60, 32)},
			query: `SELECT d.id FROM D d, R r WHERE d.id = r.key AND r.v > t GROUP BY d.id HAVING COUNT(*) >= m`,
			params: map[string]engine.Value{
				"t": engine.FloatVal(4), "m": engine.IntVal(3),
			},
		},
		{
			name: "fallback-skyband",
			cat:  engine.Catalog{"D": buildD(t, 150, 33)},
			query: `SELECT o1.id FROM D o1, D o2
				WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
				GROUP BY o1.id HAVING COUNT(*) < k`,
			params: map[string]engine.Value{"k": engine.IntVal(12)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, objects := bindFor(t, tc.cat, tc.query, tc.params)
			n := objects.NumRows()
			ve := b.NewVecEval()
			idxs := make([]int, n)
			for i := range idxs {
				idxs[i] = i
			}
			out := make([]bool, n)
			// Warm-up passes: enough full scans to cross the lazy
			// probe-bucket build threshold, so the measured runs see the
			// steady state.
			for i := 0; i < 3; i++ {
				ve.EvalBatch(idxs, out)
			}
			if avg := testing.AllocsPerRun(50, func() { ve.EvalBatch(idxs, out) }); avg != 0 {
				t.Fatalf("steady-state EvalBatch allocates %.2f allocs/op, want 0", avg)
			}
		})
	}
}
