package qcompile

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sql"
)

// buildD returns the self-join test table D(id, x, y, tag).
func buildD(t *testing.T, n int, seed int64) *dataset.Table {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tab := dataset.New("D", dataset.Schema{
		{Name: "id", Kind: dataset.Int},
		{Name: "x", Kind: dataset.Float},
		{Name: "y", Kind: dataset.Float},
		{Name: "tag", Kind: dataset.String},
	})
	tags := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		tab.MustAppendRow(int64(i), r.Float64()*100, r.Float64()*100, tags[r.Intn(len(tags))])
	}
	return tab
}

// buildR returns the join partner R(key, v).
func buildR(t *testing.T, n, keys int, seed int64) *dataset.Table {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tab := dataset.New("R", dataset.Schema{
		{Name: "key", Kind: dataset.Int},
		{Name: "v", Kind: dataset.Float},
	})
	for i := 0; i < n; i++ {
		tab.MustAppendRow(int64(r.Intn(keys)), r.Float64()*10)
	}
	return tab
}

// compileAndCompare decomposes query, compiles Q3, and asserts the compiled
// labels equal the interpreter's on every object. It returns the program
// for further assertions.
func compileAndCompare(t *testing.T, cat engine.Catalog, query string, params map[string]engine.Value) *Program {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	dec, err := engine.Decompose(engine.ExtractInner(stmt))
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	ev := engine.NewEvaluator(cat)
	for k, v := range params {
		ev.SetParam(k, v)
	}
	objects, err := ev.Run(dec.Objects, nil)
	if err != nil {
		t.Fatalf("objects: %v", err)
	}
	interp := ev.ObjectPredicate(dec, objects)

	prog, err := Compile(dec, cat)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	bound, err := prog.Bind(params, objects)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	eval := bound.NewEvalFn()
	for i := 0; i < objects.NumRows(); i++ {
		want, err := interp(i)
		if err != nil {
			t.Fatalf("interpreter failed on object %d: %v", i, err)
		}
		if got := eval(i); got != want {
			t.Fatalf("object %d: compiled=%v interpreted=%v (query %s)", i, got, want, query)
		}
	}
	return prog
}

func TestCompiledMatchesInterpreterSkyband(t *testing.T) {
	cat := engine.Catalog{"D": buildD(t, 120, 1)}
	prog := compileAndCompare(t, cat,
		`SELECT o1.id FROM D o1, D o2
		 WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
		 GROUP BY o1.id HAVING COUNT(*) < k`,
		map[string]engine.Value{"k": engine.IntVal(12)})
	if prog.Indexes() != 1 {
		t.Fatalf("want 1 index (the o1.id correlation), got %d", prog.Indexes())
	}
	if prog.short != shortCount {
		t.Fatalf("want monotone COUNT short-circuit, got %v", prog.short)
	}
}

func TestCompiledMatchesInterpreterEquiJoin(t *testing.T) {
	cat := engine.Catalog{"D": buildD(t, 80, 2), "R": buildR(t, 300, 40, 3)}
	prog := compileAndCompare(t, cat,
		`SELECT d.id FROM D d, R r
		 WHERE d.id = r.key AND r.v > t
		 GROUP BY d.id HAVING COUNT(*) >= m`,
		map[string]engine.Value{"t": engine.FloatVal(4), "m": engine.IntVal(3)})
	if prog.Indexes() != 2 {
		t.Fatalf("want 2 indexes (correlation + join key), got %d", prog.Indexes())
	}
}

func TestCompiledMatchesInterpreterNoHaving(t *testing.T) {
	cat := engine.Catalog{"D": buildD(t, 100, 4), "R": buildR(t, 400, 30, 5)}
	prog := compileAndCompare(t, cat,
		`SELECT d.id FROM D d, R r WHERE d.id = r.key AND r.v > t GROUP BY d.id`,
		map[string]engine.Value{"t": engine.FloatVal(8)})
	if prog.short != shortNoHaving {
		t.Fatalf("want no-HAVING short-circuit, got %v", prog.short)
	}
}

func TestCompiledMatchesInterpreterAggregates(t *testing.T) {
	cat := engine.Catalog{"D": buildD(t, 60, 6), "R": buildR(t, 250, 25, 7)}
	for _, q := range []string{
		`SELECT d.id FROM D d, R r WHERE d.id = r.key GROUP BY d.id HAVING SUM(r.v) > 12.5`,
		`SELECT d.id FROM D d, R r WHERE d.id = r.key GROUP BY d.id HAVING AVG(r.v) <= 5`,
		`SELECT d.id FROM D d, R r WHERE d.id = r.key GROUP BY d.id HAVING MAX(r.v) - MIN(r.v) > 6`,
		`SELECT d.id FROM D d, R r WHERE d.id = r.key GROUP BY d.id HAVING COUNT(*) > 2 AND MIN(r.v) < 2`,
		`SELECT d.id FROM D d, R r WHERE d.id = r.key GROUP BY d.id HAVING SUM(r.key) >= 3 * COUNT(*)`,
	} {
		compileAndCompare(t, cat, q, nil)
	}
}

func TestCompiledMatchesInterpreterStringsAndFuncs(t *testing.T) {
	cat := engine.Catalog{"D": buildD(t, 110, 8)}
	compileAndCompare(t, cat,
		`SELECT o1.id FROM D o1, D o2
		 WHERE o2.tag = o1.tag AND SQRT(POWER(o2.x - o1.x, 2) + POWER(o2.y - o1.y, 2)) <= d
		 GROUP BY o1.id HAVING COUNT(*) <= m`,
		map[string]engine.Value{"d": engine.FloatVal(18), "m": engine.IntVal(9)})
}

func TestCompileFallsBackOnUnsupported(t *testing.T) {
	cat := engine.Catalog{"D": buildD(t, 30, 9)}
	for _, q := range []string{
		// Scalar subquery in WHERE.
		`SELECT o1.id FROM D o1 WHERE o1.x > (SELECT MIN(x) FROM D) GROUP BY o1.id HAVING COUNT(*) > 0`,
		// DISTINCT aggregate.
		`SELECT o1.id FROM D o1, D o2 WHERE o2.x > o1.x GROUP BY o1.id HAVING COUNT(DISTINCT o2.tag) > 1`,
	} {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		dec, err := engine.Decompose(engine.ExtractInner(stmt))
		if err != nil {
			t.Fatalf("decompose: %v", err)
		}
		_, err = Compile(dec, cat)
		var u *Unsupported
		if !errors.As(err, &u) {
			t.Fatalf("query %q: want Unsupported, got %v", q, err)
		}
	}
}

// TestCompiledRandomizedDifferential generates random tables and random
// Q1-shaped queries over them, and checks every compiled label against the
// interpreter — the fallback boundary (queries the generator produces that
// Compile rejects) is exercised by skipping with a note rather than
// failing, but at this generator's shapes everything must compile.
func TestCompiledRandomizedDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}
	aggs := []string{"COUNT(*)", "SUM(r.v)", "AVG(r.v)", "MIN(r.v)", "MAX(r.v)"}
	for trial := 0; trial < 12; trial++ {
		d := buildD(t, 30+r.Intn(40), int64(100+trial))
		rt := buildR(t, 80+r.Intn(150), 10+r.Intn(30), int64(200+trial))
		cat := engine.Catalog{"D": d, "R": rt}
		agg := aggs[r.Intn(len(aggs))]
		op := ops[r.Intn(len(ops))]
		q := `SELECT d.id FROM D d, R r WHERE d.id = r.key AND r.v > t GROUP BY d.id HAVING ` +
			agg + " " + op + " m"
		params := map[string]engine.Value{
			"t": engine.FloatVal(r.Float64() * 10),
			"m": engine.FloatVal(r.Float64() * 6),
		}
		compileAndCompare(t, cat, q, params)
	}
}

// TestCompiledConcurrentEvalFns checks that closures from the same Bound
// agree with a sequential evaluation when run from many goroutines (the
// property batched labeling relies on).
func TestCompiledConcurrentEvalFns(t *testing.T) {
	cat := engine.Catalog{"D": buildD(t, 200, 11)}
	stmt, err := sql.Parse(`SELECT o1.id FROM D o1, D o2
		WHERE o2.x >= o1.x AND o2.y >= o1.y AND (o2.x > o1.x OR o2.y > o1.y)
		GROUP BY o1.id HAVING COUNT(*) < k`)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := engine.Decompose(engine.ExtractInner(stmt))
	if err != nil {
		t.Fatal(err)
	}
	ev := engine.NewEvaluator(cat)
	ev.SetParam("k", engine.IntVal(20))
	objects, err := ev.Run(dec.Objects, nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(dec, cat)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := prog.Bind(map[string]engine.Value{"k": engine.IntVal(20)}, objects)
	if err != nil {
		t.Fatal(err)
	}
	n := objects.NumRows()
	want := make([]bool, n)
	seq := bound.NewEvalFn()
	for i := 0; i < n; i++ {
		want[i] = seq(i)
	}
	got := make([]bool, n)
	const workers = 8
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			f := bound.NewEvalFn()
			for i := w; i < n; i += workers {
				got[i] = f(i)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("object %d: concurrent=%v sequential=%v", i, got[i], want[i])
		}
	}
}
