// Package qcompile compiles the decomposed per-object predicate Q3 of a
// counting query (§2 of the paper) from a tree-walking interpretation into
// specialized typed closures over columnar data.
//
// The paper's cost unit is the number of expensive predicate evaluations,
// and in this repository each evaluation of Q3
//
//	EXISTS (SELECT GL FROM L, R WHERE θL AND θLR AND GL = o.*
//	        GROUP BY GL HAVING φ)
//
// is, by default, a full interpretation: a nested-loop join whose every row
// re-resolves columns through scope chains and boxes every value. qcompile
// removes that constant factor and — where the query allows — the
// asymptotics:
//
//   - comparison/arithmetic/boolean nodes lower to monomorphic
//     func(*env) bool / int64 / float64 / string closures with no Value
//     boxing in the hot loop;
//   - equality conjuncts whose probe side is available before the alias is
//     scanned (the GL = o.* correlation the decomposition injects, and
//     equi-join keys against earlier FROM entries) compile to prebuilt hash
//     indexes on the inner relation, so each evaluation probes a bucket
//     instead of scanning the join;
//   - EXISTS short-circuits: with no HAVING the first witnessing row
//     decides, and a HAVING of the form COUNT(*) <op> threshold aborts as
//     soon as the monotonically growing count settles the comparison (the
//     same early exit the hand-written skyband predicate performs).
//
// Anything outside the compilable subset — subqueries inside Q3's WHERE or
// HAVING, DISTINCT aggregates, FROM subqueries, unknown functions — is
// rejected by Compile with an Unsupported error, and callers keep the
// interpreted engine path, which remains the semantics oracle.
//
// # Equivalence contract
//
// Compiled evaluation is byte-identical to the interpreter on the supported
// subset, including its corner semantics: comparisons treat NaN as equal to
// everything (the interpreter's compare maps incomparable floats to 0), ±0
// hash to the same bucket, int/float mixes compare through float64, integer
// SUM accumulates through float64 before truncating (as the interpreter's
// accumulator does), and float aggregates accumulate in exactly the
// interpreter's nested-loop enumeration order, so no floating-point
// reassociation can flip a HAVING on a boundary. Labels are pure functions
// of the object index, which is what makes batched and parallel labeling a
// pure throughput knob for the estimators built on top.
//
// Compile performs the per-query work (analysis and index building) once —
// lsample.Session.Prepare calls it per prepared query — while Bind performs
// the cheap per-execution specialization: binding parameter values,
// prefetching the object columns, and lowering expressions with full type
// information.
package qcompile

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sql"
)

// Unsupported reports that a predicate falls outside the compilable subset;
// the caller keeps the interpreted path. Reason is a short human-readable
// explanation surfaced by the SDK's labeling diagnostics.
type Unsupported struct{ Reason string }

func (u *Unsupported) Error() string { return "qcompile: " + u.Reason }

func unsupportedf(format string, args ...any) error {
	return &Unsupported{Reason: fmt.Sprintf(format, args...)}
}

// refKind classifies what a column reference resolves to.
type refKind int

const (
	refTable  refKind = iota // a column of a Q3 FROM alias
	refObject                // a column of the current object row (o.*)
	refParam                 // a free identifier bound as a query parameter
)

// refInfo is a resolved column reference.
type refInfo struct {
	kind  refKind
	depth int    // FROM position for refTable
	col   int    // column index within the alias's table for refTable
	name  string // column name for refObject, parameter name for refParam
}

// probePlan is one hash-indexed equality access path: rows of the alias
// whose indexed column equals the probe expression's value, prebuilt at
// compile time over the immutable table snapshot.
type probePlan struct {
	col    int      // indexed column within the alias's table
	rhs    sql.Expr // probe value; references earlier aliases, o.*, params
	numIdx map[float64][]int32
	strIdx map[string][]int32
	all    []int32 // every row id, for NaN probes (NaN compares equal to all)
}

// aliasPlan is the per-FROM-entry piece of the join plan, in FROM order
// (preserved so float aggregate accumulation order matches the
// interpreter's nested loop exactly).
type aliasPlan struct {
	name    string
	tabName string // catalog name of the bound table (for delta patching)
	tab     *dataset.Table
	probe   *probePlan // nil means scan all rows
	filters []sql.Expr // conjuncts decided at this depth
}

// shortKind selects the EXISTS short-circuit strategy.
type shortKind int

const (
	shortNone     shortKind = iota
	shortNoHaving           // no HAVING: first full row decides EXISTS
	shortCount              // HAVING COUNT(*) <op> threshold: abort when settled
)

// Program is the compile-time artifact: the analyzed join plan with its
// prebuilt hash indexes, shared by every Bind against the same table
// snapshot. A Program is immutable and safe for concurrent use.
type Program struct {
	aliases []aliasPlan
	pre     []sql.Expr // conjuncts referencing no alias: evaluated once per object
	having  sql.Expr   // nil when Q3 has no HAVING
	aggs    []*sql.FuncCall

	short     shortKind
	countSlot int      // aggregate slot of the monotone COUNT(*)
	countOp   string   // comparison with the count on the left
	threshold sql.Expr // per-object-constant right-hand side

	objCols []string // o.* columns the predicate reads

	// floatGroupChecks are the float GROUP BY columns whose values Compile
	// scanned for NaN/-0 (which would break the single-group plan); Extend
	// re-runs the scan over delta rows only.
	floatGroupChecks []refInfo

	// resolution context, reused by Bind's typed lowering
	aliasNames []string
	groupCols  map[string]bool
}

// Indexes reports how many hash indexes the program prebuilt — zero means
// every alias is still scanned (the compilation win is then only the
// closure lowering and short-circuiting).
func (p *Program) Indexes() int {
	n := 0
	for _, ap := range p.aliases {
		if ap.probe != nil {
			n++
		}
	}
	return n
}

// Compile analyzes the decomposed predicate against the catalog and builds
// the join plan and hash indexes. It returns an *Unsupported error for any
// construct outside the compilable subset; the caller then keeps the
// interpreted path.
func Compile(dec *engine.Decomposed, cat engine.Catalog) (*Program, error) {
	sub, ok := dec.Predicate.(*sql.SubqueryExpr)
	if !ok || !sub.Exists {
		return nil, unsupportedf("predicate is not an EXISTS subquery")
	}
	q3 := sub.Query
	if q3.Distinct || len(q3.OrderBy) > 0 || q3.HasLimit {
		return nil, unsupportedf("Q3 uses DISTINCT/ORDER BY/LIMIT")
	}
	if len(q3.From) == 0 {
		return nil, unsupportedf("Q3 has no FROM clause")
	}

	p := &Program{
		groupCols: make(map[string]bool, len(dec.GroupCols)),
		countSlot: -1,
	}
	for _, c := range dec.GroupCols {
		p.groupCols[c] = true
	}
	seen := make(map[string]bool, len(q3.From))
	for _, tr := range q3.From {
		if tr.Subquery != nil {
			return nil, unsupportedf("FROM subquery")
		}
		tab, ok := cat[tr.Name]
		if !ok {
			return nil, unsupportedf("unknown table %q", tr.Name)
		}
		name := tr.BindName()
		if name == engine.ObjectAlias {
			return nil, unsupportedf("FROM alias shadows the object alias")
		}
		if seen[name] {
			return nil, unsupportedf("duplicate FROM alias %q", name)
		}
		seen[name] = true
		p.aliases = append(p.aliases, aliasPlan{name: name, tabName: tr.Name, tab: tab})
		p.aliasNames = append(p.aliasNames, name)
	}

	// Projection: the decomposition selects the GL column references, which
	// cannot fail at projection time. Anything richer could error per group
	// in the interpreter, which the compiled path would not replicate.
	for _, it := range q3.Select {
		if it.Star {
			return nil, unsupportedf("SELECT * in Q3")
		}
		cr, ok := it.Expr.(*sql.ColumnRef)
		if !ok {
			return nil, unsupportedf("Q3 selects a non-column expression")
		}
		ref, err := p.resolve(cr)
		if err != nil {
			return nil, err
		}
		if ref.kind != refTable {
			return nil, unsupportedf("Q3 selects %s, which is not a table column", cr.String())
		}
	}

	// Classify WHERE conjuncts by the deepest alias they reference.
	conjuncts := sql.SplitConjuncts(q3.Where)
	depths := make([]int, len(conjuncts))
	for ci, c := range conjuncts {
		if err := p.validateRowExpr(c); err != nil {
			return nil, err
		}
		d, err := p.maxDepth(c)
		if err != nil {
			return nil, err
		}
		depths[ci] = d
	}

	// Probe selection: for each alias, the first equality conjunct whose
	// column lives at this depth and whose other side is fully available
	// before the alias is scanned becomes a hash-index probe. Conjuncts an
	// index cannot capture faithfully (NaN values in a float column make
	// hash lookup diverge from the interpreter's NaN-equals-everything
	// compare) stay as filters.
	consumed := make([]bool, len(conjuncts))
	for ci, c := range conjuncts {
		be, ok := c.(*sql.BinaryExpr)
		if !ok || be.Op != "=" {
			continue
		}
		for _, side := range [2][2]sql.Expr{{be.L, be.R}, {be.R, be.L}} {
			colExpr, rhs := side[0], side[1]
			cr, ok := colExpr.(*sql.ColumnRef)
			if !ok {
				continue
			}
			ref, err := p.resolve(cr)
			if err != nil || ref.kind != refTable {
				continue
			}
			if p.aliases[ref.depth].probe != nil {
				continue // one probe per alias; extras stay filters
			}
			rd, err := p.maxDepth(rhs)
			if err != nil || rd >= ref.depth {
				continue // probe value not available before this alias
			}
			probe, ok := buildIndex(p.aliases[ref.depth].tab, ref.col)
			if !ok {
				continue
			}
			probe.rhs = rhs
			p.aliases[ref.depth].probe = probe
			consumed[ci] = true
			break
		}
	}
	for ci, c := range conjuncts {
		if consumed[ci] {
			continue
		}
		if depths[ci] < 0 {
			p.pre = append(p.pre, c)
		} else {
			p.aliases[depths[ci]].filters = append(p.aliases[depths[ci]].filters, c)
		}
	}

	// Single-group property: every GROUP BY column must be pinned by an
	// equality against a per-object constant (the GL = o.* conjuncts the
	// decomposition injects), so all WHERE-passing rows share one group key
	// and EXISTS reduces to "any row, and HAVING on that one group".
	if len(q3.GroupBy) == 0 {
		return nil, unsupportedf("Q3 has no GROUP BY")
	}
	for _, g := range q3.GroupBy {
		cr, ok := g.(*sql.ColumnRef)
		if !ok {
			return nil, unsupportedf("GROUP BY expression %s is not a column", g.String())
		}
		ref, err := p.resolve(cr)
		if err != nil {
			return nil, err
		}
		if ref.kind != refTable {
			return nil, unsupportedf("GROUP BY column %s is not a table column", cr.String())
		}
		if !p.pinned(conjuncts, ref) {
			return nil, unsupportedf("GROUP BY column %s is not pinned to a per-object constant", cr.String())
		}
		// The interpreter's group keys distinguish -0 from +0 and give every
		// NaN-keyed row a shared NaN group, both of which would split the
		// single group this plan relies on.
		tab := p.aliases[ref.depth].tab
		if tab.Schema()[ref.col].Kind == dataset.Float {
			for _, v := range tab.FloatsAt(ref.col) {
				if math.IsNaN(v) || (v == 0 && math.Signbit(v)) {
					return nil, unsupportedf("GROUP BY column %s contains NaN or -0", cr.String())
				}
			}
			p.floatGroupChecks = append(p.floatGroupChecks, ref)
		}
	}

	// HAVING: collect aggregate slots in the interpreter's order and detect
	// the monotone COUNT(*) short-circuit.
	p.having = q3.Having
	if p.having == nil {
		p.short = shortNoHaving
	} else {
		var aggs []*sql.FuncCall
		sql.WalkExpr(p.having, func(x sql.Expr) {
			if fc, ok := x.(*sql.FuncCall); ok && isAggregate(fc.Name) {
				aggs = append(aggs, fc)
			}
		})
		for _, fc := range aggs {
			if fc.Distinct {
				return nil, unsupportedf("DISTINCT aggregate %s", fc.String())
			}
			if fc.Star {
				if fc.Name != "COUNT" {
					return nil, unsupportedf("%s(*)", fc.Name)
				}
				continue
			}
			if len(fc.Args) != 1 {
				return nil, unsupportedf("aggregate %s with %d arguments", fc.Name, len(fc.Args))
			}
			if err := p.validateRowExpr(fc.Args[0]); err != nil {
				return nil, err
			}
		}
		p.aggs = aggs
		if err := p.validateHavingExpr(p.having, aggs); err != nil {
			return nil, err
		}
		p.detectMonotoneCount()
		p.short = shortNone
		if p.countSlot >= 0 {
			p.short = shortCount
		}
	}
	return p, nil
}

// pinned reports whether an equality conjunct fixes the referenced column
// to an expression with no alias references (a per-object constant).
func (p *Program) pinned(conjuncts []sql.Expr, ref refInfo) bool {
	for _, c := range conjuncts {
		be, ok := c.(*sql.BinaryExpr)
		if !ok || be.Op != "=" {
			continue
		}
		for _, side := range [2][2]sql.Expr{{be.L, be.R}, {be.R, be.L}} {
			cr, ok := side[0].(*sql.ColumnRef)
			if !ok {
				continue
			}
			r, err := p.resolve(cr)
			if err != nil || r.kind != refTable || r.depth != ref.depth || r.col != ref.col {
				continue
			}
			if d, err := p.maxDepth(side[1]); err == nil && d < 0 {
				return true
			}
		}
	}
	return false
}

// detectMonotoneCount recognizes HAVING of the exact shape
// COUNT(*) <op> threshold (or mirrored) with a per-object-constant
// threshold, enabling the early abort once the growing count settles the
// comparison.
func (p *Program) detectMonotoneCount() {
	be, ok := p.having.(*sql.BinaryExpr)
	if !ok {
		return
	}
	isCountStar := func(e sql.Expr) (int, bool) {
		fc, ok := e.(*sql.FuncCall)
		if !ok || fc.Name != "COUNT" || !fc.Star {
			return 0, false
		}
		for si, a := range p.aggs {
			if a == fc {
				return si, true
			}
		}
		return 0, false
	}
	flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
	op, ok := flip[be.Op]
	if !ok {
		return
	}
	if slot, ok := isCountStar(be.L); ok {
		if d, err := p.maxDepth(be.R); err == nil && d < 0 && !containsAggregate(be.R) {
			p.countSlot, p.countOp, p.threshold = slot, be.Op, be.R
		}
		return
	}
	if slot, ok := isCountStar(be.R); ok {
		if d, err := p.maxDepth(be.L); err == nil && d < 0 && !containsAggregate(be.L) {
			p.countSlot, p.countOp, p.threshold = slot, op, be.L
		}
	}
}

// resolve mirrors the engine's scope resolution for Q3: FROM aliases bind
// innermost, the object alias binds in the enclosing scope, and remaining
// unqualified names are parameters.
func (p *Program) resolve(cr *sql.ColumnRef) (refInfo, error) {
	if cr.Qualifier != "" {
		if cr.Qualifier == engine.ObjectAlias {
			if !p.groupCols[cr.Name] {
				return refInfo{}, unsupportedf("object has no column %q", cr.Name)
			}
			return refInfo{kind: refObject, name: cr.Name}, nil
		}
		for d, name := range p.aliasNames {
			if name == cr.Qualifier {
				ci := p.aliases[d].tab.ColIndex(cr.Name)
				if ci < 0 {
					return refInfo{}, unsupportedf("table %q has no column %q", cr.Qualifier, cr.Name)
				}
				return refInfo{kind: refTable, depth: d, col: ci}, nil
			}
		}
		return refInfo{}, unsupportedf("unknown alias %q", cr.Qualifier)
	}
	found := refInfo{}
	matches := 0
	for d := range p.aliases {
		if ci := p.aliases[d].tab.ColIndex(cr.Name); ci >= 0 {
			found = refInfo{kind: refTable, depth: d, col: ci}
			matches++
		}
	}
	switch {
	case matches > 1:
		return refInfo{}, unsupportedf("ambiguous column %q", cr.Name)
	case matches == 1:
		return found, nil
	case p.groupCols[cr.Name]:
		return refInfo{kind: refObject, name: cr.Name}, nil
	default:
		return refInfo{kind: refParam, name: cr.Name}, nil
	}
}

// maxDepth returns the deepest FROM alias an expression references, or -1
// when it references none (object columns and parameters are per-object
// constants). Object columns read are recorded as a side effect.
func (p *Program) maxDepth(e sql.Expr) (int, error) {
	depth := -1
	var werr error
	sql.WalkExpr(e, func(x sql.Expr) {
		cr, ok := x.(*sql.ColumnRef)
		if !ok || werr != nil {
			return
		}
		ref, err := p.resolve(cr)
		if err != nil {
			werr = err
			return
		}
		switch ref.kind {
		case refTable:
			if ref.depth > depth {
				depth = ref.depth
			}
		case refObject:
			p.recordObjCol(ref.name)
		}
	})
	return depth, werr
}

func (p *Program) recordObjCol(name string) {
	for _, c := range p.objCols {
		if c == name {
			return
		}
	}
	p.objCols = append(p.objCols, name)
}

// validateRowExpr rejects constructs the compiler does not lower in
// row-level position: subqueries, aggregates, unknown operators/functions.
func (p *Program) validateRowExpr(e sql.Expr) error {
	var werr error
	sql.WalkExpr(e, func(x sql.Expr) {
		if werr != nil {
			return
		}
		switch n := x.(type) {
		case *sql.SubqueryExpr:
			werr = unsupportedf("nested subquery")
		case *sql.FuncCall:
			if isAggregate(n.Name) {
				werr = unsupportedf("aggregate %s outside HAVING", n.Name)
			} else if !knownScalarFunc(n.Name) {
				werr = unsupportedf("unknown function %s", n.Name)
			}
		case *sql.ColumnRef:
			if _, err := p.resolve(n); err != nil {
				werr = err
			}
		case *sql.BinaryExpr:
			if !knownBinaryOp(n.Op) {
				werr = unsupportedf("operator %q", n.Op)
			}
		case *sql.UnaryExpr:
			if n.Op != "NOT" && n.Op != "-" {
				werr = unsupportedf("unary operator %q", n.Op)
			}
		}
	})
	return werr
}

// validateHavingExpr validates the HAVING tree, where the collected
// aggregate calls are legal leaves (their arguments were validated as
// row-level expressions already).
func (p *Program) validateHavingExpr(e sql.Expr, aggs []*sql.FuncCall) error {
	isSlot := make(map[sql.Expr]bool, len(aggs))
	for _, fc := range aggs {
		isSlot[fc] = true
	}
	var walk func(sql.Expr) error
	walk = func(x sql.Expr) error {
		if x == nil {
			return nil
		}
		if isSlot[x] {
			return nil // aggregate slot; args validated separately
		}
		switch n := x.(type) {
		case *sql.SubqueryExpr:
			return unsupportedf("subquery in HAVING")
		case *sql.ColumnRef:
			// Non-aggregate HAVING references read the group's
			// representative row, which the compiled plan snapshots.
			_, err := p.resolve(n)
			return err
		case *sql.NumberLit, *sql.StringLit:
			return nil
		case *sql.BinaryExpr:
			if !knownBinaryOp(n.Op) {
				return unsupportedf("operator %q", n.Op)
			}
			if err := walk(n.L); err != nil {
				return err
			}
			return walk(n.R)
		case *sql.UnaryExpr:
			if n.Op != "NOT" && n.Op != "-" {
				return unsupportedf("unary operator %q", n.Op)
			}
			return walk(n.X)
		case *sql.FuncCall:
			if isAggregate(n.Name) {
				// An aggregate node that is not one of the collected slots
				// would be nested inside another aggregate's argument.
				return unsupportedf("nested aggregate %s", n.Name)
			}
			if !knownScalarFunc(n.Name) {
				return unsupportedf("unknown function %s", n.Name)
			}
			for _, a := range n.Args {
				if err := walk(a); err != nil {
					return err
				}
			}
			return nil
		}
		return unsupportedf("unsupported expression %T", x)
	}
	return walk(e)
}

// buildIndex hashes every row of the column. It refuses float columns
// containing NaN: under the interpreter's compare, NaN is equal to
// everything, which a hash bucket cannot express. ±0 need no special case
// (Go map keys fold them), and int keys convert through float64 exactly as
// the interpreter's mixed-kind compare does.
func buildIndex(tab *dataset.Table, col int) (*probePlan, bool) {
	n := tab.NumRows()
	all := make([]int32, n)
	for r := range all {
		all[r] = int32(r)
	}
	pp := &probePlan{col: col, all: all}
	switch tab.Schema()[col].Kind {
	case dataset.Float:
		vals := tab.FloatsAt(col)
		idx := make(map[float64][]int32, n)
		for r, v := range vals {
			if math.IsNaN(v) {
				return nil, false
			}
			idx[v] = append(idx[v], int32(r))
		}
		pp.numIdx = idx
	case dataset.Int:
		vals := tab.IntsAt(col)
		idx := make(map[float64][]int32, n)
		for r, v := range vals {
			idx[float64(v)] = append(idx[float64(v)], int32(r))
		}
		pp.numIdx = idx
	case dataset.String:
		vals := tab.StringsAt(col)
		idx := make(map[string][]int32, n)
		for r, v := range vals {
			idx[v] = append(idx[v], int32(r))
		}
		pp.strIdx = idx
	default:
		return nil, false
	}
	return pp, true
}

func isAggregate(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

func containsAggregate(e sql.Expr) bool {
	found := false
	sql.WalkExpr(e, func(x sql.Expr) {
		if fc, ok := x.(*sql.FuncCall); ok && isAggregate(fc.Name) {
			found = true
		}
	})
	return found
}

func knownBinaryOp(op string) bool {
	switch op {
	case "AND", "OR", "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/":
		return true
	}
	return false
}

func knownScalarFunc(name string) bool {
	switch name {
	case "SQRT", "POWER", "POW", "ABS", "FLOOR", "CEIL", "CEILING", "LN", "EXP", "LEAST", "GREATEST":
		return true
	}
	return false
}
