package qcompile

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sql"
)

// prefixCatalog deep-copies cat truncated to rows[name] rows per table,
// simulating an older snapshot whose storage the newer one extends.
func prefixCatalog(t *testing.T, cat engine.Catalog, rows map[string]int) engine.Catalog {
	t.Helper()
	out := make(engine.Catalog, len(cat))
	for name, tab := range cat {
		out[name] = tab.Prefix(rows[name])
	}
	return out
}

// compileAt decomposes query and compiles it against cat.
func compileAt(t *testing.T, cat engine.Catalog, query string) (*engine.Decomposed, *Program) {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	dec, err := engine.Decompose(engine.ExtractInner(stmt))
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	prog, err := Compile(dec, cat)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return dec, prog
}

// TestExtendMatchesFreshCompile pins the delta-patching contract: a program
// compiled against a prefix of the data and Extended with the delta rows
// labels every object exactly like a program compiled fresh against the
// full data — on an equi-join query whose inner table is hash-indexed.
func TestExtendMatchesFreshCompile(t *testing.T) {
	const query = `SELECT d.id FROM D d, R r
		WHERE r.key = d.id AND r.v < 5.0
		GROUP BY d.id HAVING COUNT(*) > 2`

	full := engine.Catalog{"D": buildD(t, 200, 3), "R": buildR(t, 2000, 200, 4)}
	oldRows := map[string]int{"D": 150, "R": 1500}
	oldCat := prefixCatalog(t, full, oldRows)

	dec, patched := compileAt(t, oldCat, query)
	if patched.Indexes() == 0 {
		t.Fatal("test query should hash-index R")
	}
	if err := patched.Extend(full, oldRows); err != nil {
		t.Fatalf("extend: %v", err)
	}

	_, fresh := compileAt(t, full, query)

	ev := engine.NewEvaluator(full)
	objects, err := ev.Run(dec.Objects, nil)
	if err != nil {
		t.Fatalf("objects: %v", err)
	}
	pb, err := patched.Bind(nil, objects)
	if err != nil {
		t.Fatalf("bind patched: %v", err)
	}
	fb, err := fresh.Bind(nil, objects)
	if err != nil {
		t.Fatalf("bind fresh: %v", err)
	}
	interp := ev.ObjectPredicate(dec, objects)
	pe, fe := pb.NewEvalFn(), fb.NewEvalFn()
	for i := 0; i < objects.NumRows(); i++ {
		want, err := interp(i)
		if err != nil {
			t.Fatalf("interpreter failed on object %d: %v", i, err)
		}
		if got := pe(i); got != want {
			t.Fatalf("object %d: patched=%v interpreted=%v", i, got, want)
		}
		if got := fe(i); got != want {
			t.Fatalf("object %d: fresh=%v interpreted=%v", i, got, want)
		}
	}
}

// TestExtendRejectsNaNDelta pins that a delta row violating a
// compilability invariant (NaN in an indexed float column) surfaces as
// Unsupported, exactly as Compile would decide over the full table.
func TestExtendRejectsNaNDelta(t *testing.T) {
	mk := func(n int, withNaN bool) *dataset.Table {
		tab := dataset.New("S", dataset.Schema{
			{Name: "g", Kind: dataset.Int},
			{Name: "w", Kind: dataset.Float},
		})
		r := rand.New(rand.NewSource(9))
		for i := 0; i < n; i++ {
			tab.MustAppendRow(int64(i%20), r.Float64())
		}
		if withNaN {
			tab.MustAppendRow(int64(999), math.NaN())
		}
		return tab
	}
	obj := dataset.New("O", dataset.Schema{{Name: "id", Kind: dataset.Int}})
	for i := 0; i < 20; i++ {
		obj.MustAppendRow(int64(i))
	}
	const query = `SELECT o.id FROM O o, S s
		WHERE s.w = o.id
		GROUP BY o.id HAVING COUNT(*) > 1`

	oldCat := engine.Catalog{"O": obj, "S": mk(100, false)}
	dec, prog := compileAt(t, oldCat, query)
	_ = dec
	if prog.Indexes() == 0 {
		t.Fatal("test query should hash-index S.w")
	}
	newCat := engine.Catalog{"O": obj, "S": mk(100, true)}
	err := prog.Extend(newCat, map[string]int{"O": obj.NumRows(), "S": 100})
	if err == nil {
		t.Fatal("want NaN delta rejection")
	}
	var uns *Unsupported
	if !errors.As(err, &uns) {
		t.Fatalf("want *Unsupported, got %T: %v", err, err)
	}
}
