package active

import (
	"context"
	"testing"

	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/xrand"
)

// lineWorld: 1-d objects on a grid, positive above a threshold.
func lineWorld(n int, threshold float64) ([][]float64, predicate.Predicate) {
	features := make([][]float64, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		v := float64(i) / float64(n)
		features[i] = []float64{v}
		labels[i] = v > threshold
	}
	return features, predicate.NewLabels(labels)
}

func TestSelectUncertainPrefersBoundary(t *testing.T) {
	features, pred := lineWorld(1000, 0.6)
	r := xrand.New(1)
	// Train on a coarse random sample.
	idx := make([]int, 0, 50)
	labeled := map[int]bool{}
	for i := 0; i < 50; i++ {
		j := r.IntN(1000)
		if !labeled[j] {
			labeled[j] = true
			idx = append(idx, j)
		}
	}
	X := make([][]float64, len(idx))
	y := make([]bool, len(idx))
	for j, i := range idx {
		X[j] = features[i]
		y[j] = pred.Eval(i)
	}
	clf := learn.NewKNN(5)
	if err := clf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	sel := SelectUncertain(clf, features, labeled, 30, 0, r)
	if len(sel) != 30 {
		t.Fatalf("selected %d", len(sel))
	}
	// Selected objects should cluster near the 0.6 boundary.
	near := 0
	for _, i := range sel {
		if v := features[i][0]; v > 0.4 && v < 0.8 {
			near++
		}
	}
	if near < 20 {
		t.Fatalf("only %d/30 selections near the boundary", near)
	}
	// Never selects already-labeled objects.
	for _, i := range sel {
		if labeled[i] {
			t.Fatalf("selected labeled object %d", i)
		}
	}
}

func TestSelectUncertainPoolCap(t *testing.T) {
	features, _ := lineWorld(500, 0.5)
	r := xrand.New(2)
	clf := learn.NewDummy(1)
	sel := SelectUncertain(clf, features, map[int]bool{}, 10, 50, r)
	if len(sel) != 10 {
		t.Fatalf("selected %d", len(sel))
	}
	// Requesting more than available returns everything unlabeled.
	labeled := map[int]bool{}
	for i := 0; i < 495; i++ {
		labeled[i] = true
	}
	sel = SelectUncertain(clf, features, labeled, 10, 0, r)
	if len(sel) != 5 {
		t.Fatalf("selected %d, want 5", len(sel))
	}
}

func TestTrainImprovesClassifier(t *testing.T) {
	features, pred := lineWorld(2000, 0.37)
	r := xrand.New(3)
	factory := func() learn.Classifier { return learn.NewKNN(5) }

	initial := make([]int, 40)
	for i := range initial {
		initial[i] = r.IntN(2000)
	}
	cfg := Config{Factory: factory, Rounds: 2}
	clf, idx, labels, err := Train(context.Background(), cfg, features, pred, initial, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != len(labels) {
		t.Fatal("index/label mismatch")
	}
	if len(idx) < 40 {
		t.Fatalf("labeled %d < initial", len(idx))
	}
	// Boundary must be approximately learned.
	errs := 0
	for i := 0; i < 2000; i += 10 {
		if learn.Predict(clf, features[i]) != (features[i][0] > 0.37) {
			errs++
		}
	}
	if errs > 20 {
		t.Fatalf("%d/200 errors after active training", errs)
	}
}

func TestTrainLabelsAreConsistent(t *testing.T) {
	features, pred := lineWorld(500, 0.5)
	r := xrand.New(4)
	factory := func() learn.Classifier { return learn.NewKNN(3) }
	clf, idx, labels, err := Train(context.Background(), Config{Factory: factory, Rounds: 1}, features, pred, []int{1, 100, 200, 300, 499}, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	_ = clf
	for j, i := range idx {
		if labels[j] != (features[i][0] > 0.5) {
			t.Fatalf("label mismatch at %d", i)
		}
	}
	// No duplicate labels.
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("object %d labeled twice", i)
		}
		seen[i] = true
	}
}

func TestTrainErrors(t *testing.T) {
	features, pred := lineWorld(100, 0.5)
	r := xrand.New(5)
	if _, _, _, err := Train(context.Background(), Config{}, features, pred, []int{1}, 5, r); err == nil {
		t.Fatal("nil factory should error")
	}
	factory := func() learn.Classifier { return learn.NewKNN(3) }
	if _, _, _, err := Train(context.Background(), Config{Factory: factory}, features, pred, nil, 5, r); err == nil {
		t.Fatal("empty initial sample should error")
	}
}

func TestTrainCostAccounting(t *testing.T) {
	features, pred := lineWorld(500, 0.5)
	r := xrand.New(6)
	factory := func() learn.Classifier { return learn.NewKNN(3) }
	_, idx, _, err := Train(context.Background(), Config{Factory: factory, Rounds: 1}, features, pred, []int{0, 100, 200, 300, 400}, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Evals() != int64(len(idx)) {
		t.Fatalf("predicate evals %d != labeled %d", pred.Evals(), len(idx))
	}
}
