// Package active implements the uncertainty-sampling augmentation of §3.2:
// spend part of the labeling budget on the objects the current classifier
// is least sure about (smallest |g(o) − 0.5|), then retrain. The paper
// recommends a single augmentation/retraining step in practice.
package active

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/learn"
	"repro/internal/predicate"
	"repro/internal/xrand"
)

// DefaultPoolCap bounds how many unlabeled objects are scored per selection
// round; the paper draws "a large enough number" instead of scoring all of
// O \ S0.
const DefaultPoolCap = 10000

// SelectUncertain returns the addN unlabeled objects with scores closest to
// the 0.5 toss-up, scoring at most poolCap random candidates (0 means
// DefaultPoolCap).
func SelectUncertain(clf learn.Classifier, features [][]float64,
	labeled map[int]bool, addN, poolCap int, r *xrand.Rand) []int {

	if poolCap <= 0 {
		poolCap = DefaultPoolCap
	}
	var pool []int
	for i := range features {
		if !labeled[i] {
			pool = append(pool, i)
		}
	}
	if len(pool) > poolCap {
		// Random subset of the unlabeled objects.
		perm := r.Perm(len(pool))[:poolCap]
		sub := make([]int, poolCap)
		for j, p := range perm {
			sub[j] = pool[p]
		}
		pool = sub
	}
	type scored struct {
		idx int
		dev float64
	}
	cands := make([]scored, len(pool))
	for j, i := range pool {
		cands[j] = scored{i, math.Abs(clf.Score(features[i]) - 0.5)}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dev != cands[b].dev {
			return cands[a].dev < cands[b].dev
		}
		return cands[a].idx < cands[b].idx
	})
	if addN > len(cands) {
		addN = len(cands)
	}
	out := make([]int, addN)
	for j := 0; j < addN; j++ {
		out[j] = cands[j].idx
	}
	return out
}

// Config drives an uncertainty-sampling training loop.
type Config struct {
	Factory learn.Factory
	Rounds  int // augmentation/retraining rounds; the paper recommends 1
	PoolCap int // candidate pool cap per round (0 = DefaultPoolCap)
}

// Train labels initialIdx, fits a classifier, then runs cfg.Rounds
// augmentation steps of augmentPer objects each. It returns the final
// classifier plus all labeled indices and their labels (the training set S
// = S0 ∪ S1 ∪ …). Cancellation of ctx is checked before every label; a nil
// ctx means context.Background().
func Train(ctx context.Context, cfg Config, features [][]float64, pred predicate.Predicate,
	initialIdx []int, augmentPer int, r *xrand.Rand) (learn.Classifier, []int, []bool, error) {

	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Factory == nil {
		return nil, nil, nil, fmt.Errorf("active: nil classifier factory")
	}
	if len(initialIdx) == 0 {
		return nil, nil, nil, fmt.Errorf("active: empty initial sample")
	}
	labeledSet := make(map[int]bool, len(initialIdx))
	var idx []int
	var labels []bool
	addLabeled := func(objs []int) error {
		for _, i := range objs {
			if labeledSet[i] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("active: training canceled: %w", err)
			}
			labeledSet[i] = true
			idx = append(idx, i)
			labels = append(labels, pred.Eval(i))
		}
		return nil
	}
	if err := addLabeled(initialIdx); err != nil {
		return nil, nil, nil, err
	}

	fit := func() (learn.Classifier, error) {
		X := make([][]float64, len(idx))
		for j, i := range idx {
			X[j] = features[i]
		}
		clf := cfg.Factory()
		if err := clf.Fit(X, labels); err != nil {
			return nil, err
		}
		return clf, nil
	}
	clf, err := fit()
	if err != nil {
		return nil, nil, nil, err
	}
	for round := 0; round < cfg.Rounds && augmentPer > 0; round++ {
		sel := SelectUncertain(clf, features, labeledSet, augmentPer, cfg.PoolCap, r)
		if len(sel) == 0 {
			break
		}
		if err := addLabeled(sel); err != nil {
			return nil, nil, nil, err
		}
		if clf, err = fit(); err != nil {
			return nil, nil, nil, err
		}
	}
	return clf, idx, labels, nil
}
